// Package graphdse reproduces "Co-design of Advanced Architectures for
// Graph Analytics using Machine Learning" (Kurte et al., ORNL, IPPS 2021)
// as a self-contained Go library: a graph-analytics workload substrate, a
// gem5-style system simulator, an NVMain-style cycle-level memory simulator,
// a from-scratch machine-learning library, and the design-space-exploration
// workflow that ties them together.
//
// The root package holds the cross-cutting artifacts: the benchmark harness
// regenerating every table and figure of the paper (bench_test.go) and the
// end-to-end integration tests (integration_test.go). The implementation
// lives under internal/ — see DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured comparison.
package graphdse
