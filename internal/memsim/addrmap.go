package memsim

// MappingScheme selects how addresses spread across channels.
type MappingScheme int

// Mapping schemes.
const (
	// MapRowInterleaved (default) rotates small line runs across channels —
	// fine-grained interleaving maximizing channel-level parallelism.
	MapRowInterleaved MappingScheme = iota
	// MapChannelBlocked assigns large contiguous 4 MiB blocks to channels —
	// the NUMA-style layout that concentrates a working set on few channels.
	MapChannelBlocked
)

// String names the scheme.
func (s MappingScheme) String() string {
	if s == MapChannelBlocked {
		return "channel-blocked"
	}
	return "row-interleaved"
}

// Location is a decoded physical address: which channel, rank, bank and row
// a line maps to.
type Location struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Line    uint64 // global line index (addr / LineBytes)
}

// AddressMapper implements the controller's open-page address decomposition
// "row : rank : bank : colHigh : channel : colLow" (NVMain's default-style
// mapping): a small run of consecutive lines stays in one channel's open
// row, runs rotate across channels, and a row is revisited only after
// ColsPerRow × Channels lines — so streaming scans enjoy both row-buffer
// hits and channel-level parallelism.
type AddressMapper struct {
	lineBytes int
	channels  int
	ranks     int
	banks     int
	rows      int
	cols      int // lines per row
	colLow    int // lines kept adjacent within a channel
	scheme    MappingScheme
}

// NewAddressMapper builds a mapper from a validated configuration.
func NewAddressMapper(c *Config) *AddressMapper {
	return &AddressMapper{
		lineBytes: c.LineBytes,
		channels:  c.Channels,
		ranks:     c.RanksPerChannel,
		banks:     c.BanksPerRank,
		rows:      c.RowsPerBank,
		cols:      c.ColsPerRow,
		colLow:    4,
		scheme:    c.Mapping,
	}
}

// Map decodes a byte address.
func (m *AddressMapper) Map(addr uint64) Location {
	line := addr / uint64(m.lineBytes)
	if m.scheme == MapChannelBlocked {
		// 4 MiB blocks per channel: channel from high bits, the rest of the
		// decomposition as in the interleaved scheme but without a channel
		// level.
		const blockLines = 1 << 16
		ch := int((line / blockLines) % uint64(m.channels))
		rest := line / uint64(m.colLow)
		rest /= uint64(m.cols / m.colLow)
		bank := int(rest % uint64(m.banks))
		rest /= uint64(m.banks)
		rank := int(rest % uint64(m.ranks))
		rest /= uint64(m.ranks)
		row := int(rest % uint64(m.rows))
		return Location{Channel: ch, Rank: rank, Bank: bank, Row: row, Line: line}
	}
	rest := line / uint64(m.colLow) // colLow bits stay within the channel run
	ch := int(rest % uint64(m.channels))
	rest /= uint64(m.channels)
	rest /= uint64(m.cols / m.colLow) // colHigh
	bank := int(rest % uint64(m.banks))
	rest /= uint64(m.banks)
	rank := int(rest % uint64(m.ranks))
	rest /= uint64(m.ranks)
	row := int(rest % uint64(m.rows))
	return Location{Channel: ch, Rank: rank, Bank: bank, Row: row, Line: line}
}

// BankIndex flattens (rank, bank) into a per-channel bank index.
func (m *AddressMapper) BankIndex(loc Location) int {
	return loc.Rank*m.banks + loc.Bank
}

// BanksPerChannel returns ranks × banks.
func (m *AddressMapper) BanksPerChannel() int { return m.ranks * m.banks }
