package memsim

import (
	"math"
	"math/rand"
	"testing"

	"graphdse/internal/trace"
)

// syntheticTrace mimics a graph-workload access stream: bursts of sequential
// scans (CSR arrays) interleaved with random accesses (frontier/parent
// lookups) and compute gaps. Cycles are CPU cycles.
func syntheticTrace(n int, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]trace.Event, 0, n)
	cycle := uint64(1)
	seqAddr := uint64(0)
	for len(events) < n {
		burst := 4 + rng.Intn(12)
		for b := 0; b < burst && len(events) < n; b++ {
			cycle += uint64(6 + rng.Intn(20))
			seqAddr += 64
			events = append(events, trace.Event{
				Cycle: cycle, Op: trace.Read, Addr: 0x100000 + seqAddr%(1<<19),
			})
		}
		rnd := 1 + rng.Intn(4)
		for k := 0; k < rnd && len(events) < n; k++ {
			cycle += uint64(12 + rng.Intn(30))
			op := trace.Read
			if rng.Intn(4) == 0 {
				op = trace.Write
			}
			// Mostly hot-region accesses (frontier/parent arrays) with a
			// cold tail (edge targets).
			addr := uint64(0x800000) + uint64(rng.Intn(1<<18))
			if rng.Intn(5) == 0 {
				addr = uint64(0x1000000) + uint64(rng.Intn(1<<23))
			}
			events = append(events, trace.Event{Cycle: cycle, Op: op, Addr: addr})
		}
		cycle += uint64(rng.Intn(160))
	}
	return events
}

// reuseTrace models the cache-friendly but row-buffer-hostile regime:
// random accesses with heavy reuse over a working set (512 KiB) that spans
// many DRAM rows yet fits comfortably in a hybrid DRAM cache.
func reuseTrace(n int, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]trace.Event, 0, n)
	cycle := uint64(1)
	for len(events) < n {
		cycle += uint64(8 + rng.Intn(24))
		op := trace.Read
		if rng.Intn(5) == 0 {
			op = trace.Write
		}
		addr := uint64(rng.Intn(1 << 19))
		events = append(events, trace.Event{Cycle: cycle, Op: op, Addr: addr})
	}
	return events
}

// scatterTrace models row-buffer-hostile traffic: uniform random accesses
// over a region far larger than the row buffers, with a write share — the
// regime where NVM queueing dominates (the paper's saturated-NVM behavior).
func scatterTrace(n int, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]trace.Event, 0, n)
	cycle := uint64(1)
	for len(events) < n {
		cycle += uint64(12 + rng.Intn(9))
		op := trace.Read
		if rng.Intn(4) == 0 {
			op = trace.Write
		}
		events = append(events, trace.Event{Cycle: cycle, Op: op, Addr: uint64(rng.Int63n(1 << 22))})
	}
	return events
}

func runCfg(t *testing.T, cfg Config, events []trace.Event) *Result {
	t.Helper()
	res, err := RunTrace(cfg, events)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunEmptyTrace(t *testing.T) {
	if _, err := RunTrace(NewDRAMConfig(2, 2000, 400), nil); err == nil {
		t.Fatal("expected empty-trace error")
	}
}

func TestRunRejectsBadEvent(t *testing.T) {
	events := []trace.Event{{Cycle: 1, Op: 'Q', Addr: 0}}
	if _, err := RunTrace(NewDRAMConfig(2, 2000, 400), events); err == nil {
		t.Fatal("expected bad-op error")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := RunTrace(Config{}, syntheticTrace(10, 1)); err == nil {
		t.Fatal("expected config error")
	}
}

func TestRunDeterministic(t *testing.T) {
	events := syntheticTrace(5000, 1)
	a := runCfg(t, NewHybridConfig(2, 2000, 666, 33, 0.25), events)
	b := runCfg(t, NewHybridConfig(2, 2000, 666, 33, 0.25), events)
	if a.AvgPowerPerChannel != b.AvgPowerPerChannel ||
		a.AvgTotalLatency != b.AvgTotalLatency ||
		a.AvgBandwidthPerBank != b.AvgBandwidthPerBank {
		t.Fatal("simulation must be deterministic")
	}
}

func TestReadWriteCountsConserved(t *testing.T) {
	events := syntheticTrace(8000, 2)
	var wantR, wantW float64
	for _, e := range events {
		if e.Op == trace.Write {
			wantW++
		} else {
			wantR++
		}
	}
	for _, ch := range []int{2, 4} {
		res := runCfg(t, NewDRAMConfig(ch, 2000, 400), events)
		gotR := res.AvgReadsPerChannel * float64(ch)
		gotW := res.AvgWritesPerChannel * float64(ch)
		if gotR != wantR || gotW != wantW {
			t.Fatalf("%d ch: reads %v/%v writes %v/%v", ch, gotR, wantR, gotW, wantW)
		}
	}
}

func TestReadsPerChannelHalveWithChannels(t *testing.T) {
	events := syntheticTrace(8000, 3)
	for _, mk := range []func(ch int) Config{
		func(ch int) Config { return NewDRAMConfig(ch, 2000, 400) },
		func(ch int) Config { return NewNVMConfig(ch, 2000, 400, 40) },
	} {
		r2 := runCfg(t, mk(2), events)
		r4 := runCfg(t, mk(4), events)
		ratio := r2.AvgReadsPerChannel / r4.AvgReadsPerChannel
		if math.Abs(ratio-2) > 0.01 {
			t.Fatalf("reads/channel ratio = %v, want 2", ratio)
		}
		wr := r2.AvgWritesPerChannel / r4.AvgWritesPerChannel
		if math.Abs(wr-2) > 0.01 {
			t.Fatalf("writes/channel ratio = %v, want 2", wr)
		}
	}
}

func TestBandwidthShapes(t *testing.T) {
	events := syntheticTrace(20000, 4)

	// Bandwidth per bank grows with CPU frequency (arrival-bound runs
	// compress in wall time).
	slow := runCfg(t, NewDRAMConfig(2, 2000, 400), events)
	fast := runCfg(t, NewDRAMConfig(2, 6500, 400), events)
	if fast.AvgBandwidthPerBank <= slow.AvgBandwidthPerBank {
		t.Fatalf("bandwidth should grow with CPU freq: %v vs %v",
			fast.AvgBandwidthPerBank, slow.AvgBandwidthPerBank)
	}

	// Bandwidth per bank roughly halves when channels double.
	two := runCfg(t, NewDRAMConfig(2, 2000, 400), events)
	four := runCfg(t, NewDRAMConfig(4, 2000, 400), events)
	ratio := two.AvgBandwidthPerBank / four.AvgBandwidthPerBank
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("2ch/4ch bandwidth ratio = %v, want ~2", ratio)
	}

	// DRAM bandwidth >= NVM bandwidth at matched config (faster service).
	nvm := runCfg(t, NewNVMConfig(2, 2000, 400, 40), events)
	if two.AvgBandwidthPerBank < nvm.AvgBandwidthPerBank {
		t.Fatalf("DRAM bandwidth %v < NVM %v", two.AvgBandwidthPerBank, nvm.AvgBandwidthPerBank)
	}
}

func TestPowerShapes(t *testing.T) {
	events := syntheticTrace(20000, 5)

	// Paper: DRAM consumes the most power, NVM the least, hybrid between
	// (§IV-B.1) at low controller frequency.
	d := runCfg(t, NewDRAMConfig(2, 2000, 400), events)
	n := runCfg(t, NewNVMConfig(2, 2000, 400, 40), events)
	h := runCfg(t, NewHybridConfig(2, 2000, 400, 40, 0.25), events)
	if !(d.AvgPowerPerChannel > h.AvgPowerPerChannel && h.AvgPowerPerChannel > n.AvgPowerPerChannel) {
		t.Fatalf("power ordering D > H > N violated: D=%v H=%v N=%v",
			d.AvgPowerPerChannel, h.AvgPowerPerChannel, n.AvgPowerPerChannel)
	}

	// Paper: NVM power grows with controller frequency (I/O dominated).
	nHigh := runCfg(t, NewNVMConfig(2, 2000, 1600, 160), events)
	if nHigh.AvgPowerPerChannel <= n.AvgPowerPerChannel {
		t.Fatalf("NVM power should grow with ctrl freq: %v vs %v",
			nHigh.AvgPowerPerChannel, n.AvgPowerPerChannel)
	}

	// Paper: DRAM power grows with CPU frequency (same work in less time).
	dFast := runCfg(t, NewDRAMConfig(2, 6500, 400), events)
	if dFast.AvgPowerPerChannel <= d.AvgPowerPerChannel {
		t.Fatalf("DRAM power should grow with CPU freq: %v vs %v",
			dFast.AvgPowerPerChannel, d.AvgPowerPerChannel)
	}
}

func TestLatencyShapes(t *testing.T) {
	scatter := scatterTrace(20000, 6)

	// DRAM device latency in controller cycles is frequency-insensitive
	// (timing parameters are fixed in cycles, as in the paper's setup:
	// 31.87 cycles at every frequency).
	dLow := runCfg(t, NewDRAMConfig(2, 2000, 400), scatter)
	dHigh := runCfg(t, NewDRAMConfig(2, 2000, 1600), scatter)
	if rel := dHigh.AvgLatency / dLow.AvgLatency; rel < 0.9 || rel > 1.1 {
		t.Fatalf("DRAM avg latency should be ~frequency-insensitive: %v vs %v",
			dHigh.AvgLatency, dLow.AvgLatency)
	}

	// NVM device latency (cycles) grows with controller frequency because
	// the cell time is fixed in nanoseconds (paper: 26.58 → 34.16 cycles).
	nLow := runCfg(t, NewNVMConfig(2, 2000, 400, 20), scatter)
	nHigh := runCfg(t, NewNVMConfig(2, 2000, 1600, 80), scatter)
	if nHigh.AvgLatency <= nLow.AvgLatency {
		t.Fatalf("NVM avg latency should grow with ctrl freq: %v vs %v",
			nHigh.AvgLatency, nLow.AvgLatency)
	}

	// Hybrid beats DRAM on device latency (cache hits are fast) — the
	// paper's recommendation for average latency is hybrid. The effect shows
	// on working sets larger than the row buffers but within the DRAM cache.
	reuse := reuseTrace(30000, 12)
	hR := runCfg(t, NewHybridConfig(2, 2000, 400, 20, 0.5), reuse)
	dR := runCfg(t, NewDRAMConfig(2, 2000, 400), reuse)
	if hR.AvgLatency >= dR.AvgLatency {
		t.Fatalf("hybrid avg latency %v should beat DRAM %v (cache hit %v, DRAM row hit %v)",
			hR.AvgLatency, dR.AvgLatency, hR.CacheHitRate, dR.RowHitRate)
	}

	// Total latency (queue-inclusive): DRAM lowest (shortest queuing), NVM
	// higher (slow cells back up the queue) — the paper recommends DRAM for
	// total latency.
	n := runCfg(t, NewNVMConfig(2, 2000, 666, 67), scatter)
	d666 := runCfg(t, NewDRAMConfig(2, 2000, 666), scatter)
	if d666.AvgTotalLatency >= n.AvgTotalLatency {
		t.Fatalf("DRAM total latency %v should beat NVM %v",
			d666.AvgTotalLatency, n.AvgTotalLatency)
	}

	// NVM total latency in cycles grows with controller frequency (paper
	// Figure 2: 874 → 2485 cycles from 400 to 1600 MHz): slow cells keep the
	// queue saturated, so the wall-clock backlog is constant and its measure
	// in cycles scales with the clock.
	if nHigh.AvgTotalLatency <= nLow.AvgTotalLatency {
		t.Fatalf("NVM total latency should grow with ctrl freq: %v vs %v",
			nHigh.AvgTotalLatency, nLow.AvgTotalLatency)
	}

	// Total latency always >= device latency.
	for _, r := range []*Result{dLow, dHigh, nLow, nHigh, hR, dR, n, d666} {
		if r.AvgTotalLatency < r.AvgLatency {
			t.Fatalf("total %v < device %v", r.AvgTotalLatency, r.AvgLatency)
		}
	}
}

func TestHybridCacheFiltersBackendTraffic(t *testing.T) {
	events := syntheticTrace(20000, 7)
	n := runCfg(t, NewNVMConfig(2, 2000, 666, 67), events)
	h := runCfg(t, NewHybridConfig(2, 2000, 666, 67, 0.5), events)
	if h.CacheHitRate <= 0 {
		t.Fatalf("cache hit rate = %v", h.CacheHitRate)
	}
	if h.AvgReadsPerChannel+h.AvgWritesPerChannel >= n.AvgReadsPerChannel+n.AvgWritesPerChannel {
		t.Fatalf("hybrid backend traffic (%v) should be below NVM (%v)",
			h.AvgReadsPerChannel+h.AvgWritesPerChannel,
			n.AvgReadsPerChannel+n.AvgWritesPerChannel)
	}
	// Larger DRAM fraction → more filtering.
	hSmall := runCfg(t, NewHybridConfig(2, 2000, 666, 67, 0.125), events)
	if h.AvgReadsPerChannel >= hSmall.AvgReadsPerChannel {
		t.Fatalf("bigger cache should filter more reads: %v vs %v",
			h.AvgReadsPerChannel, hSmall.AvgReadsPerChannel)
	}
}

func TestSchedulerFRFCFSImprovesRowHits(t *testing.T) {
	events := syntheticTrace(20000, 8)
	fcfs := NewDRAMConfig(2, 6500, 400)
	fcfs.Scheduler = FCFS
	frf := NewDRAMConfig(2, 6500, 400)
	frf.Scheduler = FRFCFS
	a := runCfg(t, fcfs, events)
	b := runCfg(t, frf, events)
	if b.RowHitRate < a.RowHitRate {
		t.Fatalf("FR-FCFS row hit rate %v < FCFS %v", b.RowHitRate, a.RowHitRate)
	}
}

func TestEnduranceTracking(t *testing.T) {
	// Hammer one line with writes: lifetime must be finite and short
	// relative to a read-only run.
	var events []trace.Event
	for i := 0; i < 5000; i++ {
		events = append(events, trace.Event{Cycle: uint64(i * 10), Op: trace.Write, Addr: 0x40})
	}
	res := runCfg(t, NewNVMConfig(2, 2000, 400, 40), events)
	if res.MaxRowWrites == 0 {
		t.Fatal("expected row-write tracking")
	}
	if math.IsInf(res.LifetimeYears, 1) || res.LifetimeYears <= 0 {
		t.Fatalf("lifetime = %v", res.LifetimeYears)
	}
	reads := make([]trace.Event, len(events))
	copy(reads, events)
	for i := range reads {
		reads[i].Op = trace.Read
	}
	ro := runCfg(t, NewNVMConfig(2, 2000, 400, 40), reads)
	if !math.IsInf(ro.LifetimeYears, 1) {
		t.Fatalf("read-only lifetime should be infinite, got %v", ro.LifetimeYears)
	}
}

func TestMetricVectorOrder(t *testing.T) {
	res := runCfg(t, NewDRAMConfig(2, 2000, 400), syntheticTrace(2000, 9))
	v := res.MetricVector()
	if len(v) != len(MetricNames) {
		t.Fatalf("metric vector length %d", len(v))
	}
	if v[0] != res.AvgPowerPerChannel || v[5] != res.AvgWritesPerChannel {
		t.Fatal("metric vector order wrong")
	}
}

func TestResultStringContainsEssentials(t *testing.T) {
	res := runCfg(t, NewHybridConfig(2, 2000, 400, 40, 0.25), syntheticTrace(2000, 10))
	s := res.String()
	for _, want := range []string{"Hybrid", "power", "bandwidth", "cache hit"} {
		if !contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestWallTimeShrinksWithCPUFreq(t *testing.T) {
	events := syntheticTrace(10000, 11)
	slow := runCfg(t, NewDRAMConfig(2, 2000, 400), events)
	fast := runCfg(t, NewDRAMConfig(2, 6500, 400), events)
	if fast.WallTimeSeconds >= slow.WallTimeSeconds {
		t.Fatalf("wall time should shrink with CPU freq: %v vs %v",
			fast.WallTimeSeconds, slow.WallTimeSeconds)
	}
}

func TestFormatMetric(t *testing.T) {
	if got := FormatMetric("Power", 0.1234); got != "0.12" {
		t.Fatalf("Power = %q", got)
	}
	if got := FormatMetric("MemoryReads", 4.13e7); got != "4.13E+07" {
		t.Fatalf("MemoryReads = %q", got)
	}
	if got := FormatMetric("Bandwidth", 985.12); got != "985.12" {
		t.Fatalf("Bandwidth = %q", got)
	}
}

func TestClosedPagePolicy(t *testing.T) {
	events := syntheticTrace(10000, 13)
	open := NewDRAMConfig(2, 2000, 400)
	closed := NewDRAMConfig(2, 2000, 400)
	closed.Policy = ClosedPage
	o := runCfg(t, open, events)
	c := runCfg(t, closed, events)
	if c.RowHitRate != 0 {
		t.Fatalf("closed-page row hit rate = %v, want 0", c.RowHitRate)
	}
	if c.AvgLatency <= o.AvgLatency {
		t.Fatalf("closed-page avg latency %v should exceed open-page %v on a row-local trace",
			c.AvgLatency, o.AvgLatency)
	}
	// Closed-page DRAM latency is uniform: tRCD+tCAS+tBURST = 22 cycles.
	want := float64(DRAMTiming().TRCD + DRAMTiming().TCAS + DRAMTiming().TBURST)
	if c.AvgLatency != want {
		t.Fatalf("closed-page avg latency = %v, want %v", c.AvgLatency, want)
	}
	if OpenPage.String() != "open-page" || ClosedPage.String() != "closed-page" {
		t.Fatal("policy names wrong")
	}
}

func TestFlatHybridPreservesOperationCounts(t *testing.T) {
	events := syntheticTrace(10000, 14)
	pure := runCfg(t, NewNVMConfig(2, 2000, 400, 40), events)
	flat := NewHybridConfig(2, 2000, 400, 40, 0.25)
	flat.HybridMode = HybridFlat
	h := runCfg(t, flat, events)
	// Flat partitioning routes every request to exactly one tier: the
	// per-channel operation counts match the pure configurations.
	if h.AvgReadsPerChannel != pure.AvgReadsPerChannel ||
		h.AvgWritesPerChannel != pure.AvgWritesPerChannel {
		t.Fatalf("flat hybrid ops %v/%v, pure %v/%v",
			h.AvgReadsPerChannel, h.AvgWritesPerChannel,
			pure.AvgReadsPerChannel, pure.AvgWritesPerChannel)
	}
	if h.CacheHitRate != 0 {
		t.Fatalf("flat hybrid has no cache, hit rate %v", h.CacheHitRate)
	}
}

func TestFlatHybridLatencyBetweenTiers(t *testing.T) {
	events := scatterTrace(20000, 15)
	d := runCfg(t, NewDRAMConfig(2, 2000, 400), events)
	n := runCfg(t, NewNVMConfig(2, 2000, 400, 80), events)
	flat := NewHybridConfig(2, 2000, 400, 80, 0.5)
	flat.HybridMode = HybridFlat
	h := runCfg(t, flat, events)
	// Device latency mixes the two tiers.
	lo, hi := d.AvgLatency, n.AvgLatency
	if lo > hi {
		lo, hi = hi, lo
	}
	if h.AvgLatency < lo*0.8 || h.AvgLatency > hi*1.4 {
		t.Fatalf("flat hybrid avg latency %v outside tier range [%v, %v]",
			h.AvgLatency, lo, hi)
	}
}

func TestHybridKindString(t *testing.T) {
	if HybridCache.String() != "cache" || HybridFlat.String() != "flat" {
		t.Fatal("HybridKind names wrong")
	}
}

func TestFlatHybridFractionShiftsLatency(t *testing.T) {
	events := scatterTrace(15000, 16)
	mk := func(f float64) *Result {
		c := NewHybridConfig(2, 2000, 400, 80, f)
		c.HybridMode = HybridFlat
		return runCfg(t, c, events)
	}
	mostlyDRAM := mk(0.9)
	mostlyNVM := mk(0.1)
	if mostlyDRAM.AvgLatency >= mostlyNVM.AvgLatency {
		t.Fatalf("larger DRAM fraction should lower avg latency: %v vs %v",
			mostlyDRAM.AvgLatency, mostlyNVM.AvgLatency)
	}
}
