package memsim

import (
	"reflect"
	"runtime"
	"testing"
)

// TestPartitionParallelBuildEquivalence: the chunk-parallel partition
// builder must produce byte-identical per-channel partitions to the serial
// mapper loop — same events, same order. GOMAXPROCS is raised for the test
// so the parallel path runs even on single-CPU machines (and under -race in
// CI's chaos matrix).
func TestPartitionParallelBuildEquivalence(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	events := syntheticTrace(partitionParallelMin+12345, 31)
	pt, err := Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	for _, channels := range []int{1, 2, 4} {
		cfg := NewDRAMConfig(channels, 2000, 666)
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		m := NewAddressMapper(&cfg)
		serial := buildPartitionSerial(m, pt.cycles, pt.addrs, pt.writes)
		parallel := buildPartition(m, pt.cycles, pt.addrs, pt.writes)
		for ch := range serial.chans {
			if !reflect.DeepEqual(serial.chans[ch].cycles, parallel.chans[ch].cycles) ||
				!reflect.DeepEqual(serial.chans[ch].lines, parallel.chans[ch].lines) ||
				!reflect.DeepEqual(serial.chans[ch].meta, parallel.chans[ch].meta) {
				t.Fatalf("%d channels: parallel partition diverged on channel %d", channels, ch)
			}
		}
	}
}

// TestPartitionCacheSingleFlightAndEviction: concurrent replays of a new
// geometry share one partition build, and the per-trace cache stays bounded
// at partitionCacheCap geometries with LRU eviction.
func TestPartitionCacheSingleFlightAndEviction(t *testing.T) {
	events := syntheticTrace(4096, 7)
	pt, err := Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	// Walk more geometries than the cache holds (vary LineBytes, which is
	// part of the mapping geometry), then revisit the most recent one.
	var last Config
	for i := 0; i < partitionCacheCap+2; i++ {
		last = NewDRAMConfig(2, 2000, 666)
		last.LineBytes = 32 << uint(i)
		if _, err := RunPreparedTrace(last, pt); err != nil {
			t.Fatal(err)
		}
	}
	st := pt.PartitionCacheStats()
	if st.Entries > partitionCacheCap {
		t.Fatalf("partition cache grew past its bound: %+v", st)
	}
	if st.Misses != uint64(partitionCacheCap+2) {
		t.Fatalf("distinct geometries must all build: %+v", st)
	}
	if _, err := RunPreparedTrace(last, pt); err != nil {
		t.Fatal(err)
	}
	if st = pt.PartitionCacheStats(); st.Hits != 1 {
		t.Fatalf("revisiting the most recent geometry must hit: %+v", st)
	}
}

// TestMetaPackingBounds: Validate must reject organizations that cannot be
// packed into the partition meta word, and accept everything physical.
func TestMetaPackingBounds(t *testing.T) {
	ok := NewDRAMConfig(2, 2000, 666)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	rows := NewDRAMConfig(2, 2000, 666)
	rows.RowsPerBank = 1 << 41
	if err := rows.Validate(); err == nil {
		t.Fatal("RowsPerBank beyond 2^40 must be rejected")
	}
	banks := NewDRAMConfig(2, 2000, 666)
	banks.RanksPerChannel = 1 << 12
	banks.BanksPerRank = 1 << 12
	if err := banks.Validate(); err == nil {
		t.Fatal("ranks×banks beyond 2^23 must be rejected")
	}
}
