package memsim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"graphdse/internal/trace"
)

// Property: across random traces and configurations, the simulator conserves
// operation counts (reads+writes across channels equal the trace totals for
// non-cache organizations), keeps latencies and power non-negative, and
// reports total latency >= device latency.
func TestPropSimulatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(2000)
		events := make([]trace.Event, n)
		cycle := uint64(1)
		for i := range events {
			cycle += uint64(1 + rng.Intn(40))
			op := trace.Read
			if rng.Intn(3) == 0 {
				op = trace.Write
			}
			events[i] = trace.Event{Cycle: cycle, Op: op, Addr: uint64(rng.Int63n(1 << 26))}
		}
		var wantR, wantW uint64
		for _, e := range events {
			if e.Op == trace.Write {
				wantW++
			} else {
				wantR++
			}
		}

		channels := []int{1, 2, 4}[rng.Intn(3)]
		ctrl := []float64{400, 666, 1250, 1600}[rng.Intn(4)]
		cpu := []float64{2000, 3000, 5000, 6500}[rng.Intn(4)]
		var cfg Config
		switch rng.Intn(3) {
		case 0:
			cfg = NewDRAMConfig(channels, cpu, ctrl)
		case 1:
			cfg = NewNVMConfig(channels, cpu, ctrl, NVMTRCDSweep(ctrl)[rng.Intn(6)])
		default:
			cfg = NewHybridConfig(channels, cpu, ctrl, NVMTRCDSweep(ctrl)[rng.Intn(6)], 0.25)
			cfg.HybridMode = HybridFlat // flat preserves op counts
		}
		if rng.Intn(2) == 0 {
			cfg.Scheduler = FCFS
		}
		res, err := RunTrace(cfg, events)
		if err != nil {
			return false
		}
		var gotR, gotW uint64
		for _, ch := range res.Channels {
			gotR += ch.Reads
			gotW += ch.Writes
		}
		if gotR != wantR || gotW != wantW {
			return false
		}
		if res.AvgLatency < 0 || res.AvgTotalLatency < res.AvgLatency {
			return false
		}
		if res.AvgPowerPerChannel <= 0 || res.AvgBandwidthPerBank <= 0 {
			return false
		}
		if res.WallTimeSeconds <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Run, RunPrepared on a fresh simulator, and RunPrepared again on
// the same simulator (pooled engines + cached partition) are the same
// function — bit-identical Results for random traces and configurations.
// This is the live generalization of the committed golden fixtures.
func TestPropReplayPathEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(3000)
		events := make([]trace.Event, n)
		cycle := uint64(1)
		for i := range events {
			cycle += uint64(1 + rng.Intn(40))
			op := trace.Read
			if rng.Intn(3) == 0 {
				op = trace.Write
			}
			events[i] = trace.Event{Cycle: cycle, Op: op, Addr: uint64(rng.Int63n(1 << 26))}
		}
		channels := []int{1, 2, 4}[rng.Intn(3)]
		ctrl := []float64{400, 666, 1250, 1600}[rng.Intn(4)]
		cpu := []float64{2000, 3000, 5000, 6500}[rng.Intn(4)]
		var cfg Config
		switch rng.Intn(4) {
		case 0:
			cfg = NewDRAMConfig(channels, cpu, ctrl)
		case 1:
			cfg = NewNVMConfig(channels, cpu, ctrl, NVMTRCDSweep(ctrl)[rng.Intn(6)])
		case 2:
			cfg = NewHybridConfig(channels, cpu, ctrl, NVMTRCDSweep(ctrl)[rng.Intn(6)], 0.25)
		default:
			cfg = NewHybridConfig(channels, cpu, ctrl, NVMTRCDSweep(ctrl)[rng.Intn(6)], 0.25)
			cfg.HybridMode = HybridFlat
		}
		if rng.Intn(2) == 0 {
			cfg.Scheduler = FCFS
		}
		if rng.Intn(2) == 0 {
			cfg.Policy = ClosedPage
		}
		if rng.Intn(4) == 0 {
			cfg.Mapping = MapChannelBlocked
		}
		want, err := RunTrace(cfg, events)
		if err != nil {
			return false
		}
		pt, err := Prepare(events)
		if err != nil {
			return false
		}
		sim, err := New(cfg)
		if err != nil {
			return false
		}
		got, err := sim.RunPrepared(pt)
		if err != nil || !reflect.DeepEqual(got, want) {
			return false
		}
		again, err := sim.RunPrepared(pt) // pooled engine + cached partition
		return err == nil && reflect.DeepEqual(again, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache-hybrid never increases total backend operations beyond
// the trace's (filtering plus writebacks stay bounded by 2× accesses).
func TestPropCacheHybridTrafficBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(1500)
		events := make([]trace.Event, n)
		cycle := uint64(1)
		for i := range events {
			cycle += uint64(1 + rng.Intn(30))
			op := trace.Read
			if rng.Intn(3) == 0 {
				op = trace.Write
			}
			events[i] = trace.Event{Cycle: cycle, Op: op, Addr: uint64(rng.Int63n(1 << 22))}
		}
		cfg := NewHybridConfig(2, 2000, 666, 67, 0.25)
		cfg.CacheLines = 256 + rng.Intn(4096)
		res, err := RunTrace(cfg, events)
		if err != nil {
			return false
		}
		var ops uint64
		for _, ch := range res.Channels {
			ops += ch.Reads + ch.Writes
		}
		return ops <= 2*uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
