package memsim

import (
	"errors"
	"math/rand"
	"testing"

	"graphdse/internal/trace"
)

// invariantTrace builds a deterministic mixed read/write trace.
func invariantTrace(n int) []trace.Event {
	rng := rand.New(rand.NewSource(11))
	events := make([]trace.Event, n)
	for i := range events {
		op := trace.Read
		if rng.Intn(3) == 0 {
			op = trace.Write
		}
		events[i] = trace.Event{
			Cycle: uint64(i * 3),
			Op:    op,
			Addr:  uint64(rng.Intn(1<<20)) * 64,
		}
	}
	return events
}

func TestValidatePhysicalAcceptsRealResults(t *testing.T) {
	events := invariantTrace(4000)
	configs := map[string]Config{
		"dram":       NewDRAMConfig(2, 2000, 400),
		"nvm":        NewNVMConfig(4, 3000, 666, 50),
		"hybrid":     NewHybridConfig(2, 2000, 400, 40, 0.25),
		"hybridFlat": func() Config { c := NewHybridConfig(2, 2000, 400, 40, 0.5); c.HybridMode = HybridFlat; return c }(),
	}
	for name, cfg := range configs {
		res, err := RunTrace(cfg, events)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.ValidatePhysical(int64(len(events))); err != nil {
			t.Errorf("%s: healthy result rejected: %v", name, err)
		}
	}
}

func TestValidatePhysicalRejectsImpossibleBandwidth(t *testing.T) {
	events := invariantTrace(500)
	res, err := RunTrace(NewDRAMConfig(2, 2000, 400), events)
	if err != nil {
		t.Fatal(err)
	}
	peak := PeakBandwidthPerBankMBs(&res.Config)
	if res.AvgBandwidthPerBank > peak {
		t.Fatalf("simulator itself exceeds peak: %v > %v", res.AvgBandwidthPerBank, peak)
	}
	poisoned := *res
	poisoned.AvgBandwidthPerBank = peak * 10
	// Finite and positive: the NaN gate does not catch it…
	if err := poisoned.ValidateMetrics(); err != nil {
		t.Fatalf("ValidateMetrics unexpectedly rejected: %v", err)
	}
	// …the physical gate does.
	err = poisoned.ValidatePhysical(int64(len(events)))
	if !errors.Is(err, ErrPhysicalInvariant) {
		t.Fatalf("impossible bandwidth accepted: %v", err)
	}
}

func TestValidatePhysicalRejectsSubFloorLatency(t *testing.T) {
	events := invariantTrace(500)
	res, err := RunTrace(NewNVMConfig(2, 2000, 400, 50), events)
	if err != nil {
		t.Fatal(err)
	}
	floor := MinDeviceLatencyCycles(&res.Config)
	if res.AvgLatency < floor {
		t.Fatalf("simulator itself undercuts floor: %v < %v", res.AvgLatency, floor)
	}
	poisoned := *res
	poisoned.AvgLatency = floor / 2
	if err := poisoned.ValidatePhysical(int64(len(events))); !errors.Is(err, ErrPhysicalInvariant) {
		t.Fatalf("sub-floor latency accepted: %v", err)
	}
}

func TestValidatePhysicalRejectsZeroPowerAndBadOps(t *testing.T) {
	events := invariantTrace(500)
	res, err := RunTrace(NewDRAMConfig(2, 2000, 400), events)
	if err != nil {
		t.Fatal(err)
	}
	noPower := *res
	noPower.AvgPowerPerChannel = 0
	if err := noPower.ValidatePhysical(int64(len(events))); !errors.Is(err, ErrPhysicalInvariant) {
		t.Fatalf("zero power accepted: %v", err)
	}
	badOps := *res
	badOps.AvgReadsPerChannel *= 3
	if err := badOps.ValidatePhysical(int64(len(events))); !errors.Is(err, ErrPhysicalInvariant) {
		t.Fatalf("inflated op count accepted: %v", err)
	}
	// With an unknown trace length the ops check is skipped.
	if err := badOps.ValidatePhysical(0); errors.Is(err, ErrPhysicalInvariant) {
		t.Fatalf("ops check ran without a trace length: %v", err)
	}
}

func TestMetamorphicPeakMonotonicInChannels(t *testing.T) {
	for _, mk := range []func(ch int) Config{
		func(ch int) Config { return NewDRAMConfig(ch, 2000, 1600) },
		func(ch int) Config { return NewNVMConfig(ch, 2000, 400, 50) },
		func(ch int) Config { return NewHybridConfig(ch, 2000, 666, 50, 0.25) },
	} {
		base, more := mk(2), mk(4)
		if err := base.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := more.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := MetamorphicPeakCheck(&base, &more); err != nil {
			t.Errorf("metamorphic violation: %v", err)
		}
	}
	// Misuse (non-increasing channels) is reported, not silently passed.
	a, b := NewDRAMConfig(4, 2000, 400), NewDRAMConfig(2, 2000, 400)
	if err := MetamorphicPeakCheck(&a, &b); err == nil {
		t.Fatal("decreasing channels must be rejected")
	}
}
