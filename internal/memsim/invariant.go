package memsim

import (
	"errors"
	"fmt"
)

// This file is the physical-invariant gate: checks that a simulation result
// which is numerically finite is also physically possible. The NVMain runs
// the paper discards do not only die or emit NaN — "Modeling and Simulating
// Emerging Memory Technologies" catalogs simulators that complete and emit
// garbage that is perfectly finite: bandwidth above what the channel bus
// can carry, latencies below the device's own timing floor, zero power from
// a device with static draw. ValidateMetrics (stats.go) catches the NaN/Inf
// class; ValidatePhysical catches the plausible-looking-but-impossible
// class before it poisons the surrogate training set.

// ErrPhysicalInvariant marks a result whose metrics are finite but
// physically impossible for the configuration that produced them.
var ErrPhysicalInvariant = errors.New("memsim: physically impossible metrics")

// invariantSlack absorbs float rounding in the invariant comparisons.
const invariantSlack = 1e-9

// PeakBandwidthPerBankMBs returns the per-bank bandwidth ceiling in MB/s
// for a configuration: the channel data bus delivers at most one
// LineBytes-sized burst every TBURST controller cycles, so
//
//	peak = CtrlFreqMHz · LineBytes / TBURST / (RanksPerChannel · BanksPerRank)
//
// For hybrids the faster tier's burst occupancy bounds the bus. The
// configuration must be validated (Result.Config always is).
func PeakBandwidthPerBankMBs(cfg *Config) float64 {
	tb := cfg.Timing.TBURST
	if cfg.Type == Hybrid && cfg.CacheTiming.TBURST > 0 && cfg.CacheTiming.TBURST < tb {
		tb = cfg.CacheTiming.TBURST
	}
	if tb == 0 {
		tb = 1
	}
	banksPerChannel := cfg.RanksPerChannel * cfg.BanksPerRank
	if banksPerChannel <= 0 {
		banksPerChannel = 1
	}
	lineBytes := cfg.LineBytes
	if lineBytes <= 0 {
		lineBytes = 64
	}
	// CtrlFreqMHz·1e6 cycles/s · bytes/cycle → bytes/s; /1e6 → MB/s.
	return cfg.CtrlFreqMHz * float64(lineBytes) / float64(tb) / float64(banksPerChannel)
}

// MinDeviceLatencyCycles returns the smallest device latency any request
// can experience under the configuration's timing: a row-buffer hit costs
// TCAS + TBURST on the backing store, and a DRAM-cache hit forwards the
// critical word after the cache's TCAS alone. Any reported average below
// this floor is impossible.
func MinDeviceLatencyCycles(cfg *Config) float64 {
	if cfg.Type == Hybrid {
		if cfg.HybridMode == HybridCache {
			return float64(cfg.CacheTiming.TCAS)
		}
		// Flat hybrid: the faster tier bounds the floor.
		dram := cfg.CacheTiming.TCAS + cfg.CacheTiming.TBURST
		nvm := cfg.Timing.TCAS + cfg.Timing.TBURST
		if dram < nvm {
			return float64(dram)
		}
		return float64(nvm)
	}
	return float64(cfg.Timing.TCAS + cfg.Timing.TBURST)
}

// ValidatePhysical checks the result against the configuration's physical
// envelope. traceEvents is the number of trace events replayed; pass 0 to
// skip the operation-count consistency check (e.g. when the trace length is
// unknown). It returns an error wrapping ErrPhysicalInvariant naming the
// violated bound, or nil.
//
// The bounds:
//   - power:     AvgPowerPerChannel > 0 (every device model has static draw)
//   - bandwidth: AvgBandwidthPerBank ≤ PeakBandwidthPerBankMBs(cfg)
//   - latency:   AvgLatency ≥ MinDeviceLatencyCycles(cfg) (when requests ran)
//   - ops:       Channels · (AvgReads + AvgWrites) equals traceEvents for
//     DRAM/NVM/flat-hybrid (every event is exactly one backend access) and
//     stays within [0, 2·traceEvents] for cache hybrids (a miss costs at
//     most a fill plus one writeback; hits are absorbed).
func (r *Result) ValidatePhysical(traceEvents int64) error {
	cfg := r.Config
	if !(r.AvgPowerPerChannel > 0) {
		return fmt.Errorf("%w: power %v W/channel, want > 0 (static draw)", ErrPhysicalInvariant, r.AvgPowerPerChannel)
	}
	peak := PeakBandwidthPerBankMBs(&cfg)
	if r.AvgBandwidthPerBank > peak*(1+invariantSlack) {
		return fmt.Errorf("%w: bandwidth %.3f MB/s/bank above channel peak %.3f (%d ch × %.0f MHz)",
			ErrPhysicalInvariant, r.AvgBandwidthPerBank, peak, cfg.Channels, cfg.CtrlFreqMHz)
	}
	if r.AvgLatency > 0 || traceEvents > 0 {
		if floor := MinDeviceLatencyCycles(&cfg); r.AvgLatency < floor*(1-invariantSlack) {
			return fmt.Errorf("%w: avg latency %.3f cycles below device floor %.0f (tCAS+tBURST)",
				ErrPhysicalInvariant, r.AvgLatency, floor)
		}
	}
	if traceEvents > 0 {
		ops := (r.AvgReadsPerChannel + r.AvgWritesPerChannel) * float64(cfg.Channels)
		events := float64(traceEvents)
		if cfg.Type == Hybrid && cfg.HybridMode == HybridCache {
			if ops < 0 || ops > 2*events+0.5 {
				return fmt.Errorf("%w: %d backend ops outside [0, 2×%d trace events]",
					ErrPhysicalInvariant, int64(ops+0.5), traceEvents)
			}
		} else if diff := ops - events; diff > 0.5 || diff < -0.5 {
			return fmt.Errorf("%w: %d backend ops != %d trace events",
				ErrPhysicalInvariant, int64(ops+0.5), traceEvents)
		}
	}
	return nil
}

// MetamorphicPeakCheck verifies the gate's own formula on one metamorphic
// relation: at fixed timing, adding channels must never reduce the
// aggregate bandwidth ceiling. It returns an error naming the violation, or
// nil. base must have fewer channels than more; everything but the channel
// count should match.
func MetamorphicPeakCheck(base, more *Config) error {
	if base.Channels >= more.Channels {
		return fmt.Errorf("%w: metamorphic check needs increasing channels (%d >= %d)",
			ErrPhysicalInvariant, base.Channels, more.Channels)
	}
	aggBase := PeakBandwidthPerBankMBs(base) * float64(base.TotalBanks())
	aggMore := PeakBandwidthPerBankMBs(more) * float64(more.TotalBanks())
	if aggMore < aggBase*(1-invariantSlack) {
		return fmt.Errorf("%w: peak bandwidth fell from %.3f to %.3f MB/s when channels grew %d -> %d",
			ErrPhysicalInvariant, aggBase, aggMore, base.Channels, more.Channels)
	}
	return nil
}
