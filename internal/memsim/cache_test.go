package memsim

import "testing"

func TestDRAMCacheHitAfterFill(t *testing.T) {
	c := newDRAMCache(16, 4)
	hit, wb, _ := c.access(5, false)
	if hit || wb {
		t.Fatalf("cold access: hit=%v wb=%v", hit, wb)
	}
	hit, _, _ = c.access(5, false)
	if !hit {
		t.Fatal("expected hit after fill")
	}
	if c.hitRate() != 0.5 {
		t.Fatalf("hit rate = %v", c.hitRate())
	}
}

func TestDRAMCacheDirtyWriteback(t *testing.T) {
	c := newDRAMCache(4, 4) // one set of 4 ways
	c.access(0, true)       // dirty
	c.access(4, false)
	c.access(8, false)
	c.access(12, false)
	// Fifth distinct line evicts LRU (line 0, dirty) → writeback.
	_, wb, victim := c.access(16, false)
	if !wb || victim != 0 {
		t.Fatalf("writeback=%v victim=%d, want true/0", wb, victim)
	}
	// Clean evictions need no writeback.
	_, wb, _ = c.access(20, false)
	if wb {
		t.Fatal("clean eviction should not write back")
	}
}

func TestDRAMCacheLRUOrder(t *testing.T) {
	c := newDRAMCache(2, 2)
	c.access(0, false)
	c.access(2, false)
	c.access(0, false) // touch 0 → 2 becomes LRU
	c.access(4, false) // evicts 2
	hit, _, _ := c.access(0, false)
	if !hit {
		t.Fatal("line 0 should survive (recently used)")
	}
	hit, _, _ = c.access(2, false)
	if hit {
		t.Fatal("line 2 should have been evicted")
	}
}

func TestDRAMCacheWriteHitMarksDirty(t *testing.T) {
	c := newDRAMCache(2, 2)
	c.access(0, false) // clean fill
	c.access(0, true)  // write hit → dirty
	c.access(2, false)
	c.access(4, false) // evicts 0 which is now dirty
	// One of the two prior accesses evicted line 0; check writeback occurred.
	if c.evicted == 0 {
		t.Fatal("expected a dirty eviction")
	}
}

func TestDRAMCacheHitRateEmpty(t *testing.T) {
	c := newDRAMCache(4, 2)
	if c.hitRate() != 0 {
		t.Fatal("empty cache hit rate should be 0")
	}
}

func TestDRAMCacheMinimumOneSet(t *testing.T) {
	c := newDRAMCache(2, 4) // lines < ways
	if c.sets != 1 {
		t.Fatalf("sets = %d", c.sets)
	}
	c.access(1, false)
	hit, _, _ := c.access(1, false)
	if !hit {
		t.Fatal("expected hit in single-set cache")
	}
}
