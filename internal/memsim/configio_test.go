package memsim

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := NewHybridConfig(4, 6500, 1250, 125, 0.25)
	orig.HybridMode = HybridFlat
	orig.Scheduler = FCFS
	orig.Policy = ClosedPage
	var buf bytes.Buffer
	if err := SaveConfig(&buf, &orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != Hybrid || got.HybridMode != HybridFlat || got.Scheduler != FCFS ||
		got.Policy != ClosedPage || got.Channels != 4 || got.Timing.TRCD != 125 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}

func TestLoadConfigValidates(t *testing.T) {
	// Structurally valid JSON but an invalid configuration (no TBURST).
	bad := `{"Channels": 2, "RanksPerChannel": 1, "BanksPerRank": 8, "RowsPerBank": 64,
		"CPUFreqMHz": 2000, "CtrlFreqMHz": 400}`
	if _, err := LoadConfig(strings.NewReader(bad)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	if _, err := LoadConfig(strings.NewReader(`{"NotAField": 1}`)); err == nil {
		t.Fatal("expected unknown-field error")
	}
	if _, err := LoadConfig(strings.NewReader(`{broken`)); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestConfigFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	orig := NewNVMConfig(2, 3000, 666, 67)
	if err := SaveConfigFile(path, &orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != NVM || got.Timing.TRCD != 67 || got.CtrlFreqMHz != 666 {
		t.Fatalf("file round trip: %+v", got)
	}
	if _, err := LoadConfigFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestRefreshModel(t *testing.T) {
	events := syntheticTrace(10000, 17)
	base := NewDRAMConfig(2, 2000, 400)
	refreshed := NewDRAMConfig(2, 2000, 400)
	refreshed.Timing.TREFI = 3120 // 7.8 µs at 400 MHz
	refreshed.Timing.TRFC = 140
	refreshed.Energy.ERefresh = 20
	a := runCfg(t, base, events)
	b := runCfg(t, refreshed, events)
	var refreshes uint64
	for _, ch := range b.Channels {
		refreshes += ch.Refreshes
	}
	if refreshes == 0 {
		t.Fatal("no refreshes recorded")
	}
	for _, ch := range a.Channels {
		if ch.Refreshes != 0 {
			t.Fatal("refresh disabled config recorded refreshes")
		}
	}
	// Refresh steals bank time and burns energy: total latency and power
	// cannot improve.
	if b.AvgTotalLatency < a.AvgTotalLatency {
		t.Fatalf("refresh reduced total latency: %v vs %v", b.AvgTotalLatency, a.AvgTotalLatency)
	}
	if b.TotalEnergyNJ <= a.TotalEnergyNJ {
		t.Fatalf("refresh energy missing: %v vs %v", b.TotalEnergyNJ, a.TotalEnergyNJ)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	events := scatterTrace(20000, 18)
	res := runCfg(t, NewNVMConfig(2, 2000, 400, 40), events)
	if !(res.TotalLatencyP50 <= res.TotalLatencyP95 && res.TotalLatencyP95 <= res.TotalLatencyP99) {
		t.Fatalf("percentiles not monotone: %v %v %v",
			res.TotalLatencyP50, res.TotalLatencyP95, res.TotalLatencyP99)
	}
	if res.TotalLatencyP50 <= 0 {
		t.Fatalf("p50 = %v", res.TotalLatencyP50)
	}
	// Log2-bucket estimates are coarse; the mean must sit within the
	// histogram's range.
	if res.AvgTotalLatency > 4*res.TotalLatencyP99 {
		t.Fatalf("mean %v wildly above p99 %v", res.AvgTotalLatency, res.TotalLatencyP99)
	}
}

func TestLatencyPercentileHelper(t *testing.T) {
	var hist [64]uint64
	// 100 samples of latency ~8 (bucket 4: values 8..15).
	hist[4] = 100
	p := latencyPercentile(&hist, 100, 0.5)
	if p < 8 || p > 16 {
		t.Fatalf("p50 estimate %v outside bucket", p)
	}
	if latencyPercentile(&hist, 0, 0.5) != 0 {
		t.Fatal("empty histogram should give 0")
	}
	var zeroBucket [64]uint64
	zeroBucket[0] = 10
	if latencyPercentile(&zeroBucket, 10, 0.5) != 0 {
		t.Fatal("zero-latency bucket should estimate 0")
	}
}

func TestResultStringFlatHybrid(t *testing.T) {
	events := syntheticTrace(2000, 19)
	cfg := NewHybridConfig(2, 2000, 400, 40, 0.25)
	cfg.HybridMode = HybridFlat
	res := runCfg(t, cfg, events)
	if s := res.String(); s == "" {
		t.Fatal("empty render")
	}
	if res.CacheHitRate != 0 {
		t.Fatalf("flat hybrid cache hit rate = %v", res.CacheHitRate)
	}
}

func TestQueueDepthSensitivity(t *testing.T) {
	// A deeper controller queue admits more requests before stalling, so the
	// queue-inclusive total latency grows with depth under saturation while
	// front-end stalls shrink.
	events := scatterTrace(15000, 20)
	shallow := NewNVMConfig(2, 2000, 400, 80)
	shallow.QueueDepth = 4
	deep := NewNVMConfig(2, 2000, 400, 80)
	deep.QueueDepth = 64
	a := runCfg(t, shallow, events)
	b := runCfg(t, deep, events)
	if b.AvgTotalLatency <= a.AvgTotalLatency {
		t.Fatalf("deeper queue should raise total latency under saturation: %v vs %v",
			b.AvgTotalLatency, a.AvgTotalLatency)
	}
	var stallsA, stallsB uint64
	for _, ch := range a.Channels {
		stallsA += ch.StallCycles
	}
	for _, ch := range b.Channels {
		stallsB += ch.StallCycles
	}
	if stallsB >= stallsA {
		t.Fatalf("deeper queue should reduce front-end stalls: %d vs %d", stallsB, stallsA)
	}
}
