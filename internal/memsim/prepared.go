package memsim

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"graphdse/internal/trace"
)

// PreparedTrace is a trace validated and decoded exactly once into an
// immutable, sweep-shareable form. A design-space sweep replays the same
// trace against hundreds of configurations (416 in the paper); preparing it
// once drops the per-point work to address mapping and queueing — no
// re-validation, no re-decoding, no per-point copy of the event slice. The
// struct-of-arrays layout also streams through the cache better than
// []trace.Event during partitioning.
//
// On top of the decoded arrays, a PreparedTrace memoizes per-channel
// partitions keyed by mapping geometry (see partitionFor): sweep points
// sharing an interleave route the trace to channels once and replay the
// cached partition thereafter.
//
// A PreparedTrace is safe for concurrent use by any number of simulators.
type PreparedTrace struct {
	cycles []uint64
	addrs  []uint64
	writes []bool
	stats  trace.Stats

	// Partition cache. Entries are single-flight: concurrent replays of a
	// new geometry block on ready while one goroutine partitions.
	pmu        sync.Mutex
	parts      map[geomKey]*partEntry
	partClock  uint64 // LRU clock
	partHits   uint64
	partMisses uint64
}

type partEntry struct {
	ready   chan struct{} // closed once part is populated
	part    *tracePartition
	lastUse uint64
}

// partitionCacheCap bounds cached partitions per trace. The paper's 416-point
// space spans only two mapping geometries (2 and 4 channels), so a small cap
// holds every geometry of a realistic sweep while bounding worst-case memory
// at cap × trace size.
const partitionCacheCap = 8

// partitionFor returns the per-channel partition of this trace under the
// mapper's geometry, building (in parallel, for large traces) and caching it
// on first use. Concurrent callers with the same geometry share one build.
func (p *PreparedTrace) partitionFor(m *AddressMapper) *tracePartition {
	key := m.geom()
	p.pmu.Lock()
	if p.parts == nil {
		p.parts = make(map[geomKey]*partEntry)
	}
	p.partClock++
	if e, ok := p.parts[key]; ok {
		e.lastUse = p.partClock
		p.partHits++
		p.pmu.Unlock()
		<-e.ready
		return e.part
	}
	p.partMisses++
	if len(p.parts) >= partitionCacheCap {
		// Evict the least-recently-used completed entry; in-flight builds
		// are never evicted (their builders would leak the slot).
		var oldest geomKey
		oldestUse := uint64(math.MaxUint64)
		found := false
		for k, e := range p.parts {
			select {
			case <-e.ready:
			default:
				continue
			}
			if e.lastUse < oldestUse {
				oldest, oldestUse, found = k, e.lastUse, true
			}
		}
		if found {
			delete(p.parts, oldest)
		}
	}
	e := &partEntry{ready: make(chan struct{}), lastUse: p.partClock}
	p.parts[key] = e
	p.pmu.Unlock()
	e.part = buildPartition(m, p.cycles, p.addrs, p.writes)
	close(e.ready)
	return e.part
}

// PartitionCacheStats reports the partition cache's occupancy and traffic.
type PartitionCacheStats struct {
	Entries int    // geometries currently cached
	Hits    uint64 // replays served by a cached (or in-flight) partition
	Misses  uint64 // replays that built a partition
}

// PartitionCacheStats returns a snapshot of the partition cache counters.
func (p *PreparedTrace) PartitionCacheStats() PartitionCacheStats {
	p.pmu.Lock()
	defer p.pmu.Unlock()
	return PartitionCacheStats{Entries: len(p.parts), Hits: p.partHits, Misses: p.partMisses}
}

// Prepare validates and decodes events into a PreparedTrace.
func Prepare(events []trace.Event) (*PreparedTrace, error) {
	p := newPreparedTrace(len(events))
	if err := p.append(events); err != nil {
		return nil, err
	}
	return p, nil
}

// PrepareSource drains a trace stream into a PreparedTrace, validating each
// event exactly once. Only the decoded arrays are retained; the stream
// itself is never materialized as []trace.Event.
func PrepareSource(src trace.Source) (*PreparedTrace, error) {
	p := newPreparedTrace(0)
	batch := make([]trace.Event, trace.DefaultBatch)
	for {
		n, err := src.Next(batch)
		if aerr := p.append(batch[:n]); aerr != nil {
			return nil, aerr
		}
		if err == io.EOF {
			return p, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func newPreparedTrace(capHint int) *PreparedTrace {
	return &PreparedTrace{
		cycles: make([]uint64, 0, capHint),
		addrs:  make([]uint64, 0, capHint),
		writes: make([]bool, 0, capHint),
	}
}

func (p *PreparedTrace) append(events []trace.Event) error {
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		p.cycles = append(p.cycles, e.Cycle)
		p.addrs = append(p.addrs, e.Addr)
		p.writes = append(p.writes, e.Op == trace.Write)
		p.stats.Add(e)
	}
	return nil
}

// Len returns the number of events in the prepared trace.
func (p *PreparedTrace) Len() int { return len(p.cycles) }

// preparedCRCTable is CRC32-Castagnoli, matching the artifact container's
// checksum choice.
var preparedCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Fingerprint returns a CRC32-Castagnoli checksum over the decoded event
// arrays. A prepared trace is immutable, so its fingerprint is fixed at
// preparation time; long-lived holders (the daemon's content-addressed trace
// cache) recompute it on access to detect in-memory corruption of an entry
// shared by many concurrent jobs and re-decode instead of serving poison.
// The partition cache is derived state and deliberately outside the
// fingerprint.
func (p *PreparedTrace) Fingerprint() uint32 {
	h := crc32.New(preparedCRCTable)
	var buf [17]byte
	for i := range p.cycles {
		binary.LittleEndian.PutUint64(buf[0:8], p.cycles[i])
		binary.LittleEndian.PutUint64(buf[8:16], p.addrs[i])
		buf[16] = 0
		if p.writes[i] {
			buf[16] = 1
		}
		h.Write(buf[:])
	}
	return h.Sum32()
}

// Stats returns the aggregate trace statistics gathered during preparation.
func (p *PreparedTrace) Stats() trace.Stats { return p.stats }

// Events reconstructs the trace as a fresh []trace.Event slice. The thread
// tag is not retained by preparation (the simulator does not consume it), so
// reconstructed events carry thread 0.
func (p *PreparedTrace) Events() []trace.Event {
	out := make([]trace.Event, len(p.cycles))
	for i := range out {
		op := trace.Read
		if p.writes[i] {
			op = trace.Write
		}
		out[i] = trace.Event{Cycle: p.cycles[i], Op: op, Addr: p.addrs[i]}
	}
	return out
}

// RunPrepared replays a prepared trace. Events are not re-validated — that
// happened once at Prepare time — and the per-channel partition is drawn
// from the trace's geometry-keyed cache, so per-point cost is channel
// simulation plus (on a geometry's first use only) address mapping.
func (s *Simulator) RunPrepared(p *PreparedTrace) (*Result, error) {
	if p.Len() == 0 {
		return nil, ErrEmptyTrace
	}
	return s.runPartition(p.partitionFor(s.mapper))
}

// RunSource replays a trace stream in one pass without materializing it as
// []trace.Event: each batch is validated, mapped, and partitioned into the
// per-channel queues as it arrives. Memory use is the simulator's working
// form (the per-channel partition) plus one batch.
func (s *Simulator) RunSource(src trace.Source) (*Result, error) {
	part := newTracePartition(s.cfg.Channels, 0)
	batch := make([]trace.Event, trace.DefaultBatch)
	total := 0
	for {
		n, err := src.Next(batch)
		for _, e := range batch[:n] {
			if verr := e.Validate(); verr != nil {
				return nil, verr
			}
			part.route(s.mapper, e.Cycle, e.Addr, e.Op == trace.Write)
		}
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if total == 0 {
		return nil, ErrEmptyTrace
	}
	return s.runPartition(part)
}

// RunPreparedTrace is the PreparedTrace analog of RunTrace: build a
// simulator for cfg and replay the prepared trace in one call.
func RunPreparedTrace(cfg Config, p *PreparedTrace) (*Result, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.RunPrepared(p)
}

// RunTraceSource is the streaming analog of RunTrace.
func RunTraceSource(cfg Config, src trace.Source) (*Result, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.RunSource(src)
}
