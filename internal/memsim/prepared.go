package memsim

import (
	"encoding/binary"
	"hash/crc32"
	"io"

	"graphdse/internal/trace"
)

// PreparedTrace is a trace validated and decoded exactly once into an
// immutable, sweep-shareable form. A design-space sweep replays the same
// trace against hundreds of configurations (416 in the paper); preparing it
// once drops the per-point work to address mapping and queueing — no
// re-validation, no re-decoding, no per-point copy of the event slice. The
// struct-of-arrays layout also streams through the cache better than
// []trace.Event during partitioning.
//
// A PreparedTrace is safe for concurrent use by any number of simulators.
type PreparedTrace struct {
	cycles []uint64
	addrs  []uint64
	writes []bool
	stats  trace.Stats
}

// Prepare validates and decodes events into a PreparedTrace.
func Prepare(events []trace.Event) (*PreparedTrace, error) {
	p := newPreparedTrace(len(events))
	if err := p.append(events); err != nil {
		return nil, err
	}
	return p, nil
}

// PrepareSource drains a trace stream into a PreparedTrace, validating each
// event exactly once. Only the decoded arrays are retained; the stream
// itself is never materialized as []trace.Event.
func PrepareSource(src trace.Source) (*PreparedTrace, error) {
	p := newPreparedTrace(0)
	batch := make([]trace.Event, trace.DefaultBatch)
	for {
		n, err := src.Next(batch)
		if aerr := p.append(batch[:n]); aerr != nil {
			return nil, aerr
		}
		if err == io.EOF {
			return p, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func newPreparedTrace(capHint int) *PreparedTrace {
	return &PreparedTrace{
		cycles: make([]uint64, 0, capHint),
		addrs:  make([]uint64, 0, capHint),
		writes: make([]bool, 0, capHint),
	}
}

func (p *PreparedTrace) append(events []trace.Event) error {
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		p.cycles = append(p.cycles, e.Cycle)
		p.addrs = append(p.addrs, e.Addr)
		p.writes = append(p.writes, e.Op == trace.Write)
		p.stats.Add(e)
	}
	return nil
}

// Len returns the number of events in the prepared trace.
func (p *PreparedTrace) Len() int { return len(p.cycles) }

// preparedCRCTable is CRC32-Castagnoli, matching the artifact container's
// checksum choice.
var preparedCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Fingerprint returns a CRC32-Castagnoli checksum over the decoded event
// arrays. A prepared trace is immutable, so its fingerprint is fixed at
// preparation time; long-lived holders (the daemon's content-addressed trace
// cache) recompute it on access to detect in-memory corruption of an entry
// shared by many concurrent jobs and re-decode instead of serving poison.
func (p *PreparedTrace) Fingerprint() uint32 {
	h := crc32.New(preparedCRCTable)
	var buf [17]byte
	for i := range p.cycles {
		binary.LittleEndian.PutUint64(buf[0:8], p.cycles[i])
		binary.LittleEndian.PutUint64(buf[8:16], p.addrs[i])
		buf[16] = 0
		if p.writes[i] {
			buf[16] = 1
		}
		h.Write(buf[:])
	}
	return h.Sum32()
}

// Stats returns the aggregate trace statistics gathered during preparation.
func (p *PreparedTrace) Stats() trace.Stats { return p.stats }

// Events reconstructs the trace as a fresh []trace.Event slice. The thread
// tag is not retained by preparation (the simulator does not consume it), so
// reconstructed events carry thread 0.
func (p *PreparedTrace) Events() []trace.Event {
	out := make([]trace.Event, len(p.cycles))
	for i := range out {
		op := trace.Read
		if p.writes[i] {
			op = trace.Write
		}
		out[i] = trace.Event{Cycle: p.cycles[i], Op: op, Addr: p.addrs[i]}
	}
	return out
}

// RunPrepared replays a prepared trace. Events are not re-validated — that
// happened once at Prepare time — so per-point cost is address mapping,
// partitioning, and channel simulation only.
func (s *Simulator) RunPrepared(p *PreparedTrace) (*Result, error) {
	n := p.Len()
	if n == 0 {
		return nil, ErrEmptyTrace
	}
	cfg := &s.cfg
	ratio := cfg.CtrlFreqMHz / cfg.CPUFreqMHz
	// Presize channel queues assuming a roughly uniform interleave, with
	// slack so skewed mappings rarely reallocate.
	capHint := n/cfg.Channels + n/8 + 8
	perChannel := make([][]request, cfg.Channels)
	for ch := range perChannel {
		perChannel[ch] = make([]request, 0, capHint)
	}
	for i := 0; i < n; i++ {
		loc := s.mapper.Map(p.addrs[i])
		perChannel[loc.Channel] = append(perChannel[loc.Channel], request{
			arrival: uint64(float64(p.cycles[i]) * ratio),
			write:   p.writes[i],
			loc:     loc,
		})
	}
	return s.runPartitioned(perChannel)
}

// RunSource replays a trace stream in one pass without materializing it as
// []trace.Event: each batch is validated, mapped, and partitioned into the
// per-channel queues as it arrives. Memory use is the simulator's working
// form (per-channel request queues) plus one batch.
func (s *Simulator) RunSource(src trace.Source) (*Result, error) {
	cfg := &s.cfg
	ratio := cfg.CtrlFreqMHz / cfg.CPUFreqMHz
	perChannel := make([][]request, cfg.Channels)
	batch := make([]trace.Event, trace.DefaultBatch)
	total := 0
	for {
		n, err := src.Next(batch)
		for _, e := range batch[:n] {
			if verr := e.Validate(); verr != nil {
				return nil, verr
			}
			loc := s.mapper.Map(e.Addr)
			perChannel[loc.Channel] = append(perChannel[loc.Channel], request{
				arrival: uint64(float64(e.Cycle) * ratio),
				write:   e.Op == trace.Write,
				loc:     loc,
			})
		}
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if total == 0 {
		return nil, ErrEmptyTrace
	}
	return s.runPartitioned(perChannel)
}

// RunPreparedTrace is the PreparedTrace analog of RunTrace: build a
// simulator for cfg and replay the prepared trace in one call.
func RunPreparedTrace(cfg Config, p *PreparedTrace) (*Result, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.RunPrepared(p)
}

// RunTraceSource is the streaming analog of RunTrace.
func RunTraceSource(cfg Config, src trace.Source) (*Result, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.RunSource(src)
}
