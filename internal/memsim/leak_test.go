package memsim

import (
	"runtime"
	"testing"
	"time"

	"graphdse/internal/trace"
)

// waitGoroutinesSettle fails the test if the goroutine count does not return
// to the baseline within a short settle window. The simulator spawns one
// goroutine per memory channel; a replay that strands them would leak on
// every point of a 416-point sweep.
func waitGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunTraceSourceNoGoroutineLeak(t *testing.T) {
	events := syntheticTrace(4000, 51)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		cfg := NewDRAMConfig(4, 2000, 400)
		if _, err := RunTraceSource(cfg, trace.NewSliceSource(events)); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutinesSettle(t, base)
}

// errSource fails after delivering a prefix, exercising the simulator's
// error-path teardown of the per-channel goroutines.
type errSource struct {
	inner trace.Source
	left  int
}

func (s *errSource) Next(batch []trace.Event) (int, error) {
	if s.left <= 0 {
		return 0, trace.ErrFormat
	}
	if len(batch) > s.left {
		batch = batch[:s.left]
	}
	n, err := s.inner.Next(batch)
	s.left -= n
	return n, err
}

func TestRunTraceSourceErrorPathNoGoroutineLeak(t *testing.T) {
	events := syntheticTrace(4000, 52)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		cfg := NewDRAMConfig(4, 2000, 400)
		src := &errSource{inner: trace.NewSliceSource(events), left: 1000}
		if _, err := RunTraceSource(cfg, src); err == nil {
			t.Fatal("expected source error to propagate")
		}
	}
	waitGoroutinesSettle(t, base)
}
