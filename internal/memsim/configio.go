package memsim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"graphdse/internal/artifact"
)

// Config files: NVMain drives its simulations from per-configuration files;
// this repository uses JSON with the same role. SaveConfig/LoadConfig give
// the CLI tools and sweep scripts durable configuration artifacts.

// SaveConfig writes the configuration as indented JSON.
func SaveConfig(w io.Writer, c *Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// LoadConfig reads and validates a JSON configuration.
func LoadConfig(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("memsim: parsing config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// SaveConfigFile writes the configuration to path atomically: an interrupted
// save leaves any existing file untouched.
func SaveConfigFile(path string, c *Config) error {
	return artifact.WriteFileAtomic(path, 0o644, func(w io.Writer) error {
		return SaveConfig(w, c)
	})
}

// LoadConfigFile reads a configuration from path.
func LoadConfigFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return LoadConfig(f)
}
