package memsim

import (
	"strings"
	"testing"
)

func TestMemTypeStrings(t *testing.T) {
	if DRAM.String() != "DRAM" || NVM.String() != "NVM" || Hybrid.String() != "Hybrid" {
		t.Fatal("MemType names wrong")
	}
	if DRAM.Short() != "D" || NVM.Short() != "N" || Hybrid.Short() != "H" {
		t.Fatal("MemType short tags wrong")
	}
	if !strings.Contains(MemType(9).String(), "9") || MemType(9).Short() != "?" {
		t.Fatal("unknown MemType rendering wrong")
	}
	if FCFS.String() != "FCFS" || FRFCFS.String() != "FR-FCFS" {
		t.Fatal("scheduler names wrong")
	}
}

func TestValidateFillsDefaults(t *testing.T) {
	c := NewDRAMConfig(2, 2000, 400)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.LineBytes != 64 || c.QueueDepth != 32 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	if c.EnduranceLimit != 1e15 {
		t.Fatalf("DRAM endurance default = %v", c.EnduranceLimit)
	}
	n := NewNVMConfig(2, 2000, 400, 20)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.EnduranceLimit != 1e8 {
		t.Fatalf("NVM endurance default = %v", n.EnduranceLimit)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{Channels: 2, RanksPerChannel: 1, BanksPerRank: 8, RowsPerBank: 64},                                      // no freqs
		{Channels: 2, RanksPerChannel: 1, BanksPerRank: 8, RowsPerBank: 64, CPUFreqMHz: 2000, CtrlFreqMHz: 400},  // no TBURST
		{Channels: -1, RanksPerChannel: 1, BanksPerRank: 8, RowsPerBank: 64, CPUFreqMHz: 2000, CtrlFreqMHz: 400}, // bad channels
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
	h := NewHybridConfig(2, 2000, 400, 20, 0.25)
	h.DRAMFraction = 1.5
	if err := h.Validate(); err == nil {
		t.Fatal("expected fraction error")
	}
	h2 := NewHybridConfig(2, 2000, 400, 20, 0.25)
	h2.CacheTiming = Timing{}
	if err := h2.Validate(); err == nil {
		t.Fatal("expected cache-timing error")
	}
}

func TestValidateHybridCacheGeometry(t *testing.T) {
	c := NewHybridConfig(2, 2000, 666, 33, 0.25)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.CacheLines <= 0 || c.CacheLines%c.CacheWays != 0 {
		t.Fatalf("cache geometry: lines=%d ways=%d", c.CacheLines, c.CacheWays)
	}
	// Larger fraction → larger cache.
	big := NewHybridConfig(2, 2000, 666, 33, 0.5)
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	if big.CacheLines <= c.CacheLines {
		t.Fatalf("fraction 0.5 cache (%d) not larger than 0.25 (%d)", big.CacheLines, c.CacheLines)
	}
}

func TestNVMTimingNoRestore(t *testing.T) {
	nt := NVMTiming(40)
	if nt.TRAS != 0 {
		t.Fatalf("NVM TRAS = %d, want 0 (no data restore)", nt.TRAS)
	}
	if nt.TRCD != 40 {
		t.Fatalf("TRCD = %d", nt.TRCD)
	}
	if nt.TWP == 0 {
		t.Fatal("NVM should have a write-pulse penalty")
	}
	dt := DRAMTiming()
	if dt.TRAS != 24 || dt.TRCD != 9 {
		t.Fatalf("paper DRAM timing: tRAS=%d tRCD=%d, want 24/9", dt.TRAS, dt.TRCD)
	}
}

func TestNVMTRCDSweepMatchesPaper(t *testing.T) {
	cases := map[float64][]uint64{
		400:  {20, 30, 40, 50, 60, 80},
		666:  {33, 50, 67, 83, 100, 133},
		1250: {62, 94, 125, 156, 187, 250},
		1600: {80, 120, 160, 200, 240, 320},
	}
	for freq, want := range cases {
		got := NVMTRCDSweep(freq)
		if len(got) != len(want) {
			t.Fatalf("freq %v: %v", freq, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("freq %v: got %v, want %v", freq, got, want)
			}
		}
	}
	// Unknown frequency scales proportionally.
	got := NVMTRCDSweep(800)
	if got[0] != 40 || got[5] != 160 {
		t.Fatalf("scaled sweep = %v", got)
	}
}

func TestTotalBanks(t *testing.T) {
	c := NewDRAMConfig(4, 2000, 400)
	if got := c.TotalBanks(); got != 32 {
		t.Fatalf("TotalBanks = %d", got)
	}
}

func TestAddressMapperRoundRobin(t *testing.T) {
	c := NewDRAMConfig(4, 2000, 400)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewAddressMapper(&c)
	// Runs of 4 consecutive 64B lines share a channel; runs rotate channels.
	for i := 0; i < 32; i++ {
		loc := m.Map(uint64(i * 64))
		if want := (i / 4) % 4; loc.Channel != want {
			t.Fatalf("line %d channel = %d, want %d", i, loc.Channel, want)
		}
	}
	// Line 16 revisits channel 0 at the next column of the same open row.
	first := m.Map(0)
	nextCol := m.Map(64 * 16)
	if nextCol.Channel != first.Channel || nextCol.Row != first.Row || nextCol.Bank != first.Bank {
		t.Fatalf("sequential same-channel lines should share a row: %+v vs %+v", first, nextCol)
	}
	// Same-line bytes map identically.
	a := m.Map(100)
	b := m.Map(120)
	if a != b {
		t.Fatalf("same line mapped differently: %+v vs %+v", a, b)
	}
}

func TestAddressMapperFieldsInRange(t *testing.T) {
	c := NewNVMConfig(2, 2000, 666, 33)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewAddressMapper(&c)
	for addr := uint64(0); addr < 1<<22; addr += 4093 {
		loc := m.Map(addr)
		if loc.Channel < 0 || loc.Channel >= c.Channels ||
			loc.Rank < 0 || loc.Rank >= c.RanksPerChannel ||
			loc.Bank < 0 || loc.Bank >= c.BanksPerRank ||
			loc.Row < 0 || loc.Row >= c.RowsPerBank {
			t.Fatalf("addr %#x out of range: %+v", addr, loc)
		}
		bi := m.BankIndex(loc)
		if bi < 0 || bi >= m.BanksPerChannel() {
			t.Fatalf("bank index %d out of range", bi)
		}
	}
}

func TestMappingSchemes(t *testing.T) {
	if MapRowInterleaved.String() != "row-interleaved" || MapChannelBlocked.String() != "channel-blocked" {
		t.Fatal("scheme names wrong")
	}
	c := NewDRAMConfig(4, 2000, 400)
	c.Mapping = MapChannelBlocked
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewAddressMapper(&c)
	// A contiguous 1 MiB scan stays inside one channel under blocked
	// mapping.
	first := m.Map(0).Channel
	for addr := uint64(0); addr < 1<<20; addr += 4096 {
		if m.Map(addr).Channel != first {
			t.Fatalf("blocked mapping split a 1 MiB region at %#x", addr)
		}
	}
	// The next 4 MiB block lands on the next channel.
	if next := m.Map(4 << 20).Channel; next == first {
		t.Fatal("blocked mapping did not advance channels across blocks")
	}
	// Fields stay in range.
	for addr := uint64(0); addr < 1<<24; addr += 65537 {
		loc := m.Map(addr)
		if loc.Channel < 0 || loc.Channel >= 4 || loc.Row < 0 || loc.Row >= c.RowsPerBank {
			t.Fatalf("out of range: %+v", loc)
		}
	}
}

func TestMappingSchemeBalancesLoad(t *testing.T) {
	// A small working set (1 MiB) spreads evenly under interleaving but
	// lands on one channel under blocked mapping.
	inter := NewDRAMConfig(4, 2000, 400)
	if err := inter.Validate(); err != nil {
		t.Fatal(err)
	}
	blocked := NewDRAMConfig(4, 2000, 400)
	blocked.Mapping = MapChannelBlocked
	if err := blocked.Validate(); err != nil {
		t.Fatal(err)
	}
	mi := NewAddressMapper(&inter)
	mb := NewAddressMapper(&blocked)
	countI := make([]int, 4)
	countB := make([]int, 4)
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		countI[mi.Map(addr).Channel]++
		countB[mb.Map(addr).Channel]++
	}
	for ch, c := range countI {
		if c == 0 {
			t.Fatalf("interleaved left channel %d idle", ch)
		}
	}
	busy := 0
	for _, c := range countB {
		if c > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("blocked mapping used %d channels for 1 MiB, want 1", busy)
	}
}
