package memsim

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The golden equivalence suite pins the replay engine's exact output across
// the full device × scheduler × page-policy matrix (plus refresh and
// channel-blocked mapping variants). The fixtures were captured from the
// pre-refactor engine (PR 7's seed); every later restructuring of the replay
// core must reproduce them bit-for-bit — float fields included, since JSON
// round-trips float64 exactly via the shortest-representation encoding.
//
// Regenerate (only when the model itself intentionally changes) with:
//
//	MEMSIM_UPDATE_GOLDEN=1 go test ./internal/memsim -run TestGolden

// goldenTraceN is sized so every config exercises queue backpressure, row
// misses, cache evictions and writebacks without bloating test time.
const goldenTraceN = 20000

// goldenCase is one cell of the equivalence matrix.
type goldenCase struct {
	name string
	cfg  Config
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	types := []struct {
		tag string
		mk  func() Config
	}{
		{"dram", func() Config { return NewDRAMConfig(2, 2000, 666) }},
		{"nvm", func() Config { return NewNVMConfig(2, 2000, 666, 67) }},
		{"hybrid-cache", func() Config { return NewHybridConfig(2, 2000, 666, 67, 0.25) }},
		{"hybrid-flat", func() Config {
			c := NewHybridConfig(2, 2000, 666, 67, 0.25)
			c.HybridMode = HybridFlat
			return c
		}},
	}
	scheds := []struct {
		tag string
		s   SchedulerKind
	}{{"fcfs", FCFS}, {"frfcfs", FRFCFS}}
	pols := []struct {
		tag string
		p   PagePolicy
	}{{"open", OpenPage}, {"closed", ClosedPage}}
	for _, ty := range types {
		for _, sc := range scheds {
			for _, po := range pols {
				cfg := ty.mk()
				cfg.Scheduler = sc.s
				cfg.Policy = po.p
				cases = append(cases, goldenCase{
					name: ty.tag + "_" + sc.tag + "_" + po.tag,
					cfg:  cfg,
				})
			}
		}
	}
	// Refresh-enabled DRAM: the only path exercising TREFI/TRFC catch-up.
	refresh := NewDRAMConfig(2, 2000, 666)
	refresh.Timing.TREFI = 1560
	refresh.Timing.TRFC = 44
	cases = append(cases, goldenCase{name: "dram_refresh", cfg: refresh})
	// Channel-blocked mapping: the NUMA-style address decomposition.
	blocked := NewDRAMConfig(4, 2000, 666)
	blocked.Mapping = MapChannelBlocked
	cases = append(cases, goldenCase{name: "dram_blocked", cfg: blocked})
	return cases
}

// goldenFixture wraps a Result for JSON persistence. LifetimeYears can be
// +Inf (no tracked writes), which encoding/json refuses; it travels as a
// flag and is restored on load.
type goldenFixture struct {
	LifetimeInf bool   `json:"lifetime_inf,omitempty"`
	Result      Result `json:"result"`
}

func fixturePath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func marshalFixture(t *testing.T, res *Result) []byte {
	t.Helper()
	fx := goldenFixture{Result: *res}
	if math.IsInf(fx.Result.LifetimeYears, 1) {
		fx.LifetimeInf = true
		fx.Result.LifetimeYears = 0
	}
	data, err := json.MarshalIndent(&fx, "", " ")
	if err != nil {
		t.Fatalf("marshal fixture: %v", err)
	}
	return append(data, '\n')
}

func loadFixture(t *testing.T, name string) *Result {
	t.Helper()
	data, err := os.ReadFile(fixturePath(name))
	if err != nil {
		t.Fatalf("golden fixture %s missing (regenerate with MEMSIM_UPDATE_GOLDEN=1): %v", name, err)
	}
	var fx goldenFixture
	if err := json.Unmarshal(data, &fx); err != nil {
		t.Fatalf("golden fixture %s corrupt: %v", name, err)
	}
	if fx.LifetimeInf {
		fx.Result.LifetimeYears = math.Inf(1)
	}
	return &fx.Result
}

// TestGoldenEquivalence replays the deterministic golden trace against every
// matrix cell through all three public replay paths and requires each to be
// bit-identical to the committed fixture.
func TestGoldenEquivalence(t *testing.T) {
	events := syntheticTrace(goldenTraceN, 77)
	update := os.Getenv("MEMSIM_UPDATE_GOLDEN") != ""
	if update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	pt, err := Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := RunTrace(c.cfg, events)
			if err != nil {
				t.Fatal(err)
			}
			if update {
				if err := os.WriteFile(fixturePath(c.name), marshalFixture(t, res), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want := loadFixture(t, c.name)
			if !reflect.DeepEqual(res, want) {
				t.Fatalf("Run diverged from golden fixture %s:\n got %+v\nwant %+v", c.name, res, want)
			}
			// The prepared path must be identical, not merely close.
			sim, err := New(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			prepRes, err := sim.RunPrepared(pt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(prepRes, want) {
				t.Fatalf("RunPrepared diverged from golden fixture %s", c.name)
			}
			// Replaying again on the same simulator exercises state reuse
			// (pooled engines, cached partitions); still bit-identical.
			again, err := sim.RunPrepared(pt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, want) {
				t.Fatalf("repeat RunPrepared diverged from golden fixture %s", c.name)
			}
		})
	}
}
