package memsim

import (
	"bytes"
	"reflect"
	"testing"

	"graphdse/internal/trace"
)

// preparedConfigs covers every memory organization so the equivalence
// theorems below hold across the full design space, not just DRAM.
func preparedConfigs() map[string]Config {
	hybrid := NewHybridConfig(2, 2000, 400, 36, 0.125)
	flat := NewHybridConfig(4, 2000, 400, 36, 0.25)
	flat.HybridMode = HybridFlat
	return map[string]Config{
		"dram":   NewDRAMConfig(2, 2000, 400),
		"nvm":    NewNVMConfig(4, 2000, 400, 36),
		"hybrid": hybrid,
		"flat":   flat,
	}
}

// TestRunPreparedMatchesRun is the core decode-once guarantee: replaying a
// PreparedTrace must yield a Result identical to the validate-per-run slice
// path, for every memory organization.
func TestRunPreparedMatchesRun(t *testing.T) {
	events := syntheticTrace(4000, 7)
	pt, err := Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range preparedConfigs() {
		want := runCfg(t, cfg, events)
		got, err := RunPreparedTrace(cfg, pt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: RunPrepared result differs from Run:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestRunSourceMatchesRun: streaming a trace through RunSource must be
// indistinguishable from running the equivalent slice.
func TestRunSourceMatchesRun(t *testing.T) {
	events := syntheticTrace(4000, 8)
	for name, cfg := range preparedConfigs() {
		want := runCfg(t, cfg, events)
		got, err := RunTraceSource(cfg, trace.NewSliceSource(events))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: RunSource result differs from Run:\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestRunSourceFromText streams straight from NVMain text — the cmd/memsim
// path — and must match the parse-then-run pipeline.
func TestRunSourceFromText(t *testing.T) {
	events := syntheticTrace(1000, 9)
	var buf bytes.Buffer
	if err := trace.WriteNVMain(&buf, events); err != nil {
		t.Fatal(err)
	}
	cfg := NewDRAMConfig(2, 2000, 400)
	want := runCfg(t, cfg, events)
	got, err := RunTraceSource(cfg, trace.NewNVMainSource(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunSource over NVMain text differs from slice path")
	}
}

func TestPrepareSourceMatchesPrepare(t *testing.T) {
	events := syntheticTrace(3000, 10)
	want, err := Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PrepareSource(trace.NewSliceSource(events))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() || got.Stats() != want.Stats() {
		t.Fatalf("PrepareSource: len=%d stats=%+v, want len=%d stats=%+v",
			got.Len(), got.Stats(), want.Len(), want.Stats())
	}
	cfg := NewDRAMConfig(2, 2000, 400)
	a, err := RunPreparedTrace(cfg, got)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPreparedTrace(cfg, want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PrepareSource and Prepare replay differently")
	}
}

func TestPreparedEventsRoundTrip(t *testing.T) {
	events := syntheticTrace(500, 11)
	pt, err := Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	back := pt.Events()
	if len(back) != len(events) {
		t.Fatalf("Events() len = %d, want %d", len(back), len(events))
	}
	for i := range back {
		// Thread is not retained; everything else must survive.
		if back[i].Cycle != events[i].Cycle || back[i].Op != events[i].Op || back[i].Addr != events[i].Addr {
			t.Fatalf("event %d: %+v vs %+v", i, back[i], events[i])
		}
	}
}

func TestPrepareRejectsBadEvent(t *testing.T) {
	if _, err := Prepare([]trace.Event{{Cycle: 1, Op: 'Q'}}); err == nil {
		t.Fatal("expected bad-op error")
	}
}

func TestRunPreparedEmpty(t *testing.T) {
	pt, err := Prepare(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPreparedTrace(NewDRAMConfig(2, 2000, 400), pt); err != ErrEmptyTrace {
		t.Fatalf("err = %v, want ErrEmptyTrace", err)
	}
}

func TestRunSourceEmpty(t *testing.T) {
	if _, err := RunTraceSource(NewDRAMConfig(2, 2000, 400), trace.NewSliceSource(nil)); err != ErrEmptyTrace {
		t.Fatal("expected ErrEmptyTrace")
	}
}

func TestRunSourceRejectsBadEvent(t *testing.T) {
	bad := []trace.Event{{Cycle: 1, Op: 'Q'}}
	if _, err := RunTraceSource(NewDRAMConfig(2, 2000, 400), trace.NewSliceSource(bad)); err == nil {
		t.Fatal("expected bad-op error")
	}
}

// TestPreparedImmutableUnderConcurrentReplay: one PreparedTrace shared by
// concurrent simulators must give each the same answer (run with -race to
// also prove there are no writes).
func TestPreparedImmutableUnderConcurrentReplay(t *testing.T) {
	events := syntheticTrace(2000, 12)
	pt, err := Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewHybridConfig(2, 2000, 400, 36, 0.125)
	want, err := RunPreparedTrace(cfg, pt)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			got, err := RunPreparedTrace(cfg, pt)
			if err == nil && !reflect.DeepEqual(got, want) {
				err = errDiverged
			}
			errs <- err
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var errDiverged = &divergedError{}

type divergedError struct{}

func (*divergedError) Error() string { return "concurrent replay diverged" }

// TestRunPreparedAllocBound pins down the sweep hot path's allocation
// discipline: once the trace's partition is cached and the engine pool is
// warm, a replay allocates only the result snapshot (Result, per-channel
// stats, cloned PerBankBytes, goroutine bookkeeping) — a small constant,
// independent of trace length and far below one allocation per event. The
// pre-refactor engine allocated the per-channel request queues, bank arrays,
// and endurance counters on every design point (~megabytes per replay).
func TestRunPreparedAllocBound(t *testing.T) {
	events := syntheticTrace(4096, 13)
	pt, err := Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(NewDRAMConfig(2, 2000, 400))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunPrepared(pt); err != nil { // warm partition cache + pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := sim.RunPrepared(pt); err != nil {
			panic(err)
		}
	})
	if allocs > 32 {
		t.Fatalf("RunPrepared allocated %.0f times for %d events; want the constant snapshot cost (<=32)", allocs, len(events))
	}
}
