package memsim

// timingTable is a device tier's timing and energy model folded into the
// handful of precomputed sums the service path actually adds. The raw
// Timing/Energy structs describe parameters the way NVMain's configuration
// files do (tRCD, tCAS, tBURST, ...); the inner loop only ever needs fixed
// combinations of them (activate→data = tRCD+tCAS, device latency =
// tRCD+tCAS+tBURST, write recovery = tWR+tWP), so they are summed once per
// engine instead of re-added per request. All sums are exact uint64
// additions, so a table-driven service is bit-identical to the unfolded
// arithmetic.
type timingTable struct {
	hitCas  uint64 // tCAS: column access on an already-open row
	actCas  uint64 // tRCD+tCAS: activate + column access
	trp     uint64 // precharge time
	tras    uint64 // minimum activate→precharge (0 for NVM)
	burst   uint64 // tBURST: data-bus occupancy
	devHit  uint64 // tCAS+tBURST: device latency of a row hit
	devMiss uint64 // tRCD+tCAS+tBURST: device latency of an activate path
	wrRec   uint64 // tWR+tWP: write recovery + NVM write pulse
	trefi   uint64 // refresh interval; 0 disables event-level refresh
	trfc    uint64 // refresh cycle time (bank blocked)

	eActivate float64
	eRead     float64
	eWrite    float64
	eRefresh  float64
}

// buildTimingTable folds one tier's parameters.
func buildTimingTable(t *Timing, en *Energy) timingTable {
	return timingTable{
		hitCas:    t.TCAS,
		actCas:    t.TRCD + t.TCAS,
		trp:       t.TRP,
		tras:      t.TRAS,
		burst:     t.TBURST,
		devHit:    t.TCAS + t.TBURST,
		devMiss:   t.TRCD + t.TCAS + t.TBURST,
		wrRec:     t.TWR + t.TWP,
		trefi:     t.TREFI,
		trfc:      t.TRFC,
		eActivate: en.EActivate,
		eRead:     en.ERead,
		eWrite:    en.EWrite,
		eRefresh:  en.ERefresh,
	}
}
