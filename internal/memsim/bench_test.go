package memsim

import (
	"testing"

	"graphdse/internal/trace"
)

func benchTrace(b *testing.B, n int) []trace.Event {
	b.Helper()
	return syntheticTraceB(n, 99)
}

// syntheticTraceB mirrors syntheticTrace for benchmarks (testing.B).
func syntheticTraceB(n int, seed int64) []trace.Event {
	events := make([]trace.Event, 0, n)
	cycle := uint64(1)
	addr := uint64(0)
	for len(events) < n {
		cycle += uint64(7 + (addr % 13))
		addr = (addr*2654435761 + 12345) % (1 << 23)
		op := trace.Read
		if addr%5 == 0 {
			op = trace.Write
		}
		events = append(events, trace.Event{Cycle: cycle, Op: op, Addr: addr})
	}
	return events
}

func BenchmarkReplayByType(b *testing.B) {
	events := benchTrace(b, 100000)
	flat := NewHybridConfig(2, 2000, 666, 67, 0.25)
	flat.HybridMode = HybridFlat
	cases := map[string]Config{
		"DRAM":        NewDRAMConfig(2, 2000, 666),
		"NVM":         NewNVMConfig(2, 2000, 666, 67),
		"HybridCache": NewHybridConfig(2, 2000, 666, 67, 0.25),
		"HybridFlat":  flat,
	}
	for _, name := range []string{"DRAM", "NVM", "HybridCache", "HybridFlat"} {
		cfg := cases[name]
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(events)))
			for i := 0; i < b.N; i++ {
				if _, err := RunTrace(cfg, events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplayByChannels(b *testing.B) {
	events := benchTrace(b, 100000)
	for _, ch := range []int{1, 2, 4, 8} {
		cfg := NewDRAMConfig(ch, 2000, 666)
		b.Run(itoaB(ch)+"ch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunTrace(cfg, events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAddressMap(b *testing.B) {
	cfg := NewDRAMConfig(4, 2000, 666)
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	m := NewAddressMapper(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Map(uint64(i) * 64)
	}
}

func itoaB(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}
