package memsim

import (
	"strconv"
	"testing"

	"graphdse/internal/trace"
)

func benchTrace(b *testing.B, n int) []trace.Event {
	b.Helper()
	return syntheticTraceB(n, 99)
}

// syntheticTraceB mirrors syntheticTrace for benchmarks (testing.B).
func syntheticTraceB(n int, seed int64) []trace.Event {
	events := make([]trace.Event, 0, n)
	cycle := uint64(1)
	addr := uint64(0)
	for len(events) < n {
		cycle += uint64(7 + (addr % 13))
		addr = (addr*2654435761 + 12345) % (1 << 23)
		op := trace.Read
		if addr%5 == 0 {
			op = trace.Write
		}
		events = append(events, trace.Event{Cycle: cycle, Op: op, Addr: addr})
	}
	return events
}

// benchConfigs is the per-type configuration set shared by the replay
// benchmarks; every entry uses the same mapping geometry, so the prepared
// trace's partition cache serves all four from one partitioning pass.
func benchConfigs() (names []string, cases map[string]Config) {
	flat := NewHybridConfig(2, 2000, 666, 67, 0.25)
	flat.HybridMode = HybridFlat
	return []string{"DRAM", "NVM", "HybridCache", "HybridFlat"}, map[string]Config{
		"DRAM":        NewDRAMConfig(2, 2000, 666),
		"NVM":         NewNVMConfig(2, 2000, 666, 67),
		"HybridCache": NewHybridConfig(2, 2000, 666, 67, 0.25),
		"HybridFlat":  flat,
	}
}

// BenchmarkRunPrepared is the sweep hot path: one prepared trace replayed
// repeatedly against a fixed configuration — exactly what each design point
// of a sweep costs after Prepare. This is the PR 7 acceptance benchmark
// (≥2× over the pre-refactor engine, fewer allocs/op).
func BenchmarkRunPrepared(b *testing.B) {
	events := benchTrace(b, 100000)
	pt, err := Prepare(events)
	if err != nil {
		b.Fatal(err)
	}
	names, cases := benchConfigs()
	for _, name := range names {
		cfg := cases[name]
		b.Run(name, func(b *testing.B) {
			sim, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(events)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunPrepared(pt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplayByType(b *testing.B) {
	events := benchTrace(b, 100000)
	flat := NewHybridConfig(2, 2000, 666, 67, 0.25)
	flat.HybridMode = HybridFlat
	cases := map[string]Config{
		"DRAM":        NewDRAMConfig(2, 2000, 666),
		"NVM":         NewNVMConfig(2, 2000, 666, 67),
		"HybridCache": NewHybridConfig(2, 2000, 666, 67, 0.25),
		"HybridFlat":  flat,
	}
	for _, name := range []string{"DRAM", "NVM", "HybridCache", "HybridFlat"} {
		cfg := cases[name]
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(events)))
			for i := 0; i < b.N; i++ {
				if _, err := RunTrace(cfg, events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplayByChannels(b *testing.B) {
	events := benchTrace(b, 100000)
	for _, ch := range []int{1, 2, 4, 8} {
		cfg := NewDRAMConfig(ch, 2000, 666)
		b.Run(strconv.Itoa(ch)+"ch", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunTrace(cfg, events); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAddressMap(b *testing.B) {
	cfg := NewDRAMConfig(4, 2000, 666)
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	m := NewAddressMapper(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Map(uint64(i) * 64)
	}
}

// The phase benchmarks below split a replay into its three sequential
// stages so regressions localize: routing the trace to channels
// (partition), simulating the channels (replay), and folding channel
// statistics into a Result (assemble).

// BenchmarkPartitionPhase measures first-time trace partitioning — the cost
// a sweep pays once per mapping geometry. Serial pins the single-threaded
// mapper loop; Build exercises buildPartition's chunk-parallel path when
// GOMAXPROCS permits (identical output, concatenated in chunk order).
func BenchmarkPartitionPhase(b *testing.B) {
	events := benchTrace(b, 500000)
	pt, err := Prepare(events)
	if err != nil {
		b.Fatal(err)
	}
	cfg := NewDRAMConfig(2, 2000, 666)
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	m := NewAddressMapper(&cfg)
	b.Run("Serial", func(b *testing.B) {
		b.SetBytes(int64(pt.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buildPartitionSerial(m, pt.cycles, pt.addrs, pt.writes)
		}
	})
	b.Run("Build", func(b *testing.B) {
		b.SetBytes(int64(pt.Len()))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buildPartition(m, pt.cycles, pt.addrs, pt.writes)
		}
	})
}

// BenchmarkReplayPhase measures pure channel simulation: the partition is
// already cached (one warm-up replay populates it), so each iteration is the
// steady-state per-design-point cost of a sweep.
func BenchmarkReplayPhase(b *testing.B) {
	events := benchTrace(b, 100000)
	pt, err := Prepare(events)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := New(NewDRAMConfig(2, 2000, 666))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sim.RunPrepared(pt); err != nil { // warm the partition cache
		b.Fatal(err)
	}
	b.SetBytes(int64(len(events)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunPrepared(pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssemblePhase measures result assembly alone: folding per-channel
// statistics into the aggregate Result the sweeps consume.
func BenchmarkAssemblePhase(b *testing.B) {
	events := benchTrace(b, 100000)
	pt, err := Prepare(events)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := New(NewDRAMConfig(4, 2000, 666))
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.RunPrepared(pt)
	if err != nil {
		b.Fatal(err)
	}
	hitRates := make([]float64, len(res.Channels))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.assemble(res.Channels, hitRates)
	}
}
