package memsim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// A trace partition is the replay engine's working form of a trace: the
// events routed to each channel, in arrival order, as struct-of-arrays
// batches. Replay touches every event exactly once in order, so three
// parallel uint64 slices stream through the cache far better than a slice
// of request structs — and the partition depends only on the address-mapping
// geometry, not on timing or scheduling, so one partition serves every sweep
// point that shares an interleave (see PreparedTrace.partitionFor).
//
// The packed meta word per event holds everything the channel engine needs
// besides the timestamp and line index:
//
//	bits  0–39  row within the bank
//	bits 40–62  per-channel bank index (rank*banksPerRank + bank)
//	bit     63  write flag
//
// Config.Validate enforces the packing bounds (RowsPerBank ≤ 2^40,
// ranks×banks ≤ 2^23), far beyond any physical organization.
const (
	metaRowBits   = 40
	metaRowMask   = 1<<metaRowBits - 1
	metaBankShift = metaRowBits
	metaBankBits  = 23
	metaBankMask  = 1<<metaBankBits - 1
	metaWrite     = uint64(1) << 63
)

func packMeta(row, bankIndex int, write bool) uint64 {
	m := uint64(row) | uint64(bankIndex)<<metaBankShift
	if write {
		m |= metaWrite
	}
	return m
}

func metaRow(m uint64) int      { return int(m & metaRowMask) }
func metaBank(m uint64) int     { return int(m >> metaBankShift & metaBankMask) }
func metaIsWrite(m uint64) bool { return m&metaWrite != 0 }

// channelPart is one channel's share of a partitioned trace.
type channelPart struct {
	cycles []uint64 // CPU-cycle timestamps (controller arrival is computed at replay, since the clock ratio varies per config)
	lines  []uint64 // global line indices
	meta   []uint64 // packed row/bank/write
}

func (cp *channelPart) add(cycle, line, meta uint64) {
	cp.cycles = append(cp.cycles, cycle)
	cp.lines = append(cp.lines, line)
	cp.meta = append(cp.meta, meta)
}

func (cp *channelPart) len() int { return len(cp.cycles) }

// tracePartition holds a trace routed to every channel of one geometry.
type tracePartition struct {
	chans []channelPart
}

func newTracePartition(channels, capHint int) *tracePartition {
	tp := &tracePartition{chans: make([]channelPart, channels)}
	if capHint > 0 {
		for ch := range tp.chans {
			tp.chans[ch] = channelPart{
				cycles: make([]uint64, 0, capHint),
				lines:  make([]uint64, 0, capHint),
				meta:   make([]uint64, 0, capHint),
			}
		}
	}
	return tp
}

// route maps one event and appends it to its channel.
func (tp *tracePartition) route(m *AddressMapper, cycle, addr uint64, write bool) {
	loc := m.Map(addr)
	tp.chans[loc.Channel].add(cycle, loc.Line, packMeta(loc.Row, m.BankIndex(loc), write))
}

// partitionCapHint presizes per-channel slices assuming a roughly uniform
// interleave, with slack so skewed mappings rarely reallocate.
func partitionCapHint(n, channels int) int {
	return n/channels + n/8 + 8
}

// partitionChunk is the unit of parallel partitioning work.
const partitionChunk = 1 << 16

// partitionParallelMin is the trace length below which the serial builder
// wins (goroutine + concatenation overhead dominates).
const partitionParallelMin = 4 * partitionChunk

// buildPartition routes a decoded trace (parallel SoA slices) to channels.
// Large traces are partitioned by chunk across GOMAXPROCS workers and
// concatenated per channel in chunk order, which preserves the exact
// per-channel event order of the serial pass.
func buildPartition(m *AddressMapper, cycles, addrs []uint64, writes []bool) *tracePartition {
	n := len(cycles)
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < partitionParallelMin {
		return buildPartitionSerial(m, cycles, addrs, writes)
	}
	nChunks := (n + partitionChunk - 1) / partitionChunk
	if workers > nChunks {
		workers = nChunks
	}
	locals := make([]*tracePartition, nChunks)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				lo := c * partitionChunk
				hi := min(lo+partitionChunk, n)
				part := newTracePartition(m.channels, partitionCapHint(hi-lo, m.channels))
				for i := lo; i < hi; i++ {
					part.route(m, cycles[i], addrs[i], writes[i])
				}
				locals[c] = part
			}
		}()
	}
	wg.Wait()
	// Concatenate chunk-local partitions per channel, in chunk order.
	out := &tracePartition{chans: make([]channelPart, m.channels)}
	for ch := range out.chans {
		total := 0
		for _, lp := range locals {
			total += lp.chans[ch].len()
		}
		cp := &out.chans[ch]
		cp.cycles = make([]uint64, 0, total)
		cp.lines = make([]uint64, 0, total)
		cp.meta = make([]uint64, 0, total)
		for _, lp := range locals {
			cp.cycles = append(cp.cycles, lp.chans[ch].cycles...)
			cp.lines = append(cp.lines, lp.chans[ch].lines...)
			cp.meta = append(cp.meta, lp.chans[ch].meta...)
		}
	}
	return out
}

func buildPartitionSerial(m *AddressMapper, cycles, addrs []uint64, writes []bool) *tracePartition {
	tp := newTracePartition(m.channels, partitionCapHint(len(cycles), m.channels))
	for i := range cycles {
		tp.route(m, cycles[i], addrs[i], writes[i])
	}
	return tp
}

// geomKey identifies an address-mapping geometry: two configurations with
// equal keys produce identical Map results for every address, so they can
// share a trace partition.
type geomKey struct {
	lineBytes int
	channels  int
	ranks     int
	banks     int
	rows      int
	cols      int
	colLow    int
	scheme    MappingScheme
}

// geom returns the mapper's geometry key.
func (m *AddressMapper) geom() geomKey {
	return geomKey{
		lineBytes: m.lineBytes,
		channels:  m.channels,
		ranks:     m.ranks,
		banks:     m.banks,
		rows:      m.rows,
		cols:      m.cols,
		colLow:    m.colLow,
		scheme:    m.scheme,
	}
}
