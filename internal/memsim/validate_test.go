package memsim

import (
	"errors"
	"math"
	"testing"

	"graphdse/internal/trace"
)

func validResult() *Result {
	return &Result{
		AvgPowerPerChannel:  1.2,
		AvgBandwidthPerBank: 300,
		AvgLatency:          25,
		AvgTotalLatency:     40,
		AvgReadsPerChannel:  1000,
		AvgWritesPerChannel: 500,
	}
}

func TestValidateMetrics(t *testing.T) {
	if err := validResult().ValidateMetrics(); err != nil {
		t.Fatalf("valid metrics rejected: %v", err)
	}
	poison := []func(*Result){
		func(r *Result) { r.AvgPowerPerChannel = math.NaN() },
		func(r *Result) { r.AvgBandwidthPerBank = math.Inf(1) },
		func(r *Result) { r.AvgLatency = math.Inf(-1) },
		func(r *Result) { r.AvgWritesPerChannel = -1 },
	}
	for i, f := range poison {
		r := validResult()
		f(r)
		err := r.ValidateMetrics()
		if err == nil {
			t.Fatalf("case %d: poisoned metrics passed validation", i)
		}
		if !errors.Is(err, ErrInvalidMetrics) {
			t.Fatalf("case %d: error %v does not wrap ErrInvalidMetrics", i, err)
		}
	}
	// An infinite lifetime estimate (write-free run) is diagnostic, not an
	// ML target, and must not trip the gate.
	r := validResult()
	r.LifetimeYears = math.Inf(1)
	if err := r.ValidateMetrics(); err != nil {
		t.Fatalf("infinite lifetime wrongly quarantined: %v", err)
	}
}

// TestRunTraceValidatesMetrics is the regression guard for the silent-
// garbage path: RunTrace must gate every result through ValidateMetrics, so
// whatever it returns is finite and non-negative by construction.
func TestRunTraceValidatesMetrics(t *testing.T) {
	events := []trace.Event{
		{Cycle: 0, Addr: 0x0, Op: trace.Read},
		{Cycle: 10, Addr: 0x40, Op: trace.Write},
		{Cycle: 20, Addr: 0x80, Op: trace.Read},
	}
	res, err := RunTrace(NewDRAMConfig(2, 2000, 400), events)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.ValidateMetrics(); err != nil {
		t.Fatalf("RunTrace returned invalid metrics: %v", err)
	}
}
