package memsim

// dramCache is the set-associative DRAM cache fronting the NVM backing
// store in hybrid mode (NVMain's DRAM-cache hybrid organization). Tags are
// tracked exactly; data motion is modeled through the timing engine.
type dramCache struct {
	ways    int
	sets    int
	tags    [][]cacheLine
	tick    uint64 // LRU clock
	hits    uint64
	misses  uint64
	evicted uint64
}

type cacheLine struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

func newDRAMCache(lines, ways int) *dramCache {
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	c := &dramCache{ways: ways, sets: sets, tags: make([][]cacheLine, sets)}
	for i := range c.tags {
		c.tags[i] = make([]cacheLine, ways)
	}
	return c
}

// access looks up a line. On a hit it updates LRU and dirtiness and returns
// hit=true. On a miss it installs the line (write-allocate) and returns the
// evicted dirty victim's line index when a writeback is needed.
func (c *dramCache) access(line uint64, write bool) (hit bool, writeback bool, victimLine uint64) {
	c.tick++
	set := c.tags[line%uint64(c.sets)]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].lastUse = c.tick
			if write {
				set[i].dirty = true
			}
			c.hits++
			return true, false, 0
		}
	}
	c.misses++
	// Choose victim: first invalid way, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	v := set[victim]
	if v.valid && v.dirty {
		writeback = true
		victimLine = v.tag
		c.evicted++
	}
	set[victim] = cacheLine{tag: line, valid: true, dirty: write, lastUse: c.tick}
	return false, writeback, victimLine
}

func (c *dramCache) hitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
