package memsim

// dramCache is the set-associative DRAM cache fronting the NVM backing
// store in hybrid mode (NVMain's DRAM-cache hybrid organization). Tags are
// tracked exactly; data motion is modeled through the timing engine. The
// ways of set s occupy lines[s*ways : (s+1)*ways] — one flat allocation so
// a pooled engine can reuse the backing array across runs.
type dramCache struct {
	ways    int
	sets    int
	lines   []cacheLine // set-major: sets × ways
	tick    uint64      // LRU clock
	hits    uint64
	misses  uint64
	evicted uint64
}

type cacheLine struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

func newDRAMCache(lines, ways int) *dramCache {
	c := &dramCache{}
	c.init(lines, ways)
	return c
}

// init (re)shapes the cache for a geometry, reusing the backing array when
// it is large enough, and resets all state.
func (c *dramCache) init(lines, ways int) {
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	c.ways = ways
	c.sets = sets
	n := sets * ways
	if cap(c.lines) < n {
		c.lines = make([]cacheLine, n)
	} else {
		c.lines = c.lines[:n]
		clear(c.lines)
	}
	c.tick = 0
	c.hits = 0
	c.misses = 0
	c.evicted = 0
}

// set returns the ways of the set a line maps to.
func (c *dramCache) set(line uint64) []cacheLine {
	s := line % uint64(c.sets)
	return c.lines[s*uint64(c.ways) : (s+1)*uint64(c.ways)]
}

// access looks up a line. On a hit it updates LRU and dirtiness and returns
// hit=true. On a miss it installs the line (write-allocate) and returns the
// evicted dirty victim's line index when a writeback is needed.
func (c *dramCache) access(line uint64, write bool) (hit bool, writeback bool, victimLine uint64) {
	c.tick++
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].lastUse = c.tick
			if write {
				set[i].dirty = true
			}
			c.hits++
			return true, false, 0
		}
	}
	c.misses++
	// Choose victim: first invalid way, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	v := set[victim]
	if v.valid && v.dirty {
		writeback = true
		victimLine = v.tag
		c.evicted++
	}
	set[victim] = cacheLine{tag: line, valid: true, dirty: write, lastUse: c.tick}
	return false, writeback, victimLine
}

// peek reports whether a line is resident without touching LRU state or the
// hit/miss counters — the scheduler's residency probe.
func (c *dramCache) peek(line uint64) bool {
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return true
		}
	}
	return false
}

func (c *dramCache) hitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
