package memsim

import "math/bits"

// winReq is one admitted request in the controller window.
type winReq struct {
	enq  uint64 // admission cycle (total latency = completion − enq)
	line uint64 // global line index
	meta uint64 // packed row / effective bank / write (see partition.go)
}

type bankState struct {
	openRow       int64
	readyAt       uint64
	lastActivate  uint64
	nextRefreshAt uint64
}

// channelEngine simulates one channel: per-bank state machines, a shared
// data bus, a scheduling window, and (for hybrid) the DRAM cache front.
// All mutable per-run state lives in the pooled engineState; the engine
// itself is a stack value wired to the simulator's immutable tables.
//
// The controller queue is two rings over pooled storage:
//
//   - win (winHead/winLen) holds admitted-but-unscheduled requests in
//     arrival order. FCFS pops the head in O(1); FR-FCFS removes from the
//     middle by shifting whichever side is shorter.
//   - inflight (infHead/infLen) holds completion times of scheduled
//     requests, sorted ascending. Completion times are monotone in issue
//     order (every service path advances busFreeAt to its data-done cycle,
//     and the next completion lands at least one burst later), so pushes
//     are O(1) amortized, retirement pops the head, and the earliest
//     completion IS the head — replacing the O(depth) scans of the
//     pre-refactor engine.
type channelEngine struct {
	cfg       *Config
	mapper    *AddressMapper
	st        *engineState
	back      *timingTable // backing store (the only tier for DRAM/NVM)
	front     *timingTable // DRAM tier of a hybrid
	rows      int
	lineBytes uint64
	busFreeAt uint64
	now       uint64
	stats     ChannelStats
	cache     *dramCache // hybrid-cache front, else nil
	// flatHalf > 0 marks a flat hybrid: banks [0, flatHalf) are DRAM-timed,
	// banks [flatHalf, 2·flatHalf) NVM-timed.
	flatHalf int
	closed   bool // ClosedPage policy
	frfcfs   bool

	winHead, winLen int
	infHead, infLen int
}

func newChannelEngine(s *Simulator, st *engineState) channelEngine {
	cfg := &s.cfg
	e := channelEngine{
		cfg:       cfg,
		mapper:    s.mapper,
		st:        st,
		back:      &s.back,
		front:     &s.front,
		rows:      cfg.RowsPerBank,
		lineBytes: uint64(cfg.LineBytes),
		closed:    cfg.Policy == ClosedPage,
		frfcfs:    cfg.Scheduler != FCFS,
	}
	if cfg.Type == Hybrid {
		if cfg.HybridMode == HybridFlat {
			e.flatHalf = s.mapper.BanksPerChannel() / 2
			if e.flatHalf < 1 {
				e.flatHalf = 1
			}
		} else {
			e.cache = &st.cache
		}
	}
	return e
}

// flatTier assigns a line to the DRAM tier (0) or NVM tier (1) of a flat
// hybrid, placing DRAMFraction of the address space on DRAM via a stable
// hash.
func (e *channelEngine) flatTier(line uint64) int {
	h := (line * 0x9E3779B97F4A7C15) >> 40
	if float64(h%1024) < e.cfg.DRAMFraction*1024 {
		return 0
	}
	return 1
}

// run processes the channel's partition (already sorted by arrival). The
// controller queue is bounded at QueueDepth and exerts backpressure, as
// NVMain's trace replay does: a request occupies a queue slot from admission
// until completion, and admission stalls while the queue is full. Total
// latency is measured from admission (queueing + service), which bounds it
// near QueueDepth × service time even under saturation. Controller arrival
// cycles are derived from the partition's CPU-cycle timestamps here, since
// the clock ratio is a per-configuration property.
func (e *channelEngine) run(part *channelPart, ratio float64) {
	depth := len(e.st.win)
	n := part.len()
	next := 0
	var nextArrival uint64
	if n > 0 {
		nextArrival = uint64(float64(part.cycles[0]) * ratio)
	}
	for e.winLen > 0 || next < n {
		// Retire completed in-flight requests: pop the sorted ring's head.
		for e.infLen > 0 && e.st.inflight[e.infHead] <= e.now {
			e.infHead++
			if e.infHead == depth {
				e.infHead = 0
			}
			e.infLen--
		}
		// Admit arrived requests while the queue has room.
		for next < n && e.winLen+e.infLen < depth && nextArrival <= e.now {
			e.admit(part, next, nextArrival)
			next++
			if next < n {
				nextArrival = uint64(float64(part.cycles[next]) * ratio)
			}
		}
		if e.winLen == 0 {
			// Idle or blocked: jump to whichever comes first — the next
			// arrival (if a slot is free) or the earliest completion.
			var wake uint64
			switch {
			case next < n && e.infLen < depth:
				wake = nextArrival
				if e.infLen > 0 && e.st.inflight[e.infHead] < wake {
					wake = e.st.inflight[e.infHead]
				}
			default:
				if e.infLen == 0 {
					return // nothing left anywhere
				}
				wake = e.st.inflight[e.infHead]
			}
			if wake > e.now {
				e.now = wake
			} else {
				e.now++
			}
			continue
		}
		req := e.remove(e.schedule())

		done, devLat := e.service(req)
		e.pushInflight(done)
		e.stats.Requests++
		e.stats.SumDeviceLatency += devLat
		totalLat := done - req.enq
		e.stats.SumTotalLatency += totalLat
		e.stats.LatencyHist[bits.Len64(totalLat)]++
		if done > e.stats.LastCompletion {
			e.stats.LastCompletion = done
		}
		e.now++ // command-issue slot; banks proceed in parallel
	}
}

// admit places partition event i into the window, resolving the flat-hybrid
// tier remap once so scheduling and service work on the effective bank.
func (e *channelEngine) admit(part *channelPart, i int, arrival uint64) {
	depth := len(e.st.win)
	enq := max(arrival, e.now)
	e.stats.StallCycles += enq - arrival
	line := part.lines[i]
	m := part.meta[i]
	if e.flatHalf > 0 {
		eb := metaBank(m)%e.flatHalf + e.flatTier(line)*e.flatHalf
		m = uint64(metaRow(m)) | uint64(eb)<<metaBankShift | m&metaWrite
	}
	slot := e.winHead + e.winLen
	if slot >= depth {
		slot -= depth
	}
	e.st.win[slot] = winReq{enq: enq, line: line, meta: m}
	e.winLen++
}

// remove extracts the window's i-th oldest request, shifting whichever side
// of the ring is shorter. FCFS (i = 0) is a pure head pop.
func (e *channelEngine) remove(i int) winReq {
	depth := len(e.st.win)
	pos := e.winHead + i
	if pos >= depth {
		pos -= depth
	}
	r := e.st.win[pos]
	if i < e.winLen-1-i {
		// Closer to the head: shift the prefix toward the tail.
		for j := i; j > 0; j-- {
			dst := e.winHead + j
			if dst >= depth {
				dst -= depth
			}
			src := e.winHead + j - 1
			if src >= depth {
				src -= depth
			}
			e.st.win[dst] = e.st.win[src]
		}
		e.winHead++
		if e.winHead == depth {
			e.winHead = 0
		}
	} else {
		// Closer to the tail: shift the suffix toward the head.
		for j := i; j < e.winLen-1; j++ {
			dst := e.winHead + j
			if dst >= depth {
				dst -= depth
			}
			src := e.winHead + j + 1
			if src >= depth {
				src -= depth
			}
			e.st.win[dst] = e.st.win[src]
		}
	}
	e.winLen--
	return r
}

// pushInflight inserts a completion time into the sorted inflight ring.
// Completions arrive in nearly (in fact exactly) non-decreasing order, so
// the backward scan terminates immediately in practice while still being
// correct if a service path ever produced an out-of-order completion.
func (e *channelEngine) pushInflight(done uint64) {
	i := e.infLen
	for i > 0 && e.st.inflight[e.infAt(i-1)] > done {
		e.st.inflight[e.infAt(i)] = e.st.inflight[e.infAt(i-1)]
		i--
	}
	e.st.inflight[e.infAt(i)] = done
	e.infLen++
}

func (e *channelEngine) infAt(i int) int {
	p := e.infHead + i
	if p >= len(e.st.inflight) {
		p -= len(e.st.inflight)
	}
	return p
}

// schedule picks the next request index in the window: FCFS takes the head;
// FR-FCFS prefers row-buffer hits (cache residency for hybrid-cache),
// falling back to the oldest request.
func (e *channelEngine) schedule() int {
	if !e.frfcfs || e.winLen == 1 {
		return 0
	}
	depth := len(e.st.win)
	pos := e.winHead
	for i := 0; i < e.winLen; i++ {
		r := &e.st.win[pos]
		if e.cache != nil {
			if e.cache.peek(r.line) {
				return i
			}
		} else {
			b := &e.st.banks[metaBank(r.meta)]
			if b.openRow == int64(metaRow(r.meta)) && b.readyAt <= e.now {
				return i
			}
		}
		pos++
		if pos == depth {
			pos = 0
		}
	}
	return 0
}

// service executes one request and returns its completion cycle and its
// device latency (the access time excluding queueing, which NVMain reports
// as "average latency"; the queue-inclusive time is completion − arrival).
func (e *channelEngine) service(r winReq) (done, devLat uint64) {
	row := metaRow(r.meta)
	bank := metaBank(r.meta)
	write := metaIsWrite(r.meta)
	if e.flatHalf > 0 {
		// Flat hybrid: the bank was tier-remapped at admission, so the tier
		// is implied by which half it landed in.
		if bank < e.flatHalf {
			return e.serviceTier(bank, row, write, e.now, e.front, false)
		}
		return e.serviceTier(bank, row, write, e.now, e.back, true)
	}
	if e.cache == nil {
		return e.serviceTier(bank, row, write, e.now, e.back, true)
	}
	// Hybrid: consult the DRAM cache first.
	hit, writeback, victim := e.cache.access(r.line, write)
	if hit {
		e.stats.CacheHits++
		dataStart := max(e.now+e.front.hitCas, e.busFreeAt)
		done = dataStart + e.front.burst
		e.busFreeAt = done
		if write {
			e.stats.EnergyNJ += e.front.eWrite
		} else {
			e.stats.EnergyNJ += e.front.eRead
		}
		// The critical word is forwarded as soon as the column access
		// completes; the burst tail overlaps with the consumer.
		return done, e.front.hitCas
	}
	e.stats.CacheMisses++
	// Miss: fetch the line from the NVM backing store (write-allocate).
	done, devLat = e.serviceTier(bank, row, false, e.now, e.back, true)
	// Install into the cache: one DRAM-side burst after the fill.
	done += e.front.burst
	devLat += e.front.burst
	if write {
		e.stats.EnergyNJ += e.front.eWrite
	} else {
		e.stats.EnergyNJ += e.front.eRead
	}
	// Dirty victim: write it back to NVM. The writeback occupies the backend
	// after the fill but does not delay this request's completion.
	if writeback {
		e.stats.CacheWritebacks++
		vloc := e.mapper.Map(victim * e.lineBytes)
		e.serviceTier(e.mapper.BankIndex(vloc), vloc.Row, true, done, e.back, true)
	}
	return done, devLat
}

// serviceTier performs a device access on one tier's bank bi starting no
// earlier than at, using the tier's folded timing table; trackEndurance
// enables hot-row write accounting (NVM tiers). It returns the completion
// cycle and the device latency (row handling + column access + burst,
// excluding data-bus queueing).
func (e *channelEngine) serviceTier(bi, row int, write bool, at uint64, t *timingTable, trackEndurance bool) (done, devLat uint64) {
	b := &e.st.banks[bi]
	start := max(at, b.readyAt)
	// Event-level refresh: when enabled, catch up on overdue refreshes
	// before the access; each blocks the bank for tRFC and closes its row.
	if t.trefi > 0 {
		if b.nextRefreshAt == 0 {
			b.nextRefreshAt = t.trefi
		}
		for start >= b.nextRefreshAt {
			start = max(start, b.nextRefreshAt+t.trfc)
			b.nextRefreshAt += t.trefi
			b.openRow = -1
			e.stats.Refreshes++
			e.stats.EnergyNJ += t.eRefresh
		}
	}
	var casDone uint64
	if e.closed {
		// The row was auto-precharged after the previous access; every
		// access activates afresh.
		e.stats.RowMisses++
		b.lastActivate = start
		casDone = start + t.actCas
		devLat = t.devMiss
		e.stats.Activates++
		e.stats.EnergyNJ += t.eActivate
	} else if b.openRow == int64(row) {
		e.stats.RowHits++
		casDone = start + t.hitCas
		devLat = t.devHit
	} else {
		e.stats.RowMisses++
		if b.openRow >= 0 {
			// Precharge the open row; DRAM must honor tRAS (data restore)
			// since the last activate — NVM has tRAS = 0.
			prechargeOK := max(start, b.lastActivate+t.tras)
			start = prechargeOK + t.trp
		}
		b.lastActivate = start
		casDone = start + t.actCas
		devLat = t.devMiss
		b.openRow = int64(row)
		e.stats.Activates++
		e.stats.EnergyNJ += t.eActivate
	}
	dataStart := max(casDone, e.busFreeAt)
	dataDone := dataStart + t.burst
	e.busFreeAt = dataDone
	var prechargeTail uint64
	if e.closed {
		// Auto-precharge after the burst, honoring tRAS restore.
		prechargeTail = max(dataDone, b.lastActivate+t.tras) - dataDone + t.trp
		b.openRow = -1
	}
	if write {
		b.readyAt = dataDone + t.wrRec + prechargeTail
		e.stats.Writes++
		e.stats.EnergyNJ += t.eWrite
		if trackEndurance {
			idx := bi*e.rows + row
			e.st.rowWrites[idx]++
			if e.st.rowWrites[idx] > e.stats.MaxRowWrites {
				e.stats.MaxRowWrites = e.st.rowWrites[idx]
			}
		}
	} else {
		b.readyAt = dataDone + prechargeTail
		e.stats.Reads++
		e.stats.EnergyNJ += t.eRead
	}
	e.stats.BytesTransferred += e.lineBytes
	e.st.perBank[bi] += e.lineBytes
	return dataDone, devLat
}

// snapshot copies the run's statistics out of pooled storage. PerBankBytes
// is cloned because the Result retains it past the engine state's release.
func (e *channelEngine) snapshot(dst *ChannelStats, hitRate *float64) {
	e.stats.PerBankBytes = append([]uint64(nil), e.st.perBank...)
	*dst = e.stats
	if e.cache != nil {
		*hitRate = e.cache.hitRate()
	}
}
