package memsim

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ChannelStats aggregates per-channel counters during a simulation.
type ChannelStats struct {
	Reads, Writes    uint64
	Activates        uint64
	Refreshes        uint64
	RowHits          uint64
	RowMisses        uint64
	BytesTransferred uint64
	// Latency sums in controller cycles.
	SumDeviceLatency uint64 // access time excluding queueing
	SumTotalLatency  uint64 // queue admission → completion
	// StallCycles counts front-end backpressure: cycles requests waited for
	// a controller-queue slot before admission.
	StallCycles    uint64
	Requests       uint64
	LastCompletion uint64 // controller cycle of the last completion
	EnergyNJ       float64
	// Hybrid only.
	CacheHits, CacheMisses, CacheWritebacks uint64
	// PerBankBytes records data volume per bank for bandwidth statistics.
	PerBankBytes []uint64
	// MaxRowWrites tracks the hottest row for endurance estimates.
	MaxRowWrites uint64
	// LatencyHist buckets total latencies by bit length (log2 histogram)
	// for percentile estimation without storing every sample.
	LatencyHist [64]uint64
}

// latencyPercentile estimates the q-th percentile (0<q<1) from merged log2
// histograms, using the geometric midpoint of the crossing bucket.
func latencyPercentile(hist *[64]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b := 0; b < 64; b++ {
		cum += hist[b]
		if cum >= target {
			if b == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(b-1))
			return lo * 1.5
		}
	}
	return 0
}

// Result is the simulator output: the metric vector the paper's ML dataset
// is built from, plus diagnostic detail.
type Result struct {
	Config Config

	// The six metrics of Figure 2 / Table I.

	// AvgPowerPerChannel is the mean power per channel in watts.
	AvgPowerPerChannel float64
	// AvgBandwidthPerBank is the mean per-bank bandwidth in MB/s.
	AvgBandwidthPerBank float64
	// AvgLatency is the mean device latency per request in controller
	// cycles (controller start → completion).
	AvgLatency float64
	// AvgTotalLatency is the mean total latency per request in controller
	// cycles including queueing delay.
	AvgTotalLatency float64
	// AvgReadsPerChannel and AvgWritesPerChannel are backend operation
	// counts averaged over channels.
	AvgReadsPerChannel  float64
	AvgWritesPerChannel float64

	// Total-latency tail percentiles (controller cycles), estimated from a
	// log2 histogram.
	TotalLatencyP50 float64
	TotalLatencyP95 float64
	TotalLatencyP99 float64

	// Diagnostics.
	WallTimeSeconds float64
	TotalCycles     uint64
	RowHitRate      float64
	CacheHitRate    float64 // hybrid only
	TotalEnergyNJ   float64
	Channels        []ChannelStats

	// Endurance.
	MaxRowWrites  uint64
	LifetimeYears float64
}

// MetricNames lists the six Figure-2 metrics in report order.
var MetricNames = []string{
	"Power", "Bandwidth", "AvgLatency", "TotalLatency", "MemoryReads", "MemoryWrites",
}

// MetricVector returns the six metrics in MetricNames order, the target
// vector for ML training.
func (r *Result) MetricVector() []float64 {
	return []float64{
		r.AvgPowerPerChannel,
		r.AvgBandwidthPerBank,
		r.AvgLatency,
		r.AvgTotalLatency,
		r.AvgReadsPerChannel,
		r.AvgWritesPerChannel,
	}
}

// ErrInvalidMetrics marks a simulation whose output metrics are unusable
// (NaN, ±Inf, or negative). Such results must never reach the ML dataset.
var ErrInvalidMetrics = errors.New("memsim: invalid metrics")

// ValidateMetrics checks the six ML-target metrics for NaN, ±Inf, and
// negative values. The NVMain runs the paper reports on occasionally
// completed with garbage statistics; this is the quarantine gate that keeps
// such results out of the surrogate training corpus.
func (r *Result) ValidateMetrics() error {
	for i, v := range r.MetricVector() {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: %s = %v", ErrInvalidMetrics, MetricNames[i], v)
		}
	}
	return nil
}

// String renders a compact multi-line summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %dch cpu=%.0fMHz ctrl=%.0fMHz\n", r.Config.Type, r.Config.Channels,
		r.Config.CPUFreqMHz, r.Config.CtrlFreqMHz)
	fmt.Fprintf(&b, "  power/ch      %8.4f W\n", r.AvgPowerPerChannel)
	fmt.Fprintf(&b, "  bandwidth/bank%8.2f MB/s\n", r.AvgBandwidthPerBank)
	fmt.Fprintf(&b, "  avg latency   %8.2f cycles\n", r.AvgLatency)
	fmt.Fprintf(&b, "  total latency %8.2f cycles\n", r.AvgTotalLatency)
	fmt.Fprintf(&b, "  reads/ch      %8.3g\n", r.AvgReadsPerChannel)
	fmt.Fprintf(&b, "  writes/ch     %8.3g\n", r.AvgWritesPerChannel)
	fmt.Fprintf(&b, "  row hit rate  %8.3f  wall %.3g s", r.RowHitRate, r.WallTimeSeconds)
	if r.Config.Type == Hybrid {
		fmt.Fprintf(&b, "  cache hit %.3f", r.CacheHitRate)
	}
	return b.String()
}
