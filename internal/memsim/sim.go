package memsim

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"graphdse/internal/trace"
)

// Simulator replays memory traces against one configuration. The engine
// itself lives in engine.go (per-channel replay over pooled state),
// partition.go (the SoA per-channel trace form) and timing.go (folded
// per-tier timing tables); this file holds the public entry points and
// result assembly.
type Simulator struct {
	cfg    Config
	mapper *AddressMapper
	back   timingTable // backing-store tier (the only tier for DRAM/NVM)
	front  timingTable // DRAM tier of a hybrid (cache front or flat DRAM half)
}

// ErrEmptyTrace is returned when Run is given no events.
var ErrEmptyTrace = errors.New("memsim: empty trace")

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg}
	s.mapper = NewAddressMapper(&s.cfg)
	s.back = buildTimingTable(&s.cfg.Timing, &s.cfg.Energy)
	s.front = buildTimingTable(&s.cfg.CacheTiming, &s.cfg.CacheEnergy)
	return s, nil
}

// Config returns the validated configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Run replays events (CPU-cycle timestamps, ascending) and returns the
// aggregated metrics. Channels are independent and simulated in parallel.
// For sweeps replaying the same trace against many configurations, prefer
// Prepare + RunPrepared, which validates and decodes the trace once and
// shares partitions across points of equal mapping geometry; for traces too
// large to hold in memory, use RunSource.
func (s *Simulator) Run(events []trace.Event) (*Result, error) {
	if len(events) == 0 {
		return nil, ErrEmptyTrace
	}
	part := newTracePartition(s.cfg.Channels, partitionCapHint(len(events), s.cfg.Channels))
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		part.route(s.mapper, e.Cycle, e.Addr, e.Op == trace.Write)
	}
	return s.runPartition(part)
}

// runPartition simulates the partitioned trace and assembles the result —
// the shared back half of Run, RunPrepared, and RunSource. Each channel
// goroutine draws its mutable state from the engine pool and returns it when
// the channel drains, so steady-state sweeps allocate only the snapshot.
func (s *Simulator) runPartition(part *tracePartition) (*Result, error) {
	cfg := &s.cfg
	ratio := cfg.CtrlFreqMHz / cfg.CPUFreqMHz
	nb := s.mapper.BanksPerChannel()
	cacheLines, cacheWays := 0, 0
	if cfg.Type == Hybrid && cfg.HybridMode != HybridFlat {
		cacheLines, cacheWays = cfg.CacheLines, cfg.CacheWays
	}
	stats := make([]ChannelStats, cfg.Channels)
	hitRates := make([]float64, cfg.Channels)
	var wg sync.WaitGroup
	for ch := 0; ch < cfg.Channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			st := acquireEngineState(nb, cfg.RowsPerBank, cfg.QueueDepth, cacheLines, cacheWays)
			eng := newChannelEngine(s, st)
			eng.run(&part.chans[ch], ratio)
			eng.snapshot(&stats[ch], &hitRates[ch])
			releaseEngineState(st)
		}(ch)
	}
	wg.Wait()
	res := s.assemble(stats, hitRates)
	// Fail loudly rather than let NaN/Inf/negative metrics flow silently
	// into downstream datasets.
	if err := res.ValidateMetrics(); err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Simulator) assemble(stats []ChannelStats, hitRates []float64) *Result {
	cfg := &s.cfg
	res := &Result{Config: *cfg, Channels: stats}
	var lastCompletion uint64
	var reads, writes, requests, hits, misses uint64
	var sumDev, sumTot uint64
	var bytes uint64
	var cacheTotal, cacheHits uint64
	for ch := range stats {
		st := &stats[ch]
		if st.LastCompletion > lastCompletion {
			lastCompletion = st.LastCompletion
		}
		reads += st.Reads
		writes += st.Writes
		requests += st.Requests
		hits += st.RowHits
		misses += st.RowMisses
		sumDev += st.SumDeviceLatency
		sumTot += st.SumTotalLatency
		bytes += st.BytesTransferred
		cacheHits += st.CacheHits
		cacheTotal += st.CacheHits + st.CacheMisses
		if st.MaxRowWrites > res.MaxRowWrites {
			res.MaxRowWrites = st.MaxRowWrites
		}
		res.TotalEnergyNJ += st.EnergyNJ
	}
	res.TotalCycles = lastCompletion
	res.WallTimeSeconds = float64(lastCompletion) / cfg.CyclesPerSecond()
	if res.WallTimeSeconds <= 0 {
		res.WallTimeSeconds = 1 / cfg.CyclesPerSecond()
	}
	nCh := float64(cfg.Channels)
	res.AvgReadsPerChannel = float64(reads) / nCh
	res.AvgWritesPerChannel = float64(writes) / nCh
	if requests > 0 {
		res.AvgLatency = float64(sumDev) / float64(requests)
		res.AvgTotalLatency = float64(sumTot) / float64(requests)
		var hist [64]uint64
		for ch := range stats {
			for b, c := range stats[ch].LatencyHist {
				hist[b] += c
			}
		}
		res.TotalLatencyP50 = latencyPercentile(&hist, requests, 0.50)
		res.TotalLatencyP95 = latencyPercentile(&hist, requests, 0.95)
		res.TotalLatencyP99 = latencyPercentile(&hist, requests, 0.99)
	}
	if hits+misses > 0 {
		res.RowHitRate = float64(hits) / float64(hits+misses)
	}
	if cacheTotal > 0 {
		res.CacheHitRate = float64(cacheHits) / float64(cacheTotal)
	}
	res.AvgBandwidthPerBank = float64(bytes) / float64(cfg.TotalBanks()) / res.WallTimeSeconds / 1e6

	// Power per channel: dynamic energy over wall time plus static and
	// clock-proportional interface terms.
	var power float64
	for ch := range stats {
		dyn := stats[ch].EnergyNJ * 1e-9 / res.WallTimeSeconds
		power += dyn + s.staticWatts()
	}
	res.AvgPowerPerChannel = power / nCh

	// Endurance estimate for the hottest row.
	if res.MaxRowWrites > 0 {
		writesPerSecond := float64(res.MaxRowWrites) / res.WallTimeSeconds
		res.LifetimeYears = cfg.EnduranceLimit / writesPerSecond / 3.156e7
	} else {
		res.LifetimeYears = math.Inf(1)
	}
	return res
}

// staticWatts returns the per-channel static+interface power.
func (s *Simulator) staticWatts() float64 {
	cfg := &s.cfg
	switch cfg.Type {
	case Hybrid:
		f := cfg.DRAMFraction
		static := f*cfg.CacheEnergy.StaticWatts + (1-f)*cfg.Energy.StaticWatts
		io := f*cfg.CacheEnergy.IOWattsPerMHz + (1-f)*cfg.Energy.IOWattsPerMHz
		return static + io*cfg.CtrlFreqMHz
	default:
		return cfg.Energy.StaticWatts + cfg.Energy.IOWattsPerMHz*cfg.CtrlFreqMHz
	}
}

// RunTrace is a convenience helper: build a simulator for cfg and replay
// events in one call.
func RunTrace(cfg Config, events []trace.Event) (*Result, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(events)
}

// FormatMetric renders one metric value the way the paper's tables do.
func FormatMetric(name string, v float64) string {
	switch name {
	case "Power":
		return fmt.Sprintf("%.2f", v)
	case "MemoryReads", "MemoryWrites":
		return fmt.Sprintf("%.2E", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
