package memsim

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"graphdse/internal/trace"
)

// Simulator replays memory traces against one configuration.
type Simulator struct {
	cfg    Config
	mapper *AddressMapper
}

// ErrEmptyTrace is returned when Run is given no events.
var ErrEmptyTrace = errors.New("memsim: empty trace")

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, mapper: NewAddressMapper(&cfg)}, nil
}

// Config returns the validated configuration.
func (s *Simulator) Config() Config { return s.cfg }

// request is a decoded trace event queued at one channel.
type request struct {
	arrival uint64 // controller cycles, from the trace timestamp
	enqueue uint64 // when the bounded controller queue admitted it
	write   bool
	loc     Location
}

// Run replays events (CPU-cycle timestamps, ascending) and returns the
// aggregated metrics. Channels are independent and simulated in parallel.
// For sweeps replaying the same trace against many configurations, prefer
// Prepare + RunPrepared, which validates and decodes the trace once; for
// traces too large to hold in memory, use RunSource.
func (s *Simulator) Run(events []trace.Event) (*Result, error) {
	if len(events) == 0 {
		return nil, ErrEmptyTrace
	}
	cfg := &s.cfg
	ratio := cfg.CtrlFreqMHz / cfg.CPUFreqMHz
	perChannel := make([][]request, cfg.Channels)
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		loc := s.mapper.Map(e.Addr)
		perChannel[loc.Channel] = append(perChannel[loc.Channel], request{
			arrival: uint64(float64(e.Cycle) * ratio),
			write:   e.Op == trace.Write,
			loc:     loc,
		})
	}
	return s.runPartitioned(perChannel)
}

// runPartitioned simulates the already-partitioned per-channel request
// queues and assembles the result — the shared back half of Run,
// RunPrepared, and RunSource.
func (s *Simulator) runPartitioned(perChannel [][]request) (*Result, error) {
	cfg := &s.cfg
	stats := make([]ChannelStats, cfg.Channels)
	hitRates := make([]float64, cfg.Channels)
	var wg sync.WaitGroup
	for ch := 0; ch < cfg.Channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			eng := newChannelEngine(cfg, s.mapper)
			eng.run(perChannel[ch])
			stats[ch] = eng.stats
			if eng.cache != nil {
				hitRates[ch] = eng.cache.hitRate()
			}
		}(ch)
	}
	wg.Wait()
	res := s.assemble(stats, hitRates)
	// Fail loudly rather than let NaN/Inf/negative metrics flow silently
	// into downstream datasets.
	if err := res.ValidateMetrics(); err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Simulator) assemble(stats []ChannelStats, hitRates []float64) *Result {
	cfg := &s.cfg
	res := &Result{Config: *cfg, Channels: stats}
	var lastCompletion uint64
	var reads, writes, requests, hits, misses uint64
	var sumDev, sumTot uint64
	var bytes uint64
	var cacheTotal, cacheHits uint64
	for ch := range stats {
		st := &stats[ch]
		if st.LastCompletion > lastCompletion {
			lastCompletion = st.LastCompletion
		}
		reads += st.Reads
		writes += st.Writes
		requests += st.Requests
		hits += st.RowHits
		misses += st.RowMisses
		sumDev += st.SumDeviceLatency
		sumTot += st.SumTotalLatency
		bytes += st.BytesTransferred
		cacheHits += st.CacheHits
		cacheTotal += st.CacheHits + st.CacheMisses
		if st.MaxRowWrites > res.MaxRowWrites {
			res.MaxRowWrites = st.MaxRowWrites
		}
		res.TotalEnergyNJ += st.EnergyNJ
	}
	res.TotalCycles = lastCompletion
	res.WallTimeSeconds = float64(lastCompletion) / cfg.CyclesPerSecond()
	if res.WallTimeSeconds <= 0 {
		res.WallTimeSeconds = 1 / cfg.CyclesPerSecond()
	}
	nCh := float64(cfg.Channels)
	res.AvgReadsPerChannel = float64(reads) / nCh
	res.AvgWritesPerChannel = float64(writes) / nCh
	if requests > 0 {
		res.AvgLatency = float64(sumDev) / float64(requests)
		res.AvgTotalLatency = float64(sumTot) / float64(requests)
		var hist [64]uint64
		for ch := range stats {
			for b, c := range stats[ch].LatencyHist {
				hist[b] += c
			}
		}
		res.TotalLatencyP50 = latencyPercentile(&hist, requests, 0.50)
		res.TotalLatencyP95 = latencyPercentile(&hist, requests, 0.95)
		res.TotalLatencyP99 = latencyPercentile(&hist, requests, 0.99)
	}
	if hits+misses > 0 {
		res.RowHitRate = float64(hits) / float64(hits+misses)
	}
	if cacheTotal > 0 {
		res.CacheHitRate = float64(cacheHits) / float64(cacheTotal)
	}
	res.AvgBandwidthPerBank = float64(bytes) / float64(cfg.TotalBanks()) / res.WallTimeSeconds / 1e6

	// Power per channel: dynamic energy over wall time plus static and
	// clock-proportional interface terms.
	var power float64
	for ch := range stats {
		dyn := stats[ch].EnergyNJ * 1e-9 / res.WallTimeSeconds
		power += dyn + s.staticWatts()
	}
	res.AvgPowerPerChannel = power / nCh

	// Endurance estimate for the hottest row.
	if res.MaxRowWrites > 0 {
		writesPerSecond := float64(res.MaxRowWrites) / res.WallTimeSeconds
		res.LifetimeYears = cfg.EnduranceLimit / writesPerSecond / 3.156e7
	} else {
		res.LifetimeYears = math.Inf(1)
	}
	return res
}

// staticWatts returns the per-channel static+interface power.
func (s *Simulator) staticWatts() float64 {
	cfg := &s.cfg
	switch cfg.Type {
	case Hybrid:
		f := cfg.DRAMFraction
		static := f*cfg.CacheEnergy.StaticWatts + (1-f)*cfg.Energy.StaticWatts
		io := f*cfg.CacheEnergy.IOWattsPerMHz + (1-f)*cfg.Energy.IOWattsPerMHz
		return static + io*cfg.CtrlFreqMHz
	default:
		return cfg.Energy.StaticWatts + cfg.Energy.IOWattsPerMHz*cfg.CtrlFreqMHz
	}
}

// channelEngine simulates one channel: per-bank state machines, a shared
// data bus, a scheduling window, and (for hybrid) the DRAM cache front.
type channelEngine struct {
	cfg    *Config
	mapper *AddressMapper
	banks  []bankState
	// rowWrites[bank][row] counts writes for endurance tracking.
	rowWrites [][]uint64
	busFreeAt uint64
	now       uint64
	stats     ChannelStats
	cache     *dramCache
	// flatHalf > 0 marks a flat hybrid: banks [0, flatHalf) are DRAM-timed,
	// banks [flatHalf, 2·flatHalf) NVM-timed.
	flatHalf int
}

type bankState struct {
	openRow       int64
	readyAt       uint64
	lastActivate  uint64
	nextRefreshAt uint64
}

func newChannelEngine(cfg *Config, mapper *AddressMapper) *channelEngine {
	nb := mapper.BanksPerChannel()
	eng := &channelEngine{
		cfg:       cfg,
		mapper:    mapper,
		banks:     make([]bankState, nb),
		rowWrites: make([][]uint64, nb),
	}
	for i := range eng.banks {
		eng.banks[i].openRow = -1
		eng.rowWrites[i] = make([]uint64, cfg.RowsPerBank)
	}
	eng.stats.PerBankBytes = make([]uint64, nb)
	if cfg.Type == Hybrid {
		if cfg.HybridMode == HybridFlat {
			eng.flatHalf = nb / 2
			if eng.flatHalf < 1 {
				eng.flatHalf = 1
			}
		} else {
			eng.cache = newDRAMCache(cfg.CacheLines, cfg.CacheWays)
		}
	}
	return eng
}

// effBank returns the per-channel bank index a location will be serviced
// on, accounting for flat-hybrid tier remapping.
func (e *channelEngine) effBank(loc Location) int {
	bi := e.mapper.BankIndex(loc)
	if e.flatHalf > 0 {
		return bi%e.flatHalf + e.flatTier(loc.Line)*e.flatHalf
	}
	return bi
}

// flatTier assigns a line to the DRAM tier (0) or NVM tier (1) of a flat
// hybrid, placing DRAMFraction of the address space on DRAM via a stable
// hash.
func (e *channelEngine) flatTier(line uint64) int {
	h := (line * 0x9E3779B97F4A7C15) >> 40
	if float64(h%1024) < e.cfg.DRAMFraction*1024 {
		return 0
	}
	return 1
}

// run processes the channel's requests (already sorted by arrival). The
// controller queue is bounded at QueueDepth and exerts backpressure, as
// NVMain's trace replay does: a request occupies a queue slot from admission
// until completion, and admission stalls while the queue is full. Total
// latency is measured from admission (queueing + service), which bounds it
// near QueueDepth × service time even under saturation.
func (e *channelEngine) run(reqs []request) {
	depth := e.cfg.QueueDepth
	window := make([]request, 0, depth)  // admitted, not yet scheduled
	inflight := make([]uint64, 0, depth) // completion times of scheduled requests
	next := 0
	for len(window) > 0 || next < len(reqs) {
		// Retire completed in-flight requests.
		k := 0
		for _, c := range inflight {
			if c > e.now {
				inflight[k] = c
				k++
			}
		}
		inflight = inflight[:k]
		// Admit arrived requests while the queue has room.
		for next < len(reqs) && len(window)+len(inflight) < depth && reqs[next].arrival <= e.now {
			r := reqs[next]
			r.enqueue = maxU64(r.arrival, e.now)
			e.stats.StallCycles += r.enqueue - r.arrival
			window = append(window, r)
			next++
		}
		if len(window) == 0 {
			// Idle or blocked: jump to whichever comes first — the next
			// arrival (if a slot is free) or the earliest completion.
			var wake uint64
			switch {
			case next < len(reqs) && len(inflight) < depth:
				wake = reqs[next].arrival
				if earliest, ok := earliestCompletion(inflight); ok && earliest < wake {
					wake = earliest
				}
			default:
				earliest, ok := earliestCompletion(inflight)
				if !ok {
					return // nothing left anywhere
				}
				wake = earliest
			}
			if wake > e.now {
				e.now = wake
			} else {
				e.now++
			}
			continue
		}
		pick := e.schedule(window)
		req := window[pick]
		window = append(window[:pick], window[pick+1:]...)

		done, devLat := e.service(req)
		inflight = append(inflight, done)
		e.stats.Requests++
		e.stats.SumDeviceLatency += devLat
		totalLat := done - req.enqueue
		e.stats.SumTotalLatency += totalLat
		e.stats.LatencyHist[bitsLen(totalLat)]++
		if done > e.stats.LastCompletion {
			e.stats.LastCompletion = done
		}
		e.now++ // command-issue slot; banks proceed in parallel
	}
}

func earliestCompletion(inflight []uint64) (uint64, bool) {
	if len(inflight) == 0 {
		return 0, false
	}
	min := inflight[0]
	for _, c := range inflight[1:] {
		if c < min {
			min = c
		}
	}
	return min, true
}

// schedule picks the next request index in the window: FCFS takes the head;
// FR-FCFS prefers row-buffer hits (cache hits for hybrid), falling back to
// the oldest request.
func (e *channelEngine) schedule(window []request) int {
	if e.cfg.Scheduler == FCFS || len(window) == 1 {
		return 0
	}
	for i, r := range window {
		if e.cache != nil {
			// Peek: is the line resident? (No LRU update on peek.)
			set := e.cache.tags[r.loc.Line%uint64(e.cache.sets)]
			for _, l := range set {
				if l.valid && l.tag == r.loc.Line {
					return i
				}
			}
			continue
		}
		b := &e.banks[e.effBank(r.loc)]
		if b.openRow == int64(r.loc.Row) && b.readyAt <= e.now {
			return i
		}
	}
	return 0
}

// service executes one request and returns its completion cycle and its
// device latency (the access time excluding queueing, which NVMain reports
// as "average latency"; the queue-inclusive time is completion − arrival).
func (e *channelEngine) service(req request) (done, devLat uint64) {
	if e.flatHalf > 0 {
		// Flat hybrid: route the request to its tier's banks.
		loc := req.loc
		tier := e.flatTier(loc.Line)
		loc.Rank = 0
		loc.Bank = e.effBank(req.loc)
		if tier == 0 {
			return e.serviceTier(loc, req.write, e.now, &e.cfg.CacheTiming, &e.cfg.CacheEnergy, false)
		}
		return e.serviceTier(loc, req.write, e.now, &e.cfg.Timing, &e.cfg.Energy, true)
	}
	if e.cache == nil {
		return e.serviceBackend(req.loc, req.write, e.now)
	}
	// Hybrid: consult the DRAM cache first.
	hit, writeback, victim := e.cache.access(req.loc.Line, req.write)
	if hit {
		e.stats.CacheHits++
		t := &e.cfg.CacheTiming
		en := &e.cfg.CacheEnergy
		dataStart := maxU64(e.now+t.TCAS, e.busFreeAt)
		done = dataStart + t.TBURST
		e.busFreeAt = done
		if req.write {
			e.stats.EnergyNJ += en.EWrite
		} else {
			e.stats.EnergyNJ += en.ERead
		}
		// The critical word is forwarded as soon as the column access
		// completes; the burst tail overlaps with the consumer.
		return done, t.TCAS
	}
	e.stats.CacheMisses++
	// Miss: fetch the line from the NVM backing store (write-allocate).
	done, devLat = e.serviceBackend(req.loc, false, e.now)
	// Install into the cache: one DRAM-side burst after the fill.
	done += e.cfg.CacheTiming.TBURST
	devLat += e.cfg.CacheTiming.TBURST
	if req.write {
		e.stats.EnergyNJ += e.cfg.CacheEnergy.EWrite
	} else {
		e.stats.EnergyNJ += e.cfg.CacheEnergy.ERead
	}
	// Dirty victim: write it back to NVM. The writeback occupies the backend
	// after the fill but does not delay this request's completion.
	if writeback {
		e.stats.CacheWritebacks++
		vloc := e.locForLine(victim)
		e.serviceBackend(vloc, true, done)
	}
	return done, devLat
}

// locForLine reconstructs the Location of a cached line index (the line
// already belongs to this channel by construction of the interleave).
func (e *channelEngine) locForLine(line uint64) Location {
	return e.mapper.Map(line * uint64(e.cfg.LineBytes))
}

// serviceBackend performs a device access on the backing store (the only
// store for DRAM/NVM configs) starting no earlier than at. It returns the
// completion cycle and the device latency (row handling + column access +
// burst, excluding data-bus queueing).
func (e *channelEngine) serviceBackend(loc Location, write bool, at uint64) (done, devLat uint64) {
	return e.serviceTier(loc, write, at, &e.cfg.Timing, &e.cfg.Energy, true)
}

// serviceTier is serviceBackend parametrized by the device tier's timing and
// energy model; trackEndurance enables hot-row write accounting (NVM tiers).
func (e *channelEngine) serviceTier(loc Location, write bool, at uint64, t *Timing, en *Energy, trackEndurance bool) (done, devLat uint64) {
	bi := e.mapper.BankIndex(loc)
	if e.flatHalf > 0 {
		bi = loc.Bank // already a per-channel bank index for flat hybrids
	}
	b := &e.banks[bi]
	start := maxU64(at, b.readyAt)
	// Event-level refresh: when enabled, catch up on overdue refreshes
	// before the access; each blocks the bank for TRFC and closes its row.
	if t.TREFI > 0 {
		if b.nextRefreshAt == 0 {
			b.nextRefreshAt = t.TREFI
		}
		for start >= b.nextRefreshAt {
			start = maxU64(start, b.nextRefreshAt+t.TRFC)
			b.nextRefreshAt += t.TREFI
			b.openRow = -1
			e.stats.Refreshes++
			e.stats.EnergyNJ += en.ERefresh
		}
	}
	var rowReady uint64
	if e.cfg.Policy == ClosedPage {
		// The row was auto-precharged after the previous access; every
		// access activates afresh.
		e.stats.RowMisses++
		b.lastActivate = start
		rowReady = start + t.TRCD
		e.stats.Activates++
		e.stats.EnergyNJ += en.EActivate
	} else if b.openRow == int64(loc.Row) {
		e.stats.RowHits++
		rowReady = start
	} else {
		e.stats.RowMisses++
		if b.openRow >= 0 {
			// Precharge the open row; DRAM must honor tRAS (data restore)
			// since the last activate — NVM has tRAS = 0.
			prechargeOK := maxU64(start, b.lastActivate+t.TRAS)
			start = prechargeOK + t.TRP
		}
		b.lastActivate = start
		rowReady = start + t.TRCD
		b.openRow = int64(loc.Row)
		e.stats.Activates++
		e.stats.EnergyNJ += en.EActivate
	}
	casDone := rowReady + t.TCAS
	devLat = casDone - start + t.TBURST
	dataStart := maxU64(casDone, e.busFreeAt)
	dataDone := dataStart + t.TBURST
	e.busFreeAt = dataDone
	var prechargeTail uint64
	if e.cfg.Policy == ClosedPage {
		// Auto-precharge after the burst, honoring tRAS restore.
		prechargeTail = maxU64(dataDone, b.lastActivate+t.TRAS) - dataDone + t.TRP
		b.openRow = -1
	}
	if write {
		b.readyAt = dataDone + t.TWR + t.TWP + prechargeTail
		e.stats.Writes++
		e.stats.EnergyNJ += en.EWrite
		if trackEndurance {
			rw := e.rowWrites[bi]
			rw[loc.Row]++
			if rw[loc.Row] > e.stats.MaxRowWrites {
				e.stats.MaxRowWrites = rw[loc.Row]
			}
		}
	} else {
		b.readyAt = dataDone + prechargeTail
		e.stats.Reads++
		e.stats.EnergyNJ += en.ERead
	}
	e.stats.BytesTransferred += uint64(e.cfg.LineBytes)
	e.stats.PerBankBytes[bi] += uint64(e.cfg.LineBytes)
	return dataDone, devLat
}

// bitsLen returns the bit length of v (0 for 0), the log2 histogram bucket.
func bitsLen(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// RunTrace is a convenience helper: build a simulator for cfg and replay
// events in one call.
func RunTrace(cfg Config, events []trace.Event) (*Result, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.Run(events)
}

// FormatMetric renders one metric value the way the paper's tables do.
func FormatMetric(name string, v float64) string {
	switch name {
	case "Power":
		return fmt.Sprintf("%.2f", v)
	case "MemoryReads", "MemoryWrites":
		return fmt.Sprintf("%.2E", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
