package memsim

import "sync"

// engineState is the per-run mutable state of one channel engine: bank state
// machines, endurance counters, per-bank byte counters, the controller
// window/inflight rings, and (for hybrid-cache configs) the DRAM cache tag
// store. All of it is geometry-sized and zeroed on acquire, so a sweep
// replaying thousands of design points draws state from a pool instead of
// allocating ~300 KB per channel per point.
type engineState struct {
	banks     []bankState
	rowWrites []uint64 // flattened [bank*rows + row] endurance counters
	perBank   []uint64 // bytes transferred per bank
	win       []winReq // controller window ring storage (QueueDepth slots)
	inflight  []uint64 // completion-time ring storage (QueueDepth slots)
	cache     dramCache
}

var enginePool = sync.Pool{New: func() any { return &engineState{} }}

// acquireEngineState draws a pooled state and shapes it for a geometry:
// nb banks × rows, a depth-slot controller queue, and — when cacheLines > 0 —
// a DRAM cache. Everything is reset to the fresh-run state.
func acquireEngineState(nb, rows, depth, cacheLines, cacheWays int) *engineState {
	st := enginePool.Get().(*engineState)
	if cap(st.banks) < nb {
		st.banks = make([]bankState, nb)
	} else {
		st.banks = st.banks[:nb]
	}
	for i := range st.banks {
		st.banks[i] = bankState{openRow: -1}
	}
	nrw := nb * rows
	if cap(st.rowWrites) < nrw {
		st.rowWrites = make([]uint64, nrw)
	} else {
		st.rowWrites = st.rowWrites[:nrw]
		clear(st.rowWrites)
	}
	if cap(st.perBank) < nb {
		st.perBank = make([]uint64, nb)
	} else {
		st.perBank = st.perBank[:nb]
		clear(st.perBank)
	}
	if cap(st.win) < depth {
		st.win = make([]winReq, depth)
	} else {
		st.win = st.win[:depth]
	}
	if cap(st.inflight) < depth {
		st.inflight = make([]uint64, depth)
	} else {
		st.inflight = st.inflight[:depth]
	}
	if cacheLines > 0 {
		st.cache.init(cacheLines, cacheWays)
	}
	return st
}

func releaseEngineState(st *engineState) { enginePool.Put(st) }
