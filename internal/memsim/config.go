// Package memsim is a cycle-level main-memory simulator in the spirit of
// NVMain (Poremba & Xie, ISVLSI'12): it replays a memory-access trace
// against a configurable memory organization (channels × ranks × banks,
// open-row policy, FCFS or FR-FCFS scheduling, DDR-style timing parameters)
// and reports the performance metrics the paper's design-space exploration
// consumes — per-channel power, per-bank bandwidth, average device latency,
// average total (queue-inclusive) latency, and per-channel read/write
// counts. Three device models are provided: DRAM, non-volatile memory (no
// tRAS data-restore constraint, frequency-proportional I/O background power,
// finite endurance), and a hybrid organization with a DRAM cache in front of
// an NVM backing store.
package memsim

import (
	"errors"
	"fmt"
)

// MemType selects the device model.
type MemType int

// Device models.
const (
	DRAM MemType = iota
	NVM
	Hybrid
)

// String returns the short name used in report tables ("D", "N", "H").
func (t MemType) String() string {
	switch t {
	case DRAM:
		return "DRAM"
	case NVM:
		return "NVM"
	case Hybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("MemType(%d)", int(t))
	}
}

// Short returns the single-letter tag used in Figure 2 of the paper.
func (t MemType) Short() string {
	switch t {
	case DRAM:
		return "D"
	case NVM:
		return "N"
	case Hybrid:
		return "H"
	default:
		return "?"
	}
}

// HybridKind selects how a hybrid (DRAM+NVM) memory is organized, the two
// organizations NVMain models.
type HybridKind int

// Hybrid organizations.
const (
	// HybridCache puts a DRAM cache in front of an NVM backing store;
	// hits are absorbed, so backend traffic drops with the hit rate.
	HybridCache HybridKind = iota
	// HybridFlat partitions the address space: a DRAMFraction of the lines
	// live on DRAM-timed banks, the rest on NVM-timed banks, sharing each
	// channel's bus and controller queue. Every request reaches exactly one
	// tier, so per-channel operation counts match the pure configurations.
	HybridFlat
)

// String names the organization.
func (k HybridKind) String() string {
	if k == HybridFlat {
		return "flat"
	}
	return "cache"
}

// PagePolicy selects the row-buffer management policy.
type PagePolicy int

// Row-buffer policies.
const (
	// OpenPage keeps rows open after access, betting on row-buffer locality.
	OpenPage PagePolicy = iota
	// ClosedPage auto-precharges after every access, giving uniform access
	// latency (tRCD+tCAS+tBURST) at the cost of losing row hits.
	ClosedPage
)

// String names the policy.
func (p PagePolicy) String() string {
	if p == ClosedPage {
		return "closed-page"
	}
	return "open-page"
}

// SchedulerKind selects the memory-controller scheduling policy.
type SchedulerKind int

// Scheduling policies.
const (
	// FCFS services requests strictly in arrival order.
	FCFS SchedulerKind = iota
	// FRFCFS prefers row-buffer hits within the scheduling window
	// (first-ready, first-come-first-served).
	FRFCFS
)

// String names the policy.
func (s SchedulerKind) String() string {
	if s == FRFCFS {
		return "FR-FCFS"
	}
	return "FCFS"
}

// Timing holds device timing parameters in memory-controller clock cycles,
// mirroring the NVMain configuration keys the paper sweeps.
type Timing struct {
	// TRCD is the row-activation (row-to-column) delay.
	TRCD uint64
	// TRAS is the minimum activate-to-precharge time (data restoration).
	// Zero for NVM: non-volatile cells need no restore (§IV-A.2).
	TRAS uint64
	// TRP is the precharge time.
	TRP uint64
	// TCAS is the column-access (read) latency.
	TCAS uint64
	// TBURST is the data-burst occupancy of the channel bus.
	TBURST uint64
	// TWR is the write-recovery time after a write burst.
	TWR uint64
	// TWP is the extra write-pulse latency NVM cells need (0 for DRAM).
	TWP uint64
	// TREFI is the refresh interval in controller cycles; 0 disables
	// event-level refresh (the default — refresh power is then folded into
	// the static term). NVM needs no refresh.
	TREFI uint64
	// TRFC is the refresh cycle time (bank blocked) when TREFI > 0.
	TRFC uint64
}

// Energy holds the power-model constants (nanojoules per operation, watts
// for static terms).
type Energy struct {
	// EActivate is the row activation+restore energy (nJ).
	EActivate float64
	// ERead and EWrite are per-burst access energies (nJ).
	ERead, EWrite float64
	// ERefresh is the energy per event-level refresh (nJ), used only when
	// Timing.TREFI > 0.
	ERefresh float64
	// StaticWatts is the frequency-independent background power per channel
	// (refresh, leakage) in watts.
	StaticWatts float64
	// IOWattsPerMHz is the clock-proportional interface power per channel in
	// watts per MHz of controller frequency.
	IOWattsPerMHz float64
}

// Config fully describes one memory configuration — a row of the paper's
// design space.
type Config struct {
	Type MemType

	// Organization.
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	RowsPerBank     int
	// ColsPerRow is the number of LineBytes-sized columns per row (default
	// 128, an 8 KiB row at 64-byte lines).
	ColsPerRow int
	// LineBytes is the transfer granularity (burst size in bytes).
	LineBytes int

	// Clocks in MHz.
	CPUFreqMHz  float64
	CtrlFreqMHz float64

	// Device timing. For Hybrid, Timing describes the NVM backing store and
	// CacheTiming the DRAM cache front.
	Timing      Timing
	CacheTiming Timing

	// Energy model. For Hybrid, Energy describes the NVM backing store and
	// CacheEnergy the DRAM cache front.
	Energy      Energy
	CacheEnergy Energy

	Scheduler SchedulerKind
	// Policy selects open-page (default) or closed-page row management.
	Policy PagePolicy
	// HybridMode selects the hybrid organization (cache or flat).
	HybridMode HybridKind
	// Mapping selects the channel address-mapping scheme.
	Mapping MappingScheme
	// QueueDepth is the FR-FCFS scheduling window (and a sanity bound for
	// FCFS); <=0 defaults to 32.
	QueueDepth int

	// Hybrid parameters: DRAMFraction of the capacity is DRAM cache.
	// CacheLines (derived if 0) is the number of LineBytes lines in the
	// cache; CacheWays its associativity.
	DRAMFraction float64
	CacheLines   int
	CacheWays    int

	// EnduranceLimit is the per-cell write endurance used for lifetime
	// estimates (1e8–1e9 for NVM, effectively infinite for DRAM).
	EnduranceLimit float64
}

// ErrConfig reports an invalid configuration.
var ErrConfig = errors.New("memsim: invalid configuration")

// Validate checks structural invariants and fills defaults.
func (c *Config) Validate() error {
	if c.Channels <= 0 || c.RanksPerChannel <= 0 || c.BanksPerRank <= 0 || c.RowsPerBank <= 0 {
		return fmt.Errorf("%w: organization %d ch × %d ranks × %d banks × %d rows",
			ErrConfig, c.Channels, c.RanksPerChannel, c.BanksPerRank, c.RowsPerBank)
	}
	// The replay engine packs (row, bank, write) into one word per event
	// (partition.go); these bounds sit far beyond any physical organization.
	if int64(c.RowsPerBank) > 1<<metaRowBits {
		return fmt.Errorf("%w: RowsPerBank %d exceeds the 2^%d partition packing bound",
			ErrConfig, c.RowsPerBank, metaRowBits)
	}
	if int64(c.RanksPerChannel)*int64(c.BanksPerRank) > 1<<metaBankBits {
		return fmt.Errorf("%w: %d ranks × %d banks exceeds the 2^%d partition packing bound",
			ErrConfig, c.RanksPerChannel, c.BanksPerRank, metaBankBits)
	}
	if c.LineBytes <= 0 {
		c.LineBytes = 64
	}
	if c.ColsPerRow <= 0 {
		c.ColsPerRow = 128
	}
	if c.ColsPerRow%4 != 0 {
		return fmt.Errorf("%w: ColsPerRow %d must be a multiple of 4", ErrConfig, c.ColsPerRow)
	}
	if c.CPUFreqMHz <= 0 || c.CtrlFreqMHz <= 0 {
		return fmt.Errorf("%w: cpu %v MHz, ctrl %v MHz", ErrConfig, c.CPUFreqMHz, c.CtrlFreqMHz)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.Timing.TBURST == 0 {
		return fmt.Errorf("%w: zero TBURST", ErrConfig)
	}
	if c.Type == Hybrid {
		if c.DRAMFraction <= 0 || c.DRAMFraction >= 1 {
			return fmt.Errorf("%w: hybrid DRAM fraction %v out of (0,1)", ErrConfig, c.DRAMFraction)
		}
		if c.CacheWays <= 0 {
			c.CacheWays = 4
		}
		if c.CacheLines <= 0 {
			// Scale the DRAM cache with the configured fraction of a nominal
			// per-channel capacity.
			c.CacheLines = int(c.DRAMFraction * float64(c.Channels*c.RowsPerBank*c.BanksPerRank))
		}
		if c.CacheLines < c.CacheWays {
			c.CacheLines = c.CacheWays
		}
		// Round sets to a positive count.
		if c.CacheLines%c.CacheWays != 0 {
			c.CacheLines += c.CacheWays - c.CacheLines%c.CacheWays
		}
		if c.CacheTiming.TBURST == 0 {
			return fmt.Errorf("%w: hybrid without cache timing", ErrConfig)
		}
	}
	if c.EnduranceLimit <= 0 {
		if c.Type == DRAM {
			c.EnduranceLimit = 1e15
		} else {
			c.EnduranceLimit = 1e8
		}
	}
	return nil
}

// TotalBanks returns banks across all channels and ranks.
func (c *Config) TotalBanks() int {
	return c.Channels * c.RanksPerChannel * c.BanksPerRank
}

// CyclesPerSecond returns the controller clock rate in Hz.
func (c *Config) CyclesPerSecond() float64 { return c.CtrlFreqMHz * 1e6 }

// DRAMTiming returns the paper's DRAM timing at any controller frequency:
// tRAS=24 and tRCD=9 controller cycles (§IV-A.2), with companion parameters
// from DDR3-class devices.
func DRAMTiming() Timing {
	return Timing{TRCD: 9, TRAS: 24, TRP: 9, TCAS: 9, TBURST: 4, TWR: 10}
}

// NVMTiming returns NVM timing for a controller frequency and a cell read
// time expressed directly in controller cycles (the paper sweeps tRCD over
// {50ns … 200ns} equivalents per frequency); tRAS is zero because NVM needs
// no data restore.
func NVMTiming(tRCDCycles uint64) Timing {
	return Timing{TRCD: tRCDCycles, TRAS: 0, TRP: 1, TCAS: 9, TBURST: 4, TWR: 10, TWP: 3 * tRCDCycles / 2}
}

// NVMTRCDSweep returns the paper's tRCD sweep for a controller frequency in
// MHz (§IV-A.2). Unknown frequencies scale the 400 MHz base sweep
// proportionally.
func NVMTRCDSweep(ctrlFreqMHz float64) []uint64 {
	switch ctrlFreqMHz {
	case 400:
		return []uint64{20, 30, 40, 50, 60, 80}
	case 666:
		return []uint64{33, 50, 67, 83, 100, 133}
	case 1250:
		return []uint64{62, 94, 125, 156, 187, 250}
	case 1600:
		return []uint64{80, 120, 160, 200, 240, 320}
	default:
		base := []uint64{20, 30, 40, 50, 60, 80}
		out := make([]uint64, len(base))
		for i, b := range base {
			out[i] = uint64(float64(b) * ctrlFreqMHz / 400)
		}
		return out
	}
}

// DRAMEnergy returns calibrated DRAM power-model constants: activation and
// restore dominate dynamic energy; refresh and leakage dominate the static
// term.
func DRAMEnergy() Energy {
	return Energy{EActivate: 0.4, ERead: 0.22, EWrite: 0.26, StaticWatts: 0.12, IOWattsPerMHz: 6e-6}
}

// NVMEnergy returns calibrated NVM power-model constants: no refresh and
// negligible leakage, costlier cell writes, and interface power proportional
// to the controller clock (the dominant NVM power term, which is why the
// paper's NVM power grows with controller frequency).
func NVMEnergy() Energy {
	return Energy{EActivate: 0.08, ERead: 0.32, EWrite: 0.8, StaticWatts: 0.002, IOWattsPerMHz: 9e-5}
}

// NewDRAMConfig assembles a pure-DRAM configuration.
func NewDRAMConfig(channels int, cpuMHz, ctrlMHz float64) Config {
	return Config{
		Type:            DRAM,
		Channels:        channels,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		RowsPerBank:     4096,
		CPUFreqMHz:      cpuMHz,
		CtrlFreqMHz:     ctrlMHz,
		Timing:          DRAMTiming(),
		Energy:          DRAMEnergy(),
		Scheduler:       FRFCFS,
	}
}

// NewNVMConfig assembles a pure-NVM configuration with the given cell read
// time in controller cycles.
func NewNVMConfig(channels int, cpuMHz, ctrlMHz float64, tRCDCycles uint64) Config {
	return Config{
		Type:            NVM,
		Channels:        channels,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		RowsPerBank:     4096,
		CPUFreqMHz:      cpuMHz,
		CtrlFreqMHz:     ctrlMHz,
		Timing:          NVMTiming(tRCDCycles),
		Energy:          NVMEnergy(),
		Scheduler:       FRFCFS,
	}
}

// NewHybridConfig assembles a hybrid configuration: a DRAM cache covering
// dramFraction of the nominal capacity in front of an NVM backing store.
func NewHybridConfig(channels int, cpuMHz, ctrlMHz float64, tRCDCycles uint64, dramFraction float64) Config {
	c := NewNVMConfig(channels, cpuMHz, ctrlMHz, tRCDCycles)
	c.Type = Hybrid
	c.DRAMFraction = dramFraction
	c.CacheTiming = DRAMTiming()
	c.CacheEnergy = DRAMEnergy()
	c.CacheWays = 4
	return c
}
