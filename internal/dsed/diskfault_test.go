package dsed

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"graphdse/internal/artifact"
)

// durableSnapshot captures every committed file under one spool subdir so a
// chaos phase can prove fault injection corrupted nothing that already
// existed. Atomic-write temps are transient by contract and excluded.
func durableSnapshot(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return out
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || (len(name) > 0 && name[0] == '.') {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

func sameSnapshot(a, b map[string][]byte) error {
	for name, data := range a {
		got, ok := b[name]
		if !ok {
			return fmt.Errorf("durable file %s disappeared", name)
		}
		if !bytes.Equal(data, got) {
			return fmt.Errorf("durable file %s changed under fault", name)
		}
	}
	return nil
}

// TestChaosMatrixQueuePersistence drives every queue persistence path
// (WAL submit, event append, finalize) through the full storage-fault
// matrix. The invariants are identical for every fault: the operation
// errors instead of panicking, nothing already durable changes, the
// governor degrades to read-only, and clearing the fault restores full
// service with the journal's valid prefix intact.
func TestChaosMatrixQueuePersistence(t *testing.T) {
	cases := []struct {
		name string
		arm  func(f *artifact.FaultFS)
		// appendFails: the fault also breaks journal appends. A failed
		// rename does not — appends never rename, and their success
		// legitimately recovers the governor.
		appendFails bool
	}{
		{"enospc", func(f *artifact.FaultFS) { f.SetWriteBudget(0) }, true},
		{"eio-write", func(f *artifact.FaultFS) { f.FailWrites(nil, 0) }, true},
		{"eio-fsync", func(f *artifact.FaultFS) { f.FailSyncs(nil, 0) }, true},
		{"failed-rename", func(f *artifact.FaultFS) { f.FailRenames(nil, 0) }, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := artifact.NewFaultFS(nil)
			q, err := OpenQueue(dir, QueueOptions{FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			defer q.Close()
			g := NewDiskGovernor(ffs, dir, DiskPolicy{FailureStreak: 1, ProbeInterval: time.Hour})
			q.AttachDisk(g)

			// Seed durable state before the fault: two jobs with journal
			// history — one to keep, one to finalize under the fault.
			if _, _, err := q.Submit(workloadSpec("seed", "acme")); err != nil {
				t.Fatal(err)
			}
			if _, _, err := q.Submit(workloadSpec("fin", "acme")); err != nil {
				t.Fatal(err)
			}
			if err := q.events.Emit("seed", Event{Type: EventProgress, Done: 1, Total: 4}); err != nil {
				t.Fatal(err)
			}
			jobsSnap := durableSnapshot(t, filepath.Join(dir, jobsDir))
			journalPath := filepath.Join(dir, eventsDir, "seed.jsonl")
			preEvents, _ := scanJournal(artifact.OS, journalPath)
			if len(preEvents) == 0 {
				t.Fatal("seed journal empty before fault")
			}

			c.arm(ffs)

			// WAL submit under fault: errors, and the job never becomes
			// visible.
			if _, _, err := q.Submit(workloadSpec("victim", "acme")); err == nil {
				t.Fatal("submit under storage fault reported success")
			}
			if q.Known("victim") {
				t.Fatal("failed submit left the job visible")
			}
			// Finalize under fault: the terminal transition must not be
			// durably adopted (the on-disk record is covered by the
			// snapshot check below; a restart would recover it as queued).
			if err := q.Finalize("fin", StateFailed, "chaos", 0, 0); err == nil {
				t.Fatal("finalize under storage fault reported success")
			}
			// One observed failure is enough (FailureStreak: 1): read-only.
			if g.Mode() != DiskDegraded {
				t.Fatalf("mode %q after write failure, want degraded", g.Mode())
			}
			if err := g.Admit(); !errors.Is(err, ErrDegraded) {
				t.Fatalf("Admit while degraded: got %v, want ErrDegraded", err)
			}
			// Event append under fault: errors, job unharmed.
			if c.appendFails {
				if err := q.events.Emit("seed", Event{Type: EventProgress, Done: 2, Total: 4}); err == nil {
					t.Fatal("event append under storage fault reported success")
				}
			}

			// Nothing that was durable before the fault changed, and the
			// journal's valid prefix still replays every pre-fault event.
			if err := sameSnapshot(jobsSnap, durableSnapshot(t, filepath.Join(dir, jobsDir))); err != nil {
				t.Fatal(err)
			}
			midEvents, _ := scanJournal(artifact.OS, journalPath)
			if len(midEvents) < len(preEvents) {
				t.Fatalf("journal lost events under fault: %d -> %d", len(preEvents), len(midEvents))
			}
			for i := range preEvents {
				if midEvents[i].Seq != preEvents[i].Seq {
					t.Fatalf("journal prefix changed under fault at %d", i)
				}
			}

			// Heal the disk: a probe write proves it, service resumes.
			ffs.Clear()
			if !g.Probe() {
				t.Fatal("probe failed after fault cleared")
			}
			if g.Mode() != DiskOK {
				t.Fatalf("mode %q after successful probe, want ok", g.Mode())
			}
			if _, _, err := q.Submit(workloadSpec("victim", "acme")); err != nil {
				t.Fatalf("submit after recovery: %v", err)
			}
			if err := q.events.Emit("seed", Event{Type: EventProgress, Done: 3, Total: 4}); err != nil {
				t.Fatalf("event append after recovery: %v", err)
			}
			if err := q.Finalize("fin", StateFailed, "chaos", 0, 0); err != nil {
				t.Fatalf("finalize after recovery: %v", err)
			}
			// The journal self-healed: the post-recovery event is replayable,
			// not hidden behind torn bytes from the failed append.
			postEvents, _ := scanJournal(artifact.OS, journalPath)
			last := postEvents[len(postEvents)-1]
			if last.Type != EventProgress || last.Done != 3 {
				t.Fatalf("post-recovery event not replayable from journal: %+v", last)
			}
		})
	}
}

// TestChaosTornWriteSelfHeals: a torn journal append (prefix persisted,
// then EIO) must not hide later events behind the damage — the next append
// truncates the torn tail and extends the valid prefix.
func TestChaosTornWriteSelfHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := artifact.NewFaultFS(nil)
	q, err := OpenQueue(dir, QueueOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	g := NewDiskGovernor(ffs, dir, DiskPolicy{FailureStreak: 1, ProbeInterval: time.Hour})
	q.AttachDisk(g)

	if _, _, err := q.Submit(workloadSpec("j", "")); err != nil {
		t.Fatal(err)
	}
	if err := q.events.Emit("j", Event{Type: EventProgress, Done: 1, Total: 3}); err != nil {
		t.Fatal(err)
	}

	ffs.TearNextWrite()
	if err := q.events.Emit("j", Event{Type: EventProgress, Done: 2, Total: 3}); err == nil {
		t.Fatal("torn append reported success")
	}
	if g.Mode() != DiskDegraded {
		t.Fatalf("mode %q after torn write, want degraded", g.Mode())
	}

	// TearNextWrite is single-shot; the disk is "healthy" again.
	if !g.Probe() {
		t.Fatal("probe after torn write")
	}
	if err := q.events.Emit("j", Event{Type: EventProgress, Done: 3, Total: 3}); err != nil {
		t.Fatalf("append after torn write: %v", err)
	}
	evs, _ := scanJournal(artifact.OS, filepath.Join(dir, eventsDir, "j.jsonl"))
	last := evs[len(evs)-1]
	if last.Type != EventProgress || last.Done != 3 {
		t.Fatalf("event appended after tear is not replayable: %+v", last)
	}
	seen := make(map[uint64]bool)
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d after torn-tail repair", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// startFaultDaemon is startDaemonOpts with a FaultFS under the spool and a
// fast-probing disk governor.
func startFaultDaemon(t *testing.T, dir string) (ffs *artifact.FaultFS, base string, shutdown func()) {
	t.Helper()
	ffs = artifact.NewFaultFS(nil)
	d, err := New(Options{
		Addr: "127.0.0.1:0",
		Dir:  dir,
		FS:   ffs,
		Disk: DiskPolicy{FailureStreak: 1, ProbeInterval: 50 * time.Millisecond},
		Scheduler: SchedulerOptions{
			JobWorkers:   1,
			SweepWorkers: 2,
			Logf:         t.Logf,
		},
		DrainTimeout: 10 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	runErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		runErr <- d.Run(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for d.Addr() == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("daemon never bound a listener")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return ffs, "http://" + d.Addr(), func() {
		cancel()
		wg.Wait()
		if err := <-runErr; err != nil {
			t.Errorf("daemon Run: %v", err)
		}
	}
}

func httpSubmit(t *testing.T, base string, spec JobSpec) (int, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header
}

func healthz(t *testing.T, base string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func awaitHealth(t *testing.T, base string, code int, substr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, body := healthz(t, base)
		if got == code && (substr == "" || bytes.Contains([]byte(body), []byte(substr))) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reached %d %q (last: %d %s)", code, substr, got, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonDegradesAndRecoversEndToEnd is the process-level chaos drill:
// a live daemon's disk fills mid-flight, the daemon degrades to read-only
// instead of crashing or failing the in-flight job, sheds new work with
// explicit backpressure, and returns to full verified service once the
// fault clears — the sealed result lands intact.
func TestDaemonDegradesAndRecoversEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full daemon chaos drill skipped in -short")
	}
	ffs, base, shutdown := startFaultDaemon(t, t.TempDir())
	defer shutdown()

	// Phase 1: healthy baseline.
	if code, _ := httpSubmit(t, base, workloadSpec("before", "acme")); code != http.StatusAccepted {
		t.Fatalf("baseline submit: %d", code)
	}
	st := awaitState(t, base, "before", 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("baseline job: %+v", st)
	}

	// Phase 2: the disk fills while a job is in flight.
	if code, _ := httpSubmit(t, base, workloadSpec("inflight", "acme")); code != http.StatusAccepted {
		t.Fatal("in-flight submit rejected")
	}
	ffs.SetWriteBudget(0)

	// New work is shed, not hung: the first submission may surface the raw
	// storage error (500) before the governor has degraded; once degraded,
	// rejections are 503/507 with Retry-After.
	if code, _ := httpSubmit(t, base, workloadSpec("shed-1", "acme")); code < 500 {
		t.Fatalf("submit on full disk: %d, want an error status", code)
	}
	awaitHealth(t, base, http.StatusServiceUnavailable, "degraded")
	code, hdr := httpSubmit(t, base, workloadSpec("shed-2", "acme"))
	if code != http.StatusServiceUnavailable && code != http.StatusInsufficientStorage {
		t.Fatalf("submit while degraded: %d, want 503 or 507", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("degraded rejection missing Retry-After")
	}

	// Reads still serve while degraded.
	resp, err := http.Get(base + "/v1/jobs/before/result")
	if err != nil {
		t.Fatal(err)
	}
	baseline, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(baseline) == 0 {
		t.Fatalf("sealed result unreadable while degraded: %d", resp.StatusCode)
	}

	// Phase 3: the fault clears; recovery probes restore full service and
	// the in-flight job — parked, not failed — seals its result.
	ffs.Clear()
	awaitHealth(t, base, http.StatusOK, "")
	st = awaitState(t, base, "inflight", 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("in-flight job after recovery: state %q err %q", st.State, st.Error)
	}
	resp, err = http.Get(base + "/v1/jobs/inflight/result")
	if err != nil {
		t.Fatal(err)
	}
	sealed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(sealed) == 0 {
		t.Fatalf("result after recovery: %d (%d bytes)", resp.StatusCode, len(sealed))
	}
	if code, _ := httpSubmit(t, base, workloadSpec("after", "acme")); code != http.StatusAccepted {
		t.Fatalf("submit after recovery: %d", code)
	}
	if st := awaitState(t, base, "after", 60*time.Second); st.State != StateDone {
		t.Fatalf("post-recovery job: %+v", st)
	}

	// The governor's scars are visible to operators.
	resp, err = http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var statusz struct {
		Disk *DiskStatus `json:"disk"`
	}
	jerr := json.NewDecoder(resp.Body).Decode(&statusz)
	resp.Body.Close()
	if jerr != nil || statusz.Disk == nil {
		t.Fatalf("statusz disk section: err=%v disk=%v", jerr, statusz.Disk)
	}
	if statusz.Disk.Mode != DiskOK || statusz.Disk.WriteFailures == 0 || statusz.Disk.Recoveries == 0 {
		t.Fatalf("statusz disk after drill: %+v", statusz.Disk)
	}
}

// TestSSEResumeAcrossCompactedJournal: compaction preserves sequence
// numbers, so a subscriber resuming with Last-Event-ID across a compacted
// journal sees every surviving event exactly once — no duplicates at or
// below its resume point, and the stream's tail intact.
func TestSSEResumeAcrossCompactedJournal(t *testing.T) {
	dir := t.TempDir()
	l := NewEventLog(dir, 16)
	defer l.Close()

	const total = 40
	if err := l.Emit("j", Event{Type: EventState, State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= total; i++ {
		if err := l.Emit("j", Event{Type: EventProgress, Done: i, Total: total}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Emit("j", Event{Type: EventState, State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	before := l.RecordCount("j")
	var maxSeq uint64
	for _, ev := range mustBacklog(t, l, "j", 0) {
		if ev.Seq > maxSeq {
			maxSeq = ev.Seq
		}
	}

	dropped, err := l.Compact("j", 4)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("compaction dropped nothing on a progress-heavy journal")
	}
	if after := l.RecordCount("j"); after >= before {
		t.Fatalf("record count %d -> %d: compaction did not shrink history", before, after)
	}
	if _, err := os.Stat(filepath.Join(dir, "j"+snapSuffix)); err != nil {
		t.Fatalf("sealed snapshot missing: %v", err)
	}

	// Resume mid-stream: everything delivered is new, ordered, and the
	// stream still ends where it ended.
	resumeAt := maxSeq / 2
	backlog := mustBacklog(t, l, "j", resumeAt)
	if len(backlog) == 0 {
		t.Fatal("no backlog after resume across compaction")
	}
	prev := resumeAt
	for _, ev := range backlog {
		if ev.Seq <= prev {
			t.Fatalf("resume replayed seq %d (resume point %d): duplicate delivery", ev.Seq, resumeAt)
		}
		prev = ev.Seq
	}
	tail := backlog[len(backlog)-1]
	if tail.Seq != maxSeq || tail.Type != EventState || tail.State != StateRunning {
		t.Fatalf("stream tail lost across compaction: %+v (want seq %d)", tail, maxSeq)
	}

	// Emitting after compaction continues the same sequence space.
	if err := l.Emit("j", Event{Type: EventState, State: StateDone}); err != nil {
		t.Fatal(err)
	}
	final := mustBacklog(t, l, "j", maxSeq)
	if len(final) != 1 || final[0].Seq != maxSeq+1 || !final[0].Terminal() {
		t.Fatalf("post-compaction emit broke the sequence space: %+v", final)
	}
}

func mustBacklog(t *testing.T, l *EventLog, job string, after uint64) []Event {
	t.Helper()
	sub, backlog, err := l.Subscribe(job, after)
	if err != nil {
		t.Fatal(err)
	}
	l.Unsubscribe(sub)
	return backlog
}
