package dsed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"graphdse/internal/dse"
)

// smallSpace keeps daemon tests fast: 2 cells × 13 = 26 points.
func smallSpace() *dse.SpaceParams {
	return &dse.SpaceParams{
		CPUFreqsMHz:  []float64{2000, 6500},
		CtrlFreqsMHz: []float64{400},
		Channels:     []int{2},
		Fractions:    []float64{0.25, 0.5, 0.75},
	}
}

// testServer wires a Server over a fresh queue with NO scheduler running, so
// submitted jobs stay queued — exactly what the admission tests need.
func testServer(t *testing.T, opts QueueOptions) (*Server, *Queue) {
	t.Helper()
	q, err := OpenQueue(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewTraceCache(2)
	sched := NewScheduler(q, cache, nil, SchedulerOptions{})
	return NewServer(q, sched, cache, nil), q
}

func postJob(t *testing.T, h http.Handler, spec JobSpec) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestHTTPSaturationBackpressure: past the queue bound the daemon answers
// 429 with a positive Retry-After, not a hang or a dropped connection.
func TestHTTPSaturationBackpressure(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{MaxQueued: 2, TenantCap: 8})
	h := srv.Handler()
	for i := 0; i < 2; i++ {
		if w := postJob(t, h, workloadSpec(fmt.Sprintf("f%d", i), fmt.Sprintf("t%d", i))); w.Code != http.StatusAccepted {
			t.Fatalf("fill %d: %d %s", i, w.Code, w.Body)
		}
	}
	w := postJob(t, h, workloadSpec("overflow", "t9"))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d, want 429", w.Code)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want positive integer seconds", w.Header().Get("Retry-After"))
	}
}

// TestHTTPTenantCap: one tenant at its cap gets 429 + Retry-After while
// other tenants still get through.
func TestHTTPTenantCap(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{MaxQueued: 64, TenantCap: 1})
	h := srv.Handler()
	if w := postJob(t, h, workloadSpec("a1", "acme")); w.Code != http.StatusAccepted {
		t.Fatalf("first: %d", w.Code)
	}
	w := postJob(t, h, workloadSpec("a2", "acme"))
	if w.Code != http.StatusTooManyRequests || w.Header().Get("Retry-After") == "" {
		t.Fatalf("tenant over cap: %d Retry-After=%q", w.Code, w.Header().Get("Retry-After"))
	}
	if w := postJob(t, h, workloadSpec("b1", "other")); w.Code != http.StatusAccepted {
		t.Fatalf("other tenant: %d", w.Code)
	}
}

// TestHTTPDrainingAndErrors: draining yields 503 + Retry-After; bad specs
// 400; conflicts 409; unknown jobs 404; results of unfinished jobs 409.
func TestHTTPDrainingAndErrors(t *testing.T) {
	srv, q := testServer(t, QueueOptions{})
	h := srv.Handler()
	if w := postJob(t, h, workloadSpec("j1", "")); w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", w.Code)
	}
	// Idempotent re-submit is 200, not 202.
	if w := postJob(t, h, workloadSpec("j1", "")); w.Code != http.StatusOK {
		t.Fatalf("idempotent re-submit: %d, want 200", w.Code)
	}
	// Conflict on changed payload.
	changed := workloadSpec("j1", "")
	changed.Workload.Seed = 99
	if w := postJob(t, h, changed); w.Code != http.StatusConflict {
		t.Fatalf("conflict: %d, want 409", w.Code)
	}
	// Structurally invalid spec.
	if w := postJob(t, h, JobSpec{ID: "bad"}); w.Code != http.StatusBadRequest {
		t.Fatalf("bad spec: %d, want 400", w.Code)
	}
	// Unknown fields are rejected, not silently dropped.
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(`{"workload":{},"surprise":1}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", w.Code)
	}
	// Status of an unknown job.
	req = httptest.NewRequest("GET", "/v1/jobs/ghost", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown status: %d, want 404", w.Code)
	}
	// Result before the job is done.
	req = httptest.NewRequest("GET", "/v1/jobs/j1/result", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusConflict {
		t.Fatalf("early result: %d, want 409", w.Code)
	}
	// Draining refuses new intake with 503 + Retry-After.
	q.SetDraining(true)
	w = postJob(t, h, workloadSpec("j2", ""))
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("draining: %d Retry-After=%q", w.Code, w.Header().Get("Retry-After"))
	}
}

// TestHTTPCancelQueued: DELETE cancels a queued job and reports its state.
func TestHTTPCancelQueued(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{})
	h := srv.Handler()
	if w := postJob(t, h, workloadSpec("c1", "")); w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", w.Code)
	}
	req := httptest.NewRequest("DELETE", "/v1/jobs/c1", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("cancel: %d %s", w.Code, w.Body)
	}
	var st JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil || st.State != StateCancelled {
		t.Fatalf("cancel status: %+v err=%v", st, err)
	}
	// Cancelling a terminal job is a conflict.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("DELETE", "/v1/jobs/c1", nil))
	if w.Code != http.StatusConflict {
		t.Fatalf("double cancel: %d, want 409", w.Code)
	}
}

// startDaemon runs a full daemon (scheduler included) against a spool dir
// and returns its base URL plus a shutdown func that drains it.
func startDaemon(t *testing.T, dir string) (base string, shutdown func()) {
	t.Helper()
	d, err := New(Options{
		Addr: "127.0.0.1:0",
		Dir:  dir,
		Scheduler: SchedulerOptions{
			JobWorkers:   1,
			SweepWorkers: 2,
			Logf:         t.Logf,
		},
		DrainTimeout: 10 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	runErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		runErr <- d.Run(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for d.Addr() == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("daemon never bound a listener")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return "http://" + d.Addr(), func() {
		cancel()
		wg.Wait()
		if err := <-runErr; err != nil {
			t.Errorf("daemon Run: %v", err)
		}
	}
}

// awaitState polls a job until it reaches a terminal state.
func awaitState(t *testing.T, base, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			var st JobStatus
			jerr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if jerr == nil && st.State.Terminal() {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached a terminal state", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonEndToEnd: submit a real (small) sweep over HTTP, watch it run to
// done, fetch the sealed result, and drain the daemon cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full daemon sweep skipped in -short")
	}
	base, shutdown := startDaemon(t, t.TempDir())
	defer shutdown()

	spec := workloadSpec("e2e", "")
	spec.Space = smallSpace()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	st := awaitState(t, base, "e2e", 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", st.State, st.Error)
	}
	if st.Survivors == 0 || st.Done != st.Total {
		t.Fatalf("job counters: %+v", st)
	}

	resp, err = http.Get(base + "/v1/jobs/e2e/result")
	if err != nil {
		t.Fatal(err)
	}
	var res JobResult
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sealed || res.ID != "e2e" || len(res.Records) != res.Total || res.Total == 0 {
		t.Fatalf("result: sealed=%v id=%s records=%d total=%d", res.Sealed, res.ID, len(res.Records), res.Total)
	}

	// /statusz answers with a coherent snapshot.
	resp, err = http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var sz Statusz
	err = json.NewDecoder(resp.Body).Decode(&sz)
	resp.Body.Close()
	if err != nil || sz.Cache.Misses < 1 {
		t.Fatalf("statusz: %+v err=%v", sz, err)
	}
}
