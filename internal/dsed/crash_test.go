package dsed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// Env vars carrying the spool and addr-file paths to the subprocess re-exec
// of TestDaemonKill9Recovery.
const (
	crashHelperEnv   = "GRAPHDSE_DSED_CRASH_HELPER"
	crashAddrFileEnv = "GRAPHDSE_DSED_CRASH_ADDRFILE"
	// crashAddrEnv pins the helper's listen address; the stream-resume test
	// needs the restarted daemon on the same port so the following client's
	// reconnects land.
	crashAddrEnv = "GRAPHDSE_DSED_CRASH_ADDR"
)

// crashHelperDaemon is the subprocess body: a real daemon over the given
// spool. It serves until SIGTERM (drain → exit 0) or SIGKILL (the parent's
// simulated crash). Never returns.
func crashHelperDaemon(spool, addrFile string) {
	addr := os.Getenv(crashAddrEnv)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	d, err := New(Options{
		Addr:     addr,
		Dir:      spool,
		AddrFile: addrFile,
		Scheduler: SchedulerOptions{
			JobWorkers:   1,
			SweepWorkers: 1,
		},
		SSEHeartbeat: 500 * time.Millisecond,
		DrainTimeout: 10 * time.Second,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash helper: %v\n", err)
		os.Exit(3)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		cancel()
	}()
	if err := d.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "crash helper: %v\n", err)
		os.Exit(3)
	}
	os.Exit(0)
}

// crashJobSpec is the sweep both the crashed-and-resumed run and the
// uninterrupted reference execute. The point delay paces the sweep so the
// parent can land a SIGKILL mid-run; it has no effect on results, so the
// reference drops it for speed.
func crashJobSpec(delayMS int) JobSpec {
	spec := workloadSpec("crashjob", "")
	spec.Space = smallSpace()
	spec.Workers = 1
	spec.PointDelayMS = delayMS
	return spec
}

// httpGetJSON fetches and decodes one endpoint, tolerating transient errors
// (the daemon may still be binding).
func httpGetJSON(base, path string, v any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// waitAddr polls the addr file the daemon writes once serving.
func waitAddr(t *testing.T, addrFile string, deadline time.Duration) string {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil && strings.HasSuffix(string(data), "\n") {
			return "http://" + strings.TrimSpace(string(data))
		}
		if time.Now().After(end) {
			t.Fatal("daemon never wrote its addr file")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startCrashHelper launches the subprocess daemon over spool.
func startCrashHelper(t *testing.T, spool, addrFile string) *exec.Cmd {
	return startCrashHelperFor(t, "TestDaemonKill9Recovery", "", spool, addrFile)
}

// startCrashHelperFor launches the subprocess daemon by re-execing the test
// binary into testName's helper branch. addr pins the listen address
// ("" = ephemeral).
func startCrashHelperFor(t *testing.T, testName, addr, spool, addrFile string) *exec.Cmd {
	t.Helper()
	os.Remove(addrFile)
	cmd := exec.Command(os.Args[0], "-test.run="+testName+"$")
	cmd.Env = append(os.Environ(), crashHelperEnv+"="+spool, crashAddrFileEnv+"="+addrFile)
	if addr != "" {
		cmd.Env = append(cmd.Env, crashAddrEnv+"="+addr)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestDaemonKill9Recovery is the headline acceptance test: SIGKILL the
// daemon mid-sweep, restart it over the same spool, and require that the job
// resumes from its checkpoint — no lost jobs, no double-run points, and a
// final report byte-identical to an uninterrupted daemon's. The clean
// SIGTERM drain of the restarted daemon (exit 0) rides along.
func TestDaemonKill9Recovery(t *testing.T) {
	if spool := os.Getenv(crashHelperEnv); spool != "" {
		crashHelperDaemon(spool, os.Getenv(crashAddrFileEnv)) // never returns
	}
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short")
	}

	spool := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")
	spec := crashJobSpec(75)
	total := 26 // len(EnumerateSpace(smallSpace()))

	// Phase 1: start the daemon, submit the paced job, and SIGKILL the
	// process once a few points have completed — a crash no defer can soften.
	cmd := startCrashHelper(t, spool, addrFile)
	base := waitAddr(t, addrFile, 10*time.Second)
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		cmd.Process.Kill()
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		if err := httpGetJSON(base, "/v1/jobs/crashjob", &st); err == nil && st.Done >= 3 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("job never made progress")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		t.Fatal(err)
	}
	cmd.Wait()

	ckpt := filepath.Join(spool, ckptDir, "crashjob.jsonl")
	partial := countLines(ckpt)
	if partial == 0 || partial >= total {
		t.Fatalf("SIGKILL landed outside the sweep: %d/%d points checkpointed", partial, total)
	}
	t.Logf("SIGKILL landed after %d/%d checkpointed points", partial, total)

	// Phase 2: restart over the same spool. Recovery must re-enqueue the
	// job and the sweep must resume from the checkpoint.
	cmd2 := startCrashHelper(t, spool, addrFile)
	base = waitAddr(t, addrFile, 10*time.Second)
	var st JobStatus
	deadline = time.Now().Add(60 * time.Second)
	for {
		if err := httpGetJSON(base, "/v1/jobs/crashjob", &st); err == nil && st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			cmd2.Process.Kill()
			t.Fatal("recovered job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != StateDone {
		cmd2.Process.Kill()
		t.Fatalf("recovered job finished %s (%s), want done", st.State, st.Error)
	}
	if st.Attempt != 2 {
		t.Errorf("recovered job attempt %d, want 2 (one crash, one resume)", st.Attempt)
	}
	resp, err = http.Get(base + "/v1/jobs/crashjob/result")
	if err != nil {
		cmd2.Process.Kill()
		t.Fatal(err)
	}
	recovered := new(bytes.Buffer)
	_, cerr := recovered.ReadFrom(resp.Body)
	resp.Body.Close()
	if cerr != nil || resp.StatusCode != http.StatusOK {
		cmd2.Process.Kill()
		t.Fatalf("fetch recovered result: status %d err %v", resp.StatusCode, cerr)
	}

	// Graceful drain: first SIGTERM must exit 0.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("restarted daemon did not drain cleanly on SIGTERM: %v", err)
	}

	// No double-runs: the checkpoint holds exactly one record per point.
	if n := countLines(ckpt); n != total {
		t.Fatalf("checkpoint holds %d records for %d points — duplicates or loss", n, total)
	}

	// Phase 3: the reference — the same job on a fresh daemon, never
	// interrupted — must produce byte-identical result bytes.
	refBase, refShutdown := startDaemon(t, t.TempDir())
	defer refShutdown()
	refSpec := crashJobSpec(0)
	body, _ = json.Marshal(refSpec)
	resp, err = http.Post(refBase+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := awaitState(t, refBase, "crashjob", 60*time.Second); got.State != StateDone {
		t.Fatalf("reference job finished %s (%s)", got.State, got.Error)
	}
	resp, err = http.Get(refBase + "/v1/jobs/crashjob/result")
	if err != nil {
		t.Fatal(err)
	}
	reference := new(bytes.Buffer)
	_, cerr = reference.ReadFrom(resp.Body)
	resp.Body.Close()
	if cerr != nil {
		t.Fatal(cerr)
	}

	if !bytes.Equal(recovered.Bytes(), reference.Bytes()) {
		t.Fatalf("recovered report is not byte-identical to the uninterrupted one:\nrecovered: %d bytes\nreference: %d bytes",
			recovered.Len(), reference.Len())
	}
}

// countLines returns the number of complete lines in a file (0 if missing).
func countLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return bytes.Count(data, []byte("\n"))
}
