package dsed

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// RetentionPolicy bounds what the spool keeps for terminal jobs. Zero
// values disable the corresponding limit; live (queued/running) jobs are
// never touched.
type RetentionPolicy struct {
	// MaxAge garbage-collects terminal jobs whose record is older (0 = keep
	// forever).
	MaxAge time.Duration
	// MaxJobs keeps at most this many terminal jobs, oldest evicted first
	// (0 = unlimited).
	MaxJobs int
	// MaxBytes caps the terminal jobs' combined spool footprint, oldest
	// evicted first until under (0 = unlimited).
	MaxBytes int64
	// CompactRecords triggers event-journal compaction once a job's journal
	// exceeds this many records (default 4096; <0 disables compaction).
	CompactRecords int
	// CompactKeepTail is how many trailing events compaction preserves
	// verbatim in the live tail (default 16).
	CompactKeepTail int
	// TempMaxAge garbage-collects orphaned atomic-write temp files older
	// than this — the residue of a crash mid-commit (default 1h).
	TempMaxAge time.Duration
	// Interval paces janitor sweeps (default 30s).
	Interval time.Duration
}

func (p *RetentionPolicy) fill() {
	if p.CompactRecords == 0 {
		p.CompactRecords = 4096
	}
	if p.CompactKeepTail <= 0 {
		p.CompactKeepTail = 16
	}
	if p.TempMaxAge <= 0 {
		p.TempMaxAge = time.Hour
	}
	if p.Interval <= 0 {
		p.Interval = 30 * time.Second
	}
}

// JanitorStats is the janitor's observability snapshot (/statusz).
type JanitorStats struct {
	Sweeps      int64 `json:"sweeps"`
	JobsRemoved int64 `json:"jobs_removed"`
	BytesFreed  int64 `json:"bytes_freed"`
	// Orphans counts recordless spool files collected (crash-mid-GC or
	// crash-mid-submit residue); Temps counts stale atomic-write temps.
	Orphans int64 `json:"orphans"`
	Temps   int64 `json:"temps"`
	// Compacted counts journals rewritten; CompactDropped the records their
	// compactions discarded.
	Compacted      int64  `json:"compacted"`
	CompactDropped int64  `json:"compact_dropped"`
	Errors         int64  `json:"errors"`
	LastError      string `json:"last_error,omitempty"`
	LastSweep      string `json:"last_sweep,omitempty"`
}

// Janitor is the spool's lifecycle garbage collector: it applies the
// retention policy to terminal jobs, compacts long event journals into
// sealed snapshots, collects orphaned files left by crashes, and prunes
// stale atomic-write temps. Every deletion follows the safe order encoded
// in Queue.GCJob (tombstone first, artifact last), so a crash mid-sweep
// leaves only orphans the next sweep collects — never a job whose record
// promises files that are gone.
type Janitor struct {
	q      *Queue
	policy RetentionPolicy

	mu sync.Mutex
	// stats is guarded by mu.
	stats JanitorStats
}

// NewJanitor builds a janitor over the queue's spool.
func NewJanitor(q *Queue, policy RetentionPolicy) *Janitor {
	policy.fill()
	return &Janitor{q: q, policy: policy}
}

// Stats snapshots the counters.
func (j *Janitor) Stats() JanitorStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Policy returns the effective (default-filled) retention policy.
func (j *Janitor) Policy() RetentionPolicy { return j.policy }

// Run sweeps on the policy interval until ctx ends.
func (j *Janitor) Run(ctx context.Context) {
	ticker := time.NewTicker(j.policy.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			j.Sweep()
		}
	}
}

// Sweep runs one full janitor pass: compaction, retention GC, orphan
// collection, stale-temp pruning. It is safe to call concurrently with
// submissions and running jobs.
func (j *Janitor) Sweep() {
	j.compactJournals()
	j.applyRetention()
	j.collectOrphans()
	j.pruneTemps()
	j.mu.Lock()
	j.stats.Sweeps++
	j.stats.LastSweep = time.Now().UTC().Format(time.RFC3339)
	j.mu.Unlock()
}

func (j *Janitor) fail(err error) {
	j.mu.Lock()
	j.stats.Errors++
	j.stats.LastError = err.Error()
	j.mu.Unlock()
}

// compactJournals rewrites any event journal grown past the policy
// threshold as snapshot + tail (see EventLog.Compact). Running jobs are
// fair game — compaction preserves seqs, so live Last-Event-ID resume is
// unaffected.
func (j *Janitor) compactJournals() {
	if j.policy.CompactRecords < 0 {
		return
	}
	events := j.q.Events()
	for _, rec := range j.q.List() {
		id := rec.Spec.ID
		if events.RecordCount(id) <= j.policy.CompactRecords {
			continue
		}
		dropped, err := events.Compact(id, j.policy.CompactKeepTail)
		if err != nil {
			j.fail(err)
			continue
		}
		if dropped > 0 {
			j.mu.Lock()
			j.stats.Compacted++
			j.stats.CompactDropped += int64(dropped)
			j.mu.Unlock()
		}
	}
}

// applyRetention GCs terminal jobs past the age/count/byte limits, oldest
// (by submission order) first.
func (j *Janitor) applyRetention() {
	p := j.policy
	if p.MaxAge <= 0 && p.MaxJobs <= 0 && p.MaxBytes <= 0 {
		return
	}
	type victim struct {
		id    string
		bytes int64
	}
	var terminal []victim
	var total int64
	now := time.Now()
	for _, rec := range j.q.List() { // submission-ordered
		if !rec.State.Terminal() {
			continue
		}
		id := rec.Spec.ID
		bytes := j.q.JobBytes(id)
		if p.MaxAge > 0 {
			if info, err := j.q.fs.Stat(j.q.jobPath(id)); err == nil && now.Sub(info.ModTime()) > p.MaxAge {
				j.gc(id)
				continue
			}
		}
		terminal = append(terminal, victim{id, bytes})
		total += bytes
	}
	i := 0
	for i < len(terminal) &&
		((p.MaxJobs > 0 && len(terminal)-i > p.MaxJobs) ||
			(p.MaxBytes > 0 && total > p.MaxBytes)) {
		j.gc(terminal[i].id)
		total -= terminal[i].bytes
		i++
	}
}

// gc removes one terminal job, recording the outcome.
func (j *Janitor) gc(id string) {
	freed, err := j.q.GCJob(id)
	if err != nil {
		j.fail(err)
		return
	}
	j.mu.Lock()
	j.stats.JobsRemoved++
	j.stats.BytesFreed += freed
	j.mu.Unlock()
}

// collectOrphans removes spool files whose job the queue no longer knows —
// the residue of a crash between GC steps. The ownership check runs at
// removal time per candidate, so a submission racing the sweep can never
// lose a file: its record is durable (and indexed) before any of its other
// spool files exist.
func (j *Janitor) collectOrphans() {
	type scan struct {
		dir   string
		toJob func(name string) string
	}
	stripExt := func(ext string) func(string) string {
		return func(name string) string {
			if strings.HasPrefix(name, ".") {
				return ""
			}
			if id, ok := strings.CutSuffix(name, ext); ok {
				return id
			}
			return ""
		}
	}
	scans := []scan{
		{filepath.Join(j.q.dir, ckptDir), stripExt(".jsonl")},
		{filepath.Join(j.q.dir, resultsDir), stripExt(".json")},
		{filepath.Join(j.q.dir, eventsDir), jobFromJournalName},
	}
	for _, s := range scans {
		entries, err := j.q.fs.ReadDir(s.dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			job := s.toJob(e.Name())
			if job == "" || j.q.Known(job) {
				continue
			}
			if rerr := j.q.fs.Remove(filepath.Join(s.dir, e.Name())); rerr == nil {
				j.mu.Lock()
				j.stats.Orphans++
				j.mu.Unlock()
			}
		}
	}
}

// pruneTemps removes atomic-write temp files (".<name>.tmp-*") older than
// the policy age across the spool tree — a crash mid-commit leaks exactly
// one, and the artifact layer never reuses them.
func (j *Janitor) pruneTemps() {
	dirs := []string{
		j.q.dir,
		filepath.Join(j.q.dir, jobsDir),
		filepath.Join(j.q.dir, ckptDir),
		filepath.Join(j.q.dir, resultsDir),
		filepath.Join(j.q.dir, eventsDir),
	}
	cutoff := time.Now().Add(-j.policy.TempMaxAge)
	for _, dir := range dirs {
		entries, err := j.q.fs.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasPrefix(name, ".") || !strings.Contains(name, ".tmp-") {
				continue
			}
			info, ierr := e.Info()
			if ierr != nil || info.ModTime().After(cutoff) {
				continue
			}
			if rerr := j.q.fs.Remove(filepath.Join(dir, name)); rerr == nil {
				j.mu.Lock()
				j.stats.Temps++
				j.mu.Unlock()
			}
		}
	}
}
