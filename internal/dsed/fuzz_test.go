package dsed

import (
	"bytes"
	"testing"
)

// fuzzSeedJournal builds a valid three-record journal for the seed corpus.
func fuzzSeedJournal() []byte {
	var buf bytes.Buffer
	for _, ev := range []Event{
		{Job: "j", Seq: 1, Type: EventState, State: StateQueued},
		{Job: "j", Seq: 2, Type: EventProgress, Done: 1, Total: 2},
		{Job: "j", Seq: 3, Type: EventState, State: StateDone},
	} {
		line, err := encodeEvent(&ev)
		if err != nil {
			panic(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

// FuzzEventEnvelope drives the event-journal decoder over arbitrary bytes.
// The contract under any damage — torn tails, interior corruption, raw
// garbage — is total: never panic, report a valid-prefix length that is in
// bounds, and make that prefix stable (re-scanning it yields exactly the
// same events and consumes it fully), because replay truncates the journal
// to this length and appends after it.
func FuzzEventEnvelope(f *testing.F) {
	seed := fuzzSeedJournal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add(seed[:len(seed)-7])                                   // torn tail
	f.Add(bytes.Replace(seed, []byte("seq"), []byte("sEq"), 1)) // interior damage
	f.Add([]byte("deadbeef {\"not\":\"an envelope\"}\n"))
	f.Add(bytes.Repeat([]byte{0xFF}, 128))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, valid := scanJournalBytes(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of bounds [0,%d]", valid, len(data))
		}
		if int64(len(data)) > valid {
			// Everything past the prefix is damage; the prefix itself must
			// still end on a record boundary.
			if valid > 0 && data[valid-1] != '\n' {
				t.Fatalf("valid prefix %d does not end at a record boundary", valid)
			}
		}
		reEvs, reValid := scanJournalBytes(data[:valid])
		if reValid != valid {
			t.Fatalf("prefix not stable: scan(data[:%d]) consumed %d", valid, reValid)
		}
		if len(reEvs) != len(evs) {
			t.Fatalf("prefix not stable: %d events, re-scan %d", len(evs), len(reEvs))
		}
		for i := range evs {
			if evs[i].Seq != reEvs[i].Seq || evs[i].Type != reEvs[i].Type {
				t.Fatalf("event %d differs on re-scan: %+v vs %+v", i, evs[i], reEvs[i])
			}
		}
		// Every decoded event must round-trip through the encoder: what
		// replay accepts, Emit could have written.
		for i := range evs {
			if _, err := encodeEvent(&evs[i]); err != nil {
				t.Fatalf("decoded event %d does not re-encode: %v", i, err)
			}
		}
	})
}
