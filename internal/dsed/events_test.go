package dsed

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// drainEvents collects everything currently buffered on a subscriber.
func drainEvents(sub *Subscriber) []Event {
	var out []Event
	for {
		select {
		case ev := <-sub.Events():
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestEventLogEmitAssignsContiguousSeqs(t *testing.T) {
	l := NewEventLog(t.TempDir(), 8)
	for i := 0; i < 5; i++ {
		if err := l.Emit("j1", Event{Type: EventProgress, Done: i, Total: 5}); err != nil {
			t.Fatalf("emit %d: %v", i, err)
		}
	}
	sub, backlog, err := l.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Unsubscribe(sub)
	if len(backlog) != 5 {
		t.Fatalf("backlog = %d events, want 5", len(backlog))
	}
	for i, ev := range backlog {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("backlog[%d].Seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Job != "j1" {
			t.Fatalf("backlog[%d].Job = %q", i, ev.Job)
		}
	}
}

func TestEventLogSeqsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	l := NewEventLog(dir, 8)
	if err := l.Emit("j1", Event{Type: EventState, State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	if err := l.Emit("j1", Event{Type: EventState, State: StateRunning, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// A fresh EventLog over the same directory — the restart path — must
	// continue the sequence, not restart it.
	l2 := NewEventLog(dir, 8)
	if err := l2.Emit("j1", Event{Type: EventProgress, Done: 1, Total: 2}); err != nil {
		t.Fatal(err)
	}
	_, backlog, err := l2.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 3 {
		t.Fatalf("backlog = %d events, want 3", len(backlog))
	}
	if backlog[2].Seq != 3 || backlog[2].Type != EventProgress {
		t.Fatalf("post-reopen event = %+v, want seq 3 progress", backlog[2])
	}
	if got := l2.Stats().Replayed; got == 0 {
		t.Fatal("reopen should count replayed journal records")
	}
}

func TestEventLogTornTailSalvagesValidPrefix(t *testing.T) {
	dir := t.TempDir()
	l := NewEventLog(dir, 8)
	for i := 0; i < 3; i++ {
		if err := l.Emit("j1", Event{Type: EventProgress, Done: i, Total: 3}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Tear the final record mid-line, the kill -9 signature.
	path := filepath.Join(dir, "j1.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := NewEventLog(dir, 8)
	_, backlog, err := l2.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 2 {
		t.Fatalf("backlog = %d events after torn tail, want 2", len(backlog))
	}
	// The torn record was fsync-incomplete, hence never published: its seq
	// is reused, and — because replay truncated the damage — the re-emitted
	// record lands on the valid prefix and is fully readable.
	if err := l2.Emit("j1", Event{Type: EventProgress, Done: 2, Total: 3}); err != nil {
		t.Fatal(err)
	}
	_, backlog, err = l2.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 3 || backlog[2].Seq != 3 {
		t.Fatalf("backlog after re-emit = %+v, want 3 contiguous events", backlog)
	}
}

func TestEventLogCorruptInteriorStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l := NewEventLog(dir, 8)
	for i := 0; i < 3; i++ {
		if err := l.Emit("j1", Event{Type: EventProgress, Done: i, Total: 3}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, "j1.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload: its CRC must reject
	// it, and replay must stop at the damage rather than trust the rest.
	data[20] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := NewEventLog(dir, 8)
	_, backlog, err := l2.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 0 {
		t.Fatalf("backlog = %d events after interior corruption at line 1, want 0", len(backlog))
	}
}

func TestEventLogSubscribeResumeFiltersDelivered(t *testing.T) {
	l := NewEventLog(t.TempDir(), 8)
	for i := 0; i < 6; i++ {
		if err := l.Emit("j1", Event{Type: EventProgress, Done: i, Total: 6}); err != nil {
			t.Fatal(err)
		}
	}
	_, backlog, err := l.Subscribe("j1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 2 || backlog[0].Seq != 5 || backlog[1].Seq != 6 {
		t.Fatalf("resume backlog = %+v, want seqs [5 6]", backlog)
	}
	st := l.Stats()
	if st.ResumeHits != 1 {
		t.Fatalf("ResumeHits = %d, want 1", st.ResumeHits)
	}
	// A resume past the end of the stream replays nothing.
	_, backlog, err = l.Subscribe("j1", 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 0 {
		t.Fatalf("past-end resume backlog = %d events, want 0", len(backlog))
	}
}

func TestEventLogEmitNeverBlocksAndEvictsSlowSubscriber(t *testing.T) {
	l := NewEventLog(t.TempDir(), 1) // one-event buffer: laggards evict fast
	slow, _, err := l.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := l.Emit("j1", Event{Type: EventProgress, Done: i, Total: 10}); err != nil {
				t.Errorf("emit %d: %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a subscriber that never reads")
	}
	select {
	case <-slow.Evicted():
	default:
		t.Fatal("slow subscriber was not evicted")
	}
	st := l.Stats()
	if st.SlowEvictions != 1 {
		t.Fatalf("SlowEvictions = %d, want 1", st.SlowEvictions)
	}
	if st.Subscribers != 0 {
		t.Fatalf("Subscribers = %d after eviction, want 0", st.Subscribers)
	}
	// The evicted consumer resumes from the journal with no loss: its
	// buffered event plus the journal replay covers all ten.
	got := drainEvents(slow)
	var last uint64
	for _, ev := range got {
		last = ev.Seq
	}
	_, backlog, err := l.Subscribe("j1", last)
	if err != nil {
		t.Fatal(err)
	}
	if int(last)+len(backlog) != 10 {
		t.Fatalf("resume after eviction covers %d+%d events, want 10", last, len(backlog))
	}
}

func TestEventLogLiveDeliveryAndTerminalClosesJournal(t *testing.T) {
	dir := t.TempDir()
	l := NewEventLog(dir, 8)
	sub, backlog, err := l.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 0 {
		t.Fatalf("fresh stream backlog = %d, want 0", len(backlog))
	}
	if err := l.Emit("j1", Event{Type: EventState, State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	if err := l.Emit("j1", Event{Type: EventState, State: StateDone}); err != nil {
		t.Fatal(err)
	}
	evs := drainEvents(sub)
	if len(evs) != 2 || !evs[1].Terminal() {
		t.Fatalf("live events = %+v, want queued then terminal done", evs)
	}
	// The journal handle is released on the terminal event; a later
	// subscriber still reads the full history from disk.
	_, backlog, err = l.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 2 {
		t.Fatalf("post-terminal backlog = %d, want 2", len(backlog))
	}
}

func TestEventLogEnsureStateIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	l := NewEventLog(dir, 8)
	if err := l.Emit("j1", Event{Type: EventState, State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	// Same state: no-op. New state: appended.
	if err := l.EnsureState("j1", Event{State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	if err := l.EnsureState("j1", Event{State: StateRunning, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.EnsureState("j1", Event{State: StateRunning, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	_, backlog, err := l.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 2 {
		t.Fatalf("backlog = %d events, want 2 (queued, running)", len(backlog))
	}
	// And it must hold across a reopen — the recovery path.
	l.Close()
	l2 := NewEventLog(dir, 8)
	if err := l2.EnsureState("j1", Event{State: StateRunning, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	_, backlog, err = l2.Subscribe("j1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(backlog) != 2 {
		t.Fatalf("backlog after reopen = %d events, want 2", len(backlog))
	}
}

func TestDecodeEventRejectsDamage(t *testing.T) {
	ev := Event{Seq: 1, Job: "j1", Type: EventState, State: StateQueued}
	line, err := encodeEvent(&ev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeEvent(line[:len(line)-1]); err != nil {
		t.Fatalf("decode round-trip: %v", err)
	}
	bad := append([]byte{}, line...)
	bad[25] ^= 0x01
	if _, err := decodeEvent(bad[:len(bad)-1]); err == nil {
		t.Fatal("decode accepted a corrupted frame")
	}
	if _, err := decodeEvent([]byte(`{"crc":0,"ev":{"seq":0,"type":""}}`)); err == nil {
		t.Fatal("decode accepted an event with no seq/type")
	}
}
