package dsed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"graphdse/internal/artifact"
)

// Storage-degradation sentinels. The HTTP layer maps ErrSpoolPressure to
// 507 Insufficient Storage and ErrDegraded to 503 Service Unavailable, both
// with Retry-After: explicit backpressure a well-behaved client (and the
// dsedclient follower) turns into a paced retry.
var (
	// ErrSpoolPressure reports a spool over its soft watermark: new
	// submissions are shed until the janitor (or the operator) frees space.
	ErrSpoolPressure = errors.New("dsed: spool over disk watermark")
	// ErrDegraded reports read-only degraded mode: the disk is full past
	// the hard watermark or persistently failing writes. Running jobs
	// finish best-effort, reads and event streams still serve, but nothing
	// new is admitted until a recovery probe succeeds.
	ErrDegraded = errors.New("dsed: storage degraded, read-only")
)

// DiskMode is the storage substrate's health state.
type DiskMode string

const (
	// DiskOK: full service.
	DiskOK DiskMode = "ok"
	// DiskPressure: spool over the soft watermark; submissions shed (507),
	// everything else serves.
	DiskPressure DiskMode = "pressure"
	// DiskDegraded: read-only. Entered on the hard watermark, on ENOSPC,
	// or on a streak of write failures; left only when a probe write
	// succeeds and usage is back under the hard watermark.
	DiskDegraded DiskMode = "degraded"
)

// DiskPolicy bounds the spool and tunes degradation. Zero values disable
// the watermarks; failure-driven degradation is always armed because a
// daemon that keeps accepting work it cannot persist is lying to clients.
type DiskPolicy struct {
	// SoftBytes sheds new submissions once the spool exceeds it (0 = off).
	SoftBytes int64
	// HardBytes enters read-only degraded mode once exceeded (0 = off).
	HardBytes int64
	// SoftFiles/HardFiles are the file-count analogues (0 = off).
	SoftFiles int
	HardFiles int
	// FailureStreak is the consecutive-write-failure count that degrades
	// the daemon for non-ENOSPC errors (default 3); ENOSPC degrades
	// immediately, because retrying into a full disk cannot help.
	FailureStreak int
	// ProbeInterval paces the usage rescans and, while degraded, the
	// recovery probe writes (default 2s).
	ProbeInterval time.Duration
}

func (p *DiskPolicy) fill() {
	if p.FailureStreak <= 0 {
		p.FailureStreak = 3
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = 2 * time.Second
	}
}

// DiskStatus is the governor's observability snapshot (/statusz, /healthz).
type DiskStatus struct {
	Mode       DiskMode `json:"mode"`
	Cause      string   `json:"cause,omitempty"`
	SpoolBytes int64    `json:"spool_bytes"`
	SpoolFiles int      `json:"spool_files"`
	SoftBytes  int64    `json:"soft_bytes,omitempty"`
	HardBytes  int64    `json:"hard_bytes,omitempty"`
	// WriteFailures counts failed durable writes observed process-wide.
	WriteFailures int64 `json:"write_failures"`
	// Shed counts submissions refused for disk pressure or degradation.
	Shed int64 `json:"shed"`
	// Probes/ProbeFailures count recovery probe writes while degraded.
	Probes        int64 `json:"probes"`
	ProbeFailures int64 `json:"probe_failures"`
	// Recoveries counts degraded→writable transitions.
	Recoveries int64  `json:"recoveries"`
	LastError  string `json:"last_error,omitempty"`
}

// DiskGovernor watches the spool the way guard.Governor watches the heap:
// it tracks usage against watermarks, observes every durable write's
// outcome, degrades the daemon to read-only before a sick disk can corrupt
// state or lie to clients, and probes its way back to full service once
// writes succeed again.
type DiskGovernor struct {
	fs     artifact.FS
	dir    string
	policy DiskPolicy

	mu sync.Mutex
	// mode is guarded by mu.
	mode DiskMode
	// cause is guarded by mu.
	cause string
	// streak is guarded by mu.
	streak int
	// usageBytes is guarded by mu.
	usageBytes int64
	// usageFiles is guarded by mu.
	usageFiles int
	// lastErr is guarded by mu.
	lastErr string

	// writeFailures is guarded by mu.
	writeFailures int64
	// shed is guarded by mu.
	shed int64
	// probes is guarded by mu.
	probes int64
	// probeFails is guarded by mu.
	probeFails int64
	// recoveries is guarded by mu.
	recoveries int64

	// writable is closed while writes are allowed and replaced with an
	// open channel on degradation, so waiters block exactly while
	// degraded; the field itself is guarded by mu.
	writable chan struct{}
}

// NewDiskGovernor builds a governor over the spool at dir.
func NewDiskGovernor(fsys artifact.FS, dir string, policy DiskPolicy) *DiskGovernor {
	policy.fill()
	if fsys == nil {
		fsys = artifact.OS
	}
	w := make(chan struct{})
	close(w)
	return &DiskGovernor{fs: fsys, dir: dir, policy: policy, mode: DiskOK, writable: w}
}

// Mode returns the current health state.
func (g *DiskGovernor) Mode() DiskMode {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.mode
}

// Status snapshots the governor.
func (g *DiskGovernor) Status() DiskStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	return DiskStatus{
		Mode:          g.mode,
		Cause:         g.cause,
		SpoolBytes:    g.usageBytes,
		SpoolFiles:    g.usageFiles,
		SoftBytes:     g.policy.SoftBytes,
		HardBytes:     g.policy.HardBytes,
		WriteFailures: g.writeFailures,
		Shed:          g.shed,
		Probes:        g.probes,
		ProbeFailures: g.probeFails,
		Recoveries:    g.recoveries,
		LastError:     g.lastErr,
	}
}

// Admit gates one submission: nil at full service, ErrSpoolPressure over
// the soft watermark, ErrDegraded in read-only mode.
func (g *DiskGovernor) Admit() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch g.mode {
	case DiskDegraded:
		g.shed++
		return fmt.Errorf("%w: %s", ErrDegraded, g.cause)
	case DiskPressure:
		g.shed++
		return fmt.Errorf("%w: %s", ErrSpoolPressure, g.cause)
	}
	return nil
}

// Writable reports whether durable writes are currently expected to work.
func (g *DiskGovernor) Writable() bool { return g.Mode() != DiskDegraded }

// AwaitWritable blocks until the governor leaves degraded mode or ctx
// ends, reporting which happened. Running jobs use it to park a failed
// result seal until the disk heals instead of discarding finished work.
func (g *DiskGovernor) AwaitWritable(ctx context.Context) bool {
	for {
		g.mu.Lock()
		ch := g.writable
		g.mu.Unlock()
		select {
		case <-ch:
			return true
		case <-ctx.Done():
			return false
		}
	}
}

// ObserveWrite feeds one durable write's outcome into the health model.
// Every persistence path (WAL records, event journals, checkpoints, result
// seals) reports here: ENOSPC degrades immediately, other errors degrade
// after a streak, and any success both resets the streak and — because a
// real committed write is at least as convincing as a probe — can clear
// degraded mode when usage allows.
func (g *DiskGovernor) ObserveWrite(err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err == nil {
		g.streak = 0
		if g.mode == DiskDegraded && !g.overHardLocked() {
			g.recoverLocked("write succeeded")
		}
		return
	}
	g.writeFailures++
	g.lastErr = err.Error()
	g.streak++
	switch {
	case errors.Is(err, syscall.ENOSPC):
		g.degradeLocked("enospc: " + err.Error())
	case g.streak >= g.policy.FailureStreak:
		g.degradeLocked(fmt.Sprintf("%d consecutive write failures, last: %v", g.streak, err))
	}
}

// overHardLocked reports hard-watermark breach on the last usage scan.
func (g *DiskGovernor) overHardLocked() bool {
	return (g.policy.HardBytes > 0 && g.usageBytes >= g.policy.HardBytes) ||
		(g.policy.HardFiles > 0 && g.usageFiles >= g.policy.HardFiles)
}

func (g *DiskGovernor) overSoftLocked() bool {
	return (g.policy.SoftBytes > 0 && g.usageBytes >= g.policy.SoftBytes) ||
		(g.policy.SoftFiles > 0 && g.usageFiles >= g.policy.SoftFiles)
}

// degradeLocked enters read-only mode (idempotent).
func (g *DiskGovernor) degradeLocked(cause string) {
	if g.mode == DiskDegraded {
		return
	}
	g.mode = DiskDegraded
	g.cause = cause
	g.writable = make(chan struct{})
}

// recoverLocked leaves degraded mode for whatever usage warrants.
func (g *DiskGovernor) recoverLocked(how string) {
	g.recoveries++
	g.streak = 0
	close(g.writable)
	if g.overSoftLocked() {
		g.mode = DiskPressure
		g.cause = fmt.Sprintf("spool %d bytes / %d files over soft watermark", g.usageBytes, g.usageFiles)
	} else {
		g.mode = DiskOK
		g.cause = ""
	}
	_ = how
}

// Refresh rescans spool usage and applies the watermarks. Degraded mode is
// never cleared here — only a successful write (real or probe) proves the
// disk works again.
func (g *DiskGovernor) Refresh() {
	bytes, files := g.scanUsage()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.usageBytes, g.usageFiles = bytes, files
	if g.mode == DiskDegraded {
		return
	}
	switch {
	case g.overHardLocked():
		g.degradeLocked(fmt.Sprintf("spool %d bytes / %d files over hard watermark", bytes, files))
	case g.overSoftLocked():
		g.mode = DiskPressure
		g.cause = fmt.Sprintf("spool %d bytes / %d files over soft watermark", bytes, files)
	default:
		g.mode = DiskOK
		g.cause = ""
	}
}

// scanUsage sums bytes and file counts across the spool tree (depth 2: the
// root plus its subdirectories — the fixed spool layout).
func (g *DiskGovernor) scanUsage() (int64, int) {
	var bytes int64
	var files int
	var walk func(dir string, depth int)
	walk = func(dir string, depth int) {
		ents, err := g.fs.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range ents {
			if e.IsDir() {
				if depth > 0 {
					walk(filepath.Join(dir, e.Name()), depth-1)
				}
				continue
			}
			info, ierr := e.Info()
			if ierr != nil {
				continue
			}
			files++
			bytes += info.Size()
		}
	}
	walk(g.dir, 2)
	return bytes, files
}

// Probe attempts one small durable write in the spool root and reports
// whether the disk accepted it. While degraded, a successful probe with
// usage back under the hard watermark restores service.
func (g *DiskGovernor) Probe() bool {
	path := filepath.Join(g.dir, ".diskprobe")
	err := artifact.WriteFileAtomicFS(g.fs, path, 0o644, func(w io.Writer) error {
		_, werr := io.WriteString(w, "probe\n")
		return werr
	})
	if err == nil {
		_ = g.fs.Remove(path)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.probes++
	if err != nil {
		g.probeFails++
		g.lastErr = err.Error()
		return false
	}
	if g.mode == DiskDegraded && !g.overHardLocked() {
		g.recoverLocked("probe succeeded")
	}
	return true
}

// Run drives the rescan/probe loop until ctx ends.
func (g *DiskGovernor) Run(ctx context.Context) {
	g.Refresh()
	ticker := time.NewTicker(g.policy.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			g.Refresh()
			if g.Mode() == DiskDegraded {
				g.Probe()
			}
		}
	}
}
