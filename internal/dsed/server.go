package dsed

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"graphdse/internal/guard"
)

// maxSubmitBody bounds a job-submission body; a spec is small, and the
// daemon must not buffer unbounded client input.
const maxSubmitBody = 1 << 20

// Server is the HTTP face of the daemon: job submission with admission
// control, status/result queries, cancellation, and observability.
type Server struct {
	q       *Queue
	sched   *Scheduler
	cache   *TraceCache
	gov     *guard.Governor
	disk    *DiskGovernor
	janitor *Janitor
	start   time.Time
	// heartbeat is the SSE comment-heartbeat interval (default 10s); tests
	// shorten it.
	heartbeat time.Duration
}

// NewServer wires the HTTP layer (gov may be nil).
func NewServer(q *Queue, sched *Scheduler, cache *TraceCache, gov *guard.Governor) *Server {
	return &Server{q: q, sched: sched, cache: cache, gov: gov, start: time.Now()}
}

// SetHeartbeat overrides the SSE heartbeat interval (<=0 keeps the default).
func (s *Server) SetHeartbeat(d time.Duration) { s.heartbeat = d }

// SetDisk wires the disk governor into health and status reporting.
func (s *Server) SetDisk(g *DiskGovernor) { s.disk = g }

// SetJanitor wires the janitor into status reporting.
func (s *Server) SetJanitor(j *Janitor) { s.janitor = j }

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/pareto", s.handlePareto)
	mux.HandleFunc("GET /v1/jobs/{id}/recommend", s.handleRecommend)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return mux
}

// NewHTTPServer wraps the handler in an http.Server with the timeout
// discipline the httpctx analyzer enforces: a daemon that accepts work from
// the network must never let one stalled peer pin a connection (and its
// goroutine) forever.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON renders one response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// retryAfterSeconds estimates when a saturated daemon is worth retrying:
// proportional to the backlog, bounded so clients never park for long.
func (s *Server) retryAfterSeconds() int {
	queued, running := s.q.Depth()
	sec := 1 + (queued+running)/2
	if sec > 60 {
		sec = 60
	}
	return sec
}

// rejectSubmit maps admission-control errors to status codes. Saturation
// and tenant caps are 429 with Retry-After — explicit backpressure, not a
// dropped connection; draining is 503 (retry against the replacement
// daemon, not this one). Spool pressure is 507 Insufficient Storage and
// degraded storage 503, both with Retry-After: the janitor or a recovery
// probe may clear either, so a paced retry is the right client move.
func (s *Server) rejectSubmit(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrTenantBusy):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case errors.Is(err, ErrSpoolPressure):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusInsufficientStorage, apiError{Error: err.Error()})
	case errors.Is(err, ErrDegraded):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	case errors.Is(err, ErrSpecConflict):
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
	case errors.Is(err, ErrBadSpec):
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

// JobStatus is the client view of one job.
type JobStatus struct {
	ID          string   `json:"id"`
	Tenant      string   `json:"tenant"`
	State       JobState `json:"state"`
	Attempt     int      `json:"attempt"`
	Done        int      `json:"done"`
	Total       int      `json:"total"`
	Survivors   int      `json:"survivors,omitempty"`
	Quarantined int      `json:"quarantined,omitempty"`
	Error       string   `json:"error,omitempty"`
}

func statusOf(rec JobRecord) JobStatus {
	return JobStatus{
		ID:          rec.Spec.ID,
		Tenant:      rec.Spec.tenant(),
		State:       rec.State,
		Attempt:     rec.Attempt,
		Done:        rec.Done,
		Total:       rec.Total,
		Survivors:   rec.Survivors,
		Quarantined: rec.Quarantined,
		Error:       rec.Error,
	}
}

// handleSubmit admits one job. 202 for a new job, 200 for an idempotent
// re-submission.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decode spec: %v", err)})
		return
	}
	if spec.Tenant == "" {
		spec.Tenant = r.Header.Get("X-Tenant")
	}
	rec, existing, err := s.q.Submit(spec)
	if err != nil {
		s.rejectSubmit(w, err)
		return
	}
	status := http.StatusAccepted
	if existing {
		status = http.StatusOK
	}
	writeJSON(w, status, statusOf(rec))
}

// handleList returns every known job, oldest first.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	recs := s.q.List()
	out := make([]JobStatus, 0, len(recs))
	for _, rec := range recs {
		out = append(out, statusOf(rec))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStatus returns one job.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rec, err := s.q.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, statusOf(rec))
}

// handleCancel cancels one job. A queued job cancels synchronously (200,
// terminal record); a running job's cancel propagates through the sweep
// context and lands at point granularity, so the response is 202 with the
// still-running record — the terminal `cancelled` event on the job's
// stream is the completion signal. Terminal jobs keep the 409 contract.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		switch {
		case errors.Is(err, ErrUnknownJob):
			writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		case errors.Is(err, ErrNotCancellable):
			writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		return
	}
	rec, err := s.q.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	status := http.StatusOK
	if !rec.State.Terminal() {
		status = http.StatusAccepted
	}
	writeJSON(w, status, statusOf(rec))
}

// handleResult serves the sealed result document of a done job.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := s.q.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	if rec.State != StateDone {
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("dsed: job %s is %s, result available once done", id, rec.State)})
		return
	}
	data, err := s.q.fs.ReadFile(s.q.resultPath(id))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: fmt.Sprintf("dsed: read result: %v", err)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleHealth is the liveness-and-serviceability probe. A healthy or
// merely pressured daemon answers 200 (with the mode, so orchestration can
// see pressure building); a storage-degraded daemon answers 503 with the
// cause — it is alive, still serves reads and streams, but must not
// receive new work.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.disk == nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	ds := s.disk.Status()
	body := map[string]string{"status": string(ds.Mode)}
	if ds.Cause != "" {
		body["cause"] = ds.Cause
	}
	if ds.Mode == DiskDegraded {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// Statusz is the daemon's observability snapshot.
type Statusz struct {
	UptimeSec  int64           `json:"uptime_sec"`
	Queued     int             `json:"queued"`
	Running    int             `json:"running"`
	Cache      CacheStats      `json:"cache"`
	Events     EventLogStats   `json:"events"`
	Pressure   int             `json:"pressure"`
	PeakHeap   uint64          `json:"peak_heap_bytes"`
	Downshifts int             `json:"downshifts"`
	Disk       *DiskStatus     `json:"disk,omitempty"`
	Janitor    *JanitorStats   `json:"janitor,omitempty"`
	Recovery   *RecoveryReport `json:"recovery,omitempty"`
}

// handleStatusz reports queue depth, cache health, governor pressure, and
// the storage substrate's state (disk governor, janitor, recovery report).
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	queued, running := s.q.Depth()
	st := Statusz{
		UptimeSec: int64(time.Since(s.start).Seconds()),
		Queued:    queued,
		Running:   running,
		Cache:     s.cache.Stats(),
		Events:    s.q.Events().Stats(),
		Recovery:  s.q.Recovery(),
	}
	if s.gov != nil {
		st.Pressure = s.gov.Pressure()
		st.PeakHeap = s.gov.PeakHeapBytes()
		st.Downshifts = len(s.gov.Downshifts())
	}
	if s.disk != nil {
		ds := s.disk.Status()
		st.Disk = &ds
	}
	if s.janitor != nil {
		js := s.janitor.Stats()
		st.Janitor = &js
	}
	writeJSON(w, http.StatusOK, st)
}
