package dsed

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"graphdse/internal/memsim"
	"graphdse/internal/trace"
)

// tinyTrace builds a small real PreparedTrace.
func tinyTrace(t *testing.T) *memsim.PreparedTrace {
	t.Helper()
	events := []trace.Event{
		{Cycle: 1, Addr: 0x40, Op: trace.Read},
		{Cycle: 2, Addr: 0x80, Op: trace.Write},
		{Cycle: 3, Addr: 0xc0, Op: trace.Read},
	}
	pt, err := memsim.Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// TestTraceCacheSingleFlight: N concurrent Gets for one key run the loader
// exactly once.
func TestTraceCacheSingleFlight(t *testing.T) {
	c := NewTraceCache(4)
	pt := tinyTrace(t)
	var loads atomic.Int64
	gate := make(chan struct{})

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Get(context.Background(), "k", func(context.Context) (*memsim.PreparedTrace, error) {
				loads.Add(1)
				<-gate // hold every waiter in the same flight
				return pt, nil
			})
			errs[i] = err
		}(i)
	}
	close(gate)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestTraceCacheErrorNotCached: a failed load is delivered to its waiters
// and then forgotten — the next Get retries.
func TestTraceCacheErrorNotCached(t *testing.T) {
	c := NewTraceCache(4)
	boom := errors.New("transient decode failure")
	if _, err := c.Get(context.Background(), "k", func(context.Context) (*memsim.PreparedTrace, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want loader error", err)
	}
	pt := tinyTrace(t)
	got, err := c.Get(context.Background(), "k", func(context.Context) (*memsim.PreparedTrace, error) {
		return pt, nil
	})
	if err != nil || got != pt {
		t.Fatalf("retry after error: pt=%v err=%v", got, err)
	}
}

// TestTraceCacheCorruptionFallsBackToRedecode: a hit whose fingerprint no
// longer matches must evict the entry and re-decode instead of serving the
// poisoned trace (or failing the job).
func TestTraceCacheCorruptionFallsBackToRedecode(t *testing.T) {
	c := NewTraceCache(4)
	pt := tinyTrace(t)
	if _, err := c.Get(context.Background(), "k", func(context.Context) (*memsim.PreparedTrace, error) {
		return pt, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Simulate in-memory corruption: the stored checksum no longer matches
	// the decoded arrays.
	c.mu.Lock()
	c.entries["k"].crc ^= 0xdeadbeef
	c.mu.Unlock()

	var reloads atomic.Int64
	got, err := c.Get(context.Background(), "k", func(context.Context) (*memsim.PreparedTrace, error) {
		reloads.Add(1)
		return tinyTrace(t), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if reloads.Load() != 1 {
		t.Fatalf("corrupt hit did not re-decode (reloads=%d)", reloads.Load())
	}
	if got.Fingerprint() != pt.Fingerprint() {
		t.Fatal("re-decoded trace differs from original")
	}
	if st := c.Stats(); st.Corruptions != 1 {
		t.Fatalf("corruption counter: %+v", st)
	}
	// The replacement entry is healthy: the next Get is a plain hit.
	var extra atomic.Int64
	if _, err := c.Get(context.Background(), "k", func(context.Context) (*memsim.PreparedTrace, error) {
		extra.Add(1)
		return nil, errors.New("must not load")
	}); err != nil || extra.Load() != 0 {
		t.Fatalf("post-recovery hit reloaded: err=%v loads=%d", err, extra.Load())
	}
}

// TestTraceCacheEviction: the cache holds at most maxEntries completed
// decodes, evicting least-recently-used first.
func TestTraceCacheEviction(t *testing.T) {
	c := NewTraceCache(2)
	pt := tinyTrace(t)
	load := func(context.Context) (*memsim.PreparedTrace, error) { return pt, nil }
	for i := 0; i < 5; i++ {
		if _, err := c.Get(context.Background(), fmt.Sprintf("k%d", i), load); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Entries > 2 {
		t.Fatalf("cache grew past its bound: %+v", st)
	}
	// Most-recent key k4 must still be resident.
	var loads atomic.Int64
	if _, err := c.Get(context.Background(), "k4", func(context.Context) (*memsim.PreparedTrace, error) {
		loads.Add(1)
		return pt, nil
	}); err != nil || loads.Load() != 0 {
		t.Fatalf("LRU evicted the most recent entry: err=%v loads=%d", err, loads.Load())
	}
}

// TestTraceCachePartitionSharing: concurrent jobs drawing one trace from the
// cache share its geometry-keyed partition cache — replays against configs
// of equal mapping geometry partition the trace once across all jobs, and
// the daemon's cache stats surface that reuse.
func TestTraceCachePartitionSharing(t *testing.T) {
	c := NewTraceCache(4)
	pt := tinyTrace(t)
	load := func(context.Context) (*memsim.PreparedTrace, error) { return pt, nil }

	const jobs = 6
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Get(context.Background(), "shared", load)
			if err != nil {
				errs[i] = err
				return
			}
			// Half the jobs sweep a 2-channel config, half a 4-channel one.
			cfg := memsim.NewDRAMConfig(2+2*(i%2), 2000, 400)
			_, errs[i] = memsim.RunPreparedTrace(cfg, got)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.PartitionEntries != 2 {
		t.Fatalf("partition entries = %d, want 2 (one per geometry): %+v", st.PartitionEntries, st)
	}
	if st.PartitionMisses != 2 {
		t.Fatalf("partition builds = %d, want 2 across %d jobs: %+v", st.PartitionMisses, jobs, st)
	}
	if st.PartitionHits != jobs-2 {
		t.Fatalf("partition hits = %d, want %d: %+v", st.PartitionHits, jobs-2, st)
	}
}
