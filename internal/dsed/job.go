// Package dsed implements the DSE daemon: a long-running HTTP/JSON service
// that accepts design-space-sweep jobs, shards their design points across a
// guard-supervised worker fleet, and is crash-safe end to end. It composes
// the reliability layers the repository already provides — atomic artifacts
// (internal/artifact), JSONL sweep checkpoints (internal/dse), supervised
// workers, budgets and signal discipline (internal/guard) — into one
// service whose headline property is robustness:
//
//   - The job queue is a durable spool on disk. Every job record is written
//     atomically (temp+fsync+rename) with a CRC32-Castagnoli checksum, so a
//     kill -9 at any instant leaves either the previous complete record or
//     the next complete record, and bit rot is detected at recovery rather
//     than silently re-animating a damaged job.
//   - Every running job checkpoints each completed design point to a
//     per-job JSONL file; restart resumes from the last completed point
//     with no duplicates and no lost jobs, and the final report is
//     byte-identical to an uninterrupted run.
//   - Admission control bounds the queue depth and per-tenant in-flight
//     work (429 + Retry-After when saturated), and a heap-budget Governor
//     sheds sweep workers before the process OOMs.
//   - Concurrent jobs referencing the same trace share one decoded
//     PreparedTrace through a content-addressed, single-flight cache that
//     detects in-memory corruption and re-decodes instead of failing jobs.
//   - SIGTERM drains gracefully: intake stops, in-flight jobs checkpoint,
//     the process exits 0; a second signal force-exits with
//     artifact.ExitForced.
//   - Every observable job transition — state changes, sweep progress,
//     per-point failures, the result seal — is journaled durably (CRC-framed
//     append-only, fsynced before publication) and streamed over SSE with
//     Last-Event-ID resume, so a client's view of a job survives both
//     daemon crashes and its own disconnects with no gaps and no
//     duplicates; slow consumers are evicted, never waited on.
package dsed

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"graphdse/internal/artifact"
	"graphdse/internal/dse"
)

// JobState is the lifecycle of a job in the durable queue.
//
//	queued ──▶ running ──▶ done
//	   │          │  ├───▶ failed
//	   │          │  └───▶ quarantined
//	   └──────────┴─────▶ cancelled
//
// A daemon crash reverses running back to queued at recovery (the per-job
// checkpoint preserves completed points); every other transition is
// one-way and persisted atomically before it is visible to clients.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	// StateFailed marks jobs whose sweep errored terminally (deadline,
	// too few survivors, trace unavailable).
	StateFailed JobState = "failed"
	// StateQuarantined marks jobs pushed under their survivorship floor by
	// the physical-invariant gate: the sweep completed, but its results
	// were physically impossible and must not reach any dataset. The job
	// is kept for forensics rather than retried — re-running impossible
	// physics yields impossible physics.
	StateQuarantined JobState = "quarantined"
	StateCancelled   JobState = "cancelled"
)

// Terminal reports whether the state is an end state.
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateQuarantined, StateCancelled:
		return true
	}
	return false
}

// WorkloadSpec synthesizes the paper's BFS workload trace inside the
// daemon. It is fully deterministic, which makes it content-addressable in
// the trace cache: two jobs with equal specs share one decoded trace.
type WorkloadSpec struct {
	Vertices   int   `json:"vertices,omitempty"`
	EdgeFactor int   `json:"edge_factor,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	Repeats    int   `json:"repeats,omitempty"`
}

// JobSpec is the client-submitted description of one sweep job. Exactly one
// trace source (Workload or TracePath) must be set.
type JobSpec struct {
	// ID is the client's idempotency key; the daemon generates one when
	// empty. Re-submitting an identical (ID, spec) pair returns the
	// existing job instead of enqueueing a duplicate.
	ID string `json:"id,omitempty"`
	// Tenant attributes the job for per-tenant in-flight caps ("default"
	// when empty).
	Tenant string `json:"tenant,omitempty"`
	// Workload synthesizes the trace in-process.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// TracePath replays a binary trace artifact from disk (TRACEBIN v1/v2).
	TracePath string `json:"trace_path,omitempty"`
	// Space overrides the paper's 416-point design space.
	Space *dse.SpaceParams `json:"space,omitempty"`

	// TimeoutSec bounds the whole job's wall clock (0 = none).
	TimeoutSec int `json:"timeout_sec,omitempty"`
	// PointTimeoutMS bounds each design point's simulation (0 = none).
	PointTimeoutMS int `json:"point_timeout_ms,omitempty"`
	// Retries bounds re-attempts for transient point failures.
	Retries int `json:"retries,omitempty"`
	// MinSurvivors fails (or, post-gate, quarantines) the job when fewer
	// points survive.
	MinSurvivors int `json:"min_survivors,omitempty"`
	// Workers caps the job's sweep parallelism (further capped by the
	// daemon and its Governor).
	Workers int `json:"workers,omitempty"`

	// FailureRate injects the paper's deterministic simulation-crash rate
	// (chaos/testing; 0 disables).
	FailureRate float64 `json:"failure_rate,omitempty"`
	FailureSeed uint64  `json:"failure_seed,omitempty"`
	// PointDelayMS sleeps after each completed point. It exists for
	// crash-recovery drills (the CI smoke job and subprocess tests kill
	// the daemon mid-sweep at a deterministic pace); it has no effect on
	// results.
	PointDelayMS int `json:"point_delay_ms,omitempty"`
}

// specLimits bound client-supplied sizes so a single malicious or fat-
// fingered submission cannot balloon the daemon's memory.
const (
	maxSpecVertices = 1 << 20
	maxSpecRepeats  = 64
	maxSpecWorkers  = 256
	maxSpecRetries  = 16
)

// ErrBadSpec reports a job specification that fails validation; the wrapped
// detail names the offending field.
var ErrBadSpec = errors.New("dsed: invalid job spec")

// Validate checks the spec's structural invariants.
func (s *JobSpec) Validate() error {
	if (s.Workload == nil) == (s.TracePath == "") {
		return fmt.Errorf("%w: exactly one of workload or trace_path must be set", ErrBadSpec)
	}
	if w := s.Workload; w != nil {
		if w.Vertices < 0 || w.Vertices > maxSpecVertices {
			return fmt.Errorf("%w: vertices %d out of range [0,%d]", ErrBadSpec, w.Vertices, maxSpecVertices)
		}
		if w.EdgeFactor < 0 || w.EdgeFactor > 1024 {
			return fmt.Errorf("%w: edge_factor %d out of range", ErrBadSpec, w.EdgeFactor)
		}
		if w.Repeats < 0 || w.Repeats > maxSpecRepeats {
			return fmt.Errorf("%w: repeats %d out of range [0,%d]", ErrBadSpec, w.Repeats, maxSpecRepeats)
		}
	}
	if s.TimeoutSec < 0 || s.PointTimeoutMS < 0 || s.PointDelayMS < 0 {
		return fmt.Errorf("%w: negative timeout", ErrBadSpec)
	}
	if s.Retries < 0 || s.Retries > maxSpecRetries {
		return fmt.Errorf("%w: retries %d out of range [0,%d]", ErrBadSpec, s.Retries, maxSpecRetries)
	}
	if s.Workers < 0 || s.Workers > maxSpecWorkers {
		return fmt.Errorf("%w: workers %d out of range [0,%d]", ErrBadSpec, s.Workers, maxSpecWorkers)
	}
	if s.FailureRate < 0 || s.FailureRate >= 1 {
		return fmt.Errorf("%w: failure_rate %v out of [0,1)", ErrBadSpec, s.FailureRate)
	}
	if s.MinSurvivors < 0 {
		return fmt.Errorf("%w: negative min_survivors", ErrBadSpec)
	}
	return nil
}

// tenant returns the effective tenant name.
func (s *JobSpec) tenant() string {
	if s.Tenant == "" {
		return "default"
	}
	return s.Tenant
}

// Digest is the canonical content hash of the spec (ID excluded), used for
// idempotent re-submission: same ID + same digest is the same job.
func (s *JobSpec) Digest() (uint32, error) {
	c := *s
	c.ID = ""
	b, err := json.Marshal(&c)
	if err != nil {
		return 0, err
	}
	return artifact.Checksum(b), nil
}

// JobRecord is the durable per-job state: the spec plus everything the
// daemon must remember across a crash. Coarse progress (Done/Total) is
// persisted on state transitions only; fine-grained progress lives in the
// per-job checkpoint.
type JobRecord struct {
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	// SpecDigest pins the content hash used for idempotent re-submission.
	SpecDigest uint32 `json:"spec_digest"`
	// Attempt counts queued→running transitions: 1 for a first run, +1 for
	// every crash-recovery resume.
	Attempt int `json:"attempt,omitempty"`
	// SubmitSeq orders recovery re-enqueueing (FIFO across restarts).
	SubmitSeq uint64 `json:"submit_seq"`
	Error     string `json:"error,omitempty"`

	Done        int `json:"done,omitempty"`
	Total       int `json:"total,omitempty"`
	Survivors   int `json:"survivors,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
}

// jobEnvelope is the on-disk frame of a JobRecord: the marshalled record
// plus a CRC32-Castagnoli over exactly those bytes. Atomic writes make torn
// records impossible; the checksum catches the remaining failure mode, bit
// rot in the spool between runs.
type jobEnvelope struct {
	CRC uint32          `json:"crc"`
	Job json.RawMessage `json:"job"`
}

// encodeJobRecord frames the record for disk.
func encodeJobRecord(rec *JobRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	env := jobEnvelope{CRC: artifact.Checksum(body), Job: body}
	out, err := json.Marshal(&env)
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// decodeJobRecord verifies and unmarshals one spooled record. A checksum
// mismatch or structural damage returns artifact.ErrCorrupt.
func decodeJobRecord(data []byte) (*JobRecord, error) {
	var env jobEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: job record frame: %v", artifact.ErrCorrupt, err)
	}
	if got := artifact.Checksum(env.Job); got != env.CRC {
		return nil, fmt.Errorf("%w: job record checksum %08x != %08x", artifact.ErrCorrupt, got, env.CRC)
	}
	var rec JobRecord
	if err := json.Unmarshal(env.Job, &rec); err != nil {
		return nil, fmt.Errorf("%w: job record body: %v", artifact.ErrCorrupt, err)
	}
	if rec.Spec.ID == "" || rec.State == "" {
		return nil, fmt.Errorf("%w: job record missing id or state", artifact.ErrCorrupt)
	}
	return &rec, nil
}

// writeJobRecord persists the record atomically at path through fsys.
func writeJobRecord(fsys artifact.FS, path string, rec *JobRecord) error {
	data, err := encodeJobRecord(rec)
	if err != nil {
		return err
	}
	return artifact.WriteFileAtomicFS(fsys, path, 0o644, func(w io.Writer) error {
		_, werr := w.Write(data)
		return werr
	})
}

// readJobRecord loads and verifies one spooled record through fsys.
func readJobRecord(fsys artifact.FS, path string) (*JobRecord, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeJobRecord(data)
}
