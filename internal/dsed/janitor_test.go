package dsed

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphdse/internal/artifact"
)

// finalizeJob drives a submitted job to a terminal state, optionally
// sealing a result file first (the ordering Finalize's contract requires
// for StateDone).
func finalizeJob(t *testing.T, q *Queue, id string, state JobState, resultBytes int) {
	t.Helper()
	if resultBytes > 0 {
		err := artifact.WriteFileAtomic(q.resultPath(id), 0o644, func(w io.Writer) error {
			_, werr := w.Write(make([]byte, resultBytes))
			return werr
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Finalize(id, state, "", 0, 0); err != nil {
		t.Fatal(err)
	}
}

func mustSubmit(t *testing.T, q *Queue, id string) {
	t.Helper()
	if _, _, err := q.Submit(workloadSpec(id, "acme")); err != nil {
		t.Fatal(err)
	}
}

// TestJanitorRetentionCountAndBytes: the janitor evicts terminal jobs
// oldest-first until both the count and byte caps hold, never touching
// live jobs, and every spool file of an evicted job disappears.
func TestJanitorRetentionCountAndBytes(t *testing.T) {
	q, err := OpenQueue(t.TempDir(), QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	for _, id := range []string{"old", "mid", "new"} {
		mustSubmit(t, q, id)
		finalizeJob(t, q, id, StateDone, 4096)
	}
	mustSubmit(t, q, "live") // queued: retention must never touch it

	j := NewJanitor(q, RetentionPolicy{MaxJobs: 1, CompactRecords: -1})
	j.Sweep()

	if q.Known("old") || q.Known("mid") {
		t.Fatal("oldest terminal jobs survived a MaxJobs=1 sweep")
	}
	if !q.Known("new") || !q.Known("live") {
		t.Fatal("sweep removed the newest terminal job or a live job")
	}
	for _, id := range []string{"old", "mid"} {
		for _, path := range []string{q.jobPath(id), q.resultPath(id), filepath.Join(q.dir, eventsDir, id+".jsonl")} {
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("GC'd job %s left %s behind", id, path)
			}
		}
	}
	st := j.Stats()
	if st.JobsRemoved != 2 || st.BytesFreed == 0 {
		t.Fatalf("stats after sweep: %+v", st)
	}

	// Byte cap: a fresh queue whose one large job exceeds MaxBytes while a
	// small one fits.
	q2, err := OpenQueue(t.TempDir(), QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	mustSubmit(t, q2, "big")
	finalizeJob(t, q2, "big", StateDone, 64<<10)
	mustSubmit(t, q2, "small")
	finalizeJob(t, q2, "small", StateDone, 512)
	j2 := NewJanitor(q2, RetentionPolicy{MaxBytes: 8 << 10, CompactRecords: -1})
	j2.Sweep()
	if q2.Known("big") {
		t.Fatal("byte cap kept the oldest oversized job")
	}
	if !q2.Known("small") {
		t.Fatal("byte cap over-evicted: small job under the cap removed")
	}
}

// TestJanitorRetentionAge: terminal jobs older than MaxAge are collected.
func TestJanitorRetentionAge(t *testing.T) {
	q, err := OpenQueue(t.TempDir(), QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	mustSubmit(t, q, "ancient")
	finalizeJob(t, q, "ancient", StateFailed, 0)
	mustSubmit(t, q, "fresh")
	finalizeJob(t, q, "fresh", StateFailed, 0)
	old := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(q.jobPath("ancient"), old, old); err != nil {
		t.Fatal(err)
	}

	j := NewJanitor(q, RetentionPolicy{MaxAge: time.Hour, CompactRecords: -1})
	j.Sweep()
	if q.Known("ancient") {
		t.Fatal("job past MaxAge survived")
	}
	if !q.Known("fresh") {
		t.Fatal("fresh job collected by MaxAge")
	}
}

// TestJanitorOrphansAndTemps: spool files owned by no known job (the
// residue of a crash between GC steps) and stale atomic-write temps are
// collected; a known job's files are not.
func TestJanitorOrphansAndTemps(t *testing.T) {
	q, err := OpenQueue(t.TempDir(), QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	mustSubmit(t, q, "owned")

	orphans := []string{
		filepath.Join(q.dir, ckptDir, "ghost.jsonl"),
		filepath.Join(q.dir, resultsDir, "ghost.json"),
		filepath.Join(q.dir, eventsDir, "ghost.jsonl"),
		filepath.Join(q.dir, eventsDir, "ghost"+snapSuffix),
	}
	for _, p := range orphans {
		if err := os.WriteFile(p, []byte("residue"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	staleTemp := filepath.Join(q.dir, jobsDir, ".x.json.tmp-123")
	freshTemp := filepath.Join(q.dir, jobsDir, ".y.json.tmp-456")
	for _, p := range []string{staleTemp, freshTemp} {
		if err := os.WriteFile(p, []byte("tmp"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(staleTemp, old, old); err != nil {
		t.Fatal(err)
	}

	j := NewJanitor(q, RetentionPolicy{CompactRecords: -1})
	j.Sweep()

	for _, p := range orphans {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived the sweep", p)
		}
	}
	if _, err := os.Stat(staleTemp); !os.IsNotExist(err) {
		t.Fatal("stale atomic-write temp survived")
	}
	if _, err := os.Stat(freshTemp); err != nil {
		t.Fatal("fresh temp removed: TempMaxAge ignored")
	}
	if _, err := os.Stat(q.jobPath("owned")); err != nil {
		t.Fatal("known job's record collected as an orphan")
	}
	if _, err := os.Stat(filepath.Join(q.dir, eventsDir, "owned.jsonl")); err != nil {
		t.Fatal("known job's journal collected as an orphan")
	}
	st := j.Stats()
	if st.Orphans != int64(len(orphans)) || st.Temps != 1 {
		t.Fatalf("stats: %+v, want %d orphans and 1 temp", st, len(orphans))
	}
}

// TestJanitorCompactsLongJournals: a journal past the policy threshold is
// rewritten as snapshot + tail, shrinking history while preserving the
// stream for resuming subscribers.
func TestJanitorCompactsLongJournals(t *testing.T) {
	q, err := OpenQueue(t.TempDir(), QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	mustSubmit(t, q, "chatty")
	for i := 1; i <= 50; i++ {
		if err := q.events.Emit("chatty", Event{Type: EventProgress, Done: i, Total: 50}); err != nil {
			t.Fatal(err)
		}
	}
	before := q.events.RecordCount("chatty")

	j := NewJanitor(q, RetentionPolicy{CompactRecords: 10, CompactKeepTail: 4})
	j.Sweep()

	st := j.Stats()
	if st.Compacted != 1 || st.CompactDropped == 0 {
		t.Fatalf("stats: %+v, want one compaction with drops", st)
	}
	after := q.events.RecordCount("chatty")
	if after >= before {
		t.Fatalf("record count %d -> %d: journal did not shrink", before, after)
	}
	if _, err := os.Stat(filepath.Join(q.dir, eventsDir, "chatty"+snapSuffix)); err != nil {
		t.Fatalf("sealed snapshot missing: %v", err)
	}
	// The surviving history still ends at the stream's true tail.
	backlog := mustBacklog(t, q.events, "chatty", 0)
	last := backlog[len(backlog)-1]
	if last.Type != EventProgress || last.Done != 50 {
		t.Fatalf("post-compaction tail: %+v", last)
	}
	// A second sweep with nothing to drop must not churn the journal.
	j.Sweep()
	if st := j.Stats(); st.Compacted > 2 {
		t.Fatalf("idle sweeps keep compacting: %+v", st)
	}
}

// TestCorruptQuarantineCap: recovery sets damaged job records aside as
// *.corrupt but never hoards them — beyond MaxCorrupt the oldest are
// evicted, and the recovery report accounts for both.
func TestCorruptQuarantineCap(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, q, "good")
	q.Close()

	jobs := filepath.Join(dir, jobsDir)
	for _, name := range []string{"c1", "c2", "c3", "c4", "c5"} {
		p := filepath.Join(jobs, name+".json")
		if err := os.WriteFile(p, []byte("not a job record"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	q2, err := OpenQueue(dir, QueueOptions{MaxCorrupt: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	rep := q2.Recovery()
	if rep.CorruptRetained != 2 || rep.CorruptEvicted != 3 {
		t.Fatalf("recovery report: %+v, want 2 retained / 3 evicted", rep)
	}
	if !q2.Known("good") {
		t.Fatal("healthy record lost during quarantine capping")
	}
	ents, err := os.ReadDir(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var quarantined int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".corrupt") {
			quarantined++
		}
	}
	if quarantined != 2 {
		t.Fatalf("%d quarantine files on disk, want 2", quarantined)
	}
}
