package dsed

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"graphdse/internal/artifact"
	"graphdse/internal/dse"
	"graphdse/internal/guard"
	"graphdse/internal/memsim"
	"graphdse/internal/sysim"
	"graphdse/internal/trace"
)

// errJobCancelled is the cancellation cause distinguishing a client cancel
// from a daemon drain (both cancel the job context).
var errJobCancelled = errors.New("dsed: job cancelled by client")

// SchedulerOptions sizes the worker fleet.
type SchedulerOptions struct {
	// JobWorkers is the number of jobs run concurrently (default 2).
	JobWorkers int
	// SweepWorkers caps each job's sweep parallelism (default 4); a job
	// spec may request fewer but never more.
	SweepWorkers int
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

func (o *SchedulerOptions) fill() {
	if o.JobWorkers <= 0 {
		o.JobWorkers = 2
	}
	if o.SweepWorkers <= 0 {
		o.SweepWorkers = 4
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Scheduler drives the worker fleet: each worker pulls jobs from the queue
// and runs them supervised — per-job contexts and deadlines, checkpointed
// sweeps, the physical-invariant gate, and governed parallelism.
type Scheduler struct {
	q     *Queue
	cache *TraceCache
	gov   *guard.Governor
	opts  SchedulerOptions

	mu sync.Mutex
	// cancels is guarded by mu.
	cancels map[string]context.CancelCauseFunc
}

// NewScheduler wires the fleet to its queue, trace cache, and governor
// (gov may be nil for ungoverned runs).
func NewScheduler(q *Queue, cache *TraceCache, gov *guard.Governor, opts SchedulerOptions) *Scheduler {
	opts.fill()
	return &Scheduler{
		q:       q,
		cache:   cache,
		gov:     gov,
		opts:    opts,
		cancels: map[string]context.CancelCauseFunc{},
	}
}

// Run blocks, running jobs until ctx is cancelled, then waits for the fleet
// to drain. Jobs interrupted by the shutdown are requeued on disk so the
// next daemon resumes them from their checkpoints.
func (s *Scheduler) Run(ctx context.Context) {
	workers := s.opts.JobWorkers
	if s.gov != nil {
		workers = s.gov.Workers("jobs", workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				rec, err := s.q.Next(ctx)
				if err != nil {
					return
				}
				s.runJob(ctx, rec)
			}
		}()
	}
	wg.Wait()
}

// Cancel cancels a job: queued jobs are finalized directly, running jobs
// through their context (the sweep observes it at point granularity).
func (s *Scheduler) Cancel(id string) error {
	running, err := s.q.CancelQueued(id)
	if err != nil || !running {
		return err
	}
	s.mu.Lock()
	cancel, ok := s.cancels[id]
	s.mu.Unlock()
	if !ok {
		// Raced with completion; surface the terminal state as-is.
		return nil
	}
	cancel(errJobCancelled)
	return nil
}

// testHookJobPoint, when non-nil, runs after every completed design point —
// the crash tests use it to pace sweeps so a kill lands mid-run.
var testHookJobPoint func()

// runJob drives one job to a terminal record (or leaves it running on disk
// when the daemon itself is shutting down).
func (s *Scheduler) runJob(parent context.Context, rec JobRecord) {
	id := rec.Spec.ID
	s.opts.Logf("dsed: job %s starting (attempt %d)", id, rec.Attempt)

	jobCtx, cancel := context.WithCancelCause(parent)
	defer cancel(nil)
	s.mu.Lock()
	s.cancels[id] = cancel
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.cancels, id)
		s.mu.Unlock()
	}()

	runCtx := jobCtx
	if rec.Spec.TimeoutSec > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(jobCtx, time.Duration(rec.Spec.TimeoutSec)*time.Second)
		defer tcancel()
	}

	state, errMsg, survivors, quarantined := s.executeJob(runCtx, &rec)
	if state == "" {
		// Daemon shutdown: put the job back (durably) for the next daemon.
		if err := s.q.Requeue(id); err != nil {
			s.opts.Logf("dsed: job %s requeue: %v", id, err)
		}
		s.opts.Logf("dsed: job %s interrupted by drain; checkpointed for resume", id)
		return
	}
	if err := s.q.Finalize(id, state, errMsg, survivors, quarantined); err != nil {
		s.opts.Logf("dsed: job %s finalize: %v", id, err)
		return
	}
	if errMsg != "" {
		s.opts.Logf("dsed: job %s -> %s: %s", id, state, errMsg)
	} else {
		s.opts.Logf("dsed: job %s -> %s (%d survivors)", id, state, survivors)
	}
}

// executeJob runs the sweep pipeline and classifies the outcome. An empty
// returned state means "daemon is shutting down — do not finalize".
func (s *Scheduler) executeJob(ctx context.Context, rec *JobRecord) (state JobState, errMsg string, survivors, quarantined int) {
	id := rec.Spec.ID
	pt, err := s.loadTrace(ctx, &rec.Spec)
	if err != nil {
		if outcome, msg := interruptOutcome(ctx); outcome != StateRunning {
			return outcome, msg, 0, 0
		}
		return StateFailed, fmt.Sprintf("trace: %v", err), 0, 0
	}

	var space dse.SpaceParams
	if rec.Spec.Space != nil {
		space = *rec.Spec.Space
	}
	points := dse.EnumerateSpace(space)
	s.q.Progress(id, 0, len(points))

	so := dse.SweepOptions{
		Workers:        s.sweepWorkers(rec.Spec.Workers),
		Timeout:        time.Duration(rec.Spec.PointTimeoutMS) * time.Millisecond,
		Retries:        rec.Spec.Retries,
		MinSurvivors:   rec.Spec.MinSurvivors,
		CheckpointPath: s.q.ckptPath(id),
		// Checkpoint I/O rides the spool seam, and every failed append
		// feeds the disk governor: checkpoints are best-effort for the
		// job, but a spool that cannot absorb them is a daemon-level
		// health problem.
		FS: s.q.fs,
		OnCheckpointError: func(err error) {
			if disk := s.q.Disk(); disk != nil {
				disk.ObserveWrite(err)
			}
		},
		// Resume unconditionally: on a first run the checkpoint does not
		// exist yet, and after a crash it holds exactly the completed
		// points — the no-duplicates, no-loss contract.
		Resume:   true,
		Governor: s.gov,
		OnPoint: func(done, total int) {
			s.q.Progress(id, done, total)
			if testHookJobPoint != nil {
				testHookJobPoint()
			}
			if d := rec.Spec.PointDelayMS; d > 0 {
				time.Sleep(time.Duration(d) * time.Millisecond)
			}
		},
		OnCheckpointSalvage: func(rep *dse.CheckpointReport) {
			s.opts.Logf("dsed: job %s resume salvage: %s", id, rep)
		},
		// Stream each design point's terminal failure as it lands. Records
		// adopted from the resume checkpoint are skipped: their failures
		// were journaled by the attempt that ran them, and the event journal
		// survives the same crashes the checkpoint does.
		OnRecord: func(r dse.RunRecord) {
			if !r.Failed || r.FromCheckpoint {
				return
			}
			ev := Event{
				Type:     EventFailure,
				Point:    r.Point.ID(),
				Class:    r.FaultClass.String(),
				Attempts: r.Attempts,
			}
			if r.Err != nil {
				ev.Error = r.Err.Error()
			}
			s.q.emit(id, ev)
		},
	}
	if rec.Spec.FailureRate > 0 {
		so.Faults = dse.PaperFaults(rec.Spec.FailureRate, rec.Spec.FailureSeed)
	}

	records, sweepErr := dse.SweepPreparedContext(ctx, pt, points, so)
	if outcome, msg := interruptOutcome(ctx); outcome != StateRunning {
		return outcome, msg, 0, 0
	}
	var sf *dse.SweepFailureError
	if sweepErr != nil && !errors.As(sweepErr, &sf) {
		return StateFailed, fmt.Sprintf("sweep: %v", sweepErr), 0, 0
	}

	// Physical-invariant gate: quarantine finite-but-impossible results,
	// then re-check survivorship over what remains.
	gate, gateErr := dse.ApplyInvariantGate(records, int64(pt.Len()))
	if gateErr != nil {
		return StateFailed, fmt.Sprintf("invariant gate: %v", gateErr), 0, gate.Quarantined
	}
	if sweepErr != nil {
		// MinSurvivors failed before the gate even ran.
		if gate.Quarantined > 0 {
			return StateQuarantined, sweepErr.Error(), gate.Survivors, gate.Quarantined
		}
		return StateFailed, sweepErr.Error(), gate.Survivors, gate.Quarantined
	}
	if err := dse.CheckSurvivors(records, rec.Spec.MinSurvivors); err != nil {
		// The sweep cleared the bar but the gate pushed it back under:
		// physically impossible output is a quarantine, not a retry.
		if gate.Quarantined > 0 {
			return StateQuarantined, err.Error(), gate.Survivors, gate.Quarantined
		}
		return StateFailed, err.Error(), gate.Survivors, gate.Quarantined
	}

	data, err := buildResult(id, records, gate)
	if err != nil {
		return StateFailed, fmt.Sprintf("result: %v", err), gate.Survivors, gate.Quarantined
	}
	// Result before record: recovery adopts a running job with a sealed
	// result as done, so a crash between these two writes loses nothing.
	if err := s.sealResult(ctx, id, data); err != nil {
		if outcome, msg := interruptOutcome(ctx); outcome != StateRunning {
			return outcome, msg, gate.Survivors, gate.Quarantined
		}
		return StateFailed, fmt.Sprintf("persist result: %v", err), gate.Survivors, gate.Quarantined
	}
	return StateDone, "", gate.Survivors, gate.Quarantined
}

// sealResult commits the result document, riding out degraded storage: a
// finished sweep's work is never discarded just because the disk is
// momentarily full. Every attempt's outcome feeds the disk governor; while
// the governor reports degraded, the seal parks on AwaitWritable (a drain
// interrupts it, requeueing the job to re-seal under the next daemon).
// Failures the governor does not attribute to the disk get a short bounded
// retry before failing the job.
func (s *Scheduler) sealResult(ctx context.Context, id string, data []byte) error {
	disk := s.q.Disk()
	const maxIsolated = 5
	for attempt := 0; ; attempt++ {
		err := artifact.WriteFileAtomicFS(s.q.fs, s.q.resultPath(id), 0o644, func(w io.Writer) error {
			_, werr := w.Write(data)
			return werr
		})
		if disk != nil {
			disk.ObserveWrite(err)
		}
		if err == nil {
			return nil
		}
		if disk != nil && !disk.Writable() {
			s.opts.Logf("dsed: job %s result seal blocked on degraded storage (%v); waiting", id, err)
			if !disk.AwaitWritable(ctx) {
				return err
			}
			continue
		}
		if attempt >= maxIsolated-1 {
			return err
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// interruptOutcome classifies a context interruption: daemon drain (empty
// state — do not finalize), client cancel, or job deadline. StateRunning
// means "not interrupted".
func interruptOutcome(ctx context.Context) (JobState, string) {
	if ctx.Err() == nil {
		return StateRunning, ""
	}
	cause := context.Cause(ctx)
	switch {
	case errors.Is(cause, errJobCancelled):
		return StateCancelled, "cancelled by client"
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		return StateFailed, fmt.Sprintf("job deadline exceeded: %v", cause)
	default:
		// The parent (daemon) context ended: shutdown, not a job outcome.
		return "", ""
	}
}

// sweepWorkers resolves a job's effective sweep parallelism.
func (s *Scheduler) sweepWorkers(requested int) int {
	w := s.opts.SweepWorkers
	if requested > 0 && requested < w {
		w = requested
	}
	return w
}

// loadTrace resolves the job's trace through the content-addressed cache.
func (s *Scheduler) loadTrace(ctx context.Context, spec *JobSpec) (*memsim.PreparedTrace, error) {
	if w := spec.Workload; w != nil {
		key := fmt.Sprintf("workload:v%d:ef%d:s%d:r%d", w.Vertices, w.EdgeFactor, w.Seed, w.Repeats)
		return s.cache.Get(ctx, key, func(ctx context.Context) (*memsim.PreparedTrace, error) {
			return synthesizeWorkload(ctx, w)
		})
	}
	key, err := fileKey(spec.TracePath)
	if err != nil {
		return nil, err
	}
	path := spec.TracePath
	return s.cache.Get(ctx, key, func(ctx context.Context) (*memsim.PreparedTrace, error) {
		return decodeTraceFile(ctx, path)
	})
}

// synthesizeWorkload runs the deterministic paper workload to produce the
// job's trace.
func synthesizeWorkload(ctx context.Context, w *WorkloadSpec) (*memsim.PreparedTrace, error) {
	vertices, edgeFactor, repeats := w.Vertices, w.EdgeFactor, w.Repeats
	if vertices == 0 {
		vertices = 1024
	}
	if edgeFactor == 0 {
		edgeFactor = 16
	}
	if repeats == 0 {
		repeats = 1
	}
	machine, _, err := sysim.PaperWorkloadTraceContext(ctx, sysim.DefaultConfig(),
		vertices, edgeFactor, w.Seed, repeats, nil)
	if err != nil {
		return nil, err
	}
	return memsim.PrepareSource(machine.TraceSource())
}

// fileKey content-addresses a trace file: its SHA-256. Hashing reads the
// whole file but costs far less than decoding it, and it is what makes two
// jobs pointing at byte-identical traces share one decode.
func fileKey(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("dsed: trace file: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("dsed: hash trace file: %w", err)
	}
	return "file:" + hex.EncodeToString(h.Sum(nil)), nil
}

// decodeTraceFile streams a binary trace artifact into prepared form.
func decodeTraceFile(ctx context.Context, path string) (*memsim.PreparedTrace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return memsim.PrepareSource(trace.NewBinarySource(f))
}

// JobResult is the durable final report of one completed job. Everything in
// it is deterministic for a given spec — Records are the canonical sorted
// checkpoint encodings, Pareto the sorted non-dominated point IDs — which
// is what makes a resumed job's report byte-identical to an uninterrupted
// one.
type JobResult struct {
	ID          string            `json:"id"`
	Total       int               `json:"total"`
	Survivors   int               `json:"survivors"`
	Quarantined int               `json:"quarantined"`
	Pareto      []string          `json:"pareto,omitempty"`
	Records     []json.RawMessage `json:"records"`
	// Sealed marks the report complete; recovery only adopts sealed
	// results.
	Sealed bool `json:"sealed"`
}

// buildResult renders the canonical report bytes.
func buildResult(id string, records []dse.RunRecord, gate *dse.GateReport) ([]byte, error) {
	canon, err := dse.CanonicalRecords(records)
	if err != nil {
		return nil, err
	}
	res := JobResult{
		ID:          id,
		Total:       len(records),
		Survivors:   gate.Survivors,
		Quarantined: gate.Quarantined,
		Records:     canon,
		Sealed:      true,
	}
	if front, perr := dse.ParetoFront(records, dse.DefaultObjectives()); perr == nil {
		ids := make([]string, 0, len(front))
		for _, r := range front {
			ids = append(ids, r.Point.ID())
		}
		sort.Strings(ids)
		res.Pareto = ids
	}
	out, err := json.Marshal(&res)
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
