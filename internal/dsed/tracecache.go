package dsed

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"graphdse/internal/memsim"
)

// TraceCache is a content-addressed cache of decoded PreparedTraces with
// single-flight loading: when N concurrent jobs reference the same
// 91.5M-line trace, exactly one decodes it and the rest wait for that
// result. Entries carry the trace's fingerprint (CRC32-Castagnoli over the
// decoded arrays); every hit re-verifies it, and a mismatch — in-memory
// corruption of a structure shared by every job on the box — evicts the
// entry and re-decodes from the source of truth instead of failing the job.
type TraceCache struct {
	mu sync.Mutex
	// entries is guarded by mu.
	entries    map[string]*cacheEntry
	maxEntries int

	hits        atomic.Int64
	misses      atomic.Int64
	corruptions atomic.Int64
}

// cacheEntry is one in-flight or completed decode. ready is closed when pt
// and err are final; gen orders entries for LRU eviction.
type cacheEntry struct {
	ready chan struct{}
	pt    *memsim.PreparedTrace
	crc   uint32
	err   error
	gen   uint64
}

var cacheGen atomic.Uint64

// NewTraceCache builds a cache bounded at maxEntries decoded traces
// (default 4). Eviction is LRU; evicting an entry in use is safe — the
// PreparedTrace is immutable and stays alive for its current holders.
func NewTraceCache(maxEntries int) *TraceCache {
	if maxEntries <= 0 {
		maxEntries = 4
	}
	return &TraceCache{entries: map[string]*cacheEntry{}, maxEntries: maxEntries}
}

// CacheStats is the cache's observability snapshot. The partition counters
// aggregate the geometry-keyed partition caches living inside the cached
// PreparedTraces: partition hits are sweep points that skipped address
// mapping entirely because a concurrent (or earlier) job already routed the
// trace for that geometry.
type CacheStats struct {
	Entries          int   `json:"entries"`
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	Corruptions      int64 `json:"corruptions"`
	PartitionEntries int   `json:"partition_entries"`
	PartitionHits    int64 `json:"partition_hits"`
	PartitionMisses  int64 `json:"partition_misses"`
}

// Stats snapshots the counters.
func (c *TraceCache) Stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	var pEntries int
	var pHits, pMisses int64
	for _, e := range c.entries {
		select {
		case <-e.ready:
		default:
			continue // still decoding; no partitions yet
		}
		if e.pt == nil {
			continue
		}
		ps := e.pt.PartitionCacheStats()
		pEntries += ps.Entries
		pHits += int64(ps.Hits)
		pMisses += int64(ps.Misses)
	}
	c.mu.Unlock()
	return CacheStats{
		Entries:          n,
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Corruptions:      c.corruptions.Load(),
		PartitionEntries: pEntries,
		PartitionHits:    pHits,
		PartitionMisses:  pMisses,
	}
}

// Get returns the prepared trace for key, loading it via load on a miss.
// Concurrent Gets for one key share a single load; a load error is
// delivered to every waiter and then forgotten, so the next Get retries. A
// fingerprint mismatch on a hit counts as corruption: the entry is dropped
// and the trace re-decoded (at most once per call chain — a loader that
// produces mismatching fingerprints twice in a row surfaces as corruption
// having been "fixed" by the second decode, which is indistinguishable from
// a fresh load).
func (c *TraceCache) Get(ctx context.Context, key string, load func(context.Context) (*memsim.PreparedTrace, error)) (*memsim.PreparedTrace, error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &cacheEntry{ready: make(chan struct{}), gen: cacheGen.Add(1)}
			c.entries[key] = e
			c.evictLocked(key)
			c.mu.Unlock()
			c.misses.Add(1)

			pt, err := load(ctx)
			if err == nil && pt != nil {
				e.pt, e.crc = pt, pt.Fingerprint()
			} else if err == nil {
				err = fmt.Errorf("dsed: trace loader for %q returned nil trace", key)
			}
			e.err = err
			close(e.ready)
			if err != nil {
				// Errors are not cached: drop the entry so a transient
				// failure (file briefly missing, ctx cancelled) does not
				// poison the key forever.
				c.mu.Lock()
				if cur := c.entries[key]; cur == e {
					delete(c.entries, key)
				}
				c.mu.Unlock()
				return nil, err
			}
			return pt, nil
		}
		e.gen = cacheGen.Add(1)
		c.mu.Unlock()

		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			// The flight we joined failed; loop to retry with our own load
			// (the failed entry was already removed by its owner).
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		if got := e.pt.Fingerprint(); got != e.crc {
			// The decoded arrays no longer match the checksum taken at
			// decode time: memory corruption. Serving this trace would
			// silently poison every design point of every job using it, so
			// evict and re-decode.
			c.corruptions.Add(1)
			c.mu.Lock()
			if cur := c.entries[key]; cur == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			continue
		}
		c.hits.Add(1)
		return e.pt, nil
	}
}

// evictLocked drops least-recently-used completed entries beyond the
// capacity. In-flight loads are never evicted. Caller holds c.mu.
func (c *TraceCache) evictLocked(keep string) {
	for len(c.entries) > c.maxEntries {
		var victim string
		var oldest uint64 = ^uint64(0)
		for k, e := range c.entries {
			if k == keep {
				continue
			}
			select {
			case <-e.ready:
			default:
				continue // in flight
			}
			if e.gen < oldest {
				oldest, victim = e.gen, k
			}
		}
		if victim == "" {
			return
		}
		delete(c.entries, victim)
	}
}
