package dsed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"graphdse/internal/artifact"
)

// Event is one entry of a job's durable event stream. Events carry a
// per-job sequence number assigned at journal-append time: seqs start at 1,
// increase by exactly 1, and — because the journal is replayed at daemon
// restart to recover the counter — stay monotonic and gap-free across
// crashes. That is the whole resume contract: a client that remembers the
// last seq it saw can reconnect with `Last-Event-ID: <seq>` and receive
// exactly the events it missed, no gaps and no duplicates, regardless of
// how many times the daemon died in between.
//
// Events are deliberately timestamp-free: a resumed stream replays the
// journal bytes, and nondeterministic fields would make otherwise-identical
// histories diverge.
type Event struct {
	Seq  uint64 `json:"seq"`
	Job  string `json:"job"`
	Type string `json:"type"`
	// State is set for EventState records (and names the terminal state
	// that ends a stream).
	State JobState `json:"state,omitempty"`
	// Attempt counts queued→running transitions at the time of the event.
	Attempt int `json:"attempt,omitempty"`
	// Done/Total carry sweep progress for EventProgress records.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Survivors/Quarantined summarize the gate outcome on seal and
	// terminal-state records.
	Survivors   int `json:"survivors,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	// Error carries the failure detail of failed/cancelled states and
	// per-point failure records.
	Error string `json:"error,omitempty"`
	// Point/Class/Attempts identify one failed design point for
	// EventFailure records.
	Point    string `json:"point,omitempty"`
	Class    string `json:"class,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// Event types. Everything except EventLag is journaled before it is
// observable; EventLag is a parting notice written only to the one
// subscriber being evicted, so it carries no sequence number and never
// advances a client's resume position.
const (
	// EventState records a job lifecycle transition (see JobState).
	EventState = "state"
	// EventProgress records sweep progress (Done/Total completed points).
	EventProgress = "progress"
	// EventFailure records one design point's terminal failure — the
	// streaming form of the sweep failure log.
	EventFailure = "failure"
	// EventSeal records that the job's result document was sealed to disk;
	// it always precedes the terminal done state event.
	EventSeal = "seal"
	// EventLag tells a slow consumer it was disconnected for falling
	// behind and must reconnect with Last-Event-ID to resume.
	EventLag = "lag"
)

// Terminal reports whether the event ends its job's stream: the stream of a
// job is closed after its terminal state transition is delivered.
func (e *Event) Terminal() bool { return e.Type == EventState && e.State.Terminal() }

// eventEnvelope is the on-disk frame of one journal record: the marshalled
// event plus a CRC32-Castagnoli over exactly those bytes, one frame per
// line. The journal is append-only; a torn final line (crash mid-append) is
// expected and salvaged as a valid prefix at replay.
type eventEnvelope struct {
	CRC uint32          `json:"crc"`
	Ev  json.RawMessage `json:"ev"`
}

// encodeEvent frames one event for the journal.
func encodeEvent(ev *Event) ([]byte, error) {
	body, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	env := eventEnvelope{CRC: artifact.Checksum(body), Ev: body}
	out, err := json.Marshal(&env)
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// decodeEvent verifies and unmarshals one journal line. Checksum or
// structural damage returns artifact.ErrCorrupt.
func decodeEvent(line []byte) (Event, error) {
	var env eventEnvelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Event{}, fmt.Errorf("%w: event frame: %v", artifact.ErrCorrupt, err)
	}
	if got := artifact.Checksum(env.Ev); got != env.CRC {
		return Event{}, fmt.Errorf("%w: event checksum %08x != %08x", artifact.ErrCorrupt, got, env.CRC)
	}
	var ev Event
	if err := json.Unmarshal(env.Ev, &ev); err != nil {
		return Event{}, fmt.Errorf("%w: event body: %v", artifact.ErrCorrupt, err)
	}
	if ev.Seq == 0 || ev.Type == "" {
		return Event{}, fmt.Errorf("%w: event missing seq or type", artifact.ErrCorrupt)
	}
	return ev, nil
}

// EventLogStats is the event path's observability snapshot, surfaced in
// /statusz.
type EventLogStats struct {
	// Written counts journal records appended (and fsynced) this process.
	Written int64 `json:"journal_written"`
	// Replayed counts journal records read back — restart recovery plus
	// subscriber backlog replays.
	Replayed int64 `json:"journal_replayed"`
	// Errors counts journal append failures (the stream degrades, jobs
	// do not).
	Errors int64 `json:"journal_errors"`
	// Subscribers is the current number of attached subscribers.
	Subscribers int64 `json:"subscribers"`
	// SlowEvictions counts subscribers disconnected for falling behind.
	SlowEvictions int64 `json:"slow_evictions"`
	// ResumeHits counts subscriptions that arrived with a Last-Event-ID
	// position; FullReplays counts those that started from scratch.
	ResumeHits  int64 `json:"resume_hits"`
	FullReplays int64 `json:"full_replays"`
	// Compactions counts journal compactions (snapshot rewrites);
	// CompactDropped counts superseded records they discarded.
	Compactions    int64 `json:"compactions"`
	CompactDropped int64 `json:"compact_dropped"`
}

// A Subscriber is one attached consumer of a job's event stream. Events
// arrive on Events(); if the consumer falls so far behind that its buffer
// fills, the hub disconnects it — Evicted() closes — rather than ever
// blocking the publisher. The channel may deliver events the subscriber
// already received via its backlog replay; consumers must skip events with
// Seq at or below their last delivered position.
type Subscriber struct {
	job     string
	ch      chan Event
	evicted chan struct{}
}

// Events is the live event feed.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Evicted is closed when the hub disconnects this subscriber for lagging.
func (s *Subscriber) Evicted() <-chan struct{} { return s.evicted }

// jobStream is one job's journal handle plus its attached subscribers. The
// file is opened lazily, kept open while the job is live, and closed when
// the terminal state event is journaled, so open file handles are bounded
// by active jobs rather than spool history.
//
// A long journal may have been compacted into two files: a sealed snapshot
// (snap, written atomically, holding the compacted prefix of the stream)
// plus the live tail (path, append-only). History is the snapshot followed
// by every tail event with seq greater than the snapshot's maximum — a rule
// that also absorbs a crash between writing the snapshot and rewriting the
// tail, when the tail still duplicates the snapshot's records.
type jobStream struct {
	mu sync.Mutex
	// path and snap are set once in stream() and immutable afterwards.
	path string
	snap string
	// f is guarded by mu.
	f artifact.File
	// replayed is guarded by mu.
	replayed bool
	// next is the next seq to assign (1-based); guarded by mu.
	next uint64
	// lastState is guarded by mu.
	lastState JobState
	// subs is guarded by mu.
	subs map[*Subscriber]struct{}
}

// EventLog is the durable per-job event journal plus its bounded fan-out
// hub. The invariant ordering every emission follows is
//
//	journal append → fsync → publish to subscribers
//
// so an event is durable before it is observable: anything a client ever
// saw is replayable after kill -9, which is what makes Last-Event-ID
// resume gap-free. Publishing never blocks — a subscriber whose buffer is
// full is evicted on the spot — so the scheduler's progress is never
// hostage to a stalled network peer.
type EventLog struct {
	fs      artifact.FS
	dir     string
	bufSize int

	// observe, when set, receives every journal append's outcome (nil on
	// success) — the disk governor's health feed. Set before serving.
	observe func(error)

	mu sync.Mutex
	// streams is guarded by mu.
	streams map[string]*jobStream

	written        atomic.Int64
	replayed       atomic.Int64
	errors         atomic.Int64
	subscribers    atomic.Int64
	evictions      atomic.Int64
	resumeHits     atomic.Int64
	fullReplays    atomic.Int64
	compactions    atomic.Int64
	compactDropped atomic.Int64
}

// NewEventLog opens an event log rooted at dir (one journal file per job)
// on the real filesystem. bufSize bounds each subscriber's delivery buffer
// (default 64).
func NewEventLog(dir string, bufSize int) *EventLog {
	return NewEventLogFS(artifact.OS, dir, bufSize)
}

// NewEventLogFS is NewEventLog against an explicit filesystem; the daemon
// threads its spool FS here so chaos tests can fault journal appends.
func NewEventLogFS(fsys artifact.FS, dir string, bufSize int) *EventLog {
	if bufSize <= 0 {
		bufSize = 64
	}
	if fsys == nil {
		fsys = artifact.OS
	}
	return &EventLog{fs: fsys, dir: dir, bufSize: bufSize, streams: map[string]*jobStream{}}
}

// SetWriteObserver installs the durable-write outcome observer (nil on
// success, the append/fsync error otherwise). Install before serving.
func (l *EventLog) SetWriteObserver(fn func(error)) { l.observe = fn }

// observeWrite reports one append outcome to the observer, if any.
func (l *EventLog) observeWrite(err error) {
	if l.observe != nil {
		l.observe(err)
	}
}

// Stats snapshots the counters.
func (l *EventLog) Stats() EventLogStats {
	return EventLogStats{
		Written:        l.written.Load(),
		Replayed:       l.replayed.Load(),
		Errors:         l.errors.Load(),
		Subscribers:    l.subscribers.Load(),
		SlowEvictions:  l.evictions.Load(),
		ResumeHits:     l.resumeHits.Load(),
		FullReplays:    l.fullReplays.Load(),
		Compactions:    l.compactions.Load(),
		CompactDropped: l.compactDropped.Load(),
	}
}

// stream returns (creating if needed) the in-memory handle for one job.
func (l *EventLog) stream(job string) *jobStream {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.streams[job]
	if !ok {
		st = &jobStream{
			path: filepath.Join(l.dir, job+".jsonl"),
			snap: filepath.Join(l.dir, job+snapSuffix),
			subs: map[*Subscriber]struct{}{},
		}
		l.streams[job] = st
	}
	return st
}

// snapSuffix names a job's sealed compaction snapshot next to its live
// tail (<job>.jsonl).
const snapSuffix = ".snap.jsonl"

// scanJournal reads every valid event from a journal file, stopping at the
// first damaged or unterminated line: the valid prefix is the journal,
// exactly as the artifact layer treats torn containers. It also returns the
// byte length of that valid prefix so replay can truncate damage away. A
// missing file is an empty journal. An unterminated tail is never part of
// the stream: Emit publishes only after the full record (newline included,
// one Write call) is appended and fsynced, so an unterminated record was
// never observable.
func scanJournal(fsys artifact.FS, path string) ([]Event, int64) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, 0
	}
	return scanJournalBytes(data)
}

// scanJournalBytes is scanJournal over in-memory journal bytes: the valid
// prefix of decodable, newline-terminated frames, plus its byte length.
// It is total — any input yields some (possibly empty) prefix — which is
// the property the fuzz target drives at.
func scanJournalBytes(data []byte) ([]Event, int64) {
	var out []Event
	var valid int64
	off := 0
	for off < len(data) {
		end := bytes.IndexByte(data[off:], '\n')
		if end < 0 {
			break
		}
		line := data[off : off+end]
		off += end + 1
		if len(bytes.TrimSpace(line)) > 0 {
			ev, derr := decodeEvent(line)
			if derr != nil {
				return out, valid
			}
			out = append(out, ev)
		}
		valid = int64(off)
	}
	return out, valid
}

// historyLocked assembles a job's full durable event history: the sealed
// snapshot (if any) followed by every live-tail event above the snapshot's
// maximum seq. The seq filter makes the two-file read crash-consistent: a
// daemon killed after the snapshot landed but before the tail was rewritten
// replays each record exactly once.
func (st *jobStream) historyLocked(fsys artifact.FS) ([]Event, int64) {
	snapEvs, _ := scanJournal(fsys, st.snap)
	var snapMax uint64
	for i := range snapEvs {
		if snapEvs[i].Seq > snapMax {
			snapMax = snapEvs[i].Seq
		}
	}
	tailEvs, valid := scanJournal(fsys, st.path)
	out := snapEvs
	for _, ev := range tailEvs {
		if ev.Seq > snapMax {
			out = append(out, ev)
		}
	}
	return out, valid
}

// replayLocked recovers the stream's sequence counter (and last journaled
// state) from disk on first touch after a restart, truncating any damaged
// tail so subsequent appends extend the valid prefix instead of splicing
// onto garbage. The truncated bytes were never observable (publication
// strictly follows a successful append), so their seqs are safely reused.
// Caller holds st.mu.
func (st *jobStream) replayLocked(l *EventLog) {
	if st.replayed {
		return
	}
	evs, valid := st.historyLocked(l.fs)
	if fi, err := l.fs.Stat(st.path); err == nil && fi.Size() > valid {
		_ = l.fs.Truncate(st.path, valid)
	}
	st.next = 1
	for i := range evs {
		ev := &evs[i]
		if ev.Seq >= st.next {
			st.next = ev.Seq + 1
		}
		if ev.Type == EventState {
			st.lastState = ev.State
		}
	}
	l.replayed.Add(int64(len(evs)))
	st.replayed = true
}

// repairLocked resets the stream after a failed append: the journal may now
// end in a torn record, and appending more bytes onto it would hide every
// later event behind the damage. Dropping the handle and the replayed flag
// makes the next Emit re-scan the journal, truncate the torn tail away, and
// recover the sequence counter from what is actually durable. Caller holds
// st.mu.
func (st *jobStream) repairLocked() {
	if st.f != nil {
		st.f.Close()
		st.f = nil
	}
	st.replayed = false
}

// Emit journals one event for job — assigning its sequence number, framing
// it with a CRC, appending, and fsyncing — and only then fans it out to
// subscribers. Fan-out never blocks: a subscriber with no buffer space is
// evicted immediately. An append error degrades the stream (counted in
// Stats().Errors), never the job.
func (l *EventLog) Emit(job string, ev Event) error {
	st := l.stream(job)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.replayLocked(l)

	ev.Job = job
	ev.Seq = st.next
	data, err := encodeEvent(&ev)
	if err != nil {
		l.errors.Add(1)
		return fmt.Errorf("dsed: encode event: %w", err)
	}
	if st.f == nil {
		f, oerr := l.fs.OpenFile(st.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr != nil {
			l.errors.Add(1)
			l.observeWrite(oerr)
			return fmt.Errorf("dsed: open event journal: %w", oerr)
		}
		st.f = f
	}
	if _, err := st.f.Write(data); err != nil {
		l.errors.Add(1)
		l.observeWrite(err)
		st.repairLocked()
		return fmt.Errorf("dsed: append event journal: %w", err)
	}
	if err := st.f.Sync(); err != nil {
		l.errors.Add(1)
		l.observeWrite(err)
		st.repairLocked()
		return fmt.Errorf("dsed: sync event journal: %w", err)
	}
	l.observeWrite(nil)
	st.next++
	if ev.Type == EventState {
		st.lastState = ev.State
	}
	l.written.Add(1)

	// Durable → observable. Never block on a subscriber: a full buffer
	// means the consumer has fallen a whole window behind, and the journal
	// it can resume from is already complete.
	for sub := range st.subs {
		select {
		case sub.ch <- ev:
		default:
			delete(st.subs, sub)
			close(sub.evicted)
			l.evictions.Add(1)
			l.subscribers.Add(-1)
		}
	}

	if ev.Terminal() {
		st.f.Close()
		st.f = nil
	}
	return nil
}

// EnsureState appends a state event only if the journal's last state
// transition differs from ev.State. Recovery uses it to reconcile the
// journal with the authoritative job record: a crash between the record
// write and the journal append leaves the journal one transition behind,
// and this closes the gap idempotently.
func (l *EventLog) EnsureState(job string, ev Event) error {
	st := l.stream(job)
	st.mu.Lock()
	st.replayLocked(l)
	last := st.lastState
	st.mu.Unlock()
	if last == ev.State {
		return nil
	}
	ev.Type = EventState
	return l.Emit(job, ev)
}

// Subscribe attaches a consumer to job's stream, resuming after seq
// `after` (0 replays from the beginning). It returns the subscriber plus
// the journal backlog — every durable event with after < Seq ≤ the stream's
// position at attach time. The caller delivers the backlog first, then
// drains Events(), skipping anything at or below its last delivered seq:
// the two sources overlap but can never gap, because every event is on disk
// before it is published.
func (l *EventLog) Subscribe(job string, after uint64) (*Subscriber, []Event, error) {
	st := l.stream(job)
	st.mu.Lock()
	st.replayLocked(l)
	sub := &Subscriber{
		job:     job,
		ch:      make(chan Event, l.bufSize),
		evicted: make(chan struct{}),
	}
	st.subs[sub] = struct{}{}
	cur := st.next - 1
	st.mu.Unlock()
	l.subscribers.Add(1)
	if after > 0 {
		l.resumeHits.Add(1)
	} else {
		l.fullReplays.Add(1)
	}

	var backlog []Event
	if after < cur {
		st.mu.Lock()
		evs, _ := st.historyLocked(l.fs)
		st.mu.Unlock()
		for _, ev := range evs {
			if ev.Seq > after && ev.Seq <= cur {
				backlog = append(backlog, ev)
			}
		}
		l.replayed.Add(int64(len(backlog)))
	}
	return sub, backlog, nil
}

// compactPrefix reduces the to-be-snapshotted prefix of a stream: interior
// progress events are superseded by the latest one, so only the last
// progress record in the prefix survives. State transitions, failures, and
// seal records are history a client may legitimately want and are kept.
func compactPrefix(prefix []Event) (kept []Event, dropped int) {
	lastProgress := -1
	for i := range prefix {
		if prefix[i].Type == EventProgress {
			lastProgress = i
		}
	}
	kept = make([]Event, 0, len(prefix))
	for i := range prefix {
		if prefix[i].Type == EventProgress && i != lastProgress {
			dropped++
			continue
		}
		kept = append(kept, prefix[i])
	}
	return kept, dropped
}

// Compact rewrites job's journal as a sealed snapshot plus a short live
// tail. The last keepTail events are preserved verbatim in the tail; the
// prefix is compacted (superseded progress dropped) and sealed atomically
// into the snapshot file, then the tail is rewritten atomically. Original
// sequence numbers are preserved, so Last-Event-ID resume keeps working —
// clients filter on seq, and the contract tolerates the seq gaps that
// dropped records leave behind. Returns how many records compaction
// discarded; 0 means the journal was left untouched.
func (l *EventLog) Compact(job string, keepTail int) (int, error) {
	if keepTail < 1 {
		keepTail = 1
	}
	st := l.stream(job)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.replayLocked(l)

	history, _ := st.historyLocked(l.fs)
	if len(history) <= keepTail {
		return 0, nil
	}
	cut := len(history) - keepTail
	snapEvs, dropped := compactPrefix(history[:cut])
	if dropped == 0 {
		// Nothing to reclaim; rewriting would be pure churn.
		return 0, nil
	}
	tailEvs := history[cut:]

	writeFrames := func(path string, evs []Event) error {
		return artifact.WriteFileAtomicFS(l.fs, path, 0o644, func(w io.Writer) error {
			for i := range evs {
				frame, err := encodeEvent(&evs[i])
				if err != nil {
					return err
				}
				if _, err := w.Write(frame); err != nil {
					return err
				}
			}
			return nil
		})
	}

	// Snapshot first: until the tail is rewritten, history is recovered as
	// snapshot + tail-events-above-snapMax, so a crash between the two
	// atomic writes duplicates nothing and loses nothing.
	if err := writeFrames(st.snap, snapEvs); err != nil {
		l.observeWrite(err)
		return 0, fmt.Errorf("dsed: compact snapshot %s: %w", job, err)
	}
	// The open append handle points at the file being replaced; drop it so
	// the next Emit reopens the rewritten tail.
	if st.f != nil {
		st.f.Close()
		st.f = nil
	}
	if err := writeFrames(st.path, tailEvs); err != nil {
		l.observeWrite(err)
		return 0, fmt.Errorf("dsed: compact tail %s: %w", job, err)
	}
	l.observeWrite(nil)
	l.compactions.Add(1)
	l.compactDropped.Add(int64(dropped))
	return dropped, nil
}

// RecordCount returns how many durable events job's journal currently
// holds across snapshot and tail (the janitor's compaction trigger).
func (l *EventLog) RecordCount(job string) int {
	st := l.stream(job)
	st.mu.Lock()
	defer st.mu.Unlock()
	history, _ := st.historyLocked(l.fs)
	return len(history)
}

// DropStream closes and forgets job's in-memory stream handle so the
// janitor can delete the journal files out from under it. Subscribers, if
// any, are evicted. The files themselves are the caller's to remove.
func (l *EventLog) DropStream(job string) {
	l.mu.Lock()
	st, ok := l.streams[job]
	if ok {
		delete(l.streams, job)
	}
	l.mu.Unlock()
	if !ok {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f != nil {
		st.f.Close()
		st.f = nil
	}
	for sub := range st.subs {
		delete(st.subs, sub)
		close(sub.evicted)
		l.evictions.Add(1)
		l.subscribers.Add(-1)
	}
}

// journalFiles returns the on-disk files backing job's journal (tail then
// snapshot) for GC.
func (l *EventLog) journalFiles(job string) []string {
	return []string{
		filepath.Join(l.dir, job+".jsonl"),
		filepath.Join(l.dir, job+snapSuffix),
	}
}

// jobFromJournalName maps a journal file name back to its job ID ("" for
// non-journal files such as temps or quarantine).
func jobFromJournalName(name string) string {
	if strings.HasPrefix(name, ".") {
		return ""
	}
	if j, ok := strings.CutSuffix(name, snapSuffix); ok {
		return j
	}
	if j, ok := strings.CutSuffix(name, ".jsonl"); ok {
		return j
	}
	return ""
}

// Unsubscribe detaches a subscriber (idempotent; eviction already detaches).
func (l *EventLog) Unsubscribe(sub *Subscriber) {
	if sub == nil {
		return
	}
	st := l.stream(sub.job)
	st.mu.Lock()
	_, attached := st.subs[sub]
	delete(st.subs, sub)
	st.mu.Unlock()
	if attached {
		l.subscribers.Add(-1)
	}
}

// Close releases every open journal handle (the daemon's drain path).
func (l *EventLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, st := range l.streams {
		st.mu.Lock()
		if st.f != nil {
			st.f.Close()
			st.f = nil
		}
		st.mu.Unlock()
	}
}
