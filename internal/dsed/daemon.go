package dsed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"graphdse/internal/artifact"
	"graphdse/internal/guard"
)

// Options configures one daemon instance.
type Options struct {
	// Addr is the listen address (":0" picks a free port; see Daemon.Addr).
	Addr string
	// Dir is the spool directory (job records, checkpoints, results).
	Dir string

	Queue     QueueOptions
	Scheduler SchedulerOptions

	// Disk bounds spool usage and arms degraded-mode handling (see
	// DiskPolicy; failure-driven degradation is always on).
	Disk DiskPolicy
	// Retention bounds what the spool keeps for terminal jobs and paces
	// the janitor (see RetentionPolicy).
	Retention RetentionPolicy
	// FS is the filesystem all spool I/O goes through (nil = the real
	// filesystem). cmd/dsed threads a FaultFS here for chaos smokes.
	FS artifact.FS

	// HeapSoftBytes arms the memory governor: under pressure the fleet
	// sheds sweep workers instead of dying (0 = off).
	HeapSoftBytes uint64
	// SSEHeartbeat is the event-stream comment-heartbeat interval
	// (default 10s).
	SSEHeartbeat time.Duration
	// CacheEntries bounds the decoded-trace cache (default 4).
	CacheEntries int
	// DrainTimeout bounds the graceful-shutdown window (default 30s).
	DrainTimeout time.Duration
	// AddrFile, when set, receives the bound listen address (written
	// atomically) once the daemon is serving — the handshake scripts and
	// subprocess tests use with ":0".
	AddrFile string
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.Dir == "" {
		o.Dir = "dsed-spool"
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Scheduler.Logf == nil {
		o.Scheduler.Logf = o.Logf
	}
}

// Daemon composes the durable queue, the trace cache, the supervised
// scheduler, and the HTTP server into one crash-safe service.
type Daemon struct {
	opts    Options
	q       *Queue
	cache   *TraceCache
	gov     *guard.Governor
	disk    *DiskGovernor
	janitor *Janitor
	sched   *Scheduler
	srv     *Server

	mu sync.Mutex
	// addr is guarded by mu.
	addr string
}

// New opens the spool (running crash recovery) and wires the daemon. The
// recovery report is available via Recovery before Run is called.
func New(opts Options) (*Daemon, error) {
	opts.fill()
	if opts.FS != nil && opts.Queue.FS == nil {
		opts.Queue.FS = opts.FS
	}
	q, err := OpenQueue(opts.Dir, opts.Queue)
	if err != nil {
		return nil, err
	}
	var gov *guard.Governor
	if opts.HeapSoftBytes > 0 {
		gov = guard.NewGovernor(guard.Budget{HeapSoftBytes: opts.HeapSoftBytes})
	}
	disk := NewDiskGovernor(q.FS(), opts.Dir, opts.Disk)
	q.AttachDisk(disk)
	janitor := NewJanitor(q, opts.Retention)
	cache := NewTraceCache(opts.CacheEntries)
	sched := NewScheduler(q, cache, gov, opts.Scheduler)
	srv := NewServer(q, sched, cache, gov)
	srv.SetHeartbeat(opts.SSEHeartbeat)
	srv.SetDisk(disk)
	srv.SetJanitor(janitor)
	return &Daemon{
		opts:    opts,
		q:       q,
		cache:   cache,
		gov:     gov,
		disk:    disk,
		janitor: janitor,
		sched:   sched,
		srv:     srv,
	}, nil
}

// Disk exposes the disk governor (tests and embedding callers).
func (d *Daemon) Disk() *DiskGovernor { return d.disk }

// Janitor exposes the spool janitor (tests and embedding callers).
func (d *Daemon) Janitor() *Janitor { return d.janitor }

// Recovery returns the Open-time recovery report.
func (d *Daemon) Recovery() *RecoveryReport { return d.q.Recovery() }

// Queue exposes the underlying queue (tests and embedding callers).
func (d *Daemon) Queue() *Queue { return d.q }

// Addr returns the bound listen address once Run is serving ("" before).
func (d *Daemon) Addr() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.addr
}

// Run serves until ctx is cancelled, then drains: intake stops (submissions
// get 503), the scheduler's in-flight jobs are cancelled — each checkpoints
// its completed points and is durably requeued — and the HTTP server shuts
// down. A clean drain returns nil; the process contract on top (cmd/dsed)
// is exit 0 for drains and artifact.ExitForced for a second signal.
func (d *Daemon) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", d.opts.Addr)
	if err != nil {
		return fmt.Errorf("dsed: listen %s: %w", d.opts.Addr, err)
	}
	addr := ln.Addr().String()
	d.mu.Lock()
	d.addr = addr
	d.mu.Unlock()
	if d.opts.AddrFile != "" {
		// The addr file is a local handshake with the launcher, not spool
		// state — it stays on the real filesystem so an injected spool
		// fault cannot break the "daemon is up" signal chaos smokes rely on.
		if err := artifact.WriteFileAtomic(d.opts.AddrFile, 0o644, func(w io.Writer) error {
			_, werr := io.WriteString(w, addr+"\n")
			return werr
		}); err != nil {
			ln.Close()
			return fmt.Errorf("dsed: addr file: %w", err)
		}
	}
	d.opts.Logf("dsed: serving on %s (spool %s)", addr, d.opts.Dir)
	if rep := d.q.Recovery(); rep != nil {
		d.opts.Logf("dsed: %s", rep)
	}

	if d.gov != nil {
		d.gov.Start(ctx)
		defer d.gov.Stop()
	}

	// Storage background loops: usage/probe scanning and spool GC. Both
	// stop with ctx; neither holds durable state, so no drain ordering.
	var bgWG sync.WaitGroup
	bgWG.Add(2)
	go func() {
		defer bgWG.Done()
		d.disk.Run(ctx)
	}()
	go func() {
		defer bgWG.Done()
		d.janitor.Run(ctx)
	}()
	defer bgWG.Wait()

	// The scheduler fleet runs under its own cancel so the drain sequence
	// controls ordering: first stop intake, then stop the fleet.
	schedCtx, stopSched := context.WithCancel(ctx)
	defer stopSched()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.sched.Run(schedCtx)
	}()

	httpSrv := NewHTTPServer("", d.srv.Handler())
	serveErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-serveErr:
		// The listener died under us: stop the fleet (jobs checkpoint and
		// requeue) and report the failure.
		stopSched()
		wg.Wait()
		return fmt.Errorf("dsed: serve: %w", err)
	case <-ctx.Done():
	}

	// Drain. Stop intake first so clients see 503 instead of enqueueing
	// into a dying daemon, then let in-flight jobs checkpoint.
	d.opts.Logf("dsed: draining: intake stopped, checkpointing in-flight jobs")
	d.q.SetDraining(true)
	stopSched()

	drainCtx, cancelDrain := context.WithTimeout(context.WithoutCancel(ctx), d.opts.DrainTimeout)
	defer cancelDrain()
	if serr := httpSrv.Shutdown(drainCtx); serr != nil {
		httpSrv.Close()
	}
	wg.Wait()
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.opts.Logf("dsed: serve: %v", err)
		}
	default:
	}
	d.q.Close()
	d.opts.Logf("dsed: drained cleanly")
	return nil
}
