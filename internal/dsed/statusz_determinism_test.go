package dsed

// Canonical-output determinism regression tests: the /statusz payload and
// the recovery report must render byte-identically for identical state.
// These pin the contract the determinism analyzer enforces statically —
// no field of the observability surface may depend on map iteration
// order, goroutine completion order, or filesystem enumeration order.

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
)

// TestStatuszPayloadByteStable renders one fixed Statusz snapshot through
// the server's JSON writer repeatedly and requires identical bytes. A
// map-typed field sneaking into the payload would still marshal sorted
// (encoding/json's guarantee), so what this really pins is slice ordering
// — CorruptFiles above all — and any future custom MarshalJSON.
func TestStatuszPayloadByteStable(t *testing.T) {
	snap := Statusz{
		UptimeSec: 42,
		Queued:    3,
		Running:   1,
		Cache:     CacheStats{Entries: 2, Hits: 10, Misses: 4},
		Events:    EventLogStats{Written: 7, Replayed: 2, Subscribers: 1},
		Pressure:  1,
		PeakHeap:  1 << 20,
		Disk: &DiskStatus{
			Mode:       DiskOK,
			SpoolBytes: 4096,
			SpoolFiles: 12,
		},
		Janitor: &JanitorStats{Sweeps: 5, JobsRemoved: 2},
		Recovery: &RecoveryReport{
			Terminal: 2,
			Requeued: 1,
			Corrupt:  2,
			CorruptFiles: []string{
				"jobs/job-a.json.corrupt",
				"jobs/job-b.json.corrupt",
			},
		},
	}
	var first []byte
	for i := 0; i < 8; i++ {
		rec := httptest.NewRecorder()
		writeJSON(rec, 200, snap)
		body := rec.Body.Bytes()
		if i == 0 {
			first = append([]byte(nil), body...)
			continue
		}
		if !bytes.Equal(first, body) {
			t.Fatalf("statusz render %d differs from render 0:\n%s\nvs\n%s", i, first, body)
		}
	}
}

// TestRecoveryReportCorruptFilesCanonical rots two spool records and
// requires the recovery report to name them in sorted order with
// byte-stable JSON — regardless of the order recovery encountered them.
func TestRecoveryReportCorruptFilesCanonical(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Submit in an order unrelated to the lexical order of the IDs.
	for _, id := range []string{"zeta", "alpha", "mid"} {
		if _, _, err := q.Submit(workloadSpec(id, "")); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"zeta", "alpha"} {
		path := q.jobPath(id)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := q2.Recovery()
	if rep.Corrupt != 2 || len(rep.CorruptFiles) != 2 {
		t.Fatalf("recovery report: %+v", rep)
	}
	if !sort.StringsAreSorted(rep.CorruptFiles) {
		t.Fatalf("CorruptFiles not canonical (sorted): %v", rep.CorruptFiles)
	}

	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		again, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("recovery report render differs:\n%s\nvs\n%s", first, again)
		}
	}
}
