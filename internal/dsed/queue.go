package dsed

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"graphdse/internal/artifact"
)

// Admission-control sentinels. The HTTP layer maps them onto status codes
// (429 + Retry-After for saturation, 503 for draining); everything else
// treats them through errors.Is.
var (
	// ErrSaturated reports a full queue: the daemon sheds load instead of
	// accepting unbounded work.
	ErrSaturated = errors.New("dsed: job queue saturated")
	// ErrTenantBusy reports a tenant at its in-flight cap.
	ErrTenantBusy = errors.New("dsed: tenant at in-flight cap")
	// ErrDraining reports a daemon that has stopped intake for shutdown.
	ErrDraining = errors.New("dsed: daemon draining")
	// ErrSpecConflict reports a re-submission whose ID exists with a
	// different spec — an idempotency-key collision, never silently merged.
	ErrSpecConflict = errors.New("dsed: job id exists with a different spec")
	// ErrUnknownJob reports an ID the spool has never seen.
	ErrUnknownJob = errors.New("dsed: unknown job")
	// ErrNotCancellable reports a cancel of an already-terminal job.
	ErrNotCancellable = errors.New("dsed: job already terminal")
)

// Spool layout under the queue directory.
const (
	jobsDir    = "jobs"
	ckptDir    = "ckpt"
	resultsDir = "results"
	eventsDir  = "events"
)

// RecoveryReport accounts for what a queue recovery found, so an operator
// can see exactly what a crash cost (nothing, if the invariants hold).
type RecoveryReport struct {
	// Terminal counts jobs already in an end state.
	Terminal int
	// Requeued counts queued jobs put back on the run queue.
	Requeued int
	// Resumed counts jobs found running (the daemon died under them) and
	// re-enqueued to resume from their checkpoint.
	Resumed int
	// Adopted counts jobs found running whose complete result file already
	// existed: the crash landed between result commit and record update,
	// and recovery finalizes them as done without re-running anything.
	Adopted int
	// Corrupt counts spool records that failed their checksum; the damaged
	// files are set aside with a .corrupt suffix and the jobs reported
	// lost rather than silently re-animated.
	Corrupt int
	// CorruptFiles names the set-aside records.
	CorruptFiles []string
	// CorruptRetained/CorruptEvicted account for the quarantine cap: the
	// newest MaxCorrupt set-aside files are kept for forensics, anything
	// older is evicted so a flapping disk cannot grow the quarantine
	// without bound.
	CorruptRetained int
	CorruptEvicted  int
}

// String renders the report as one log line.
func (r *RecoveryReport) String() string {
	return fmt.Sprintf("recovery: %d terminal, %d requeued, %d resumed from checkpoint, %d adopted from result, %d corrupt",
		r.Terminal, r.Requeued, r.Resumed, r.Adopted, r.Corrupt)
}

// QueueOptions bounds the queue. Zero values disable nothing by accident:
// fill() applies conservative defaults.
type QueueOptions struct {
	// MaxQueued bounds jobs waiting to run (default 64).
	MaxQueued int
	// TenantCap bounds one tenant's queued+running jobs (default 8).
	TenantCap int
	// EventBuffer bounds each event subscriber's delivery buffer; a consumer
	// that falls a full buffer behind is evicted rather than ever blocking
	// the queue or scheduler (default 64).
	EventBuffer int
	// MaxCorrupt caps the .corrupt quarantine in the jobs directory: beyond
	// this many set-aside records, the oldest are evicted at recovery
	// (default 16).
	MaxCorrupt int
	// FS is the filesystem every spool read and write goes through (nil =
	// the real filesystem). Chaos tests inject ENOSPC/EIO/torn renames here.
	FS artifact.FS
}

func (o *QueueOptions) fill() {
	if o.MaxQueued <= 0 {
		o.MaxQueued = 64
	}
	if o.TenantCap <= 0 {
		o.TenantCap = 8
	}
	if o.MaxCorrupt <= 0 {
		o.MaxCorrupt = 16
	}
	if o.FS == nil {
		o.FS = artifact.OS
	}
}

// Queue is the durable job queue: an in-memory index over a spool of
// checksummed, atomically-written job records. Every state transition is
// persisted before it becomes visible, so the in-memory view can always be
// rebuilt from disk — Open does exactly that.
type Queue struct {
	dir  string
	opts QueueOptions
	fs   artifact.FS

	// disk, when attached, gates admission on spool health and observes
	// every record persist (see DiskGovernor). Attach before serving.
	disk *DiskGovernor

	// events journals every observable transition before it becomes
	// observable (see EventLog). Emissions under q.mu keep journal order
	// identical to state-transition order; EventLog never calls back into
	// the queue, so the lock order is safe.
	events *EventLog

	mu sync.Mutex
	// jobs is guarded by mu.
	jobs map[string]*JobRecord
	// pending is the FIFO of queued job IDs; guarded by mu.
	pending []string
	// draining is guarded by mu.
	draining bool
	// seq is guarded by mu.
	seq uint64
	// notify is closed+replaced when pending grows; guarded by mu.
	notify chan struct{}
	// recovery is guarded by mu.
	recovery *RecoveryReport
}

// OpenQueue opens (creating if needed) the spool at dir and recovers its
// state: terminal jobs are indexed, queued jobs re-enter the run queue in
// submission order, and jobs left running by a crash are either adopted (a
// complete result exists) or re-enqueued to resume from their checkpoint.
func OpenQueue(dir string, opts QueueOptions) (*Queue, error) {
	opts.fill()
	for _, sub := range []string{jobsDir, ckptDir, resultsDir, eventsDir} {
		if err := opts.FS.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("dsed: spool: %w", err)
		}
	}
	q := &Queue{
		dir:    dir,
		opts:   opts,
		fs:     opts.FS,
		events: NewEventLogFS(opts.FS, filepath.Join(dir, eventsDir), opts.EventBuffer),
		jobs:   map[string]*JobRecord{},
		notify: make(chan struct{}),
	}
	if err := q.recover(); err != nil {
		return nil, err
	}
	return q, nil
}

// Events returns the queue's durable event log.
func (q *Queue) Events() *EventLog { return q.events }

// FS returns the filesystem the spool persists through.
func (q *Queue) FS() artifact.FS { return q.fs }

// AttachDisk wires the disk governor into the queue's persistence paths:
// admission is gated on spool health and every durable write (job records
// and event-journal appends) reports its outcome. Attach before serving.
func (q *Queue) AttachDisk(g *DiskGovernor) {
	q.disk = g
	if g != nil {
		q.events.SetWriteObserver(g.ObserveWrite)
	}
}

// Disk returns the attached governor (nil when none).
func (q *Queue) Disk() *DiskGovernor { return q.disk }

// persist writes one job record through the seam, feeding the outcome to
// the disk governor.
func (q *Queue) persist(path string, rec *JobRecord) error {
	err := writeJobRecord(q.fs, path, rec)
	if q.disk != nil {
		q.disk.ObserveWrite(err)
	}
	return err
}

// Close releases the event log's journal handles. The queue itself holds no
// other open files.
func (q *Queue) Close() { q.events.Close() }

// Dir returns the spool root.
func (q *Queue) Dir() string { return q.dir }

// jobPath/ckptPath/resultPath name a job's spool files. IDs are validated
// at admission (safeID), so they cannot traverse outside the spool.
func (q *Queue) jobPath(id string) string    { return filepath.Join(q.dir, jobsDir, id+".json") }
func (q *Queue) ckptPath(id string) string   { return filepath.Join(q.dir, ckptDir, id+".jsonl") }
func (q *Queue) resultPath(id string) string { return filepath.Join(q.dir, resultsDir, id+".json") }

// recover rebuilds the in-memory index from the spool. It runs inside
// OpenQueue before the queue is shared, but takes q.mu anyway: the guarded
// fields it populates are locked on every other path, and a startup-only
// exemption is exactly the kind of convention that rots.
func (q *Queue) recover() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	rep := &RecoveryReport{}
	entries, err := q.fs.ReadDir(filepath.Join(q.dir, jobsDir))
	if err != nil {
		return fmt.Errorf("dsed: recover: %w", err)
	}
	var requeue []*JobRecord
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(q.dir, jobsDir, name)
		rec, rerr := readJobRecord(q.fs, path)
		if rerr != nil {
			// A record that fails its checksum is set aside, not deleted:
			// the operator decides. The job counts as lost here — the one
			// failure mode atomic writes cannot absorb is rot while the
			// daemon was down.
			rep.Corrupt++
			aside := path + ".corrupt"
			if mvErr := q.fs.Rename(path, aside); mvErr == nil {
				rep.CorruptFiles = append(rep.CorruptFiles, aside)
			}
			continue
		}
		if rec.SubmitSeq >= q.seq {
			q.seq = rec.SubmitSeq + 1
		}
		switch {
		case rec.State.Terminal():
			rep.Terminal++
		case rec.State == StateRunning:
			// The daemon died mid-job. If its complete result already
			// committed, the crash landed in the tiny window between result
			// write and record update: adopt it. Otherwise resume from the
			// checkpoint.
			if q.resultComplete(rec.Spec.ID) {
				rec.State = StateDone
				rec.Error = ""
				if werr := writeJobRecord(q.fs, path, rec); werr != nil {
					return fmt.Errorf("dsed: recover adopt %s: %w", rec.Spec.ID, werr)
				}
				rep.Adopted++
			} else {
				rec.State = StateQueued
				if werr := writeJobRecord(q.fs, path, rec); werr != nil {
					return fmt.Errorf("dsed: recover requeue %s: %w", rec.Spec.ID, werr)
				}
				requeue = append(requeue, rec)
				rep.Resumed++
			}
		default: // queued
			requeue = append(requeue, rec)
			rep.Requeued++
		}
		q.jobs[rec.Spec.ID] = rec
	}
	// CorruptFiles feeds the canonical /statusz payload: sort it so the
	// report's bytes never depend on the FS seam's ReadDir ordering
	// (os.ReadDir sorts, but injected test filesystems need not).
	sort.Strings(rep.CorruptFiles)
	rep.CorruptRetained, rep.CorruptEvicted = q.capCorrupt()
	sort.Slice(requeue, func(i, j int) bool { return requeue[i].SubmitSeq < requeue[j].SubmitSeq })
	for _, rec := range requeue {
		q.pending = append(q.pending, rec.Spec.ID)
	}
	// Reconcile each job's event journal with its authoritative record: a
	// crash can land between a record write and the matching journal append,
	// leaving the journal one transition behind. EnsureState appends the
	// missing transition idempotently, so a resumed stream always converges
	// on the recovered state.
	for _, rec := range q.jobs {
		_ = q.events.EnsureState(rec.Spec.ID, Event{
			State:       rec.State,
			Attempt:     rec.Attempt,
			Error:       rec.Error,
			Survivors:   rec.Survivors,
			Quarantined: rec.Quarantined,
		})
	}
	q.recovery = rep
	return nil
}

// capCorrupt bounds the .corrupt quarantine to opts.MaxCorrupt files,
// evicting the oldest (by modification time) beyond the cap. Quarantine
// exists for forensics; a disk that rots records on every restart must not
// be able to grow it without bound.
func (q *Queue) capCorrupt() (retained, evicted int) {
	dir := filepath.Join(q.dir, jobsDir)
	entries, err := q.fs.ReadDir(dir)
	if err != nil {
		return 0, 0
	}
	type aged struct {
		name string
		mod  time.Time
	}
	var corrupt []aged
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".corrupt") {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		corrupt = append(corrupt, aged{e.Name(), info.ModTime()})
	}
	sort.Slice(corrupt, func(i, j int) bool { return corrupt[i].mod.Before(corrupt[j].mod) })
	for len(corrupt) > q.opts.MaxCorrupt {
		if rerr := q.fs.Remove(filepath.Join(dir, corrupt[0].name)); rerr == nil {
			evicted++
		}
		corrupt = corrupt[1:]
	}
	return len(corrupt), evicted
}

// emit journals one event, tolerating journal failures: a broken event
// stream degrades observability, never the job.
func (q *Queue) emit(id string, ev Event) { _ = q.events.Emit(id, ev) }

// resultComplete reports whether a structurally-valid result file exists
// for the job.
func (q *Queue) resultComplete(id string) bool {
	data, err := q.fs.ReadFile(q.resultPath(id))
	if err != nil {
		return false
	}
	var res JobResult
	return json.Unmarshal(data, &res) == nil && res.ID == id && res.Sealed
}

// Recovery returns the report of the Open-time recovery pass.
func (q *Queue) Recovery() *RecoveryReport {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.recovery
}

// SetDraining flips intake: once draining, Submit refuses with ErrDraining.
func (q *Queue) SetDraining(on bool) {
	q.mu.Lock()
	q.draining = on
	q.mu.Unlock()
}

// newID mints a random job ID.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "job-" + hex.EncodeToString(b[:]), nil
}

// safeID constrains client-supplied IDs to a filename-safe alphabet so a
// job ID can never escape the spool directory.
func safeID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(id, ".")
}

// Submit admits one job: validates the spec, applies admission control
// (queue depth, tenant cap, draining), persists the record atomically, and
// only then makes it runnable. existing is true when the same (ID, spec)
// was already known — the idempotent path.
func (q *Queue) Submit(spec JobSpec) (rec JobRecord, existing bool, err error) {
	if err := spec.Validate(); err != nil {
		return JobRecord{}, false, err
	}
	if spec.ID == "" {
		id, iderr := newID()
		if iderr != nil {
			return JobRecord{}, false, fmt.Errorf("dsed: mint job id: %w", iderr)
		}
		spec.ID = id
	}
	if !safeID(spec.ID) {
		return JobRecord{}, false, fmt.Errorf("%w: id %q (want [A-Za-z0-9._-], len<=128)", ErrBadSpec, spec.ID)
	}
	digest, err := spec.Digest()
	if err != nil {
		return JobRecord{}, false, err
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if prior, ok := q.jobs[spec.ID]; ok {
		if prior.SpecDigest == digest {
			return *prior, true, nil
		}
		return JobRecord{}, false, fmt.Errorf("%w: %s", ErrSpecConflict, spec.ID)
	}
	if q.draining {
		return JobRecord{}, false, ErrDraining
	}
	if q.disk != nil {
		// Spool health gates admission after idempotent re-submission (a
		// known job's record is already durable — re-reporting it needs no
		// writes) but before capacity checks, so a degraded daemon sheds
		// load with the storage-specific status instead of a generic 429.
		if derr := q.disk.Admit(); derr != nil {
			return JobRecord{}, false, derr
		}
	}
	if len(q.pending) >= q.opts.MaxQueued {
		return JobRecord{}, false, fmt.Errorf("%w: %d jobs queued (max %d)", ErrSaturated, len(q.pending), q.opts.MaxQueued)
	}
	if n := q.inFlightLocked(spec.tenant()); n >= q.opts.TenantCap {
		return JobRecord{}, false, fmt.Errorf("%w: tenant %q has %d in flight (cap %d)", ErrTenantBusy, spec.tenant(), n, q.opts.TenantCap)
	}

	newRec := &JobRecord{
		Spec:       spec,
		State:      StateQueued,
		SpecDigest: digest,
		SubmitSeq:  q.seq,
	}
	q.seq++
	// Durability before visibility: the record reaches disk before the job
	// can run or be reported. A crash right here leaves a queued record
	// that recovery re-enqueues — the job is never lost.
	if err := q.persist(q.jobPath(spec.ID), newRec); err != nil {
		return JobRecord{}, false, fmt.Errorf("dsed: persist job %s: %w", spec.ID, err)
	}
	q.jobs[spec.ID] = newRec
	q.pending = append(q.pending, spec.ID)
	close(q.notify)
	q.notify = make(chan struct{})
	q.emit(spec.ID, Event{Type: EventState, State: StateQueued})
	return *newRec, false, nil
}

// inFlightLocked counts a tenant's queued+running jobs. Caller holds q.mu.
func (q *Queue) inFlightLocked(tenant string) int {
	n := 0
	for _, rec := range q.jobs {
		if rec.Spec.tenant() == tenant && !rec.State.Terminal() {
			n++
		}
	}
	return n
}

// Next blocks until a queued job is available (or ctx ends), transitions it
// to running, persists the transition, and returns a copy.
func (q *Queue) Next(ctx context.Context) (JobRecord, error) {
	for {
		q.mu.Lock()
		if len(q.pending) > 0 {
			id := q.pending[0]
			q.pending = q.pending[1:]
			rec := q.jobs[id]
			rec.State = StateRunning
			rec.Attempt++
			// Best-effort persistence: if this write fails the job still
			// runs — a crash would recover it as queued and resume from
			// the checkpoint, costing duplicate scheduling, never
			// duplicate completed points.
			_ = q.persist(q.jobPath(id), rec)
			q.emit(id, Event{Type: EventState, State: StateRunning, Attempt: rec.Attempt})
			out := *rec
			q.mu.Unlock()
			return out, nil
		}
		wake := q.notify
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			return JobRecord{}, ctx.Err()
		case <-wake:
		}
	}
}

// Progress updates a running job's coarse counters in memory (the per-job
// checkpoint is the durable fine-grained progress).
func (q *Queue) Progress(id string, done, total int) {
	q.mu.Lock()
	rec, ok := q.jobs[id]
	running := ok && rec.State == StateRunning
	if running {
		rec.Done, rec.Total = done, total
	}
	q.mu.Unlock()
	// Emitted outside q.mu: progress is the hot path, and its journal fsync
	// must not serialize queue operations. Ordering versus the terminal
	// transition is safe because Finalize runs strictly after the sweep —
	// and therefore after every Progress call — completes.
	if running {
		q.emit(id, Event{Type: EventProgress, Done: done, Total: total})
	}
}

// Finalize moves a job to a terminal state and persists it. For StateDone
// the caller must have committed the result file first — recovery depends
// on that ordering.
func (q *Queue) Finalize(id string, state JobState, errMsg string, survivors, quarantined int) error {
	if !state.Terminal() {
		return fmt.Errorf("dsed: finalize %s to non-terminal state %q", id, state)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	rec, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	rec.State = state
	rec.Error = errMsg
	rec.Survivors = survivors
	rec.Quarantined = quarantined
	if err := q.persist(q.jobPath(id), rec); err != nil {
		return fmt.Errorf("dsed: persist finalize %s: %w", id, err)
	}
	// Seal precedes the terminal state event, mirroring the result-file
	// ordering on disk: by the time a client sees "done", the sealed report
	// the query endpoints serve from is already committed.
	if state == StateDone {
		q.emit(id, Event{Type: EventSeal, Survivors: survivors, Quarantined: quarantined})
	}
	q.emit(id, Event{
		Type:        EventState,
		State:       state,
		Attempt:     rec.Attempt,
		Error:       errMsg,
		Survivors:   survivors,
		Quarantined: quarantined,
	})
	return nil
}

// Requeue returns a running job to the queued state without counting the
// attempt against it — the drain path for jobs interrupted by shutdown, so
// the next daemon resumes them from their checkpoint.
func (q *Queue) Requeue(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	rec, ok := q.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if rec.State != StateRunning {
		return nil
	}
	rec.State = StateQueued
	if err := q.persist(q.jobPath(id), rec); err != nil {
		return fmt.Errorf("dsed: persist requeue %s: %w", id, err)
	}
	q.pending = append(q.pending, id)
	close(q.notify)
	q.notify = make(chan struct{})
	q.emit(id, Event{Type: EventState, State: StateQueued, Attempt: rec.Attempt})
	return nil
}

// CancelQueued cancels a job that has not started; running jobs are
// cancelled through the scheduler (which owns their contexts). It reports
// whether the job was queued (and is now cancelled), running (caller must
// cancel the context), or terminal (error).
func (q *Queue) CancelQueued(id string) (wasRunning bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	rec, ok := q.jobs[id]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch rec.State {
	case StateRunning:
		return true, nil
	case StateQueued:
		for i, pid := range q.pending {
			if pid == id {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				break
			}
		}
		rec.State = StateCancelled
		if werr := q.persist(q.jobPath(id), rec); werr != nil {
			return false, fmt.Errorf("dsed: persist cancel %s: %w", id, werr)
		}
		q.emit(id, Event{Type: EventState, State: StateCancelled, Attempt: rec.Attempt})
		return false, nil
	default:
		return false, fmt.Errorf("%w: %s is %s", ErrNotCancellable, id, rec.State)
	}
}

// Get returns a copy of one job record.
func (q *Queue) Get(id string) (JobRecord, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	rec, ok := q.jobs[id]
	if !ok {
		return JobRecord{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return *rec, nil
}

// List returns copies of every job record, ordered by submission.
func (q *Queue) List() []JobRecord {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobRecord, 0, len(q.jobs))
	for _, rec := range q.jobs {
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SubmitSeq < out[j].SubmitSeq })
	return out
}

// ErrNotTerminal reports a GC attempt on a job that is still live.
var ErrNotTerminal = errors.New("dsed: job not terminal")

// jobFiles lists every spool file attributable to one job, in safe
// deletion order: the job record (the tombstone — once it is gone the job
// no longer exists, so recovery can never re-animate it from the
// leftovers) first, then checkpoint, then event journal and snapshot, and
// the sealed result artifact last. A crash anywhere mid-GC leaves only
// recordless orphans, which the janitor's orphan sweep collects.
func (q *Queue) jobFiles(id string) []string {
	files := []string{q.jobPath(id), q.ckptPath(id)}
	files = append(files, q.events.journalFiles(id)...)
	return append(files, q.resultPath(id))
}

// JobBytes sums the on-disk footprint of one job's spool files.
func (q *Queue) JobBytes(id string) int64 {
	var total int64
	for _, path := range q.jobFiles(id) {
		if info, err := q.fs.Stat(path); err == nil {
			total += info.Size()
		}
	}
	return total
}

// GCJob removes a terminal job from the spool and the index: tombstone
// first, artifact last (see jobFiles), with the in-memory event stream
// dropped between record and journal deletion so no handle keeps a deleted
// file alive. Live jobs are refused. Returns the bytes freed.
func (q *Queue) GCJob(id string) (int64, error) {
	q.mu.Lock()
	rec, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if !rec.State.Terminal() {
		q.mu.Unlock()
		return 0, fmt.Errorf("%w: %s is %s", ErrNotTerminal, id, rec.State)
	}
	// Tombstone under the lock: record file and index entry go together,
	// so no reader can observe a job whose record is gone.
	freed := q.JobBytes(id)
	if err := q.fs.Remove(q.jobPath(id)); err != nil {
		q.mu.Unlock()
		return 0, fmt.Errorf("dsed: gc %s: %w", id, err)
	}
	delete(q.jobs, id)
	q.mu.Unlock()

	q.events.DropStream(id)
	_ = q.fs.Remove(q.ckptPath(id))
	for _, path := range q.events.journalFiles(id) {
		_ = q.fs.Remove(path)
	}
	_ = q.fs.Remove(q.resultPath(id))
	return freed, nil
}

// Known reports whether the queue currently indexes the job (the janitor's
// orphan test, taken at removal time to stay race-free against Submit).
func (q *Queue) Known(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.jobs[id]
	return ok
}

// Depth returns the current queued and running counts.
func (q *Queue) Depth() (queued, running int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, rec := range q.jobs {
		switch rec.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return queued, running
}
