package dsed

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphdse/internal/artifact"
)

// workloadSpec builds a minimal valid spec.
func workloadSpec(id, tenant string) JobSpec {
	return JobSpec{
		ID:       id,
		Tenant:   tenant,
		Workload: &WorkloadSpec{Vertices: 256, EdgeFactor: 8, Seed: 7, Repeats: 1},
	}
}

func TestJobRecordRoundTripAndCorruption(t *testing.T) {
	rec := &JobRecord{Spec: workloadSpec("j1", "acme"), State: StateQueued, SubmitSeq: 3}
	data, err := encodeJobRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeJobRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.ID != "j1" || got.State != StateQueued || got.SubmitSeq != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// Any flipped byte in the body must trip the checksum.
	bad := []byte(strings.Replace(string(data), `"acme"`, `"ACME"`, 1))
	if _, err := decodeJobRecord(bad); !errors.Is(err, artifact.ErrCorrupt) {
		t.Fatalf("tampered record: got %v, want ErrCorrupt", err)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"no source", JobSpec{}},
		{"two sources", JobSpec{Workload: &WorkloadSpec{}, TracePath: "x"}},
		{"huge vertices", JobSpec{Workload: &WorkloadSpec{Vertices: maxSpecVertices + 1}}},
		{"negative timeout", JobSpec{Workload: &WorkloadSpec{}, TimeoutSec: -1}},
		{"failure rate 1", JobSpec{Workload: &WorkloadSpec{}, FailureRate: 1}},
		{"too many retries", JobSpec{Workload: &WorkloadSpec{}, Retries: maxSpecRetries + 1}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: got %v, want ErrBadSpec", c.name, err)
		}
	}
	ok := workloadSpec("", "")
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestSubmitIdempotentAndConflict(t *testing.T) {
	q, err := OpenQueue(t.TempDir(), QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec := workloadSpec("stable-id", "")
	rec, existing, err := q.Submit(spec)
	if err != nil || existing {
		t.Fatalf("first submit: existing=%v err=%v", existing, err)
	}
	if rec.State != StateQueued {
		t.Fatalf("state %q, want queued", rec.State)
	}
	// Byte-identical re-submission is the idempotent path.
	rec2, existing, err := q.Submit(spec)
	if err != nil || !existing {
		t.Fatalf("re-submit: existing=%v err=%v", existing, err)
	}
	if rec2.SubmitSeq != rec.SubmitSeq {
		t.Fatal("idempotent re-submit minted a new job")
	}
	// Same ID, different payload: a conflict, never a silent merge.
	changed := spec
	changed.Workload = &WorkloadSpec{Vertices: 512, EdgeFactor: 8, Seed: 7, Repeats: 1}
	if _, _, err := q.Submit(changed); !errors.Is(err, ErrSpecConflict) {
		t.Fatalf("conflicting re-submit: got %v, want ErrSpecConflict", err)
	}
}

func TestAdmissionControl(t *testing.T) {
	q, err := OpenQueue(t.TempDir(), QueueOptions{MaxQueued: 2, TenantCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two distinct tenants fill the queue depth.
	if _, _, err := q.Submit(workloadSpec("a1", "a")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(workloadSpec("b1", "b")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(workloadSpec("c1", "c")); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-depth submit: got %v, want ErrSaturated", err)
	}

	// Tenant cap binds before queue depth.
	q2, err := OpenQueue(t.TempDir(), QueueOptions{MaxQueued: 64, TenantCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q2.Submit(workloadSpec("t1", "acme")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q2.Submit(workloadSpec("t2", "acme")); !errors.Is(err, ErrTenantBusy) {
		t.Fatalf("tenant over cap: got %v, want ErrTenantBusy", err)
	}
	if _, _, err := q2.Submit(workloadSpec("o1", "other")); err != nil {
		t.Fatalf("other tenant blocked by acme's cap: %v", err)
	}

	// Draining refuses all intake.
	q2.SetDraining(true)
	if _, _, err := q2.Submit(workloadSpec("d1", "fresh")); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining submit: got %v, want ErrDraining", err)
	}
}

func TestUnsafeIDsRejected(t *testing.T) {
	q, err := OpenQueue(t.TempDir(), QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"../escape", "a/b", ".hidden", strings.Repeat("x", 129), "sp ace"} {
		if _, _, err := q.Submit(workloadSpec(id, "")); !errors.Is(err, ErrBadSpec) {
			t.Errorf("id %q: got %v, want ErrBadSpec", id, err)
		}
	}
}

func TestCancelQueued(t *testing.T) {
	q, err := OpenQueue(t.TempDir(), QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(workloadSpec("c1", "")); err != nil {
		t.Fatal(err)
	}
	if running, err := q.CancelQueued("c1"); err != nil || running {
		t.Fatalf("cancel queued: running=%v err=%v", running, err)
	}
	rec, err := q.Get("c1")
	if err != nil || rec.State != StateCancelled {
		t.Fatalf("after cancel: %+v err=%v", rec, err)
	}
	// Terminal jobs are not cancellable again.
	if _, err := q.CancelQueued("c1"); !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("double cancel: got %v, want ErrNotCancellable", err)
	}
	if _, err := q.CancelQueued("ghost"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown cancel: got %v, want ErrUnknownJob", err)
	}
}

// TestRecoveryRequeuesAndResumes is the queue-level crash drill: re-open the
// spool and check each state is recovered per the protocol — queued jobs
// re-enter FIFO, running jobs resume, terminal jobs stay put.
func TestRecoveryRequeuesAndResumes(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"first", "second", "third"} {
		if _, _, err := q.Submit(workloadSpec(id, "")); err != nil {
			t.Fatal(err)
		}
	}
	// "first" transitions to running; the crash (dropping q) leaves it so on
	// disk with no result.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	rec, err := q.Next(ctx)
	if err != nil || rec.Spec.ID != "first" {
		t.Fatalf("Next: %+v err=%v", rec, err)
	}
	// "third" completes before the crash.
	if _, err := q.Next(ctx); err != nil { // second → running
		t.Fatal(err)
	}
	if _, err := q.Next(ctx); err != nil { // third → running
		t.Fatal(err)
	}
	if err := q.Finalize("third", StateDone, "", 5, 0); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := q2.Recovery()
	if rep.Terminal != 1 || rep.Resumed != 2 || rep.Requeued != 0 || rep.Corrupt != 0 {
		t.Fatalf("recovery report: %+v", rep)
	}
	// FIFO by submission order survives the restart.
	a, err := q2.Next(ctx)
	if err != nil || a.Spec.ID != "first" {
		t.Fatalf("recovered order: got %q, want first", a.Spec.ID)
	}
	if a.Attempt != 2 {
		t.Fatalf("resume attempt %d, want 2", a.Attempt)
	}
	b, _ := q2.Next(ctx)
	if b.Spec.ID != "second" {
		t.Fatalf("recovered order: got %q, want second", b.Spec.ID)
	}
	done, _ := q2.Get("third")
	if done.State != StateDone || done.Survivors != 5 {
		t.Fatalf("terminal job disturbed by recovery: %+v", done)
	}
}

// TestRecoveryAdoptsSealedResult covers the crash window between result
// commit and record update: recovery must finalize the job as done without
// re-running anything.
func TestRecoveryAdoptsSealedResult(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(workloadSpec("adopt-me", "")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := q.Next(ctx); err != nil {
		t.Fatal(err)
	}
	// Simulate the scheduler having committed the sealed result just before
	// the crash.
	if err := artifact.WriteFileAtomic(q.resultPath("adopt-me"), 0o644, func(w io.Writer) error {
		_, werr := io.WriteString(w, `{"id":"adopt-me","total":1,"survivors":1,"records":[],"sealed":true}`+"\n")
		return werr
	}); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := q2.Recovery(); rep.Adopted != 1 || rep.Resumed != 0 {
		t.Fatalf("recovery report: %+v", rep)
	}
	rec, err := q2.Get("adopt-me")
	if err != nil || rec.State != StateDone {
		t.Fatalf("adopted job: %+v err=%v", rec, err)
	}
	// An unsealed (torn) result must NOT be adopted.
	dir2 := t.TempDir()
	q3, err := OpenQueue(dir2, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q3.Submit(workloadSpec("torn", "")); err != nil {
		t.Fatal(err)
	}
	if _, err := q3.Next(ctx); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(q3.resultPath("torn"), []byte(`{"id":"torn","sea`), 0o644); err != nil {
		t.Fatal(err)
	}
	q4, err := OpenQueue(dir2, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := q4.Recovery(); rep.Adopted != 0 || rep.Resumed != 1 {
		t.Fatalf("torn result adopted: %+v", rep)
	}
}

// TestRecoverySetsAsideCorruptRecords: a record failing its checksum is
// renamed aside, reported, and never re-animated.
func TestRecoverySetsAsideCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(workloadSpec("healthy", "")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(workloadSpec("rotten", "")); err != nil {
		t.Fatal(err)
	}
	// Rot one byte inside the framed body.
	path := q.jobPath("rotten")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := q2.Recovery()
	if rep.Corrupt != 1 || rep.Requeued != 1 {
		t.Fatalf("recovery report: %+v", rep)
	}
	if len(rep.CorruptFiles) != 1 || !strings.HasSuffix(rep.CorruptFiles[0], ".corrupt") {
		t.Fatalf("corrupt file not set aside: %v", rep.CorruptFiles)
	}
	if _, err := os.Stat(rep.CorruptFiles[0]); err != nil {
		t.Fatalf("set-aside file missing: %v", err)
	}
	if _, err := q2.Get("rotten"); !errors.Is(err, ErrUnknownJob) {
		t.Fatal("corrupt job was re-animated")
	}
	// The rest of the spool is unaffected.
	if _, err := q2.Get("healthy"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, jobsDir, "rotten.json")); !os.IsNotExist(err) {
		t.Fatal("corrupt record left in place")
	}
}

// TestRequeuePreservesAttempt: the drain path returns a running job to
// queued without burning an attempt and keeps it durable.
func TestRequeuePreservesAttempt(t *testing.T) {
	dir := t.TempDir()
	q, err := OpenQueue(dir, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.Submit(workloadSpec("r1", "")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	rec, err := q.Next(ctx)
	if err != nil || rec.Attempt != 1 {
		t.Fatalf("Next: %+v err=%v", rec, err)
	}
	if err := q.Requeue("r1"); err != nil {
		t.Fatal(err)
	}
	onDisk, err := readJobRecord(artifact.OS, q.jobPath("r1"))
	if err != nil || onDisk.State != StateQueued {
		t.Fatalf("requeue not durable: %+v err=%v", onDisk, err)
	}
	rec2, err := q.Next(ctx)
	if err != nil || rec2.Spec.ID != "r1" || rec2.Attempt != 2 {
		t.Fatalf("requeued job: %+v err=%v", rec2, err)
	}
}
