package dsed

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"graphdse/internal/dsedclient"
)

// TestDaemonKill9StreamResume is the acceptance test for durable event
// delivery: a dsedclient follows a paced job's stream, the daemon is
// SIGKILLed mid-sweep, a replacement daemon starts on the same address over
// the same spool, and the client auto-reconnects with Last-Event-ID. The
// merged client-side sequence must be gap-free and duplicate-free across
// the crash, end in exactly one terminal event, and show the full recovery
// arc (queued → running → requeued → running → done).
func TestDaemonKill9StreamResume(t *testing.T) {
	if spool := os.Getenv(crashHelperEnv); spool != "" {
		crashHelperDaemon(spool, os.Getenv(crashAddrFileEnv)) // never returns
	}
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short")
	}

	spool := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")
	spec := crashJobSpec(75)

	// Phase 1: daemon up (ephemeral port), job submitted, client following.
	cmd := startCrashHelperFor(t, "TestDaemonKill9StreamResume", "", spool, addrFile)
	base := waitAddr(t, addrFile, 10*time.Second)
	addr := strings.TrimPrefix(base, "http://")
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		cmd.Process.Kill()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		cmd.Process.Kill()
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	var mu sync.Mutex
	var evs []dsedclient.Event
	progressSeen := make(chan struct{})
	var progressOnce sync.Once
	followCtx, cancelFollow := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancelFollow()
	client := dsedclient.New(base, dsedclient.Options{
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  500 * time.Millisecond,
		// The restart window spans many reconnect attempts; the breaker
		// must not trip while the replacement daemon comes up.
		MaxConsecutiveFailures: 200,
		StallTimeout:           10 * time.Second,
	})
	type followResult struct {
		term dsedclient.Event
		err  error
	}
	followDone := make(chan followResult, 1)
	go func() {
		term, ferr := client.Follow(followCtx, "crashjob", dsedclient.FollowOptions{
			OnEvent: func(ev dsedclient.Event) {
				mu.Lock()
				evs = append(evs, ev)
				n := 0
				for _, e := range evs {
					if e.Type == "progress" {
						n++
					}
				}
				mu.Unlock()
				if n >= 3 {
					progressOnce.Do(func() { close(progressSeen) })
				}
			},
			OnRetry: func(failures int, rerr error, delay time.Duration) {
				t.Logf("client reconnect %d after %v (backoff %v)", failures, rerr, delay)
			},
		})
		followDone <- followResult{term, ferr}
	}()

	// SIGKILL once the client has observed real mid-sweep progress.
	select {
	case <-progressSeen:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("client never observed sweep progress")
	case res := <-followDone:
		cmd.Process.Kill()
		t.Fatalf("stream ended before the crash: %+v err=%v", res.term, res.err)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Phase 2: replacement daemon on the SAME address over the same spool.
	// The client is still in its reconnect loop and must resume seamlessly.
	cmd2 := startCrashHelperFor(t, "TestDaemonKill9StreamResume", addr, spool, addrFile)
	var res followResult
	select {
	case res = <-followDone:
	case <-time.After(90 * time.Second):
		cmd2.Process.Kill()
		t.Fatal("followed stream never reached a terminal event after restart")
	}
	if res.err != nil {
		cmd2.Process.Kill()
		t.Fatalf("follow across crash: %v", res.err)
	}
	if res.term.State != "done" {
		cmd2.Process.Kill()
		t.Fatalf("terminal state %q (%s), want done", res.term.State, res.term.Error)
	}

	// The merged sequence: contiguous seqs from 1, exactly one terminal.
	mu.Lock()
	got := append([]dsedclient.Event(nil), evs...)
	mu.Unlock()
	last := checkEventSequence(t, got, 1)
	if last.Seq != res.term.Seq {
		t.Fatalf("last delivered seq %d != terminal seq %d", last.Seq, res.term.Seq)
	}
	// The recovery arc is visible in the state events: the crash forced a
	// second queued→running cycle, and the journal recorded all of it.
	var states []string
	finalAttempt := 0
	for _, ev := range got {
		if ev.Type == "state" {
			states = append(states, ev.State)
			if ev.State == "running" {
				finalAttempt = ev.Attempt
			}
		}
	}
	want := []string{"queued", "running", "queued", "running", "done"}
	if strings.Join(states, ",") != strings.Join(want, ",") {
		t.Fatalf("state arc = %v, want %v", states, want)
	}
	if finalAttempt != 2 {
		t.Fatalf("final running attempt = %d, want 2", finalAttempt)
	}

	// Clean drain of the replacement daemon rides along.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("replacement daemon did not drain cleanly: %v", err)
	}
}
