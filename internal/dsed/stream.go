package dsed

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"graphdse/internal/dse"
)

// sseWriteDeadline bounds each individual SSE write. The daemon's blanket
// WriteTimeout would kill a long-lived stream outright, so the handler
// extends the connection deadline per write instead: a healthy stream lives
// indefinitely, a peer that stops reading is cut off within one deadline.
const sseWriteDeadline = 15 * time.Second

// parseAfter resolves the client's resume position: the standard
// Last-Event-ID header (set automatically by EventSource and by the
// dsedclient on reconnect), with an `after` query parameter as the
// curl-friendly equivalent. Zero means "from the beginning".
func parseAfter(r *http.Request) uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return 0
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// handleEvents streams a job's event journal as Server-Sent Events. Every
// journaled event carries its per-job sequence number as the SSE `id:`
// field, so a disconnected client resumes exactly where it left off by
// reconnecting with `Last-Event-ID`. The stream ends after the job's
// terminal state event; until then, comment heartbeats flow every
// heartbeat interval so both sides notice a dead peer. A client that stops
// reading is evicted by the hub (never waited on) and told so with a
// final `lag` event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := s.q.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "dsed: streaming unsupported"})
		return
	}
	after := parseAfter(r)
	sub, backlog, err := s.q.Events().Subscribe(id, after)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	defer s.q.Events().Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	send := func(ev Event) bool {
		data, merr := json.Marshal(&ev)
		if merr != nil {
			return false
		}
		_ = rc.SetWriteDeadline(time.Now().Add(sseWriteDeadline))
		if ev.Seq > 0 {
			if _, werr := fmt.Fprintf(w, "id: %d\n", ev.Seq); werr != nil {
				return false
			}
		}
		if _, werr := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); werr != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// Backlog first (durable history), then the live channel. The two
	// overlap but never gap — every event is journaled before it is
	// published — so filtering on the last delivered seq makes the merged
	// stream exactly-once.
	last := after
	for _, ev := range backlog {
		if ev.Seq <= last {
			continue
		}
		if !send(ev) {
			return
		}
		last = ev.Seq
		if ev.Terminal() {
			return
		}
	}
	// A job that was already terminal before we subscribed has journaled
	// its terminal event before the backlog snapshot: if it was not in the
	// backlog the client already has it, and the stream is complete.
	if rec.State.Terminal() {
		return
	}

	hb := s.heartbeat
	if hb <= 0 {
		hb = 10 * time.Second
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.Evicted():
			// Parting notice, without an id: the client's resume position
			// stays at the last journaled event it actually received.
			send(Event{Job: id, Type: EventLag, Error: "subscriber lagged; resume with Last-Event-ID"})
			return
		case ev := <-sub.Events():
			if ev.Seq <= last {
				continue
			}
			if !send(ev) {
				return
			}
			last = ev.Seq
			if ev.Terminal() {
				return
			}
		case <-ticker.C:
			_ = rc.SetWriteDeadline(time.Now().Add(sseWriteDeadline))
			if _, werr := fmt.Fprint(w, ": hb\n\n"); werr != nil {
				return
			}
			fl.Flush()
		}
	}
}

// sealedRecords loads a done job's sealed report and decodes its canonical
// records against the job's design space — the read side of the query
// endpoints. The non-nil error is already HTTP-shaped (status + body
// written).
func (s *Server) sealedRecords(w http.ResponseWriter, id string) ([]dse.RunRecord, bool) {
	rec, err := s.q.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return nil, false
	}
	if rec.State != StateDone {
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("dsed: job %s is %s, queries available once done", id, rec.State)})
		return nil, false
	}
	data, err := os.ReadFile(s.q.resultPath(id))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: fmt.Sprintf("dsed: read result: %v", err)})
		return nil, false
	}
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil || !res.Sealed {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: fmt.Sprintf("dsed: result for %s is not a sealed report", id)})
		return nil, false
	}
	var space dse.SpaceParams
	if rec.Spec.Space != nil {
		space = *rec.Spec.Space
	}
	records, err := dse.DecodeCanonicalRecords(res.Records, dse.EnumerateSpace(space))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: fmt.Sprintf("dsed: decode sealed records: %v", err)})
		return nil, false
	}
	return records, true
}

// ParetoPoint is one non-dominated configuration in a job's Pareto front.
type ParetoPoint struct {
	ID           string  `json:"id"`
	MemType      string  `json:"mem_type"`
	Channels     int     `json:"channels"`
	CtrlMHz      float64 `json:"ctrl_mhz"`
	CPUMHz       float64 `json:"cpu_mhz"`
	PowerW       float64 `json:"power_w"`
	BandwidthMBs float64 `json:"bandwidth_mbs"`
	AvgLatency   float64 `json:"avg_latency_cycles"`
	TotalLatency float64 `json:"total_latency_cycles"`
}

// ParetoResponse is the body of GET /v1/jobs/{id}/pareto.
type ParetoResponse struct {
	ID         string        `json:"id"`
	Objectives []string      `json:"objectives"`
	Survivors  int           `json:"survivors"`
	Front      []ParetoPoint `json:"front"`
}

// handlePareto recomputes the Pareto front of a done job from its sealed
// report under the default paper objectives (min power and latencies, max
// bandwidth).
func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	records, ok := s.sealedRecords(w, id)
	if !ok {
		return
	}
	objectives := dse.DefaultObjectives()
	front, err := dse.ParetoFront(records, objectives)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: fmt.Sprintf("dsed: pareto: %v", err)})
		return
	}
	resp := ParetoResponse{ID: id, Survivors: len(dse.Survivors(records))}
	for _, o := range objectives {
		name := o.Metric
		if o.Maximize {
			name = "max:" + name
		} else {
			name = "min:" + name
		}
		resp.Objectives = append(resp.Objectives, name)
	}
	for _, rec := range front {
		m := rec.Result
		resp.Front = append(resp.Front, ParetoPoint{
			ID:           rec.Point.ID(),
			MemType:      rec.Point.Type.String(),
			Channels:     rec.Point.Channels,
			CtrlMHz:      rec.Point.CtrlFreqMHz,
			CPUMHz:       rec.Point.CPUFreqMHz,
			PowerW:       m.AvgPowerPerChannel,
			BandwidthMBs: m.AvgBandwidthPerBank,
			AvgLatency:   m.AvgLatency,
			TotalLatency: m.AvgTotalLatency,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// RecommendResponse is the body of GET /v1/jobs/{id}/recommend: the §IV-B
// co-design guidance recomputed from the job's sealed report.
type RecommendResponse struct {
	ID                     string  `json:"id"`
	BestPowerType          string  `json:"best_power_type"`
	BestPowerCtrlMHz       float64 `json:"best_power_ctrl_mhz"`
	BestPowerWatts         float64 `json:"best_power_watts"`
	BestEnduranceType      string  `json:"best_endurance_type"`
	BestEnduranceChannels  int     `json:"best_endurance_channels"`
	BestEnduranceCPUMHz    float64 `json:"best_endurance_cpu_mhz"`
	BestEnduranceCtrlMHz   float64 `json:"best_endurance_ctrl_mhz"`
	BestBandwidthType      string  `json:"best_bandwidth_type"`
	BestBandwidthMBs       float64 `json:"best_bandwidth_mbs"`
	BestAvgLatencyType     string  `json:"best_avg_latency_type"`
	BestAvgLatencyCycles   float64 `json:"best_avg_latency_cycles"`
	BestTotalLatencyType   string  `json:"best_total_latency_type"`
	BestTotalLatencyCycles float64 `json:"best_total_latency_cycles"`
}

// handleRecommend recomputes the recommendation set from a done job's
// sealed report. Model rankings (Table I) need a trained surrogate and are
// out of the daemon's scope, so BestModel is intentionally absent here —
// `cmd/dse -recommend` remains the full offline path.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	records, ok := s.sealedRecords(w, id)
	if !ok {
		return
	}
	fig2 := dse.BuildFigure2(records)
	if len(fig2) == 0 {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "dsed: no surviving records to recommend from"})
		return
	}
	rec := dse.Recommend(fig2, nil)
	writeJSON(w, http.StatusOK, RecommendResponse{
		ID:                     id,
		BestPowerType:          rec.BestPowerType.String(),
		BestPowerCtrlMHz:       rec.BestPowerCtrlMHz,
		BestPowerWatts:         rec.BestPowerWatts,
		BestEnduranceType:      rec.BestEnduranceType.String(),
		BestEnduranceChannels:  rec.BestEnduranceChannels,
		BestEnduranceCPUMHz:    rec.BestEnduranceCPUMHz,
		BestEnduranceCtrlMHz:   rec.BestEnduranceCtrlMHz,
		BestBandwidthType:      rec.BestBandwidthType.String(),
		BestBandwidthMBs:       rec.BestBandwidthMBs,
		BestAvgLatencyType:     rec.BestAvgLatencyType.String(),
		BestAvgLatencyCycles:   rec.BestAvgLatencyCycles,
		BestTotalLatencyType:   rec.BestTotalLatencyType.String(),
		BestTotalLatencyCycles: rec.BestTotalLatencyCycles,
	})
}
