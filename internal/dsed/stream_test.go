package dsed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"graphdse/internal/dsedclient"
)

// startDaemonOpts is startDaemon with control over queue/stream options and
// access to the Daemon itself.
func startDaemonOpts(t *testing.T, dir string, qo QueueOptions) (d *Daemon, base string, shutdown func()) {
	t.Helper()
	d, err := New(Options{
		Addr:  "127.0.0.1:0",
		Dir:   dir,
		Queue: qo,
		Scheduler: SchedulerOptions{
			JobWorkers:   1,
			SweepWorkers: 2,
			Logf:         t.Logf,
		},
		SSEHeartbeat: 200 * time.Millisecond,
		DrainTimeout: 10 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	runErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		runErr <- d.Run(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for d.Addr() == "" {
		if time.Now().After(deadline) {
			cancel()
			t.Fatal("daemon never bound a listener")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return d, "http://" + d.Addr(), func() {
		cancel()
		wg.Wait()
		if err := <-runErr; err != nil {
			t.Errorf("daemon Run: %v", err)
		}
	}
}

// checkEventSequence asserts the client-observed stream is gap-free,
// duplicate-free, and ends with exactly one terminal state event, returning
// that terminal event.
func checkEventSequence(t *testing.T, evs []dsedclient.Event, wantFirst uint64) dsedclient.Event {
	t.Helper()
	if len(evs) == 0 {
		t.Fatal("no events delivered")
	}
	next := wantFirst
	terminals := 0
	for i, ev := range evs {
		if ev.Type == "lag" {
			continue // advisory, unjournaled, carries no seq
		}
		if ev.Seq != next {
			t.Fatalf("event %d: seq %d, want %d (gap or duplicate)", i, ev.Seq, next)
		}
		next++
		if ev.Terminal() {
			terminals++
			if i != len(evs)-1 {
				t.Fatalf("terminal event at index %d of %d: stream continued past terminal", i, len(evs))
			}
		}
	}
	if terminals != 1 {
		t.Fatalf("saw %d terminal events, want exactly 1", terminals)
	}
	return evs[len(evs)-1]
}

// TestStreamEndToEndWithQueries drives a real sweep while a dsedclient
// follows its stream, then hits the pareto/recommend query endpoints of the
// sealed report.
func TestStreamEndToEndWithQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("full daemon sweep skipped in -short")
	}
	_, base, shutdown := startDaemonOpts(t, t.TempDir(), QueueOptions{})
	defer shutdown()

	spec := workloadSpec("s1", "")
	spec.Space = smallSpace()
	spec.FailureRate = 0.15 // force some per-point failure events
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	client := dsedclient.New(base, dsedclient.Options{BackoffBase: 20 * time.Millisecond})
	var evs []dsedclient.Event
	term, err := client.Follow(ctx, "s1", dsedclient.FollowOptions{
		OnEvent: func(ev dsedclient.Event) { evs = append(evs, ev) },
	})
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if term.State != "done" {
		t.Fatalf("terminal state %q (%s), want done", term.State, term.Error)
	}
	last := checkEventSequence(t, evs, 1)
	if last.Survivors == 0 {
		t.Fatalf("terminal event reports %d survivors", last.Survivors)
	}
	counts := map[string]int{}
	for _, ev := range evs {
		counts[ev.Type]++
	}
	if counts["state"] < 3 { // queued, running, done
		t.Fatalf("state events = %d, want >= 3 (%v)", counts["state"], counts)
	}
	if counts["progress"] == 0 || counts["seal"] != 1 {
		t.Fatalf("event mix %v: want progress > 0 and exactly one seal", counts)
	}
	if counts["failure"] == 0 {
		t.Fatalf("event mix %v: want failure events under FailureRate", counts)
	}

	// Resume from mid-stream: the replay must start exactly after the
	// requested position and still end with the terminal event.
	after := evs[len(evs)/2].Seq
	var resumed []dsedclient.Event
	term2, err := client.Follow(ctx, "s1", dsedclient.FollowOptions{
		After:   after,
		OnEvent: func(ev dsedclient.Event) { resumed = append(resumed, ev) },
	})
	if err != nil {
		t.Fatalf("resume follow: %v", err)
	}
	if term2.Seq != term.Seq || term2.State != "done" {
		t.Fatalf("resumed terminal %+v, want %+v", term2, term)
	}
	checkEventSequence(t, resumed, after+1)

	// Query endpoints serve from the sealed report.
	var pr ParetoResponse
	getJSON(t, base+"/v1/jobs/s1/pareto", http.StatusOK, &pr)
	if pr.ID != "s1" || len(pr.Front) == 0 || len(pr.Objectives) != 4 {
		t.Fatalf("pareto response: %+v", pr)
	}
	for _, p := range pr.Front {
		if p.ID == "" || p.PowerW <= 0 {
			t.Fatalf("pareto point: %+v", p)
		}
	}
	var rr RecommendResponse
	getJSON(t, base+"/v1/jobs/s1/recommend", http.StatusOK, &rr)
	if rr.ID != "s1" || rr.BestPowerType == "" || rr.BestBandwidthMBs <= 0 {
		t.Fatalf("recommend response: %+v", rr)
	}

	// The event-path counters surface in /statusz.
	var sz Statusz
	getJSON(t, base+"/statusz", http.StatusOK, &sz)
	if sz.Events.Written == 0 || sz.Events.ResumeHits == 0 || sz.Events.FullReplays == 0 {
		t.Fatalf("statusz events: %+v", sz.Events)
	}
}

// getJSON fetches one JSON endpoint and decodes it.
func getJSON(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestStreamSlowSubscriberNeverBlocksScheduler attaches a subscriber that
// never reads to a paced real sweep: the sweep must finish on time and the
// laggard must be evicted — the scheduler's progress is never hostage to a
// stalled consumer.
func TestStreamSlowSubscriberNeverBlocksScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("full daemon sweep skipped in -short")
	}
	d, base, shutdown := startDaemonOpts(t, t.TempDir(), QueueOptions{EventBuffer: 1})
	defer shutdown()

	spec := workloadSpec("slow", "")
	spec.Space = smallSpace()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Attach directly at the hub, with a one-event buffer, and never read.
	sub, _, err := d.Queue().Events().Subscribe("slow", 0)
	if err != nil {
		t.Fatal(err)
	}
	st := awaitState(t, base, "slow", 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("job under stalled subscriber finished %s (%s), want done", st.State, st.Error)
	}
	select {
	case <-sub.Evicted():
	case <-time.After(2 * time.Second):
		t.Fatal("stalled subscriber was never evicted")
	}
	if got := d.Queue().Events().Stats().SlowEvictions; got == 0 {
		t.Fatalf("SlowEvictions = %d, want > 0", got)
	}
}

// TestHTTPCancelRunningJob: DELETE on a running job answers 202 (the cancel
// lands at point granularity), the job converges to cancelled, and its
// stream ends with a terminal cancelled event.
func TestHTTPCancelRunningJob(t *testing.T) {
	if testing.Short() {
		t.Skip("full daemon sweep skipped in -short")
	}
	_, base, shutdown := startDaemonOpts(t, t.TempDir(), QueueOptions{})
	defer shutdown()

	spec := workloadSpec("c-run", "")
	spec.Space = smallSpace()
	spec.PointDelayMS = 150 // pace the sweep so the cancel lands mid-run
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Wait until it is actually running.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		getJSON(t, base+"/v1/jobs/c-run", http.StatusOK, &st)
		if st.State == StateRunning {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job terminal (%s) before cancel", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/c-run", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running: %d, want 202", dresp.StatusCode)
	}

	st := awaitState(t, base, "c-run", 30*time.Second)
	if st.State != StateCancelled {
		t.Fatalf("job finished %s, want cancelled", st.State)
	}
	// A second DELETE keeps the 409-on-terminal contract.
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel terminal: %d, want 409", dresp.StatusCode)
	}

	// The stream replays to a terminal cancelled event.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	client := dsedclient.New(base, dsedclient.Options{BackoffBase: 20 * time.Millisecond})
	var evs []dsedclient.Event
	term, err := client.Follow(ctx, "c-run", dsedclient.FollowOptions{
		OnEvent: func(ev dsedclient.Event) { evs = append(evs, ev) },
	})
	if err != nil {
		t.Fatalf("follow cancelled job: %v", err)
	}
	if term.State != "cancelled" {
		t.Fatalf("terminal state %q, want cancelled", term.State)
	}
	checkEventSequence(t, evs, 1)
}

// TestHTTPStreamAndQueryErrors covers the cold paths without a scheduler:
// unknown jobs 404, queries on unfinished jobs 409.
func TestHTTPStreamAndQueryErrors(t *testing.T) {
	srv, _ := testServer(t, QueueOptions{})
	h := srv.Handler()
	if w := postJob(t, h, workloadSpec("q1", "")); w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", w.Code)
	}
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/jobs/ghost/events", http.StatusNotFound},
		{"/v1/jobs/ghost/pareto", http.StatusNotFound},
		{"/v1/jobs/ghost/recommend", http.StatusNotFound},
		{"/v1/jobs/q1/pareto", http.StatusConflict},
		{"/v1/jobs/q1/recommend", http.StatusConflict},
	} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", tc.path, nil))
		if w.Code != tc.want {
			t.Fatalf("GET %s: %d, want %d", tc.path, w.Code, tc.want)
		}
	}
}

// TestSSEHandlerClosedStreamOfTerminalJob: a client that already consumed
// the whole stream reconnects after the job is terminal and gets a clean,
// immediate end-of-stream instead of an idle hang.
func TestSSEHandlerClosedStreamOfTerminalJob(t *testing.T) {
	srv, q := testServer(t, QueueOptions{})
	h := srv.Handler()
	if w := postJob(t, h, workloadSpec("t1", "")); w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", w.Code)
	}
	if _, err := q.CancelQueued("t1"); err != nil {
		t.Fatal(err)
	}
	// Full replay ends at the terminal cancelled event.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs/t1/events", nil))
	out := w.Body.String()
	if !bytes.Contains(w.Body.Bytes(), []byte(`"state":"cancelled"`)) {
		t.Fatalf("replay missing terminal event:\n%s", out)
	}
	// Resume past the end: immediate clean close, no events.
	req := httptest.NewRequest("GET", "/v1/jobs/t1/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(1<<30))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if body := w.Body.String(); bytes.Contains(w.Body.Bytes(), []byte("data:")) {
		t.Fatalf("past-end resume replayed events:\n%s", body)
	}
}
