package dse

import (
	"context"
	"fmt"
	"sort"

	"graphdse/internal/guard"
	"graphdse/internal/memsim"
	"graphdse/internal/ml"
	"graphdse/internal/sysim"
	"graphdse/internal/trace"
)

// ModelSpec names a surrogate-model factory for the comparison tables.
type ModelSpec struct {
	Name string
	New  func() ml.Regressor
}

// DefaultModels returns the four models of Table I: the linear-regression
// baseline, SVM (ε-SVR), random forest, and gradient boosting.
func DefaultModels(seed int64) []ModelSpec {
	return []ModelSpec{
		{Name: "Linear", New: func() ml.Regressor { return &ml.LinearRegression{} }},
		{Name: "SVM", New: func() ml.Regressor {
			s := ml.NewSVR()
			s.Seed = seed
			return s
		}},
		{Name: "RF", New: func() ml.Regressor {
			return &ml.RandomForest{NumTrees: 100, Seed: seed}
		}},
		{Name: "GB", New: func() ml.Regressor {
			g := ml.NewGradientBoosting()
			g.Seed = seed
			return g
		}},
	}
}

// ExtendedModels adds the models beyond the paper's four — ridge, k-NN,
// and an MLP — for the extended comparison table.
func ExtendedModels(seed int64) []ModelSpec {
	return append(DefaultModels(seed),
		ModelSpec{Name: "Ridge", New: func() ml.Regressor { return &ml.Ridge{Lambda: 1e-3} }},
		ModelSpec{Name: "KNN", New: func() ml.Regressor { return &ml.KNN{K: 5, Weighted: true} }},
		ModelSpec{Name: "MLP", New: func() ml.Regressor {
			m := ml.NewMLP()
			m.Seed = seed
			return m
		}},
	)
}

// ModelPerf is one cell group of Table I: a model's test MSE and R² on one
// memory performance metric (min-max-scaled, as in the paper).
type ModelPerf struct {
	Metric string
	Model  string
	MSE    float64
	R2     float64
}

// Figure3Series is one panel of Figure 3: the scaled ground-truth test
// series and each model's predictions, indexed by test-set position.
type Figure3Series struct {
	Metric string
	Truth  []float64
	Pred   map[string][]float64
}

// Figure2Row is one row group of Figure 2: per-(CPU, controller, channels)
// cell, the mean of each metric for each memory type over surviving
// configurations.
type Figure2Row struct {
	CPUFreqMHz  float64
	CtrlFreqMHz float64
	Channels    int
	// Mean[type][metricIndex] with metric order memsim.MetricNames.
	Mean  map[memsim.MemType][]float64
	Count map[memsim.MemType]int
}

// WorkflowOptions configures the end-to-end run. Zero values reproduce the
// paper's setup (1,024 vertices, edge factor 16, 80/20 split).
type WorkflowOptions struct {
	Vertices   int
	EdgeFactor int
	Seed       int64
	// Repeats runs BFS from this many roots to scale the trace.
	Repeats int
	// SysConfig is the system-simulator (gem5 stand-in) configuration.
	SysConfig sysim.Config
	Space     SpaceParams
	Sweep     SweepOptions
	// TestFrac is the held-out share (default 0.2).
	TestFrac  float64
	SplitSeed int64
	Models    []ModelSpec
	// Guard supervises the run: per-stage watchdogs and deadlines, a
	// whole-pipeline deadline, and a memory budget with graceful
	// degradation. The zero value supervises panics only.
	Guard guard.PipelineOptions
}

func (o *WorkflowOptions) fill() {
	if o.Vertices == 0 {
		o.Vertices = 1024
	}
	if o.EdgeFactor == 0 {
		o.EdgeFactor = 16
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	if o.SysConfig.CPUFreqMHz == 0 {
		o.SysConfig = sysim.DefaultConfig()
	}
	if o.TestFrac <= 0 || o.TestFrac >= 1 {
		o.TestFrac = 0.2
	}
	if len(o.Models) == 0 {
		o.Models = DefaultModels(o.Seed)
	}
}

// WorkflowResult bundles everything the paper reports.
type WorkflowResult struct {
	TraceEvents    int
	TraceStats     trace.Stats
	Records        []RunRecord
	SurvivorCount  int
	Dataset        *Dataset
	Table1         []ModelPerf
	Figure3        map[string]*Figure3Series
	Figure2        []Figure2Row
	Recommendation Recommendations
	// FailureLog records every configuration the sweep lost (crash, hang,
	// exhausted retries, corrupted metrics, impossible physics), mirroring
	// the paper's ~42 discarded NVMain runs.
	FailureLog []FailureRecord
	// Gate reports the physical-invariant pass between sweep and dataset.
	Gate *GateReport
	// Supervision is the guard runtime's run report: per-stage outcomes,
	// every degradation downshift, and the peak heap observed.
	Supervision *guard.Report
}

// RunWorkflow executes the full pipeline of Figure 1: workload → system
// simulation → trace → memory-simulation sweep → dataset → surrogate
// training and evaluation → recommendations.
func RunWorkflow(opts WorkflowOptions) (*WorkflowResult, error) {
	//lint:ignore ctxpropagate documented top-level wrapper: the no-ctx convenience API mints the root context for RunWorkflowContext
	return RunWorkflowContext(context.Background(), opts)
}

// The pipeline governor doubles as the trace converter's degradation hook.
var _ trace.WorkerGovernor = (*guard.Governor)(nil)

// beatingSource forwards a trace source while marking a heartbeat per
// batch, so the trace-prep stage's watchdog sees decode progress.
type beatingSource struct {
	src trace.Source
	hb  *guard.Heartbeat
}

func (b beatingSource) Next(batch []trace.Event) (int, error) {
	n, err := b.src.Next(batch)
	if n > 0 {
		b.hb.Beat()
	}
	return n, err
}

// RunWorkflowContext is RunWorkflow hosted on the guard runtime: each Figure-1
// stage (workload simulation, trace preparation, sweep, invariant gate,
// dataset build, train/evaluate, recommend) runs supervised — heartbeat
// watchdog, per-stage and whole-pipeline deadlines, panic capture — under
// opts.Guard, with the pipeline's memory governor stepping sweep parallelism
// down instead of dying. ctx aborts the sweep (which, with a checkpoint
// configured, stays resumable).
//
// The workflow degrades gracefully under sweep failures — it proceeds
// whenever the survivor count clears opts.Sweep.MinSurvivors after the
// physical-invariant gate, and otherwise returns the structured
// *SweepFailureError. On error the returned result is still non-nil and
// carries the Supervision report (plus any records the sweep completed), so
// callers can render what happened before the failure.
func RunWorkflowContext(ctx context.Context, opts WorkflowOptions) (*WorkflowResult, error) {
	opts.fill()
	p := guard.NewPipeline(opts.Guard)
	ctx, stop := p.Start(ctx)
	defer stop()
	res := &WorkflowResult{}
	err := runWorkflowStages(ctx, p, opts, res)
	res.Supervision = p.Report()
	if err != nil {
		return res, err
	}
	return res, nil
}

// runWorkflowStages executes the supervised stage sequence, filling res as
// stages complete.
func runWorkflowStages(ctx context.Context, p *guard.Pipeline, opts WorkflowOptions, res *WorkflowResult) error {
	var machine *sysim.Machine
	if err := p.Run(ctx, "workload", func(ctx context.Context, hb *guard.Heartbeat) error {
		var err error
		machine, _, err = sysim.PaperWorkloadTraceContext(ctx, opts.SysConfig,
			opts.Vertices, opts.EdgeFactor, opts.Seed, opts.Repeats, hb.Beat)
		if err != nil {
			return fmt.Errorf("system simulation: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}

	// Stream the recorded trace straight into the sweep-shared prepared
	// form: one validation/decode pass for the entire pipeline, with no
	// intermediate trace copy.
	var pt *memsim.PreparedTrace
	if err := p.Run(ctx, "trace-prep", func(ctx context.Context, hb *guard.Heartbeat) error {
		var err error
		pt, err = memsim.PrepareSource(beatingSource{machine.TraceSource(), hb})
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	res.TraceEvents = pt.Len()
	res.TraceStats = pt.Stats()

	sweepOpts := opts.Sweep
	if sweepOpts.FootprintLines == 0 {
		sweepOpts.FootprintLines = int(machine.Layout().Footprint()) / 64
	}
	if sweepOpts.Governor == nil {
		sweepOpts.Governor = p.Governor()
	}
	points := EnumerateSpace(opts.Space)
	if err := p.Run(ctx, "sweep", func(ctx context.Context, hb *guard.Heartbeat) error {
		inner := sweepOpts
		userOnPoint := sweepOpts.OnPoint
		inner.OnPoint = func(done, total int) {
			hb.Beat()
			if userOnPoint != nil {
				userOnPoint(done, total)
			}
		}
		var err error
		res.Records, err = SweepPreparedContext(ctx, pt, points, inner)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}

	// Physical-invariant gate between sweep and dataset: quarantine
	// finite-but-impossible results, then re-check the survivorship
	// contract over what remains.
	if err := p.Run(ctx, "invariant-gate", func(ctx context.Context, hb *guard.Heartbeat) error {
		var err error
		res.Gate, err = ApplyInvariantGate(res.Records, int64(res.TraceEvents))
		if err != nil {
			return err
		}
		hb.Beat()
		res.FailureLog = BuildFailureLog(res.Records)
		return CheckSurvivors(res.Records, sweepOpts.MinSurvivors)
	}); err != nil {
		return err
	}

	if err := p.Run(ctx, "dataset", func(ctx context.Context, hb *guard.Heartbeat) error {
		var err error
		res.Dataset, err = BuildDataset(res.Records)
		if err != nil {
			return err
		}
		res.SurvivorCount = res.Dataset.Len()
		return nil
	}); err != nil {
		return err
	}

	if err := p.Run(ctx, "train", func(ctx context.Context, hb *guard.Heartbeat) error {
		var err error
		res.Table1, res.Figure3, err = TrainAndEvaluateContext(ctx, res.Dataset,
			opts.Models, opts.TestFrac, opts.SplitSeed, hb.Beat)
		return err
	}); err != nil {
		return err
	}

	return p.Run(ctx, "recommend", func(ctx context.Context, hb *guard.Heartbeat) error {
		res.Figure2 = BuildFigure2(res.Records)
		res.Recommendation = Recommend(res.Figure2, res.Table1)
		return nil
	})
}

// TrainAndEvaluate fits every model on every metric (min-max scaled, 80/20
// split per the paper) and returns Table I rows plus Figure 3 series.
func TrainAndEvaluate(ds *Dataset, models []ModelSpec, testFrac float64, splitSeed int64) ([]ModelPerf, map[string]*Figure3Series, error) {
	//lint:ignore ctxpropagate documented top-level wrapper: the no-ctx convenience API mints the root context for TrainAndEvaluateContext
	return TrainAndEvaluateContext(context.Background(), ds, models, testFrac, splitSeed, nil)
}

// TrainAndEvaluateContext is TrainAndEvaluate under supervision: ctx is
// checked before every model×metric fit (the longest uninterruptible unit of
// training work) and beat, when non-nil, marks a heartbeat after each fit.
func TrainAndEvaluateContext(ctx context.Context, ds *Dataset, models []ModelSpec, testFrac float64, splitSeed int64, beat func()) ([]ModelPerf, map[string]*Figure3Series, error) {
	if ds.Len() < 5 {
		return nil, nil, fmt.Errorf("%w: %d rows", ErrNoData, ds.Len())
	}
	var table []ModelPerf
	fig3 := map[string]*Figure3Series{}
	for _, metric := range memsim.MetricNames {
		yRaw, err := ds.Metric(metric)
		if err != nil {
			return nil, nil, err
		}
		// Min-max scale features and target over the whole corpus (§IV-A.4).
		var xs ml.MinMaxScaler
		X, err := xs.FitTransform(ds.X)
		if err != nil {
			return nil, nil, err
		}
		var ys ml.VecMinMaxScaler
		if err := ys.Fit(yRaw); err != nil {
			return nil, nil, err
		}
		y := ys.Transform(yRaw)

		trX, trY, teX, teY, err := ml.TrainTestSplit(X, y, testFrac, splitSeed)
		if err != nil {
			return nil, nil, err
		}
		series := &Figure3Series{Metric: metric, Truth: teY, Pred: map[string][]float64{}}
		for _, spec := range models {
			if err := ctx.Err(); err != nil {
				return nil, nil, fmt.Errorf("dse: training cancelled before %s on %s: %w", spec.Name, metric, context.Cause(ctx))
			}
			m := spec.New()
			if err := m.Fit(trX, trY); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %w", spec.Name, metric, err)
			}
			if beat != nil {
				beat()
			}
			pred := ml.PredictBatch(m, teX)
			series.Pred[spec.Name] = pred
			table = append(table, ModelPerf{
				Metric: metric,
				Model:  spec.Name,
				MSE:    ml.MSE(teY, pred),
				R2:     ml.R2(teY, pred),
			})
		}
		fig3[metric] = series
	}
	return table, fig3, nil
}

// BuildFigure2 aggregates surviving records into the Figure 2 table.
func BuildFigure2(records []RunRecord) []Figure2Row {
	type key struct {
		cpu, ctrl float64
		ch        int
	}
	rows := map[key]*Figure2Row{}
	for _, r := range Survivors(records) {
		k := key{r.Point.CPUFreqMHz, r.Point.CtrlFreqMHz, r.Point.Channels}
		row, ok := rows[k]
		if !ok {
			row = &Figure2Row{
				CPUFreqMHz: k.cpu, CtrlFreqMHz: k.ctrl, Channels: k.ch,
				Mean:  map[memsim.MemType][]float64{},
				Count: map[memsim.MemType]int{},
			}
			rows[k] = row
		}
		vec := r.Result.MetricVector()
		acc := row.Mean[r.Point.Type]
		if acc == nil {
			acc = make([]float64, len(vec))
		}
		for i, v := range vec {
			acc[i] += v
		}
		row.Mean[r.Point.Type] = acc
		row.Count[r.Point.Type]++
	}
	out := make([]Figure2Row, 0, len(rows))
	for _, row := range rows {
		for t, acc := range row.Mean {
			n := float64(row.Count[t])
			for i := range acc {
				acc[i] /= n
			}
		}
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CPUFreqMHz != b.CPUFreqMHz {
			return a.CPUFreqMHz < b.CPUFreqMHz
		}
		if a.CtrlFreqMHz != b.CtrlFreqMHz {
			return a.CtrlFreqMHz < b.CtrlFreqMHz
		}
		return a.Channels < b.Channels
	})
	return out
}
