package dse

import (
	"context"
	"fmt"
	"sort"

	"graphdse/internal/memsim"
	"graphdse/internal/ml"
	"graphdse/internal/sysim"
	"graphdse/internal/trace"
)

// ModelSpec names a surrogate-model factory for the comparison tables.
type ModelSpec struct {
	Name string
	New  func() ml.Regressor
}

// DefaultModels returns the four models of Table I: the linear-regression
// baseline, SVM (ε-SVR), random forest, and gradient boosting.
func DefaultModels(seed int64) []ModelSpec {
	return []ModelSpec{
		{Name: "Linear", New: func() ml.Regressor { return &ml.LinearRegression{} }},
		{Name: "SVM", New: func() ml.Regressor {
			s := ml.NewSVR()
			s.Seed = seed
			return s
		}},
		{Name: "RF", New: func() ml.Regressor {
			return &ml.RandomForest{NumTrees: 100, Seed: seed}
		}},
		{Name: "GB", New: func() ml.Regressor {
			g := ml.NewGradientBoosting()
			g.Seed = seed
			return g
		}},
	}
}

// ExtendedModels adds the models beyond the paper's four — ridge, k-NN,
// and an MLP — for the extended comparison table.
func ExtendedModels(seed int64) []ModelSpec {
	return append(DefaultModels(seed),
		ModelSpec{Name: "Ridge", New: func() ml.Regressor { return &ml.Ridge{Lambda: 1e-3} }},
		ModelSpec{Name: "KNN", New: func() ml.Regressor { return &ml.KNN{K: 5, Weighted: true} }},
		ModelSpec{Name: "MLP", New: func() ml.Regressor {
			m := ml.NewMLP()
			m.Seed = seed
			return m
		}},
	)
}

// ModelPerf is one cell group of Table I: a model's test MSE and R² on one
// memory performance metric (min-max-scaled, as in the paper).
type ModelPerf struct {
	Metric string
	Model  string
	MSE    float64
	R2     float64
}

// Figure3Series is one panel of Figure 3: the scaled ground-truth test
// series and each model's predictions, indexed by test-set position.
type Figure3Series struct {
	Metric string
	Truth  []float64
	Pred   map[string][]float64
}

// Figure2Row is one row group of Figure 2: per-(CPU, controller, channels)
// cell, the mean of each metric for each memory type over surviving
// configurations.
type Figure2Row struct {
	CPUFreqMHz  float64
	CtrlFreqMHz float64
	Channels    int
	// Mean[type][metricIndex] with metric order memsim.MetricNames.
	Mean  map[memsim.MemType][]float64
	Count map[memsim.MemType]int
}

// WorkflowOptions configures the end-to-end run. Zero values reproduce the
// paper's setup (1,024 vertices, edge factor 16, 80/20 split).
type WorkflowOptions struct {
	Vertices   int
	EdgeFactor int
	Seed       int64
	// Repeats runs BFS from this many roots to scale the trace.
	Repeats int
	// SysConfig is the system-simulator (gem5 stand-in) configuration.
	SysConfig sysim.Config
	Space     SpaceParams
	Sweep     SweepOptions
	// TestFrac is the held-out share (default 0.2).
	TestFrac  float64
	SplitSeed int64
	Models    []ModelSpec
}

func (o *WorkflowOptions) fill() {
	if o.Vertices == 0 {
		o.Vertices = 1024
	}
	if o.EdgeFactor == 0 {
		o.EdgeFactor = 16
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	if o.SysConfig.CPUFreqMHz == 0 {
		o.SysConfig = sysim.DefaultConfig()
	}
	if o.TestFrac <= 0 || o.TestFrac >= 1 {
		o.TestFrac = 0.2
	}
	if len(o.Models) == 0 {
		o.Models = DefaultModels(o.Seed)
	}
}

// WorkflowResult bundles everything the paper reports.
type WorkflowResult struct {
	TraceEvents    int
	TraceStats     trace.Stats
	Records        []RunRecord
	SurvivorCount  int
	Dataset        *Dataset
	Table1         []ModelPerf
	Figure3        map[string]*Figure3Series
	Figure2        []Figure2Row
	Recommendation Recommendations
	// FailureLog records every configuration the sweep lost (crash, hang,
	// exhausted retries, corrupted metrics), mirroring the paper's ~42
	// discarded NVMain runs.
	FailureLog []FailureRecord
}

// RunWorkflow executes the full pipeline of Figure 1: workload → system
// simulation → trace → memory-simulation sweep → dataset → surrogate
// training and evaluation → recommendations.
func RunWorkflow(opts WorkflowOptions) (*WorkflowResult, error) {
	return RunWorkflowContext(context.Background(), opts)
}

// RunWorkflowContext is RunWorkflow with cancellation: ctx aborts the sweep
// (which, with a checkpoint configured, stays resumable). The workflow
// degrades gracefully under sweep failures — it proceeds whenever the
// survivor count clears opts.Sweep.MinSurvivors and otherwise returns the
// sweep's structured *SweepFailureError.
func RunWorkflowContext(ctx context.Context, opts WorkflowOptions) (*WorkflowResult, error) {
	opts.fill()
	machine, _, err := sysim.PaperWorkloadTrace(opts.SysConfig, opts.Vertices, opts.EdgeFactor, opts.Seed, opts.Repeats)
	if err != nil {
		return nil, fmt.Errorf("system simulation: %w", err)
	}
	// Stream the recorded trace straight into the sweep-shared prepared
	// form: one validation/decode pass for the entire pipeline, with no
	// intermediate trace copy.
	pt, err := memsim.PrepareSource(machine.TraceSource())
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	sweepOpts := opts.Sweep
	if sweepOpts.FootprintLines == 0 {
		sweepOpts.FootprintLines = int(machine.Layout().Footprint()) / 64
	}
	points := EnumerateSpace(opts.Space)
	records, err := SweepPreparedContext(ctx, pt, points, sweepOpts)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	ds, err := BuildDataset(records)
	if err != nil {
		return nil, err
	}
	table1, fig3, err := TrainAndEvaluate(ds, opts.Models, opts.TestFrac, opts.SplitSeed)
	if err != nil {
		return nil, err
	}
	fig2 := BuildFigure2(records)
	return &WorkflowResult{
		TraceEvents:    pt.Len(),
		TraceStats:     pt.Stats(),
		Records:        records,
		SurvivorCount:  ds.Len(),
		Dataset:        ds,
		Table1:         table1,
		Figure3:        fig3,
		Figure2:        fig2,
		Recommendation: Recommend(fig2, table1),
		FailureLog:     BuildFailureLog(records),
	}, nil
}

// TrainAndEvaluate fits every model on every metric (min-max scaled, 80/20
// split per the paper) and returns Table I rows plus Figure 3 series.
func TrainAndEvaluate(ds *Dataset, models []ModelSpec, testFrac float64, splitSeed int64) ([]ModelPerf, map[string]*Figure3Series, error) {
	if ds.Len() < 5 {
		return nil, nil, fmt.Errorf("%w: %d rows", ErrNoData, ds.Len())
	}
	var table []ModelPerf
	fig3 := map[string]*Figure3Series{}
	for _, metric := range memsim.MetricNames {
		yRaw, err := ds.Metric(metric)
		if err != nil {
			return nil, nil, err
		}
		// Min-max scale features and target over the whole corpus (§IV-A.4).
		var xs ml.MinMaxScaler
		X, err := xs.FitTransform(ds.X)
		if err != nil {
			return nil, nil, err
		}
		var ys ml.VecMinMaxScaler
		if err := ys.Fit(yRaw); err != nil {
			return nil, nil, err
		}
		y := ys.Transform(yRaw)

		trX, trY, teX, teY, err := ml.TrainTestSplit(X, y, testFrac, splitSeed)
		if err != nil {
			return nil, nil, err
		}
		series := &Figure3Series{Metric: metric, Truth: teY, Pred: map[string][]float64{}}
		for _, spec := range models {
			m := spec.New()
			if err := m.Fit(trX, trY); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %w", spec.Name, metric, err)
			}
			pred := ml.PredictBatch(m, teX)
			series.Pred[spec.Name] = pred
			table = append(table, ModelPerf{
				Metric: metric,
				Model:  spec.Name,
				MSE:    ml.MSE(teY, pred),
				R2:     ml.R2(teY, pred),
			})
		}
		fig3[metric] = series
	}
	return table, fig3, nil
}

// BuildFigure2 aggregates surviving records into the Figure 2 table.
func BuildFigure2(records []RunRecord) []Figure2Row {
	type key struct {
		cpu, ctrl float64
		ch        int
	}
	rows := map[key]*Figure2Row{}
	for _, r := range Survivors(records) {
		k := key{r.Point.CPUFreqMHz, r.Point.CtrlFreqMHz, r.Point.Channels}
		row, ok := rows[k]
		if !ok {
			row = &Figure2Row{
				CPUFreqMHz: k.cpu, CtrlFreqMHz: k.ctrl, Channels: k.ch,
				Mean:  map[memsim.MemType][]float64{},
				Count: map[memsim.MemType]int{},
			}
			rows[k] = row
		}
		vec := r.Result.MetricVector()
		acc := row.Mean[r.Point.Type]
		if acc == nil {
			acc = make([]float64, len(vec))
		}
		for i, v := range vec {
			acc[i] += v
		}
		row.Mean[r.Point.Type] = acc
		row.Count[r.Point.Type]++
	}
	out := make([]Figure2Row, 0, len(rows))
	for _, row := range rows {
		for t, acc := range row.Mean {
			n := float64(row.Count[t])
			for i := range acc {
				acc[i] /= n
			}
		}
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.CPUFreqMHz != b.CPUFreqMHz {
			return a.CPUFreqMHz < b.CPUFreqMHz
		}
		if a.CtrlFreqMHz != b.CtrlFreqMHz {
			return a.CtrlFreqMHz < b.CtrlFreqMHz
		}
		return a.Channels < b.Channels
	})
	return out
}
