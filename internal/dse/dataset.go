package dse

import (
	"errors"
	"fmt"

	"graphdse/internal/memsim"
)

// Dataset is the ML training corpus: one row per surviving configuration,
// with the six memory performance metrics as targets (§III-A: "we combine
// the memory performance parameters with the corresponding memory
// configuration parameters").
type Dataset struct {
	// X holds the raw (unscaled) feature rows; FeatureNames describes the
	// columns.
	X [][]float64
	// Y maps each metric name (memsim.MetricNames) to its raw target column.
	Y map[string][]float64
	// Points keeps the originating design points row-aligned with X.
	Points []DesignPoint
	// Quarantined counts surviving records dropped because their metric
	// vector failed validation (NaN/Inf/negative) — defense in depth behind
	// the engine's own gate.
	Quarantined int
}

// ErrNoData is returned when no surviving records are available.
var ErrNoData = errors.New("dse: no data")

// BuildDataset assembles the corpus from surviving sweep records.
func BuildDataset(records []RunRecord) (*Dataset, error) {
	survivors := Survivors(records)
	if len(survivors) == 0 {
		return nil, ErrNoData
	}
	ds := &Dataset{Y: map[string][]float64{}}
	for _, name := range memsim.MetricNames {
		ds.Y[name] = make([]float64, 0, len(survivors))
	}
	for _, r := range survivors {
		if r.Result == nil || r.Result.ValidateMetrics() != nil {
			ds.Quarantined++
			continue
		}
		ds.X = append(ds.X, r.Point.FeatureVector())
		ds.Points = append(ds.Points, r.Point)
		vec := r.Result.MetricVector()
		for mi, name := range memsim.MetricNames {
			ds.Y[name] = append(ds.Y[name], vec[mi])
		}
	}
	if len(ds.X) == 0 {
		return nil, fmt.Errorf("%w: all %d survivors quarantined", ErrNoData, ds.Quarantined)
	}
	return ds, nil
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Metric returns a target column or an error for unknown names.
func (d *Dataset) Metric(name string) ([]float64, error) {
	y, ok := d.Y[name]
	if !ok {
		return nil, fmt.Errorf("dse: unknown metric %q", name)
	}
	return y, nil
}
