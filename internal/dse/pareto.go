package dse

import (
	"fmt"

	"graphdse/internal/memsim"
)

// Objective selects one metric and a direction for multi-objective
// exploration.
type Objective struct {
	// Metric must be one of memsim.MetricNames.
	Metric string
	// Maximize inverts the default minimize direction (used for bandwidth).
	Maximize bool
}

// DefaultObjectives is the paper-motivated trade-off set: minimize power
// and both latencies, maximize bandwidth.
func DefaultObjectives() []Objective {
	return []Objective{
		{Metric: "Power"},
		{Metric: "Bandwidth", Maximize: true},
		{Metric: "AvgLatency"},
		{Metric: "TotalLatency"},
	}
}

// ParetoFront returns the non-dominated surviving records under the given
// objectives: a record is dominated when another is no worse on every
// objective and strictly better on at least one. The result preserves the
// input order.
func ParetoFront(records []RunRecord, objectives []Objective) ([]RunRecord, error) {
	if len(objectives) == 0 {
		return nil, fmt.Errorf("%w: no objectives", ErrNoData)
	}
	idx := make([]int, len(objectives))
	for i, o := range objectives {
		found := -1
		for mi, name := range memsim.MetricNames {
			if name == o.Metric {
				found = mi
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("dse: unknown objective metric %q", o.Metric)
		}
		idx[i] = found
	}
	survivors := Survivors(records)
	if len(survivors) == 0 {
		return nil, ErrNoData
	}
	// Extract objective vectors in canonical minimize orientation.
	vecs := make([][]float64, len(survivors))
	for i, r := range survivors {
		m := r.Result.MetricVector()
		v := make([]float64, len(objectives))
		for k, o := range objectives {
			val := m[idx[k]]
			if o.Maximize {
				val = -val
			}
			v[k] = val
		}
		vecs[i] = v
	}
	var front []RunRecord
	for i := range survivors {
		dominated := false
		for j := range survivors {
			if i == j {
				continue
			}
			if dominates(vecs[j], vecs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, survivors[i])
		}
	}
	return front, nil
}

// dominates reports whether a ≤ b component-wise with at least one strict
// improvement (minimization orientation).
func dominates(a, b []float64) bool {
	strict := false
	for k := range a {
		if a[k] > b[k] {
			return false
		}
		if a[k] < b[k] {
			strict = true
		}
	}
	return strict
}
