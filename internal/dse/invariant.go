package dse

import (
	"fmt"
	"sort"

	"graphdse/internal/memsim"
)

// ReasonInvariant is the failure-log class name for records quarantined by
// the physical-invariant gate (FaultInvariant.String() returns it).
const ReasonInvariant = "invariant"

// GateReport summarizes one pass of the inter-stage invariant gate.
type GateReport struct {
	// Checked counts surviving records the gate examined.
	Checked int
	// Quarantined counts records the gate failed: their metrics were finite
	// but physically impossible, and they were converted into failure
	// records (FaultInvariant) instead of flowing into the dataset.
	Quarantined int
	// MetamorphicChecks counts channel-scaling config pairs spot-checked.
	MetamorphicChecks int
	// Survivors is the record count still healthy after the gate.
	Survivors int
}

// ApplyInvariantGate is the physical-invariant gate that runs between the
// sweep and dataset-build stages. A simulation that crashes is easy to
// discard; one that completes with impossible numbers silently poisons the
// surrogate. The gate re-validates every surviving record against the
// simulator's physical envelope (memsim.ValidatePhysical) and quarantines
// violators in place: the record becomes Failed with class FaultInvariant,
// entering the failure log alongside crashes and hangs rather than aborting
// the workflow. traceEvents is the replayed trace length (0 skips the
// op-count check).
//
// The gate then runs metamorphic spot-checks over the survivors' own
// configurations — at fixed timing, more channels must never lower the
// aggregate bandwidth ceiling — to catch a miscalibrated envelope rather
// than a bad record; a violation there is returned as an error.
//
// Callers should re-check MinSurvivors afterwards via CheckSurvivors: the
// gate can push a sweep that cleared the bar back under it.
func ApplyInvariantGate(records []RunRecord, traceEvents int64) (*GateReport, error) {
	rep := &GateReport{}
	for i := range records {
		r := &records[i]
		if r.Failed || r.Result == nil {
			continue
		}
		rep.Checked++
		if err := r.Result.ValidatePhysical(traceEvents); err != nil {
			r.Failed = true
			r.Err = fmt.Errorf("dse: %s: %w", r.Point.ID(), err)
			r.FaultClass = FaultInvariant
			r.Result = nil
			rep.Quarantined++
			continue
		}
		rep.Survivors++
	}
	if err := metamorphicSpotChecks(records, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// metamorphicSpotChecks groups surviving configurations that differ only in
// channel count and verifies the gate's bandwidth envelope is monotone in
// channels within each group.
func metamorphicSpotChecks(records []RunRecord, rep *GateReport) error {
	groups := map[string][]*memsim.Config{}
	for i := range records {
		r := &records[i]
		if r.Failed || r.Result == nil {
			continue
		}
		p := r.Point
		// Everything identifying the point except its channel count.
		key := fmt.Sprintf("%s|%.0f|%.0f|%d|%d|%.2f|%v",
			p.Type, p.CPUFreqMHz, p.CtrlFreqMHz, p.TRAS, p.TRCD, p.DRAMFraction, p.HybridMode)
		groups[key] = append(groups[key], &r.Result.Config)
	}
	for _, cfgs := range groups {
		if len(cfgs) < 2 {
			continue
		}
		sort.Slice(cfgs, func(i, j int) bool { return cfgs[i].Channels < cfgs[j].Channels })
		for i := 1; i < len(cfgs); i++ {
			if cfgs[i-1].Channels == cfgs[i].Channels {
				continue
			}
			rep.MetamorphicChecks++
			if err := memsim.MetamorphicPeakCheck(cfgs[i-1], cfgs[i]); err != nil {
				return fmt.Errorf("dse: invariant gate self-check: %w", err)
			}
		}
	}
	return nil
}

// CheckSurvivors re-applies the sweep's survivorship contract after a gate
// pass: ErrAllFailed when nothing survived, a *SweepFailureError when fewer
// than minSurvivors did, nil otherwise.
func CheckSurvivors(records []RunRecord, minSurvivors int) error {
	survivors := 0
	for i := range records {
		if !records[i].Failed {
			survivors++
		}
	}
	if survivors == 0 {
		return ErrAllFailed
	}
	if minSurvivors > 0 && survivors < minSurvivors {
		return newSweepFailureError(records, survivors, minSurvivors)
	}
	return nil
}
