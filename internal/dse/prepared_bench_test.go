package dse

import (
	"reflect"
	"testing"

	"graphdse/internal/memsim"
)

// TestSweepPreparedMatchesSweep: the decode-once sweep must be
// observationally identical to the slice-based Sweep — same records, same
// metrics, same order — across the full small space.
func TestSweepPreparedMatchesSweep(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	opts := SweepOptions{Workers: 2}

	want, err := Sweep(events, points, opts)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := memsim.Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SweepPrepared(pt, points, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("records = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Point.ID() != want[i].Point.ID() {
			t.Fatalf("record %d: point %s vs %s", i, got[i].Point.ID(), want[i].Point.ID())
		}
		if !reflect.DeepEqual(got[i].Result, want[i].Result) {
			t.Fatalf("record %d (%s): results differ:\n got %+v\nwant %+v",
				i, got[i].Point.ID(), got[i].Result, want[i].Result)
		}
	}
}

func TestSweepPreparedEmptyTrace(t *testing.T) {
	pt, err := memsim.Prepare(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepPrepared(pt, EnumerateSpace(smallSpace()), SweepOptions{}); err != memsim.ErrEmptyTrace {
		t.Fatalf("err = %v, want ErrEmptyTrace", err)
	}
	if _, err := SweepPrepared(nil, EnumerateSpace(smallSpace()), SweepOptions{}); err != memsim.ErrEmptyTrace {
		t.Fatalf("nil prepared: err = %v, want ErrEmptyTrace", err)
	}
}

// benchPoints is a small but mixed slice of the space so per-point cost
// differences (validate+decode per point vs decode once) dominate the
// benchmark, as they do over the paper's 416-point sweep.
func benchPoints() []DesignPoint {
	return EnumerateSpace(SpaceParams{
		CPUFreqsMHz:  []float64{2000},
		CtrlFreqsMHz: []float64{400},
		Channels:     []int{2},
		Fractions:    []float64{0.25, 0.5},
	})
}

// BenchmarkSweepSlice emulates the pre-refactor sweep: every design point
// re-validates and re-decodes the full event slice via memsim.RunTrace.
func BenchmarkSweepSlice(b *testing.B) {
	events := smallTrace(b)
	points := benchPoints()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range points {
			if _, err := memsim.RunTrace(p.Config(0), events); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepPrepared is the post-refactor path: Prepare once, replay
// the immutable PreparedTrace at every point. Acceptance requires lower
// ns/op and allocs/op than BenchmarkSweepSlice.
func BenchmarkSweepPrepared(b *testing.B) {
	events := smallTrace(b)
	pt, err := memsim.Prepare(events)
	if err != nil {
		b.Fatal(err)
	}
	points := benchPoints()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range points {
			if _, err := memsim.RunPreparedTrace(p.Config(0), pt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepEndToEnd measures the whole engine (worker pool included)
// on the prepared path, the configuration the workflow now runs.
func BenchmarkSweepEndToEnd(b *testing.B) {
	events := smallTrace(b)
	pt, err := memsim.Prepare(events)
	if err != nil {
		b.Fatal(err)
	}
	points := benchPoints()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SweepPrepared(pt, points, SweepOptions{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
