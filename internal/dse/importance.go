package dse

import (
	"fmt"
	"io"

	"graphdse/internal/ml"
)

// FeatureImportanceReport trains a random-forest surrogate per metric and
// computes permutation importances over the configuration features,
// quantifying which memory parameters drive each performance metric (the
// variable-importance analysis the paper cites Grömping for).
func FeatureImportanceReport(ds *Dataset, metric string, seed int64) ([]ml.FeatureImportance, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, ErrNoData
	}
	y, err := ds.Metric(metric)
	if err != nil {
		return nil, err
	}
	var xs ml.MinMaxScaler
	X, err := xs.FitTransform(ds.X)
	if err != nil {
		return nil, err
	}
	var ys ml.VecMinMaxScaler
	if err := ys.Fit(y); err != nil {
		return nil, err
	}
	sy := ys.Transform(y)
	m := &ml.RandomForest{NumTrees: 100, Seed: seed}
	if err := m.Fit(X, sy); err != nil {
		return nil, err
	}
	return ml.PermutationImportance(m, X, sy, FeatureNames, 5, seed)
}

// RenderImportance writes a per-metric importance table.
func RenderImportance(w io.Writer, metric string, imps []ml.FeatureImportance) {
	fmt.Fprintf(w, "# Feature importance for %s (permutation, RF surrogate)\n", metric)
	for _, imp := range imps {
		fmt.Fprintf(w, "  %-14s %+.4e\n", imp.Name, imp.Importance)
	}
}
