package dse

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"graphdse/internal/artifact"
	"graphdse/internal/memsim"
)

// DatasetFormatTag and DatasetFormatVersion identify the checksummed dataset
// export container (CSV body wrapped in the artifact framing).
const (
	DatasetFormatTag     = "DSEDATA"
	DatasetFormatVersion = 2
)

// WriteCSV exports the dataset as CSV: configuration features followed by
// the six metric targets, one row per surviving configuration — the durable
// artifact other analysis tooling can consume.
func WriteCSV(w io.Writer, ds *Dataset) error {
	if ds == nil || ds.Len() == 0 {
		return ErrNoData
	}
	cw := csv.NewWriter(w)
	header := append(append([]string{}, FeatureNames...), memsim.MetricNames...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < ds.Len(); i++ {
		row := make([]string, 0, len(header))
		for _, v := range ds.X[i] {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		for _, name := range memsim.MetricNames {
			row = append(row, strconv.FormatFloat(ds.Y[name][i], 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVChecked exports the same CSV body wrapped in the checksummed
// artifact container, so downstream loads can prove the dataset was neither
// truncated nor bit-rotted. ReadCSV auto-detects both forms.
func WriteCSVChecked(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	aw, err := artifact.NewWriter(bw, DatasetFormatTag, DatasetFormatVersion)
	if err != nil {
		return err
	}
	if err := WriteCSV(aw, ds); err != nil {
		return err
	}
	if err := aw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV loads a dataset previously written by WriteCSV or WriteCSVChecked,
// auto-detected from the leading bytes. In the checked path every byte is
// checksum-verified (including the sealed trailer) before rows are trusted.
func ReadCSV(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(artifact.Magic))
	if err == nil && [8]byte(head) == artifact.Magic {
		ar, err := artifact.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("dse: %w", err)
		}
		if ar.Format() != DatasetFormatTag {
			return nil, fmt.Errorf("dse: container holds %q, want %q", ar.Format(), DatasetFormatTag)
		}
		if ar.Version() > DatasetFormatVersion {
			return nil, fmt.Errorf("dse: dataset format version %d newer than supported %d", ar.Version(), DatasetFormatVersion)
		}
		ds, err := readCSVBody(ar)
		if err != nil {
			return nil, err
		}
		// Drain to force the sealed-trailer verification even though the CSV
		// reader stopped at the last row.
		if _, err := io.Copy(io.Discard, ar); err != nil {
			return nil, fmt.Errorf("dse: %w", err)
		}
		return ds, nil
	}
	return readCSVBody(br)
}

func readCSVBody(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dse: reading csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, ErrNoData
	}
	header := rows[0]
	wantCols := len(FeatureNames) + len(memsim.MetricNames)
	if len(header) != wantCols {
		return nil, fmt.Errorf("dse: csv has %d columns, want %d", len(header), wantCols)
	}
	ds := &Dataset{Y: map[string][]float64{}}
	for _, name := range memsim.MetricNames {
		ds.Y[name] = nil
	}
	nf := len(FeatureNames)
	for ri, row := range rows[1:] {
		if len(row) != wantCols {
			return nil, fmt.Errorf("dse: csv row %d has %d columns", ri+2, len(row))
		}
		x := make([]float64, nf)
		for j := 0; j < nf; j++ {
			x[j], err = strconv.ParseFloat(row[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dse: csv row %d col %d: %w", ri+2, j+1, err)
			}
		}
		ds.X = append(ds.X, x)
		for mi, name := range memsim.MetricNames {
			v, err := strconv.ParseFloat(row[nf+mi], 64)
			if err != nil {
				return nil, fmt.Errorf("dse: csv row %d metric %s: %w", ri+2, name, err)
			}
			ds.Y[name] = append(ds.Y[name], v)
		}
	}
	return ds, nil
}
