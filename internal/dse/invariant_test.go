package dse

import (
	"errors"
	"strings"
	"testing"

	"graphdse/internal/memsim"
)

// gateSpace spans two channel counts so the metamorphic spot-checks have
// pairs to compare.
func gateSpace() SpaceParams {
	return SpaceParams{
		CPUFreqsMHz:  []float64{2000},
		CtrlFreqsMHz: []float64{400, 666},
		Channels:     []int{2, 4},
		Fractions:    []float64{0.25},
	}
}

func TestInvariantGateQuarantinesImpossibleMetrics(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(gateSpace())
	records, err := Sweep(events, points, SweepOptions{
		Faults: &FaultInjector{Rules: []FaultRule{{Class: FaultInvariant, Rate: 0.4, Seed: 3}}},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	// The poison survives the sweep's own NaN gate…
	poisonedBefore := 0
	for _, r := range records {
		if r.Failed {
			t.Fatalf("%s failed before the gate: %v", r.Point.ID(), r.Err)
		}
		if r.Result.AvgBandwidthPerBank > memsim.PeakBandwidthPerBankMBs(&r.Result.Config) {
			poisonedBefore++
		}
	}
	if poisonedBefore == 0 {
		t.Fatal("fault injection produced no physically impossible records; raise the rate")
	}

	rep, err := ApplyInvariantGate(records, int64(len(events)))
	if err != nil {
		t.Fatalf("gate: %v", err)
	}
	if rep.Quarantined != poisonedBefore {
		t.Fatalf("quarantined %d, want %d", rep.Quarantined, poisonedBefore)
	}
	if rep.Checked != len(points) || rep.Survivors != len(points)-poisonedBefore {
		t.Fatalf("report = %+v", rep)
	}
	if rep.MetamorphicChecks == 0 {
		t.Fatal("no metamorphic spot-checks ran over a two-channel-count space")
	}

	// Violators land in the failure log under ReasonInvariant, with the
	// cause preserved…
	quarantined := 0
	for _, r := range records {
		if !r.Failed {
			continue
		}
		quarantined++
		if r.FaultClass != FaultInvariant {
			t.Fatalf("%s quarantined with class %v", r.Point.ID(), r.FaultClass)
		}
		if !errors.Is(r.Err, memsim.ErrPhysicalInvariant) {
			t.Fatalf("%s: cause lost: %v", r.Point.ID(), r.Err)
		}
		if r.Result != nil {
			t.Fatalf("%s keeps a poisoned result after quarantine", r.Point.ID())
		}
	}
	if quarantined != poisonedBefore {
		t.Fatalf("failure log has %d invariant records, want %d", quarantined, poisonedBefore)
	}
	log := BuildFailureLog(records)
	for _, f := range log {
		if f.Class != ReasonInvariant {
			t.Fatalf("failure log class %q, want %q", f.Class, ReasonInvariant)
		}
	}

	// …and the workflow continues: survivors clear MinSurvivors and still
	// build a dataset.
	if err := CheckSurvivors(records, rep.Survivors); err != nil {
		t.Fatalf("survivors fail their own bar: %v", err)
	}
	ds, err := BuildDataset(records)
	if err != nil {
		t.Fatalf("dataset after gate: %v", err)
	}
	if ds.Len() != rep.Survivors {
		t.Fatalf("dataset rows = %d, want %d", ds.Len(), rep.Survivors)
	}
	// The round-trip survives the checkpoint class vocabulary too.
	if got := parseFaultClass(FaultInvariant.String()); got != FaultInvariant {
		t.Fatalf("parseFaultClass round-trip = %v", got)
	}
}

func TestInvariantGateCleanSweepUntouched(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(gateSpace())
	records, err := Sweep(events, points, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ApplyInvariantGate(records, int64(len(events)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 0 || rep.Survivors != len(points) {
		t.Fatalf("healthy sweep damaged by the gate: %+v", rep)
	}
}

func TestCheckSurvivorsContract(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(gateSpace())
	records, err := Sweep(events, points, SweepOptions{
		Faults: &FaultInjector{Rules: []FaultRule{{Class: FaultInvariant, Rate: 0.4, Seed: 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ApplyInvariantGate(records, int64(len(events)))
	if err != nil {
		t.Fatal(err)
	}
	// Demanding more survivors than remain reports the structured failure,
	// with the quarantine visible in its class counts.
	err = CheckSurvivors(records, rep.Survivors+1)
	var sf *SweepFailureError
	if !errors.As(err, &sf) {
		t.Fatalf("err = %v, want *SweepFailureError", err)
	}
	if sf.ByClass[ReasonInvariant] != rep.Quarantined {
		t.Fatalf("ByClass = %v, want %d invariant", sf.ByClass, rep.Quarantined)
	}
	if !strings.Contains(sf.Error(), ReasonInvariant) {
		t.Fatalf("error does not surface the class: %v", sf)
	}
	// Everything quarantined → ErrAllFailed.
	for i := range records {
		records[i].Failed = true
	}
	if err := CheckSurvivors(records, 0); !errors.Is(err, ErrAllFailed) {
		t.Fatalf("err = %v, want ErrAllFailed", err)
	}
}
