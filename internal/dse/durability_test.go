package dse

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphdse/internal/artifact"
)

// writeCheckpointLines runs a clean checkpointed sweep and returns its lines
// plus the design space, the raw material for damage scenarios.
func writeCheckpointLines(t *testing.T) ([]string, []DesignPoint, string) {
	t.Helper()
	events := smallTrace(t)
	points := EnumerateSpace(tinySpace())
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, err := Sweep(events, points, SweepOptions{CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimSpace(string(data)), "\n"), points, path
}

// TestCheckpointTornTailTolerated is the satellite acceptance case: a crash
// mid-append leaves a final line without its newline (possibly truncated);
// both permissive and strict loads must keep every complete record and flag
// the torn tail instead of failing.
func TestCheckpointTornTailTolerated(t *testing.T) {
	lines, points, path := writeCheckpointLines(t)
	n := len(lines)

	// Case 1: final line is complete but missing its newline.
	body := strings.Join(lines, "\n") // no trailing \n
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, strict := range []bool{false, true} {
		loaded, rep, err := LoadCheckpointReport(path, points, strict)
		if err != nil {
			t.Fatalf("strict=%v: complete-but-unterminated tail rejected: %v", strict, err)
		}
		if len(loaded) != n || rep.Loaded != int64(n) || rep.Skipped != 0 {
			t.Fatalf("strict=%v: loaded %d/%d, skipped %d", strict, len(loaded), n, rep.Skipped)
		}
		if !rep.TornTail || rep.Clean() {
			t.Fatalf("strict=%v: torn tail not flagged: %+v", strict, rep)
		}
	}

	// Case 2: final line is truncated mid-record (the classic kill -9 tear).
	torn := strings.Join(lines[:n-1], "\n") + "\n" + lines[n-1][:len(lines[n-1])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, strict := range []bool{false, true} {
		loaded, rep, err := LoadCheckpointReport(path, points, strict)
		if err != nil {
			t.Fatalf("strict=%v: torn final line must be tolerated, got %v", strict, err)
		}
		if len(loaded) != n-1 || rep.Skipped != 1 || !rep.TornTail {
			t.Fatalf("strict=%v: loaded=%d skipped=%d torn=%v, want %d/1/true",
				strict, len(loaded), rep.Skipped, rep.TornTail, n-1)
		}
		if len(rep.Sample) == 0 || !strings.Contains(rep.Sample[0], "torn final line") {
			t.Fatalf("strict=%v: salvage note missing: %v", strict, rep.Sample)
		}
		if !strings.Contains(rep.String(), "torn final line") {
			t.Fatalf("strict=%v: report string lacks torn-tail note: %s", strict, rep)
		}
	}
}

// TestCheckpointStrictInteriorCorruption: strict mode fails on a malformed
// interior line that permissive mode skips.
func TestCheckpointStrictInteriorCorruption(t *testing.T) {
	lines, points, path := writeCheckpointLines(t)
	lines[1] = `{"id":"not-a-real-point"}`
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, rep, err := LoadCheckpointReport(path, points, false)
	if err != nil {
		t.Fatalf("permissive load failed: %v", err)
	}
	if len(loaded) != len(lines)-1 || rep.Skipped != 1 || rep.TornTail {
		t.Fatalf("permissive: loaded=%d skipped=%d torn=%v", len(loaded), rep.Skipped, rep.TornTail)
	}

	_, rep, err = LoadCheckpointReport(path, points, true)
	if err == nil {
		t.Fatal("strict load accepted malformed interior line")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("strict error does not name the line: %v", err)
	}
	if rep.Skipped != 1 {
		t.Fatalf("strict report skipped=%d, want 1", rep.Skipped)
	}
}

// TestSweepResumeSalvageCallback: a resumed sweep over a damaged checkpoint
// reports the salvage through OnCheckpointSalvage and still converges.
func TestSweepResumeSalvageCallback(t *testing.T) {
	lines, points, path := writeCheckpointLines(t)
	// Tear the tail so resume has something to report.
	torn := strings.Join(lines[:len(lines)-1], "\n") + "\n" + lines[len(lines)-1][:3]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	var got *CheckpointReport
	records, err := Sweep(smallTrace(t), points, SweepOptions{
		CheckpointPath:      path,
		Resume:              true,
		OnCheckpointSalvage: func(r *CheckpointReport) { got = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("salvage callback never fired")
	}
	if !got.TornTail || got.Skipped != 1 {
		t.Fatalf("callback report %+v, want torn tail with 1 skip", got)
	}
	if len(records) != len(points) {
		t.Fatalf("resumed sweep produced %d records, want %d", len(records), len(points))
	}
}

// TestCSVCheckedRoundTripAndCorruption: the checksummed dataset container
// round-trips, rejects every single-byte flip and every truncation, and the
// plain-CSV path still works through the same auto-detecting reader.
func TestCSVCheckedRoundTripAndCorruption(t *testing.T) {
	events := smallTrace(t)
	records, err := Sweep(events, EnumerateSpace(tinySpace()), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSVChecked(&buf, ds); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, artifact.Magic[:]) {
		t.Fatal("WriteCSVChecked did not emit the container magic")
	}
	got, err := ReadCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("checked round trip rows = %d, want %d", got.Len(), ds.Len())
	}
	for i := range data {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0x01
		if _, err := ReadCSV(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("bit flip at byte %d/%d went undetected", i, len(data))
		}
	}
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := ReadCSV(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", cut, len(data))
		}
	}
	// Wrong container format must be rejected.
	var other bytes.Buffer
	aw, err := artifact.NewWriter(&other, "OTHERFMT", 1)
	if err != nil {
		t.Fatal(err)
	}
	aw.Write([]byte("x,y\n1,2\n"))
	aw.Close()
	if _, err := ReadCSV(bytes.NewReader(other.Bytes())); err == nil {
		t.Fatal("wrong container format not rejected")
	}
}
