// Package dse implements the paper's design-space-exploration workflow: it
// enumerates the 416-configuration memory design space (§IV-A.2), sweeps a
// workload trace through the memory simulator (with the paper's observed
// ~10% simulation-failure rate reproducible as failure injection), assembles
// the ML dataset, trains and compares the four surrogate models (Table I),
// produces the Figure 2 summary table and Figure 3 prediction series, and
// derives the paper's co-design recommendations.
package dse

import (
	"fmt"

	"graphdse/internal/memsim"
)

// DesignPoint is one row of the design space: the memory configuration
// parameters the paper treats as ML features.
type DesignPoint struct {
	Type         memsim.MemType
	CPUFreqMHz   float64
	CtrlFreqMHz  float64
	Channels     int
	TRAS         uint64
	TRCD         uint64
	DRAMFraction float64 // hybrid only; 0 otherwise
	// HybridMode distinguishes the two hybrid organizations (cache vs flat
	// address partition) explored for hybrid points.
	HybridMode memsim.HybridKind
}

// ID renders a stable, human-readable identifier.
func (p DesignPoint) ID() string {
	id := fmt.Sprintf("%s-cpu%.0f-ctrl%.0f-ch%d-tRAS%d-tRCD%d-f%.2f",
		p.Type.Short(), p.CPUFreqMHz, p.CtrlFreqMHz, p.Channels, p.TRAS, p.TRCD, p.DRAMFraction)
	if p.Type == memsim.Hybrid {
		id += "-" + p.HybridMode.String()
	}
	return id
}

// FeatureNames lists the predictor variables, in FeatureVector order.
var FeatureNames = []string{
	"CPUFreq", "ControlFreq", "nCh", "tRAS", "tRCD", "DRAMFraction",
	"isDRAM", "isNVM", "isHybrid", "hybridFlat",
}

// FeatureVector encodes the point for ML training: numeric configuration
// parameters plus a one-hot memory-type encoding.
func (p DesignPoint) FeatureVector() []float64 {
	var d, n, h float64
	switch p.Type {
	case memsim.DRAM:
		d = 1
	case memsim.NVM:
		n = 1
	case memsim.Hybrid:
		h = 1
	}
	var flat float64
	if p.Type == memsim.Hybrid && p.HybridMode == memsim.HybridFlat {
		flat = 1
	}
	return []float64{
		p.CPUFreqMHz, p.CtrlFreqMHz, float64(p.Channels),
		float64(p.TRAS), float64(p.TRCD), p.DRAMFraction, d, n, h, flat,
	}
}

// SpaceParams controls design-space enumeration. Zero values default to the
// paper's setup.
type SpaceParams struct {
	CPUFreqsMHz  []float64 // default {2000, 3000, 5000, 6500}
	CtrlFreqsMHz []float64 // default {400, 666, 1250, 1600}
	Channels     []int     // default {2, 4}
	// Fractions are the hybrid DRAM fractions cycled across the hybrid tRCD
	// sweep (the paper's "fraction of memory" parameter).
	Fractions []float64 // default {0.25, 0.5, 0.75}
}

func (sp *SpaceParams) fill() {
	if len(sp.CPUFreqsMHz) == 0 {
		sp.CPUFreqsMHz = []float64{2000, 3000, 5000, 6500}
	}
	if len(sp.CtrlFreqsMHz) == 0 {
		sp.CtrlFreqsMHz = []float64{400, 666, 1250, 1600}
	}
	if len(sp.Channels) == 0 {
		sp.Channels = []int{2, 4}
	}
	if len(sp.Fractions) == 0 {
		sp.Fractions = []float64{0.0625, 0.125, 0.25}
	}
}

// EnumerateSpace builds the paper's design space. With the default
// parameters it contains exactly 416 configurations: for each of the 32
// (CPU × controller × channels) cells, one DRAM config (tRAS=24, tRCD=9),
// six NVM configs (the per-frequency tRCD sweep, tRAS=0), and six hybrid
// configs (the same tRCD sweep with DRAM fractions cycled).
func EnumerateSpace(sp SpaceParams) []DesignPoint {
	sp.fill()
	var points []DesignPoint
	for _, cpu := range sp.CPUFreqsMHz {
		for _, ctrl := range sp.CtrlFreqsMHz {
			for _, ch := range sp.Channels {
				dt := memsim.DRAMTiming()
				points = append(points, DesignPoint{
					Type: memsim.DRAM, CPUFreqMHz: cpu, CtrlFreqMHz: ctrl,
					Channels: ch, TRAS: dt.TRAS, TRCD: dt.TRCD,
				})
				sweep := memsim.NVMTRCDSweep(ctrl)
				for _, trcd := range sweep {
					points = append(points, DesignPoint{
						Type: memsim.NVM, CPUFreqMHz: cpu, CtrlFreqMHz: ctrl,
						Channels: ch, TRAS: 0, TRCD: trcd,
					})
				}
				for i, trcd := range sweep {
					mode := memsim.HybridCache
					if i%2 == 1 {
						mode = memsim.HybridFlat
					}
					points = append(points, DesignPoint{
						Type: memsim.Hybrid, CPUFreqMHz: cpu, CtrlFreqMHz: ctrl,
						Channels: ch, TRAS: 0, TRCD: trcd,
						DRAMFraction: sp.Fractions[i%len(sp.Fractions)],
						HybridMode:   mode,
					})
				}
			}
		}
	}
	return points
}

// Config materializes the memsim configuration for a design point.
// footprintLines sizes hybrid DRAM caches as DRAMFraction of the workload
// footprint (in cache lines); pass 0 to use the nominal-capacity default.
func (p DesignPoint) Config(footprintLines int) memsim.Config {
	switch p.Type {
	case memsim.DRAM:
		return memsim.NewDRAMConfig(p.Channels, p.CPUFreqMHz, p.CtrlFreqMHz)
	case memsim.NVM:
		return memsim.NewNVMConfig(p.Channels, p.CPUFreqMHz, p.CtrlFreqMHz, p.TRCD)
	default:
		c := memsim.NewHybridConfig(p.Channels, p.CPUFreqMHz, p.CtrlFreqMHz, p.TRCD, p.DRAMFraction)
		c.HybridMode = p.HybridMode
		if p.HybridMode == memsim.HybridCache && footprintLines > 0 {
			c.CacheLines = int(p.DRAMFraction * float64(footprintLines))
			if c.CacheLines < 64 {
				c.CacheLines = 64
			}
		}
		return c
	}
}
