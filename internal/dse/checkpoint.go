package dse

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"graphdse/internal/artifact"
	"graphdse/internal/memsim"
)

// checkpointRecord is the JSON-lines on-disk form of one terminal
// RunRecord. Records are keyed by the point's stable ID; the full
// DesignPoint is reconstructed from the live design space on load, so a
// checkpoint stays valid across process restarts as long as the space
// enumeration is unchanged.
type checkpointRecord struct {
	ID       string `json:"id"`
	Failed   bool   `json:"failed,omitempty"`
	Class    string `json:"class,omitempty"`
	Attempts int    `json:"attempts"`
	Err      string `json:"err,omitempty"`
	// Result holds the full simulator output for survivors. LifetimeInf
	// flags a +Inf LifetimeYears (write-free runs), which JSON cannot
	// encode directly.
	Result      *memsim.Result `json:"result,omitempty"`
	LifetimeInf bool           `json:"lifetime_inf,omitempty"`
}

// EncodeRecord renders one terminal record as its canonical checkpoint
// line (no trailing newline). Deterministic for a given record, which is
// what makes resumed sweeps byte-comparable to uninterrupted ones.
func EncodeRecord(r RunRecord) ([]byte, error) {
	cr := checkpointRecord{
		ID:       r.Point.ID(),
		Failed:   r.Failed,
		Attempts: r.Attempts,
	}
	if r.Failed {
		cr.Class = r.FaultClass.String()
		if r.Err != nil {
			cr.Err = r.Err.Error()
		}
	} else if r.Result != nil {
		res := *r.Result
		if math.IsInf(res.LifetimeYears, 1) {
			res.LifetimeYears = 0
			cr.LifetimeInf = true
		}
		cr.Result = &res
	}
	return json.Marshal(cr)
}

// CanonicalRecords renders terminal records in their canonical checkpoint
// encoding, sorted by point ID. Because EncodeRecord is deterministic and
// records adopted from a checkpoint round-trip through the same encoding,
// the canonical form of a resumed sweep is byte-identical to that of an
// uninterrupted one — the property the daemon's crash-recovery contract
// (and its subprocess tests) is built on.
func CanonicalRecords(records []RunRecord) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, 0, len(records))
	for _, r := range records {
		line, err := EncodeRecord(r)
		if err != nil {
			return nil, err
		}
		out = append(out, json.RawMessage(line))
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i], out[j]) < 0 })
	return out, nil
}

// DecodeCanonicalRecords parses canonical record lines — the encoding
// CanonicalRecords produces and a sealed daemon report carries — back into
// RunRecords against the design space they were swept from. It is the read
// side of the daemon's query endpoints: Pareto fronts and recommendations
// are recomputed from the sealed report rather than from live sweep state.
// Unknown point IDs and structurally invalid lines are rejected outright;
// a sealed report is never salvaged, because its seal asserts completeness.
func DecodeCanonicalRecords(lines []json.RawMessage, points []DesignPoint) ([]RunRecord, error) {
	byID := make(map[string]DesignPoint, len(points))
	for _, p := range points {
		byID[p.ID()] = p
	}
	out := make([]RunRecord, 0, len(lines))
	for i, line := range lines {
		rec, err := decodeRecord(line, byID)
		if err != nil {
			return nil, fmt.Errorf("dse: canonical record %d: %w", i, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// decodeRecord parses one checkpoint line back into a RunRecord. byID maps
// point IDs of the live design space; lines for unknown points, survivor
// lines without a result, and survivor results failing metric validation
// are all rejected as corrupt.
func decodeRecord(line []byte, byID map[string]DesignPoint) (RunRecord, error) {
	var cr checkpointRecord
	if err := json.Unmarshal(line, &cr); err != nil {
		return RunRecord{}, err
	}
	if cr.ID == "" {
		return RunRecord{}, errors.New("dse: checkpoint line missing id")
	}
	p, ok := byID[cr.ID]
	if !ok {
		return RunRecord{}, fmt.Errorf("dse: checkpoint id %q not in design space", cr.ID)
	}
	rec := RunRecord{
		Point:          p,
		Failed:         cr.Failed,
		Attempts:       cr.Attempts,
		FromCheckpoint: true,
	}
	if cr.Failed {
		rec.FaultClass = parseFaultClass(cr.Class)
		if cr.Err != "" {
			rec.Err = errors.New(cr.Err)
		}
		return rec, nil
	}
	if cr.Result == nil {
		return RunRecord{}, fmt.Errorf("dse: checkpoint survivor %q has no result", cr.ID)
	}
	if cr.LifetimeInf {
		cr.Result.LifetimeYears = math.Inf(1)
	}
	if err := cr.Result.ValidateMetrics(); err != nil {
		return RunRecord{}, fmt.Errorf("dse: checkpoint survivor %q: %w", cr.ID, err)
	}
	rec.Result = cr.Result
	return rec, nil
}

// CheckpointReport accounts for what a checkpoint load kept and dropped, so
// a resumed sweep can say exactly how much work a damaged checkpoint costs.
type CheckpointReport struct {
	Lines    int64 // non-empty lines seen
	Loaded   int64 // lines decoded into usable records
	Skipped  int64 // corrupt/stale lines dropped (re-run on resume)
	TornTail bool  // final line had no newline (torn append)
	// Sample quotes the first few skip reasons for diagnostics.
	Sample []string
}

const maxCheckpointSample = 8

func (r *CheckpointReport) addSkip(lineNo int64, err error) {
	r.Skipped++
	if len(r.Sample) < maxCheckpointSample {
		r.Sample = append(r.Sample, fmt.Sprintf("line %d: %v", lineNo, err))
	}
}

// Clean reports whether every line loaded and the file ended on a newline.
func (r *CheckpointReport) Clean() bool { return r.Skipped == 0 && !r.TornTail }

// String renders a one-line human-readable salvage note.
func (r *CheckpointReport) String() string {
	s := fmt.Sprintf("checkpoint: %d/%d lines loaded", r.Loaded, r.Lines)
	if r.Skipped > 0 {
		s += fmt.Sprintf(", %d skipped (will re-run)", r.Skipped)
	}
	if r.TornTail {
		s += ", torn final line"
	}
	return s
}

// LoadCheckpoint reads a JSON-lines checkpoint and returns the usable
// records keyed by point ID plus the number of corrupt/stale lines skipped.
// Corrupt lines (truncated writes, garbage, unknown points, invalid
// metrics) are skipped — resume simply re-runs those points. When the same
// point appears on multiple lines the last one wins.
func LoadCheckpoint(path string, points []DesignPoint) (map[string]RunRecord, int, error) {
	out, rep, err := LoadCheckpointReport(path, points, false)
	return out, int(rep.Skipped), err
}

// LoadCheckpointReport is LoadCheckpoint with full salvage accounting and a
// strict mode. Permissive (strict=false) drops any undecodable line; strict
// fails on the first one — except a torn final line (no trailing newline),
// the signature of a crash mid-append, which is tolerated and flagged in
// the report in both modes because it is exactly the damage checkpoints
// exist to absorb.
func LoadCheckpointReport(path string, points []DesignPoint, strict bool) (map[string]RunRecord, *CheckpointReport, error) {
	return LoadCheckpointReportFS(artifact.OS, path, points, strict)
}

// LoadCheckpointReportFS is LoadCheckpointReport against an explicit
// filesystem (the daemon threads its spool FS through here).
func LoadCheckpointReportFS(fsys artifact.FS, path string, points []DesignPoint, strict bool) (map[string]RunRecord, *CheckpointReport, error) {
	rep := &CheckpointReport{}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, rep, err
	}
	defer f.Close()
	byID := make(map[string]DesignPoint, len(points))
	for _, p := range points {
		byID[p.ID()] = p
	}
	out := map[string]RunRecord{}
	// Read lines manually: bufio.Scanner hides whether the final line was
	// newline-terminated, which is the torn-tail signal.
	br := bufio.NewReaderSize(f, 64*1024)
	var lineNo int64
	for {
		line, rerr := br.ReadBytes('\n')
		terminated := rerr == nil
		if rerr != nil && rerr != io.EOF {
			return out, rep, rerr
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			lineNo++
			rep.Lines++
			rec, derr := decodeRecord(trimmed, byID)
			switch {
			case derr == nil:
				rep.Loaded++
				out[rec.Point.ID()] = rec
				if !terminated {
					// Complete record, missing only its newline.
					rep.TornTail = true
				}
			case !terminated:
				// Torn final line: tolerated in both modes.
				rep.TornTail = true
				rep.addSkip(lineNo, fmt.Errorf("torn final line: %w", derr))
			case strict:
				rep.addSkip(lineNo, derr)
				return out, rep, fmt.Errorf("dse: checkpoint line %d: %w", lineNo, derr)
			default:
				rep.addSkip(lineNo, derr)
			}
		}
		if rerr == io.EOF {
			return out, rep, nil
		}
	}
}

// checkpointWriter appends terminal records to the checkpoint file, one
// JSON line per record, each written in a single Write call so concurrent
// workers never interleave partial lines.
type checkpointWriter struct {
	mu sync.Mutex
	f  artifact.File
}

// openCheckpoint opens the checkpoint for appending through fsys; without
// resume the file is truncated so a fresh sweep starts clean.
func openCheckpoint(fsys artifact.FS, path string, resume bool) (*checkpointWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := fsys.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &checkpointWriter{f: f}, nil
}

// Append writes one record. Errors are returned but the sweep treats the
// checkpoint as best-effort: a failed append degrades resumability, not
// correctness.
func (w *checkpointWriter) Append(r RunRecord) error {
	line, err := EncodeRecord(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err = w.f.Write(line)
	return err
}

func (w *checkpointWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
