package dse

import (
	"fmt"

	"graphdse/internal/memsim"
	"graphdse/internal/ml"
	"graphdse/internal/trace"
)

// AdaptiveDSE is the paper's §V proposal made concrete: instead of
// simulating the full design space, simulate a small seed set, then let an
// active-learning loop pick which configurations to simulate next, stopping
// when the surrogate's uncertainty falls below a threshold or the budget is
// exhausted. The output is a surrogate usable in place of the simulator plus
// the set of simulated records.
type AdaptiveDSE struct {
	// Metric is the target to model (one of memsim.MetricNames).
	Metric string
	// InitialSamples simulated before the loop starts (default 16).
	InitialSamples int
	// BatchSize simulations per round (default 8).
	BatchSize int
	// MaxSimulations caps the total simulator budget (default 96).
	MaxSimulations int
	// SigmaTarget stops the loop once the maximum pool uncertainty (in
	// min-max-scaled target units) drops below it; 0 disables.
	SigmaTarget float64
	Seed        int64
}

// AdaptiveResult summarizes an adaptive exploration.
type AdaptiveResult struct {
	Simulated int
	Records   []RunRecord
	Model     *ml.RandomForest
	Scaler    *ml.MinMaxScaler
	YScaler   *ml.VecMinMaxScaler
	Rounds    []ml.ALRecord
	// PredictPoint returns the surrogate's estimate (original units) for an
	// arbitrary design point.
	PredictPoint func(p DesignPoint) float64
}

// Run executes the adaptive loop over the given space, labeling by real
// simulation of events.
func (a *AdaptiveDSE) Run(events []trace.Event, points []DesignPoint, sweep SweepOptions) (*AdaptiveResult, error) {
	if a.Metric == "" {
		a.Metric = "Power"
	}
	if a.InitialSamples <= 0 {
		a.InitialSamples = 16
	}
	if a.BatchSize <= 0 {
		a.BatchSize = 8
	}
	if a.MaxSimulations <= 0 {
		a.MaxSimulations = 96
	}
	if len(points) < a.InitialSamples {
		return nil, fmt.Errorf("%w: %d points for %d initial samples", ErrNoData, len(points), a.InitialSamples)
	}
	// Decode once, replay many: the active-learning loop re-simulates the
	// same trace dozens of times, so share one PreparedTrace across all
	// oracle calls instead of re-validating the slice per simulation.
	pt, err := memsim.Prepare(events)
	if err != nil {
		return nil, err
	}

	// Feature pool, min-max scaled over the whole space (features are known
	// without simulation).
	raw := make([][]float64, len(points))
	for i, p := range points {
		raw[i] = p.FeatureVector()
	}
	scaler := &ml.MinMaxScaler{}
	pool, err := scaler.FitTransform(raw)
	if err != nil {
		return nil, err
	}

	res := &AdaptiveResult{Scaler: scaler}
	metricIdx := -1
	for mi, name := range memsim.MetricNames {
		if name == a.Metric {
			metricIdx = mi
		}
	}
	if metricIdx < 0 {
		return nil, fmt.Errorf("dse: unknown metric %q", a.Metric)
	}

	// Lazy oracle: simulate on first touch, caching per index.
	cache := map[int]float64{}
	simulate := func(i int) (float64, error) {
		if v, ok := cache[i]; ok {
			return v, nil
		}
		r, err := simulateOne(pt, points[i], sweep)
		if err != nil {
			return 0, err
		}
		v := r.MetricVector()[metricIdx]
		cache[i] = v
		res.Simulated++
		res.Records = append(res.Records, RunRecord{Point: points[i], Result: r})
		return v, nil
	}
	index := map[string]int{}
	for i, row := range pool {
		index[fmt.Sprint(row)] = i
	}
	var oracleErr error
	oracle := func(x []float64) float64 {
		v, err := simulate(index[fmt.Sprint(x)])
		if err != nil && oracleErr == nil {
			oracleErr = err
		}
		return v
	}

	maxRounds := (a.MaxSimulations - a.InitialSamples) / a.BatchSize
	if maxRounds < 1 {
		maxRounds = 1
	}
	al := &ml.ActiveLearner{BatchSize: a.BatchSize, Seed: a.Seed}
	rounds, err := al.Run(pool, oracle, nil, nil, a.InitialSamples, maxRounds)
	if err != nil {
		return nil, err
	}
	if oracleErr != nil {
		return nil, oracleErr
	}
	// Optional early-stop bookkeeping: truncate rounds after the sigma
	// target was met.
	if a.SigmaTarget > 0 {
		for i, r := range rounds {
			if r.MaxSigma > 0 && r.MaxSigma < a.SigmaTarget {
				rounds = rounds[:i+1]
				break
			}
		}
	}
	res.Rounds = rounds
	res.Model = al.Model()
	res.PredictPoint = func(p DesignPoint) float64 {
		return res.Model.Predict(scaler.TransformRow(p.FeatureVector()))
	}
	return res, nil
}

// simulateOne runs the memory simulator for a single point over the shared
// prepared trace.
func simulateOne(pt *memsim.PreparedTrace, p DesignPoint, sweep SweepOptions) (*memsim.Result, error) {
	recs, err := SweepPrepared(pt, []DesignPoint{p}, SweepOptions{
		FootprintLines: sweep.FootprintLines,
		Workers:        1,
	})
	if err != nil {
		return nil, err
	}
	if recs[0].Failed {
		return nil, recs[0].Err
	}
	return recs[0].Result, nil
}
