package dse

import (
	"fmt"
	"io"

	"graphdse/internal/graph"
	"graphdse/internal/memsim"
	"graphdse/internal/sysim"
	"graphdse/internal/trace"
)

// The paper's concluding question: "how does the graph size and the type of
// graph algorithms influence the choice of good parameters for the memory
// architectures?" This file runs that study: trace several kernels (and
// graph sizes), sweep each through the same design space, and compare the
// per-workload winners.

// WorkloadKind names an instrumented kernel.
type WorkloadKind string

// Supported workloads.
const (
	WorkloadBFS      WorkloadKind = "bfs"
	WorkloadPageRank WorkloadKind = "pagerank"
	WorkloadCC       WorkloadKind = "cc"
	WorkloadSSSP     WorkloadKind = "sssp"
	// WorkloadBFSParallel traces a 4-thread level-synchronous BFS.
	WorkloadBFSParallel WorkloadKind = "bfs-parallel"
)

// WorkloadSpec describes one workload instance for the sensitivity study.
type WorkloadSpec struct {
	Kind       WorkloadKind
	Vertices   int
	EdgeFactor int
	Seed       int64
	// PRIters applies to PageRank (default 3).
	PRIters int
}

// Label renders a short identifier.
func (w WorkloadSpec) Label() string {
	return fmt.Sprintf("%s-n%d-ef%d", w.Kind, w.Vertices, w.EdgeFactor)
}

// TraceWorkload produces the memory trace for a workload spec.
func TraceWorkload(cfg sysim.Config, w WorkloadSpec) ([]trace.Event, int, error) {
	g, err := graph.GenerateGTGraph(w.Vertices, w.EdgeFactor, w.Seed)
	if err != nil {
		return nil, 0, err
	}
	m, err := sysim.NewMachine(cfg)
	if err != nil {
		return nil, 0, err
	}
	switch w.Kind {
	case WorkloadBFS:
		_, err = sysim.TraceBFS(m, g, uint32(w.Seed%int64(w.Vertices)), true)
	case WorkloadPageRank:
		iters := w.PRIters
		if iters <= 0 {
			iters = 3
		}
		_, err = sysim.TracePageRank(m, g, iters)
	case WorkloadCC:
		_, err = sysim.TraceConnectedComponents(m, g)
	case WorkloadSSSP:
		_, err = sysim.TraceSSSP(m, g, uint32(w.Seed%int64(w.Vertices)))
	case WorkloadBFSParallel:
		_, err = sysim.TraceBFSParallel(m, g, uint32(w.Seed%int64(w.Vertices)), 4)
	default:
		err = fmt.Errorf("dse: unknown workload %q", w.Kind)
	}
	if err != nil {
		return nil, 0, err
	}
	return m.Trace(), int(m.Layout().Footprint()) / 64, nil
}

// WorkloadComparison is the study's output for one workload.
type WorkloadComparison struct {
	Spec           WorkloadSpec
	TraceEvents    int
	Recommendation Recommendations
	Figure2        []Figure2Row
}

// CompareWorkloads sweeps each workload through the design space and
// derives per-workload recommendations, answering whether the memory
// co-design choice is workload-sensitive.
func CompareWorkloads(cfg sysim.Config, specs []WorkloadSpec, space SpaceParams, sweep SweepOptions) ([]WorkloadComparison, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: no workloads", ErrNoData)
	}
	var out []WorkloadComparison
	for _, spec := range specs {
		events, footprint, err := TraceWorkload(cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Label(), err)
		}
		// Prepare once per workload; the sweep shares the decoded trace
		// across every design point.
		pt, err := memsim.Prepare(events)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Label(), err)
		}
		so := sweep
		if so.FootprintLines == 0 {
			so.FootprintLines = footprint
		}
		points := EnumerateSpace(space)
		records, err := SweepPrepared(pt, points, so)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Label(), err)
		}
		fig2 := BuildFigure2(records)
		out = append(out, WorkloadComparison{
			Spec:           spec,
			TraceEvents:    pt.Len(),
			Recommendation: Recommend(fig2, nil),
			Figure2:        fig2,
		})
	}
	return out, nil
}

// RenderWorkloadComparison writes a compact per-workload winner table.
func RenderWorkloadComparison(w io.Writer, comps []WorkloadComparison) {
	fmt.Fprintf(w, "%-22s %-10s %-14s %-10s %-12s %-12s\n",
		"workload", "events", "power", "bandwidth", "avgLatency", "totLatency")
	for _, c := range comps {
		r := c.Recommendation
		fmt.Fprintf(w, "%-22s %-10d %-14s %-10s %-12s %-12s\n",
			c.Spec.Label(), c.TraceEvents,
			fmt.Sprintf("%s@%.0fMHz", r.BestPowerType, r.BestPowerCtrlMHz),
			r.BestBandwidthType.String(),
			r.BestAvgLatencyType.String(),
			r.BestTotalLatencyType.String())
	}
}
