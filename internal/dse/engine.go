package dse

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphdse/internal/guard"
	"graphdse/internal/memsim"
)

// ErrTransient marks failures worth retrying (injected transient faults and
// anything else classified as recoverable). It aliases guard's canonical
// sentinel so guard.ClassOf sees sweep failures and stage failures in one
// taxonomy.
var ErrTransient = guard.ErrTransient

// PanicError wraps a panic recovered inside a supervised worker so the
// crash of one design point becomes a structured record instead of killing
// the whole sweep process. It is guard's PanicError: sweep-level and
// stage-level panics classify identically (guard.Fatal).
type PanicError = guard.PanicError

// defaultHangTimeout bounds injected hangs when the caller set no Timeout,
// so a chaos run can never deadlock the sweep.
const defaultHangTimeout = time.Second

// maxBackoff caps the exponential retry delay.
const maxBackoff = 2 * time.Second

// Test hooks: called (when non-nil) as each dispatched point starts and
// finishes, so tests can observe worker-pool concurrency and interrupt
// sweeps at deterministic progress marks.
var (
	testHookPointStart func(p DesignPoint)
	testHookPointDone  func(p DesignPoint)
)

// sweepEngine is the resilient sweep core: a bounded worker pool pulls
// points from a channel (never spawning more goroutines than workers), each
// point runs supervised with panic recovery, a per-point deadline, bounded
// retry with backoff for transient faults, and metric validation; completed
// records stream to an optional JSON-lines checkpoint.
func sweepEngine(ctx context.Context, pt *memsim.PreparedTrace, points []DesignPoint, opts SweepOptions) ([]RunRecord, error) {
	if pt == nil || pt.Len() == 0 {
		return nil, memsim.ErrEmptyTrace
	}
	if len(points) == 0 {
		return nil, errors.New("dse: empty design space")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Under memory pressure the governor trims the pool before it even
	// starts; workers that do start can still retire mid-sweep (below).
	workers = opts.Governor.Workers("sweep", workers)
	inj := opts.injector()
	if opts.Timeout <= 0 && inj.hasClass(FaultHang) {
		opts.Timeout = defaultHangTimeout
	}

	var resumed map[string]RunRecord
	var ckpt *checkpointWriter
	if opts.CheckpointPath != "" {
		if opts.Resume {
			var err error
			var rep *CheckpointReport
			resumed, rep, err = LoadCheckpointReportFS(opts.fs(), opts.CheckpointPath, points, opts.StrictCheckpoint)
			if err != nil && !errors.Is(err, os.ErrNotExist) {
				return nil, fmt.Errorf("dse: resume: %w", err)
			}
			if err == nil && !rep.Clean() && opts.OnCheckpointSalvage != nil {
				opts.OnCheckpointSalvage(rep)
			}
		}
		var err error
		ckpt, err = openCheckpoint(opts.fs(), opts.CheckpointPath, opts.Resume)
		if err != nil {
			return nil, fmt.Errorf("dse: checkpoint: %w", err)
		}
		defer ckpt.Close()
	}

	records := make([]RunRecord, len(points))
	jobs := make(chan int)
	var done atomic.Int64
	finish := func(i int, rec RunRecord) {
		records[i] = rec
		if opts.OnRecord != nil {
			opts.OnRecord(rec)
		}
		if opts.OnPoint != nil {
			opts.OnPoint(int(done.Add(1)), len(points))
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				if testHookPointStart != nil {
					testHookPointStart(points[i])
				}
				finish(i, runPoint(ctx, pt, points[i], opts, inj, ckpt))
				if testHookPointDone != nil {
					testHookPointDone(points[i])
				}
				// Graceful degradation: when memory pressure lowers the
				// permitted pool size, high-indexed workers retire before
				// pulling another job. Worker 0 never retires (Limit floors
				// at 1), so the sweep always drains.
				if w > 0 && w >= opts.Governor.Limit(workers) {
					return
				}
			}
		}(w)
	}
	lastLimit := workers
feed:
	for i := range points {
		if rec, ok := resumed[points[i].ID()]; ok {
			rec.Point = points[i]
			finish(i, rec)
			continue
		}
		if cur := opts.Governor.Limit(workers); cur < lastLimit {
			opts.Governor.Record(guard.Downshift{
				Stage: "sweep", Resource: "workers",
				From: lastLimit, To: cur, Reason: opts.Governor.PressureReason(),
			})
			lastLimit = cur
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Mark points that were never dispatched; in-flight points already
		// recorded their cancellation.
		for i := range records {
			if records[i].Attempts == 0 && !records[i].FromCheckpoint {
				records[i] = RunRecord{Point: points[i], Failed: true, Err: err, Skipped: true}
			}
		}
		return records, fmt.Errorf("dse: sweep interrupted: %w", err)
	}

	survivors := 0
	for i := range records {
		if !records[i].Failed {
			survivors++
		}
	}
	if survivors == 0 {
		return records, ErrAllFailed
	}
	if opts.MinSurvivors > 0 && survivors < opts.MinSurvivors {
		return records, newSweepFailureError(records, survivors, opts.MinSurvivors)
	}
	return records, nil
}

// runPoint drives one design point to a terminal record: attempt, classify,
// retry transients with backoff, and checkpoint the outcome.
func runPoint(ctx context.Context, pt *memsim.PreparedTrace, p DesignPoint, opts SweepOptions, inj *FaultInjector, ckpt *checkpointWriter) RunRecord {
	if err := ctx.Err(); err != nil {
		return RunRecord{Point: p, Failed: true, Err: err, Skipped: true}
	}
	rec := RunRecord{Point: p}
	var res *memsim.Result
	var err error
	for attempt := 1; ; attempt++ {
		rec.Attempts = attempt
		res, err = attemptPoint(ctx, pt, p, opts, inj, attempt)
		if err == nil {
			break
		}
		if attempt > opts.Retries || !errors.Is(err, ErrTransient) || ctx.Err() != nil {
			break
		}
		if !sleepBackoff(ctx, opts.BackoffBase, attempt, p) {
			break
		}
	}
	if err != nil {
		rec.Failed = true
		rec.Err = err
		rec.FaultClass = classifyError(err)
	} else {
		rec.Result = res
	}
	// A record cut short by sweep cancellation is not a terminal outcome;
	// keep it out of the checkpoint so resume re-runs the point.
	if ckpt != nil && !errors.Is(err, context.Canceled) {
		if aerr := ckpt.Append(rec); aerr != nil && opts.OnCheckpointError != nil {
			// Best-effort by contract, but the failure is a disk-health
			// signal the daemon's governor wants to see.
			opts.OnCheckpointError(aerr)
		}
	}
	return rec
}

// attemptPoint supervises a single simulation attempt: it runs in its own
// goroutine with panic recovery and races against the per-point deadline.
// On timeout the attempt's goroutine is abandoned (Go cannot kill it) and
// its eventual result discarded — the price of containing a hung simulator.
func attemptPoint(ctx context.Context, pt *memsim.PreparedTrace, p DesignPoint, opts SweepOptions, inj *FaultInjector, attempt int) (*memsim.Result, error) {
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	type outcome struct {
		res *memsim.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		var o outcome
		defer func() {
			if r := recover(); r != nil {
				o = outcome{nil, &PanicError{Value: r, Stack: debug.Stack()}}
			}
			ch <- o
		}()
		o.res, o.err = simulatePoint(ctx, pt, p, opts, inj, attempt)
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("dse: %s: %w", p.ID(), ctx.Err())
	}
}

// simulatePoint applies any injected fault, then runs the memory simulator
// and validates its metrics.
func simulatePoint(ctx context.Context, pt *memsim.PreparedTrace, p DesignPoint, opts SweepOptions, inj *FaultInjector, attempt int) (*memsim.Result, error) {
	switch inj.Decide(p, attempt) {
	case FaultCrash:
		panic(fmt.Sprintf("injected crash for %s", p.ID()))
	case FaultHang:
		<-ctx.Done()
		return nil, fmt.Errorf("dse: %s: injected hang: %w", p.ID(), ctx.Err())
	case FaultTransient:
		return nil, fmt.Errorf("dse: %s attempt %d: %w", p.ID(), attempt, ErrTransient)
	case FaultCorrupt:
		res, err := memsim.RunPreparedTrace(p.Config(opts.FootprintLines), pt)
		if err != nil {
			return nil, err
		}
		poisoned := *res
		poisoned.AvgPowerPerChannel = math.NaN()
		if verr := poisoned.ValidateMetrics(); verr != nil {
			return nil, fmt.Errorf("dse: %s: %w", p.ID(), verr)
		}
		return &poisoned, nil
	case FaultInvariant:
		// The subtlest corruption: the run completes, every metric is finite
		// and positive (ValidateMetrics passes), but the bandwidth exceeds
		// what the configured channel bus can physically carry. Only the
		// invariant gate between stages catches it.
		res, err := memsim.RunPreparedTrace(p.Config(opts.FootprintLines), pt)
		if err != nil {
			return nil, err
		}
		poisoned := *res
		poisoned.AvgBandwidthPerBank = 2 * memsim.PeakBandwidthPerBankMBs(&poisoned.Config) * float64(poisoned.Config.Channels)
		if verr := poisoned.ValidateMetrics(); verr != nil {
			return nil, fmt.Errorf("dse: %s: %w", p.ID(), verr)
		}
		return &poisoned, nil
	}
	res, err := memsim.RunPreparedTrace(p.Config(opts.FootprintLines), pt)
	if err != nil {
		return nil, err
	}
	// RunPreparedTrace already validates, but guard against future simulator
	// paths that bypass it.
	if err := res.ValidateMetrics(); err != nil {
		return nil, err
	}
	return res, nil
}

// classifyError maps a terminal error onto the fault taxonomy for failure
// logs and checkpoints.
func classifyError(err error) FaultClass {
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		return FaultCrash
	case errors.Is(err, context.DeadlineExceeded):
		return FaultHang
	case errors.Is(err, ErrTransient):
		return FaultTransient
	case errors.Is(err, memsim.ErrInvalidMetrics):
		return FaultCorrupt
	case errors.Is(err, memsim.ErrPhysicalInvariant):
		return FaultInvariant
	default:
		return FaultNone
	}
}

// backoffSalt decorrelates retry schedules across processes. The jitter hash
// in backoffDelay is deterministic per (point, attempt), which keeps retries
// reproducible within a run — but a fleet of sweep processes restarted
// together after a shared crash would compute identical schedules and retry
// in lockstep against shared resources (the daemon's trace cache above all).
// Each process therefore mixes a random per-process salt into the hash.
var backoffSalt = rand.Uint64()

// backoffDelay computes base·2^(attempt−1) plus jitter in [0, d/2], capped
// at maxBackoff. The jitter is a hash of (process salt, point, attempt):
// stable within a process, different across processes.
func backoffDelay(base time.Duration, attempt int, p DesignPoint) time.Duration {
	return BackoffJitter(base, attempt, p.ID(), maxBackoff)
}

// BackoffJitter is the repository's shared retry-delay policy:
// base·2^(attempt−1) plus deterministic jitter in [0, d/2], capped at max
// (maxBackoff when max <= 0). The jitter is a hash of (process salt, key,
// attempt): stable within a process so schedules are reproducible, salted
// per process so a fleet restarted together does not retry in lockstep.
// The sweep engine keys it by design-point ID; the daemon's streaming
// client keys it by job ID for its reconnect schedule.
func BackoffJitter(base time.Duration, attempt int, key string, max time.Duration) time.Duration {
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	if max <= 0 {
		max = maxBackoff
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base << uint(attempt-1)
	if d > max || d <= 0 {
		d = max
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", backoffSalt, key, attempt)
	if half := int64(d / 2); half > 0 {
		d += time.Duration(h.Sum64() % uint64(half+1))
	}
	return d
}

// sleepBackoff waits out backoffDelay, returning false if the context was
// cancelled first.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int, p DesignPoint) bool {
	t := time.NewTimer(backoffDelay(base, attempt, p))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// FailureRecord is one entry of a sweep's failure log.
type FailureRecord struct {
	PointID  string
	Class    string
	Attempts int
	Err      string
}

// BuildFailureLog extracts the failed records into a compact, render-ready
// log, sorted by point ID.
func BuildFailureLog(records []RunRecord) []FailureRecord {
	var out []FailureRecord
	for _, r := range records {
		if !r.Failed {
			continue
		}
		msg := ""
		if r.Err != nil {
			msg = r.Err.Error()
		}
		out = append(out, FailureRecord{
			PointID:  r.Point.ID(),
			Class:    r.FaultClass.String(),
			Attempts: r.Attempts,
			Err:      msg,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PointID < out[j].PointID })
	return out
}

func newSweepFailureError(records []RunRecord, survivors, min int) *SweepFailureError {
	e := &SweepFailureError{
		Survivors:    survivors,
		Total:        len(records),
		MinSurvivors: min,
		ByClass:      map[string]int{},
	}
	log := BuildFailureLog(records)
	for _, f := range log {
		e.ByClass[f.Class]++
	}
	if len(log) > 5 {
		log = log[:5]
	}
	e.Sample = log
	return e
}
