package dse

import (
	"bytes"
	"strings"
	"testing"

	"graphdse/internal/memsim"
	"graphdse/internal/sysim"
	"graphdse/internal/trace"
)

// smallSpace keeps tests fast: 2 cells × 13 = 26 points.
func smallSpace() SpaceParams {
	return SpaceParams{
		CPUFreqsMHz:  []float64{2000, 6500},
		CtrlFreqsMHz: []float64{400},
		Channels:     []int{2},
		Fractions:    []float64{0.25, 0.5, 0.75},
	}
}

func smallTrace(t testing.TB) []trace.Event {
	t.Helper()
	m, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 256, 8, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m.Trace()
}

func TestSweepProducesResults(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	records, err := Sweep(events, points, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(points) {
		t.Fatalf("records = %d", len(records))
	}
	for i, r := range records {
		if r.Failed {
			t.Fatalf("record %d failed without injection: %v", i, r.Err)
		}
		if r.Result == nil || r.Result.AvgBandwidthPerBank <= 0 {
			t.Fatalf("record %d has no result", i)
		}
		if r.Point.ID() != points[i].ID() {
			t.Fatal("records out of order")
		}
	}
}

func TestSweepFailureInjectionDeterministic(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(SpaceParams{}) // full 416
	// Don't simulate: rate 1.0 fails everything before running, so this is fast.
	_, err := Sweep(events, points, SweepOptions{FailureRate: 0.9999999})
	if err == nil {
		t.Fatal("expected ErrAllFailed at ~100% failure rate")
	}

	count := func(seed uint64) int {
		n := 0
		for _, p := range points {
			if injectedFailure(p, PaperFailureRate, seed) {
				n++
			}
		}
		return n
	}
	a, b := count(1), count(1)
	if a != b {
		t.Fatal("failure injection must be deterministic")
	}
	// Rate ~10% of 416 ≈ 42 failures, loosely.
	if a < 20 || a > 70 {
		t.Fatalf("injected failures = %d of 416, want ~42", a)
	}
}

func TestSweepInputValidation(t *testing.T) {
	if _, err := Sweep(nil, EnumerateSpace(smallSpace()), SweepOptions{}); err == nil {
		t.Fatal("expected empty-trace error")
	}
	if _, err := Sweep(smallTrace(t), nil, SweepOptions{}); err == nil {
		t.Fatal("expected empty-space error")
	}
}

func TestBuildDataset(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	records, err := Sweep(events, points, SweepOptions{FailureRate: 0.2, FailureSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() >= len(points) {
		t.Fatal("failure injection should drop rows")
	}
	if ds.Len() != len(ds.Points) {
		t.Fatal("points misaligned")
	}
	for _, name := range memsim.MetricNames {
		y, err := ds.Metric(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(y) != ds.Len() {
			t.Fatalf("metric %s has %d values", name, len(y))
		}
	}
	if _, err := ds.Metric("nope"); err == nil {
		t.Fatal("expected unknown-metric error")
	}
	if _, err := BuildDataset(nil); err == nil {
		t.Fatal("expected no-data error")
	}
}

func TestBuildFigure2GroupsAndAverages(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	records, err := Sweep(events, points, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rows := BuildFigure2(records)
	if len(rows) != 2 { // two CPU frequencies × 1 ctrl × 1 ch
		t.Fatalf("figure 2 rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		if row.Count[memsim.DRAM] != 1 || row.Count[memsim.NVM] != 6 || row.Count[memsim.Hybrid] != 6 {
			t.Fatalf("row counts %+v", row.Count)
		}
		for _, mean := range row.Mean {
			if len(mean) != len(memsim.MetricNames) {
				t.Fatalf("mean length %d", len(mean))
			}
		}
	}
	// Sorted by CPU frequency.
	if rows[0].CPUFreqMHz > rows[1].CPUFreqMHz {
		t.Fatal("rows not sorted")
	}
}

func TestRunWorkflowEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end workflow in -short mode")
	}
	res, err := RunWorkflow(WorkflowOptions{
		Vertices:   256,
		EdgeFactor: 8,
		Seed:       42,
		Space:      smallSpace(),
		Sweep:      SweepOptions{FailureRate: PaperFailureRate, FailureSeed: 1},
		SplitSeed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceEvents == 0 {
		t.Fatal("no trace produced")
	}
	if res.SurvivorCount == 0 || res.SurvivorCount > 26 {
		t.Fatalf("survivors = %d", res.SurvivorCount)
	}
	// Table I: 6 metrics × 4 models = 24 rows.
	if len(res.Table1) != 24 {
		t.Fatalf("table1 rows = %d, want 24", len(res.Table1))
	}
	for _, p := range res.Table1 {
		if p.MSE < 0 {
			t.Fatalf("negative MSE for %s/%s", p.Metric, p.Model)
		}
	}
	// Figure 3: one series per metric, aligned lengths.
	if len(res.Figure3) != len(memsim.MetricNames) {
		t.Fatalf("figure3 panels = %d", len(res.Figure3))
	}
	for name, s := range res.Figure3 {
		if len(s.Truth) == 0 {
			t.Fatalf("panel %s empty", name)
		}
		for model, pred := range s.Pred {
			if len(pred) != len(s.Truth) {
				t.Fatalf("panel %s model %s misaligned", name, model)
			}
		}
	}
	// Recommendations must be populated.
	rec := res.Recommendation
	if len(rec.BestModel) != len(memsim.MetricNames) {
		t.Fatalf("best models = %d", len(rec.BestModel))
	}
	if rec.BestBandwidthMBs <= 0 {
		t.Fatal("bandwidth recommendation empty")
	}
}

func TestRenderers(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	records, err := Sweep(events, points, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	table1, fig3, err := TrainAndEvaluate(ds, []ModelSpec{DefaultModels(1)[0]}, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderFigure2(&buf, BuildFigure2(records))
	if !strings.Contains(buf.String(), "CPUFreq") {
		t.Fatal("figure2 render missing header")
	}
	buf.Reset()
	RenderTable1(&buf, table1)
	if !strings.Contains(buf.String(), "best") {
		t.Fatal("table1 render missing best marker")
	}
	buf.Reset()
	RenderFigure3(&buf, fig3["Power"])
	if !strings.Contains(buf.String(), "truth") {
		t.Fatal("figure3 render missing truth column")
	}
	buf.Reset()
	RenderRecommendations(&buf, Recommend(BuildFigure2(records), table1))
	if !strings.Contains(buf.String(), "recommendations") {
		t.Fatal("recommendations render empty")
	}
}

func TestTrainAndEvaluateTooFewRows(t *testing.T) {
	ds := &Dataset{Y: map[string][]float64{}}
	if _, _, err := TrainAndEvaluate(ds, DefaultModels(1), 0.2, 1); err == nil {
		t.Fatal("expected error for empty dataset")
	}
}

func TestPlotFigure3(t *testing.T) {
	events := smallTrace(t)
	records, err := Sweep(events, EnumerateSpace(smallSpace()), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	_, fig3, err := TrainAndEvaluate(ds, DefaultModels(1), 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := PlotFigure3(&buf, fig3["Power"], "SVM", 12); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SVM") || !strings.Contains(out, "Power") {
		t.Fatalf("plot missing labels:\n%s", out)
	}
	// Plot body must contain plotted points.
	if !strings.ContainsAny(out, "*o#") {
		t.Fatalf("plot has no points:\n%s", out)
	}
	if err := PlotFigure3(&buf, fig3["Power"], "nope", 12); err == nil {
		t.Fatal("expected unknown-model error")
	}
	if err := PlotFigure3(&buf, &Figure3Series{Metric: "x", Pred: map[string][]float64{"m": nil}}, "m", 5); err == nil {
		t.Fatal("expected empty-series error")
	}
}
