package dse

import (
	"math"
	"testing"

	"graphdse/internal/memsim"
)

func TestAdaptiveDSEBudgetAndAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive DSE in -short mode")
	}
	events := smallTrace(t)
	points := EnumerateSpace(SpaceParams{
		CPUFreqsMHz:  []float64{2000, 3000, 6500},
		CtrlFreqsMHz: []float64{400, 1600},
		Channels:     []int{2, 4},
	}) // 3×2×2 cells × 13 = 156 points
	budget := 60
	a := &AdaptiveDSE{Metric: "Power", InitialSamples: 12, BatchSize: 8, MaxSimulations: budget, Seed: 1}
	res, err := a.Run(events, points, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulated > budget {
		t.Fatalf("budget exceeded: %d > %d", res.Simulated, budget)
	}
	if res.Simulated >= len(points) {
		t.Fatalf("adaptive exploration simulated everything (%d)", res.Simulated)
	}
	if res.Model == nil || res.PredictPoint == nil {
		t.Fatal("no surrogate produced")
	}
	if len(res.Records) != res.Simulated {
		t.Fatalf("records %d != simulated %d", len(res.Records), res.Simulated)
	}

	// The surrogate must approximate unexplored points reasonably: check
	// relative error on a handful of ground-truth simulations.
	explored := map[string]bool{}
	for _, r := range res.Records {
		explored[r.Point.ID()] = true
	}
	pt, err := memsim.Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	var totalRel float64
	for _, p := range points {
		if explored[p.ID()] || checked >= 8 {
			continue
		}
		truth, err := simulateOne(pt, p, SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pred := res.PredictPoint(p)
		totalRel += math.Abs(pred-truth.AvgPowerPerChannel) / truth.AvgPowerPerChannel
		checked++
	}
	if checked == 0 {
		t.Fatal("no unexplored points to verify against")
	}
	if mean := totalRel / float64(checked); mean > 0.25 {
		t.Fatalf("mean relative error %.2f on unexplored points", mean)
	}
}

func TestAdaptiveDSEValidation(t *testing.T) {
	events := smallTrace(t)
	a := &AdaptiveDSE{InitialSamples: 100}
	if _, err := a.Run(events, EnumerateSpace(smallSpace())[:5], SweepOptions{}); err == nil {
		t.Fatal("expected too-few-points error")
	}
	b := &AdaptiveDSE{Metric: "nope"}
	if _, err := b.Run(events, EnumerateSpace(smallSpace()), SweepOptions{}); err == nil {
		t.Fatal("expected unknown-metric error")
	}
}
