package dse

import (
	"context"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"graphdse/internal/guard"
	"graphdse/internal/memsim"
	"graphdse/internal/sysim"
)

// sigtermHelperEnv carries the checkpoint path to the subprocess re-exec of
// TestSweepSIGTERMCheckpointResume.
const sigtermHelperEnv = "GRAPHDSE_DSE_SIGTERM_HELPER"

// sigtermSweepOpts is the sweep configuration shared verbatim by the killed
// subprocess, the resumed run, and the uninterrupted reference — identical
// options are what make the byte-identity claim meaningful. The transient
// rule forces retry paths through the checkpoint too.
func sigtermSweepOpts(path string, resume bool) SweepOptions {
	return SweepOptions{
		Workers:        1,
		CheckpointPath: path,
		Resume:         resume,
		Faults:         &FaultInjector{Rules: []FaultRule{{Class: FaultTransient, Rate: 0.2, Seed: 9, Times: 1}}},
		Retries:        2,
		BackoffBase:    time.Millisecond,
	}
}

// sigtermHelperTrace rebuilds the deterministic helper trace without a
// testing.TB (the subprocess has no test context of its own).
func sigtermHelperTrace() (*memsim.PreparedTrace, error) {
	m, _, err := sysim.PaperWorkloadTrace(sysim.DefaultConfig(), 256, 8, 7, 1)
	if err != nil {
		return nil, err
	}
	return memsim.Prepare(m.Trace())
}

// sigtermHelperSweep is the subprocess body: a slow, checkpointed sweep
// under guard.SignalContext, exactly the signal discipline cmd/dse uses.
// The first SIGTERM cancels the context, the sweep drains, the checkpoint
// flushes, and the process exits 0. Never returns.
func sigtermHelperSweep(path string) {
	// ~40ms per point: slow enough for the parent to land a SIGTERM
	// mid-sweep, fast enough to finish if the signal never comes.
	testHookPointDone = func(DesignPoint) { time.Sleep(40 * time.Millisecond) }
	ctx, stop := guard.SignalContext(context.Background(), func(os.Signal) { os.Exit(42) })
	defer stop()
	pt, err := sigtermHelperTrace()
	if err != nil {
		os.Exit(3)
	}
	_, err = SweepPreparedContext(ctx, pt, EnumerateSpace(smallSpace()), sigtermSweepOpts(path, false))
	if err != nil && ctx.Err() == nil {
		os.Exit(3) // a real failure, not the interrupt
	}
	os.Exit(0)
}

// TestSweepSIGTERMCheckpointResume is the kill/resume acceptance test: a
// subprocess runs a checkpointed sweep behind guard.SignalContext and is
// SIGTERMed mid-run; the first signal must drain it cleanly (exit 0,
// checkpoint flushed), and resuming from its checkpoint must reproduce the
// uninterrupted sweep's survivor records byte for byte.
func TestSweepSIGTERMCheckpointResume(t *testing.T) {
	if path := os.Getenv(sigtermHelperEnv); path != "" {
		sigtermHelperSweep(path) // never returns
	}
	if testing.Short() {
		t.Skip("subprocess signal test skipped in -short")
	}
	points := EnumerateSpace(smallSpace())

	var path string
	partial := 0
	for round := 0; round < 3 && partial == 0; round++ {
		path = t.TempDir() + "/sweep.ckpt"
		cmd := exec.Command(os.Args[0], "-test.run=TestSweepSIGTERMCheckpointResume$")
		cmd.Env = append(os.Environ(), sigtermHelperEnv+"="+path)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Wait for a few completed records to reach the checkpoint, then
		// send the first SIGTERM.
		deadline := time.Now().Add(20 * time.Second)
		for countCheckpointLines(path) < 4 {
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatal("subprocess produced no checkpoint records")
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("helper did not drain cleanly on first SIGTERM: %v", err)
		}
		if n := countCheckpointLines(path); n < len(points) {
			partial = n
		}
		// else: the sweep outran the signal; retry with a fresh dir.
	}
	if partial == 0 {
		t.Fatal("never caught the sweep mid-run")
	}
	t.Logf("SIGTERM landed after %d/%d checkpointed records", partial, len(points))

	// Resume in-process from the interrupted checkpoint.
	events := smallTrace(t)
	resumed, err := Sweep(events, points, sigtermSweepOpts(path, true))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	adopted := 0
	for _, r := range resumed {
		if r.FromCheckpoint {
			adopted++
		}
	}
	if adopted != partial {
		t.Fatalf("resume adopted %d records, checkpoint held %d", adopted, partial)
	}

	// Reference: the same sweep never interrupted.
	ref, err := Sweep(events, points, sigtermSweepOpts(t.TempDir()+"/ref.ckpt", false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonicalSurvivors(t, resumed), canonicalSurvivors(t, ref)) {
		t.Fatal("resumed sweep is not byte-identical to the uninterrupted one")
	}
}

// countCheckpointLines returns the number of complete checkpoint lines on
// disk (0 when the file does not exist yet).
func countCheckpointLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return strings.Count(string(data), "\n")
}
