package dse

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
)

// canonicalSurvivors renders the surviving records in their checkpoint
// encoding, sorted by content — the byte-level identity used to prove that
// resumed sweeps equal uninterrupted ones.
func canonicalSurvivors(t *testing.T, records []RunRecord) []string {
	t.Helper()
	var lines []string
	for _, r := range Survivors(records) {
		b, err := EncodeRecord(r)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(b))
	}
	sort.Strings(lines)
	return lines
}

func TestCheckpointRoundTrip(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(tinySpace())
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	// Resume against a missing checkpoint is a fresh start, not an error.
	records, err := Sweep(events, points, SweepOptions{
		Faults: PaperFaults(0.25, 3), CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, skipped, err := LoadCheckpoint(path, points)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("clean checkpoint skipped %d lines", skipped)
	}
	if len(loaded) != len(points) {
		t.Fatalf("checkpoint holds %d records, want %d", len(loaded), len(points))
	}
	for _, r := range records {
		lr, ok := loaded[r.Point.ID()]
		if !ok {
			t.Fatalf("point %s missing from checkpoint", r.Point.ID())
		}
		if lr.Failed != r.Failed || lr.Attempts != r.Attempts || lr.FaultClass != r.FaultClass {
			t.Fatalf("point %s: loaded %+v does not match live record", r.Point.ID(), lr)
		}
		if !r.Failed {
			a, err := EncodeRecord(r)
			if err != nil {
				t.Fatal(err)
			}
			lr.FromCheckpoint = false
			b, err := EncodeRecord(lr)
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Fatalf("point %s: round-trip not byte-identical:\n%s\n%s", r.Point.ID(), a, b)
			}
		}
	}
}

func TestCheckpointCorruptLineSkippedAndRerun(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(tinySpace())
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")

	ref, err := Sweep(events, points, SweepOptions{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalSurvivors(t, ref)

	// Corrupt one survivor line mid-write (a truncated append).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(points) {
		t.Fatalf("checkpoint has %d lines, want %d", len(lines), len(points))
	}
	lines[3] = lines[3][:len(lines[3])/2]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, skipped, err := LoadCheckpoint(path, points)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d corrupt lines, want 1", skipped)
	}
	if len(loaded) != len(points)-1 {
		t.Fatalf("loaded %d records, want %d", len(loaded), len(points)-1)
	}

	// Resume re-runs only the corrupted point and converges to the
	// uninterrupted result.
	var reran atomic.Int64
	testHookPointStart = func(DesignPoint) { reran.Add(1) }
	defer func() { testHookPointStart = nil }()
	resumed, err := Sweep(events, points, SweepOptions{CheckpointPath: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 1 {
		t.Fatalf("resume re-ran %d points, want 1", reran.Load())
	}
	got := canonicalSurvivors(t, resumed)
	if len(got) != len(want) {
		t.Fatalf("resumed survivors = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after corrupt-line resume:\n%s\n%s", i, got[i], want[i])
		}
	}
}

// TestCheckpointKillResumeByteIdentical is the acceptance test: a sweep
// killed mid-flight and resumed from its checkpoint must produce surviving
// records byte-identical to an uninterrupted run.
func TestCheckpointKillResumeByteIdentical(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	inj := PaperFaults(0.2, 3)
	dir := t.TempDir()

	refPath := filepath.Join(dir, "ref.ckpt")
	ref, err := Sweep(events, points, SweepOptions{Faults: inj, CheckpointPath: refPath})
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalSurvivors(t, ref)

	// "Kill" a second sweep after 8 completed points.
	path := filepath.Join(dir, "sweep.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	testHookPointDone = func(DesignPoint) {
		if done.Add(1) == 8 {
			cancel()
		}
	}
	partial, err := SweepContext(ctx, events, points, SweepOptions{
		Faults: inj, CheckpointPath: path, Workers: 2,
	})
	testHookPointDone = nil
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed sweep returned %v, want context.Canceled", err)
	}
	skippedPoints := 0
	for _, r := range partial {
		if r.Skipped {
			skippedPoints++
		}
	}
	if skippedPoints == 0 {
		t.Fatal("kill left no work behind; cancel earlier")
	}

	// Resume from the checkpoint and complete the sweep.
	resumed, err := Sweep(events, points, SweepOptions{
		Faults: inj, CheckpointPath: path, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	adopted := 0
	for _, r := range resumed {
		if r.FromCheckpoint {
			adopted++
		}
	}
	if adopted == 0 {
		t.Fatal("resume adopted nothing from the checkpoint")
	}
	got := canonicalSurvivors(t, resumed)
	if len(got) != len(want) {
		t.Fatalf("resumed survivors = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d not byte-identical after kill+resume:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestCheckpointTornTailFromConcurrentWriter models a resume racing another
// writer's in-progress append: the final JSONL line is a prefix of a valid
// record with no newline. Salvage must adopt every complete line, flag and
// skip the torn tail in BOTH permissive and strict modes (a torn tail is
// normal operation under concurrency, not corruption), and once the writer
// finishes the line a reload must adopt the now-complete record.
func TestCheckpointTornTailFromConcurrentWriter(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(tinySpace())
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")

	ref, err := Sweep(events, points, SweepOptions{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalSurvivors(t, ref)

	// Split the final line mid-record: head stays on disk, tail is what the
	// concurrent writer has not flushed yet.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	last := lines[len(lines)-1]
	head := strings.Join(lines[:len(lines)-1], "\n") + "\n" + last[:len(last)/2]
	tail := last[len(last)/2:] + "\n"
	if err := os.WriteFile(path, []byte(head), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, strict := range []bool{false, true} {
		loaded, rep, err := LoadCheckpointReport(path, points, strict)
		if err != nil {
			t.Fatalf("strict=%v: torn tail must not fail the load: %v", strict, err)
		}
		if !rep.TornTail || rep.Skipped != 1 || int(rep.Loaded) != len(points)-1 {
			t.Fatalf("strict=%v: report %+v, want torn tail + 1 skip + %d loaded", strict, rep, len(points)-1)
		}
		if len(loaded) != len(points)-1 {
			t.Fatalf("strict=%v: adopted %d records, want %d", strict, len(loaded), len(points)-1)
		}
	}

	// Resume while the tail is still torn: exactly the one unfinished point
	// re-runs, and the result matches the uninterrupted sweep byte for byte.
	var reran atomic.Int64
	testHookPointStart = func(DesignPoint) { reran.Add(1) }
	resumed, err := Sweep(events, points, SweepOptions{CheckpointPath: path, Resume: true})
	testHookPointStart = nil
	if err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 1 {
		t.Fatalf("torn-tail resume re-ran %d points, want 1", reran.Load())
	}
	got := canonicalSurvivors(t, resumed)
	if len(got) != len(want) {
		t.Fatalf("resumed survivors = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs after torn-tail resume:\n%s\n%s", i, got[i], want[i])
		}
	}

	// The writer finishes its append (rebuilding the pre-resume torn state
	// first — the resume above rewrote the tail itself): the completed final
	// line must now load cleanly.
	if err := os.WriteFile(path, []byte(head+tail), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, rep, err := LoadCheckpointReport(path, points, true)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(loaded) != len(points) {
		t.Fatalf("completed tail: report %+v, loaded %d, want clean full load", rep, len(loaded))
	}
}

// TestDecodeCanonicalRecordsRoundTrip pins the read side of the daemon's
// query endpoints: the canonical lines a sealed report carries decode back
// into RunRecords that re-encode byte-identically, failed records
// included, and damaged or out-of-space lines are rejected outright rather
// than salvaged.
func TestDecodeCanonicalRecordsRoundTrip(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(tinySpace())
	records, err := Sweep(events, points, SweepOptions{Faults: PaperFaults(0.25, 3)})
	if err != nil {
		t.Fatal(err)
	}
	var failed bool
	for _, r := range records {
		failed = failed || r.Failed
	}
	if !failed || len(Survivors(records)) == 0 {
		t.Fatalf("sweep produced no mix of failures and survivors (%d records)", len(records))
	}

	lines, err := CanonicalRecords(records)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCanonicalRecords(lines, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(lines) {
		t.Fatalf("decoded %d records from %d lines", len(decoded), len(lines))
	}
	for i := range decoded {
		decoded[i].FromCheckpoint = false
	}
	again, err := CanonicalRecords(decoded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lines {
		if string(again[i]) != string(lines[i]) {
			t.Fatalf("line %d not byte-identical after decode:\n%s\n%s", i, lines[i], again[i])
		}
	}

	// A line naming a point outside the design space is corruption, not a
	// skip: the seal asserts completeness.
	if _, err := DecodeCanonicalRecords(lines, nil); err == nil {
		t.Fatal("decode accepted records against an empty design space")
	}
	bad := append([]json.RawMessage(nil), lines...)
	bad[0] = json.RawMessage(`{"id":""}`)
	if _, err := DecodeCanonicalRecords(bad, points); err == nil {
		t.Fatal("decode accepted a line with no point id")
	}
	bad[0] = json.RawMessage(`{`)
	if _, err := DecodeCanonicalRecords(bad, points); err == nil {
		t.Fatal("decode accepted malformed JSON")
	}
}
