package dse

import (
	"context"
	"runtime"
	"testing"
	"time"

	"graphdse/internal/memsim"
)

// waitGoroutinesSettle fails the test if the goroutine count does not return
// to the baseline within a short settle window. Sweep worker pools must
// drain completely on success, failure, and cancellation — a stranded worker
// per sweep would accumulate across a long design-space campaign.
func waitGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSweepNoGoroutineLeak(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		if _, err := Sweep(events, points, SweepOptions{Workers: 4}); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutinesSettle(t, base)
}

func TestSweepCancelledNoGoroutineLeak(t *testing.T) {
	events := smallTrace(t)
	pt, err := memsim.Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	points := EnumerateSpace(smallSpace())
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		opts := SweepOptions{Workers: 4, OnPoint: func(done, total int) {
			if done >= 2 {
				cancel()
			}
		}}
		_, err := SweepPreparedContext(ctx, pt, points, opts)
		cancel()
		if err == nil {
			t.Fatal("expected cancellation to abort the sweep")
		}
	}
	waitGoroutinesSettle(t, base)
}

func TestSweepFailureNoGoroutineLeak(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		// Fatal faults on every point: the sweep completes with a failure
		// log, and every worker must still exit.
		opts := SweepOptions{
			Workers: 4,
			Faults:  &FaultInjector{Rules: []FaultRule{{Class: FaultCrash, Rate: 1.0, Seed: 3}}},
		}
		if _, err := Sweep(events, points, opts); err == nil {
			t.Fatal("expected all-failed sweep to report an error")
		}
	}
	waitGoroutinesSettle(t, base)
}
