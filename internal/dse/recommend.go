package dse

import (
	"math"

	"graphdse/internal/memsim"
)

// Recommendations mirror §IV-B's co-design guidance: the best memory
// organization per objective and the best surrogate model per metric.
type Recommendations struct {
	// BestPowerType/Ctrl: the paper recommends NVM at 400 MHz.
	BestPowerType    memsim.MemType
	BestPowerCtrlMHz float64
	BestPowerWatts   float64
	// BestEndurance: the configuration minimizing reads+writes per channel
	// (the paper recommends hybrid, four channels, low CPU frequency).
	BestEnduranceType     memsim.MemType
	BestEnduranceChannels int
	BestEnduranceCPUMHz   float64
	BestEnduranceCtrlMHz  float64
	// BestBandwidthType: the paper recommends DRAM.
	BestBandwidthType memsim.MemType
	BestBandwidthMBs  float64
	// Latency winners: hybrid for average latency, DRAM for total latency.
	BestAvgLatencyType     memsim.MemType
	BestAvgLatencyCycles   float64
	BestTotalLatencyType   memsim.MemType
	BestTotalLatencyCycles float64
	// BestModel[metric] is the lowest-MSE surrogate per metric.
	BestModel map[string]string
}

// metric indices in memsim.MetricNames order.
const (
	miPower = iota
	miBandwidth
	miAvgLatency
	miTotalLatency
	miReads
	miWrites
)

// Recommend derives the recommendation set from the Figure 2 aggregation
// and the Table I model comparison.
func Recommend(fig2 []Figure2Row, table1 []ModelPerf) Recommendations {
	rec := Recommendations{BestModel: map[string]string{}}

	bestPower := math.Inf(1)
	bestOps := math.Inf(1)
	bestBW := math.Inf(-1)
	bestAvgLat := math.Inf(1)
	bestTotLat := math.Inf(1)
	for _, row := range fig2 {
		for t, mean := range row.Mean {
			if mean[miPower] < bestPower {
				bestPower = mean[miPower]
				rec.BestPowerType = t
				rec.BestPowerCtrlMHz = row.CtrlFreqMHz
				rec.BestPowerWatts = mean[miPower]
			}
			if ops := mean[miReads] + mean[miWrites]; ops < bestOps {
				bestOps = ops
				rec.BestEnduranceType = t
				rec.BestEnduranceChannels = row.Channels
				rec.BestEnduranceCPUMHz = row.CPUFreqMHz
				rec.BestEnduranceCtrlMHz = row.CtrlFreqMHz
			}
			if mean[miBandwidth] > bestBW {
				bestBW = mean[miBandwidth]
				rec.BestBandwidthType = t
				rec.BestBandwidthMBs = mean[miBandwidth]
			}
			if mean[miAvgLatency] < bestAvgLat {
				bestAvgLat = mean[miAvgLatency]
				rec.BestAvgLatencyType = t
				rec.BestAvgLatencyCycles = mean[miAvgLatency]
			}
			if mean[miTotalLatency] < bestTotLat {
				bestTotLat = mean[miTotalLatency]
				rec.BestTotalLatencyType = t
				rec.BestTotalLatencyCycles = mean[miTotalLatency]
			}
		}
	}

	bestMSE := map[string]float64{}
	for _, p := range table1 {
		if cur, ok := bestMSE[p.Metric]; !ok || p.MSE < cur {
			bestMSE[p.Metric] = p.MSE
			rec.BestModel[p.Metric] = p.Model
		}
	}
	return rec
}
