package dse

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"graphdse/internal/artifact"
	"graphdse/internal/guard"
	"graphdse/internal/memsim"
	"graphdse/internal/trace"
)

// RunRecord is the outcome of simulating one design point.
type RunRecord struct {
	Point  DesignPoint
	Result *memsim.Result
	// Failed marks configurations whose simulation crashed, hung past its
	// deadline, exhausted its retries, or produced invalid metrics — the
	// paper reports ~42 of 416 NVMain runs exiting with segmentation
	// faults, and the engine contains each such failure in its record.
	Failed bool
	Err    error
	// FaultClass classifies the failure (crash/hang/transient/corrupt);
	// FaultNone for healthy records and unclassified errors.
	FaultClass FaultClass
	// Attempts counts simulation attempts, >1 when transient faults were
	// retried.
	Attempts int
	// FromCheckpoint marks records adopted from a resume checkpoint rather
	// than re-simulated.
	FromCheckpoint bool
	// Skipped marks points never dispatched because the sweep was cancelled.
	Skipped bool
}

// SweepOptions controls the sweep engine.
type SweepOptions struct {
	// FootprintLines sizes hybrid DRAM caches relative to the workload (see
	// DesignPoint.Config).
	FootprintLines int
	// FailureRate in [0,1) injects deterministic simulated crashes,
	// reproducing the paper's 374-of-416 survivorship. Zero disables it.
	// It is legacy shorthand for Faults = PaperFaults(FailureRate,
	// FailureSeed) and is ignored when Faults is set.
	FailureRate float64
	// FailureSeed varies which configurations fail.
	FailureSeed uint64
	// Workers caps parallelism; <=0 uses GOMAXPROCS.
	Workers int

	// Faults composes injected fault classes (crash, hang, transient,
	// corrupt) for survivorship modes and chaos testing. Overrides
	// FailureRate when non-nil.
	Faults *FaultInjector
	// Timeout is the per-point deadline; 0 disables it (but a hang-class
	// injector forces a default so chaos runs cannot deadlock).
	Timeout time.Duration
	// Retries bounds re-attempts for transient failures (0 = no retry).
	Retries int
	// BackoffBase seeds the exponential retry backoff (default 20ms),
	// doubled per attempt with deterministic jitter.
	BackoffBase time.Duration
	// CheckpointPath appends each completed record to a JSON-lines file so
	// an interrupted sweep can resume. Empty disables checkpointing.
	CheckpointPath string
	// Resume loads CheckpointPath before sweeping and skips points whose
	// records are already present (corrupt lines are skipped and re-run).
	// Without Resume the checkpoint file is truncated.
	Resume bool
	// MinSurvivors fails the sweep with a *SweepFailureError when fewer
	// points survive; 0 only requires one survivor (ErrAllFailed otherwise).
	MinSurvivors int
	// StrictCheckpoint fails resume on the first malformed interior
	// checkpoint line instead of skipping it. A torn final line (crash
	// mid-append) is tolerated in both modes.
	StrictCheckpoint bool
	// OnCheckpointSalvage, when set, receives the load report whenever a
	// resumed checkpoint was not pristine (skipped lines or a torn tail),
	// so callers can log exactly what a damaged checkpoint cost.
	OnCheckpointSalvage func(*CheckpointReport)
	// Governor, when set, bounds the sweep's parallelism under memory
	// pressure: the pool starts at Governor.Workers("sweep", Workers) and
	// workers retire mid-sweep as pressure escalates. Nil disables
	// governance.
	Governor *guard.Governor
	// OnPoint, when set, is called after each point reaches a terminal
	// record (including adopted checkpoint records) with the completed and
	// total counts. It is the sweep's progress heartbeat; callers must make
	// it safe for concurrent use.
	OnPoint func(done, total int)
	// OnRecord, when set, receives every terminal record (including adopted
	// checkpoint records) as it lands, before the matching OnPoint call —
	// the daemon streams per-point failure-log events from it. Callers must
	// make it safe for concurrent use.
	OnRecord func(RunRecord)
	// FS is the filesystem the checkpoint reads and appends through (nil =
	// the real filesystem). The daemon threads its spool FS here so chaos
	// tests can inject ENOSPC/EIO into checkpoint writes too.
	FS artifact.FS
	// OnCheckpointError, when set, observes every failed checkpoint append.
	// Appends are best-effort — a failure degrades resumability, never
	// correctness — but the daemon's disk governor uses this signal to
	// detect a failing spool and enter degraded mode. Must be safe for
	// concurrent use.
	OnCheckpointError func(error)
}

// fs resolves the effective checkpoint filesystem.
func (o *SweepOptions) fs() artifact.FS {
	if o.FS != nil {
		return o.FS
	}
	return artifact.OS
}

// injector resolves the effective fault injector, folding the legacy
// FailureRate knob into the harness.
func (o *SweepOptions) injector() *FaultInjector {
	if o.Faults != nil {
		return o.Faults
	}
	if o.FailureRate > 0 {
		return PaperFaults(o.FailureRate, o.FailureSeed)
	}
	return nil
}

// PaperFailureRate reproduces the paper's ≈42/416 crash rate.
const PaperFailureRate = 0.101

// ErrAllFailed is returned when every configuration failed.
var ErrAllFailed = errors.New("dse: every configuration failed")

// SweepFailureError is the structured summary returned when a sweep
// completes but leaves fewer survivors than MinSurvivors requires.
type SweepFailureError struct {
	Survivors    int
	Total        int
	MinSurvivors int
	// ByClass counts failures per fault class name.
	ByClass map[string]int
	// Sample holds up to a handful of representative failure records.
	Sample []FailureRecord
}

func (e *SweepFailureError) Error() string {
	classes := make([]string, 0, len(e.ByClass))
	for c := range e.ByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s=%d", c, e.ByClass[c]))
	}
	return fmt.Sprintf("dse: %d/%d configurations survived, need >= %d (failures: %s)",
		e.Survivors, e.Total, e.MinSurvivors, strings.Join(parts, " "))
}

// Sweep replays the trace against every design point in parallel and returns
// one record per point, in input order. It never lets a single point kill
// the sweep: panics, hangs, transient errors, and corrupted metrics are
// contained in the point's record (see SweepContext for cancellation).
//
// The trace is validated and decoded exactly once, then shared read-only
// across all points; callers sweeping the same trace repeatedly (or holding
// it only as a stream) should use SweepPrepared directly.
func Sweep(events []trace.Event, points []DesignPoint, opts SweepOptions) ([]RunRecord, error) {
	//lint:ignore ctxpropagate documented top-level wrapper: the no-ctx convenience API mints the root context for SweepContext
	return SweepContext(context.Background(), events, points, opts)
}

// SweepContext is Sweep with caller-controlled cancellation: when ctx is
// cancelled, in-flight points finish as failures, undispatched points are
// marked Skipped, and the partial records are returned alongside ctx's
// error. Combined with CheckpointPath, a cancelled sweep resumes from its
// completed records.
func SweepContext(ctx context.Context, events []trace.Event, points []DesignPoint, opts SweepOptions) ([]RunRecord, error) {
	if len(events) == 0 {
		return nil, memsim.ErrEmptyTrace
	}
	pt, err := memsim.Prepare(events)
	if err != nil {
		return nil, err
	}
	return sweepEngine(ctx, pt, points, opts)
}

// SweepPrepared sweeps an already-prepared trace — the decode-once,
// replay-many path. The PreparedTrace is shared read-only by all workers,
// and its geometry-keyed partition cache means the trace is routed to
// channels once per mapping geometry (not once per point): per-point
// steady-state cost is channel simulation over pooled engine state.
func SweepPrepared(pt *memsim.PreparedTrace, points []DesignPoint, opts SweepOptions) ([]RunRecord, error) {
	//lint:ignore ctxpropagate documented top-level wrapper: the no-ctx convenience API mints the root context for SweepPreparedContext
	return SweepPreparedContext(context.Background(), pt, points, opts)
}

// SweepPreparedContext is SweepPrepared with caller-controlled cancellation
// (see SweepContext).
func SweepPreparedContext(ctx context.Context, pt *memsim.PreparedTrace, points []DesignPoint, opts SweepOptions) ([]RunRecord, error) {
	return sweepEngine(ctx, pt, points, opts)
}

// Survivors filters out failed records.
func Survivors(records []RunRecord) []RunRecord {
	out := make([]RunRecord, 0, len(records))
	for _, r := range records {
		if !r.Failed {
			out = append(out, r)
		}
	}
	return out
}
