package dse

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"graphdse/internal/memsim"
	"graphdse/internal/trace"
)

// RunRecord is the outcome of simulating one design point.
type RunRecord struct {
	Point  DesignPoint
	Result *memsim.Result
	// Failed marks configurations whose simulation "crashed" — the paper
	// reports ~42 of 416 NVMain runs exiting with segmentation faults; the
	// runner reproduces that survivorship deterministically.
	Failed bool
	Err    error
}

// SweepOptions controls the sweep runner.
type SweepOptions struct {
	// FootprintLines sizes hybrid DRAM caches relative to the workload (see
	// DesignPoint.Config).
	FootprintLines int
	// FailureRate in [0,1) injects deterministic simulated crashes,
	// reproducing the paper's 374-of-416 survivorship. Zero disables it.
	FailureRate float64
	// FailureSeed varies which configurations fail.
	FailureSeed uint64
	// Workers caps parallelism; <=0 uses GOMAXPROCS.
	Workers int
}

// PaperFailureRate reproduces the paper's ≈42/416 crash rate.
const PaperFailureRate = 0.101

// ErrAllFailed is returned when every configuration failed.
var ErrAllFailed = errors.New("dse: every configuration failed")

// injectedFailure deterministically decides whether a point "segfaults".
func injectedFailure(p DesignPoint, rate float64, seed uint64) bool {
	if rate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", p.ID(), seed)
	return float64(h.Sum64()%1_000_000)/1_000_000 < rate
}

// Sweep replays the trace against every design point in parallel and returns
// one record per point, in input order.
func Sweep(events []trace.Event, points []DesignPoint, opts SweepOptions) ([]RunRecord, error) {
	if len(events) == 0 {
		return nil, memsim.ErrEmptyTrace
	}
	if len(points) == 0 {
		return nil, errors.New("dse: empty design space")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	records := make([]RunRecord, len(points))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, p := range points {
		wg.Add(1)
		go func(i int, p DesignPoint) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rec := RunRecord{Point: p}
			if injectedFailure(p, opts.FailureRate, opts.FailureSeed) {
				rec.Failed = true
				rec.Err = fmt.Errorf("dse: simulated crash for %s", p.ID())
			} else {
				res, err := memsim.RunTrace(p.Config(opts.FootprintLines), events)
				if err != nil {
					rec.Failed = true
					rec.Err = err
				} else {
					rec.Result = res
				}
			}
			records[i] = rec
		}(i, p)
	}
	wg.Wait()
	ok := 0
	for _, r := range records {
		if !r.Failed {
			ok++
		}
	}
	if ok == 0 {
		return records, ErrAllFailed
	}
	return records, nil
}

// Survivors filters out failed records.
func Survivors(records []RunRecord) []RunRecord {
	out := make([]RunRecord, 0, len(records))
	for _, r := range records {
		if !r.Failed {
			out = append(out, r)
		}
	}
	return out
}
