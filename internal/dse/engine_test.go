package dse

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"graphdse/internal/memsim"
)

// tinySpace keeps chaos tests fast: 1 cell × 13 = 13 points.
func tinySpace() SpaceParams {
	return SpaceParams{
		CPUFreqsMHz:  []float64{2000},
		CtrlFreqsMHz: []float64{400},
		Channels:     []int{2},
		Fractions:    []float64{0.25, 0.5, 0.75},
	}
}

func TestWorkerPoolBoundedConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	testHookPointStart = func(DesignPoint) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond) // widen the overlap window
	}
	testHookPointDone = func(DesignPoint) { cur.Add(-1) }
	defer func() { testHookPointStart, testHookPointDone = nil, nil }()

	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	if _, err := Sweep(events, points, SweepOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("worker pool ran %d points concurrently, want <= 2", p)
	}
}

func TestSweepPanicIsolation(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	inj := &FaultInjector{Rules: []FaultRule{{Class: FaultCrash, Rate: 0.4, Seed: 9}}}
	records, err := Sweep(events, points, SweepOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	crashed, survived := 0, 0
	for _, r := range records {
		want := inj.Decide(r.Point, 1) == FaultCrash
		if want != r.Failed {
			t.Fatalf("point %s: failed=%v, injector says %v", r.Point.ID(), r.Failed, want)
		}
		if r.Failed {
			crashed++
			if r.FaultClass != FaultCrash {
				t.Fatalf("point %s: class %s, want crash", r.Point.ID(), r.FaultClass)
			}
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("point %s: error %v is not a PanicError", r.Point.ID(), r.Err)
			}
			if !strings.Contains(pe.Error(), "injected crash") {
				t.Fatalf("unexpected panic message: %v", pe)
			}
		} else {
			survived++
			if r.Result == nil {
				t.Fatalf("survivor %s has no result", r.Point.ID())
			}
		}
	}
	if crashed == 0 || survived == 0 {
		t.Fatalf("expected a mix of crashes and survivors, got %d/%d", crashed, survived)
	}
}

func TestSweepHangHitsDeadline(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(tinySpace())
	inj := &FaultInjector{Rules: []FaultRule{{Class: FaultHang, Rate: 0.3, Seed: 5}}}
	start := time.Now()
	records, err := Sweep(events, points, SweepOptions{Faults: inj, Timeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("sweep took %v, hangs not bounded by deadline", elapsed)
	}
	hung := 0
	for _, r := range records {
		if inj.Decide(r.Point, 1) != FaultHang {
			if r.Failed {
				t.Fatalf("healthy point %s failed: %v", r.Point.ID(), r.Err)
			}
			continue
		}
		hung++
		if !r.Failed || r.FaultClass != FaultHang {
			t.Fatalf("hung point %s: failed=%v class=%s", r.Point.ID(), r.Failed, r.FaultClass)
		}
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("hung point %s: error %v, want deadline exceeded", r.Point.ID(), r.Err)
		}
	}
	if hung == 0 {
		t.Fatal("injector selected no hang points; pick another seed")
	}
}

func TestSweepHangDefaultsTimeout(t *testing.T) {
	// A hang-class injector with no Timeout must not deadlock the sweep.
	events := smallTrace(t)
	points := EnumerateSpace(tinySpace())[:1]
	inj := &FaultInjector{Rules: []FaultRule{{Class: FaultHang, Rate: 0.999999, Seed: 5}}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := Sweep(events, points, SweepOptions{Faults: inj}); !errors.Is(err, ErrAllFailed) {
			t.Errorf("want ErrAllFailed, got %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep deadlocked on injected hang without Timeout")
	}
}

func TestSweepTransientRetryRecovers(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(tinySpace())
	// Every point fails its first attempt; the first retry succeeds.
	inj := &FaultInjector{Rules: []FaultRule{{Class: FaultTransient, Rate: 0.999999, Times: 1}}}
	records, err := Sweep(events, points, SweepOptions{
		Faults: inj, Retries: 2, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if r.Failed {
			t.Fatalf("point %s failed despite retries: %v", r.Point.ID(), r.Err)
		}
		if r.Attempts != 2 {
			t.Fatalf("point %s attempts = %d, want 2", r.Point.ID(), r.Attempts)
		}
	}

	// Without retries the same faults are terminal and classified transient.
	records, err = Sweep(events, points, SweepOptions{Faults: inj})
	if !errors.Is(err, ErrAllFailed) {
		t.Fatalf("want ErrAllFailed without retries, got %v", err)
	}
	for _, r := range records {
		if !r.Failed || r.FaultClass != FaultTransient || !errors.Is(r.Err, ErrTransient) {
			t.Fatalf("point %s: failed=%v class=%s err=%v", r.Point.ID(), r.Failed, r.FaultClass, r.Err)
		}
	}
}

func TestSweepCorruptMetricsQuarantined(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	inj := &FaultInjector{Rules: []FaultRule{{Class: FaultCorrupt, Rate: 0.3, Seed: 2}}}
	records, err := Sweep(events, points, SweepOptions{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := 0
	for _, r := range records {
		if inj.Decide(r.Point, 1) != FaultCorrupt {
			continue
		}
		corrupt++
		if !r.Failed || r.FaultClass != FaultCorrupt {
			t.Fatalf("corrupt point %s: failed=%v class=%s", r.Point.ID(), r.Failed, r.FaultClass)
		}
		if !errors.Is(r.Err, memsim.ErrInvalidMetrics) {
			t.Fatalf("corrupt point %s: error %v, want ErrInvalidMetrics", r.Point.ID(), r.Err)
		}
	}
	if corrupt == 0 {
		t.Fatal("injector selected no corrupt points; pick another seed")
	}
	ds, err := BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != len(points)-corrupt {
		t.Fatalf("dataset rows = %d, want %d", ds.Len(), len(points)-corrupt)
	}
}

// TestSweepChaosAllClasses layers every fault class and asserts the sweep
// finishes with exactly the survivor set the injector predicts.
func TestSweepChaosAllClasses(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	inj := &FaultInjector{Rules: []FaultRule{
		{Class: FaultCrash, Rate: 0.12, Seed: 11},
		{Class: FaultHang, Rate: 0.12, Seed: 22},
		{Class: FaultCorrupt, Rate: 0.12, Seed: 33},
		{Class: FaultTransient, Rate: 0.3, Seed: 44, Times: 1},
	}}
	const retries = 1
	expectSurvive := func(p DesignPoint) bool {
		switch inj.Decide(p, 1) {
		case FaultNone:
			return true
		case FaultTransient:
			// One retry: the point survives iff attempt 2 is clean.
			return inj.Decide(p, 2) == FaultNone
		default:
			return false
		}
	}
	records, err := Sweep(events, points, SweepOptions{
		Faults:      inj,
		Retries:     retries,
		Timeout:     300 * time.Millisecond,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSurvivors := 0
	for i, r := range records {
		want := expectSurvive(points[i])
		if want {
			wantSurvivors++
		}
		if r.Failed == want {
			t.Fatalf("point %s: survived=%v, want %v (class %s, err %v)",
				r.Point.ID(), !r.Failed, want, r.FaultClass, r.Err)
		}
	}
	if got := len(Survivors(records)); got != wantSurvivors {
		t.Fatalf("survivors = %d, want %d", got, wantSurvivors)
	}
	if wantSurvivors == len(points) {
		t.Fatal("chaos injected no faults; pick other seeds")
	}
	log := BuildFailureLog(records)
	if len(log) != len(points)-wantSurvivors {
		t.Fatalf("failure log has %d entries, want %d", len(log), len(points)-wantSurvivors)
	}
}

func TestSweepMinSurvivors(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(tinySpace())
	inj := &FaultInjector{Rules: []FaultRule{{Class: FaultCrash, Rate: 0.7, Seed: 3}}}
	records, err := Sweep(events, points, SweepOptions{Faults: inj, MinSurvivors: len(points)})
	var sf *SweepFailureError
	if !errors.As(err, &sf) {
		t.Fatalf("want *SweepFailureError, got %v", err)
	}
	if sf.Survivors != len(Survivors(records)) || sf.Total != len(points) || sf.MinSurvivors != len(points) {
		t.Fatalf("bad summary: %+v", sf)
	}
	if sf.ByClass["crash"] == 0 {
		t.Fatalf("summary missing crash count: %+v", sf.ByClass)
	}
	if !strings.Contains(sf.Error(), "crash=") {
		t.Fatalf("summary text missing class counts: %s", sf)
	}

	// The same sweep with an achievable minimum proceeds.
	if _, err := Sweep(events, points, SweepOptions{Faults: inj, MinSurvivors: 1}); err != nil {
		t.Fatalf("achievable minimum should pass: %v", err)
	}
}

func TestSweepContextCancelled(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	records, err := SweepContext(ctx, events, points, SweepOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for _, r := range records {
		if !r.Failed {
			t.Fatal("pre-cancelled sweep must not report survivors")
		}
	}
}

func TestBuildDatasetQuarantinesInvalidSurvivors(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(tinySpace())[:4]
	records, err := Sweep(events, points, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Poison one surviving record's metrics behind the engine's back.
	bad := *records[1].Result
	bad.AvgBandwidthPerBank = math.Inf(1)
	records[1].Result = &bad
	ds, err := BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Quarantined != 1 || ds.Len() != len(points)-1 {
		t.Fatalf("quarantined=%d rows=%d, want 1 and %d", ds.Quarantined, ds.Len(), len(points)-1)
	}

	// All-poisoned survivors degrade to ErrNoData.
	for i := range records {
		bad := *records[i].Result
		bad.AvgPowerPerChannel = math.NaN()
		records[i].Result = &bad
	}
	if _, err := BuildDataset(records); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData for fully-quarantined sweep, got %v", err)
	}
}

func TestRenderFailureLog(t *testing.T) {
	var sb strings.Builder
	RenderFailureLog(&sb, nil)
	if !strings.Contains(sb.String(), "all configurations survived") {
		t.Fatalf("empty log render: %q", sb.String())
	}
	sb.Reset()
	RenderFailureLog(&sb, []FailureRecord{
		{PointID: "a", Class: "crash", Attempts: 1, Err: "boom"},
		{PointID: "b", Class: "transient", Attempts: 3, Err: "flaky"},
	})
	out := sb.String()
	for _, want := range []string{"2 configurations lost", "crash=1", "transient=1", "boom", "attempts=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("failure log render missing %q:\n%s", want, out)
		}
	}
}

// TestBackoffDelayJitterBounds: the retry delay is base·2^(attempt−1) plus
// jitter in [0, d/2], capped at maxBackoff — never less than the exponential
// floor (which would thrash) and never more than 1.5× (which would stall).
func TestBackoffDelayJitterBounds(t *testing.T) {
	p := EnumerateSpace(tinySpace())[0]
	for attempt := 1; attempt <= 8; attempt++ {
		base := 10 * time.Millisecond
		floor := base << uint(attempt-1)
		if floor > maxBackoff {
			floor = maxBackoff
		}
		d := backoffDelay(base, attempt, p)
		if d < floor || d > floor+floor/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, floor, floor+floor/2)
		}
		// Deterministic within a process: retries are reproducible.
		if again := backoffDelay(base, attempt, p); again != d {
			t.Fatalf("attempt %d: delay not stable within process (%v vs %v)", attempt, d, again)
		}
	}
	// Distinct points de-correlate: across the space, at least two points
	// must disagree on their attempt-3 delay (all-equal would mean the
	// jitter hash is inert and the fleet retries in lockstep).
	points := EnumerateSpace(tinySpace())
	first := backoffDelay(10*time.Millisecond, 3, points[0])
	varied := false
	for _, q := range points[1:] {
		if backoffDelay(10*time.Millisecond, 3, q) != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("jitter identical across every design point")
	}
}
