package dse

import (
	"fmt"
	"io"
	"sort"

	"graphdse/internal/memsim"
)

// RenderFigure2 writes the Figure 2 summary table: one row per
// (CPU freq × controller freq × channels) cell, with per-type means of the
// six metrics, laid out like the paper's table.
func RenderFigure2(w io.Writer, rows []Figure2Row) {
	fmt.Fprintf(w, "%-8s %-11s %-3s |", "CPUFreq", "ControlFreq", "nCh")
	for _, metric := range memsim.MetricNames {
		fmt.Fprintf(w, " %-30s |", metric+" (D / N / H)")
	}
	fmt.Fprintln(w)
	types := []memsim.MemType{memsim.DRAM, memsim.NVM, memsim.Hybrid}
	for _, row := range rows {
		fmt.Fprintf(w, "%-8.0f %-11.0f %-3d |", row.CPUFreqMHz, row.CtrlFreqMHz, row.Channels)
		for mi, metric := range memsim.MetricNames {
			cell := ""
			for ti, t := range types {
				if ti > 0 {
					cell += " / "
				}
				mean, ok := row.Mean[t]
				if !ok {
					cell += "-"
					continue
				}
				cell += memsim.FormatMetric(metric, mean[mi])
			}
			fmt.Fprintf(w, " %-30s |", cell)
		}
		fmt.Fprintln(w)
	}
}

// RenderTable1 writes the Table I model comparison: MSE and R² per model
// per metric, flagging the best (lowest-MSE) model per metric.
func RenderTable1(w io.Writer, table []ModelPerf) {
	byMetric := map[string][]ModelPerf{}
	var metrics []string
	for _, p := range table {
		if _, ok := byMetric[p.Metric]; !ok {
			metrics = append(metrics, p.Metric)
		}
		byMetric[p.Metric] = append(byMetric[p.Metric], p)
	}
	fmt.Fprintf(w, "%-14s %-10s %-12s %-12s %s\n", "Metric", "Model", "MSE", "R2", "")
	for _, metric := range metrics {
		perfs := byMetric[metric]
		best := 0
		for i := range perfs {
			if perfs[i].MSE < perfs[best].MSE {
				best = i
			}
		}
		for i, p := range perfs {
			mark := ""
			if i == best {
				mark = "  <-- best"
			}
			fmt.Fprintf(w, "%-14s %-10s %-12.3e %-12.4f%s\n", p.Metric, p.Model, p.MSE, p.R2, mark)
		}
	}
}

// RenderFigure3 writes one Figure 3 panel: the scaled ground truth and each
// model's prediction per test index (the paper plots these as scatter
// series).
func RenderFigure3(w io.Writer, s *Figure3Series) {
	models := make([]string, 0, len(s.Pred))
	for name := range s.Pred {
		models = append(models, name)
	}
	sort.Strings(models)
	fmt.Fprintf(w, "# Figure 3 panel: %s (min-max scaled)\n", s.Metric)
	fmt.Fprintf(w, "%-6s %-10s", "idx", "truth")
	for _, name := range models {
		fmt.Fprintf(w, " %-10s", name)
	}
	fmt.Fprintln(w)
	for i := range s.Truth {
		fmt.Fprintf(w, "%-6d %-10.4f", i, s.Truth[i])
		for _, name := range models {
			fmt.Fprintf(w, " %-10.4f", s.Pred[name][i])
		}
		fmt.Fprintln(w)
	}
}

// PlotFigure3 renders an ASCII approximation of one Figure 3 panel: the
// ground truth as '*' and one model's predictions as 'o' ('#' where they
// coincide), over the test-set index axis — a terminal rendition of the
// paper's scatter plots.
func PlotFigure3(w io.Writer, s *Figure3Series, model string, height int) error {
	pred, ok := s.Pred[model]
	if !ok {
		return fmt.Errorf("dse: model %q not in series", model)
	}
	if height <= 2 {
		height = 16
	}
	n := len(s.Truth)
	if n == 0 {
		return fmt.Errorf("dse: empty series")
	}
	lo, hi := s.Truth[0], s.Truth[0]
	for i := 0; i < n; i++ {
		for _, v := range []float64{s.Truth[i], pred[i]} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, n)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	rowOf := func(v float64) int {
		r := int((hi - v) / (hi - lo) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for i := 0; i < n; i++ {
		tr, pr := rowOf(s.Truth[i]), rowOf(pred[i])
		if tr == pr {
			grid[tr][i] = '#'
			continue
		}
		grid[tr][i] = '*'
		grid[pr][i] = 'o'
	}
	fmt.Fprintf(w, "%s — truth (*) vs %s (o), overlap (#); y in [%.3g, %.3g]\n", s.Metric, model, lo, hi)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", row)
	}
	fmt.Fprintf(w, "+%s+ test index 0..%d\n", dashes(n), n-1)
	return nil
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// RenderFailureLog writes the sweep's failure log: per-class counts
// followed by one line per lost configuration — the reproduction of the
// paper's "42 of 416 runs crashed" bookkeeping.
func RenderFailureLog(w io.Writer, log []FailureRecord) {
	if len(log) == 0 {
		fmt.Fprintln(w, "Sweep failure log: all configurations survived")
		return
	}
	byClass := map[string]int{}
	for _, f := range log {
		byClass[f.Class]++
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "Sweep failure log: %d configurations lost (", len(log))
	for i, c := range classes {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%s=%d", c, byClass[c])
	}
	fmt.Fprintln(w, ")")
	for _, f := range log {
		fmt.Fprintf(w, "  %-46s %-10s attempts=%d  %s\n", f.PointID, f.Class, f.Attempts, f.Err)
	}
}

// RenderRecommendations writes the §IV-B co-design recommendation list.
func RenderRecommendations(w io.Writer, r Recommendations) {
	fmt.Fprintf(w, "Co-design recommendations for the graph workload:\n")
	fmt.Fprintf(w, "- Power:        %s at %.0f MHz controller frequency (%.3f W/channel)\n",
		r.BestPowerType, r.BestPowerCtrlMHz, r.BestPowerWatts)
	fmt.Fprintf(w, "- Reads/writes: %s with %d channels (CPU %.0f MHz, controller %.0f MHz)\n",
		r.BestEnduranceType, r.BestEnduranceChannels, r.BestEnduranceCPUMHz, r.BestEnduranceCtrlMHz)
	fmt.Fprintf(w, "- Bandwidth:    %s (%.1f MB/s per bank)\n", r.BestBandwidthType, r.BestBandwidthMBs)
	fmt.Fprintf(w, "- Avg latency:  %s (%.1f cycles)\n", r.BestAvgLatencyType, r.BestAvgLatencyCycles)
	fmt.Fprintf(w, "- Total latency: %s (%.1f cycles)\n", r.BestTotalLatencyType, r.BestTotalLatencyCycles)
	fmt.Fprintf(w, "- Surrogate models per metric:\n")
	for _, metric := range memsim.MetricNames {
		if m, ok := r.BestModel[metric]; ok {
			fmt.Fprintf(w, "    %-14s -> %s\n", metric, m)
		}
	}
}
