package dse

import (
	"testing"

	"graphdse/internal/memsim"
)

func TestEnumerateSpaceHas416Points(t *testing.T) {
	points := EnumerateSpace(SpaceParams{})
	if len(points) != 416 {
		t.Fatalf("design space = %d points, paper has 416", len(points))
	}
	counts := map[memsim.MemType]int{}
	for _, p := range points {
		counts[p.Type]++
	}
	if counts[memsim.DRAM] != 32 {
		t.Fatalf("DRAM points = %d, want 32", counts[memsim.DRAM])
	}
	if counts[memsim.NVM] != 192 {
		t.Fatalf("NVM points = %d, want 192", counts[memsim.NVM])
	}
	if counts[memsim.Hybrid] != 192 {
		t.Fatalf("Hybrid points = %d, want 192", counts[memsim.Hybrid])
	}
}

func TestEnumerateSpacePaperParameters(t *testing.T) {
	points := EnumerateSpace(SpaceParams{})
	for _, p := range points {
		switch p.Type {
		case memsim.DRAM:
			if p.TRAS != 24 || p.TRCD != 9 {
				t.Fatalf("DRAM timing %d/%d, paper uses tRAS=24 tRCD=9", p.TRAS, p.TRCD)
			}
		case memsim.NVM, memsim.Hybrid:
			if p.TRAS != 0 {
				t.Fatalf("NVM tRAS = %d, want 0", p.TRAS)
			}
		}
		if p.Type == memsim.Hybrid && (p.DRAMFraction <= 0 || p.DRAMFraction >= 1) {
			t.Fatalf("hybrid fraction %v", p.DRAMFraction)
		}
	}
}

func TestEnumerateSpaceUniqueIDs(t *testing.T) {
	points := EnumerateSpace(SpaceParams{})
	seen := map[string]bool{}
	for _, p := range points {
		id := p.ID()
		if seen[id] {
			t.Fatalf("duplicate ID %s", id)
		}
		seen[id] = true
	}
}

func TestFeatureVectorShape(t *testing.T) {
	p := DesignPoint{Type: memsim.NVM, CPUFreqMHz: 2000, CtrlFreqMHz: 400, Channels: 2, TRCD: 40}
	v := p.FeatureVector()
	if len(v) != len(FeatureNames) {
		t.Fatalf("feature vector length %d, names %d", len(v), len(FeatureNames))
	}
	if v[0] != 2000 || v[1] != 400 || v[2] != 2 || v[4] != 40 {
		t.Fatalf("features wrong: %v", v)
	}
	// One-hot: exactly one of the last three is set.
	if v[6]+v[7]+v[8] != 1 || v[7] != 1 {
		t.Fatalf("one-hot wrong: %v", v[6:])
	}
}

func TestDesignPointConfig(t *testing.T) {
	d := DesignPoint{Type: memsim.DRAM, CPUFreqMHz: 2000, CtrlFreqMHz: 400, Channels: 2, TRAS: 24, TRCD: 9}
	if cfg := d.Config(0); cfg.Type != memsim.DRAM || cfg.Channels != 2 {
		t.Fatalf("DRAM config %+v", cfg)
	}
	n := DesignPoint{Type: memsim.NVM, CPUFreqMHz: 2000, CtrlFreqMHz: 400, Channels: 4, TRCD: 40}
	if cfg := n.Config(0); cfg.Timing.TRCD != 40 || cfg.Timing.TRAS != 0 {
		t.Fatalf("NVM config %+v", cfg.Timing)
	}
	h := DesignPoint{Type: memsim.Hybrid, CPUFreqMHz: 2000, CtrlFreqMHz: 400, Channels: 2, TRCD: 40, DRAMFraction: 0.5}
	cfg := h.Config(10000)
	if cfg.CacheLines != 5000 {
		t.Fatalf("hybrid cache lines = %d, want fraction of footprint", cfg.CacheLines)
	}
	tiny := h.Config(10)
	if tiny.CacheLines < 64 {
		t.Fatalf("cache floor violated: %d", tiny.CacheLines)
	}
}

func TestSmallSpaceParams(t *testing.T) {
	points := EnumerateSpace(SpaceParams{
		CPUFreqsMHz:  []float64{2000},
		CtrlFreqsMHz: []float64{400},
		Channels:     []int{2},
		Fractions:    []float64{0.5},
	})
	// 1 cell × (1 DRAM + 6 NVM + 6 hybrid) = 13.
	if len(points) != 13 {
		t.Fatalf("small space = %d, want 13", len(points))
	}
}
