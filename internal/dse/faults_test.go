package dse

import (
	"testing"
)

func TestPaperFaultsMatchesLegacyFailureRate(t *testing.T) {
	points := EnumerateSpace(SpaceParams{}) // full 416
	inj := PaperFaults(PaperFailureRate, 1)
	n := 0
	for _, p := range points {
		legacy := injectedFailure(p, PaperFailureRate, 1)
		harness := inj.Decide(p, 1) == FaultCrash
		if legacy != harness {
			t.Fatalf("point %s: legacy=%v harness=%v", p.ID(), legacy, harness)
		}
		if harness {
			n++
		}
	}
	// ~10% of 416 ≈ 42 crashes, loosely — the paper's survivorship.
	if n < 20 || n > 70 {
		t.Fatalf("harness selected %d of 416 crashes, want ~42", n)
	}
}

func TestFaultInjectorDecide(t *testing.T) {
	points := EnumerateSpace(tinySpace())
	inj := &FaultInjector{Rules: []FaultRule{
		{Class: FaultCrash, Rate: 0.3, Seed: 1},
		{Class: FaultTransient, Rate: 0.5, Seed: 2, Times: 1},
	}}
	for _, p := range points {
		a, b := inj.Decide(p, 1), inj.Decide(p, 1)
		if a != b {
			t.Fatalf("Decide not deterministic for %s: %s vs %s", p.ID(), a, b)
		}
		// Past its Times budget a transient rule stops firing.
		if a == FaultTransient && inj.Decide(p, 2) == FaultTransient {
			t.Fatalf("transient rule with Times=1 fired on attempt 2 for %s", p.ID())
		}
		// Persistent rules fire on every attempt.
		if a == FaultCrash && inj.Decide(p, 5) != FaultCrash {
			t.Fatalf("crash rule stopped firing on retry for %s", p.ID())
		}
	}
	var nilInj *FaultInjector
	if nilInj.Decide(points[0], 1) != FaultNone {
		t.Fatal("nil injector must inject nothing")
	}
	if nilInj.hasClass(FaultHang) {
		t.Fatal("nil injector has no classes")
	}
}

func TestFaultClassStringRoundTrip(t *testing.T) {
	for _, c := range []FaultClass{FaultNone, FaultCrash, FaultHang, FaultTransient, FaultCorrupt} {
		if got := parseFaultClass(c.String()); got != c {
			t.Fatalf("round trip %s -> %s", c, got)
		}
	}
	if parseFaultClass("garbage") != FaultNone {
		t.Fatal("unknown class name must parse to FaultNone")
	}
}
