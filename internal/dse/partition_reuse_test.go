package dse

import (
	"reflect"
	"sync"
	"testing"

	"graphdse/internal/memsim"
)

// TestSweepPreparedPartitionReuse: a sweep's worker pool must route the
// trace to channels once per mapping geometry, not once per design point.
// The space below spans exactly two geometries (2 and 4 channels; rank/bank
// /row organization is fixed by the config constructors), so across all
// points and workers the prepared trace's partition cache must record
// exactly two builds — everything else replays a cached partition.
func TestSweepPreparedPartitionReuse(t *testing.T) {
	events := smallTrace(t)
	pt, err := memsim.Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	points := EnumerateSpace(SpaceParams{
		CPUFreqsMHz:  []float64{2000, 6500},
		CtrlFreqsMHz: []float64{400},
		Channels:     []int{2, 4},
		Fractions:    []float64{0.25, 0.5},
	})
	if len(points) < 8 {
		t.Fatalf("space too small to exercise reuse: %d points", len(points))
	}
	if _, err := SweepPrepared(pt, points, SweepOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	st := pt.PartitionCacheStats()
	if st.Misses != 2 {
		t.Fatalf("partition builds = %d, want 2 (one per geometry; %d points swept)", st.Misses, len(points))
	}
	if st.Hits != uint64(len(points))-2 {
		t.Fatalf("partition hits = %d, want %d", st.Hits, len(points)-2)
	}
	if st.Entries != 2 {
		t.Fatalf("cached partitions = %d, want 2", st.Entries)
	}
}

// TestPartitionSweepConcurrentStress: many sweeps hammering one
// PreparedTrace concurrently — the single-flight partition cache and the
// engine pool under contention — must all produce the same records a lone
// sweep does. Runs under -race in CI's chaos matrix.
func TestPartitionSweepConcurrentStress(t *testing.T) {
	events := smallTrace(t)
	pt, err := memsim.Prepare(events)
	if err != nil {
		t.Fatal(err)
	}
	points := EnumerateSpace(SpaceParams{
		CPUFreqsMHz:  []float64{2000},
		CtrlFreqsMHz: []float64{400},
		Channels:     []int{2, 4},
		Fractions:    []float64{0.25},
	})
	want, err := SweepPrepared(pt, points, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	const sweeps = 8
	got := make([][]RunRecord, sweeps)
	errs := make([]error, sweeps)
	var wg sync.WaitGroup
	for i := 0; i < sweeps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = SweepPrepared(pt, points, SweepOptions{Workers: 2})
		}(i)
	}
	wg.Wait()
	for i := 0; i < sweeps; i++ {
		if errs[i] != nil {
			t.Fatalf("sweep %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want) {
			t.Fatalf("sweep %d: %d records, want %d", i, len(got[i]), len(want))
		}
		for j := range got[i] {
			if !reflect.DeepEqual(got[i][j].Result, want[j].Result) {
				t.Fatalf("sweep %d record %d (%s): diverged under concurrency",
					i, j, got[i][j].Point.ID())
			}
		}
	}
}
