package dse

import (
	"fmt"
	"hash/fnv"
)

// FaultClass enumerates the failure modes the sweep engine knows how to
// contain. They mirror how the paper's NVMain runs actually die: hard
// crashes (segfaults), hangs that never terminate, transient environment
// errors that succeed on a retry, and runs that "complete" but emit garbage
// statistics.
type FaultClass int

const (
	// FaultNone means the point is healthy.
	FaultNone FaultClass = iota
	// FaultCrash panics inside the supervised worker (the segfault analogue).
	FaultCrash
	// FaultHang blocks until the per-point deadline cancels the attempt.
	FaultHang
	// FaultTransient fails with a retryable error; bounded retry with
	// backoff recovers it.
	FaultTransient
	// FaultCorrupt completes the simulation but poisons a metric with NaN,
	// exercising the result-validation quarantine.
	FaultCorrupt
	// FaultInvariant completes the simulation with metrics that are finite
	// (ValidateMetrics passes) yet physically impossible — bandwidth above
	// the channel bus peak — exercising the inter-stage invariant gate.
	FaultInvariant
)

// String names the class for logs, checkpoints, and failure summaries.
func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultCrash:
		return "crash"
	case FaultHang:
		return "hang"
	case FaultTransient:
		return "transient"
	case FaultCorrupt:
		return "corrupt"
	case FaultInvariant:
		return ReasonInvariant
	default:
		return fmt.Sprintf("FaultClass(%d)", int(c))
	}
}

// parseFaultClass inverts String for checkpoint decoding; unknown names map
// to FaultNone.
func parseFaultClass(s string) FaultClass {
	switch s {
	case "crash":
		return FaultCrash
	case "hang":
		return FaultHang
	case "transient":
		return FaultTransient
	case "corrupt":
		return FaultCorrupt
	case ReasonInvariant:
		return FaultInvariant
	default:
		return FaultNone
	}
}

// FaultRule injects one fault class into a deterministic, seed-selected
// subset of design points.
type FaultRule struct {
	Class FaultClass
	// Rate in [0,1) selects roughly that fraction of points.
	Rate float64
	// Seed varies which points the rule selects; rules with distinct seeds
	// select independent subsets.
	Seed uint64
	// Times limits how many attempts the fault fires on (0 = every attempt).
	// A transient rule with Times=1 fails the first attempt and lets the
	// first retry succeed.
	Times int
}

// FaultInjector is a composable set of fault rules evaluated in order; the
// first matching rule decides the point's fate for a given attempt. It is
// the replacement for the old single FailureRate knob: the paper's
// survivorship mode is just one crash rule (see PaperFaults), and chaos
// tests layer several classes.
type FaultInjector struct {
	Rules []FaultRule
}

// Decide returns the fault class injected for point p on the given attempt
// (1-based), or FaultNone. Deterministic in (point ID, rule seed).
func (inj *FaultInjector) Decide(p DesignPoint, attempt int) FaultClass {
	if inj == nil {
		return FaultNone
	}
	for _, r := range inj.Rules {
		if r.Times > 0 && attempt > r.Times {
			continue
		}
		if injectedFailure(p, r.Rate, r.Seed) {
			return r.Class
		}
	}
	return FaultNone
}

// hasClass reports whether any rule injects the given class.
func (inj *FaultInjector) hasClass(c FaultClass) bool {
	if inj == nil {
		return false
	}
	for _, r := range inj.Rules {
		if r.Class == c {
			return true
		}
	}
	return false
}

// PaperFaults reproduces the paper's survivorship (≈42 of 416 NVMain runs
// segfaulting) as a single crash rule. It selects exactly the same point
// subset as the legacy FailureRate/FailureSeed knobs did.
func PaperFaults(rate float64, seed uint64) *FaultInjector {
	return &FaultInjector{Rules: []FaultRule{{Class: FaultCrash, Rate: rate, Seed: seed}}}
}

// injectedFailure deterministically decides whether a rule selects a point.
func injectedFailure(p DesignPoint, rate float64, seed uint64) bool {
	if rate <= 0 {
		return false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", p.ID(), seed)
	return float64(h.Sum64()%1_000_000)/1_000_000 < rate
}
