package dse

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"graphdse/internal/guard"
)

// guardedOpts is the shared small-workload base for supervised-workflow
// tests.
func guardedOpts() WorkflowOptions {
	return WorkflowOptions{
		Vertices:   256,
		EdgeFactor: 8,
		Seed:       42,
		Space:      smallSpace(),
		SplitSeed:  7,
		Models:     DefaultModels(42)[:1],
	}
}

// TestWorkflowWatchdogCancelsHungSweep is the tentpole acceptance test: every
// sweep point hangs (the PR-1 hang fault) with a per-point deadline far too
// long to save the run, so only the stage watchdog can act. It must cancel
// the stage via context within the heartbeat deadline, classify the failure
// as guard Timeout, and leave the process and the earlier stages healthy.
func TestWorkflowWatchdogCancelsHungSweep(t *testing.T) {
	opts := guardedOpts()
	opts.Sweep = SweepOptions{
		Faults:  &FaultInjector{Rules: []FaultRule{{Class: FaultHang, Rate: 0.9999999}}},
		Timeout: 30 * time.Second, // per-point deadline would fire far too late
		Workers: 4,
	}
	opts.Guard = guard.PipelineOptions{
		Stage: guard.StageOptions{HeartbeatTimeout: 150 * time.Millisecond, Grace: 10 * time.Second},
	}
	start := time.Now()
	res, err := RunWorkflowContext(context.Background(), opts)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("hung sweep completed")
	}
	if got := guard.ClassOf(err); got != guard.Timeout {
		t.Fatalf("class = %v, want Timeout (%v)", got, err)
	}
	if !errors.Is(err, guard.ErrStalled) {
		t.Fatalf("error does not wrap ErrStalled: %v", err)
	}
	var ge *guard.Error
	if !errors.As(err, &ge) || ge.Stage != "sweep" {
		t.Fatalf("failure not attributed to the sweep stage: %v", err)
	}
	// "Within the heartbeat deadline": the watchdog fired long before the
	// 30s per-point deadline or the 10s grace could.
	if elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v", elapsed)
	}
	// The supervision report shows the earlier stages healthy and the sweep
	// timed out — the process itself stayed alive.
	if res == nil || res.Supervision == nil {
		t.Fatal("no supervision report on failure")
	}
	classes := map[string]guard.Class{}
	for _, s := range res.Supervision.Stages {
		classes[s.Name] = s.Class
	}
	if classes["workload"] != guard.None || classes["trace-prep"] != guard.None {
		t.Fatalf("pre-sweep stages unhealthy: %v", classes)
	}
	if classes["sweep"] != guard.Timeout {
		t.Fatalf("sweep stage class = %v", classes["sweep"])
	}
}

// TestWorkflowMemBudgetDownshift pins the graceful-degradation contract: a
// breached heap budget escalates pressure and the sweep's worker pool steps
// down, with every decision in the run report.
func TestWorkflowMemBudgetDownshift(t *testing.T) {
	opts := guardedOpts()
	opts.Sweep = SweepOptions{Workers: 8}
	// A 1-byte soft budget is breached by the very first sample, so by the
	// time the sweep sizes its pool the governor is at max pressure.
	opts.Guard = guard.PipelineOptions{
		Budget: guard.Budget{HeapSoftBytes: 1, SampleEvery: time.Millisecond},
	}
	res, err := RunWorkflowContext(context.Background(), opts)
	if err != nil {
		t.Fatalf("budgeted workflow failed: %v", err)
	}
	if res.Supervision == nil {
		t.Fatal("no supervision report")
	}
	var sawSweepWorkers, sawPressure bool
	for _, d := range res.Supervision.Downshifts {
		if d.Stage == "governor" && d.Resource == "pressure" {
			sawPressure = true
		}
		if d.Stage == "sweep" && d.Resource == "workers" && d.To < d.From {
			// Pressure can step the pool down repeatedly (8→4, 4→2, …);
			// the first recorded downshift starts from the full request.
			if !sawSweepWorkers && d.From != 8 {
				t.Fatalf("first sweep downshift from %d, want 8", d.From)
			}
			sawSweepWorkers = true
			if !strings.Contains(d.Reason, "budget") {
				t.Fatalf("downshift reason %q does not name the budget", d.Reason)
			}
		}
	}
	if !sawPressure || !sawSweepWorkers {
		t.Fatalf("downshifts incomplete: %+v", res.Supervision.Downshifts)
	}
	if res.Supervision.PeakHeapBytes == 0 {
		t.Fatal("peak heap not sampled")
	}
	// Degraded, not dead: the run still produced the paper's outputs.
	if res.SurvivorCount == 0 || len(res.Table1) == 0 {
		t.Fatal("degraded run produced no results")
	}
}

// TestWorkflowInvariantQuarantine pins the companion acceptance case: points
// reporting physically impossible bandwidth are quarantined into the failure
// log under ReasonInvariant and the workflow still completes because the
// survivor count clears MinSurvivors.
func TestWorkflowInvariantQuarantine(t *testing.T) {
	opts := guardedOpts()
	opts.Sweep = SweepOptions{
		Faults:       &FaultInjector{Rules: []FaultRule{{Class: FaultInvariant, Rate: 0.3, Seed: 5}}},
		MinSurvivors: 5,
	}
	res, err := RunWorkflowContext(context.Background(), opts)
	if err != nil {
		t.Fatalf("workflow did not survive the quarantine: %v", err)
	}
	if res.Gate == nil || res.Gate.Quarantined == 0 {
		t.Fatalf("gate quarantined nothing: %+v", res.Gate)
	}
	invariant := 0
	for _, f := range res.FailureLog {
		if f.Class == ReasonInvariant {
			invariant++
		}
	}
	if invariant != res.Gate.Quarantined {
		t.Fatalf("failure log has %d invariant entries, gate reports %d", invariant, res.Gate.Quarantined)
	}
	if res.SurvivorCount != len(res.Records)-res.Gate.Quarantined {
		t.Fatalf("survivors = %d of %d with %d quarantined",
			res.SurvivorCount, len(res.Records), res.Gate.Quarantined)
	}
	if res.SurvivorCount < opts.Sweep.MinSurvivors {
		t.Fatalf("completed below MinSurvivors: %d", res.SurvivorCount)
	}
}

// TestWorkflowBelowMinSurvivorsAfterGate: when the gate pushes survivorship
// under the bar, the invariant-gate stage fails with the structured sweep
// failure instead of feeding a poisoned dataset forward.
func TestWorkflowBelowMinSurvivorsAfterGate(t *testing.T) {
	opts := guardedOpts()
	opts.Sweep = SweepOptions{
		Faults:       &FaultInjector{Rules: []FaultRule{{Class: FaultInvariant, Rate: 0.3, Seed: 5}}},
		MinSurvivors: len(EnumerateSpace(opts.Space)), // impossible after any quarantine
	}
	res, err := RunWorkflowContext(context.Background(), opts)
	var sf *SweepFailureError
	if !errors.As(err, &sf) {
		t.Fatalf("err = %v, want *SweepFailureError", err)
	}
	if sf.ByClass[ReasonInvariant] == 0 {
		t.Fatalf("failure summary missing invariant class: %v", sf.ByClass)
	}
	var ge *guard.Error
	if !errors.As(err, &ge) || ge.Stage != "invariant-gate" {
		t.Fatalf("failure not attributed to the gate stage: %v", err)
	}
	if res == nil || res.Dataset != nil {
		t.Fatal("dataset built despite failing the survivorship bar")
	}
}

func TestTrainAndEvaluateCancellation(t *testing.T) {
	events := smallTrace(t)
	records, err := Sweep(events, EnumerateSpace(smallSpace()), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	// Already-cancelled context: no fit runs at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fits := 0
	_, _, err = TrainAndEvaluateContext(ctx, ds, DefaultModels(1), 0.2, 1, func() { fits++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fits != 0 {
		t.Fatalf("%d fits ran under a cancelled context", fits)
	}
	// Cancellation mid-training stops between fits.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	fits = 0
	_, _, err = TrainAndEvaluateContext(ctx, ds, DefaultModels(1), 0.2, 1, func() {
		fits++
		if fits == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fits != 3 {
		t.Fatalf("fits after cancellation = %d, want exactly 3", fits)
	}
	if guard.ClassOf(errors.Unwrap(err)) == guard.Canceled {
		// the wrapped cause is context.Canceled; ClassOf on the full error
		// must agree
		if got := guard.ClassOf(err); got != guard.Canceled {
			t.Fatalf("class = %v, want Canceled", got)
		}
	}
}

// TestWorkflowPipelineDeadline: an expired whole-pipeline deadline stops the
// run and classifies as Timeout, whichever stage it lands in.
func TestWorkflowPipelineDeadline(t *testing.T) {
	opts := guardedOpts()
	opts.Repeats = 50 // enough workload to outlive a tiny deadline
	opts.Guard = guard.PipelineOptions{
		Deadline: 5 * time.Millisecond,
		Stage:    guard.StageOptions{Grace: 10 * time.Second},
	}
	res, err := RunWorkflowContext(context.Background(), opts)
	if err == nil {
		t.Fatal("workflow beat a 5ms deadline over 50 BFS roots")
	}
	if got := guard.ClassOf(err); got != guard.Timeout {
		t.Fatalf("class = %v, want Timeout (%v)", got, err)
	}
	if res == nil || res.Supervision == nil || len(res.Supervision.Stages) == 0 {
		t.Fatal("no supervision report")
	}
}
