package dse

import (
	"bytes"
	"strings"
	"testing"

	"graphdse/internal/memsim"
	"graphdse/internal/sysim"
)

func TestParetoFrontBasics(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	records, err := Sweep(events, points, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	front, err := ParetoFront(records, DefaultObjectives())
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 || len(front) > len(records) {
		t.Fatalf("front size = %d of %d", len(front), len(records))
	}
	// No front member may be dominated by any record.
	objIdx := map[string]int{}
	for i, n := range memsim.MetricNames {
		objIdx[n] = i
	}
	vec := func(r RunRecord) []float64 {
		m := r.Result.MetricVector()
		return []float64{m[objIdx["Power"]], -m[objIdx["Bandwidth"]], m[objIdx["AvgLatency"]], m[objIdx["TotalLatency"]]}
	}
	for _, f := range front {
		fv := vec(f)
		for _, r := range Survivors(records) {
			if r.Point.ID() == f.Point.ID() {
				continue
			}
			if dominates(vec(r), fv) {
				t.Fatalf("front member %s dominated by %s", f.Point.ID(), r.Point.ID())
			}
		}
	}
}

func TestParetoFrontSingleObjective(t *testing.T) {
	events := smallTrace(t)
	points := EnumerateSpace(smallSpace())
	records, err := Sweep(events, points, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	front, err := ParetoFront(records, []Objective{{Metric: "Power"}})
	if err != nil {
		t.Fatal(err)
	}
	// A single minimize objective leaves only the global minimum (or ties).
	var minPower float64 = -1
	for _, r := range Survivors(records) {
		p := r.Result.AvgPowerPerChannel
		if minPower < 0 || p < minPower {
			minPower = p
		}
	}
	for _, f := range front {
		if f.Result.AvgPowerPerChannel != minPower {
			t.Fatalf("front member power %v != min %v", f.Result.AvgPowerPerChannel, minPower)
		}
	}
}

func TestParetoFrontErrors(t *testing.T) {
	if _, err := ParetoFront(nil, DefaultObjectives()); err == nil {
		t.Fatal("expected no-data error")
	}
	events := smallTrace(t)
	records, err := Sweep(events, EnumerateSpace(smallSpace()), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParetoFront(records, nil); err == nil {
		t.Fatal("expected no-objectives error")
	}
	if _, err := ParetoFront(records, []Objective{{Metric: "nope"}}); err == nil {
		t.Fatal("expected unknown-metric error")
	}
}

func TestDominates(t *testing.T) {
	if !dominates([]float64{1, 1}, []float64{2, 2}) {
		t.Fatal("strict domination missed")
	}
	if !dominates([]float64{1, 2}, []float64{2, 2}) {
		t.Fatal("partial-strict domination missed")
	}
	if dominates([]float64{1, 3}, []float64{2, 2}) {
		t.Fatal("trade-off wrongly dominated")
	}
	if dominates([]float64{2, 2}, []float64{2, 2}) {
		t.Fatal("equal vectors must not dominate")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	events := smallTrace(t)
	records, err := Sweep(events, EnumerateSpace(smallSpace()), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), ds.Len())
	}
	for i := range ds.X {
		for j := range ds.X[i] {
			if got.X[i][j] != ds.X[i][j] {
				t.Fatalf("X[%d][%d] = %v, want %v", i, j, got.X[i][j], ds.X[i][j])
			}
		}
	}
	for _, name := range memsim.MetricNames {
		for i := range ds.Y[name] {
			if got.Y[name][i] != ds.Y[name][i] {
				t.Fatalf("Y[%s][%d] mismatch", name, i)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("expected error for nil dataset")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty csv")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("expected error for wrong column count")
	}
	header := strings.Join(append(append([]string{}, FeatureNames...), memsim.MetricNames...), ",")
	if _, err := ReadCSV(strings.NewReader(header + "\nnot,enough\n")); err == nil {
		t.Fatal("expected error for short row")
	}
	badVal := header + "\n" + strings.Repeat("x,", len(FeatureNames)+len(memsim.MetricNames)-1) + "x\n"
	if _, err := ReadCSV(strings.NewReader(badVal)); err == nil {
		t.Fatal("expected error for non-numeric value")
	}
}

func TestCompareWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("workload comparison in -short mode")
	}
	specs := []WorkloadSpec{
		{Kind: WorkloadBFS, Vertices: 128, EdgeFactor: 4, Seed: 1},
		{Kind: WorkloadPageRank, Vertices: 128, EdgeFactor: 4, Seed: 1, PRIters: 2},
		{Kind: WorkloadCC, Vertices: 128, EdgeFactor: 4, Seed: 1},
	}
	comps, err := CompareWorkloads(sysim.DefaultConfig(), specs, smallSpace(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("comparisons = %d", len(comps))
	}
	for _, c := range comps {
		if c.TraceEvents == 0 {
			t.Fatalf("%s produced no events", c.Spec.Label())
		}
		if len(c.Figure2) == 0 {
			t.Fatalf("%s has no figure2 rows", c.Spec.Label())
		}
	}
	var buf bytes.Buffer
	RenderWorkloadComparison(&buf, comps)
	if !strings.Contains(buf.String(), "bfs-n128-ef4") {
		t.Fatalf("render missing workload label:\n%s", buf.String())
	}
}

func TestTraceWorkloadErrors(t *testing.T) {
	if _, _, err := TraceWorkload(sysim.DefaultConfig(), WorkloadSpec{Kind: "nope", Vertices: 64, EdgeFactor: 4}); err == nil {
		t.Fatal("expected unknown-workload error")
	}
	if _, _, err := TraceWorkload(sysim.DefaultConfig(), WorkloadSpec{Kind: WorkloadBFS, Vertices: 1, EdgeFactor: 4}); err == nil {
		t.Fatal("expected graph error")
	}
	if _, err := CompareWorkloads(sysim.DefaultConfig(), nil, smallSpace(), SweepOptions{}); err == nil {
		t.Fatal("expected no-workloads error")
	}
}

func TestFeatureImportanceReport(t *testing.T) {
	events := smallTrace(t)
	records, err := Sweep(events, EnumerateSpace(SpaceParams{
		CPUFreqsMHz:  []float64{2000, 6500},
		CtrlFreqsMHz: []float64{400, 1600},
		Channels:     []int{2, 4},
	}), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(records)
	if err != nil {
		t.Fatal(err)
	}
	imps, err := FeatureImportanceReport(ds, "Power", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != len(FeatureNames) {
		t.Fatalf("importances = %d", len(imps))
	}
	// NVM power is controller-frequency-dominated: ControlFreq or the
	// memory-type indicators must rank in the top three.
	topNames := map[string]bool{}
	for _, imp := range imps[:3] {
		topNames[imp.Name] = true
	}
	if !topNames["ControlFreq"] && !topNames["isDRAM"] && !topNames["isNVM"] && !topNames["isHybrid"] {
		t.Fatalf("expected frequency or type features on top, got %+v", imps[:3])
	}
	var buf bytes.Buffer
	RenderImportance(&buf, "Power", imps)
	if !strings.Contains(buf.String(), "ControlFreq") {
		t.Fatal("render missing feature names")
	}
	if _, err := FeatureImportanceReport(nil, "Power", 1); err == nil {
		t.Fatal("expected no-data error")
	}
	if _, err := FeatureImportanceReport(ds, "nope", 1); err == nil {
		t.Fatal("expected unknown-metric error")
	}
}
