package ml

import (
	"math/rand"
	"testing"
)

func syntheticLinear(n, d int, seed int64, noise float64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, d)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.Float64()
		}
		y[i] = 0.5
		for j := range w {
			y[i] += w[j] * X[i][j]
		}
		y[i] += noise * rng.NormFloat64()
	}
	return X, y
}

func TestTrainTestSplitSizes(t *testing.T) {
	X, y := syntheticLinear(100, 3, 1, 0)
	trX, trY, teX, teY, err := TrainTestSplit(X, y, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(teX) != 20 || len(teY) != 20 || len(trX) != 80 || len(trY) != 80 {
		t.Fatalf("sizes = %d/%d train, %d/%d test", len(trX), len(trY), len(teX), len(teY))
	}
}

func TestTrainTestSplitDisjointAndComplete(t *testing.T) {
	n := 50
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{float64(i)}
		y[i] = float64(i)
	}
	trX, _, teX, _, err := TrainTestSplit(X, y, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]int{}
	for _, r := range trX {
		seen[r[0]]++
	}
	for _, r := range teX {
		seen[r[0]]++
	}
	if len(seen) != n {
		t.Fatalf("split lost rows: %d unique of %d", len(seen), n)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("row %v appears %d times", v, c)
		}
	}
}

func TestTrainTestSplitDeterministic(t *testing.T) {
	X, y := syntheticLinear(40, 2, 3, 0)
	_, _, te1, _, _ := TrainTestSplit(X, y, 0.25, 99)
	_, _, te2, _, _ := TrainTestSplit(X, y, 0.25, 99)
	for i := range te1 {
		if te1[i][0] != te2[i][0] {
			t.Fatal("same seed must give same split")
		}
	}
}

func TestTrainTestSplitErrors(t *testing.T) {
	X, y := syntheticLinear(10, 2, 1, 0)
	if _, _, _, _, err := TrainTestSplit(X, y, 0, 1); err == nil {
		t.Fatal("expected error for frac=0")
	}
	if _, _, _, _, err := TrainTestSplit(X, y, 1, 1); err == nil {
		t.Fatal("expected error for frac=1")
	}
	if _, _, _, _, err := TrainTestSplit(nil, nil, 0.5, 1); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, _, _, _, err := TrainTestSplit(X, y[:5], 0.5, 1); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestTrainTestSplitExtremeFractions(t *testing.T) {
	X, y := syntheticLinear(10, 2, 1, 0)
	_, _, teX, _, err := TrainTestSplit(X, y, 0.01, 1)
	if err != nil || len(teX) != 1 {
		t.Fatalf("tiny frac: test size %d, err %v", len(teX), err)
	}
	trX, _, _, _, err := TrainTestSplit(X, y, 0.99, 1)
	if err != nil || len(trX) < 1 {
		t.Fatalf("huge frac: train size %d, err %v", len(trX), err)
	}
}

func TestKFoldPartition(t *testing.T) {
	trains, tests, err := KFold(10, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(trains) != 3 || len(tests) != 3 {
		t.Fatalf("folds = %d", len(trains))
	}
	counts := map[int]int{}
	for f := range tests {
		for _, i := range tests[f] {
			counts[i]++
		}
		if len(trains[f])+len(tests[f]) != 10 {
			t.Fatalf("fold %d sizes %d+%d != 10", f, len(trains[f]), len(tests[f]))
		}
		inTrain := map[int]bool{}
		for _, i := range trains[f] {
			inTrain[i] = true
		}
		for _, i := range tests[f] {
			if inTrain[i] {
				t.Fatalf("fold %d: index %d in both train and test", f, i)
			}
		}
	}
	if len(counts) != 10 {
		t.Fatalf("test folds cover %d of 10 indices", len(counts))
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d appears in %d test folds", i, c)
		}
	}
}

func TestKFoldErrors(t *testing.T) {
	if _, _, err := KFold(5, 1, 1); err == nil {
		t.Fatal("expected error for k=1")
	}
	if _, _, err := KFold(3, 5, 1); err == nil {
		t.Fatal("expected error for k>n")
	}
}

func TestGather(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{10, 20, 30}
	gx, gy := Gather(X, y, []int{2, 0})
	if gx[0][0] != 3 || gx[1][0] != 1 || gy[0] != 30 || gy[1] != 10 {
		t.Fatalf("Gather = %v %v", gx, gy)
	}
}

func TestCrossValidateLinear(t *testing.T) {
	X, y := syntheticLinear(60, 3, 5, 0)
	evals, err := CrossValidate(func() Regressor { return &LinearRegression{} }, X, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 5 {
		t.Fatalf("got %d evals", len(evals))
	}
	mean := MeanEvaluation(evals)
	if mean.R2 < 0.999 {
		t.Fatalf("noiseless linear CV R2 = %v", mean.R2)
	}
}

func TestMeanEvaluationEmpty(t *testing.T) {
	e := MeanEvaluation(nil)
	if e.MSE != 0 || e.R2 != 0 {
		t.Fatalf("empty mean = %+v", e)
	}
}
