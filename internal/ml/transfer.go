package ml

import "fmt"

// TransferRegressor implements residual transfer learning, the paper's §V
// "transfer learning" direction: a source model trained on a related task
// (e.g. the BFS-workload dataset) provides the prior, and a residual model
// fitted on a few target-task labels (e.g. a new workload's dataset) learns
// only the difference. Prediction = source(x) + residual(x).
//
// With few target labels this beats both reusing the source model unchanged
// (ignores the shift) and training from scratch on the target (too little
// data).
type TransferRegressor struct {
	// Source is the pre-trained model from the related task (required,
	// already fitted).
	Source Regressor
	// NewResidual builds the residual learner; defaults to a shallow
	// gradient-boosted model that regularizes toward zero correction.
	NewResidual func() Regressor
	// Seed for the default residual model.
	Seed int64

	residual Regressor
	fitted   bool
}

// Fit trains the residual on the target task's labels.
func (t *TransferRegressor) Fit(X [][]float64, y []float64) error {
	if t.Source == nil {
		return fmt.Errorf("%w: transfer without a source model", ErrBadInput)
	}
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	resid := make([]float64, len(y))
	for i, row := range X {
		resid[i] = y[i] - t.Source.Predict(row)
	}
	if t.NewResidual == nil {
		t.NewResidual = func() Regressor {
			return &GradientBoosting{NumStages: 40, LearningRate: 0.1, MaxDepth: 2, Seed: t.Seed}
		}
	}
	t.residual = t.NewResidual()
	if err := t.residual.Fit(X, resid); err != nil {
		return fmt.Errorf("transfer residual: %w", err)
	}
	t.fitted = true
	return nil
}

// Predict returns source(x) + residual(x).
func (t *TransferRegressor) Predict(x []float64) float64 {
	if !t.fitted {
		panic(ErrNotFitted)
	}
	return t.Source.Predict(x) + t.residual.Predict(x)
}

// Name implements Named.
func (t *TransferRegressor) Name() string { return "Transfer" }
