package ml

import (
	"math"
	"math/rand"
	"testing"
)

func alOracle(x []float64) float64 {
	return math.Sin(3*x[0]) + x[1]*x[1]
}

func alPool(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pool := make([][]float64, n)
	for i := range pool {
		pool[i] = []float64{rng.Float64() * 2, rng.Float64() * 2}
	}
	return pool
}

func TestActiveLearnerRunsAndImproves(t *testing.T) {
	pool := alPool(120, 1)
	test := alPool(60, 2)
	testY := make([]float64, len(test))
	for i, x := range test {
		testY[i] = alOracle(x)
	}
	al := &ActiveLearner{BatchSize: 8, Seed: 3}
	recs, err := al.Run(pool, alOracle, test, testY, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("rounds = %d", len(recs))
	}
	if recs[0].Labeled != 10 {
		t.Fatalf("initial labeled = %d", recs[0].Labeled)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Labeled != recs[i-1].Labeled+8 {
			t.Fatalf("label growth wrong at round %d: %d -> %d", i, recs[i-1].Labeled, recs[i].Labeled)
		}
	}
	first, last := recs[0].TestMSE, recs[len(recs)-1].TestMSE
	if last >= first {
		t.Fatalf("active learning did not improve: MSE %v -> %v", first, last)
	}
	if al.Model() == nil {
		t.Fatal("Model() should return the fitted surrogate")
	}
}

func TestActiveLearnerPoolExhaustion(t *testing.T) {
	pool := alPool(12, 4)
	al := &ActiveLearner{BatchSize: 5, Seed: 5}
	recs, err := al.Run(pool, alOracle, nil, nil, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if last.Labeled > len(pool) {
		t.Fatalf("labeled %d > pool %d", last.Labeled, len(pool))
	}
	if len(recs) >= 100 {
		t.Fatal("loop should stop when pool exhausted")
	}
}

func TestActiveLearnerInputValidation(t *testing.T) {
	if _, err := (&ActiveLearner{}).Run(nil, alOracle, nil, nil, 1, 1); err == nil {
		t.Fatal("expected error for empty pool")
	}
	pool := alPool(5, 6)
	if _, err := (&ActiveLearner{}).Run(pool, alOracle, nil, nil, 0, 1); err == nil {
		t.Fatal("expected error for nInit=0")
	}
	if _, err := (&ActiveLearner{}).Run(pool, alOracle, nil, nil, 6, 1); err == nil {
		t.Fatal("expected error for nInit>pool")
	}
}

func TestRandomSamplerBaseline(t *testing.T) {
	pool := alPool(100, 7)
	test := alPool(50, 8)
	testY := make([]float64, len(test))
	for i, x := range test {
		testY[i] = alOracle(x)
	}
	recs, err := RandomSampler(pool, alOracle, test, testY, 10, 8, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("rounds = %d", len(recs))
	}
	if recs[len(recs)-1].TestMSE >= recs[0].TestMSE {
		t.Fatalf("random sampling should improve with more labels: %v -> %v",
			recs[0].TestMSE, recs[len(recs)-1].TestMSE)
	}
}

func TestRandomSamplerValidation(t *testing.T) {
	if _, err := RandomSampler(nil, alOracle, nil, nil, 1, 1, 1, 1); err == nil {
		t.Fatal("expected error for empty pool")
	}
}
