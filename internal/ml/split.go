package ml

import (
	"fmt"
	"math/rand"
)

// TrainTestSplit shuffles (X, y) with the given seed and splits off
// testFrac of the samples as a test set, mirroring scikit-learn's
// train_test_split used by the paper (80/20).
func TrainTestSplit(X [][]float64, y []float64, testFrac float64, seed int64) (trainX [][]float64, trainY []float64, testX [][]float64, testY []float64, err error) {
	if _, err = checkXY(X, y); err != nil {
		return nil, nil, nil, nil, err
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("%w: testFrac %v must be in (0,1)", ErrBadInput, testFrac)
	}
	n := len(X)
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest == 0 {
		nTest = 1
	}
	if nTest >= n {
		nTest = n - 1
	}
	for k, i := range idx {
		if k < nTest {
			testX = append(testX, X[i])
			testY = append(testY, y[i])
		} else {
			trainX = append(trainX, X[i])
			trainY = append(trainY, y[i])
		}
	}
	return trainX, trainY, testX, testY, nil
}

// KFold yields k (train, test) index partitions over n samples, shuffled by
// seed. Fold sizes differ by at most one.
func KFold(n, k int, seed int64) ([][]int, [][]int, error) {
	if k < 2 || k > n {
		return nil, nil, fmt.Errorf("%w: k=%d for n=%d", ErrBadInput, k, n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	trainSets := make([][]int, k)
	testSets := make([][]int, k)
	base, rem := n/k, n%k
	start := 0
	for f := 0; f < k; f++ {
		size := base
		if f < rem {
			size++
		}
		test := append([]int(nil), perm[start:start+size]...)
		train := make([]int, 0, n-size)
		train = append(train, perm[:start]...)
		train = append(train, perm[start+size:]...)
		trainSets[f] = train
		testSets[f] = test
		start += size
	}
	return trainSets, testSets, nil
}

// Gather selects the rows of X and elements of y at the given indices.
func Gather(X [][]float64, y []float64, idx []int) ([][]float64, []float64) {
	gx := make([][]float64, len(idx))
	gy := make([]float64, len(idx))
	for k, i := range idx {
		gx[k] = X[i]
		gy[k] = y[i]
	}
	return gx, gy
}

// CrossValidate fits a fresh model from factory on each of k folds and
// returns the per-fold test evaluations.
func CrossValidate(factory func() Regressor, X [][]float64, y []float64, k int, seed int64) ([]Evaluation, error) {
	if _, err := checkXY(X, y); err != nil {
		return nil, err
	}
	trains, tests, err := KFold(len(X), k, seed)
	if err != nil {
		return nil, err
	}
	evals := make([]Evaluation, k)
	for f := 0; f < k; f++ {
		trX, trY := Gather(X, y, trains[f])
		teX, teY := Gather(X, y, tests[f])
		m := factory()
		if err := m.Fit(trX, trY); err != nil {
			return nil, fmt.Errorf("fold %d: %w", f, err)
		}
		evals[f] = Evaluate(teY, PredictBatch(m, teX))
	}
	return evals, nil
}

// MeanEvaluation averages a slice of evaluations.
func MeanEvaluation(evals []Evaluation) Evaluation {
	var out Evaluation
	if len(evals) == 0 {
		return out
	}
	for _, e := range evals {
		out.MSE += e.MSE
		out.RMSE += e.RMSE
		out.MAE += e.MAE
		out.R2 += e.R2
	}
	n := float64(len(evals))
	out.MSE /= n
	out.RMSE /= n
	out.MAE /= n
	out.R2 /= n
	return out
}
