package ml

import (
	"math"
	"testing"
)

func TestMLPFitsLinearFunction(t *testing.T) {
	X, y := syntheticLinear(120, 3, 21, 0)
	m := NewMLP()
	m.Seed = 1
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, PredictBatch(m, X)); r2 < 0.98 {
		t.Fatalf("MLP linear train R2 = %v", r2)
	}
}

func TestMLPFitsNonlinearFunction(t *testing.T) {
	X, y := syntheticFriedman(300, 22)
	trX, trY, teX, teY, err := TrainTestSplit(X, y, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMLP()
	m.Seed = 2
	m.Epochs = 600
	if err := m.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(teY, PredictBatch(m, teX)); r2 < 0.85 {
		t.Fatalf("MLP test R2 = %v", r2)
	}
}

func TestMLPDeeperNetwork(t *testing.T) {
	X, y := syntheticFriedman(150, 23)
	m := &MLP{Hidden: []int{16, 16}, Epochs: 400, LearningRate: 0.01, Seed: 3}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, PredictBatch(m, X)); r2 < 0.9 {
		t.Fatalf("two-layer MLP train R2 = %v", r2)
	}
}

func TestMLPMiniBatch(t *testing.T) {
	X, y := syntheticLinear(100, 2, 24, 0.01)
	m := NewMLP()
	m.BatchSize = 16
	m.Seed = 4
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, PredictBatch(m, X)); r2 < 0.95 {
		t.Fatalf("mini-batch MLP R2 = %v", r2)
	}
}

func TestMLPDeterministicWithSeed(t *testing.T) {
	X, y := syntheticLinear(50, 2, 25, 0)
	a := NewMLP()
	a.Seed = 7
	b := NewMLP()
	b.Seed = 7
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same-seed MLPs must agree")
		}
	}
}

func TestMLPValidation(t *testing.T) {
	m := NewMLP()
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	bad := &MLP{Hidden: []int{-1}}
	if err := bad.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("expected error for negative hidden width")
	}
	mustPanicML(t, func() { NewMLP().Predict([]float64{1}) })
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	mustPanicML(t, func() { m.Predict([]float64{1, 2}) })
	if m.Name() != "MLP" {
		t.Fatal("name wrong")
	}
}

func TestSelfTrainingUsesPool(t *testing.T) {
	X, y := syntheticFriedman(400, 26)
	// 40 labeled, 200 pool, 160 test.
	lx, ly := X[:40], y[:40]
	pool := X[40:240]
	teX, teY := X[240:], y[240:]

	st := &SelfTraining{Seed: 1}
	if err := st.FitSemi(lx, ly, pool); err != nil {
		t.Fatal(err)
	}
	if st.PseudoLabeled == 0 {
		t.Fatal("no pseudo-labels assigned")
	}
	semi := MSE(teY, PredictBatch(st, teX))

	base := &RandomForest{NumTrees: 100, Seed: 2}
	if err := base.Fit(lx, ly); err != nil {
		t.Fatal(err)
	}
	sup := MSE(teY, PredictBatch(base, teX))
	// Self-training should not be catastrophically worse than the
	// supervised baseline on the same labels (and is usually comparable or
	// better on smooth responses).
	if semi > 2*sup {
		t.Fatalf("self-training MSE %v vs supervised %v", semi, sup)
	}
}

func TestSelfTrainingWithoutPool(t *testing.T) {
	X, y := syntheticLinear(60, 2, 27, 0)
	st := &SelfTraining{Seed: 3}
	if err := st.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if st.PseudoLabeled != 0 {
		t.Fatalf("pseudo-labeled %d with empty pool", st.PseudoLabeled)
	}
	if r2 := R2(y, PredictBatch(st, X)); r2 < 0.9 {
		t.Fatalf("R2 = %v", r2)
	}
	if st.Name() != "SelfTrain" {
		t.Fatal("name wrong")
	}
	mustPanicML(t, func() { (&SelfTraining{}).Predict([]float64{1}) })
}

func TestSelfTrainingValidation(t *testing.T) {
	st := &SelfTraining{}
	if err := st.FitSemi(nil, nil, nil); err == nil {
		t.Fatal("expected error for empty labels")
	}
}

func TestPermutationImportanceFindsSignal(t *testing.T) {
	// y depends only on feature 0; features 1 and 2 are noise.
	X, y := syntheticLinear(200, 1, 28, 0)
	for i := range X {
		X[i] = append(X[i], float64(i%7), float64(i%3))
	}
	m := &RandomForest{NumTrees: 50, Seed: 1}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imps, err := PermutationImportance(m, X, y, []string{"signal", "noiseA", "noiseB"}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if imps[0].Name != "signal" {
		t.Fatalf("top feature = %s, want signal (%+v)", imps[0].Name, imps)
	}
	if imps[0].Importance <= imps[1].Importance {
		t.Fatalf("signal importance not dominant: %+v", imps)
	}
	// Importances are sorted descending.
	for i := 1; i < len(imps); i++ {
		if imps[i].Importance > imps[i-1].Importance {
			t.Fatal("importances not sorted")
		}
	}
}

func TestPermutationImportanceValidation(t *testing.T) {
	X, y := syntheticLinear(20, 2, 29, 0)
	m := &LinearRegression{}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if _, err := PermutationImportance(m, nil, nil, nil, 3, 1); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := PermutationImportance(m, X, y, []string{"only-one"}, 3, 1); err == nil {
		t.Fatal("expected error for name mismatch")
	}
	// Default names.
	imps, err := PermutationImportance(m, X, y, nil, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 2 {
		t.Fatalf("importances = %d", len(imps))
	}
	if imps[0].Name != "f0" && imps[0].Name != "f1" {
		t.Fatalf("default name = %q", imps[0].Name)
	}
}

func TestPermutationImportanceDoesNotMutateX(t *testing.T) {
	X, y := syntheticLinear(30, 2, 30, 0)
	orig := make([][]float64, len(X))
	for i := range X {
		orig[i] = append([]float64(nil), X[i]...)
	}
	m := &LinearRegression{}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if _, err := PermutationImportance(m, X, y, nil, 3, 1); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		for j := range X[i] {
			if X[i][j] != orig[i][j] {
				t.Fatal("PermutationImportance mutated X")
			}
		}
	}
}

func TestMLPVsLinearOnNonlinear(t *testing.T) {
	// Sanity: the MLP must beat linear regression on a clearly nonlinear
	// surface.
	X, y := syntheticFriedman(250, 31)
	lin := &LinearRegression{}
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mlp := NewMLP()
	mlp.Seed = 5
	mlp.Epochs = 500
	if err := mlp.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	linMSE := MSE(y, PredictBatch(lin, X))
	mlpMSE := MSE(y, PredictBatch(mlp, X))
	if mlpMSE >= linMSE {
		t.Fatalf("MLP MSE %v should beat linear %v on Friedman surface", mlpMSE, linMSE)
	}
	if math.IsNaN(mlpMSE) {
		t.Fatal("MLP diverged")
	}
}
