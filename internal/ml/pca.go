package ml

import (
	"fmt"

	"graphdse/internal/mat"
)

// PCA is principal-component analysis over the feature covariance matrix
// (Jacobi eigendecomposition) — a dimensionality-reduction preprocessor for
// the DSE feature space.
type PCA struct {
	// Components is the target dimensionality (<=0 keeps all).
	Components int

	mean      []float64
	basis     *mat.Dense // d × k projection matrix
	Explained []float64  // per-component explained-variance ratio
	fitted    bool
}

// Fit learns the projection from X.
func (p *PCA) Fit(X [][]float64) error {
	if len(X) < 2 || len(X[0]) == 0 {
		return fmt.Errorf("%w: PCA needs >= 2 samples", ErrBadInput)
	}
	d := len(X[0])
	n := len(X)
	p.mean = make([]float64, d)
	for _, row := range X {
		if len(row) != d {
			return fmt.Errorf("%w: ragged rows", ErrBadInput)
		}
		for j, v := range row {
			p.mean[j] += v
		}
	}
	for j := range p.mean {
		p.mean[j] /= float64(n)
	}
	// Covariance matrix.
	cov := mat.NewDense(d, d, nil)
	for _, row := range X {
		for i := 0; i < d; i++ {
			di := row[i] - p.mean[i]
			for j := i; j < d; j++ {
				cov.Set(i, j, cov.At(i, j)+di*(row[j]-p.mean[j]))
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := cov.At(i, j) / float64(n-1)
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	values, vectors, err := mat.JacobiEigen(cov, 60)
	if err != nil {
		return err
	}
	k := p.Components
	if k <= 0 || k > d {
		k = d
	}
	p.basis = mat.NewDense(d, k, nil)
	for i := 0; i < d; i++ {
		for j := 0; j < k; j++ {
			p.basis.Set(i, j, vectors.At(i, j))
		}
	}
	var total float64
	for _, v := range values {
		if v > 0 {
			total += v
		}
	}
	p.Explained = make([]float64, k)
	for j := 0; j < k; j++ {
		if total > 0 && values[j] > 0 {
			p.Explained[j] = values[j] / total
		}
	}
	p.fitted = true
	return nil
}

// Transform projects rows onto the learned components.
func (p *PCA) Transform(X [][]float64) [][]float64 {
	if !p.fitted {
		panic(ErrNotFitted)
	}
	d, k := p.basis.Dims()
	out := make([][]float64, len(X))
	centered := make([]float64, d)
	for i, row := range X {
		if len(row) != d {
			panic(fmt.Sprintf("ml: PCA expects %d features, got %d", d, len(row)))
		}
		for j, v := range row {
			centered[j] = v - p.mean[j]
		}
		proj := make([]float64, k)
		for c := 0; c < k; c++ {
			var s float64
			for j := 0; j < d; j++ {
				s += centered[j] * p.basis.At(j, c)
			}
			proj[c] = s
		}
		out[i] = proj
	}
	return out
}

// FitTransform fits and projects in one call.
func (p *PCA) FitTransform(X [][]float64) ([][]float64, error) {
	if err := p.Fit(X); err != nil {
		return nil, err
	}
	return p.Transform(X), nil
}
