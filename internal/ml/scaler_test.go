package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinMaxScalerBasic(t *testing.T) {
	X := [][]float64{{0, 10}, {5, 20}, {10, 30}}
	var s MinMaxScaler
	out, err := s.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0, 0}, {0.5, 0.5}, {1, 1}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(out[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("out[%d][%d] = %v, want %v", i, j, out[i][j], want[i][j])
			}
		}
	}
}

func TestMinMaxScalerConstantColumn(t *testing.T) {
	X := [][]float64{{7, 1}, {7, 2}}
	var s MinMaxScaler
	out, err := s.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 0 || out[1][0] != 0 {
		t.Fatalf("constant column should map to 0, got %v", out)
	}
}

func TestMinMaxScalerInverseRoundTrip(t *testing.T) {
	X := [][]float64{{1, -5}, {3, 5}, {2, 0}}
	var s MinMaxScaler
	out, err := s.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		back := s.Inverse(out[i])
		for j := range back {
			if math.Abs(back[j]-X[i][j]) > 1e-12 {
				t.Fatalf("inverse mismatch row %d: %v vs %v", i, back, X[i])
			}
		}
	}
}

func TestMinMaxScalerErrors(t *testing.T) {
	var s MinMaxScaler
	if err := s.Fit(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if err := s.Fit([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error on ragged input")
	}
	mustPanicML(t, func() { s.Transform([][]float64{{1}}) }) // not fitted
	if err := s.Fit([][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	mustPanicML(t, func() { s.TransformRow([]float64{1}) }) // wrong dim
	mustPanicML(t, func() { s.Inverse([]float64{1}) })
}

func TestVecMinMaxScaler(t *testing.T) {
	var s VecMinMaxScaler
	if err := s.Fit([]float64{2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	out := s.Transform([]float64{2, 4, 6})
	if out[0] != 0 || out[1] != 0.5 || out[2] != 1 {
		t.Fatalf("Transform = %v", out)
	}
	back := s.Inverse(out)
	for i, v := range []float64{2, 4, 6} {
		if math.Abs(back[i]-v) > 1e-12 {
			t.Fatalf("Inverse = %v", back)
		}
	}
	if err := s.Fit(nil); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestVecMinMaxScalerConstant(t *testing.T) {
	var s VecMinMaxScaler
	if err := s.Fit([]float64{3, 3}); err != nil {
		t.Fatal(err)
	}
	out := s.Transform([]float64{3, 3})
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("constant transform = %v", out)
	}
}

func TestStandardScaler(t *testing.T) {
	X := [][]float64{{1, 100}, {3, 200}, {5, 300}}
	var s StandardScaler
	if err := s.Fit(X); err != nil {
		t.Fatal(err)
	}
	out := s.Transform(X)
	// Each column must have zero mean and unit variance.
	for j := 0; j < 2; j++ {
		var mean float64
		for i := range out {
			mean += out[i][j]
		}
		mean /= float64(len(out))
		if math.Abs(mean) > 1e-12 {
			t.Fatalf("col %d mean = %v", j, mean)
		}
		var v float64
		for i := range out {
			v += out[i][j] * out[i][j]
		}
		v /= float64(len(out))
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("col %d variance = %v", j, v)
		}
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	X := [][]float64{{7}, {7}}
	var s StandardScaler
	if err := s.Fit(X); err != nil {
		t.Fatal(err)
	}
	out := s.Transform(X)
	if out[0][0] != 0 || out[1][0] != 0 {
		t.Fatalf("constant col should standardize to 0, got %v", out)
	}
}

// Property: min-max output is always within [0,1] for training data.
func TestPropMinMaxRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 2+rng.Intn(20), 1+rng.Intn(5)
		X := make([][]float64, n)
		for i := range X {
			X[i] = make([]float64, d)
			for j := range X[i] {
				X[i][j] = rng.NormFloat64() * 100
			}
		}
		var s MinMaxScaler
		out, err := s.FitTransform(X)
		if err != nil {
			return false
		}
		for i := range out {
			for _, v := range out[i] {
				if v < -1e-12 || v > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
