package ml

import (
	"fmt"
	"sort"

	"graphdse/internal/mat"
)

// KNN is a k-nearest-neighbour regressor (uniform or inverse-distance
// weighting). It serves as a simple extra baseline for the model-comparison
// tables.
type KNN struct {
	// K is the neighbourhood size (default 5).
	K int
	// Weighted enables inverse-distance weighting.
	Weighted bool

	x      [][]float64
	y      []float64
	fitted bool
}

// Name implements Named.
func (k *KNN) Name() string { return "KNN" }

// Fit memorizes the training set.
func (k *KNN) Fit(X [][]float64, y []float64) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	if k.K <= 0 {
		k.K = 5
	}
	k.x = copyMatrix(X)
	k.y = append([]float64(nil), y...)
	k.fitted = true
	return nil
}

// Predict averages the targets of the K nearest training points.
func (k *KNN) Predict(q []float64) float64 {
	if !k.fitted {
		panic(ErrNotFitted)
	}
	if len(q) != len(k.x[0]) {
		panic(fmt.Sprintf("ml: knn expects %d features, got %d", len(k.x[0]), len(q)))
	}
	type nd struct {
		d float64
		y float64
	}
	ds := make([]nd, len(k.x))
	for i, row := range k.x {
		ds[i] = nd{mat.SqDist(row, q), k.y[i]}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	kk := k.K
	if kk > len(ds) {
		kk = len(ds)
	}
	if !k.Weighted {
		var s float64
		for i := 0; i < kk; i++ {
			s += ds[i].y
		}
		return s / float64(kk)
	}
	var num, den float64
	for i := 0; i < kk; i++ {
		if ds[i].d == 0 {
			return ds[i].y // exact match dominates
		}
		w := 1 / ds[i].d
		num += w * ds[i].y
		den += w
	}
	return num / den
}
