package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ActiveLearner implements the paper's proposed future-work extension: an
// uncertainty-sampling loop that queries the simulator ("oracle") only for
// the candidate configurations where a random-forest surrogate is least
// certain, reducing the number of labeled simulations needed to reach a
// target accuracy.
type ActiveLearner struct {
	// NewModel builds a fresh forest per round; the forest's across-tree
	// variance provides the uncertainty signal. Defaults to a 50-tree forest.
	NewModel func() *RandomForest
	// BatchSize is the number of queries issued per round (default 4).
	BatchSize int
	// Seed controls the initial random pool draw.
	Seed int64

	model *RandomForest
}

// ALRecord captures one active-learning round for learning-curve plots.
type ALRecord struct {
	Round    int
	Labeled  int
	TestMSE  float64
	TestR2   float64
	MaxSigma float64
}

// Run executes the loop: start from nInit random labels out of pool, then
// each round queries oracle for the BatchSize most uncertain pool points,
// refits, and evaluates on (testX, testY). It stops after maxRounds or when
// the pool is exhausted.
func (a *ActiveLearner) Run(pool [][]float64, oracle func(x []float64) float64,
	testX [][]float64, testY []float64, nInit, maxRounds int) ([]ALRecord, error) {
	if len(pool) == 0 || nInit < 1 || nInit > len(pool) {
		return nil, fmt.Errorf("%w: pool=%d nInit=%d", ErrBadInput, len(pool), nInit)
	}
	if a.NewModel == nil {
		a.NewModel = func() *RandomForest {
			return &RandomForest{NumTrees: 50, Seed: a.Seed}
		}
	}
	if a.BatchSize <= 0 {
		a.BatchSize = 4
	}
	rng := rand.New(rand.NewSource(a.Seed + 5))
	perm := rng.Perm(len(pool))
	labeled := map[int]bool{}
	var lx [][]float64
	var ly []float64
	for _, i := range perm[:nInit] {
		labeled[i] = true
		lx = append(lx, pool[i])
		ly = append(ly, oracle(pool[i]))
	}

	var records []ALRecord
	for round := 0; round < maxRounds; round++ {
		m := a.NewModel()
		if err := m.Fit(lx, ly); err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		a.model = m
		rec := ALRecord{Round: round, Labeled: len(ly)}
		if len(testX) > 0 {
			pred := PredictBatch(m, testX)
			rec.TestMSE = MSE(testY, pred)
			rec.TestR2 = R2(testY, pred)
		}
		// Rank unlabeled pool points by predictive uncertainty.
		type cand struct {
			idx   int
			sigma float64
		}
		var cands []cand
		for i := range pool {
			if labeled[i] {
				continue
			}
			s := m.PredictStd(pool[i])
			cands = append(cands, cand{i, s})
			if s > rec.MaxSigma {
				rec.MaxSigma = s
			}
		}
		records = append(records, rec)
		if len(cands) == 0 {
			break
		}
		// Batch selection: restrict to the most uncertain candidates, then
		// pick a diverse subset by greedy maximin distance — plain top-σ
		// batches collapse onto one region and waste queries.
		sort.Slice(cands, func(i, j int) bool { return cands[i].sigma > cands[j].sigma })
		top := cands
		if cap := 4 * a.BatchSize; len(top) > cap {
			top = top[:cap]
		}
		chosen := []int{top[0].idx}
		used := map[int]bool{0: true}
		for len(chosen) < a.BatchSize && len(chosen) < len(top) {
			bestJ, bestD := -1, -1.0
			for j := range top {
				if used[j] {
					continue
				}
				dMin := math.Inf(1)
				for _, ci := range chosen {
					if d := minkDist(pool[top[j].idx], pool[ci]); d < dMin {
						dMin = d
					}
				}
				if dMin > bestD {
					bestD, bestJ = dMin, j
				}
			}
			if bestJ < 0 {
				break
			}
			used[bestJ] = true
			chosen = append(chosen, top[bestJ].idx)
		}
		for _, i := range chosen {
			labeled[i] = true
			lx = append(lx, pool[i])
			ly = append(ly, oracle(pool[i]))
		}
	}
	return records, nil
}

// minkDist is the squared Euclidean distance used for batch diversity.
func minkDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Model returns the most recently fitted surrogate, or nil before Run.
func (a *ActiveLearner) Model() *RandomForest { return a.model }

// RandomSampler is the control arm: it labels the same budget of points
// uniformly at random and reports the same learning-curve records, so the
// benefit of uncertainty sampling can be quantified.
func RandomSampler(pool [][]float64, oracle func(x []float64) float64,
	testX [][]float64, testY []float64, nInit, batch, maxRounds int, seed int64) ([]ALRecord, error) {
	if len(pool) == 0 || nInit < 1 || nInit > len(pool) {
		return nil, fmt.Errorf("%w: pool=%d nInit=%d", ErrBadInput, len(pool), nInit)
	}
	if batch <= 0 {
		batch = 4
	}
	rng := rand.New(rand.NewSource(seed + 5))
	perm := rng.Perm(len(pool))
	next := nInit
	var lx [][]float64
	var ly []float64
	for _, i := range perm[:nInit] {
		lx = append(lx, pool[i])
		ly = append(ly, oracle(pool[i]))
	}
	var records []ALRecord
	for round := 0; round < maxRounds; round++ {
		m := &RandomForest{NumTrees: 50, Seed: seed}
		if err := m.Fit(lx, ly); err != nil {
			return nil, err
		}
		rec := ALRecord{Round: round, Labeled: len(ly)}
		if len(testX) > 0 {
			pred := PredictBatch(m, testX)
			rec.TestMSE = MSE(testY, pred)
			rec.TestR2 = R2(testY, pred)
		}
		records = append(records, rec)
		for b := 0; b < batch && next < len(perm); b++ {
			i := perm[next]
			next++
			lx = append(lx, pool[i])
			ly = append(ly, oracle(pool[i]))
		}
		if next >= len(perm) {
			break
		}
	}
	return records, nil
}
