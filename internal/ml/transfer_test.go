package ml

import (
	"math/rand"
	"testing"
)

// Source task: f(x); target task: f(x) + systematic shift g(x).
func transferTasks(nSource, nTarget int, seed int64) (sx [][]float64, sy []float64, tx [][]float64, ty []float64) {
	rng := rand.New(rand.NewSource(seed))
	f := func(x []float64) float64 { return 3*x[0] + x[1]*x[1] }
	shift := func(x []float64) float64 { return 0.8 * x[0] * x[1] }
	for i := 0; i < nSource; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		sx = append(sx, x)
		sy = append(sy, f(x))
	}
	for i := 0; i < nTarget; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		tx = append(tx, x)
		ty = append(ty, f(x)+shift(x))
	}
	return
}

func TestTransferBeatsBothBaselines(t *testing.T) {
	sx, sy, tx, ty := transferTasks(400, 240, 50)
	trainX, trainY := tx[:40], ty[:40] // few target labels
	testX, testY := tx[40:], ty[40:]

	source := &RandomForest{NumTrees: 60, Seed: 1}
	if err := source.Fit(sx, sy); err != nil {
		t.Fatal(err)
	}
	sourceMSE := MSE(testY, PredictBatch(source, testX))

	scratch := &RandomForest{NumTrees: 60, Seed: 2}
	if err := scratch.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	scratchMSE := MSE(testY, PredictBatch(scratch, testX))

	tr := &TransferRegressor{Source: source, Seed: 3}
	if err := tr.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	transferMSE := MSE(testY, PredictBatch(tr, testX))

	if transferMSE >= sourceMSE {
		t.Fatalf("transfer (%v) should beat source-only (%v)", transferMSE, sourceMSE)
	}
	if transferMSE >= scratchMSE {
		t.Fatalf("transfer (%v) should beat from-scratch (%v) with few labels", transferMSE, scratchMSE)
	}
}

func TestTransferValidation(t *testing.T) {
	tr := &TransferRegressor{}
	if err := tr.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("expected missing-source error")
	}
	src := &LinearRegression{}
	if err := src.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	tr = &TransferRegressor{Source: src}
	if err := tr.Fit(nil, nil); err == nil {
		t.Fatal("expected empty-data error")
	}
	mustPanicML(t, func() { (&TransferRegressor{Source: src}).Predict([]float64{1}) })
	if tr.Name() != "Transfer" {
		t.Fatal("name wrong")
	}
}

func TestTransferCustomResidual(t *testing.T) {
	sx, sy, tx, ty := transferTasks(200, 60, 51)
	src := &RandomForest{NumTrees: 30, Seed: 1}
	if err := src.Fit(sx, sy); err != nil {
		t.Fatal(err)
	}
	tr := &TransferRegressor{
		Source:      src,
		NewResidual: func() Regressor { return &Ridge{Lambda: 0.1} },
	}
	if err := tr.Fit(tx, ty); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(ty, PredictBatch(tr, tx)); r2 < 0.8 {
		t.Fatalf("transfer with ridge residual R2 = %v", r2)
	}
}
