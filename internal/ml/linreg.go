package ml

import (
	"fmt"

	"graphdse/internal/mat"
)

// LinearRegression is ordinary least squares with an intercept, solved by
// Householder QR. It is the baseline model in Table I of the paper.
type LinearRegression struct {
	// Coef holds the fitted feature weights; Intercept the bias term.
	Coef      []float64
	Intercept float64
	fitted    bool
}

// Name implements Named.
func (l *LinearRegression) Name() string { return "Linear" }

// Fit solves min ||[X 1]·w - y||₂.
func (l *LinearRegression) Fit(X [][]float64, y []float64) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	n := len(X)
	a := mat.NewDense(n, d+1, nil)
	for i, row := range X {
		copy(a.RawRow(i)[:d], row)
		a.RawRow(i)[d] = 1
	}
	w, err := mat.LeastSquares(a, y)
	if err != nil {
		// Fall back to ridge with a tiny penalty when X is rank-deficient
		// (e.g. a constant column alongside the intercept).
		r := &Ridge{Lambda: 1e-8}
		if rerr := r.Fit(X, y); rerr != nil {
			return fmt.Errorf("linear fit: %w", err)
		}
		l.Coef = r.Coef
		l.Intercept = r.Intercept
		l.fitted = true
		return nil
	}
	l.Coef = w[:d]
	l.Intercept = w[d]
	l.fitted = true
	return nil
}

// Predict returns Coef·x + Intercept.
func (l *LinearRegression) Predict(x []float64) float64 {
	if !l.fitted {
		panic(ErrNotFitted)
	}
	if len(x) != len(l.Coef) {
		panic(fmt.Sprintf("ml: linear model expects %d features, got %d", len(l.Coef), len(x)))
	}
	return mat.Dot(l.Coef, x) + l.Intercept
}

// Ridge is L2-regularized linear regression solved via the normal equations
// (XᵀX + λI)w = Xᵀy with an unpenalized intercept (handled by centering).
type Ridge struct {
	// Lambda is the L2 penalty strength; zero reduces to OLS on the normal
	// equations (which requires full column rank).
	Lambda    float64
	Coef      []float64
	Intercept float64
	fitted    bool
}

// Name implements Named.
func (r *Ridge) Name() string { return "Ridge" }

// Fit trains the ridge model.
func (r *Ridge) Fit(X [][]float64, y []float64) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if r.Lambda < 0 {
		return fmt.Errorf("%w: negative lambda %v", ErrBadInput, r.Lambda)
	}
	n := len(X)
	// Center features and target so the intercept is unpenalized.
	xm := make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			xm[j] += v
		}
	}
	for j := range xm {
		xm[j] /= float64(n)
	}
	ym := mat.Mean(y)

	// Build XᵀX and Xᵀy on centered data.
	xtx := mat.NewDense(d, d, nil)
	xty := make([]float64, d)
	cx := make([]float64, d)
	for i, row := range X {
		for j, v := range row {
			cx[j] = v - xm[j]
		}
		cy := y[i] - ym
		for j := 0; j < d; j++ {
			xty[j] += cx[j] * cy
			rr := xtx.RawRow(j)
			for k := j; k < d; k++ {
				rr[k] += cx[j] * cx[k]
			}
		}
	}
	for j := 0; j < d; j++ {
		for k := 0; k < j; k++ {
			xtx.Set(j, k, xtx.At(k, j))
		}
	}
	lam := r.Lambda
	if lam == 0 {
		lam = 1e-12 // numerical floor keeps Cholesky stable
	}
	xtx.AddDiag(lam)
	w, err := mat.SolveSPD(xtx, xty)
	if err != nil {
		return fmt.Errorf("ridge solve: %w", err)
	}
	r.Coef = w
	r.Intercept = ym - mat.Dot(w, xm)
	r.fitted = true
	return nil
}

// Predict returns Coef·x + Intercept.
func (r *Ridge) Predict(x []float64) float64 {
	if !r.fitted {
		panic(ErrNotFitted)
	}
	if len(x) != len(r.Coef) {
		panic(fmt.Sprintf("ml: ridge model expects %d features, got %d", len(r.Coef), len(x)))
	}
	return mat.Dot(r.Coef, x) + r.Intercept
}
