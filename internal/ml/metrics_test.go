package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMSE(t *testing.T) {
	y := []float64{1, 2, 3}
	yhat := []float64{1, 2, 3}
	if got := MSE(y, yhat); got != 0 {
		t.Fatalf("MSE perfect = %v", got)
	}
	if got := MSE([]float64{0, 0}, []float64{3, 4}); got != 12.5 {
		t.Fatalf("MSE = %v, want 12.5", got)
	}
}

func TestRMSEAndMAE(t *testing.T) {
	y := []float64{0, 0, 0, 0}
	yhat := []float64{2, -2, 2, -2}
	if got := RMSE(y, yhat); got != 2 {
		t.Fatalf("RMSE = %v", got)
	}
	if got := MAE(y, yhat); got != 2 {
		t.Fatalf("MAE = %v", got)
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := R2(y, y); got != 1 {
		t.Fatalf("R2 perfect = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(y, mean); got != 0 {
		t.Fatalf("R2 mean-predictor = %v, want 0", got)
	}
	// Worse than the mean predictor gives negative R2.
	if got := R2(y, []float64{4, 3, 2, 1}); got >= 0 {
		t.Fatalf("R2 reversed = %v, want negative", got)
	}
}

func TestR2ConstantTarget(t *testing.T) {
	y := []float64{5, 5, 5}
	if got := R2(y, y); got != 1 {
		t.Fatalf("R2 constant perfect = %v", got)
	}
	if got := R2(y, []float64{5, 5, 6}); got != 0 {
		t.Fatalf("R2 constant imperfect = %v", got)
	}
}

func TestMaxAbsError(t *testing.T) {
	if got := MaxAbsError([]float64{1, 2, 3}, []float64{1, 5, 2}); got != 3 {
		t.Fatalf("MaxAbsError = %v", got)
	}
}

func TestEvaluateBundle(t *testing.T) {
	e := Evaluate([]float64{0, 2}, []float64{0, 0})
	if e.MSE != 2 || e.MAE != 1 || math.Abs(e.RMSE-math.Sqrt2) > 1e-12 {
		t.Fatalf("Evaluate = %+v", e)
	}
}

func TestMetricsPanicOnMismatch(t *testing.T) {
	mustPanicML(t, func() { MSE([]float64{1}, []float64{1, 2}) })
	mustPanicML(t, func() { R2(nil, nil) })
}

// Property: R2 of a perfect prediction is 1 and MSE >= 0 always.
func TestPropMetricInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(32)
		y := make([]float64, n)
		yh := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64()
			yh[i] = rng.NormFloat64()
		}
		return MSE(y, yh) >= 0 && R2(y, y) == 1 && MAE(y, yh) <= MaxAbsError(y, yh)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: RMSE² == MSE.
func TestPropRMSESquared(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		y := make([]float64, n)
		yh := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64()
			yh[i] = rng.NormFloat64()
		}
		r := RMSE(y, yh)
		return math.Abs(r*r-MSE(y, yh)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func mustPanicML(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
