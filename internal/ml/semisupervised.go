package ml

import (
	"fmt"
	"math"
	"sort"
)

// SelfTraining is the semi-supervised wrapper the paper's future work
// points at: a random-forest teacher labels the unlabeled pool with its own
// predictions, keeping only the pseudo-labels it is most confident about
// (lowest across-tree variance), and a student model retrains on the
// union of real and pseudo-labeled data.
type SelfTraining struct {
	// Teacher provides predictions with uncertainty; defaults to a 50-tree
	// forest.
	Teacher *RandomForest
	// Student is the final model trained on real + pseudo labels; defaults
	// to a fresh forest.
	Student Regressor
	// ConfidentFrac is the share of pool points pseudo-labeled per round,
	// most-confident first (default 0.25).
	ConfidentFrac float64
	// Rounds of pseudo-labeling (default 3).
	Rounds int
	// Seed for the underlying models.
	Seed int64

	fitted bool
	// PseudoLabeled reports how many pool points received pseudo-labels.
	PseudoLabeled int
}

// FitSemi trains on labeled (X, y) plus an unlabeled pool.
func (s *SelfTraining) FitSemi(X [][]float64, y []float64, pool [][]float64) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	if s.ConfidentFrac <= 0 || s.ConfidentFrac > 1 {
		s.ConfidentFrac = 0.25
	}
	if s.Rounds <= 0 {
		s.Rounds = 3
	}
	if s.Teacher == nil {
		s.Teacher = &RandomForest{NumTrees: 50, Seed: s.Seed}
	}
	lx := copyMatrix(X)
	ly := append([]float64(nil), y...)
	remaining := copyMatrix(pool)
	s.PseudoLabeled = 0

	for round := 0; round < s.Rounds && len(remaining) > 0; round++ {
		if err := s.Teacher.Fit(lx, ly); err != nil {
			return fmt.Errorf("teacher round %d: %w", round, err)
		}
		type scored struct {
			idx   int
			pred  float64
			sigma float64
		}
		preds := make([]scored, len(remaining))
		for i, row := range remaining {
			mu, v := s.Teacher.PredictWithVariance(row)
			preds[i] = scored{i, mu, math.Sqrt(v)}
		}
		sort.Slice(preds, func(a, b int) bool { return preds[a].sigma < preds[b].sigma })
		take := int(s.ConfidentFrac * float64(len(remaining)))
		if take < 1 {
			take = 1
		}
		taken := map[int]bool{}
		for _, p := range preds[:take] {
			lx = append(lx, remaining[p.idx])
			ly = append(ly, p.pred)
			taken[p.idx] = true
			s.PseudoLabeled++
		}
		var next [][]float64
		for i, row := range remaining {
			if !taken[i] {
				next = append(next, row)
			}
		}
		remaining = next
	}

	if s.Student == nil {
		s.Student = &RandomForest{NumTrees: 100, Seed: s.Seed + 1}
	}
	if err := s.Student.Fit(lx, ly); err != nil {
		return fmt.Errorf("student: %w", err)
	}
	s.fitted = true
	return nil
}

// Fit implements Regressor by treating all data as labeled (no pool).
func (s *SelfTraining) Fit(X [][]float64, y []float64) error {
	return s.FitSemi(X, y, nil)
}

// Predict delegates to the student model.
func (s *SelfTraining) Predict(x []float64) float64 {
	if !s.fitted {
		panic(ErrNotFitted)
	}
	return s.Student.Predict(x)
}

// Name implements Named.
func (s *SelfTraining) Name() string { return "SelfTrain" }
