package ml

import (
	"math"

	"graphdse/internal/mat"
)

// MSE returns the mean squared error between true values y and predictions
// yhat, as in Eq. 1 of the paper. It panics when lengths differ or are zero.
func MSE(y, yhat []float64) float64 {
	mustSameLen(y, yhat)
	var s float64
	for i := range y {
		d := y[i] - yhat[i]
		s += d * d
	}
	return s / float64(len(y))
}

// RMSE returns the root mean squared error.
func RMSE(y, yhat []float64) float64 { return math.Sqrt(MSE(y, yhat)) }

// MAE returns the mean absolute error.
func MAE(y, yhat []float64) float64 {
	mustSameLen(y, yhat)
	var s float64
	for i := range y {
		s += math.Abs(y[i] - yhat[i])
	}
	return s / float64(len(y))
}

// R2 returns the coefficient of determination (Eq. 2 of the paper):
// 1 - Σ(y-ŷ)² / Σ(y-ȳ)². A perfect model scores 1.0; a model no better than
// predicting the mean scores 0. When y is constant, R2 returns 1 for a
// perfect fit and 0 otherwise (matching scikit-learn's convention of a
// degenerate denominator).
func R2(y, yhat []float64) float64 {
	mustSameLen(y, yhat)
	mean := mat.Mean(y)
	var ssRes, ssTot float64
	for i := range y {
		dr := y[i] - yhat[i]
		dt := y[i] - mean
		ssRes += dr * dr
		ssTot += dt * dt
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// MaxAbsError returns the largest absolute residual.
func MaxAbsError(y, yhat []float64) float64 {
	mustSameLen(y, yhat)
	var m float64
	for i := range y {
		if d := math.Abs(y[i] - yhat[i]); d > m {
			m = d
		}
	}
	return m
}

// Evaluation bundles the statistics the paper reports per model per metric.
type Evaluation struct {
	MSE  float64
	RMSE float64
	MAE  float64
	R2   float64
}

// Evaluate computes all summary statistics for predictions yhat against y.
func Evaluate(y, yhat []float64) Evaluation {
	return Evaluation{MSE: MSE(y, yhat), RMSE: RMSE(y, yhat), MAE: MAE(y, yhat), R2: R2(y, yhat)}
}

func mustSameLen(y, yhat []float64) {
	if len(y) == 0 || len(y) != len(yhat) {
		panic("ml: metric length mismatch or empty input")
	}
}
