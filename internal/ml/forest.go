package ml

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// RandomForest is a bagged ensemble of fully grown CART trees with random
// feature subsetting at each split, mirroring scikit-learn's
// RandomForestRegressor used in the paper. Trees are trained in parallel.
type RandomForest struct {
	// NumTrees is the ensemble size (default 100, scikit-learn's default).
	NumTrees int
	// MaxDepth bounds each tree; <=0 grows to purity as in the paper's
	// description ("each tree is overfitted").
	MaxDepth int
	// MinSamplesLeaf is forwarded to the trees.
	MinSamplesLeaf int
	// MaxFeatures per split; <=0 uses all features (scikit-learn's
	// RandomForestRegressor default, where decorrelation comes from
	// bootstrap resampling alone).
	MaxFeatures int
	// Seed makes bootstrap draws deterministic.
	Seed int64
	// Workers caps training parallelism; <=0 uses GOMAXPROCS.
	Workers int

	trees  []*RegressionTree
	nDims  int
	fitted bool
}

// NewRandomForest returns a forest with scikit-learn-like defaults.
func NewRandomForest() *RandomForest {
	return &RandomForest{NumTrees: 100}
}

// Name implements Named.
func (f *RandomForest) Name() string { return "RF" }

// Fit trains the ensemble on bootstrap resamples of (X, y).
func (f *RandomForest) Fit(X [][]float64, y []float64) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if f.NumTrees <= 0 {
		f.NumTrees = 100
	}
	maxFeat := f.MaxFeatures
	if maxFeat <= 0 || maxFeat > d {
		maxFeat = d
	}
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > f.NumTrees {
		workers = f.NumTrees
	}
	f.nDims = d
	f.trees = make([]*RegressionTree, f.NumTrees)
	n := len(X)

	errs := make([]error, f.NumTrees)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for t := 0; t < f.NumTrees; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(f.Seed + int64(t)*7919))
			bx := make([][]float64, n)
			by := make([]float64, n)
			for i := 0; i < n; i++ {
				k := rng.Intn(n)
				bx[i] = X[k]
				by[i] = y[k]
			}
			tree := &RegressionTree{
				MaxDepth:       f.MaxDepth,
				MinSamplesLeaf: f.MinSamplesLeaf,
				MaxFeatures:    maxFeat,
				Seed:           f.Seed + int64(t)*104729,
			}
			errs[t] = tree.Fit(bx, by)
			f.trees[t] = tree
		}(t)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	f.fitted = true
	return nil
}

// Predict returns the mean of the per-tree predictions.
func (f *RandomForest) Predict(x []float64) float64 {
	m, _ := f.PredictWithVariance(x)
	return m
}

// PredictWithVariance returns the ensemble mean and the across-tree
// variance, which the active-learning loop uses as an uncertainty signal.
func (f *RandomForest) PredictWithVariance(x []float64) (mean, variance float64) {
	if !f.fitted {
		panic(ErrNotFitted)
	}
	if len(x) != f.nDims {
		panic(fmt.Sprintf("ml: forest expects %d features, got %d", f.nDims, len(x)))
	}
	var sum, sq float64
	for _, t := range f.trees {
		p := t.Predict(x)
		sum += p
		sq += p * p
	}
	n := float64(len(f.trees))
	mean = sum / n
	variance = sq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard against catastrophic cancellation
	}
	return mean, variance
}

// PredictStd returns the across-tree standard deviation at x.
func (f *RandomForest) PredictStd(x []float64) float64 {
	_, v := f.PredictWithVariance(x)
	return math.Sqrt(v)
}

// NumFittedTrees reports the ensemble size after Fit.
func (f *RandomForest) NumFittedTrees() int { return len(f.trees) }
