package ml

import (
	"fmt"
	"math"
)

// GridSearchResult records one hyper-parameter candidate and its
// cross-validated score.
type GridSearchResult struct {
	Params map[string]float64
	Eval   Evaluation
}

// GridSearch evaluates every parameter combination via k-fold
// cross-validation and returns all results plus the index of the candidate
// with the lowest mean MSE. factory must build a fresh model from a
// parameter assignment.
func GridSearch(factory func(params map[string]float64) Regressor, grid map[string][]float64,
	X [][]float64, y []float64, folds int, seed int64) ([]GridSearchResult, int, error) {
	if _, err := checkXY(X, y); err != nil {
		return nil, -1, err
	}
	if len(grid) == 0 {
		return nil, -1, fmt.Errorf("%w: empty grid", ErrBadInput)
	}
	names := make([]string, 0, len(grid))
	for k := range grid {
		if len(grid[k]) == 0 {
			return nil, -1, fmt.Errorf("%w: empty value list for %q", ErrBadInput, k)
		}
		names = append(names, k)
	}
	// Deterministic order for reproducibility.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}

	var results []GridSearchResult
	best, bestMSE := -1, math.Inf(1)
	idx := make([]int, len(names))
	for {
		params := make(map[string]float64, len(names))
		for k, name := range names {
			params[name] = grid[name][idx[k]]
		}
		evals, err := CrossValidate(func() Regressor { return factory(params) }, X, y, folds, seed)
		if err != nil {
			return nil, -1, err
		}
		mean := MeanEvaluation(evals)
		results = append(results, GridSearchResult{Params: params, Eval: mean})
		if mean.MSE < bestMSE {
			bestMSE = mean.MSE
			best = len(results) - 1
		}
		// Advance mixed-radix counter.
		k := 0
		for ; k < len(names); k++ {
			idx[k]++
			if idx[k] < len(grid[names[k]]) {
				break
			}
			idx[k] = 0
		}
		if k == len(names) {
			break
		}
	}
	return results, best, nil
}
