package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// FeatureImportance is one feature's permutation-importance score: the mean
// increase in test MSE when the feature's column is shuffled, breaking its
// relationship with the target (Breiman-style variable importance; the
// paper cites Grömping's comparison of linear-regression and random-forest
// variable importance).
type FeatureImportance struct {
	Feature    int
	Name       string
	Importance float64
}

// PermutationImportance computes permutation importances for a fitted model
// on (X, y), averaging over repeats shuffles per feature. names is optional
// (nil uses "f0", "f1", …). Results are sorted by decreasing importance.
func PermutationImportance(model Regressor, X [][]float64, y []float64, names []string, repeats int, seed int64) ([]FeatureImportance, error) {
	d, err := checkXY(X, y)
	if err != nil {
		return nil, err
	}
	if repeats <= 0 {
		repeats = 5
	}
	if names != nil && len(names) != d {
		return nil, fmt.Errorf("%w: %d names for %d features", ErrBadInput, len(names), d)
	}
	base := MSE(y, PredictBatch(model, X))
	rng := rand.New(rand.NewSource(seed + 31))
	n := len(X)

	out := make([]FeatureImportance, d)
	col := make([]float64, n)
	perm := make([]int, n)
	shuffled := copyMatrix(X)
	for f := 0; f < d; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		var total float64
		for r := 0; r < repeats; r++ {
			for i := range perm {
				perm[i] = i
			}
			rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			for i := range shuffled {
				shuffled[i][f] = col[perm[i]]
			}
			total += MSE(y, PredictBatch(model, shuffled)) - base
		}
		// Restore the column.
		for i := range shuffled {
			shuffled[i][f] = col[i]
		}
		name := fmt.Sprintf("f%d", f)
		if names != nil {
			name = names[f]
		}
		out[f] = FeatureImportance{Feature: f, Name: name, Importance: total / float64(repeats)}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Importance > out[j].Importance })
	return out, nil
}
