package ml

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"graphdse/internal/artifact"
)

// Model persistence: trained surrogates serialize to a JSON envelope
// {"type": ..., "data": ...} so a DSE session's models can be saved and
// queried later without retraining.
//
// v2 wraps the envelope in the artifact checksummed container, so a model
// file damaged by bit rot is rejected with a checksum error instead of
// loading silently-wrong coefficients. v1 files (bare JSON) remain
// readable, and every load — either version — passes structural validation
// before the model is handed to callers, so a tampered or hand-edited file
// cannot produce a model that panics at Predict time.

// ModelFormatTag and ModelFormatVersion identify the v2 model container.
const (
	ModelFormatTag     = "MLMODEL"
	ModelFormatVersion = 2
)

type envelope struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

type linearDTO struct {
	Coef      []float64 `json:"coef"`
	Intercept float64   `json:"intercept"`
}

type kernelDTO struct {
	Name   string  `json:"name"`
	Gamma  float64 `json:"gamma,omitempty"`
	Coef0  float64 `json:"coef0,omitempty"`
	Degree int     `json:"degree,omitempty"`
}

type svrDTO struct {
	Kernel   kernelDTO   `json:"kernel"`
	SupportX [][]float64 `json:"supportX"`
	Beta     []float64   `json:"beta"`
	B        float64     `json:"b"`
}

type nodeDTO struct {
	Feature   int      `json:"f"`
	Threshold float64  `json:"t,omitempty"`
	Value     float64  `json:"v"`
	Samples   int      `json:"n"`
	Left      *nodeDTO `json:"l,omitempty"`
	Right     *nodeDTO `json:"r,omitempty"`
}

type treeDTO struct {
	Dims int      `json:"dims"`
	Root *nodeDTO `json:"root"`
}

type forestDTO struct {
	Trees []treeDTO `json:"trees"`
	Dims  int       `json:"dims"`
}

type gbtDTO struct {
	Init         float64   `json:"init"`
	LearningRate float64   `json:"lr"`
	Stages       []treeDTO `json:"stages"`
	Dims         int       `json:"dims"`
}

type knnDTO struct {
	K        int         `json:"k"`
	Weighted bool        `json:"weighted"`
	X        [][]float64 `json:"x"`
	Y        []float64   `json:"y"`
}

type mlpDTO struct {
	Dims    []int       `json:"dims"`
	Weights [][]float64 `json:"weights"`
	Biases  [][]float64 `json:"biases"`
}

// SaveModel serializes a fitted model into the checksummed v2 container.
// Supported: LinearRegression, Ridge, SVR, RegressionTree, RandomForest,
// GradientBoosting, KNN, MLP.
func SaveModel(w io.Writer, model Regressor) error {
	aw, err := artifact.NewWriter(w, ModelFormatTag, ModelFormatVersion)
	if err != nil {
		return err
	}
	if err := SaveModelV1(aw, model); err != nil {
		return err
	}
	return aw.Close()
}

// SaveModelV1 serializes a fitted model as the legacy bare JSON envelope.
func SaveModelV1(w io.Writer, model Regressor) error {
	var env envelope
	var data interface{}
	switch m := model.(type) {
	case *LinearRegression:
		if !m.fitted {
			return ErrNotFitted
		}
		env.Type = "linear"
		data = linearDTO{Coef: m.Coef, Intercept: m.Intercept}
	case *Ridge:
		if !m.fitted {
			return ErrNotFitted
		}
		env.Type = "ridge"
		data = linearDTO{Coef: m.Coef, Intercept: m.Intercept}
	case *SVR:
		if !m.fitted {
			return ErrNotFitted
		}
		env.Type = "svr"
		data = svrDTO{Kernel: kernelToDTO(m.Kernel), SupportX: m.SupportX, Beta: m.Beta, B: m.B}
	case *RegressionTree:
		if !m.fitted {
			return ErrNotFitted
		}
		env.Type = "tree"
		data = treeDTO{Dims: m.nDims, Root: nodeToDTO(m.root)}
	case *RandomForest:
		if !m.fitted {
			return ErrNotFitted
		}
		env.Type = "forest"
		trees := make([]treeDTO, len(m.trees))
		for i, t := range m.trees {
			trees[i] = treeDTO{Dims: t.nDims, Root: nodeToDTO(t.root)}
		}
		data = forestDTO{Trees: trees, Dims: m.nDims}
	case *GradientBoosting:
		if !m.fitted {
			return ErrNotFitted
		}
		env.Type = "gbt"
		stages := make([]treeDTO, len(m.stages))
		for i, t := range m.stages {
			stages[i] = treeDTO{Dims: t.nDims, Root: nodeToDTO(t.root)}
		}
		data = gbtDTO{Init: m.init, LearningRate: m.LearningRate, Stages: stages, Dims: m.nDims}
	case *KNN:
		if !m.fitted {
			return ErrNotFitted
		}
		env.Type = "knn"
		data = knnDTO{K: m.K, Weighted: m.Weighted, X: m.x, Y: m.y}
	case *MLP:
		if !m.fitted {
			return ErrNotFitted
		}
		env.Type = "mlp"
		data = mlpDTO{Dims: m.dims, Weights: m.weights, Biases: m.biases}
	default:
		return fmt.Errorf("ml: cannot serialize %T", model)
	}
	raw, err := json.Marshal(data)
	if err != nil {
		return err
	}
	env.Data = raw
	enc := json.NewEncoder(w)
	return enc.Encode(env)
}

// LoadModel deserializes a model saved by SaveModel (checksummed v2
// container) or SaveModelV1 (bare JSON), auto-detected. The decoded model
// is structurally validated before it is returned.
func LoadModel(r io.Reader) (Regressor, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(8)
	if err == nil && [8]byte(head) == artifact.Magic {
		ar, aerr := artifact.NewReader(br)
		if aerr != nil {
			return nil, fmt.Errorf("ml: %w", aerr)
		}
		if ar.Format() != ModelFormatTag {
			return nil, fmt.Errorf("ml: container holds %q, want %q", ar.Format(), ModelFormatTag)
		}
		if ar.Version() > ModelFormatVersion {
			return nil, fmt.Errorf("ml: model format version %d newer than supported %d", ar.Version(), ModelFormatVersion)
		}
		model, merr := loadModelJSON(ar)
		if merr != nil {
			return nil, merr
		}
		// The JSON decoder stops at the end of the envelope; drain the rest
		// of the container so the sealed trailer is actually verified and
		// damage anywhere in the file fails the load.
		if _, err := io.Copy(io.Discard, ar); err != nil {
			return nil, fmt.Errorf("ml: %w", err)
		}
		return model, nil
	}
	return loadModelJSON(br)
}

func loadModelJSON(r io.Reader) (Regressor, error) {
	model, err := decodeModelJSON(r)
	if err != nil {
		return nil, err
	}
	if err := validateModel(model); err != nil {
		return nil, err
	}
	return model, nil
}

func decodeModelJSON(r io.Reader) (Regressor, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ml: parsing model: %w", err)
	}
	switch env.Type {
	case "linear":
		var d linearDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		return &LinearRegression{Coef: d.Coef, Intercept: d.Intercept, fitted: true}, nil
	case "ridge":
		var d linearDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		return &Ridge{Coef: d.Coef, Intercept: d.Intercept, fitted: true}, nil
	case "svr":
		var d svrDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		k, err := kernelFromDTO(d.Kernel)
		if err != nil {
			return nil, err
		}
		s := NewSVR()
		s.Kernel = k
		s.SupportX = d.SupportX
		s.Beta = d.Beta
		s.B = d.B
		s.fitted = true
		return s, nil
	case "tree":
		var d treeDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		return treeFromDTO(d), nil
	case "forest":
		var d forestDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		f := &RandomForest{NumTrees: len(d.Trees), nDims: d.Dims, fitted: true}
		for _, td := range d.Trees {
			f.trees = append(f.trees, treeFromDTO(td))
		}
		return f, nil
	case "gbt":
		var d gbtDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		g := &GradientBoosting{LearningRate: d.LearningRate, init: d.Init, nDims: d.Dims, fitted: true}
		for _, td := range d.Stages {
			g.stages = append(g.stages, treeFromDTO(td))
		}
		g.NumStages = len(g.stages)
		return g, nil
	case "knn":
		var d knnDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		return &KNN{K: d.K, Weighted: d.Weighted, x: d.X, y: d.Y, fitted: true}, nil
	case "mlp":
		var d mlpDTO
		if err := json.Unmarshal(env.Data, &d); err != nil {
			return nil, err
		}
		if len(d.Dims) < 2 {
			return nil, fmt.Errorf("%w: mlp dims %v", ErrBadInput, d.Dims)
		}
		return &MLP{dims: d.Dims, weights: d.Weights, biases: d.Biases, fitted: true}, nil
	default:
		return nil, fmt.Errorf("ml: unknown model type %q", env.Type)
	}
}

// validateModel checks the structural invariants Predict relies on, so a
// corrupt or hand-edited model file fails at load time with a clear error
// rather than panicking mid-sweep.
func validateModel(m Regressor) error {
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("ml: invalid model: "+format, args...)
	}
	switch mm := m.(type) {
	case *LinearRegression:
		if len(mm.Coef) == 0 {
			return bad("linear model with no coefficients")
		}
	case *Ridge:
		if len(mm.Coef) == 0 {
			return bad("ridge model with no coefficients")
		}
	case *SVR:
		if len(mm.SupportX) != len(mm.Beta) {
			return bad("svr has %d support vectors but %d betas", len(mm.SupportX), len(mm.Beta))
		}
		for i, sv := range mm.SupportX {
			if len(sv) != len(mm.SupportX[0]) {
				return bad("svr support vector %d has %d features, want %d", i, len(sv), len(mm.SupportX[0]))
			}
		}
	case *RegressionTree:
		return validateTree(mm)
	case *RandomForest:
		if len(mm.trees) == 0 {
			return bad("forest with no trees")
		}
		for i, t := range mm.trees {
			if t.nDims != mm.nDims {
				return bad("forest tree %d expects %d features, forest %d", i, t.nDims, mm.nDims)
			}
			if err := validateTree(t); err != nil {
				return err
			}
		}
	case *GradientBoosting:
		if len(mm.stages) == 0 {
			return bad("gbt with no stages")
		}
		for i, t := range mm.stages {
			if t.nDims != mm.nDims {
				return bad("gbt stage %d expects %d features, model %d", i, t.nDims, mm.nDims)
			}
			if err := validateTree(t); err != nil {
				return err
			}
		}
	case *KNN:
		if len(mm.x) == 0 || len(mm.x) != len(mm.y) {
			return bad("knn has %d samples but %d targets", len(mm.x), len(mm.y))
		}
		for i, row := range mm.x {
			if len(row) != len(mm.x[0]) {
				return bad("knn sample %d has %d features, want %d", i, len(row), len(mm.x[0]))
			}
		}
		if mm.K <= 0 {
			return bad("knn k=%d", mm.K)
		}
	case *MLP:
		d := mm.dims
		if len(d) < 2 {
			return bad("mlp dims %v", d)
		}
		if len(mm.weights) != len(d)-1 || len(mm.biases) != len(d)-1 {
			return bad("mlp has %d weight and %d bias layers for %d dims", len(mm.weights), len(mm.biases), len(d))
		}
		for i := 0; i < len(d)-1; i++ {
			if d[i] <= 0 || d[i+1] <= 0 {
				return bad("mlp layer %d dims %d→%d", i, d[i], d[i+1])
			}
			if len(mm.weights[i]) != d[i]*d[i+1] {
				return bad("mlp layer %d has %d weights, want %d×%d", i, len(mm.weights[i]), d[i], d[i+1])
			}
			if len(mm.biases[i]) != d[i+1] {
				return bad("mlp layer %d has %d biases, want %d", i, len(mm.biases[i]), d[i+1])
			}
		}
	}
	return nil
}

func validateTree(t *RegressionTree) error {
	if t.root == nil {
		return fmt.Errorf("ml: invalid model: tree with no root")
	}
	if t.nDims <= 0 {
		return fmt.Errorf("ml: invalid model: tree expects %d features", t.nDims)
	}
	return validateNode(t.root, t.nDims)
}

func validateNode(n *treeNode, dims int) error {
	if n.feature < 0 {
		return nil // leaf
	}
	if n.feature >= dims {
		return fmt.Errorf("ml: invalid model: tree splits on feature %d of %d", n.feature, dims)
	}
	if n.left == nil || n.right == nil {
		return fmt.Errorf("ml: invalid model: split node missing children")
	}
	if err := validateNode(n.left, dims); err != nil {
		return err
	}
	return validateNode(n.right, dims)
}

func kernelToDTO(k Kernel) kernelDTO {
	switch kk := k.(type) {
	case RBFKernel:
		return kernelDTO{Name: "rbf", Gamma: kk.Gamma}
	case LinearKernel:
		return kernelDTO{Name: "linear"}
	case PolyKernel:
		return kernelDTO{Name: "poly", Gamma: kk.Gamma, Coef0: kk.Coef0, Degree: kk.Degree}
	default:
		return kernelDTO{Name: "rbf", Gamma: 1}
	}
}

func kernelFromDTO(d kernelDTO) (Kernel, error) {
	switch d.Name {
	case "rbf":
		return RBFKernel{Gamma: d.Gamma}, nil
	case "linear":
		return LinearKernel{}, nil
	case "poly":
		return PolyKernel{Gamma: d.Gamma, Coef0: d.Coef0, Degree: d.Degree}, nil
	default:
		return nil, fmt.Errorf("ml: unknown kernel %q", d.Name)
	}
}

func nodeToDTO(n *treeNode) *nodeDTO {
	if n == nil {
		return nil
	}
	return &nodeDTO{
		Feature:   n.feature,
		Threshold: n.threshold,
		Value:     n.value,
		Samples:   n.samples,
		Left:      nodeToDTO(n.left),
		Right:     nodeToDTO(n.right),
	}
}

func nodeFromDTO(d *nodeDTO) *treeNode {
	if d == nil {
		return nil
	}
	return &treeNode{
		feature:   d.Feature,
		threshold: d.Threshold,
		value:     d.Value,
		samples:   d.Samples,
		left:      nodeFromDTO(d.Left),
		right:     nodeFromDTO(d.Right),
	}
}

func treeFromDTO(d treeDTO) *RegressionTree {
	return &RegressionTree{nDims: d.Dims, root: nodeFromDTO(d.Root), fitted: true}
}

// RenderTree writes an indented ASCII view of a fitted tree, with feature
// names resolved through names (nil uses indices).
func RenderTree(w io.Writer, t *RegressionTree, names []string) error {
	if !t.fitted {
		return ErrNotFitted
	}
	return renderNode(w, t.root, names, 0)
}

func renderNode(w io.Writer, n *treeNode, names []string, depth int) error {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	if n.feature < 0 {
		_, err := fmt.Fprintf(w, "%sleaf value=%.4g n=%d\n", indent, n.value, n.samples)
		return err
	}
	name := fmt.Sprintf("f%d", n.feature)
	if names != nil && n.feature < len(names) {
		name = names[n.feature]
	}
	if _, err := fmt.Fprintf(w, "%s%s <= %.4g (n=%d)\n", indent, name, n.threshold, n.samples); err != nil {
		return err
	}
	if err := renderNode(w, n.left, names, depth+1); err != nil {
		return err
	}
	return renderNode(w, n.right, names, depth+1)
}
