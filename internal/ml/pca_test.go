package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestPCARecoversDominantDirection(t *testing.T) {
	// Data lives mostly along (1, 1)/√2 with tiny orthogonal noise.
	rng := rand.New(rand.NewSource(60))
	X := make([][]float64, 300)
	for i := range X {
		tval := rng.NormFloat64() * 5
		noise := rng.NormFloat64() * 0.1
		X[i] = []float64{tval + noise, tval - noise}
	}
	p := &PCA{Components: 1}
	proj, err := p.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj[0]) != 1 {
		t.Fatalf("projected dim = %d", len(proj[0]))
	}
	if p.Explained[0] < 0.99 {
		t.Fatalf("first component explains %v, want > 0.99", p.Explained[0])
	}
}

func TestPCAExplainedSumsToOne(t *testing.T) {
	X, _ := syntheticFriedman(200, 61)
	p := &PCA{}
	if err := p.Fit(X); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, e := range p.Explained {
		if e < 0 {
			t.Fatalf("negative explained ratio %v", e)
		}
		sum += e
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("explained ratios sum to %v", sum)
	}
}

func TestPCAPreservesRegressionSignal(t *testing.T) {
	// Augment informative features with redundant copies; PCA to the
	// original dimensionality should keep the model accurate.
	X, y := syntheticFriedman(300, 62)
	aug := make([][]float64, len(X))
	for i, row := range X {
		aug[i] = append(append([]float64{}, row...), row[0]+row[1], row[2]*2)
	}
	p := &PCA{Components: 4}
	proj, err := p.FitTransform(aug)
	if err != nil {
		t.Fatal(err)
	}
	m := &RandomForest{NumTrees: 40, Seed: 1}
	if err := m.Fit(proj, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, PredictBatch(m, proj)); r2 < 0.9 {
		t.Fatalf("PCA-compressed train R2 = %v", r2)
	}
}

func TestPCAValidation(t *testing.T) {
	p := &PCA{}
	if err := p.Fit(nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if err := p.Fit([][]float64{{1, 2}}); err == nil {
		t.Fatal("expected error for single sample")
	}
	if err := p.Fit([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged input")
	}
	mustPanicML(t, func() { (&PCA{}).Transform([][]float64{{1}}) })
	if err := p.Fit([][]float64{{1, 2}, {3, 4}, {5, 6}}); err != nil {
		t.Fatal(err)
	}
	mustPanicML(t, func() { p.Transform([][]float64{{1}}) }) // wrong dim
}

func TestPCATransformCentered(t *testing.T) {
	X := [][]float64{{10, 0}, {12, 0}, {14, 0}}
	p := &PCA{Components: 2}
	proj, err := p.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	// Projections of centered data must average to zero.
	for c := 0; c < 2; c++ {
		var mean float64
		for i := range proj {
			mean += proj[i][c]
		}
		if math.Abs(mean/float64(len(proj))) > 1e-9 {
			t.Fatalf("component %d not centered", c)
		}
	}
}
