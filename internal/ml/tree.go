package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RegressionTree is a CART regression tree grown by greedy variance
// reduction. It is the weak learner for both the random forest and the
// gradient-boosting ensembles.
type RegressionTree struct {
	// MaxDepth limits tree depth (root at depth 0); <=0 means unlimited.
	MaxDepth int
	// MinSamplesSplit is the smallest node size eligible for splitting.
	MinSamplesSplit int
	// MinSamplesLeaf is the smallest allowed leaf size.
	MinSamplesLeaf int
	// MaxFeatures limits the number of features examined per split;
	// <=0 means all features. The forest sets this for decorrelation.
	MaxFeatures int
	// Seed drives the feature-subset sampling.
	Seed int64

	root   *treeNode
	nDims  int
	rng    *rand.Rand
	fitted bool
}

type treeNode struct {
	feature     int // split feature; -1 for leaves
	threshold   float64
	value       float64 // leaf prediction (node mean)
	samples     int
	left, right *treeNode
}

// Name implements Named.
func (t *RegressionTree) Name() string { return "Tree" }

// Fit grows the tree on (X, y).
func (t *RegressionTree) Fit(X [][]float64, y []float64) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if t.MinSamplesSplit < 2 {
		t.MinSamplesSplit = 2
	}
	if t.MinSamplesLeaf < 1 {
		t.MinSamplesLeaf = 1
	}
	t.nDims = d
	t.rng = rand.New(rand.NewSource(t.Seed + 17))
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(X, y, idx, 0)
	t.fitted = true
	return nil
}

func (t *RegressionTree) grow(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	n := len(idx)
	var sum float64
	for _, i := range idx {
		sum += y[i]
	}
	node := &treeNode{feature: -1, value: sum / float64(n), samples: n}
	if n < t.MinSamplesSplit || (t.MaxDepth > 0 && depth >= t.MaxDepth) {
		return node
	}
	feat, thr, ok := t.bestSplit(X, y, idx)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.MinSamplesLeaf || len(right) < t.MinSamplesLeaf {
		return node
	}
	node.feature = feat
	node.threshold = thr
	node.left = t.grow(X, y, left, depth+1)
	node.right = t.grow(X, y, right, depth+1)
	return node
}

// bestSplit scans (a subset of) features for the threshold minimizing the
// weighted child sum of squared errors, using the running-sums identity
// SSE = Σy² - (Σy)²/n per side.
func (t *RegressionTree) bestSplit(X [][]float64, y []float64, idx []int) (feature int, threshold float64, ok bool) {
	n := len(idx)
	feats := t.featureSubset()
	type pair struct{ x, y float64 }
	pairs := make([]pair, n)
	bestGain := math.Inf(-1)

	var totSum, totSq float64
	for _, i := range idx {
		totSum += y[i]
		totSq += y[i] * y[i]
	}
	parentSSE := totSq - totSum*totSum/float64(n)

	for _, f := range feats {
		for k, i := range idx {
			pairs[k] = pair{X[i][f], y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].x < pairs[b].x })
		var lSum, lSq float64
		for k := 0; k < n-1; k++ {
			lSum += pairs[k].y
			lSq += pairs[k].y * pairs[k].y
			if pairs[k].x == pairs[k+1].x {
				continue // cannot split between equal values
			}
			nl, nr := float64(k+1), float64(n-k-1)
			if int(nl) < t.MinSamplesLeaf || int(nr) < t.MinSamplesLeaf {
				continue
			}
			rSum := totSum - lSum
			rSq := totSq - lSq
			sse := (lSq - lSum*lSum/nl) + (rSq - rSum*rSum/nr)
			gain := parentSSE - sse
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (pairs[k].x + pairs[k+1].x) / 2
				ok = true
			}
		}
	}
	if bestGain <= 1e-12 {
		return 0, 0, false
	}
	return feature, threshold, ok
}

func (t *RegressionTree) featureSubset() []int {
	all := make([]int, t.nDims)
	for i := range all {
		all[i] = i
	}
	if t.MaxFeatures <= 0 || t.MaxFeatures >= t.nDims {
		return all
	}
	t.rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
	return all[:t.MaxFeatures]
}

// Predict descends the tree to a leaf mean.
func (t *RegressionTree) Predict(x []float64) float64 {
	if !t.fitted {
		panic(ErrNotFitted)
	}
	if len(x) != t.nDims {
		panic(fmt.Sprintf("ml: tree expects %d features, got %d", t.nDims, len(x)))
	}
	n := t.root
	for n.feature >= 0 {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the height of the fitted tree (leaf-only tree has depth 0).
func (t *RegressionTree) Depth() int {
	if !t.fitted {
		return 0
	}
	return nodeDepth(t.root)
}

// LeafCount returns the number of leaves in the fitted tree.
func (t *RegressionTree) LeafCount() int {
	if !t.fitted {
		return 0
	}
	return countLeaves(t.root)
}

func nodeDepth(n *treeNode) int {
	if n.feature < 0 {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func countLeaves(n *treeNode) int {
	if n.feature < 0 {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}
