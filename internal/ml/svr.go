package ml

import (
	"fmt"
	"math"
	"math/rand"

	"graphdse/internal/mat"
)

// SVR is ε-insensitive support vector regression trained by an SMO-style
// pairwise coordinate-ascent solver on the dual problem
//
//	max_β  -½ Σᵢⱼ βᵢβⱼK(xᵢ,xⱼ) - ε Σᵢ|βᵢ| + Σᵢ yᵢβᵢ
//	s.t.   Σᵢ βᵢ = 0,  |βᵢ| ≤ C,
//
// where βᵢ = αᵢ - αᵢ* collapses the classic two-variable-per-sample
// formulation (Smola & Schölkopf). Each step optimizes a pair (βᵢ, βⱼ)
// exactly, keeping their sum constant, by maximizing the piecewise-quadratic
// restricted objective over its breakpoints.
type SVR struct {
	// C bounds |βᵢ|; larger C fits the training data harder.
	C float64
	// Epsilon is the insensitive-tube half width.
	Epsilon float64
	// Kernel defaults to RBF with gamma chosen as 1/(d·Var(X)) ("scale").
	Kernel Kernel
	// Tol is the convergence threshold on the per-sweep maximum β change.
	Tol float64
	// MaxIter caps the number of full sweeps.
	MaxIter int
	// Seed controls the sweep order shuffle.
	Seed int64

	// Fitted state: support vectors, their coefficients, and the bias.
	SupportX [][]float64
	Beta     []float64
	B        float64
	// Iters records how many sweeps the solver used.
	Iters  int
	fitted bool
}

// NewSVR returns an SVR with defaults suitable for min-max-scaled data.
func NewSVR() *SVR {
	return &SVR{C: 100, Epsilon: 0.01, Tol: 1e-5, MaxIter: 400}
}

// Name implements Named.
func (s *SVR) Name() string { return "SVM" }

// Fit trains the model.
func (s *SVR) Fit(X [][]float64, y []float64) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if s.C <= 0 {
		return fmt.Errorf("%w: C must be positive, got %v", ErrBadInput, s.C)
	}
	if s.Epsilon < 0 {
		return fmt.Errorf("%w: negative epsilon %v", ErrBadInput, s.Epsilon)
	}
	if s.Tol <= 0 {
		s.Tol = 1e-5
	}
	if s.MaxIter <= 0 {
		s.MaxIter = 400
	}
	if s.Kernel == nil {
		s.Kernel = RBFKernel{Gamma: scaleGamma(X, d)}
	}
	n := len(X)
	gram := gramMatrix(s.Kernel, X)
	beta := make([]float64, n)
	f := make([]float64, n) // f_i = Σ_k β_k K_ik (bias excluded)
	rng := rand.New(rand.NewSource(s.Seed + 1))
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	s.Iters = 0
	for iter := 0; iter < s.MaxIter; iter++ {
		s.Iters = iter + 1
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		var maxDelta float64
		for _, i := range order {
			j := s.selectPartner(i, n, y, f)
			if j == i {
				continue
			}
			delta := s.optimizePair(i, j, gram, y, beta, f)
			if delta > maxDelta {
				maxDelta = delta
			}
		}
		if maxDelta < s.Tol {
			break
		}
	}

	s.B = computeBias(beta, y, f, s.Epsilon, s.C)

	// Keep only support vectors.
	s.SupportX = s.SupportX[:0]
	s.Beta = s.Beta[:0]
	for i, b := range beta {
		if math.Abs(b) > 1e-10 {
			s.SupportX = append(s.SupportX, append([]float64(nil), X[i]...))
			s.Beta = append(s.Beta, b)
		}
	}
	s.fitted = true
	return nil
}

// selectPartner picks the j maximizing the residual gap |F_i - F_j|, the
// standard maximal-violating-pair heuristic.
func (s *SVR) selectPartner(i, n int, y, f []float64) int {
	fi := y[i] - f[i]
	best, bestGap := i, -1.0
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		gap := math.Abs(fi - (y[j] - f[j]))
		if gap > bestGap {
			bestGap, best = gap, j
		}
	}
	return best
}

// optimizePair exactly maximizes the dual restricted to (βᵢ, βⱼ) with
// βᵢ+βⱼ fixed, and returns |Δβᵢ|.
func (s *SVR) optimizePair(i, j int, gram *mat.Dense, y, beta, f []float64) float64 {
	kii := gram.At(i, i)
	kjj := gram.At(j, j)
	kij := gram.At(i, j)
	eta := kii + kjj - 2*kij
	bi, bj := beta[i], beta[j]
	sum := bi + bj
	lo := math.Max(-s.C, sum-s.C)
	hi := math.Min(s.C, sum+s.C)
	if hi-lo < 1e-15 {
		return 0
	}
	// Contribution of all other points (and self terms removed).
	ri := f[i] - bi*kii - bj*kij
	rj := f[j] - bi*kij - bj*kjj

	// Restricted objective (constant terms dropped).
	obj := func(t float64) float64 {
		u := sum - t
		return -0.5*(kii*t*t+kjj*u*u+2*kij*t*u) -
			s.Epsilon*(math.Abs(t)+math.Abs(u)) +
			y[i]*t + y[j]*u - t*ri - u*rj
	}

	// Candidate points: breakpoints of the piecewise-quadratic plus the
	// stationary point of each sign region.
	cands := []float64{lo, hi}
	if lo < 0 && 0 < hi {
		cands = append(cands, 0)
	}
	if lo < sum && sum < hi {
		cands = append(cands, sum)
	}
	if eta > 1e-14 {
		base := (kjj-kij)*sum + (y[i] - y[j]) - (ri - rj)
		for _, sg := range [...][2]float64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
			t := (base - s.Epsilon*(sg[0]-sg[1])) / eta
			// Clip into the global box; region validity is handled by the
			// exact objective comparison.
			if t < lo {
				t = lo
			}
			if t > hi {
				t = hi
			}
			cands = append(cands, t)
		}
	}
	bestT, bestV := bi, obj(bi)
	for _, t := range cands {
		if v := obj(t); v > bestV+1e-15 {
			bestV, bestT = v, t
		}
	}
	dI := bestT - bi
	if math.Abs(dI) < 1e-14 {
		return 0
	}
	dJ := (sum - bestT) - bj
	beta[i] = bestT
	beta[j] = sum - bestT
	n := len(beta)
	for k := 0; k < n; k++ {
		f[k] += dI*gram.At(i, k) + dJ*gram.At(j, k)
	}
	return math.Abs(dI)
}

// computeBias derives b from the KKT conditions: free positive βᵢ give
// b = Fᵢ-ε, free negative give b = Fᵢ+ε; otherwise b is the midpoint of the
// feasible interval implied by the bound constraints.
func computeBias(beta, y, f []float64, eps, c float64) float64 {
	var sum float64
	var cnt int
	loB, hiB := math.Inf(-1), math.Inf(1)
	for i, b := range beta {
		fi := y[i] - f[i]
		switch {
		case b > 1e-10 && b < c-1e-10:
			sum += fi - eps
			cnt++
		case b < -1e-10 && b > -c+1e-10:
			sum += fi + eps
			cnt++
		case math.Abs(b) <= 1e-10:
			if fi-eps > loB {
				loB = fi - eps
			}
			if fi+eps < hiB {
				hiB = fi + eps
			}
		case b >= c-1e-10:
			if fi-eps < hiB {
				hiB = fi - eps
			}
		case b <= -c+1e-10:
			if fi+eps > loB {
				loB = fi + eps
			}
		}
	}
	if cnt > 0 {
		return sum / float64(cnt)
	}
	if !math.IsInf(loB, -1) && !math.IsInf(hiB, 1) {
		return (loB + hiB) / 2
	}
	return mat.Mean(y)
}

// Predict returns Σᵢ βᵢ K(svᵢ, x) + b.
func (s *SVR) Predict(x []float64) float64 {
	if !s.fitted {
		panic(ErrNotFitted)
	}
	out := s.B
	for i, sv := range s.SupportX {
		out += s.Beta[i] * s.Kernel.Eval(sv, x)
	}
	return out
}

// NumSupportVectors reports the size of the fitted support set.
func (s *SVR) NumSupportVectors() int { return len(s.Beta) }

// scaleGamma mirrors scikit-learn's gamma="scale": 1/(d · Var(X)) over all
// entries of X.
func scaleGamma(X [][]float64, d int) float64 {
	var all []float64
	for _, row := range X {
		all = append(all, row...)
	}
	v := mat.Variance(all)
	if v <= 0 {
		return 1
	}
	return 1 / (float64(d) * v)
}
