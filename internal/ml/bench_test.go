package ml

import "testing"

func benchData(b *testing.B, n int) ([][]float64, []float64) {
	b.Helper()
	X, y := syntheticFriedman(n, 77)
	return X, y
}

func BenchmarkLinearFit(b *testing.B) {
	X, y := benchData(b, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var m LinearRegression
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVRFit(b *testing.B) {
	X, y := benchData(b, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewSVR()
		m.Seed = int64(i)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomForestFit(b *testing.B) {
	X, y := benchData(b, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &RandomForest{NumTrees: 50, Seed: int64(i)}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGradientBoostingFit(b *testing.B) {
	X, y := benchData(b, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &GradientBoosting{NumStages: 50, LearningRate: 0.1, MaxDepth: 3, Seed: int64(i)}
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPFit(b *testing.B) {
	X, y := benchData(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMLP()
		m.Epochs = 100
		m.Seed = int64(i)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	X, y := benchData(b, 300)
	models := map[string]Regressor{}
	lin := &LinearRegression{}
	svr := NewSVR()
	rf := &RandomForest{NumTrees: 100, Seed: 1}
	gb := NewGradientBoosting()
	for name, m := range map[string]Regressor{"Linear": lin, "SVM": svr, "RF": rf, "GB": gb} {
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
		models[name] = m
	}
	for _, name := range []string{"Linear", "SVM", "RF", "GB"} {
		m := models[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Predict(X[i%len(X)])
			}
		})
	}
}

func BenchmarkMinMaxScaler(b *testing.B) {
	X, _ := benchData(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s MinMaxScaler
		if _, err := s.FitTransform(X); err != nil {
			b.Fatal(err)
		}
	}
}
