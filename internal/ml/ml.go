// Package ml implements the machine-learning surrogates used for memory
// design-space exploration: linear regression, ridge regression, ε-support
// vector regression (SMO dual solver, RBF/linear/polynomial kernels), CART
// regression trees, random forests, gradient-boosted trees, and a k-nearest
// neighbour baseline, together with scaling, metrics, cross-validation, grid
// search and an active-learning loop.
//
// All models implement the Regressor interface. Features are presented as
// [][]float64 (one row per sample); targets as []float64. Models are
// deterministic given their Seed parameter, which makes experiment tables
// reproducible.
package ml

import (
	"errors"
	"fmt"
)

// Regressor is a supervised model mapping a feature vector to a scalar.
type Regressor interface {
	// Fit trains the model on X (n samples × d features) and y (n targets).
	Fit(X [][]float64, y []float64) error
	// Predict returns the model output for a single feature vector.
	Predict(x []float64) float64
}

// Named is implemented by models that expose a human-readable name for
// report tables.
type Named interface {
	Name() string
}

// ErrNotFitted is returned by Predict paths that require a prior Fit.
var ErrNotFitted = errors.New("ml: model is not fitted")

// ErrBadInput is returned when training data is empty or ragged.
var ErrBadInput = errors.New("ml: invalid training input")

// PredictBatch applies r.Predict to every row of X.
func PredictBatch(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}

// checkXY validates that X is a non-empty rectangular matrix whose row count
// matches len(y), returning the feature dimension.
func checkXY(X [][]float64, y []float64) (int, error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, fmt.Errorf("%w: %d samples, %d targets", ErrBadInput, len(X), len(y))
	}
	d := len(X[0])
	if d == 0 {
		return 0, fmt.Errorf("%w: zero-dimensional features", ErrBadInput)
	}
	for i, row := range X {
		if len(row) != d {
			return 0, fmt.Errorf("%w: row %d has %d features, want %d", ErrBadInput, i, len(row), d)
		}
	}
	return d, nil
}

// copyMatrix deep-copies a feature matrix.
func copyMatrix(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = append([]float64(nil), row...)
	}
	return out
}
