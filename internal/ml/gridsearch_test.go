package ml

import "testing"

func TestGridSearchFindsBetterRidge(t *testing.T) {
	X, y := syntheticLinear(80, 3, 12, 0.05)
	grid := map[string][]float64{"lambda": {1e-6, 1e-3, 1, 1e3}}
	results, best, err := GridSearch(func(p map[string]float64) Regressor {
		return &Ridge{Lambda: p["lambda"]}
	}, grid, X, y, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if best < 0 || best >= len(results) {
		t.Fatalf("best = %d", best)
	}
	// Best candidate must not have a worse MSE than any other.
	for _, r := range results {
		if results[best].Eval.MSE > r.Eval.MSE+1e-12 {
			t.Fatalf("best MSE %v > candidate %v", results[best].Eval.MSE, r.Eval.MSE)
		}
	}
	// A huge lambda must be clearly worse than the winner.
	var hugeMSE float64
	for _, r := range results {
		if r.Params["lambda"] == 1e3 {
			hugeMSE = r.Eval.MSE
		}
	}
	if hugeMSE <= results[best].Eval.MSE {
		t.Fatalf("lambda=1e3 should not win: %v vs %v", hugeMSE, results[best].Eval.MSE)
	}
}

func TestGridSearchMultiParamCoversCrossProduct(t *testing.T) {
	X, y := syntheticFriedman(60, 13)
	grid := map[string][]float64{
		"trees": {5, 10},
		"depth": {2, 4, 6},
	}
	results, _, err := GridSearch(func(p map[string]float64) Regressor {
		return &RandomForest{NumTrees: int(p["trees"]), MaxDepth: int(p["depth"]), Seed: 1}
	}, grid, X, y, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d, want 6", len(results))
	}
	seen := map[[2]float64]bool{}
	for _, r := range results {
		seen[[2]float64{r.Params["trees"], r.Params["depth"]}] = true
	}
	if len(seen) != 6 {
		t.Fatalf("cross product incomplete: %d unique", len(seen))
	}
}

func TestGridSearchErrors(t *testing.T) {
	X, y := syntheticLinear(10, 2, 1, 0)
	if _, _, err := GridSearch(nil, map[string][]float64{}, X, y, 2, 1); err == nil {
		t.Fatal("expected error for empty grid")
	}
	if _, _, err := GridSearch(nil, map[string][]float64{"a": {}}, X, y, 2, 1); err == nil {
		t.Fatal("expected error for empty value list")
	}
	if _, _, err := GridSearch(func(map[string]float64) Regressor { return &LinearRegression{} },
		map[string][]float64{"a": {1}}, nil, nil, 2, 1); err == nil {
		t.Fatal("expected error for empty data")
	}
}

func TestGridSearchDeterministic(t *testing.T) {
	X, y := syntheticLinear(40, 2, 14, 0.1)
	grid := map[string][]float64{"lambda": {0.1, 1}}
	f := func(p map[string]float64) Regressor { return &Ridge{Lambda: p["lambda"]} }
	r1, b1, err := GridSearch(f, grid, X, y, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, b2, err := GridSearch(f, grid, X, y, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatalf("best indices differ: %d vs %d", b1, b2)
	}
	for i := range r1 {
		if r1[i].Eval.MSE != r2[i].Eval.MSE {
			t.Fatal("same seed must give identical scores")
		}
	}
}
