package ml

import (
	"math"

	"graphdse/internal/mat"
)

// Kernel computes a positive-semidefinite similarity between feature vectors.
type Kernel interface {
	Eval(a, b []float64) float64
	Name() string
}

// RBFKernel is the Gaussian kernel exp(-γ‖a-b‖²), the kernel used for SVR in
// the paper's scikit-learn default configuration.
type RBFKernel struct {
	// Gamma is the inverse width; larger values fit more locally.
	Gamma float64
}

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) float64 {
	return math.Exp(-k.Gamma * mat.SqDist(a, b))
}

// Name implements Kernel.
func (k RBFKernel) Name() string { return "rbf" }

// LinearKernel is the inner-product kernel a·b.
type LinearKernel struct{}

// Eval implements Kernel.
func (LinearKernel) Eval(a, b []float64) float64 { return mat.Dot(a, b) }

// Name implements Kernel.
func (LinearKernel) Name() string { return "linear" }

// PolyKernel is (γ a·b + c)^d.
type PolyKernel struct {
	Gamma  float64
	Coef0  float64
	Degree int
}

// Eval implements Kernel.
func (k PolyKernel) Eval(a, b []float64) float64 {
	return math.Pow(k.Gamma*mat.Dot(a, b)+k.Coef0, float64(k.Degree))
}

// Name implements Kernel.
func (k PolyKernel) Name() string { return "poly" }

// gramMatrix precomputes K(i,j) for all training pairs.
func gramMatrix(k Kernel, X [][]float64) *mat.Dense {
	n := len(X)
	g := mat.NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := k.Eval(X[i], X[j])
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	return g
}
