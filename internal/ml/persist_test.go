package ml

import (
	"bytes"
	"strings"
	"testing"
)

// fitAll returns one fitted instance of every serializable model on the
// same data.
func fitAll(t *testing.T) ([]Regressor, [][]float64, []float64) {
	t.Helper()
	X, y := syntheticFriedman(120, 40)
	svr := NewSVR()
	svr.Seed = 1
	mlp := NewMLP()
	mlp.Seed = 1
	mlp.Epochs = 100
	models := []Regressor{
		&LinearRegression{},
		&Ridge{Lambda: 0.01},
		svr,
		&RegressionTree{MaxDepth: 4},
		&RandomForest{NumTrees: 10, Seed: 1},
		&GradientBoosting{NumStages: 15, LearningRate: 0.2, MaxDepth: 3},
		&KNN{K: 3, Weighted: true},
		mlp,
	}
	for _, m := range models {
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("%T: %v", m, err)
		}
	}
	return models, X, y
}

func TestSaveLoadAllModels(t *testing.T) {
	models, X, _ := fitAll(t)
	for _, m := range models {
		var buf bytes.Buffer
		if err := SaveModel(&buf, m); err != nil {
			t.Fatalf("save %T: %v", m, err)
		}
		got, err := LoadModel(&buf)
		if err != nil {
			t.Fatalf("load %T: %v", m, err)
		}
		for i := 0; i < 20; i++ {
			a, b := m.Predict(X[i]), got.Predict(X[i])
			if a != b {
				t.Fatalf("%T: prediction changed after round trip: %v vs %v", m, a, b)
			}
		}
	}
}

func TestSaveModelRejectsUnfitted(t *testing.T) {
	unfitted := []Regressor{
		&LinearRegression{}, &Ridge{}, NewSVR(), &RegressionTree{},
		&RandomForest{}, &GradientBoosting{}, &KNN{}, NewMLP(),
	}
	for _, m := range unfitted {
		if err := SaveModel(&bytes.Buffer{}, m); err == nil {
			t.Fatalf("%T: expected ErrNotFitted", m)
		}
	}
}

type fakeModel struct{}

func (fakeModel) Fit([][]float64, []float64) error { return nil }
func (fakeModel) Predict([]float64) float64        { return 0 }

func TestSaveModelRejectsUnknownType(t *testing.T) {
	if err := SaveModel(&bytes.Buffer{}, fakeModel{}); err == nil {
		t.Fatal("expected unsupported-type error")
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("{broken")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := LoadModel(strings.NewReader(`{"type":"nope","data":{}}`)); err == nil {
		t.Fatal("expected unknown-type error")
	}
	if _, err := LoadModel(strings.NewReader(`{"type":"svr","data":{"kernel":{"name":"zzz"}}}`)); err == nil {
		t.Fatal("expected unknown-kernel error")
	}
	if _, err := LoadModel(strings.NewReader(`{"type":"mlp","data":{"dims":[1]}}`)); err == nil {
		t.Fatal("expected bad-dims error")
	}
}

func TestKernelDTORoundTrip(t *testing.T) {
	for _, k := range []Kernel{RBFKernel{Gamma: 2.5}, LinearKernel{}, PolyKernel{Gamma: 0.5, Coef0: 1, Degree: 3}} {
		got, err := kernelFromDTO(kernelToDTO(k))
		if err != nil {
			t.Fatal(err)
		}
		a := []float64{0.3, 0.7}
		b := []float64{0.1, 0.9}
		if k.Eval(a, b) != got.Eval(a, b) {
			t.Fatalf("kernel %s changed after round trip", k.Name())
		}
	}
}

func TestRenderTree(t *testing.T) {
	X, y := syntheticLinear(50, 2, 41, 0)
	tr := &RegressionTree{MaxDepth: 2}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTree(&buf, tr, []string{"alpha", "beta"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "leaf") {
		t.Fatalf("render missing leaves:\n%s", out)
	}
	if !strings.Contains(out, "alpha") && !strings.Contains(out, "beta") {
		t.Fatalf("render missing feature names:\n%s", out)
	}
	if err := RenderTree(&buf, &RegressionTree{}, nil); err == nil {
		t.Fatal("expected error for unfitted tree")
	}
	// Default names.
	buf.Reset()
	if err := RenderTree(&buf, tr, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "f0") && !strings.Contains(buf.String(), "f1") {
		t.Fatalf("default names missing:\n%s", buf.String())
	}
}
