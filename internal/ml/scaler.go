package ml

import (
	"fmt"
	"math"
)

// MinMaxScaler rescales each feature column to [0, 1] using the minimum and
// maximum observed during Fit, matching the paper's normalization choice
// (§IV-A.4). Columns that are constant in the training data map to 0.
type MinMaxScaler struct {
	Min, Max []float64
	fitted   bool
}

// Fit records per-column minima and maxima from X.
func (s *MinMaxScaler) Fit(X [][]float64) error {
	if len(X) == 0 || len(X[0]) == 0 {
		return ErrBadInput
	}
	d := len(X[0])
	s.Min = append([]float64(nil), X[0]...)
	s.Max = append([]float64(nil), X[0]...)
	for _, row := range X {
		if len(row) != d {
			return fmt.Errorf("%w: ragged rows", ErrBadInput)
		}
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	s.fitted = true
	return nil
}

// Transform returns a scaled copy of X. It panics when called before Fit or
// with a mismatched feature dimension.
func (s *MinMaxScaler) Transform(X [][]float64) [][]float64 {
	s.mustFitted()
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.TransformRow(row)
	}
	return out
}

// TransformRow scales a single feature vector.
func (s *MinMaxScaler) TransformRow(row []float64) []float64 {
	s.mustFitted()
	if len(row) != len(s.Min) {
		panic(fmt.Sprintf("ml: scaler expects %d features, got %d", len(s.Min), len(row)))
	}
	out := make([]float64, len(row))
	for j, v := range row {
		span := s.Max[j] - s.Min[j]
		if span == 0 {
			out[j] = 0
			continue
		}
		out[j] = (v - s.Min[j]) / span
	}
	return out
}

// FitTransform fits on X and returns its scaled copy.
func (s *MinMaxScaler) FitTransform(X [][]float64) ([][]float64, error) {
	if err := s.Fit(X); err != nil {
		return nil, err
	}
	return s.Transform(X), nil
}

// Inverse maps a scaled row back to original units.
func (s *MinMaxScaler) Inverse(row []float64) []float64 {
	s.mustFitted()
	if len(row) != len(s.Min) {
		panic("ml: scaler inverse dimension mismatch")
	}
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = v*(s.Max[j]-s.Min[j]) + s.Min[j]
	}
	return out
}

func (s *MinMaxScaler) mustFitted() {
	if !s.fitted {
		panic("ml: MinMaxScaler used before Fit")
	}
}

// VecMinMaxScaler scales a single target vector to [0, 1]; the paper applies
// min-max scaling to each performance metric independently.
type VecMinMaxScaler struct {
	Min, Max float64
	fitted   bool
}

// Fit records the minimum and maximum of y.
func (s *VecMinMaxScaler) Fit(y []float64) error {
	if len(y) == 0 {
		return ErrBadInput
	}
	s.Min, s.Max = y[0], y[0]
	for _, v := range y {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.fitted = true
	return nil
}

// Transform returns the scaled copy of y.
func (s *VecMinMaxScaler) Transform(y []float64) []float64 {
	if !s.fitted {
		panic("ml: VecMinMaxScaler used before Fit")
	}
	out := make([]float64, len(y))
	span := s.Max - s.Min
	for i, v := range y {
		if span == 0 {
			out[i] = 0
			continue
		}
		out[i] = (v - s.Min) / span
	}
	return out
}

// Inverse maps scaled values back to original units.
func (s *VecMinMaxScaler) Inverse(y []float64) []float64 {
	if !s.fitted {
		panic("ml: VecMinMaxScaler used before Fit")
	}
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = v*(s.Max-s.Min) + s.Min
	}
	return out
}

// StandardScaler standardizes each column to zero mean and unit variance.
// Provided as an alternative to min-max scaling for sensitivity studies.
type StandardScaler struct {
	Mean, Std []float64
	fitted    bool
}

// Fit records per-column mean and standard deviation.
func (s *StandardScaler) Fit(X [][]float64) error {
	if len(X) == 0 || len(X[0]) == 0 {
		return ErrBadInput
	}
	d := len(X[0])
	s.Mean = make([]float64, d)
	s.Std = make([]float64, d)
	for _, row := range X {
		if len(row) != d {
			return fmt.Errorf("%w: ragged rows", ErrBadInput)
		}
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	s.fitted = true
	return nil
}

// Transform returns a standardized copy of X.
func (s *StandardScaler) Transform(X [][]float64) [][]float64 {
	if !s.fitted {
		panic("ml: StandardScaler used before Fit")
	}
	out := make([][]float64, len(X))
	for i, row := range X {
		if len(row) != len(s.Mean) {
			panic("ml: scaler dimension mismatch")
		}
		o := make([]float64, len(row))
		for j, v := range row {
			o[j] = (v - s.Mean[j]) / s.Std[j]
		}
		out[i] = o
	}
	return out
}
