package ml

import (
	"bytes"

	"strings"
	"testing"

	"graphdse/internal/artifact"
)

func fittedLinear(t *testing.T) *LinearRegression {
	t.Helper()
	m := &LinearRegression{}
	X := [][]float64{{1, 2}, {2, 3}, {3, 5}, {4, 4}, {5, 7}}
	y := []float64{3, 5, 8, 8, 12}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelV2RoundTripAndV1BackCompat(t *testing.T) {
	m := fittedLinear(t)
	var v2 bytes.Buffer
	if err := SaveModel(&v2, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v2.Bytes(), artifact.Magic[:]) {
		t.Fatal("SaveModel did not emit the v2 container magic")
	}
	got, err := LoadModel(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Predict([]float64{3, 5}) != m.Predict([]float64{3, 5}) {
		t.Fatal("v2 round trip changed predictions")
	}

	var v1 bytes.Buffer
	if err := SaveModelV1(&v1, m); err != nil {
		t.Fatal(err)
	}
	if v1.Bytes()[0] != '{' {
		t.Fatal("SaveModelV1 did not emit bare JSON")
	}
	got, err = LoadModel(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Predict([]float64{3, 5}) != m.Predict([]float64{3, 5}) {
		t.Fatal("v1 back-compat load changed predictions")
	}
}

// TestModelV2BitFlipMatrix flips every byte of a saved model: every flip
// must be rejected by the container checksum — silently loading wrong
// coefficients is the failure mode v2 exists to kill.
func TestModelV2BitFlipMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, fittedLinear(t)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := range data {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0x01
		if _, err := LoadModel(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("bit flip at byte %d/%d went undetected", i, len(data))
		}
	}
}

func TestModelV2TruncationMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, fittedLinear(t)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := LoadModel(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", cut, len(data))
		}
	}
}

// TestModelStructuralValidation hand-crafts envelopes whose shapes violate
// Predict's invariants: each must be rejected at load, not panic at use.
func TestModelStructuralValidation(t *testing.T) {
	cases := map[string]string{
		"mlp weight shape": `{"type":"mlp","data":{"dims":[2,3,1],"weights":[[1,2,3],[1,2,3]],"biases":[[1,2,3],[1]]}}`,
		"mlp bias shape":   `{"type":"mlp","data":{"dims":[2,3,1],"weights":[[1,2,3,4,5,6],[1,2,3]],"biases":[[1,2],[1]]}}`,
		"mlp layer count":  `{"type":"mlp","data":{"dims":[2,3,1],"weights":[[1,2,3,4,5,6]],"biases":[[1,2,3]]}}`,
		"knn x/y mismatch": `{"type":"knn","data":{"k":1,"x":[[1,2],[3,4]],"y":[1]}}`,
		"knn ragged rows":  `{"type":"knn","data":{"k":1,"x":[[1,2],[3]],"y":[1,2]}}`,
		"knn bad k":        `{"type":"knn","data":{"k":0,"x":[[1,2]],"y":[1]}}`,
		"svr beta count":   `{"type":"svr","data":{"kernel":{"name":"rbf","gamma":1},"supportX":[[1,2],[3,4]],"beta":[0.5],"b":0}}`,
		"tree feature":     `{"type":"tree","data":{"dims":2,"root":{"f":5,"t":1,"v":0,"n":2,"l":{"f":-1,"v":1,"n":1},"r":{"f":-1,"v":2,"n":1}}}}`,
		"tree no child":    `{"type":"tree","data":{"dims":2,"root":{"f":0,"t":1,"v":0,"n":2,"l":{"f":-1,"v":1,"n":1}}}}`,
		"tree no root":     `{"type":"tree","data":{"dims":2}}`,
		"linear empty":     `{"type":"linear","data":{"coef":[],"intercept":0}}`,
		"forest empty":     `{"type":"forest","data":{"trees":[],"dims":2}}`,
	}
	for name, payload := range cases {
		if _, err := LoadModel(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: invalid model accepted", name)
		} else if !strings.Contains(err.Error(), "invalid model") && !strings.Contains(err.Error(), "mlp dims") {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
}

// FuzzLoadModel drives the model loader over arbitrary bytes: it must never
// panic, and anything that loads must survive a Predict call with the
// feature width the model itself reports.
func FuzzLoadModel(f *testing.F) {
	var v1, v2 bytes.Buffer
	m := &LinearRegression{}
	m.Fit([][]float64{{1, 2}, {2, 3}, {3, 5}}, []float64{3, 5, 8})
	SaveModelV1(&v1, m)
	SaveModel(&v2, m)
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add([]byte(`{"type":"mlp","data":{"dims":[1,1],"weights":[[1]],"biases":[[0]]}}`))
	f.Add([]byte(`{"type":"knn","data":{"k":1,"x":[[1]],"y":[2]}}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		model, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		width := modelWidth(model)
		if width <= 0 || width > 64 {
			return
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("loaded model panicked on Predict: %v", r)
				}
			}()
			_ = model.Predict(make([]float64, width))
		}()
	})
}

// modelWidth reports the feature width a loaded model expects, or 0 when it
// cannot be determined.
func modelWidth(m Regressor) int {
	switch mm := m.(type) {
	case *LinearRegression:
		return len(mm.Coef)
	case *Ridge:
		return len(mm.Coef)
	case *SVR:
		if len(mm.SupportX) > 0 {
			return len(mm.SupportX[0])
		}
	case *RegressionTree:
		return mm.nDims
	case *RandomForest:
		return mm.nDims
	case *GradientBoosting:
		return mm.nDims
	case *KNN:
		if len(mm.x) > 0 {
			return len(mm.x[0])
		}
	case *MLP:
		if len(mm.dims) > 0 {
			return mm.dims[0]
		}
	}
	return 0
}
