package ml

import (
	"fmt"
	"math/rand"

	"graphdse/internal/mat"
)

// GradientBoosting is least-squares gradient boosting with shallow CART
// trees, mirroring scikit-learn's GradientBoostingRegressor used in the
// paper: the model starts from the target mean and each stage fits a tree to
// the current residuals, added with a shrinkage factor.
type GradientBoosting struct {
	// NumStages is the number of boosting rounds (default 100).
	NumStages int
	// LearningRate is the shrinkage applied to each stage (default 0.1).
	LearningRate float64
	// MaxDepth bounds each weak learner (default 3, scikit-learn's default).
	MaxDepth int
	// MinSamplesLeaf is forwarded to the trees.
	MinSamplesLeaf int
	// Subsample in (0,1] enables stochastic gradient boosting; 1 uses all
	// rows each round.
	Subsample float64
	// Seed drives the subsampling.
	Seed int64

	init   float64
	stages []*RegressionTree
	nDims  int
	fitted bool
}

// NewGradientBoosting returns a booster with scikit-learn-like defaults.
func NewGradientBoosting() *GradientBoosting {
	return &GradientBoosting{NumStages: 100, LearningRate: 0.1, MaxDepth: 3, Subsample: 1}
}

// Name implements Named.
func (g *GradientBoosting) Name() string { return "GB" }

// Fit trains the staged ensemble.
func (g *GradientBoosting) Fit(X [][]float64, y []float64) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if g.NumStages <= 0 {
		g.NumStages = 100
	}
	if g.LearningRate <= 0 {
		g.LearningRate = 0.1
	}
	if g.MaxDepth <= 0 {
		g.MaxDepth = 3
	}
	if g.Subsample <= 0 || g.Subsample > 1 {
		g.Subsample = 1
	}
	g.nDims = d
	g.init = mat.Mean(y)
	g.stages = g.stages[:0]

	n := len(X)
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = g.init
	}
	resid := make([]float64, n)
	rng := rand.New(rand.NewSource(g.Seed + 101))

	for stage := 0; stage < g.NumStages; stage++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tx, ty := X, resid
		if g.Subsample < 1 {
			m := int(float64(n) * g.Subsample)
			if m < 1 {
				m = 1
			}
			idx := rng.Perm(n)[:m]
			tx, ty = Gather(X, resid, idx)
		}
		tree := &RegressionTree{
			MaxDepth:       g.MaxDepth,
			MinSamplesLeaf: g.MinSamplesLeaf,
			Seed:           g.Seed + int64(stage)*31,
		}
		if err := tree.Fit(tx, ty); err != nil {
			return fmt.Errorf("stage %d: %w", stage, err)
		}
		g.stages = append(g.stages, tree)
		for i, row := range X {
			pred[i] += g.LearningRate * tree.Predict(row)
		}
	}
	g.fitted = true
	return nil
}

// Predict returns init + lr·Σ stage(x).
func (g *GradientBoosting) Predict(x []float64) float64 {
	if !g.fitted {
		panic(ErrNotFitted)
	}
	if len(x) != g.nDims {
		panic(fmt.Sprintf("ml: booster expects %d features, got %d", g.nDims, len(x)))
	}
	out := g.init
	for _, t := range g.stages {
		out += g.LearningRate * t.Predict(x)
	}
	return out
}

// NumFittedStages reports the number of boosting rounds performed.
func (g *GradientBoosting) NumFittedStages() int { return len(g.stages) }
