package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// syntheticFriedman is a smooth nonlinear regression surface used to compare
// model families.
func syntheticFriedman(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = math.Sin(math.Pi*X[i][0]*X[i][1]) + 2*(X[i][2]-0.5)*(X[i][2]-0.5) + X[i][3]
	}
	return X, y
}

func TestLinearRegressionExactRecovery(t *testing.T) {
	X, y := syntheticLinear(50, 4, 2, 0)
	var m LinearRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := PredictBatch(&m, X)
	if r2 := R2(y, pred); r2 < 1-1e-9 {
		t.Fatalf("R2 = %v, want ~1", r2)
	}
	if math.Abs(m.Intercept-0.5) > 1e-9 {
		t.Fatalf("Intercept = %v, want 0.5", m.Intercept)
	}
}

func TestLinearRegressionRankDeficientFallsBackToRidge(t *testing.T) {
	// Second column is constant → collinear with the intercept.
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{2, 4, 6, 8}
	var m LinearRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := PredictBatch(&m, X)
	if r2 := R2(y, pred); r2 < 0.999 {
		t.Fatalf("rank-deficient fit R2 = %v", r2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	var m LinearRegression
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty input")
	}
	if err := m.Fit([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on ragged rows")
	}
	mustPanicML(t, func() { m.Predict([]float64{1}) }) // not fitted
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	mustPanicML(t, func() { m.Predict([]float64{1, 2}) }) // wrong dim
}

func TestRidgeShrinks(t *testing.T) {
	X, y := syntheticLinear(60, 3, 4, 0.01)
	small := &Ridge{Lambda: 1e-6}
	big := &Ridge{Lambda: 1e4}
	if err := small.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := big.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var ns, nb float64
	for j := range small.Coef {
		ns += small.Coef[j] * small.Coef[j]
		nb += big.Coef[j] * big.Coef[j]
	}
	if nb >= ns {
		t.Fatalf("large lambda should shrink coefficients: %v vs %v", nb, ns)
	}
}

func TestRidgeNegativeLambda(t *testing.T) {
	m := &Ridge{Lambda: -1}
	if err := m.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for negative lambda")
	}
}

func TestRidgeMatchesOLSAtZeroLambda(t *testing.T) {
	X, y := syntheticLinear(40, 3, 9, 0)
	var ols LinearRegression
	r := &Ridge{Lambda: 0}
	if err := ols.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := r.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for j := range ols.Coef {
		if math.Abs(ols.Coef[j]-r.Coef[j]) > 1e-5 {
			t.Fatalf("coef %d: OLS %v vs ridge %v", j, ols.Coef[j], r.Coef[j])
		}
	}
}

func TestSVRFitsLinearFunction(t *testing.T) {
	X, y := syntheticLinear(80, 2, 3, 0)
	m := NewSVR()
	m.Seed = 1
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := PredictBatch(m, X)
	if r2 := R2(y, pred); r2 < 0.99 {
		t.Fatalf("SVR train R2 = %v", r2)
	}
}

func TestSVRFitsNonlinearFunction(t *testing.T) {
	X, y := syntheticFriedman(150, 5)
	trX, trY, teX, teY, err := TrainTestSplit(X, y, 0.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	m := NewSVR()
	m.Seed = 2
	if err := m.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	pred := PredictBatch(m, teX)
	if r2 := R2(teY, pred); r2 < 0.9 {
		t.Fatalf("SVR test R2 = %v, want > 0.9", r2)
	}
}

func TestSVRRespectsEpsilonTube(t *testing.T) {
	// With a huge tube every residual fits inside → all beta stay 0 and the
	// model predicts a constant (the bias).
	X, y := syntheticLinear(30, 2, 7, 0)
	m := NewSVR()
	m.Epsilon = 1e6
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.NumSupportVectors() != 0 {
		t.Fatalf("expected no support vectors, got %d", m.NumSupportVectors())
	}
	p1 := m.Predict(X[0])
	p2 := m.Predict(X[1])
	if p1 != p2 {
		t.Fatalf("constant model expected, got %v vs %v", p1, p2)
	}
}

func TestSVRBetaSumsToZeroAndBounded(t *testing.T) {
	X, y := syntheticFriedman(60, 8)
	m := NewSVR()
	m.C = 5
	m.Seed = 3
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, b := range m.Beta {
		sum += b
		if math.Abs(b) > m.C+1e-9 {
			t.Fatalf("beta %v exceeds C=%v", b, m.C)
		}
	}
	if math.Abs(sum) > 1e-8 {
		t.Fatalf("sum beta = %v, want 0", sum)
	}
}

func TestSVRParameterValidation(t *testing.T) {
	X, y := syntheticLinear(10, 2, 1, 0)
	m := NewSVR()
	m.C = -1
	if err := m.Fit(X, y); err == nil {
		t.Fatal("expected error for negative C")
	}
	m = NewSVR()
	m.Epsilon = -0.1
	if err := m.Fit(X, y); err == nil {
		t.Fatal("expected error for negative epsilon")
	}
	mustPanicML(t, func() { NewSVR().Predict([]float64{1}) })
}

func TestSVRKernels(t *testing.T) {
	X, y := syntheticLinear(60, 2, 6, 0)
	for _, k := range []Kernel{LinearKernel{}, RBFKernel{Gamma: 1}, PolyKernel{Gamma: 1, Coef0: 1, Degree: 2}} {
		m := NewSVR()
		m.Kernel = k
		m.Seed = 4
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		pred := PredictBatch(m, X)
		if r2 := R2(y, pred); r2 < 0.95 {
			t.Fatalf("%s kernel train R2 = %v", k.Name(), r2)
		}
	}
}

func TestRegressionTreePerfectOnTrainWhenUnbounded(t *testing.T) {
	X, y := syntheticFriedman(100, 2)
	var tr RegressionTree
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := PredictBatch(&tr, X)
	if r2 := R2(y, pred); r2 < 1-1e-9 {
		t.Fatalf("unbounded tree train R2 = %v", r2)
	}
}

func TestRegressionTreeDepthLimit(t *testing.T) {
	X, y := syntheticFriedman(200, 3)
	tr := RegressionTree{MaxDepth: 2}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 2 {
		t.Fatalf("Depth = %d, want <= 2", d)
	}
	if lc := tr.LeafCount(); lc > 4 {
		t.Fatalf("LeafCount = %d, want <= 4", lc)
	}
}

func TestRegressionTreeMinSamplesLeaf(t *testing.T) {
	X, y := syntheticFriedman(50, 4)
	tr := RegressionTree{MinSamplesLeaf: 10}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.LeafCount() > 5 {
		t.Fatalf("LeafCount = %d with MinSamplesLeaf=10 over 50 samples", tr.LeafCount())
	}
}

func TestRegressionTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	var tr RegressionTree
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tr.LeafCount() != 1 {
		t.Fatalf("constant target should yield a single leaf, got %d", tr.LeafCount())
	}
	if got := tr.Predict([]float64{99}); got != 5 {
		t.Fatalf("Predict = %v, want 5", got)
	}
}

func TestRegressionTreeSingleSample(t *testing.T) {
	var tr RegressionTree
	if err := tr.Fit([][]float64{{1, 2}}, []float64{7}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{0, 0}); got != 7 {
		t.Fatalf("Predict = %v, want 7", got)
	}
}

func TestRandomForestBeatsSingleShallowTree(t *testing.T) {
	X, y := syntheticFriedman(300, 6)
	trX, trY, teX, teY, _ := TrainTestSplit(X, y, 0.25, 1)
	f := &RandomForest{NumTrees: 60, Seed: 1}
	if err := f.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	fr2 := R2(teY, PredictBatch(f, teX))
	if fr2 < 0.8 {
		t.Fatalf("forest test R2 = %v", fr2)
	}
}

func TestRandomForestDeterministicWithSeed(t *testing.T) {
	X, y := syntheticFriedman(80, 7)
	a := &RandomForest{NumTrees: 10, Seed: 42}
	b := &RandomForest{NumTrees: 10, Seed: 42}
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same-seed forests must agree")
		}
	}
}

func TestRandomForestVarianceNonNegativeAndInformative(t *testing.T) {
	X, y := syntheticFriedman(100, 8)
	f := &RandomForest{NumTrees: 30, Seed: 3}
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	_, v := f.PredictWithVariance(X[0])
	if v < 0 {
		t.Fatalf("variance = %v", v)
	}
	// Far outside the training domain the trees should disagree more than at
	// a training point, on average.
	var inVar, outVar float64
	for i := 0; i < 20; i++ {
		_, vi := f.PredictWithVariance(X[i])
		inVar += vi
		_, vo := f.PredictWithVariance([]float64{10 + float64(i), -10, 10, -10})
		outVar += vo
	}
	if outVar < inVar {
		t.Logf("warning: extrapolation variance %v not larger than interpolation %v", outVar, inVar)
	}
}

func TestGradientBoostingImprovesWithStages(t *testing.T) {
	X, y := syntheticFriedman(200, 9)
	few := &GradientBoosting{NumStages: 3, LearningRate: 0.1, MaxDepth: 3}
	many := &GradientBoosting{NumStages: 150, LearningRate: 0.1, MaxDepth: 3}
	if err := few.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := many.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mseFew := MSE(y, PredictBatch(few, X))
	mseMany := MSE(y, PredictBatch(many, X))
	if mseMany >= mseFew {
		t.Fatalf("more stages should reduce train MSE: %v vs %v", mseMany, mseFew)
	}
}

func TestGradientBoostingSubsample(t *testing.T) {
	X, y := syntheticFriedman(120, 10)
	g := &GradientBoosting{NumStages: 50, LearningRate: 0.2, MaxDepth: 3, Subsample: 0.6, Seed: 2}
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2 := R2(y, PredictBatch(g, X)); r2 < 0.9 {
		t.Fatalf("stochastic GB train R2 = %v", r2)
	}
	if g.NumFittedStages() != 50 {
		t.Fatalf("stages = %d", g.NumFittedStages())
	}
}

func TestGradientBoostingConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{4, 4, 4}
	g := NewGradientBoosting()
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := g.Predict([]float64{2}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Predict = %v, want 4", got)
	}
}

func TestKNNExactMatch(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}}
	y := []float64{10, 20, 30}
	k := &KNN{K: 1}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := k.Predict([]float64{1}); got != 20 {
		t.Fatalf("Predict = %v", got)
	}
	kw := &KNN{K: 3, Weighted: true}
	if err := kw.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := kw.Predict([]float64{2}); got != 30 {
		t.Fatalf("weighted exact match = %v, want 30", got)
	}
}

func TestKNNAveraging(t *testing.T) {
	X := [][]float64{{0}, {1}, {10}}
	y := []float64{0, 2, 100}
	k := &KNN{K: 2}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := k.Predict([]float64{0.5}); got != 1 {
		t.Fatalf("Predict = %v, want 1", got)
	}
}

func TestKNNLargerKThanData(t *testing.T) {
	X := [][]float64{{0}, {1}}
	y := []float64{2, 4}
	k := &KNN{K: 10}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := k.Predict([]float64{0}); got != 3 {
		t.Fatalf("Predict = %v, want mean 3", got)
	}
}

func TestModelNames(t *testing.T) {
	cases := []struct {
		m    Named
		want string
	}{
		{&LinearRegression{}, "Linear"},
		{&Ridge{}, "Ridge"},
		{NewSVR(), "SVM"},
		{&RegressionTree{}, "Tree"},
		{NewRandomForest(), "RF"},
		{NewGradientBoosting(), "GB"},
		{&KNN{}, "KNN"},
	}
	for _, c := range cases {
		if got := c.m.Name(); got != c.want {
			t.Fatalf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestPredictBatchLength(t *testing.T) {
	X, y := syntheticLinear(20, 2, 1, 0)
	var m LinearRegression
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := PredictBatch(&m, X); len(got) != 20 {
		t.Fatalf("batch length = %d", len(got))
	}
}

// Property: an unbounded CART tree always reproduces distinct training points
// exactly (it can memorize when all feature vectors are unique).
func TestPropTreeMemorizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		X := make([][]float64, n)
		y := make([]float64, n)
		used := map[float64]bool{}
		for i := range X {
			v := rng.Float64()
			for used[v] {
				v = rng.Float64()
			}
			used[v] = true
			X[i] = []float64{v}
			y[i] = rng.NormFloat64()
		}
		var tr RegressionTree
		if err := tr.Fit(X, y); err != nil {
			return false
		}
		for i := range X {
			if math.Abs(tr.Predict(X[i])-y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: forest predictions stay within [min(y), max(y)] — trees predict
// leaf means and means of means cannot escape the hull.
func TestPropForestWithinHull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range X {
			X[i] = []float64{rng.Float64(), rng.Float64()}
			y[i] = rng.NormFloat64()
			if y[i] < lo {
				lo = y[i]
			}
			if y[i] > hi {
				hi = y[i]
			}
		}
		fr := &RandomForest{NumTrees: 10, Seed: seed}
		if err := fr.Fit(X, y); err != nil {
			return false
		}
		for i := 0; i < 5; i++ {
			p := fr.Predict([]float64{rng.Float64() * 3, rng.Float64() * 3})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
