package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a multilayer-perceptron regressor trained with Adam on mean squared
// error — the "more advanced ML method" direction the paper's future work
// names. The architecture is input → hidden layers (tanh) → linear output.
type MLP struct {
	// Hidden lists the hidden-layer widths (default one layer of 32).
	Hidden []int
	// Epochs of full-batch passes (default 400).
	Epochs int
	// LearningRate for Adam (default 0.01).
	LearningRate float64
	// L2 weight decay (default 1e-4).
	L2 float64
	// BatchSize for mini-batch SGD; <=0 uses full batch.
	BatchSize int
	// Seed controls weight init and batch shuffling.
	Seed int64

	weights [][]float64 // per layer, row-major (out × in)
	biases  [][]float64
	dims    []int // layer sizes including input and output
	fitted  bool
}

// NewMLP returns an MLP with defaults suited to the small DSE datasets.
func NewMLP() *MLP {
	return &MLP{Hidden: []int{32}, Epochs: 400, LearningRate: 0.01, L2: 1e-4}
}

// Name implements Named.
func (m *MLP) Name() string { return "MLP" }

// Fit trains the network.
func (m *MLP) Fit(X [][]float64, y []float64) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	if len(m.Hidden) == 0 {
		m.Hidden = []int{32}
	}
	for _, h := range m.Hidden {
		if h <= 0 {
			return fmt.Errorf("%w: hidden width %d", ErrBadInput, h)
		}
	}
	if m.Epochs <= 0 {
		m.Epochs = 400
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 0.01
	}
	n := len(X)
	batch := m.BatchSize
	if batch <= 0 || batch > n {
		batch = n
	}

	m.dims = append(append([]int{d}, m.Hidden...), 1)
	L := len(m.dims) - 1
	rng := rand.New(rand.NewSource(m.Seed + 99))
	m.weights = make([][]float64, L)
	m.biases = make([][]float64, L)
	// Adam state.
	mw := make([][]float64, L)
	vw := make([][]float64, L)
	mb := make([][]float64, L)
	vb := make([][]float64, L)
	for l := 0; l < L; l++ {
		in, out := m.dims[l], m.dims[l+1]
		m.weights[l] = make([]float64, in*out)
		scale := math.Sqrt(2 / float64(in))
		for i := range m.weights[l] {
			m.weights[l][i] = rng.NormFloat64() * scale
		}
		m.biases[l] = make([]float64, out)
		mw[l] = make([]float64, in*out)
		vw[l] = make([]float64, in*out)
		mb[l] = make([]float64, out)
		vb[l] = make([]float64, out)
	}

	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	acts := make([][]float64, L+1)
	deltas := make([][]float64, L)
	for l := 0; l < L; l++ {
		deltas[l] = make([]float64, m.dims[l+1])
	}
	order := rng.Perm(n)
	step := 0
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			// Zero gradients (accumulated in Adam buffers via temp grads).
			gw := make([][]float64, L)
			gb := make([][]float64, L)
			for l := 0; l < L; l++ {
				gw[l] = make([]float64, len(m.weights[l]))
				gb[l] = make([]float64, len(m.biases[l]))
			}
			for _, i := range order[start:end] {
				m.forward(X[i], acts)
				// Output delta: d(MSE)/d(out) = 2*(out - y) (constant folded).
				deltas[L-1][0] = acts[L][0] - y[i]
				// Backprop through hidden layers.
				for l := L - 2; l >= 0; l-- {
					out := m.dims[l+1]
					nxt := m.dims[l+2]
					wNext := m.weights[l+1]
					for j := 0; j < out; j++ {
						var s float64
						for k := 0; k < nxt; k++ {
							s += wNext[k*out+j] * deltas[l+1][k]
						}
						a := acts[l+1][j]
						deltas[l][j] = s * (1 - a*a) // tanh'
					}
				}
				for l := 0; l < L; l++ {
					in, out := m.dims[l], m.dims[l+1]
					for j := 0; j < out; j++ {
						dj := deltas[l][j]
						gb[l][j] += dj
						row := gw[l][j*in : (j+1)*in]
						av := acts[l]
						for k := 0; k < in; k++ {
							row[k] += dj * av[k]
						}
					}
				}
			}
			// Adam update.
			step++
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			inv := 1 / float64(end-start)
			for l := 0; l < L; l++ {
				for i := range m.weights[l] {
					g := gw[l][i]*inv + m.L2*m.weights[l][i]
					mw[l][i] = beta1*mw[l][i] + (1-beta1)*g
					vw[l][i] = beta2*vw[l][i] + (1-beta2)*g*g
					m.weights[l][i] -= m.LearningRate * (mw[l][i] / bc1) / (math.Sqrt(vw[l][i]/bc2) + eps)
				}
				for i := range m.biases[l] {
					g := gb[l][i] * inv
					mb[l][i] = beta1*mb[l][i] + (1-beta1)*g
					vb[l][i] = beta2*vb[l][i] + (1-beta2)*g*g
					m.biases[l][i] -= m.LearningRate * (mb[l][i] / bc1) / (math.Sqrt(vb[l][i]/bc2) + eps)
				}
			}
		}
	}
	m.fitted = true
	return nil
}

// forward fills acts[0..L] with layer activations for input x.
func (m *MLP) forward(x []float64, acts [][]float64) {
	L := len(m.dims) - 1
	acts[0] = x
	for l := 0; l < L; l++ {
		in, out := m.dims[l], m.dims[l+1]
		if acts[l+1] == nil || len(acts[l+1]) != out {
			acts[l+1] = make([]float64, out)
		}
		w := m.weights[l]
		for j := 0; j < out; j++ {
			s := m.biases[l][j]
			row := w[j*in : (j+1)*in]
			av := acts[l]
			for k := 0; k < in; k++ {
				s += row[k] * av[k]
			}
			if l < L-1 {
				s = math.Tanh(s)
			}
			acts[l+1][j] = s
		}
	}
}

// Predict runs a forward pass.
func (m *MLP) Predict(x []float64) float64 {
	if !m.fitted {
		panic(ErrNotFitted)
	}
	if len(x) != m.dims[0] {
		panic(fmt.Sprintf("ml: mlp expects %d features, got %d", m.dims[0], len(x)))
	}
	acts := make([][]float64, len(m.dims))
	m.forward(x, acts)
	return acts[len(acts)-1][0]
}
