package guard

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestSignalContextFirstSignalCancels(t *testing.T) {
	forced := make(chan os.Signal, 1)
	ctx, stop := SignalContext(context.Background(), func(s os.Signal) { forced <- s })
	defer stop()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the context")
	}
	select {
	case s := <-forced:
		t.Fatalf("force fired on the first signal: %v", s)
	default:
	}
	// A second signal forces.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-forced:
	case <-time.After(5 * time.Second):
		t.Fatal("second SIGTERM did not reach the force handler")
	}
}

func TestSignalContextStopReleases(t *testing.T) {
	ctx, stop := SignalContext(context.Background(), nil)
	stop()
	select {
	case <-ctx.Done():
	default:
		t.Fatal("stop must cancel the context")
	}
	stop() // idempotent
}
