// Package guard is the supervised-execution runtime under the paper's
// long-running pipeline. The campaign the paper describes (BFS trace →
// convert → 416-configuration memory-simulator sweep → surrogate training)
// runs unattended for hours, and surrogate-driven co-design only works if
// the campaign survives hangs, memory exhaustion, and operator kills while
// producing only trustworthy data. guard provides the three mechanisms the
// rest of the repository builds on:
//
//   - Stage supervision (stage.go, pipeline.go): each pipeline stage runs
//     under a watchdog fed by a progress heartbeat; a stalled heartbeat or
//     an expired deadline cancels the stage via its context (never the
//     process) and surfaces as a structured *Error with Class Timeout.
//     Panics inside a stage are captured as *PanicError (Class Fatal).
//
//   - Resource governance (budget.go): a Budget samples the heap against a
//     soft limit and escalates a pressure level; consumers (the sweep
//     engine, the trace converter) step their worker counts down under
//     pressure instead of dying, and every downshift is recorded in the
//     run report.
//
//   - A unified error taxonomy (Class): the sweep engine's transient and
//     panic failures and the artifact layer's corruption sentinels all map
//     onto one five-way classification, so every layer of the pipeline
//     reports failures in the same vocabulary and scripts can branch on a
//     single exit-code contract.
package guard

import (
	"context"
	"errors"
	"fmt"

	"graphdse/internal/artifact"
)

// Class is the unified failure taxonomy every pipeline layer wraps into.
type Class int

const (
	// None means no failure.
	None Class = iota
	// Transient marks failures worth retrying: the operation may succeed
	// unchanged on a second attempt (injected transient faults, momentary
	// environment errors).
	Transient
	// Timeout marks work cancelled by a watchdog or deadline: a stalled
	// heartbeat, an expired stage or pipeline deadline, or a per-point
	// simulation deadline.
	Timeout
	// Corrupt marks data that is present but provably damaged or physically
	// impossible — checksum mismatches, truncated artifacts, and metrics
	// that fail validation. Retrying will not help; the input must be
	// regenerated or salvaged.
	Corrupt
	// Fatal marks non-retryable programming or environment failures,
	// including captured panics.
	Fatal
	// Canceled marks work stopped by caller intent (Ctrl-C, SIGTERM, parent
	// context cancellation) rather than by a fault.
	Canceled
)

// String names the class for reports and logs.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Transient:
		return "transient"
	case Timeout:
		return "timeout"
	case Corrupt:
		return "corrupt"
	case Fatal:
		return "fatal"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Retryable reports whether work failing with this class may succeed
// unchanged on a retry.
func (c Class) Retryable() bool { return c == Transient }

// ErrTransient marks failures worth retrying. It is the canonical sentinel
// the sweep engine's retry loop tests for (dse.ErrTransient aliases it).
var ErrTransient = errors.New("guard: transient fault")

// ErrStalled reports a stage whose heartbeat went silent past the
// watchdog's patience: the stage was cancelled via its context.
var ErrStalled = errors.New("guard: heartbeat stalled")

// ErrAbandoned reports a stage that ignored its cancellation past the grace
// period; its goroutine was abandoned (Go cannot kill it) and its eventual
// result will be discarded.
var ErrAbandoned = errors.New("guard: stage abandoned after cancellation grace")

// PanicError wraps a panic recovered inside supervised work so the crash of
// one stage or design point becomes a structured record instead of killing
// the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("guard: panic: %v", e.Value)
}

// Error is a classified, stage-attributed pipeline failure.
type Error struct {
	// Stage names the pipeline stage that failed.
	Stage string
	// Class is the taxonomy classification.
	Class Class
	// Err is the underlying cause chain.
	Err error
}

func (e *Error) Error() string {
	return fmt.Sprintf("guard: stage %s: %s: %v", e.Stage, e.Class, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// ClassOf classifies an arbitrary error onto the taxonomy. A wrapped *Error
// keeps its recorded class; otherwise sentinels from every pipeline layer
// are mapped: transient faults, deadline/watchdog expiry, artifact
// corruption/truncation, context cancellation. Unrecognized errors are
// Fatal; nil is None.
func ClassOf(err error) Class {
	if err == nil {
		return None
	}
	var ge *Error
	if errors.As(err, &ge) {
		return ge.Class
	}
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		return Fatal
	case errors.Is(err, ErrTransient):
		return Transient
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, ErrStalled), errors.Is(err, ErrAbandoned):
		return Timeout
	case errors.Is(err, artifact.ErrCorrupt), errors.Is(err, artifact.ErrTruncated):
		return Corrupt
	case errors.Is(err, context.Canceled):
		return Canceled
	default:
		return Fatal
	}
}
