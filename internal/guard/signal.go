package guard

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// SignalContext returns a context cancelled on the first SIGINT or SIGTERM,
// so a checkpointed sweep can flush and exit cleanly; a second signal calls
// force (for the cmd tools: immediate os.Exit), covering the operator who
// really means it. The returned stop releases the signal handlers, restores
// default delivery, and reaps the watcher goroutine.
//
// This is the shared signal discipline of cmd/dse and the subprocess tests
// that assert kill -TERM + resume yields byte-identical reports.
func SignalContext(parent context.Context, force func(os.Signal)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancelCause(parent)
	ch := make(chan os.Signal, 2)
	stopped := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(stopped)
			cancel(context.Canceled)
		})
	}
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-ch:
			// First signal: cancel the pipeline and let checkpoints flush.
			cancel(context.Canceled)
		case <-stopped:
			return
		}
		select {
		case sig := <-ch:
			// Second signal: the operator really means it.
			if force != nil {
				force(sig)
			}
		case <-stopped:
		}
	}()
	return ctx, stop
}
