package guard

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"
)

// PipelineOptions configures a supervised pipeline run. The zero value
// supervises panics only (no deadlines, no watchdogs, no budget).
type PipelineOptions struct {
	// Deadline bounds the whole pipeline's wall clock (0 = none). Expiry
	// cancels every stage and classifies as Timeout.
	Deadline time.Duration
	// Stage supplies the default supervision for every stage.
	Stage StageOptions
	// Budget governs memory: under pressure, registered consumers step
	// worker counts down instead of dying.
	Budget Budget
}

// StageReport is one stage's outcome in the run report.
type StageReport struct {
	Name     string
	Duration time.Duration
	// Beats counts heartbeat progress marks the stage reported.
	Beats int64
	// Class is None on success.
	Class Class
	Err   string
}

// Report is the supervision record of one pipeline run: what each stage
// did, every degradation the governor applied, and the peak heap observed.
type Report struct {
	Stages        []StageReport
	Downshifts    []Downshift
	PeakHeapBytes uint64
	Elapsed       time.Duration
}

// Pipeline runs a sequence of supervised stages sharing one deadline, one
// governor, and one report. Stages run from the caller's goroutine (Run
// blocks); only the supervision machinery is concurrent.
type Pipeline struct {
	opts  PipelineOptions
	gov   *Governor
	start time.Time

	mu     sync.Mutex
	stages []StageReport
}

// NewPipeline builds a pipeline runtime; call Start to obtain the governed
// context, then Run for each stage, then Report.
func NewPipeline(opts PipelineOptions) *Pipeline {
	return &Pipeline{opts: opts, gov: NewGovernor(opts.Budget), start: time.Now()}
}

// Start applies the pipeline deadline to ctx and launches the budget
// sampler. The returned cancel must be called when the pipeline ends; it
// also stops the sampler.
func (p *Pipeline) Start(ctx context.Context) (context.Context, context.CancelFunc) {
	var cancel context.CancelFunc = func() {}
	if p.opts.Deadline > 0 {
		ctx, cancel = context.WithTimeoutCause(ctx, p.opts.Deadline,
			fmt.Errorf("%w: pipeline deadline %v exceeded", context.DeadlineExceeded, p.opts.Deadline))
	}
	p.gov.Start(ctx)
	inner := cancel
	return ctx, func() {
		inner()
		p.gov.Stop()
	}
}

// Governor returns the pipeline's resource governor (never nil).
func (p *Pipeline) Governor() *Governor { return p.gov }

// Run executes one named stage under the pipeline's default supervision and
// records its outcome in the report.
func (p *Pipeline) Run(ctx context.Context, name string, fn StageFunc) error {
	return p.RunStage(ctx, name, p.opts.Stage, fn)
}

// RunStage is Run with per-stage supervision overrides.
func (p *Pipeline) RunStage(ctx context.Context, name string, opts StageOptions, fn StageFunc) error {
	hb := &Heartbeat{}
	hb.last.Store(time.Now().UnixNano())
	start := time.Now()
	err := run(ctx, name, opts, hb, fn)
	rep := StageReport{
		Name:     name,
		Duration: time.Since(start),
		Beats:    hb.Beats(),
		Class:    ClassOf(err),
	}
	if err != nil {
		rep.Err = err.Error()
	}
	p.mu.Lock()
	p.stages = append(p.stages, rep)
	p.mu.Unlock()
	return err
}

// Report assembles the supervision record accumulated so far.
func (p *Pipeline) Report() *Report {
	p.mu.Lock()
	stages := make([]StageReport, len(p.stages))
	copy(stages, p.stages)
	p.mu.Unlock()
	return &Report{
		Stages:        stages,
		Downshifts:    p.gov.Downshifts(),
		PeakHeapBytes: p.gov.PeakHeapBytes(),
		Elapsed:       time.Since(p.start),
	}
}

// RenderReport writes the run report in the log style the cmd tools emit:
// one line per stage, then one line per downshift.
func RenderReport(w io.Writer, r *Report) {
	if r == nil {
		return
	}
	for _, s := range r.Stages {
		status := "ok"
		if s.Class != None {
			status = s.Class.String()
		}
		fmt.Fprintf(w, "guard: stage %-14s %-9s %8v  beats=%d", s.Name, status, s.Duration.Round(time.Millisecond), s.Beats)
		if s.Err != "" {
			fmt.Fprintf(w, "  %s", s.Err)
		}
		fmt.Fprintln(w)
	}
	for _, d := range r.Downshifts {
		fmt.Fprintf(w, "guard: %s\n", d)
	}
	if r.PeakHeapBytes > 0 {
		fmt.Fprintf(w, "guard: peak heap %s\n", fmtBytes(r.PeakHeapBytes))
	}
}
