package guard

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestGovernorNilIsInert(t *testing.T) {
	var g *Governor
	g.Start(context.Background())
	g.Stop()
	g.SignalPressure("x")
	g.Record(Downshift{})
	if g.Pressure() != 0 || g.Limit(8) != 8 || g.Workers("s", 8) != 8 {
		t.Fatal("nil governor must not constrain")
	}
	if g.StreamingForced() || g.Downshifts() != nil || g.PeakHeapBytes() != 0 {
		t.Fatal("nil governor must report nothing")
	}
}

func TestGovernorPressureHalvesWorkers(t *testing.T) {
	g := NewGovernor(Budget{})
	if got := g.Workers("sweep", 8); got != 8 {
		t.Fatalf("unpressured workers = %d", got)
	}
	g.SignalPressure("test pressure 1")
	if got := g.Limit(8); got != 4 {
		t.Fatalf("limit at pressure 1 = %d, want 4", got)
	}
	g.SignalPressure("test pressure 2")
	if got := g.Workers("sweep", 8); got != 2 {
		t.Fatalf("workers at pressure 2 = %d, want 2", got)
	}
	if !g.StreamingForced() {
		t.Fatal("streaming must be forced under pressure")
	}
	// Never below one worker.
	for i := 0; i < 10; i++ {
		g.SignalPressure("more")
	}
	if got := g.Limit(8); got != 1 {
		t.Fatalf("limit at max pressure = %d, want 1", got)
	}
	// Escalations and the worker downshift are both on the record.
	ds := g.Downshifts()
	var sawPressure, sawWorkers bool
	for _, d := range ds {
		if d.Resource == "pressure" {
			sawPressure = true
		}
		if d.Stage == "sweep" && d.Resource == "workers" && d.From == 8 && d.To == 2 {
			sawWorkers = true
		}
	}
	if !sawPressure || !sawWorkers {
		t.Fatalf("downshift record incomplete: %+v", ds)
	}
}

func TestGovernorMaxPressureCaps(t *testing.T) {
	g := NewGovernor(Budget{HeapSoftBytes: 1, MaxPressure: 2})
	for i := 0; i < 5; i++ {
		g.SignalPressure("cap test")
	}
	if got := g.Pressure(); got != 2 {
		t.Fatalf("pressure = %d, want capped at 2", got)
	}
}

func TestGovernorSamplesHeapBudget(t *testing.T) {
	// A 1-byte soft limit: the very first sample must breach it.
	g := NewGovernor(Budget{HeapSoftBytes: 1, SampleEvery: 2 * time.Millisecond, MaxPressure: 3})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	g.Start(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for g.Pressure() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sampler never escalated: pressure = %d", g.Pressure())
		}
		time.Sleep(2 * time.Millisecond)
	}
	g.Stop()
	if g.PeakHeapBytes() == 0 {
		t.Fatal("peak heap not recorded")
	}
	ds := g.Downshifts()
	if len(ds) < 3 {
		t.Fatalf("escalations recorded = %d, want >= 3", len(ds))
	}
	if !strings.Contains(ds[0].Reason, "heap") || !strings.Contains(ds[0].Reason, "budget") {
		t.Fatalf("escalation reason %q does not name the budget", ds[0].Reason)
	}
}

func TestDownshiftString(t *testing.T) {
	d := Downshift{Stage: "sweep", Resource: "workers", From: 8, To: 4, Reason: "heap 2.0MiB > budget 1.0MiB", Elapsed: 3 * time.Millisecond}
	s := d.String()
	for _, want := range []string{"sweep", "workers", "8 -> 4", "budget"} {
		if !strings.Contains(s, want) {
			t.Fatalf("downshift line %q missing %q", s, want)
		}
	}
}
