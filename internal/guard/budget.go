package guard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Budget is the resource envelope a governed pipeline runs inside. The zero
// value disables governance entirely.
type Budget struct {
	// HeapSoftBytes is the heap soft limit: when runtime.ReadMemStats
	// reports HeapAlloc above it, the governor escalates its pressure level
	// and consumers step worker counts down. 0 disables memory governance.
	HeapSoftBytes uint64
	// SampleEvery is the heap sampling interval (default 100ms).
	SampleEvery time.Duration
	// MaxPressure caps the pressure level; each level halves permitted
	// worker counts (default 4, i.e. down to 1/16 of requested).
	MaxPressure int
}

func (b *Budget) fill() {
	if b.SampleEvery <= 0 {
		b.SampleEvery = 100 * time.Millisecond
	}
	if b.MaxPressure <= 0 {
		b.MaxPressure = 4
	}
}

// Enabled reports whether the budget governs anything.
func (b Budget) Enabled() bool { return b.HeapSoftBytes > 0 }

// Downshift records one graceful degradation decision: a resource that was
// stepped down instead of letting the pipeline die.
type Downshift struct {
	// Stage names the consumer that degraded ("sweep", "convert",
	// "governor" for pressure escalations).
	Stage string
	// Resource names what was reduced ("workers", "pressure").
	Resource string
	// From and To are the resource's value before and after.
	From, To int
	// Reason explains the trigger (heap sample vs budget).
	Reason string
	// Elapsed is the time since the governor started.
	Elapsed time.Duration
}

// String renders the downshift as one run-report log line.
func (d Downshift) String() string {
	return fmt.Sprintf("downshift %s %s %d -> %d (%s, t=%v)",
		d.Stage, d.Resource, d.From, d.To, d.Reason, d.Elapsed.Round(time.Millisecond))
}

// Governor samples the process against a Budget and publishes a pressure
// level that consumers consult to step parallelism down. All methods are
// safe on a nil *Governor (no governance) and for concurrent use.
type Governor struct {
	budget   Budget
	start    time.Time
	pressure atomic.Int32
	peakHeap atomic.Uint64

	mu         sync.Mutex
	reason     string
	downshifts []Downshift

	stop     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
	done     chan struct{}
}

// NewGovernor builds a governor for the budget; call Start to begin
// sampling. A disabled budget yields a governor that never escalates (but
// still accepts SignalPressure and Record).
func NewGovernor(b Budget) *Governor {
	b.fill()
	return &Governor{
		budget: b,
		start:  time.Now(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start launches the heap sampler; it stops when ctx is done or Stop is
// called. Start is a no-op for a nil governor or a disabled budget.
func (g *Governor) Start(ctx context.Context) {
	if g == nil || !g.budget.Enabled() || !g.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(g.done)
		t := time.NewTicker(g.budget.SampleEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-g.stop:
				return
			case <-t.C:
				g.sample()
			}
		}
	}()
}

// Stop halts the sampler and waits for it to exit.
func (g *Governor) Stop() {
	if g == nil {
		return
	}
	g.stopOnce.Do(func() { close(g.stop) })
	if g.started.Load() {
		<-g.done
	}
}

// sample reads the heap and escalates pressure when it exceeds the soft
// limit. Escalation triggers a GC in the hope of shedding garbage before
// the next sample; the step-down of worker counts is what actually reduces
// the live set.
func (g *Governor) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		peak := g.peakHeap.Load()
		if ms.HeapAlloc <= peak || g.peakHeap.CompareAndSwap(peak, ms.HeapAlloc) {
			break
		}
	}
	if ms.HeapAlloc <= g.budget.HeapSoftBytes {
		return
	}
	reason := fmt.Sprintf("heap %s > budget %s", fmtBytes(ms.HeapAlloc), fmtBytes(g.budget.HeapSoftBytes))
	g.escalate(reason)
	runtime.GC()
}

// SignalPressure escalates the pressure level by one, as a heap sample
// breaching the budget would. It lets callers plumb external pressure
// signals (cgroup events, operator nudges) into the same degradation path.
func (g *Governor) SignalPressure(reason string) {
	if g == nil {
		return
	}
	g.escalate(reason)
}

func (g *Governor) escalate(reason string) {
	for {
		p := g.pressure.Load()
		if int(p) >= g.budget.MaxPressure {
			return
		}
		if g.pressure.CompareAndSwap(p, p+1) {
			g.mu.Lock()
			g.reason = reason
			g.mu.Unlock()
			g.Record(Downshift{
				Stage: "governor", Resource: "pressure",
				From: int(p), To: int(p + 1), Reason: reason,
			})
			return
		}
	}
}

// Pressure returns the current pressure level (0 = unconstrained).
func (g *Governor) Pressure() int {
	if g == nil {
		return 0
	}
	return int(g.pressure.Load())
}

// PressureReason returns the trigger of the latest escalation.
func (g *Governor) PressureReason() string {
	if g == nil {
		return ""
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reason
}

// Limit returns the worker count currently permitted for a requested
// count: halved once per pressure level, never below 1. Pure — use Workers
// to also record the decision.
func (g *Governor) Limit(requested int) int {
	if g == nil || requested <= 1 {
		return requested
	}
	limited := requested >> uint(g.Pressure())
	if limited < 1 {
		limited = 1
	}
	return limited
}

// Workers applies Limit for a named stage and records the downshift when
// the request was reduced.
func (g *Governor) Workers(stage string, requested int) int {
	if g == nil {
		return requested
	}
	limited := g.Limit(requested)
	if limited < requested {
		g.Record(Downshift{
			Stage: stage, Resource: "workers",
			From: requested, To: limited, Reason: g.PressureReason(),
		})
	}
	return limited
}

// StreamingForced reports whether consumers with a choice between a
// materializing and a streaming path must take the streaming one.
func (g *Governor) StreamingForced() bool { return g.Pressure() > 0 }

// Record appends a downshift to the run report.
func (g *Governor) Record(d Downshift) {
	if g == nil {
		return
	}
	if d.Elapsed == 0 {
		d.Elapsed = time.Since(g.start)
	}
	g.mu.Lock()
	g.downshifts = append(g.downshifts, d)
	g.mu.Unlock()
}

// Downshifts returns a copy of every recorded degradation, in order.
func (g *Governor) Downshifts() []Downshift {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Downshift, len(g.downshifts))
	copy(out, g.downshifts)
	return out
}

// PeakHeapBytes returns the largest sampled heap.
func (g *Governor) PeakHeapBytes() uint64 {
	if g == nil {
		return 0
	}
	return g.peakHeap.Load()
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
