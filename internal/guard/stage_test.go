package guard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"graphdse/internal/artifact"
)

func TestRunHealthyStage(t *testing.T) {
	var ran bool
	err := Run(context.Background(), "ok", StageOptions{HeartbeatTimeout: 200 * time.Millisecond}, func(ctx context.Context, hb *Heartbeat) error {
		for i := 0; i < 5; i++ {
			hb.Beat()
		}
		ran = true
		return nil
	})
	if err != nil {
		t.Fatalf("healthy stage failed: %v", err)
	}
	if !ran {
		t.Fatal("stage body never ran")
	}
}

func TestWatchdogCancelsStalledStage(t *testing.T) {
	start := time.Now()
	bodySawCancel := make(chan error, 1)
	err := Run(context.Background(), "stalled", StageOptions{HeartbeatTimeout: 60 * time.Millisecond, Grace: 5 * time.Second},
		func(ctx context.Context, hb *Heartbeat) error {
			// The PR-1 hang analogue: block until cancelled, never beat.
			<-ctx.Done()
			bodySawCancel <- context.Cause(ctx)
			return ctx.Err()
		})
	if err == nil {
		t.Fatal("stalled stage returned nil")
	}
	if got := ClassOf(err); got != Timeout {
		t.Fatalf("class = %v, want Timeout (%v)", got, err)
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("error does not wrap ErrStalled: %v", err)
	}
	var ge *Error
	if !errors.As(err, &ge) || ge.Stage != "stalled" {
		t.Fatalf("error not stage-attributed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("watchdog took %v, want well under the grace period", elapsed)
	}
	select {
	case cause := <-bodySawCancel:
		if !errors.Is(cause, ErrStalled) {
			t.Fatalf("stage ctx cause = %v, want ErrStalled", cause)
		}
	case <-time.After(time.Second):
		t.Fatal("stage body never observed cancellation")
	}
	// The process (and subsequent stages) stays alive.
	if err := Run(context.Background(), "after", StageOptions{}, func(ctx context.Context, hb *Heartbeat) error { return nil }); err != nil {
		t.Fatalf("follow-up stage failed: %v", err)
	}
}

func TestWatchdogSparedByHeartbeats(t *testing.T) {
	err := Run(context.Background(), "beating", StageOptions{HeartbeatTimeout: 80 * time.Millisecond},
		func(ctx context.Context, hb *Heartbeat) error {
			for i := 0; i < 10; i++ {
				time.Sleep(20 * time.Millisecond)
				hb.Beat()
				if ctx.Err() != nil {
					return ctx.Err()
				}
			}
			return nil
		})
	if err != nil {
		t.Fatalf("beating stage killed by watchdog: %v", err)
	}
}

func TestStageDeadline(t *testing.T) {
	err := Run(context.Background(), "slow", StageOptions{Timeout: 50 * time.Millisecond, Grace: 5 * time.Second},
		func(ctx context.Context, hb *Heartbeat) error {
			for ctx.Err() == nil {
				hb.Beat() // heartbeats do not excuse the absolute deadline
				time.Sleep(5 * time.Millisecond)
			}
			return ctx.Err()
		})
	if ClassOf(err) != Timeout {
		t.Fatalf("class = %v, want Timeout (%v)", ClassOf(err), err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap DeadlineExceeded: %v", err)
	}
}

func TestStagePanicCaptured(t *testing.T) {
	err := Run(context.Background(), "crashy", StageOptions{}, func(ctx context.Context, hb *Heartbeat) error {
		panic("injected crash")
	})
	if ClassOf(err) != Fatal {
		t.Fatalf("class = %v, want Fatal", ClassOf(err))
	}
	var pe *PanicError
	if !errors.As(err, &pe) || fmt.Sprint(pe.Value) != "injected crash" {
		t.Fatalf("panic not captured: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack not recorded")
	}
}

func TestStageParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := Run(ctx, "cancelled", StageOptions{}, func(ctx context.Context, hb *Heartbeat) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if ClassOf(err) != Canceled {
		t.Fatalf("class = %v, want Canceled (%v)", ClassOf(err), err)
	}
}

func TestStageAbandonedAfterGrace(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // let the wedged goroutine exit at test end
	start := time.Now()
	err := Run(context.Background(), "wedged", StageOptions{HeartbeatTimeout: 40 * time.Millisecond, Grace: 60 * time.Millisecond},
		func(ctx context.Context, hb *Heartbeat) error {
			<-release // ignores ctx entirely — a truly wedged simulator
			return nil
		})
	if ClassOf(err) != Timeout {
		t.Fatalf("class = %v, want Timeout (%v)", ClassOf(err), err)
	}
	if !errors.Is(err, ErrAbandoned) {
		t.Fatalf("error does not wrap ErrAbandoned: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("abandonment took %v", elapsed)
	}
}

func TestPipelineDeadlineClassifiesTimeout(t *testing.T) {
	p := NewPipeline(PipelineOptions{Deadline: 50 * time.Millisecond, Stage: StageOptions{Grace: 5 * time.Second}})
	ctx, cancel := p.Start(context.Background())
	defer cancel()
	err := p.Run(ctx, "slow", func(ctx context.Context, hb *Heartbeat) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if ClassOf(err) != Timeout {
		t.Fatalf("class = %v, want Timeout (%v)", ClassOf(err), err)
	}
	rep := p.Report()
	if len(rep.Stages) != 1 || rep.Stages[0].Class != Timeout {
		t.Fatalf("report = %+v", rep.Stages)
	}
}

func TestPipelineReportAccumulates(t *testing.T) {
	p := NewPipeline(PipelineOptions{})
	ctx, cancel := p.Start(context.Background())
	defer cancel()
	if err := p.Run(ctx, "one", func(ctx context.Context, hb *Heartbeat) error { hb.Beat(); hb.Beat(); return nil }); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	if err := p.Run(ctx, "two", func(ctx context.Context, hb *Heartbeat) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	rep := p.Report()
	if len(rep.Stages) != 2 {
		t.Fatalf("stages = %d", len(rep.Stages))
	}
	if rep.Stages[0].Beats != 2 || rep.Stages[0].Class != None {
		t.Fatalf("stage one report = %+v", rep.Stages[0])
	}
	if rep.Stages[1].Class != Fatal {
		t.Fatalf("stage two class = %v", rep.Stages[1].Class)
	}
}

func TestClassOfTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, None},
		{ErrTransient, Transient},
		{fmt.Errorf("wrapped: %w", ErrTransient), Transient},
		{context.DeadlineExceeded, Timeout},
		{ErrStalled, Timeout},
		{ErrAbandoned, Timeout},
		{context.Canceled, Canceled},
		{&PanicError{Value: "x"}, Fatal},
		{artifact.ErrCorrupt, Corrupt},
		{fmt.Errorf("trace: %w", artifact.ErrTruncated), Corrupt},
		{errors.New("mystery"), Fatal},
		{&Error{Stage: "s", Class: Corrupt, Err: errors.New("x")}, Corrupt},
	}
	for _, c := range cases {
		if got := ClassOf(c.err); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// Retryable is reserved for Transient alone.
	for _, c := range []Class{None, Timeout, Corrupt, Fatal, Canceled} {
		if c.Retryable() {
			t.Errorf("%v.Retryable() = true", c)
		}
	}
	if !Transient.Retryable() {
		t.Error("Transient must be retryable")
	}
}
