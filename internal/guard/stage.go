package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Heartbeat is the progress API a supervised stage reports through. A stage
// body calls Beat whenever it makes observable progress (a point simulated,
// a batch streamed, a model fitted); the watchdog converts a silent
// heartbeat into a structured timeout. Beat is safe for concurrent use.
type Heartbeat struct {
	last  atomic.Int64 // UnixNano of the most recent beat
	beats atomic.Int64
}

// Beat records progress.
func (h *Heartbeat) Beat() {
	h.last.Store(time.Now().UnixNano())
	h.beats.Add(1)
}

// Beats returns how many times Beat was called.
func (h *Heartbeat) Beats() int64 { return h.beats.Load() }

// sinceLast returns the time since the most recent beat.
func (h *Heartbeat) sinceLast(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, h.last.Load()))
}

// DefaultGrace bounds how long Run waits, after cancelling a stage, for its
// body to unwind before abandoning the goroutine.
const DefaultGrace = 2 * time.Second

// StageOptions supervises one stage. The zero value disables both timers:
// the stage runs under panic capture and parent-context cancellation only.
type StageOptions struct {
	// Timeout is the absolute per-stage deadline (0 = none).
	Timeout time.Duration
	// HeartbeatTimeout cancels the stage when its heartbeat is silent for
	// this long (0 = no watchdog). It must exceed the stage's longest gap
	// between progress marks (e.g. one design-point simulation).
	HeartbeatTimeout time.Duration
	// Grace bounds how long to wait for the body to honor its cancellation
	// before the goroutine is abandoned and the timeout returned anyway
	// (default DefaultGrace).
	Grace time.Duration
}

// StageFunc is a supervised stage body. It must honor ctx cancellation and
// should call hb.Beat on every unit of progress.
type StageFunc func(ctx context.Context, hb *Heartbeat) error

// Run executes one stage supervised: the body runs in its own goroutine
// with panic capture, racing a heartbeat watchdog and an absolute deadline.
// On watchdog or deadline expiry the stage is cancelled via its context —
// never the process — and the error comes back as *Error with Class
// Timeout. Panics surface as *Error{Class: Fatal} wrapping *PanicError.
// Parent-context cancellation classifies from the parent's cause (Canceled
// for intent, Timeout for a pipeline deadline).
func Run(ctx context.Context, name string, opts StageOptions, fn StageFunc) error {
	hb := &Heartbeat{}
	hb.last.Store(time.Now().UnixNano()) // starting counts as progress
	return run(ctx, name, opts, hb, fn)
}

func run(ctx context.Context, name string, opts StageOptions, hb *Heartbeat, fn StageFunc) error {
	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		done <- fn(sctx, hb)
	}()

	var watch <-chan time.Time
	if opts.HeartbeatTimeout > 0 {
		poll := opts.HeartbeatTimeout / 4
		if poll < time.Millisecond {
			poll = time.Millisecond
		}
		t := time.NewTicker(poll)
		defer t.Stop()
		watch = t.C
	}
	var deadline <-chan time.Time
	start := time.Now()
	if opts.Timeout > 0 {
		t := time.NewTimer(opts.Timeout)
		defer t.Stop()
		deadline = t.C
	}
	grace := opts.Grace
	if grace <= 0 {
		grace = DefaultGrace
	}

	// expired, once set, is the structured timeout the stage will report
	// even if the body later unwinds with a plain cancellation error.
	var expired error
	var graceC <-chan time.Time
	expire := func(cause error) {
		if expired != nil {
			return
		}
		expired = cause
		cancel(cause)
		t := time.NewTimer(grace)
		// The timer leaks its channel if the body returns first; Stop via
		// defer is not possible inside the loop, so keep it simple — the
		// timer fires once and is collected.
		graceC = t.C
	}

	for {
		select {
		case err := <-done:
			return wrapStage(name, err, expired)
		case now := <-watch:
			if since := hb.sinceLast(now); since >= opts.HeartbeatTimeout {
				expire(fmt.Errorf("%w: no progress for %v (heartbeat deadline %v, %d beats)",
					ErrStalled, since.Round(time.Millisecond), opts.HeartbeatTimeout, hb.Beats()))
			}
		case <-deadline:
			expire(fmt.Errorf("%w: stage deadline %v exceeded", context.DeadlineExceeded, opts.Timeout))
		case <-ctx.Done():
			// Parent cancelled: propagate the cause and give the body the
			// same grace to unwind. A pipeline-deadline cause keeps its
			// Timeout classification; operator intent stays Canceled.
			cause := context.Cause(ctx)
			if ClassOf(cause) == Timeout {
				expire(cause)
			} else if expired == nil {
				cancel(cause)
				t := time.NewTimer(grace)
				graceC = t.C
			}
			//lint:ignore ctxpropagate the parent ctx already fired; swapping in Background keeps the select from re-entering this case while the grace timer drains
			ctx = context.Background() // don't re-enter this case
		case <-graceC:
			cause := expired
			if cause == nil {
				cause = context.Cause(sctx)
			}
			err := fmt.Errorf("%w after %v: %w", ErrAbandoned, time.Since(start).Round(time.Millisecond), cause)
			return &Error{Stage: name, Class: ClassOf(err), Err: err}
		}
	}
}

// wrapStage folds the body's outcome and any watchdog expiry into the
// stage's structured error.
func wrapStage(name string, err, expired error) error {
	if expired != nil {
		// The watchdog fired: even if the body unwound cleanly afterwards,
		// its output may be partial — report the structured timeout.
		if err != nil && !errors.Is(err, context.Canceled) {
			return &Error{Stage: name, Class: Timeout, Err: errors.Join(expired, err)}
		}
		return &Error{Stage: name, Class: Timeout, Err: expired}
	}
	if err == nil {
		return nil
	}
	var ge *Error
	if errors.As(err, &ge) {
		return err // already classified by a nested stage
	}
	return &Error{Stage: name, Class: ClassOf(err), Err: err}
}
