package guard

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"graphdse/internal/artifact"
)

// forceHelperEnv gates the subprocess re-exec of
// TestSignalContextSecondSignalForceExits.
const forceHelperEnv = "GRAPHDSE_GUARD_FORCE_HELPER"

// forceHelperBody simulates a daemon whose drain is too slow for the
// operator: the first signal cancels the context and starts a long "drain";
// the second must pre-empt it through the force handler with the documented
// exit code. Never returns.
func forceHelperBody() {
	ctx, stop := SignalContext(context.Background(), func(os.Signal) {
		os.Exit(artifact.ExitForced)
	})
	defer stop()
	fmt.Println("ready")
	<-ctx.Done()
	fmt.Println("draining")
	// A drain that would outlive the test: only the force path ends us.
	time.Sleep(time.Minute)
	os.Exit(0)
}

// TestSignalContextSecondSignalForceExits is the process-level contract
// behind cmd/dse and cmd/dsed: first SIGTERM drains, second SIGTERM exits
// immediately with artifact.ExitForced.
func TestSignalContextSecondSignalForceExits(t *testing.T) {
	if os.Getenv(forceHelperEnv) != "" {
		forceHelperBody() // never returns
	}
	if testing.Short() {
		t.Skip("subprocess signal test skipped in -short")
	}

	cmd := exec.Command(os.Args[0], "-test.run=TestSignalContextSecondSignalForceExits$")
	cmd.Env = append(os.Environ(), forceHelperEnv+"=1")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(out)
	waitLine := func(want string) {
		t.Helper()
		for sc.Scan() {
			if sc.Text() == want {
				return
			}
		}
		t.Fatalf("helper exited before printing %q", want)
	}
	waitLine("ready")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The helper acknowledges the cancel before we escalate, so the two
	// signals cannot coalesce.
	waitLine("draining")
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	werr := cmd.Wait()
	ee, ok := werr.(*exec.ExitError)
	if !ok {
		t.Fatalf("helper exit: %v, want exit code %d", werr, artifact.ExitForced)
	}
	if code := ee.ExitCode(); code != artifact.ExitForced {
		t.Fatalf("second signal exited %d, want artifact.ExitForced (%d)", code, artifact.ExitForced)
	}
}
