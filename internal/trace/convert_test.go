package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func gem5Corpus(t *testing.T, n int, seed int64) ([]byte, []Event) {
	t.Helper()
	events := randomEvents(n, seed)
	var buf bytes.Buffer
	if err := WriteGem5(&buf, events, 500); err != nil {
		t.Fatal(err)
	}
	// Interleave compute lines the converter must skip, as in a real gem5
	// trace where most lines are not memory events.
	var mixed bytes.Buffer
	lines := bytes.Split(buf.Bytes(), []byte("\n"))
	for _, l := range lines {
		if len(l) == 0 {
			continue
		}
		mixed.Write(l)
		mixed.WriteByte('\n')
		mixed.WriteString("0: system.cpu.fetch: inst 0x400\n")
	}
	return mixed.Bytes(), events
}

func TestConvertSequential(t *testing.T) {
	input, events := gem5Corpus(t, 300, 1)
	var out bytes.Buffer
	st, err := ConvertSequential(bytes.NewReader(input), &out, 500)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsOut != int64(len(events)) {
		t.Fatalf("EventsOut = %d, want %d", st.EventsOut, len(events))
	}
	if st.LinesIn != int64(2*len(events)) {
		t.Fatalf("LinesIn = %d, want %d", st.LinesIn, 2*len(events))
	}
	got, err := ReadNVMain(&out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got[i], events[i])
		}
	}
}

func TestConvertParallelMatchesSequential(t *testing.T) {
	input, _ := gem5Corpus(t, 1000, 2)
	var seq, par bytes.Buffer
	if _, err := ConvertSequential(bytes.NewReader(input), &seq, 500); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		par.Reset()
		st, err := ConvertParallel(input, &par, 500, workers, 4096)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Fatalf("workers=%d: parallel output differs from sequential", workers)
		}
		if st.Chunks < 2 {
			t.Fatalf("workers=%d: expected multiple chunks, got %d", workers, st.Chunks)
		}
	}
}

func TestConvertParallelSingleChunk(t *testing.T) {
	input, events := gem5Corpus(t, 10, 3)
	var out bytes.Buffer
	st, err := ConvertParallel(input, &out, 500, 2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Chunks != 1 {
		t.Fatalf("Chunks = %d", st.Chunks)
	}
	got, err := ReadNVMain(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("events = %d", len(got))
	}
}

func TestConvertParallelEmptyInput(t *testing.T) {
	var out bytes.Buffer
	st, err := ConvertParallel(nil, &out, 500, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsOut != 0 || out.Len() != 0 {
		t.Fatalf("empty input produced output: %+v", st)
	}
}

func TestConvertParallelPropagatesErrors(t *testing.T) {
	input := []byte("12: system.cpu.dcache: ReadReq addr=0xZZ size=8\n")
	var out bytes.Buffer
	if _, err := ConvertParallel(input, &out, 1, 2, 0); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestConvertNoTrailingNewline(t *testing.T) {
	input := []byte("100: system.cpu.dcache: ReadReq addr=0x40 size=8 thread=1")
	var out bytes.Buffer
	st, err := ConvertParallel(input, &out, 1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsOut != 1 {
		t.Fatalf("EventsOut = %d", st.EventsOut)
	}
}

func TestConvertFileParallel(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "gem5.trc")
	outPath := filepath.Join(dir, "nvmain.trc")
	input, events := gem5Corpus(t, 100, 4)
	if err := os.WriteFile(inPath, input, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ConvertFileParallel(inPath, outPath, 500, 4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsOut != int64(len(events)) {
		t.Fatalf("EventsOut = %d", st.EventsOut)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadNVMain(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip lost events: %d", len(got))
	}
}

func TestConvertFileParallelMissingInput(t *testing.T) {
	if _, err := ConvertFileParallel("/nonexistent/in", "/nonexistent/out", 1, 1, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestSplitChunksAlignment(t *testing.T) {
	input := []byte("aaa\nbbb\nccc\nddd")
	chunks := splitChunks(input, 5)
	var total int
	for _, c := range chunks {
		total += len(c)
		if c[len(c)-1] != '\n' && !bytes.HasSuffix(input, c) {
			t.Fatalf("chunk %q does not end at line boundary", c)
		}
	}
	if total != len(input) {
		t.Fatalf("chunks cover %d of %d bytes", total, len(input))
	}
}

func TestUpperHex(t *testing.T) {
	if got := string(upperHex(nil, 0)); got != "0" {
		t.Fatalf("upperHex(0) = %q", got)
	}
	if got := string(upperHex(nil, 0xDEADBEEF)); got != "DEADBEEF" {
		t.Fatalf("upperHex = %q", got)
	}
}

// Property: parallel conversion output is byte-identical to sequential for
// arbitrary event streams, any worker/chunk configuration.
func TestPropConvertEquivalence(t *testing.T) {
	f := func(seed int64, workers8, chunkKB uint8) bool {
		events := randomEvents(50+int(seed%400+400)%400, seed)
		var gem5 bytes.Buffer
		if WriteGem5(&gem5, events, 500) != nil {
			return false
		}
		input := gem5.Bytes()
		var seq, par bytes.Buffer
		if _, err := ConvertSequential(bytes.NewReader(input), &seq, 500); err != nil {
			return false
		}
		workers := int(workers8)%8 + 1
		chunk := (int(chunkKB)%16 + 1) * 256
		if _, err := ConvertParallel(input, &par, 500, workers, chunk); err != nil {
			return false
		}
		return bytes.Equal(seq.Bytes(), par.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
