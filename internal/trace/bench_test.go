package trace

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

func benchEvents(b *testing.B, n int) []Event {
	b.Helper()
	return randomEvents(n, 42)
}

func BenchmarkWriteNVMain(b *testing.B) {
	events := benchEvents(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteNVMain(io.Discard, events); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadNVMain(b *testing.B) {
	events := benchEvents(b, 50000)
	var buf bytes.Buffer
	if err := WriteNVMain(&buf, events); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadNVMain(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	events := benchEvents(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteBinary(io.Discard, events); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	events := benchEvents(b, 50000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, events); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteCompressed(b *testing.B) {
	events := benchEvents(b, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteCompressed(io.Discard, events); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCompressed(b *testing.B) {
	events := benchEvents(b, 50000)
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, events); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCompressed(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerge compares the heap-based k-way Merge against the old
// O(k·n) linear head scan (mergeLinearReference, kept in source_test.go) at
// increasing input counts. The heap wins from k≥8 and the gap widens with k.
func BenchmarkMerge(b *testing.B) {
	for _, k := range []int{2, 8, 16, 32} {
		traces := make([][]Event, k)
		for i := range traces {
			traces[i] = randomEvents(20000/k, int64(i+1))
		}
		b.Run(fmt.Sprintf("heap/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Merge(1<<20, traces...)
			}
		})
		b.Run(fmt.Sprintf("linear/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mergeLinearReference(1<<20, traces...)
			}
		})
	}
}

// BenchmarkConvertStream measures the streaming converter end to end; unlike
// ConvertParallel it never holds the whole input.
func BenchmarkConvertStream(b *testing.B) {
	events := benchEvents(b, 30000)
	var gem5 bytes.Buffer
	if err := WriteGem5(&gem5, events, 500); err != nil {
		b.Fatal(err)
	}
	input := gem5.Bytes()
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConvertStream(bytes.NewReader(input), io.Discard, 500, 4, 64*1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvertWorkerScaling(b *testing.B) {
	events := benchEvents(b, 30000)
	var gem5 bytes.Buffer
	if err := WriteGem5(&gem5, events, 500); err != nil {
		b.Fatal(err)
	}
	input := gem5.Bytes()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(string(rune('0'+workers))+"w", func(b *testing.B) {
			b.SetBytes(int64(len(input)))
			for i := 0; i < b.N; i++ {
				if _, err := ConvertParallel(input, io.Discard, 500, workers, 64*1024); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
