package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

// drainN drains src with the given batch size, exercising batch-boundary
// handling that Collect (DefaultBatch) would skip over.
func drainN(t *testing.T, src Source, batchSize int) []Event {
	t.Helper()
	var out []Event
	batch := make([]Event, batchSize)
	for {
		n, err := src.Next(batch)
		if n > 0 && err != nil {
			t.Fatalf("Next returned n=%d with err=%v", n, err)
		}
		out = append(out, batch[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSliceSourceRoundTrip(t *testing.T) {
	events := randomEvents(1000, 1)
	for _, bs := range []int{1, 7, 256, 4096} {
		got := drainN(t, NewSliceSource(events), bs)
		if len(got) != len(events) {
			t.Fatalf("batch=%d: %d events, want %d", bs, len(got), len(events))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("batch=%d: event %d differs", bs, i)
			}
		}
	}
}

func TestSliceSourceEmpty(t *testing.T) {
	n, err := NewSliceSource(nil).Next(make([]Event, 8))
	if n != 0 || err != io.EOF {
		t.Fatalf("Next on empty = %d, %v", n, err)
	}
}

func TestCollectMatchesSlice(t *testing.T) {
	events := randomEvents(9000, 2) // > 2×DefaultBatch
	got, err := Collect(NewSliceSource(events))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("Collect lost events: %d of %d", len(got), len(events))
	}
}

func TestCopyToSliceSink(t *testing.T) {
	events := randomEvents(500, 3)
	var sink SliceSink
	n, err := Copy(&sink, NewSliceSource(events))
	if err != nil || n != int64(len(events)) {
		t.Fatalf("Copy = %d, %v", n, err)
	}
	for i := range sink.Events {
		if sink.Events[i] != events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// Every (writer, streaming reader) pair must round-trip exactly and agree
// with the slice readers.
func TestStreamingReadersMatchSliceReaders(t *testing.T) {
	events := randomEvents(5000, 4)

	t.Run("nvmain", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteNVMain(&buf, events); err != nil {
			t.Fatal(err)
		}
		got := drainN(t, NewNVMainSource(bytes.NewReader(buf.Bytes())), 777)
		want, err := ReadNVMain(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		compareEvents(t, got, want)
	})

	t.Run("gem5", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteGem5(&buf, events, 500); err != nil {
			t.Fatal(err)
		}
		got := drainN(t, NewGem5Source(bytes.NewReader(buf.Bytes()), 500), 777)
		want, err := ReadGem5(bytes.NewReader(buf.Bytes()), 500)
		if err != nil {
			t.Fatal(err)
		}
		compareEvents(t, got, want)
	})

	t.Run("binary", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, events); err != nil {
			t.Fatal(err)
		}
		got := drainN(t, NewBinarySource(bytes.NewReader(buf.Bytes())), 777)
		want, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		compareEvents(t, got, want)
	})
}

func compareEvents(t *testing.T, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// Streaming sinks must produce output byte-identical to the slice writers,
// regardless of how emissions are batched.
func TestSinksMatchSliceWriters(t *testing.T) {
	events := randomEvents(3000, 5)
	emitChunked := func(s Sink, chunk int) error {
		for i := 0; i < len(events); i += chunk {
			end := i + chunk
			if end > len(events) {
				end = len(events)
			}
			if err := s.Emit(events[i:end]); err != nil {
				return err
			}
		}
		return nil
	}

	var want, got bytes.Buffer
	if err := WriteNVMain(&want, events); err != nil {
		t.Fatal(err)
	}
	ns := NewNVMainSink(&got)
	if err := emitChunked(ns, 123); err != nil {
		t.Fatal(err)
	}
	if err := ns.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("NVMainSink output differs from WriteNVMain")
	}

	want.Reset()
	got.Reset()
	if err := WriteGem5(&want, events, 500); err != nil {
		t.Fatal(err)
	}
	gs := NewGem5Sink(&got, 500)
	if err := emitChunked(gs, 123); err != nil {
		t.Fatal(err)
	}
	if err := gs.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("Gem5Sink output differs from WriteGem5")
	}

	want.Reset()
	got.Reset()
	if err := WriteBinary(&want, events); err != nil {
		t.Fatal(err)
	}
	bs := NewBinarySink(&got)
	if err := emitChunked(bs, 123); err != nil {
		t.Fatal(err)
	}
	if err := bs.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("BinarySink output differs from WriteBinary")
	}
}

func TestBinarySinkEmptyFlushWritesHeader(t *testing.T) {
	var buf bytes.Buffer
	s := NewBinarySink(&buf)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty sink produced %d events", len(got))
	}
}

func TestSourcesRejectMalformedInput(t *testing.T) {
	src := NewNVMainSource(bytes.NewReader([]byte("10 R 0x40 0\nbogus line\n")))
	batch := make([]Event, 8)
	n, err := src.Next(batch)
	if n != 1 || err != nil {
		t.Fatalf("first Next = %d, %v; want the valid prefix", n, err)
	}
	if _, err := src.Next(batch); !errors.Is(err, ErrFormat) {
		t.Fatalf("second Next err = %v, want ErrFormat", err)
	}

	if _, err := NewBinarySource(bytes.NewReader([]byte("not a trace"))).Next(batch); !errors.Is(err, ErrFormat) {
		t.Fatalf("binary bad magic err = %v", err)
	}
}

// mergeLinearReference is the pre-refactor O(k·n) Merge, kept as the oracle
// the heap-based implementation must match byte-for-byte.
func mergeLinearReference(addrStride uint64, traces ...[]Event) []Event {
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	out := make([]Event, 0, total)
	idx := make([]int, len(traces))
	for {
		best := -1
		var bestCycle uint64
		for ti, tr := range traces {
			if idx[ti] >= len(tr) {
				continue
			}
			c := tr[idx[ti]].Cycle
			if best < 0 || c < bestCycle {
				best, bestCycle = ti, c
			}
		}
		if best < 0 {
			return out
		}
		e := traces[best][idx[best]]
		e.Addr += uint64(best) * addrStride
		e.Thread = uint8(best)
		out = append(out, e)
		idx[best]++
	}
}

func TestMergeMatchesLinearReference(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8, 16} {
		traces := make([][]Event, k)
		for i := range traces {
			traces[i] = randomEvents(200+37*i, int64(i+1))
		}
		want := mergeLinearReference(1<<20, traces...)
		got := Merge(1<<20, traces...)
		compareEvents(t, got, want)
	}
}

func TestMergeTieBreaksByInputOrder(t *testing.T) {
	a := []Event{{Cycle: 5, Op: Read, Addr: 1}, {Cycle: 5, Op: Read, Addr: 2}}
	b := []Event{{Cycle: 5, Op: Write, Addr: 3}}
	c := []Event{{Cycle: 5, Op: Read, Addr: 4}}
	got := Merge(0, a, b, c)
	want := mergeLinearReference(0, a, b, c)
	compareEvents(t, got, want)
	// All cycle-5 events from input 0 must precede input 1's, etc.
	if got[0].Thread != 0 || got[1].Thread != 0 || got[2].Thread != 1 || got[3].Thread != 2 {
		t.Fatalf("tie-break order broken: %+v", got)
	}
}

func TestPropMergeEquivalence(t *testing.T) {
	f := func(seedA, seedB, seedC int64, stride16 uint16) bool {
		traces := [][]Event{
			randomEvents(int(seedA%150+150)%150+1, seedA),
			randomEvents(int(seedB%150+150)%150+1, seedB),
			randomEvents(int(seedC%150+150)%150+1, seedC),
		}
		stride := uint64(stride16) << 10
		want := mergeLinearReference(stride, traces...)
		got := Merge(stride, traces...)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSourcesStreamsEmptyInputs(t *testing.T) {
	a := randomEvents(10, 6)
	got, err := Collect(MergeSources(0, NewSliceSource(nil), NewSliceSource(a), NewSliceSource(nil)))
	if err != nil {
		t.Fatal(err)
	}
	want := mergeLinearReference(0, nil, a, nil)
	compareEvents(t, got, want)
}

func TestMergeSourcesPropagatesError(t *testing.T) {
	bad := NewNVMainSource(bytes.NewReader([]byte("garbage\n")))
	good := NewSliceSource(randomEvents(5, 7))
	if _, err := Collect(MergeSources(0, good, bad)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestSummarizeSourceMatchesSummarize(t *testing.T) {
	events := randomEvents(6000, 8)
	want := Summarize(events)
	got, err := SummarizeSource(NewSliceSource(events))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("SummarizeSource = %+v, want %+v", got, want)
	}
}

func TestConvertStreamMatchesSequential(t *testing.T) {
	input, _ := gem5Corpus(t, 1500, 11)
	var seq bytes.Buffer
	if _, err := ConvertSequential(bytes.NewReader(input), &seq, 500); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{512, 4096, 1 << 20} {
			var out bytes.Buffer
			st, err := ConvertStream(bytes.NewReader(input), &out, 500, workers, chunk)
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			if !bytes.Equal(seq.Bytes(), out.Bytes()) {
				t.Fatalf("workers=%d chunk=%d: streaming output differs from sequential", workers, chunk)
			}
			if st.Workers != workers {
				t.Fatalf("Workers = %d", st.Workers)
			}
		}
	}
}

// onePassReader fails the test if anything tries to rewind or re-read it,
// proving the converter consumes its input as a forward-only stream.
type onePassReader struct {
	r io.Reader
}

func (o *onePassReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func TestConvertStreamForwardOnly(t *testing.T) {
	input, events := gem5Corpus(t, 800, 12)
	var out bytes.Buffer
	st, err := ConvertStream(&onePassReader{bytes.NewReader(input)}, &out, 500, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsOut != int64(len(events)) {
		t.Fatalf("EventsOut = %d, want %d", st.EventsOut, len(events))
	}
	got, err := ReadNVMain(&out)
	if err != nil {
		t.Fatal(err)
	}
	compareEvents(t, got, events)
}

func TestConvertStreamEmptyInput(t *testing.T) {
	var out bytes.Buffer
	st, err := ConvertStream(bytes.NewReader(nil), &out, 500, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsOut != 0 || out.Len() != 0 {
		t.Fatalf("empty input produced output: %+v", st)
	}
}

func TestConvertStreamPropagatesParseError(t *testing.T) {
	input := []byte("12: system.cpu.dcache: ReadReq addr=0xZZ size=8\n")
	var out bytes.Buffer
	if _, err := ConvertStream(bytes.NewReader(input), &out, 1, 2, 16); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestConvertStreamNoTrailingNewline(t *testing.T) {
	input := []byte("100: system.cpu.dcache: ReadReq addr=0x40 size=8 thread=1")
	var out bytes.Buffer
	st, err := ConvertStream(bytes.NewReader(input), &out, 1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsOut != 1 {
		t.Fatalf("EventsOut = %d", st.EventsOut)
	}
}
