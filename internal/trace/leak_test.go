package trace

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// waitGoroutinesSettle fails the test if the goroutine count does not return
// to the baseline within a short settle window. Worker pools that outlive
// their conversion are exactly the kind of slow leak a long sweep cannot
// afford.
func waitGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d alive, baseline %d\n%s", n, base, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestConvertStreamNoGoroutineLeak(t *testing.T) {
	input, _ := gem5Corpus(t, 400, 41)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		var out bytes.Buffer
		_, err := ConvertStreamOpts(bytes.NewReader(input), &out, ConvertOptions{
			TicksPerCycle: 500, Workers: 4, ChunkSize: 128, Text: TextOptions{Strict: true},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutinesSettle(t, base)
}

// TestConvertStreamErrorPathNoGoroutineLeak drives the strict-mode failure
// path: the writer must drain the remaining jobs so the reader and worker
// goroutines exit even though conversion aborted.
func TestConvertStreamErrorPathNoGoroutineLeak(t *testing.T) {
	good, _ := gem5Corpus(t, 400, 42)
	// A malformed memory line early in the stream fails strict conversion
	// while later chunks are still in flight.
	input := append([]byte("12: system.cpu.dcache: ReadReq addr=0xZZ size=8\n"), good...)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		var out bytes.Buffer
		_, err := ConvertStreamOpts(bytes.NewReader(input), &out, ConvertOptions{
			TicksPerCycle: 500, Workers: 4, ChunkSize: 128, Text: TextOptions{Strict: true},
		})
		if err == nil {
			t.Fatal("expected strict-mode parse error")
		}
	}
	waitGoroutinesSettle(t, base)
}

func TestConvertParallelNoGoroutineLeak(t *testing.T) {
	input, _ := gem5Corpus(t, 400, 43)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		var out bytes.Buffer
		if _, err := ConvertParallel(input, &out, 500, 4, 256); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutinesSettle(t, base)
}
