package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"graphdse/internal/artifact"
)

func testEvents(n int) []Event {
	events := make([]Event, n)
	for i := range events {
		op := Read
		if i%3 == 0 {
			op = Write
		}
		events[i] = Event{
			Cycle:  uint64(i * 7),
			Op:     op,
			Addr:   0x4000 + uint64((i*64)%8192),
			Thread: uint8(i % 4),
		}
	}
	return events
}

func eventsEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- binary format ---

func TestBinaryV2RoundTripAndV1BackCompat(t *testing.T) {
	events := testEvents(40000) // spans multiple v2 blocks
	var v2 bytes.Buffer
	if err := WriteBinary(&v2, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v2.Bytes(), artifact.Magic[:]) {
		t.Fatal("WriteBinary did not emit the v2 container magic")
	}
	got, err := ReadBinary(bytes.NewReader(v2.Bytes()))
	if err != nil || !eventsEqual(got, events) {
		t.Fatalf("v2 round trip failed: n=%d err=%v", len(got), err)
	}

	var v1 bytes.Buffer
	if err := WriteBinaryV1(&v1, events); err != nil {
		t.Fatal(err)
	}
	got, err = ReadBinary(bytes.NewReader(v1.Bytes()))
	if err != nil || !eventsEqual(got, events) {
		t.Fatalf("v1 back-compat read failed: n=%d err=%v", len(got), err)
	}
}

// TestBinaryV2BitFlipNamesBlock is the acceptance criterion: a single
// flipped bit in a v2 trace must be rejected with a checksum error that
// names the damaged block.
func TestBinaryV2BitFlipNamesBlock(t *testing.T) {
	events := testEvents(binaryBlockRecords + 100) // two blocks
	var buf bytes.Buffer
	if err := WriteBinary(&buf, events); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit inside the second block's payload.
	off := len(data) - 40 // within block 1's payload, before the trailer
	data[off] ^= 0x04
	_, err := ReadBinary(bytes.NewReader(data))
	if err == nil || !errors.Is(err, artifact.ErrCorrupt) {
		t.Fatalf("flipped bit not detected as corruption: %v", err)
	}
	if !strings.Contains(err.Error(), "block 1") {
		t.Fatalf("error does not name the damaged block: %v", err)
	}

	// Salvage must keep exactly the first block.
	got, rep, serr := ReadBinarySalvage(bytes.NewReader(data))
	if serr != nil {
		t.Fatalf("salvage errored on readable header: %v", serr)
	}
	if len(got) != binaryBlockRecords || !eventsEqual(got, events[:binaryBlockRecords]) {
		t.Fatalf("salvage kept %d events, want %d", len(got), binaryBlockRecords)
	}
	if !rep.Corrupt || rep.RecordsKept != binaryBlockRecords || rep.BlocksKept != 1 {
		t.Fatalf("inaccurate salvage report: %+v", rep)
	}
}

// TestBinaryV2TruncationMatrix cuts a small v2 trace at a range of lengths:
// every cut must be detected, and salvage must return only verified events.
func TestBinaryV2TruncationMatrix(t *testing.T) {
	events := testEvents(100)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, events); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", cut, len(data))
		}
		got, rep, _ := ReadBinarySalvage(bytes.NewReader(data[:cut]))
		if len(got) > 0 && !eventsEqual(got, events[:len(got)]) {
			t.Fatalf("cut %d: salvage returned wrong events", cut)
		}
		if rep != nil && uint64(len(got)) != rep.RecordsKept {
			t.Fatalf("cut %d: report says %d kept, got %d", cut, rep.RecordsKept, len(got))
		}
	}
}

func TestBinaryV1TruncationSalvage(t *testing.T) {
	events := testEvents(50)
	var buf bytes.Buffer
	if err := WriteBinaryV1(&buf, events); err != nil {
		t.Fatal(err)
	}
	// Cut mid-record: strict read fails, salvage keeps the whole records.
	cut := 8 + 20*binaryRecordSize + 5
	data := buf.Bytes()[:cut]
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("torn v1 record went undetected")
	}
	got, rep, err := ReadBinarySalvage(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("salvage errored: %v", err)
	}
	if len(got) != 20 || !eventsEqual(got, events[:20]) {
		t.Fatalf("v1 salvage kept %d events, want 20", len(got))
	}
	if !rep.Truncated || rep.RecordsKept != 20 || rep.Format != "TRACEBIN/v1" {
		t.Fatalf("inaccurate v1 salvage report: %+v", rep)
	}
}

func TestBinaryWrongMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("WRONG!!!magic and then some bytes"))
	if err == nil || !errors.Is(err, ErrFormat) {
		t.Fatalf("wrong magic not rejected: %v", err)
	}
	_, rep, serr := ReadBinarySalvage(strings.NewReader("WRONG!!!magic"))
	if serr == nil {
		t.Fatal("salvage must propagate an unusable header")
	}
	if rep == nil || rep.RecordsKept != 0 {
		t.Fatalf("salvage report on bad magic: %+v", rep)
	}
}

func TestBinaryFutureVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	bw, err := artifact.NewBlockWriter(&buf, BinaryFormatTag, BinaryFormatVersion+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "newer than supported") {
		t.Fatalf("future version not rejected: %v", err)
	}
}

// --- compressed format ---

func TestCompressedV2RoundTripAndV1BackCompat(t *testing.T) {
	events := testEvents(20000) // spans multiple compressed blocks
	var v2 bytes.Buffer
	if err := WriteCompressed(&v2, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v2.Bytes(), artifact.Magic[:]) {
		t.Fatal("WriteCompressed did not emit the v2 container magic")
	}
	got, err := ReadCompressed(bytes.NewReader(v2.Bytes()))
	if err != nil || !eventsEqual(got, events) {
		t.Fatalf("compressed v2 round trip failed: n=%d err=%v", len(got), err)
	}

	var v1 bytes.Buffer
	if err := WriteCompressedV1(&v1, events); err != nil {
		t.Fatal(err)
	}
	got, err = ReadCompressed(bytes.NewReader(v1.Bytes()))
	if err != nil || !eventsEqual(got, events) {
		t.Fatalf("compressed v1 back-compat failed: n=%d err=%v", len(got), err)
	}
}

func TestCompressedV2BitFlipSalvagesBlockPrefix(t *testing.T) {
	events := testEvents(compressedBlockRecords + 500) // two blocks
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, events); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-30] ^= 0x10 // inside block 1's payload
	if _, err := ReadCompressed(bytes.NewReader(data)); err == nil {
		t.Fatal("flipped bit in compressed v2 went undetected")
	}
	got, rep, err := ReadCompressedSalvage(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("salvage errored: %v", err)
	}
	// Per-block delta reset: the first block must decode byte-exact even
	// though the damage sits downstream.
	if len(got) != compressedBlockRecords || !eventsEqual(got, events[:compressedBlockRecords]) {
		t.Fatalf("salvage kept %d events, want %d", len(got), compressedBlockRecords)
	}
	if rep.RecordsKept != compressedBlockRecords || !rep.Corrupt {
		t.Fatalf("inaccurate salvage report: %+v", rep)
	}
}

func TestCompressedV2TruncationMatrix(t *testing.T) {
	events := testEvents(300)
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, events); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := ReadCompressed(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation to %d/%d bytes went undetected", cut, len(data))
		}
	}
}

// TestCompressedV1AllocationBomb feeds a v1 header whose count varint claims
// an enormous event total backed by almost no data: the reader must fail
// with ErrFormat without allocating anywhere near the claimed size.
func TestCompressedV1AllocationBomb(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(compressedMagic[:])
	// count = 2^40 events (would be ~26 TiB of []Event)
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80})
	buf.WriteByte(0x02)
	buf.Write([]byte{1, 2, 3}) // one token event
	_, err := ReadCompressed(bytes.NewReader(buf.Bytes()))
	if err == nil || !errors.Is(err, ErrFormat) {
		t.Fatalf("allocation bomb not rejected: %v", err)
	}

	// A merely-large-but-plausible count with a tiny body must also fail fast
	// (truncation detected) with allocation proportional to the body.
	var buf2 bytes.Buffer
	buf2.Write(compressedMagic[:])
	buf2.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x04}) // count = 2^30
	buf2.Write([]byte{2, 2, 1})                      // one event, then EOF
	_, err = ReadCompressed(bytes.NewReader(buf2.Bytes()))
	if err == nil || !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated large-count v1 not rejected: %v", err)
	}
	got, rep, serr := ReadCompressedSalvage(bytes.NewReader(buf2.Bytes()))
	if serr != nil || len(got) != 1 || !rep.Truncated {
		t.Fatalf("v1 salvage of truncated stream: n=%d rep=%+v err=%v", len(got), rep, serr)
	}
}

// --- permissive text parsing ---

func TestNVMainPermissiveParsing(t *testing.T) {
	input := "100 R 0x400 0\ngarbage line\n200 W 0x440 1\n300 Z 0x480 0\n400 R 0x4C0 2\n"

	// Strict: first malformed line fails the read.
	if _, err := ReadNVMain(strings.NewReader(input)); err == nil {
		t.Fatal("strict read accepted malformed input")
	}

	// Permissive: malformed lines dropped and reported.
	events, rep, err := ReadNVMainOpts(strings.NewReader(input), TextOptions{})
	if err != nil {
		t.Fatalf("permissive read failed: %v", err)
	}
	if len(events) != 3 || rep.BadLines != 2 || rep.Lines != 5 || rep.Events != 3 {
		t.Fatalf("permissive accounting wrong: n=%d rep=%+v", len(events), rep)
	}
	if len(rep.Sample) != 2 || rep.Sample[0].Line != 2 || rep.Sample[1].Line != 4 {
		t.Fatalf("bad-line sample wrong: %+v", rep.Sample)
	}
	if rep.Clean() {
		t.Fatal("report with dropped lines claims clean")
	}

	// Budget: more bad lines than allowed fails with ErrBadLineBudget.
	_, rep2, err := ReadNVMainOpts(strings.NewReader(input), TextOptions{MaxBadLines: 1})
	if err == nil || !errors.Is(err, ErrBadLineBudget) {
		t.Fatalf("budget overflow not surfaced: %v", err)
	}
	if rep2.BadLines != 2 {
		t.Fatalf("budget report wrong: %+v", rep2)
	}
}

func TestGem5PermissiveParsing(t *testing.T) {
	input := "500: system.cpu.dcache: ReadReq addr=0x4000 size=8 thread=0\n" +
		"mangled: system.cpu.dcache: ReadReq addr=0x40\n" +
		"1000: system.cpu.dcache: WriteReq addr=0x4040 size=8 thread=1\n"
	if _, err := ReadGem5(strings.NewReader(input), 500); err == nil {
		t.Fatal("strict gem5 read accepted malformed input")
	}
	events, rep, err := ReadGem5Opts(strings.NewReader(input), 500, TextOptions{})
	if err != nil || len(events) != 2 || rep.BadLines != 1 {
		t.Fatalf("permissive gem5 read: n=%d rep=%+v err=%v", len(events), rep, err)
	}
}

func TestConvertPermissive(t *testing.T) {
	var in bytes.Buffer
	for i := 0; i < 2000; i++ {
		if i%100 == 50 {
			in.WriteString("corrupted-line-with-no: structure addr=0xq\n")
			continue
		}
		in.WriteString("500: system.cpu.dcache: ReadReq addr=0x4000 size=8 thread=0\n")
	}
	// Strict stream conversion fails.
	var out bytes.Buffer
	if _, err := ConvertStream(bytes.NewReader(in.Bytes()), &out, 500, 2, 4096); err == nil {
		t.Fatal("strict conversion accepted malformed input")
	}
	// Permissive conversion drops and counts them.
	out.Reset()
	st, err := ConvertStreamOpts(bytes.NewReader(in.Bytes()), &out, ConvertOptions{
		TicksPerCycle: 500, Workers: 2, ChunkSize: 4096,
	})
	if err != nil {
		t.Fatalf("permissive conversion failed: %v", err)
	}
	if st.BadLines != 20 || st.EventsOut != 1980 {
		t.Fatalf("permissive conversion stats wrong: %+v", st)
	}
	// Budget enforcement.
	_, err = ConvertStreamOpts(bytes.NewReader(in.Bytes()), io.Discard, ConvertOptions{
		TicksPerCycle: 500, Text: TextOptions{MaxBadLines: 5},
	})
	if err == nil || !errors.Is(err, ErrBadLineBudget) {
		t.Fatalf("conversion budget not enforced: %v", err)
	}
	// Sequential permissive path agrees.
	out.Reset()
	st2, err := ConvertSequentialOpts(bytes.NewReader(in.Bytes()), &out, ConvertOptions{TicksPerCycle: 500})
	if err != nil || st2.BadLines != 20 || st2.EventsOut != 1980 {
		t.Fatalf("sequential permissive stats wrong: %+v err=%v", st2, err)
	}
}
