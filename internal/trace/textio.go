package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Gem5 text format (one line per simulated event), modeled on gem5's
// --debug-flags=MemoryAccess output:
//
//	<tick>: system.cpu.dcache: <ReadReq|WriteReq> addr=0x1a2b size=8 thread=0
//
// Compute events use other device names and are skipped by the converter.
// NVMain text format (what the memory simulator replays):
//
//	<cycle> <R|W> 0x<ADDR> <thread>

// ErrBadLineBudget is returned when a permissive text parse drops more
// malformed lines than TextOptions.MaxBadLines allows.
var ErrBadLineBudget = errors.New("trace: malformed-line budget exceeded")

// TextOptions selects how text trace parsers treat malformed lines.
//
// Strict (the zero value is permissive; the package's plain constructors
// default to strict) fails the parse on the first malformed line. Permissive
// mode drops malformed lines, records each against the report, and fails
// only once more than MaxBadLines lines have been dropped (0 means
// unlimited).
type TextOptions struct {
	Strict      bool
	MaxBadLines int64
}

// LineError records one malformed input line.
type LineError struct {
	Line int64  // 1-based line number
	Text string // offending line, truncated for the report
	Err  error
}

func (e LineError) String() string {
	return fmt.Sprintf("line %d: %v (%q)", e.Line, e.Err, e.Text)
}

// maxLineErrorSample bounds how many malformed lines a TextReport retains
// verbatim; the full count is always kept in BadLines.
const maxLineErrorSample = 8

// maxLineErrorText bounds how much of an offending line the sample quotes.
const maxLineErrorText = 80

// TextReport is the accounting a text parser keeps: how many lines it saw,
// how many events they produced, and which lines were dropped as malformed
// (permissive mode only; strict parsers fail before dropping anything).
type TextReport struct {
	Lines    int64
	Events   int64
	BadLines int64
	Sample   []LineError // first maxLineErrorSample malformed lines
}

func (r *TextReport) addBadLine(line int64, text string, err error) {
	r.BadLines++
	if len(r.Sample) >= maxLineErrorSample {
		return
	}
	if len(text) > maxLineErrorText {
		text = text[:maxLineErrorText] + "…"
	}
	r.Sample = append(r.Sample, LineError{Line: line, Text: text, Err: err})
}

// Clean reports whether the parse dropped nothing.
func (r *TextReport) Clean() bool { return r.BadLines == 0 }

// WriteGem5 renders events in the gem5-style text format. ticksPerCycle
// scales CPU cycles to simulator ticks (gem5 uses picoseconds; 500 ticks per
// cycle corresponds to a 2 GHz CPU).
func WriteGem5(w io.Writer, events []Event, ticksPerCycle uint64) error {
	if ticksPerCycle == 0 {
		ticksPerCycle = 1
	}
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		req := "ReadReq"
		if e.Op == Write {
			req = "WriteReq"
		}
		if _, err := fmt.Fprintf(bw, "%d: system.cpu.dcache: %s addr=0x%x size=8 thread=%d\n",
			e.Cycle*ticksPerCycle, req, e.Addr, e.Thread); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseGem5Line parses one gem5-style line. Non-memory lines (device other
// than a cache/memory port, or unknown request kinds) return ok=false with
// no error, mirroring the paper's filtering of compute events.
func ParseGem5Line(line string, ticksPerCycle uint64) (Event, bool, error) {
	if ticksPerCycle == 0 {
		ticksPerCycle = 1
	}
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Event{}, false, nil
	}
	colon := strings.IndexByte(line, ':')
	if colon < 0 {
		return Event{}, false, fmt.Errorf("%w: no tick separator in %q", ErrFormat, line)
	}
	tick, err := strconv.ParseUint(strings.TrimSpace(line[:colon]), 10, 64)
	if err != nil {
		return Event{}, false, fmt.Errorf("%w: bad tick in %q", ErrFormat, line)
	}
	rest := line[colon+1:]
	// Only dcache/memory lines carry main-memory traffic.
	if !strings.Contains(rest, "dcache") && !strings.Contains(rest, "mem_ctrl") {
		return Event{}, false, nil
	}
	var op Op
	switch {
	case strings.Contains(rest, "ReadReq"):
		op = Read
	case strings.Contains(rest, "WriteReq"):
		op = Write
	default:
		return Event{}, false, nil
	}
	ai := strings.Index(rest, "addr=")
	if ai < 0 {
		return Event{}, false, fmt.Errorf("%w: no addr in %q", ErrFormat, line)
	}
	addrField := rest[ai+len("addr="):]
	if sp := strings.IndexByte(addrField, ' '); sp >= 0 {
		addrField = addrField[:sp]
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(addrField, "0x"), 16, 64)
	if err != nil {
		return Event{}, false, fmt.Errorf("%w: bad addr in %q", ErrFormat, line)
	}
	var thread uint64
	if ti := strings.Index(rest, "thread="); ti >= 0 {
		tf := rest[ti+len("thread="):]
		if sp := strings.IndexByte(tf, ' '); sp >= 0 {
			tf = tf[:sp]
		}
		thread, err = strconv.ParseUint(tf, 10, 8)
		if err != nil {
			return Event{}, false, fmt.Errorf("%w: bad thread in %q", ErrFormat, line)
		}
	}
	return Event{Cycle: tick / ticksPerCycle, Op: op, Addr: addr, Thread: uint8(thread)}, true, nil
}

// ReadGem5 parses a full gem5-style stream, skipping non-memory lines and
// failing on the first malformed one. ReadGem5Opts selects permissive
// parsing.
func ReadGem5(r io.Reader, ticksPerCycle uint64) ([]Event, error) {
	events, _, err := ReadGem5Opts(r, ticksPerCycle, TextOptions{Strict: true})
	return events, err
}

// WriteNVMain renders events in the NVMain trace format.
func WriteNVMain(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		if err := appendNVMainLine(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendNVMainLine writes one event as an NVMain text line, byte-identical
// to fmt.Fprintf(w, "%d %c 0x%X %d\n", ...) but without the fmt overhead.
func appendNVMainLine(bw *bufio.Writer, e Event) error {
	var numBuf [20]byte
	bw.Write(strconv.AppendUint(numBuf[:0], e.Cycle, 10))
	bw.WriteByte(' ')
	bw.WriteByte(byte(e.Op))
	bw.WriteString(" 0x")
	bw.Write(upperHex(numBuf[:0], e.Addr))
	bw.WriteByte(' ')
	bw.Write(strconv.AppendUint(numBuf[:0], uint64(e.Thread), 10))
	return bw.WriteByte('\n')
}

// ParseNVMainLine parses one NVMain-format line.
func ParseNVMainLine(line string) (Event, bool, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Event{}, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Event{}, false, fmt.Errorf("%w: %q", ErrFormat, line)
	}
	cycle, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return Event{}, false, fmt.Errorf("%w: bad cycle in %q", ErrFormat, line)
	}
	if len(fields[1]) != 1 || (fields[1][0] != byte(Read) && fields[1][0] != byte(Write)) {
		return Event{}, false, fmt.Errorf("%w: bad op in %q", ErrFormat, line)
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
	if err != nil {
		return Event{}, false, fmt.Errorf("%w: bad addr in %q", ErrFormat, line)
	}
	var thread uint64
	if len(fields) >= 4 {
		thread, err = strconv.ParseUint(fields[3], 10, 8)
		if err != nil {
			return Event{}, false, fmt.Errorf("%w: bad thread in %q", ErrFormat, line)
		}
	}
	return Event{Cycle: cycle, Op: Op(fields[1][0]), Addr: addr, Thread: uint8(thread)}, true, nil
}

// ReadNVMain parses a full NVMain-format stream, failing on the first
// malformed line. ReadNVMainOpts selects permissive parsing.
func ReadNVMain(r io.Reader) ([]Event, error) {
	events, _, err := ReadNVMainOpts(r, TextOptions{Strict: true})
	return events, err
}

// ReadNVMainOpts parses an NVMain-format stream under the given
// strict/permissive options, returning the parse accounting alongside the
// events.
func ReadNVMainOpts(r io.Reader, opts TextOptions) ([]Event, *TextReport, error) {
	src := NewNVMainSourceOpts(r, opts)
	events, err := Collect(src)
	if err != nil {
		return nil, src.Report(), err
	}
	return events, src.Report(), nil
}

// ReadGem5Opts parses a gem5-style stream under the given strict/permissive
// options, returning the parse accounting alongside the events.
func ReadGem5Opts(r io.Reader, ticksPerCycle uint64, opts TextOptions) ([]Event, *TextReport, error) {
	src := NewGem5SourceOpts(r, ticksPerCycle, opts)
	events, err := Collect(src)
	if err != nil {
		return nil, src.Report(), err
	}
	return events, src.Report(), nil
}
