package trace

import (
	"bytes"
	"sync"
	"testing"
)

// recordingGovernor is a WorkerGovernor test double: it caps every request at
// limit, reports forced streaming on demand, and records the calls it saw.
type recordingGovernor struct {
	mu     sync.Mutex
	limit  int
	forced bool
	stages []string
	reqs   []int
}

func (g *recordingGovernor) Workers(stage string, requested int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stages = append(g.stages, stage)
	g.reqs = append(g.reqs, requested)
	if g.limit > 0 && requested > g.limit {
		return g.limit
	}
	return requested
}

func (g *recordingGovernor) StreamingForced() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.forced
}

func (g *recordingGovernor) seen() ([]string, []int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.stages...), append([]int(nil), g.reqs...)
}

func TestConvertStreamGovernorCapsWorkers(t *testing.T) {
	input, _ := gem5Corpus(t, 500, 31)
	var ref bytes.Buffer
	if _, err := ConvertSequential(bytes.NewReader(input), &ref, 500); err != nil {
		t.Fatal(err)
	}

	gov := &recordingGovernor{limit: 1}
	var out bytes.Buffer
	st, err := ConvertStreamOpts(bytes.NewReader(input), &out, ConvertOptions{
		TicksPerCycle: 500, Workers: 8, ChunkSize: 256,
		Text: TextOptions{Strict: true}, Governor: gov,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 {
		t.Fatalf("governed stream ran %d workers, want 1", st.Workers)
	}
	stages, reqs := gov.seen()
	if len(stages) != 1 || stages[0] != "convert" || reqs[0] != 8 {
		t.Fatalf("governor saw calls %v/%v, want one convert/8", stages, reqs)
	}
	if !bytes.Equal(out.Bytes(), ref.Bytes()) {
		t.Fatal("governed stream output differs from sequential")
	}
}

func TestConvertParallelGovernorCapsWorkers(t *testing.T) {
	input, _ := gem5Corpus(t, 500, 32)
	var ref bytes.Buffer
	if _, err := ConvertSequential(bytes.NewReader(input), &ref, 500); err != nil {
		t.Fatal(err)
	}

	gov := &recordingGovernor{limit: 2}
	var out bytes.Buffer
	st, err := ConvertParallelOpts(input, &out, ConvertOptions{
		TicksPerCycle: 500, Workers: 8, ChunkSize: 256,
		Text: TextOptions{Strict: true}, Governor: gov,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 {
		t.Fatalf("governed parallel convert ran %d workers, want 2", st.Workers)
	}
	if !bytes.Equal(out.Bytes(), ref.Bytes()) {
		t.Fatal("governed parallel output differs from sequential")
	}
}

// TestConvertParallelForcedStreaming verifies the degradation hook: when the
// governor reports memory pressure, ConvertParallelOpts must reroute through
// the bounded-memory streaming path instead of buffering every chunk, still
// producing identical output.
func TestConvertParallelForcedStreaming(t *testing.T) {
	input, _ := gem5Corpus(t, 500, 33)
	var ref bytes.Buffer
	if _, err := ConvertSequential(bytes.NewReader(input), &ref, 500); err != nil {
		t.Fatal(err)
	}

	gov := &recordingGovernor{limit: 1, forced: true}
	var out bytes.Buffer
	st, err := ConvertParallelOpts(input, &out, ConvertOptions{
		TicksPerCycle: 500, Workers: 8, ChunkSize: 256,
		Text: TextOptions{Strict: true}, Governor: gov,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The streaming path cuts chunks itself, so the signature of the reroute
	// is the chunk count: the materializing path would report exactly
	// ceil(len/256) aligned chunks AND the governor would be consulted once
	// either way — the reliable witness is workers==limit plus byte-identical
	// output with more than one chunk processed.
	if st.Workers != 1 {
		t.Fatalf("forced streaming ran %d workers, want 1", st.Workers)
	}
	if st.Chunks < 2 {
		t.Fatalf("forced streaming processed %d chunks, want several", st.Chunks)
	}
	if !bytes.Equal(out.Bytes(), ref.Bytes()) {
		t.Fatal("forced-streaming output differs from sequential")
	}
}
