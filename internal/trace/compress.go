package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"graphdse/internal/artifact"
)

// Compressed binary trace format: varint-encoded records exploiting trace
// structure — cycles are ascending (delta-encoded) and addresses cluster
// around recent accesses (zig-zag-delta encoded). Graph traces compress
// ~3-4× over the fixed binary format.
//
// v1 is a bare 8-byte magic, a total-count varint, and one long delta
// stream; a single flipped bit silently rewrites every event after it,
// because deltas accumulate. v2 frames the stream in the artifact container:
// each block carries up to compressedBlockRecords events with the delta
// state reset at the block start, so blocks verify and decode independently
// — bit rot is caught by the block CRC and a torn file salvages to its valid
// block prefix. Writers emit v2; readers accept both.

var compressedMagic = [8]byte{'G', 'D', 'S', 'E', 'T', 'R', 'C', '2'}

// CompressedFormatTag and CompressedFormatVersion identify the v2
// delta-compressed trace container.
const (
	CompressedFormatTag     = "TRACECMP"
	CompressedFormatVersion = 2
)

// compressedBlockRecords bounds events per v2 block; the delta state resets
// at each block boundary so blocks decode independently.
const compressedBlockRecords = 8192

// maxV1Count caps the v1 total-count prefix a reader will believe outright.
const maxV1Count = 1 << 34

// encodeCompressedEvent appends one event's delta encoding to dst.
func encodeCompressedEvent(dst []byte, e Event, prevCycle, prevAddr uint64) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return dst, err
	}
	if e.Cycle < prevCycle {
		return dst, fmt.Errorf("%w: cycle regression (%d < %d)", ErrFormat, e.Cycle, prevCycle)
	}
	var buf [3 * binary.MaxVarintLen64]byte
	k := 0
	// Cycle delta with the op bit folded into the low bit.
	dc := (e.Cycle - prevCycle) << 1
	if e.Op == Write {
		dc |= 1
	}
	k += binary.PutUvarint(buf[k:], dc)
	// Zig-zag address delta.
	k += binary.PutVarint(buf[k:], int64(e.Addr)-int64(prevAddr))
	buf[k] = e.Thread
	k++
	return append(dst, buf[:k]...), nil
}

// WriteCompressed encodes events in the checksummed v2 compressed trace
// format. Events must have non-decreasing cycles (as produced by the system
// simulator).
func WriteCompressed(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	blocks, err := artifact.NewBlockWriter(bw, CompressedFormatTag, CompressedFormatVersion)
	if err != nil {
		return err
	}
	var block []byte
	for start := 0; start < len(events); start += compressedBlockRecords {
		end := start + compressedBlockRecords
		if end > len(events) {
			end = len(events)
		}
		block = block[:0]
		var prevCycle, prevAddr uint64 // delta state resets per block
		for i, e := range events[start:end] {
			block, err = encodeCompressedEvent(block, e, prevCycle, prevAddr)
			if err != nil {
				return fmt.Errorf("event %d: %w", start+i, err)
			}
			prevCycle, prevAddr = e.Cycle, e.Addr
		}
		if err := blocks.WriteBlock(block, uint32(end-start)); err != nil {
			return err
		}
	}
	if err := blocks.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteCompressedV1 encodes events in the legacy unchecksummed v1 format.
func WriteCompressedV1(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(compressedMagic[:]); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(events)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	var prevCycle, prevAddr uint64
	var block []byte
	for i, e := range events {
		var err error
		block, err = encodeCompressedEvent(block[:0], e, prevCycle, prevAddr)
		if err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if _, err := bw.Write(block); err != nil {
			return err
		}
		prevCycle, prevAddr = e.Cycle, e.Addr
	}
	return bw.Flush()
}

// ReadCompressed decodes a compressed trace stream, accepting both the
// legacy v1 format and the checksummed v2 container. Any damage fails the
// read; ReadCompressedSalvage recovers the valid prefix instead.
func ReadCompressed(r io.Reader) ([]Event, error) {
	events, _, err := readCompressed(r, false)
	return events, err
}

// ReadCompressedSalvage reads as much of a compressed trace as is provably
// intact: for v2 every returned event comes from a checksum-verified block
// (decoded independently thanks to per-block delta state); for v1 the
// prefix ends at the first undecodable varint. The error is non-nil only
// when the header is unusable.
func ReadCompressedSalvage(r io.Reader) ([]Event, *artifact.SalvageReport, error) {
	return readCompressed(r, true)
}

func readCompressed(r io.Reader, salvage bool) ([]Event, *artifact.SalvageReport, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(8)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: missing magic: %v", ErrFormat, err)
	}
	switch {
	case [8]byte(head) == compressedMagic:
		return readCompressedV1(br, salvage)
	case [8]byte(head) == artifact.Magic:
		return readCompressedV2(br, salvage)
	default:
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrFormat, head)
	}
}

// decodeCompressedBlock decodes records delta-encoded events from data,
// appending to events. Returns the number decoded and the first error.
func decodeCompressedBlock(events []Event, data *bufio.Reader, records uint64) ([]Event, uint64, error) {
	var cycle, addr uint64
	for i := uint64(0); i < records; i++ {
		dc, err := binary.ReadUvarint(data)
		if err != nil {
			return events, i, fmt.Errorf("%w: truncated at event %d: %v", ErrFormat, i, err)
		}
		da, err := binary.ReadVarint(data)
		if err != nil {
			return events, i, fmt.Errorf("%w: truncated addr at event %d: %v", ErrFormat, i, err)
		}
		thread, err := data.ReadByte()
		if err != nil {
			return events, i, fmt.Errorf("%w: truncated thread at event %d: %v", ErrFormat, i, err)
		}
		op := Read
		if dc&1 == 1 {
			op = Write
		}
		cycle += dc >> 1
		addr = uint64(int64(addr) + da)
		events = append(events, Event{Cycle: cycle, Op: op, Addr: addr, Thread: thread})
	}
	return events, records, nil
}

func readCompressedV1(br *bufio.Reader, salvage bool) ([]Event, *artifact.SalvageReport, error) {
	br.Discard(8)
	rep := &artifact.SalvageReport{Format: CompressedFormatTag + "/v1", DroppedBytes: -1}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		err = fmt.Errorf("%w: missing count: %v", ErrFormat, err)
		if salvage {
			rep.Truncated, rep.Reason = true, err.Error()
			return nil, rep, err
		}
		return nil, nil, err
	}
	if count > maxV1Count {
		err := fmt.Errorf("%w: implausible event count %d", ErrFormat, count)
		if salvage {
			rep.Corrupt, rep.Reason = true, err.Error()
			return nil, rep, err
		}
		return nil, nil, err
	}
	// Cap the up-front allocation: a corrupt count prefix must not OOM the
	// process before the (tiny) body runs out. Growth past the cap is paid
	// only by inputs that actually contain that many events.
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	events := make([]Event, 0, capHint)
	events, decoded, err := decodeCompressedBlock(events, br, count)
	rep.RecordsKept = decoded
	if err != nil {
		if salvage {
			rep.Truncated, rep.Reason = true, err.Error()
			return events, rep, nil
		}
		return nil, nil, err
	}
	return events, rep, nil
}

func readCompressedV2(br *bufio.Reader, salvage bool) ([]Event, *artifact.SalvageReport, error) {
	// fail returns the verified prefix in salvage mode, nothing otherwise.
	fail := func(kept []Event, rep *artifact.SalvageReport, err error) ([]Event, *artifact.SalvageReport, error) {
		if salvage {
			return kept, rep, nil
		}
		return nil, rep, err
	}
	blocks, err := artifact.NewBlockReader(br)
	if err != nil {
		err = fmt.Errorf("%w: %w", ErrFormat, err)
		rep := &artifact.SalvageReport{Format: CompressedFormatTag, DroppedBytes: -1, Corrupt: true, Reason: err.Error()}
		return nil, rep, err
	}
	mkRep := func(err error) *artifact.SalvageReport {
		rep := blocks.Report(err)
		rep.Format = CompressedFormatTag
		return rep
	}
	if blocks.Format() != CompressedFormatTag {
		err := fmt.Errorf("%w: container holds %q, want %q", ErrFormat, blocks.Format(), CompressedFormatTag)
		return nil, mkRep(err), err
	}
	if blocks.Version() > CompressedFormatVersion {
		err := fmt.Errorf("%w: compressed format version %d newer than supported %d",
			ErrFormat, blocks.Version(), CompressedFormatVersion)
		return nil, mkRep(err), err
	}
	var events []Event
	var kept uint64
	for {
		payload, records, err := blocks.Next()
		if err == io.EOF {
			rep := mkRep(nil)
			rep.RecordsKept = kept
			return events, rep, nil
		}
		if err != nil {
			err = fmt.Errorf("%w: %w", ErrFormat, err)
			rep := mkRep(err)
			rep.RecordsKept = kept
			return fail(events, rep, err)
		}
		if uint64(records) > uint64(len(payload)) {
			// Each record is at least 3 bytes; a count beyond the payload
			// length is structurally impossible.
			err := fmt.Errorf("%w: block %d claims %d records in %d bytes",
				ErrFormat, blocks.Blocks()-1, records, len(payload))
			rep := mkRep(err)
			rep.Corrupt, rep.RecordsKept = true, kept
			return fail(events, rep, err)
		}
		blockReader := bufio.NewReader(newByteReader(payload))
		var decoded uint64
		events, decoded, err = decodeCompressedBlock(events, blockReader, uint64(records))
		if err != nil || decoded != uint64(records) {
			if err == nil {
				err = fmt.Errorf("%w: block %d decoded %d of %d records", ErrFormat, blocks.Blocks()-1, decoded, records)
			}
			events = events[:kept] // drop the partially decoded block
			rep := mkRep(err)
			rep.Corrupt, rep.RecordsKept = true, kept
			return fail(events, rep, err)
		}
		kept += decoded
	}
}

// newByteReader wraps a byte slice as an io.Reader without the bytes.Reader
// allocation dance in the hot path.
type byteReader struct {
	data []byte
	pos  int
}

func newByteReader(data []byte) *byteReader { return &byteReader{data: data} }

func (b *byteReader) Read(p []byte) (int, error) {
	if b.pos >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.pos:])
	b.pos += n
	return n, nil
}
