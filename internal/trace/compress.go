package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Compressed binary trace format: an 8-byte magic header followed by
// varint-encoded records exploiting trace structure — cycles are ascending
// (delta-encoded) and addresses cluster around recent accesses
// (zig-zag-delta encoded). Graph traces compress ~3-4× over the fixed
// binary format.

var compressedMagic = [8]byte{'G', 'D', 'S', 'E', 'T', 'R', 'C', '2'}

// WriteCompressed encodes events in the compressed trace format. Events
// must have non-decreasing cycles (as produced by the system simulator).
func WriteCompressed(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(compressedMagic[:]); err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(events)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	var prevCycle uint64
	var prevAddr uint64
	var buf [3 * binary.MaxVarintLen64]byte
	for i, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		if e.Cycle < prevCycle {
			return fmt.Errorf("%w: cycle regression at event %d (%d < %d)", ErrFormat, i, e.Cycle, prevCycle)
		}
		k := 0
		// Cycle delta with the op bit folded into the low bit.
		dc := (e.Cycle - prevCycle) << 1
		if e.Op == Write {
			dc |= 1
		}
		k += binary.PutUvarint(buf[k:], dc)
		// Zig-zag address delta.
		k += binary.PutVarint(buf[k:], int64(e.Addr)-int64(prevAddr))
		buf[k] = e.Thread
		k++
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
		prevCycle = e.Cycle
		prevAddr = e.Addr
	}
	return bw.Flush()
}

// ReadCompressed decodes a compressed trace stream.
func ReadCompressed(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrFormat, err)
	}
	if magic != compressedMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: missing count: %v", ErrFormat, err)
	}
	const maxReasonable = 1 << 34
	if count > maxReasonable {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrFormat, count)
	}
	events := make([]Event, 0, count)
	var cycle, addr uint64
	for i := uint64(0); i < count; i++ {
		dc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at event %d: %v", ErrFormat, i, err)
		}
		da, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated addr at event %d: %v", ErrFormat, i, err)
		}
		thread, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated thread at event %d: %v", ErrFormat, i, err)
		}
		op := Read
		if dc&1 == 1 {
			op = Write
		}
		cycle += dc >> 1
		addr = uint64(int64(addr) + da)
		events = append(events, Event{Cycle: cycle, Op: op, Addr: addr, Thread: thread})
	}
	return events, nil
}
