// Package trace models the memory-trace pipeline between the system
// simulator and the memory simulator: a gem5-style text event format, the
// NVMain-compatible trace format the memory simulator replays, a compact
// binary format, and both the sequential and the parallel chunked converter
// described in §III-D of the paper (which reports linear speedup for the
// parallel version on a ~91.5M-line gem5 trace).
package trace

import (
	"errors"
	"fmt"
)

// Op is a memory operation kind.
type Op byte

// Memory operation kinds.
const (
	Read  Op = 'R'
	Write Op = 'W'
)

// Event is one main-memory access: the CPU cycle it was issued, the
// operation, the physical byte address, and the issuing hardware thread.
type Event struct {
	Cycle  uint64
	Op     Op
	Addr   uint64
	Thread uint8
}

// ErrFormat reports a malformed trace line or record.
var ErrFormat = errors.New("trace: malformed input")

// Validate checks the event's operation tag.
func (e Event) Validate() error {
	if e.Op != Read && e.Op != Write {
		return fmt.Errorf("%w: op %q", ErrFormat, e.Op)
	}
	return nil
}

// String renders the event in NVMain trace format.
func (e Event) String() string {
	return fmt.Sprintf("%d %c 0x%X %d", e.Cycle, e.Op, e.Addr, e.Thread)
}

// Merge interleaves multiple traces into one time-ordered stream,
// offsetting each input's addresses into a disjoint window (addrStride per
// input, 0 keeps original addresses) — the standard construction for
// multi-programmed workload studies where co-running processes contend for
// the same memory system.
func Merge(addrStride uint64, traces ...[]Event) []Event {
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	out := make([]Event, 0, total)
	// k-way merge by cycle using simple index cursors.
	idx := make([]int, len(traces))
	for {
		best := -1
		var bestCycle uint64
		for ti, tr := range traces {
			if idx[ti] >= len(tr) {
				continue
			}
			c := tr[idx[ti]].Cycle
			if best < 0 || c < bestCycle {
				best, bestCycle = ti, c
			}
		}
		if best < 0 {
			return out
		}
		e := traces[best][idx[best]]
		e.Addr += uint64(best) * addrStride
		e.Thread = uint8(best)
		out = append(out, e)
		idx[best]++
	}
}

// Stats summarizes a trace.
type Stats struct {
	Events     int64
	Reads      int64
	Writes     int64
	FirstCycle uint64
	LastCycle  uint64
	MinAddr    uint64
	MaxAddr    uint64
}

// Summarize computes aggregate statistics over events.
func Summarize(events []Event) Stats {
	var s Stats
	if len(events) == 0 {
		return s
	}
	s.Events = int64(len(events))
	s.FirstCycle = events[0].Cycle
	s.LastCycle = events[0].Cycle
	s.MinAddr = events[0].Addr
	s.MaxAddr = events[0].Addr
	for _, e := range events {
		if e.Op == Write {
			s.Writes++
		} else {
			s.Reads++
		}
		if e.Cycle < s.FirstCycle {
			s.FirstCycle = e.Cycle
		}
		if e.Cycle > s.LastCycle {
			s.LastCycle = e.Cycle
		}
		if e.Addr < s.MinAddr {
			s.MinAddr = e.Addr
		}
		if e.Addr > s.MaxAddr {
			s.MaxAddr = e.Addr
		}
	}
	return s
}
