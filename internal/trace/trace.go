// Package trace models the memory-trace pipeline between the system
// simulator and the memory simulator: a gem5-style text event format, the
// NVMain-compatible trace format the memory simulator replays, a compact
// binary format, and both the sequential and the parallel chunked converter
// described in §III-D of the paper (which reports linear speedup for the
// parallel version on a ~91.5M-line gem5 trace).
package trace

import (
	"errors"
	"fmt"
)

// Op is a memory operation kind.
type Op byte

// Memory operation kinds.
const (
	Read  Op = 'R'
	Write Op = 'W'
)

// Event is one main-memory access: the CPU cycle it was issued, the
// operation, the physical byte address, and the issuing hardware thread.
type Event struct {
	Cycle  uint64
	Op     Op
	Addr   uint64
	Thread uint8
}

// ErrFormat reports a malformed trace line or record.
var ErrFormat = errors.New("trace: malformed input")

// Validate checks the event's operation tag.
func (e Event) Validate() error {
	if e.Op != Read && e.Op != Write {
		return fmt.Errorf("%w: op %q", ErrFormat, e.Op)
	}
	return nil
}

// String renders the event in NVMain trace format.
func (e Event) String() string {
	return fmt.Sprintf("%d %c 0x%X %d", e.Cycle, e.Op, e.Addr, e.Thread)
}

// Merge interleaves multiple traces into one time-ordered stream,
// offsetting each input's addresses into a disjoint window (addrStride per
// input, 0 keeps original addresses) — the standard construction for
// multi-programmed workload studies where co-running processes contend for
// the same memory system. The old O(k·n) linear head scan is replaced by an
// O(n·log k) k-way heap merge over the slice heads (the streaming
// equivalent is MergeSources); output is unchanged — ties on cycle still
// resolve in input order, because the heap orders on (cycle, input index).
func Merge(addrStride uint64, traces ...[]Event) []Event {
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	out := make([]Event, 0, total)

	// Binary min-heap of trace indices, keyed on (head cycle, trace index).
	// Hand-rolled rather than container/heap so the per-event sift-down is
	// direct slice indexing instead of interface dispatch — that is what
	// makes O(log k) beat the old k-comparison scan already at k=8.
	idx := make([]int, len(traces))
	head := make([]uint64, len(traces)) // cached head cycle per trace
	h := make([]int, 0, len(traces))
	less := func(a, b int) bool {
		if head[a] != head[b] {
			return head[a] < head[b]
		}
		return a < b
	}
	siftDown := func(i int) {
		for {
			l := 2*i + 1
			if l >= len(h) {
				return
			}
			m := l
			if r := l + 1; r < len(h) && less(h[r], h[l]) {
				m = r
			}
			if !less(h[m], h[i]) {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for ti := range traces {
		if len(traces[ti]) > 0 {
			head[ti] = traces[ti][0].Cycle
			h = append(h, ti)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}

	for len(h) > 0 {
		ti := h[0]
		e := traces[ti][idx[ti]]
		e.Addr += uint64(ti) * addrStride
		e.Thread = uint8(ti)
		out = append(out, e)
		idx[ti]++
		if idx[ti] >= len(traces[ti]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		} else {
			head[ti] = traces[ti][idx[ti]].Cycle
		}
		siftDown(0)
	}
	return out
}

// Stats summarizes a trace.
type Stats struct {
	Events     int64
	Reads      int64
	Writes     int64
	FirstCycle uint64
	LastCycle  uint64
	MinAddr    uint64
	MaxAddr    uint64
}

// Add folds one event into the running statistics.
func (s *Stats) Add(e Event) {
	if s.Events == 0 {
		s.FirstCycle, s.LastCycle = e.Cycle, e.Cycle
		s.MinAddr, s.MaxAddr = e.Addr, e.Addr
	}
	s.Events++
	if e.Op == Write {
		s.Writes++
	} else {
		s.Reads++
	}
	if e.Cycle < s.FirstCycle {
		s.FirstCycle = e.Cycle
	}
	if e.Cycle > s.LastCycle {
		s.LastCycle = e.Cycle
	}
	if e.Addr < s.MinAddr {
		s.MinAddr = e.Addr
	}
	if e.Addr > s.MaxAddr {
		s.MaxAddr = e.Addr
	}
}

// Summarize computes aggregate statistics over events.
func Summarize(events []Event) Stats {
	var s Stats
	for _, e := range events {
		s.Add(e)
	}
	return s
}

// SummarizeSource computes aggregate statistics over a stream without
// materializing it.
func SummarizeSource(src Source) (Stats, error) {
	var s Stats
	err := ForEach(src, func(e Event) error {
		s.Add(e)
		return nil
	})
	return s, err
}
