package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format: an 8-byte magic header followed by fixed 18-byte
// little-endian records (cycle:8, addr:8, op:1, thread:1). Roughly 3× more
// compact than the text format and an order of magnitude faster to parse.

var binaryMagic = [8]byte{'G', 'D', 'S', 'E', 'T', 'R', 'C', '1'}

const binaryRecordSize = 18

// WriteBinary encodes events in the binary trace format.
func WriteBinary(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var rec [binaryRecordSize]byte
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(rec[0:8], e.Cycle)
		binary.LittleEndian.PutUint64(rec[8:16], e.Addr)
		rec[16] = byte(e.Op)
		rec[17] = e.Thread
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace stream.
func ReadBinary(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrFormat, err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, magic[:])
	}
	var events []Event
	var rec [binaryRecordSize]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record: %v", ErrFormat, err)
		}
		e := Event{
			Cycle:  binary.LittleEndian.Uint64(rec[0:8]),
			Addr:   binary.LittleEndian.Uint64(rec[8:16]),
			Op:     Op(rec[16]),
			Thread: rec[17],
		}
		if err := e.Validate(); err != nil {
			return nil, err
		}
		events = append(events, e)
	}
}
