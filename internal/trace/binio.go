package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"graphdse/internal/artifact"
)

// Binary trace formats. Records are fixed 18-byte little-endian tuples
// (cycle:8, addr:8, op:1, thread:1) — roughly 3× more compact than the text
// format and an order of magnitude faster to parse.
//
// v1 is a bare 8-byte magic followed by records: compact but fragile — a
// flipped bit in an addr or cycle field is undetectable. v2 wraps the same
// records in the artifact checksummed container (per-block CRC32-Castagnoli,
// record counts, sealed trailer), so bit rot is detected and named, and a
// torn file salvages to its longest valid block prefix. Writers emit v2;
// readers accept both transparently.

var binaryMagic = [8]byte{'G', 'D', 'S', 'E', 'T', 'R', 'C', '1'}

const binaryRecordSize = 18

// BinaryFormatTag and BinaryFormatVersion identify the v2 fixed-record trace
// container.
const (
	BinaryFormatTag     = "TRACEBIN"
	BinaryFormatVersion = 2
)

// binaryBlockRecords is the number of records per v2 block (~288 KiB).
const binaryBlockRecords = 16384

func encodeBinaryRecord(rec []byte, e Event) {
	binary.LittleEndian.PutUint64(rec[0:8], e.Cycle)
	binary.LittleEndian.PutUint64(rec[8:16], e.Addr)
	rec[16] = byte(e.Op)
	rec[17] = e.Thread
}

func decodeBinaryRecord(rec []byte) Event {
	return Event{
		Cycle:  binary.LittleEndian.Uint64(rec[0:8]),
		Addr:   binary.LittleEndian.Uint64(rec[8:16]),
		Op:     Op(rec[16]),
		Thread: rec[17],
	}
}

// WriteBinary encodes events in the checksummed v2 binary trace format.
func WriteBinary(w io.Writer, events []Event) error {
	sink := NewBinarySink(w)
	if err := sink.Emit(events); err != nil {
		return err
	}
	return sink.Flush()
}

// WriteBinaryV1 encodes events in the legacy unchecksummed v1 format, kept
// for interoperability tests and tooling that predates the container.
func WriteBinaryV1(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var rec [binaryRecordSize]byte
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		encodeBinaryRecord(rec[:], e)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace stream, accepting both the legacy v1
// format and the checksummed v2 container. Any damage fails the read; use
// ReadBinarySalvage to recover the valid prefix of a damaged trace.
func ReadBinary(r io.Reader) ([]Event, error) {
	return Collect(NewBinarySource(r))
}

// ReadBinarySalvage reads as much of a binary trace as is provably intact,
// returning the recovered prefix and a report of what was dropped. For v2
// input every returned event sits in a checksum-verified block; for v1 the
// prefix ends at the first short or invalid record. The error is non-nil
// only when the stream's header is unusable (wrong magic).
func ReadBinarySalvage(r io.Reader) ([]Event, *artifact.SalvageReport, error) {
	src := NewBinarySource(r)
	events, err := Collect(src)
	rep := src.salvageReport(err)
	if err != nil && src.headerErr {
		return nil, rep, err
	}
	return events, rep, nil
}

// binaryVersion tells the two on-disk binary generations apart.
type binaryVersion int

const (
	binaryUnknown binaryVersion = iota
	binaryV1
	binaryV2
)

// sniffBinary peeks the stream's first 8 bytes and dispatches.
func sniffBinary(br *bufio.Reader) (binaryVersion, error) {
	head, err := br.Peek(8)
	if err != nil {
		return binaryUnknown, fmt.Errorf("%w: missing magic: %v", ErrFormat, err)
	}
	switch {
	case [8]byte(head) == binaryMagic:
		return binaryV1, nil
	case [8]byte(head) == artifact.Magic:
		return binaryV2, nil
	default:
		return binaryUnknown, fmt.Errorf("%w: bad magic %q", ErrFormat, head)
	}
}
