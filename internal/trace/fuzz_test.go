package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseNVMainLine checks that any line the NVMain parser accepts
// round-trips through the writer format: parse → render → reparse must
// yield the identical event. Seeds run on every plain `go test`.
func FuzzParseNVMainLine(f *testing.F) {
	f.Add("100 R 0x400 0")
	f.Add("0 W 0x0 3")
	f.Add("18446744073709551615 R 0xFFFFFFFFFFFFFFFF 255")
	f.Add("  42 W 0xDEADBEEF 1  ")
	f.Add("# comment")
	f.Add("")
	f.Add("12 X 0x40 0")
	f.Add("12 R")
	f.Add("12 R 0xZZ 0")
	f.Fuzz(func(t *testing.T, line string) {
		e, ok, err := ParseNVMainLine(line)
		if err != nil || !ok {
			return // rejected or skipped input: nothing to round-trip
		}
		e2, ok2, err2 := ParseNVMainLine(e.String())
		if err2 != nil || !ok2 {
			t.Fatalf("rendered line %q rejected: ok=%v err=%v", e.String(), ok2, err2)
		}
		if e2 != e {
			t.Fatalf("round-trip mismatch: %+v -> %q -> %+v", e, e.String(), e2)
		}
	})
}

// FuzzParseGem5Line checks the gem5 parser against the gem5 writer at
// ticksPerCycle=1 (so no tick truncation): any accepted line must survive
// parse → WriteGem5 → reparse unchanged.
func FuzzParseGem5Line(f *testing.F) {
	f.Add("500: system.cpu.dcache: ReadReq addr=0x4000 size=8 thread=2")
	f.Add("1000: system.cpu.dcache: WriteReq addr=0xdeadbeef size=8 thread=0")
	f.Add("1500: system.mem_ctrl: ReadReq addr=0x80 size=64")
	f.Add("2000: system.cpu.icache: ReadReq addr=0x1000 size=8") // filtered
	f.Add("2500: system.cpu.dcache: CleanEvict addr=0x40 size=8")
	f.Add("no colon here")
	f.Add("abc: system.cpu.dcache: ReadReq addr=0x40")
	f.Add("300: system.cpu.dcache: ReadReq addr=0xqq size=8")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		e, ok, err := ParseGem5Line(line, 1)
		if err != nil || !ok {
			return
		}
		var buf bytes.Buffer
		if werr := WriteGem5(&buf, []Event{e}, 1); werr != nil {
			t.Fatalf("writer rejected parsed event %+v: %v", e, werr)
		}
		rendered := strings.TrimSuffix(buf.String(), "\n")
		e2, ok2, err2 := ParseGem5Line(rendered, 1)
		if err2 != nil || !ok2 {
			t.Fatalf("rendered line %q rejected: ok=%v err=%v", rendered, ok2, err2)
		}
		if e2 != e {
			t.Fatalf("round-trip mismatch: %+v -> %q -> %+v", e, rendered, e2)
		}
	})
}
