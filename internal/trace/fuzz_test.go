package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// fuzzTrace builds seed traces for the binary-reader fuzz targets.
func fuzzTrace(n int) []Event {
	events := make([]Event, n)
	for i := range events {
		op := Read
		if i%2 == 0 {
			op = Write
		}
		events[i] = Event{Cycle: uint64(i * 3), Op: op, Addr: uint64(0x1000 + i*64), Thread: uint8(i % 3)}
	}
	return events
}

// FuzzReadBinary drives both binary trace readers (strict and salvage) over
// arbitrary bytes: no panics, no runaway allocation, errors classified as
// ErrFormat, and salvage must return a prefix consistent with its report.
func FuzzReadBinary(f *testing.F) {
	var v1, v2 bytes.Buffer
	WriteBinaryV1(&v1, fuzzTrace(20))
	WriteBinary(&v2, fuzzTrace(20))
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v2.Bytes()[:v2.Len()-10]) // torn trailer
	f.Add([]byte("GDSETRC1short"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil && !errors.Is(err, ErrFormat) {
			t.Fatalf("unclassified error: %v", err)
		}
		events, rep, err := ReadBinarySalvage(bytes.NewReader(data))
		if err != nil {
			return // unusable header: nothing salvageable
		}
		if rep == nil {
			t.Fatal("salvage returned nil report without error")
		}
		if uint64(len(events)) != rep.RecordsKept {
			t.Fatalf("salvage report says %d records, returned %d", rep.RecordsKept, len(events))
		}
	})
}

// FuzzReadCompressed is FuzzReadBinary for the delta-compressed format.
func FuzzReadCompressed(f *testing.F) {
	var v1, v2 bytes.Buffer
	WriteCompressedV1(&v1, fuzzTrace(30))
	WriteCompressed(&v2, fuzzTrace(30))
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:5])
	f.Add(append(append([]byte{}, compressedMagic[:]...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F))
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := ReadCompressed(bytes.NewReader(data)); err != nil && !errors.Is(err, ErrFormat) {
			t.Fatalf("unclassified error: %v", err)
		}
		events, rep, err := ReadCompressedSalvage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rep == nil {
			t.Fatal("salvage returned nil report without error")
		}
		if uint64(len(events)) != rep.RecordsKept {
			t.Fatalf("salvage report says %d records, returned %d", rep.RecordsKept, len(events))
		}
	})
}

// FuzzParseNVMainLine checks that any line the NVMain parser accepts
// round-trips through the writer format: parse → render → reparse must
// yield the identical event. Seeds run on every plain `go test`.
func FuzzParseNVMainLine(f *testing.F) {
	f.Add("100 R 0x400 0")
	f.Add("0 W 0x0 3")
	f.Add("18446744073709551615 R 0xFFFFFFFFFFFFFFFF 255")
	f.Add("  42 W 0xDEADBEEF 1  ")
	f.Add("# comment")
	f.Add("")
	f.Add("12 X 0x40 0")
	f.Add("12 R")
	f.Add("12 R 0xZZ 0")
	f.Fuzz(func(t *testing.T, line string) {
		e, ok, err := ParseNVMainLine(line)
		if err != nil || !ok {
			return // rejected or skipped input: nothing to round-trip
		}
		e2, ok2, err2 := ParseNVMainLine(e.String())
		if err2 != nil || !ok2 {
			t.Fatalf("rendered line %q rejected: ok=%v err=%v", e.String(), ok2, err2)
		}
		if e2 != e {
			t.Fatalf("round-trip mismatch: %+v -> %q -> %+v", e, e.String(), e2)
		}
	})
}

// FuzzParseGem5Line checks the gem5 parser against the gem5 writer at
// ticksPerCycle=1 (so no tick truncation): any accepted line must survive
// parse → WriteGem5 → reparse unchanged.
func FuzzParseGem5Line(f *testing.F) {
	f.Add("500: system.cpu.dcache: ReadReq addr=0x4000 size=8 thread=2")
	f.Add("1000: system.cpu.dcache: WriteReq addr=0xdeadbeef size=8 thread=0")
	f.Add("1500: system.mem_ctrl: ReadReq addr=0x80 size=64")
	f.Add("2000: system.cpu.icache: ReadReq addr=0x1000 size=8") // filtered
	f.Add("2500: system.cpu.dcache: CleanEvict addr=0x40 size=8")
	f.Add("no colon here")
	f.Add("abc: system.cpu.dcache: ReadReq addr=0x40")
	f.Add("300: system.cpu.dcache: ReadReq addr=0xqq size=8")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		e, ok, err := ParseGem5Line(line, 1)
		if err != nil || !ok {
			return
		}
		var buf bytes.Buffer
		if werr := WriteGem5(&buf, []Event{e}, 1); werr != nil {
			t.Fatalf("writer rejected parsed event %+v: %v", e, werr)
		}
		rendered := strings.TrimSuffix(buf.String(), "\n")
		e2, ok2, err2 := ParseGem5Line(rendered, 1)
		if err2 != nil || !ok2 {
			t.Fatalf("rendered line %q rejected: ok=%v err=%v", rendered, ok2, err2)
		}
		if e2 != e {
			t.Fatalf("round-trip mismatch: %+v -> %q -> %+v", e, rendered, e2)
		}
	})
}
