package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCompressedRoundTrip(t *testing.T) {
	events := randomEvents(2000, 5)
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("events = %d, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got[i], events[i])
		}
	}
}

func TestCompressedSmallerThanBinary(t *testing.T) {
	events := randomEvents(5000, 6)
	var fixed, comp bytes.Buffer
	if err := WriteBinary(&fixed, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteCompressed(&comp, events); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= fixed.Len() {
		t.Fatalf("compressed %d >= fixed %d bytes", comp.Len(), fixed.Len())
	}
	ratio := float64(fixed.Len()) / float64(comp.Len())
	if ratio < 1.5 {
		t.Fatalf("compression ratio = %.2f, want > 1.5", ratio)
	}
}

func TestCompressedEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("events = %d", len(got))
	}
}

func TestCompressedRejectsCycleRegression(t *testing.T) {
	events := []Event{
		{Cycle: 10, Op: Read, Addr: 1},
		{Cycle: 5, Op: Read, Addr: 2},
	}
	if err := WriteCompressed(&bytes.Buffer{}, events); err == nil {
		t.Fatal("expected cycle-regression error")
	}
}

func TestCompressedRejectsBadInput(t *testing.T) {
	if _, err := ReadCompressed(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadCompressed(bytes.NewReader([]byte("BOGUSmag"))); err == nil {
		t.Fatal("expected bad-magic error")
	}
	// Valid magic but truncated body.
	var buf bytes.Buffer
	if err := WriteCompressed(&buf, randomEvents(10, 7)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadCompressed(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
	if err := WriteCompressed(&bytes.Buffer{}, []Event{{Op: 'Q'}}); err == nil {
		t.Fatal("expected bad-op error")
	}
}

// Property: any ascending-cycle event stream round-trips exactly.
func TestPropCompressedRoundTrip(t *testing.T) {
	f := func(deltas []uint16, addrs []uint32, writes []bool) bool {
		n := len(deltas)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(writes) < n {
			n = len(writes)
		}
		events := make([]Event, n)
		cycle := uint64(0)
		for i := 0; i < n; i++ {
			cycle += uint64(deltas[i])
			op := Read
			if writes[i] {
				op = Write
			}
			events[i] = Event{Cycle: cycle, Op: op, Addr: uint64(addrs[i]), Thread: uint8(i % 4)}
		}
		var buf bytes.Buffer
		if WriteCompressed(&buf, events) != nil {
			return false
		}
		got, err := ReadCompressed(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
