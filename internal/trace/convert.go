package trace

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"

	"graphdse/internal/artifact"
)

// This file implements the trace conversion step of the workflow: extracting
// memory events from a gem5-style trace and rewriting them in the NVMain
// format. The paper (§III-D) reports that the sequential pass over its
// ~91.5M-line trace was a bottleneck and describes a parallel script that
// splits the input into user-sized chunks, converts the chunks in worker
// processes, and concatenates the per-chunk output in order, achieving
// linear speedup. ConvertParallel reproduces that design with goroutines.

// ConvertStats reports what a conversion pass did.
type ConvertStats struct {
	LinesIn   int64
	EventsOut int64
	BadLines  int64 // malformed lines dropped (permissive mode only)
	Chunks    int
	Workers   int
}

// WorkerGovernor is the degradation hook a resource governor offers the
// converter: a cap on worker counts and a verdict on whether the
// constant-memory streaming path is mandatory. *guard.Governor satisfies it;
// the interface keeps trace free of the dependency.
type WorkerGovernor interface {
	// Workers returns the permitted worker count for a named stage, possibly
	// below requested, recording the downshift.
	Workers(stage string, requested int) int
	// StreamingForced reports whether materializing paths must be avoided.
	StreamingForced() bool
}

// ConvertOptions parameterizes a conversion pass. The zero value converts
// strictly with automatic worker and chunk sizing.
type ConvertOptions struct {
	TicksPerCycle uint64
	Workers       int
	ChunkSize     int
	Text          TextOptions
	// Governor, when set, caps conversion workers under memory pressure and
	// reroutes ConvertParallelOpts through the streaming path.
	Governor WorkerGovernor
}

// checkBadLineBudget enforces the permissive-mode error budget over the
// aggregated per-chunk counts.
func (o *ConvertOptions) checkBadLineBudget(st *ConvertStats) error {
	if !o.Text.Strict && o.Text.MaxBadLines > 0 && st.BadLines > o.Text.MaxBadLines {
		return fmt.Errorf("%w: %d malformed lines, budget %d", ErrBadLineBudget, st.BadLines, o.Text.MaxBadLines)
	}
	return nil
}

// ConvertSequential converts a gem5-style stream to NVMain format one line
// at a time — the baseline the paper's parallel script is compared against.
func ConvertSequential(r io.Reader, w io.Writer, ticksPerCycle uint64) (ConvertStats, error) {
	return ConvertSequentialOpts(r, w, ConvertOptions{TicksPerCycle: ticksPerCycle, Text: TextOptions{Strict: true}})
}

// ConvertSequentialOpts is ConvertSequential with explicit options.
func ConvertSequentialOpts(r io.Reader, w io.Writer, opts ConvertOptions) (ConvertStats, error) {
	var st ConvertStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	bw := bufio.NewWriter(w)
	for sc.Scan() {
		st.LinesIn++
		e, ok, err := ParseGem5Line(sc.Text(), opts.TicksPerCycle)
		if err != nil {
			if opts.Text.Strict {
				return st, fmt.Errorf("line %d: %w", st.LinesIn, err)
			}
			st.BadLines++
			if berr := opts.checkBadLineBudget(&st); berr != nil {
				return st, fmt.Errorf("line %d: %w", st.LinesIn, berr)
			}
			continue
		}
		if !ok {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d %c 0x%X %d\n", e.Cycle, e.Op, e.Addr, e.Thread); err != nil {
			return st, err
		}
		st.EventsOut++
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	st.Chunks, st.Workers = 1, 1
	return st, bw.Flush()
}

// ConvertParallel converts an in-memory gem5-style trace to NVMain format
// using the paper's chunked scheme: the input is split into chunkSize-byte
// chunks aligned to line boundaries, each worker converts its chunks into a
// private buffer, and buffers are concatenated in input order so the output
// is byte-identical to the sequential conversion. workers <= 0 uses
// GOMAXPROCS; chunkSize <= 0 picks input/(8×workers) with a 64 KiB floor.
func ConvertParallel(input []byte, w io.Writer, ticksPerCycle uint64, workers, chunkSize int) (ConvertStats, error) {
	return ConvertParallelOpts(input, w, ConvertOptions{
		TicksPerCycle: ticksPerCycle, Workers: workers, ChunkSize: chunkSize,
		Text: TextOptions{Strict: true},
	})
}

// ConvertParallelOpts is ConvertParallel with explicit options. Under a
// governor reporting memory pressure it delegates to the streaming path,
// which bounds in-flight chunks instead of buffering every chunk's output at
// once.
func ConvertParallelOpts(input []byte, w io.Writer, opts ConvertOptions) (ConvertStats, error) {
	if opts.Governor != nil && opts.Governor.StreamingForced() {
		return ConvertStreamOpts(bytes.NewReader(input), w, opts)
	}
	var st ConvertStats
	workers, chunkSize := opts.Workers, opts.ChunkSize
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Governor != nil {
		workers = opts.Governor.Workers("convert", workers)
	}
	if chunkSize <= 0 {
		chunkSize = len(input) / (8 * workers)
		if chunkSize < 64*1024 {
			chunkSize = 64 * 1024
		}
	}
	chunks := splitChunks(input, chunkSize)
	st.Chunks = len(chunks)
	st.Workers = workers

	type result struct {
		buf   bytes.Buffer
		lines int64
		evts  int64
		bad   int64
		err   error
	}
	results := make([]result, len(chunks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ci, chunk := range chunks {
		wg.Add(1)
		go func(ci int, chunk []byte) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := &results[ci]
			res.lines, res.evts, res.bad, res.err = convertChunk(chunk, &res.buf, opts.TicksPerCycle, opts.Text)
		}(ci, chunk)
	}
	wg.Wait()
	bw := bufio.NewWriter(w)
	for ci := range results {
		if results[ci].err != nil {
			return st, fmt.Errorf("chunk %d: %w", ci, results[ci].err)
		}
		st.LinesIn += results[ci].lines
		st.EventsOut += results[ci].evts
		st.BadLines += results[ci].bad
		if err := opts.checkBadLineBudget(&st); err != nil {
			return st, err
		}
		if _, err := bw.Write(results[ci].buf.Bytes()); err != nil {
			return st, err
		}
	}
	return st, bw.Flush()
}

// ConvertStream converts a gem5-style stream to NVMain format with the
// chunked parallel scheme, without ever materializing the input: a reader
// goroutine cuts the stream into line-aligned chunks, a bounded worker pool
// converts them, and the output is written in input order. In-flight chunks
// are capped at ~2×workers, so peak memory is O(workers × chunkSize)
// regardless of input size — the property that lets the paper's 91.5M-line
// trace convert in constant memory. Output is byte-identical to
// ConvertSequential. workers <= 0 uses GOMAXPROCS; chunkSize <= 0 defaults
// to 1 MiB.
func ConvertStream(r io.Reader, w io.Writer, ticksPerCycle uint64, workers, chunkSize int) (ConvertStats, error) {
	return ConvertStreamOpts(r, w, ConvertOptions{
		TicksPerCycle: ticksPerCycle, Workers: workers, ChunkSize: chunkSize,
		Text: TextOptions{Strict: true},
	})
}

// ConvertStreamOpts is ConvertStream with explicit options.
func ConvertStreamOpts(r io.Reader, w io.Writer, opts ConvertOptions) (ConvertStats, error) {
	var st ConvertStats
	workers, chunkSize := opts.Workers, opts.ChunkSize
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Governor != nil {
		// Fewer workers also shrinks the in-flight chunk bound (2×workers),
		// which is what actually caps the converter's peak memory.
		workers = opts.Governor.Workers("convert", workers)
	}
	if chunkSize <= 0 {
		chunkSize = 1 << 20
	}
	st.Workers = workers

	type result struct {
		buf   bytes.Buffer
		lines int64
		evts  int64
		bad   int64
		err   error
	}
	type job struct {
		data []byte
		done chan *result
	}
	jobs := make(chan *job)
	// order carries jobs to the writer in input order; its capacity bounds
	// the number of in-flight chunks (and thus peak memory).
	order := make(chan *job, 2*workers)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res := &result{}
				res.lines, res.evts, res.bad, res.err = convertChunk(j.data, &res.buf, opts.TicksPerCycle, opts.Text)
				j.done <- res
			}
		}()
	}

	// Reader: cut line-aligned chunks off the stream.
	var readErr error
	go func() {
		defer close(jobs)
		defer close(order)
		br := bufio.NewReaderSize(r, 64*1024)
		for {
			buf := make([]byte, chunkSize, chunkSize+256)
			n, err := io.ReadFull(br, buf)
			buf = buf[:n]
			if err == io.EOF && n == 0 {
				return
			}
			if err == nil {
				// Chunk is full: extend it to the next line boundary so no
				// line is split across chunks.
				if len(buf) > 0 && buf[len(buf)-1] != '\n' {
					tail, terr := br.ReadBytes('\n')
					buf = append(buf, tail...)
					if terr != nil && terr != io.EOF {
						readErr = terr
						return
					}
				}
			} else if !errors.Is(err, io.ErrUnexpectedEOF) && err != io.EOF {
				readErr = err
				return
			}
			j := &job{data: buf, done: make(chan *result, 1)}
			order <- j // blocks when too many chunks are in flight
			jobs <- j
			if err != nil {
				return // short read: stream exhausted
			}
		}
	}()

	bw := bufio.NewWriter(w)
	var convErr error
	for j := range order {
		res := <-j.done
		if convErr != nil || res.err != nil {
			if convErr == nil {
				convErr = fmt.Errorf("chunk %d: %w", st.Chunks, res.err)
			}
			st.Chunks++
			continue // drain remaining jobs so goroutines exit
		}
		st.Chunks++
		st.LinesIn += res.lines
		st.EventsOut += res.evts
		st.BadLines += res.bad
		if err := opts.checkBadLineBudget(&st); err != nil && convErr == nil {
			convErr = err
			continue
		}
		if _, err := bw.Write(res.buf.Bytes()); err != nil && convErr == nil {
			convErr = err
		}
	}
	wg.Wait()
	if convErr != nil {
		return st, convErr
	}
	if readErr != nil {
		return st, readErr
	}
	return st, bw.Flush()
}

// ConvertFileParallel is the file-to-file variant used by cmd/traceconv. It
// streams the input through ConvertStream — the file is never loaded into
// memory, fixing the os.ReadFile bottleneck for paper-scale traces. A
// chunkSize <= 0 is derived from the file size as before (size/(8×workers)
// with a 64 KiB floor).
func ConvertFileParallel(inPath, outPath string, ticksPerCycle uint64, workers, chunkSize int) (ConvertStats, error) {
	return ConvertFileParallelOpts(inPath, outPath, ConvertOptions{
		TicksPerCycle: ticksPerCycle, Workers: workers, ChunkSize: chunkSize,
		Text: TextOptions{Strict: true},
	})
}

// ConvertFileParallelOpts is ConvertFileParallel with explicit options. The
// output file is written atomically: a failed or interrupted conversion
// leaves any existing file at outPath untouched.
func ConvertFileParallelOpts(inPath, outPath string, opts ConvertOptions) (ConvertStats, error) {
	in, err := os.Open(inPath)
	if err != nil {
		return ConvertStats{}, err
	}
	defer in.Close()
	if opts.ChunkSize <= 0 {
		if fi, err := in.Stat(); err == nil {
			workers := opts.Workers
			if workers <= 0 {
				workers = runtime.GOMAXPROCS(0)
			}
			opts.ChunkSize = int(fi.Size()) / (8 * workers)
		}
		if opts.ChunkSize < 64*1024 {
			opts.ChunkSize = 64 * 1024
		}
	}
	var st ConvertStats
	err = artifact.WriteFileAtomic(outPath, 0o644, func(w io.Writer) error {
		var cerr error
		st, cerr = ConvertStreamOpts(in, w, opts)
		return cerr
	})
	return st, err
}

// splitChunks slices input into ~chunkSize pieces ending on newline
// boundaries. The final chunk takes any trailing bytes without a newline.
func splitChunks(input []byte, chunkSize int) [][]byte {
	var chunks [][]byte
	for start := 0; start < len(input); {
		end := start + chunkSize
		if end >= len(input) {
			chunks = append(chunks, input[start:])
			break
		}
		nl := bytes.IndexByte(input[end:], '\n')
		if nl < 0 {
			chunks = append(chunks, input[start:])
			break
		}
		end += nl + 1
		chunks = append(chunks, input[start:end])
		start = end
	}
	return chunks
}

// convertChunk converts the lines of one chunk into buf. In permissive mode
// malformed lines are dropped and counted; the budget is enforced by the
// caller over the aggregated counts.
func convertChunk(chunk []byte, buf *bytes.Buffer, ticksPerCycle uint64, text TextOptions) (lines, events, bad int64, err error) {
	var numBuf [20]byte
	for len(chunk) > 0 {
		var line []byte
		if nl := bytes.IndexByte(chunk, '\n'); nl >= 0 {
			line = chunk[:nl]
			chunk = chunk[nl+1:]
		} else {
			line = chunk
			chunk = nil
		}
		lines++
		e, ok, perr := ParseGem5Line(string(line), ticksPerCycle)
		if perr != nil {
			if text.Strict {
				return lines, events, bad, perr
			}
			bad++
			continue
		}
		if !ok {
			continue
		}
		buf.Write(strconv.AppendUint(numBuf[:0], e.Cycle, 10))
		buf.WriteByte(' ')
		buf.WriteByte(byte(e.Op))
		buf.WriteString(" 0x")
		buf.Write(upperHex(numBuf[:0], e.Addr))
		buf.WriteByte(' ')
		buf.Write(strconv.AppendUint(numBuf[:0], uint64(e.Thread), 10))
		buf.WriteByte('\n')
		events++
	}
	return lines, events, bad, nil
}

// upperHex appends the uppercase hex form of v to dst (matching %X).
func upperHex(dst []byte, v uint64) []byte {
	const digits = "0123456789ABCDEF"
	if v == 0 {
		return append(dst, '0')
	}
	var tmp [16]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = digits[v&0xF]
		v >>= 4
	}
	return append(dst, tmp[i:]...)
}
