package trace

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the streaming core of the trace pipeline. The paper's
// workflow moves a ~91.5M-line trace between four tools (system simulator →
// converter → memory simulator → DSE); materializing it as a []Event at
// every hop is what bounds the repro to toy traces. Source and Sink make the
// trace a stream: every text/binary format gains a constant-memory reader
// and writer, and the slice-based helpers are retained as thin adapters.

// DefaultBatch is the batch size used by the package's own streaming loops.
// It is large enough to amortize interface-call overhead and small enough to
// stay cache-resident.
const DefaultBatch = 4096

// Source is a pull-based stream of trace events.
//
// Next fills batch with as many events as are available (at least one, at
// most len(batch)) and returns the count. At end of stream it returns 0 and
// io.EOF; it never returns n > 0 together with a non-nil error. A Source is
// single-use and not safe for concurrent calls.
type Source interface {
	Next(batch []Event) (n int, err error)
}

// Sink consumes batches of trace events. Emit may retain nothing from the
// batch after it returns; callers are free to reuse the slice.
type Sink interface {
	Emit(events []Event) error
}

// SliceSource adapts an in-memory []Event to the Source interface. It does
// not copy the backing slice; callers must not mutate it while streaming.
type SliceSource struct {
	events []Event
	pos    int
}

// NewSliceSource returns a Source reading from events.
func NewSliceSource(events []Event) *SliceSource {
	return &SliceSource{events: events}
}

// Next implements Source.
func (s *SliceSource) Next(batch []Event) (int, error) {
	if s.pos >= len(s.events) {
		return 0, io.EOF
	}
	n := copy(batch, s.events[s.pos:])
	s.pos += n
	return n, nil
}

// Len returns the number of events remaining in the source.
func (s *SliceSource) Len() int { return len(s.events) - s.pos }

// SliceSink accumulates emitted events into Events.
type SliceSink struct {
	Events []Event
}

// Emit implements Sink.
func (s *SliceSink) Emit(events []Event) error {
	s.Events = append(s.Events, events...)
	return nil
}

// Collect drains a source into a slice.
func Collect(src Source) ([]Event, error) {
	var out []Event
	batch := make([]Event, DefaultBatch)
	for {
		n, err := src.Next(batch)
		out = append(out, batch[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
}

// Copy streams every event from src into dst, returning the number of
// events moved. It does not flush dst.
func Copy(dst Sink, src Source) (int64, error) {
	var total int64
	batch := make([]Event, DefaultBatch)
	for {
		n, err := src.Next(batch)
		if n > 0 {
			if serr := dst.Emit(batch[:n]); serr != nil {
				return total, serr
			}
			total += int64(n)
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// ForEach drains a source one event at a time, stopping on the first error
// returned by fn.
func ForEach(src Source, fn func(Event) error) error {
	batch := make([]Event, DefaultBatch)
	for {
		n, err := src.Next(batch)
		for _, e := range batch[:n] {
			if ferr := fn(e); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// lineSource streams events from a line-oriented text format.
type lineSource struct {
	sc     *bufio.Scanner
	parse  func(string) (Event, bool, error)
	lineNo int64
	err    error
}

func newLineSource(r io.Reader, parse func(string) (Event, bool, error)) *lineSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &lineSource{sc: sc, parse: parse}
}

func (s *lineSource) Next(batch []Event) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n := 0
	for n < len(batch) {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				s.err = err
			} else {
				s.err = io.EOF
			}
			break
		}
		s.lineNo++
		e, ok, err := s.parse(s.sc.Text())
		if err != nil {
			s.err = fmt.Errorf("line %d: %w", s.lineNo, err)
			break
		}
		if !ok {
			continue
		}
		batch[n] = e
		n++
	}
	if n > 0 {
		return n, nil
	}
	return 0, s.err
}

// NewGem5Source streams memory events from a gem5-style text trace,
// skipping non-memory lines, in constant memory.
func NewGem5Source(r io.Reader, ticksPerCycle uint64) Source {
	return newLineSource(r, func(line string) (Event, bool, error) {
		return ParseGem5Line(line, ticksPerCycle)
	})
}

// NewNVMainSource streams events from an NVMain-format text trace in
// constant memory.
func NewNVMainSource(r io.Reader) Source {
	return newLineSource(r, ParseNVMainLine)
}

// BinarySource streams events from the binary trace format.
type BinarySource struct {
	br     *bufio.Reader
	header bool
	err    error
}

// NewBinarySource returns a Source decoding the binary trace format from r.
// The magic header is checked on the first Next call.
func NewBinarySource(r io.Reader) *BinarySource {
	return &BinarySource{br: bufio.NewReader(r)}
}

// Next implements Source.
func (s *BinarySource) Next(batch []Event) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if !s.header {
		var magic [8]byte
		if _, err := io.ReadFull(s.br, magic[:]); err != nil {
			s.err = fmt.Errorf("%w: missing magic: %v", ErrFormat, err)
			return 0, s.err
		}
		if magic != binaryMagic {
			s.err = fmt.Errorf("%w: bad magic %q", ErrFormat, magic[:])
			return 0, s.err
		}
		s.header = true
	}
	n := 0
	var rec [binaryRecordSize]byte
	for n < len(batch) {
		_, err := io.ReadFull(s.br, rec[:])
		if err == io.EOF {
			s.err = io.EOF
			break
		}
		if err != nil {
			s.err = fmt.Errorf("%w: truncated record: %v", ErrFormat, err)
			break
		}
		e := Event{
			Cycle:  binary.LittleEndian.Uint64(rec[0:8]),
			Addr:   binary.LittleEndian.Uint64(rec[8:16]),
			Op:     Op(rec[16]),
			Thread: rec[17],
		}
		if verr := e.Validate(); verr != nil {
			s.err = verr
			break
		}
		batch[n] = e
		n++
	}
	if n > 0 {
		return n, nil
	}
	return 0, s.err
}

// NVMainSink streams events to w in NVMain text format.
type NVMainSink struct {
	bw *bufio.Writer
}

// NewNVMainSink returns a Sink writing NVMain-format text to w.
func NewNVMainSink(w io.Writer) *NVMainSink {
	return &NVMainSink{bw: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (s *NVMainSink) Emit(events []Event) error {
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		if err := appendNVMainLine(s.bw, e); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any buffered output to the underlying writer.
func (s *NVMainSink) Flush() error { return s.bw.Flush() }

// Gem5Sink streams events to w in the gem5-style text format.
type Gem5Sink struct {
	bw    *bufio.Writer
	ticks uint64
}

// NewGem5Sink returns a Sink writing gem5-style text to w; ticksPerCycle
// scales cycles to simulator ticks (0 means 1).
func NewGem5Sink(w io.Writer, ticksPerCycle uint64) *Gem5Sink {
	if ticksPerCycle == 0 {
		ticksPerCycle = 1
	}
	return &Gem5Sink{bw: bufio.NewWriter(w), ticks: ticksPerCycle}
}

// Emit implements Sink.
func (s *Gem5Sink) Emit(events []Event) error {
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		req := "ReadReq"
		if e.Op == Write {
			req = "WriteReq"
		}
		if _, err := fmt.Fprintf(s.bw, "%d: system.cpu.dcache: %s addr=0x%x size=8 thread=%d\n",
			e.Cycle*s.ticks, req, e.Addr, e.Thread); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any buffered output to the underlying writer.
func (s *Gem5Sink) Flush() error { return s.bw.Flush() }

// BinarySink streams events to w in the binary trace format.
type BinarySink struct {
	bw     *bufio.Writer
	header bool
}

// NewBinarySink returns a Sink writing the binary trace format to w. The
// magic header is written lazily, before the first record (or by Flush for
// an empty trace).
func NewBinarySink(w io.Writer) *BinarySink {
	return &BinarySink{bw: bufio.NewWriter(w)}
}

func (s *BinarySink) writeHeader() error {
	if s.header {
		return nil
	}
	s.header = true
	_, err := s.bw.Write(binaryMagic[:])
	return err
}

// Emit implements Sink.
func (s *BinarySink) Emit(events []Event) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	var rec [binaryRecordSize]byte
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(rec[0:8], e.Cycle)
		binary.LittleEndian.PutUint64(rec[8:16], e.Addr)
		rec[16] = byte(e.Op)
		rec[17] = e.Thread
		if _, err := s.bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes the header (if still pending) and any buffered output.
func (s *BinarySink) Flush() error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	return s.bw.Flush()
}

// mergeSource is a heap-based k-way streaming merge: only one read-ahead
// batch per input is resident, so merging k paper-scale traces needs
// k × DefaultBatch events of memory, not the sum of their lengths.
type mergeSource struct {
	stride uint64
	srcs   []Source
	bufs   [][]Event
	pos    []int // cursor into bufs[i]
	n      []int // valid events in bufs[i]
	heap   []int // source indices, min-heap on (head cycle, index)
	init   bool
	err    error
}

// MergeSources interleaves multiple sources into one time-ordered stream
// with Merge's exact semantics: each input's addresses are offset into a
// disjoint window (addrStride per input, 0 keeps original addresses) and
// events are retagged with their input index as the thread ID. Ties on
// cycle are broken by input order. The merge is streaming — memory use is
// bounded by one read-ahead batch per input.
func MergeSources(addrStride uint64, srcs ...Source) Source {
	return &mergeSource{stride: addrStride, srcs: srcs}
}

// heap.Interface over source indices, keyed by each source's head event.
func (m *mergeSource) Len() int { return len(m.heap) }
func (m *mergeSource) Less(a, b int) bool {
	ia, ib := m.heap[a], m.heap[b]
	ca, cb := m.bufs[ia][m.pos[ia]].Cycle, m.bufs[ib][m.pos[ib]].Cycle
	if ca != cb {
		return ca < cb
	}
	return ia < ib
}
func (m *mergeSource) Swap(a, b int) { m.heap[a], m.heap[b] = m.heap[b], m.heap[a] }
func (m *mergeSource) Push(x any)    { m.heap = append(m.heap, x.(int)) }
func (m *mergeSource) Pop() any {
	x := m.heap[len(m.heap)-1]
	m.heap = m.heap[:len(m.heap)-1]
	return x
}

// fill loads the next batch of source i, returning false when exhausted.
func (m *mergeSource) fill(i int) bool {
	n, err := m.srcs[i].Next(m.bufs[i])
	m.pos[i], m.n[i] = 0, n
	if err != nil && err != io.EOF {
		m.err = err
	}
	return n > 0
}

func (m *mergeSource) start() {
	m.init = true
	m.bufs = make([][]Event, len(m.srcs))
	m.pos = make([]int, len(m.srcs))
	m.n = make([]int, len(m.srcs))
	for i := range m.srcs {
		m.bufs[i] = make([]Event, DefaultBatch)
		if m.fill(i) {
			m.heap = append(m.heap, i)
		}
		if m.err != nil {
			return
		}
	}
	heap.Init(m)
}

// Next implements Source.
func (m *mergeSource) Next(batch []Event) (int, error) {
	if !m.init {
		m.start()
	}
	if m.err != nil {
		return 0, m.err
	}
	k := 0
	for k < len(batch) && len(m.heap) > 0 {
		i := m.heap[0]
		e := m.bufs[i][m.pos[i]]
		e.Addr += uint64(i) * m.stride
		e.Thread = uint8(i)
		batch[k] = e
		k++
		m.pos[i]++
		if m.pos[i] >= m.n[i] && !m.fill(i) {
			if m.err != nil {
				break
			}
			heap.Remove(m, 0)
			continue
		}
		heap.Fix(m, 0)
	}
	if k > 0 {
		return k, nil
	}
	if m.err != nil {
		return 0, m.err
	}
	return 0, io.EOF
}
