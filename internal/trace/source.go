package trace

import (
	"bufio"
	"container/heap"
	"errors"
	"fmt"
	"io"

	"graphdse/internal/artifact"
)

// This file is the streaming core of the trace pipeline. The paper's
// workflow moves a ~91.5M-line trace between four tools (system simulator →
// converter → memory simulator → DSE); materializing it as a []Event at
// every hop is what bounds the repro to toy traces. Source and Sink make the
// trace a stream: every text/binary format gains a constant-memory reader
// and writer, and the slice-based helpers are retained as thin adapters.

// DefaultBatch is the batch size used by the package's own streaming loops.
// It is large enough to amortize interface-call overhead and small enough to
// stay cache-resident.
const DefaultBatch = 4096

// Source is a pull-based stream of trace events.
//
// Next fills batch with as many events as are available (at least one, at
// most len(batch)) and returns the count. At end of stream it returns 0 and
// io.EOF; it never returns n > 0 together with a non-nil error. A Source is
// single-use and not safe for concurrent calls.
type Source interface {
	Next(batch []Event) (n int, err error)
}

// Sink consumes batches of trace events. Emit may retain nothing from the
// batch after it returns; callers are free to reuse the slice.
type Sink interface {
	Emit(events []Event) error
}

// SliceSource adapts an in-memory []Event to the Source interface. It does
// not copy the backing slice; callers must not mutate it while streaming.
type SliceSource struct {
	events []Event
	pos    int
}

// NewSliceSource returns a Source reading from events.
func NewSliceSource(events []Event) *SliceSource {
	return &SliceSource{events: events}
}

// Next implements Source.
func (s *SliceSource) Next(batch []Event) (int, error) {
	if s.pos >= len(s.events) {
		return 0, io.EOF
	}
	n := copy(batch, s.events[s.pos:])
	s.pos += n
	return n, nil
}

// Len returns the number of events remaining in the source.
func (s *SliceSource) Len() int { return len(s.events) - s.pos }

// SliceSink accumulates emitted events into Events.
type SliceSink struct {
	Events []Event
}

// Emit implements Sink.
func (s *SliceSink) Emit(events []Event) error {
	s.Events = append(s.Events, events...)
	return nil
}

// Collect drains a source into a slice.
func Collect(src Source) ([]Event, error) {
	var out []Event
	batch := make([]Event, DefaultBatch)
	for {
		n, err := src.Next(batch)
		out = append(out, batch[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
}

// Copy streams every event from src into dst, returning the number of
// events moved. It does not flush dst.
func Copy(dst Sink, src Source) (int64, error) {
	var total int64
	batch := make([]Event, DefaultBatch)
	for {
		n, err := src.Next(batch)
		if n > 0 {
			if serr := dst.Emit(batch[:n]); serr != nil {
				return total, serr
			}
			total += int64(n)
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// ForEach drains a source one event at a time, stopping on the first error
// returned by fn.
func ForEach(src Source, fn func(Event) error) error {
	batch := make([]Event, DefaultBatch)
	for {
		n, err := src.Next(batch)
		for _, e := range batch[:n] {
			if ferr := fn(e); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// TextSource streams events from a line-oriented text format. In strict
// mode (the default) the first malformed line fails the stream; in
// permissive mode malformed lines are dropped and recorded against the
// error budget, and Report says exactly what was skipped.
type TextSource struct {
	sc     *bufio.Scanner
	parse  func(string) (Event, bool, error)
	opts   TextOptions
	report TextReport
	err    error
}

func newTextSource(r io.Reader, opts TextOptions, parse func(string) (Event, bool, error)) *TextSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return &TextSource{sc: sc, parse: parse, opts: opts}
}

// Report returns the running parse accounting. It is complete once Next has
// returned a terminal error (io.EOF or otherwise).
func (s *TextSource) Report() *TextReport { return &s.report }

func (s *TextSource) Next(batch []Event) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	n := 0
	for n < len(batch) {
		if !s.sc.Scan() {
			if err := s.sc.Err(); err != nil {
				s.err = err
			} else {
				s.err = io.EOF
			}
			break
		}
		s.report.Lines++
		e, ok, err := s.parse(s.sc.Text())
		if err != nil {
			if s.opts.Strict {
				s.err = fmt.Errorf("line %d: %w", s.report.Lines, err)
				break
			}
			s.report.addBadLine(s.report.Lines, s.sc.Text(), err)
			if s.opts.MaxBadLines > 0 && s.report.BadLines > s.opts.MaxBadLines {
				s.err = fmt.Errorf("line %d: %w (%d malformed lines, budget %d)",
					s.report.Lines, ErrBadLineBudget, s.report.BadLines, s.opts.MaxBadLines)
				break
			}
			continue
		}
		if !ok {
			continue
		}
		s.report.Events++
		batch[n] = e
		n++
	}
	if n > 0 {
		return n, nil
	}
	return 0, s.err
}

// NewGem5Source streams memory events from a gem5-style text trace,
// skipping non-memory lines, in constant memory. Malformed lines fail the
// stream; NewGem5SourceOpts selects permissive parsing.
func NewGem5Source(r io.Reader, ticksPerCycle uint64) Source {
	return NewGem5SourceOpts(r, ticksPerCycle, TextOptions{Strict: true})
}

// NewGem5SourceOpts streams a gem5-style text trace under the given
// strict/permissive options.
func NewGem5SourceOpts(r io.Reader, ticksPerCycle uint64, opts TextOptions) *TextSource {
	return newTextSource(r, opts, func(line string) (Event, bool, error) {
		return ParseGem5Line(line, ticksPerCycle)
	})
}

// NewNVMainSource streams events from an NVMain-format text trace in
// constant memory. Malformed lines fail the stream; NewNVMainSourceOpts
// selects permissive parsing.
func NewNVMainSource(r io.Reader) Source {
	return NewNVMainSourceOpts(r, TextOptions{Strict: true})
}

// NewNVMainSourceOpts streams an NVMain-format text trace under the given
// strict/permissive options.
func NewNVMainSourceOpts(r io.Reader, opts TextOptions) *TextSource {
	return newTextSource(r, opts, ParseNVMainLine)
}

// BinarySource streams events from the binary trace format, accepting both
// the legacy v1 layout and the checksummed v2 container (auto-detected from
// the magic on the first Next call). In the v2 path every event handed out
// comes from a checksum-verified block.
type BinarySource struct {
	br      *bufio.Reader
	version binaryVersion
	blocks  *artifact.BlockReader

	// pending holds decoded events from the current v2 block.
	pending []Event
	pos     int

	records   uint64 // events handed out so far
	truncated bool   // terminal error was a torn read
	corrupt   bool   // terminal error was detected damage
	headerErr bool   // stream unusable from the start (bad magic)
	err       error
}

// NewBinarySource returns a Source decoding the binary trace format from r.
// The magic header is checked on the first Next call.
func NewBinarySource(r io.Reader) *BinarySource {
	return &BinarySource{br: bufio.NewReader(r)}
}

func (s *BinarySource) fail(truncated, corrupt bool, err error) error {
	s.truncated, s.corrupt = truncated, corrupt
	s.err = err
	return err
}

func (s *BinarySource) start() error {
	v, err := sniffBinary(s.br)
	if err != nil {
		s.headerErr = true
		return s.fail(false, true, err)
	}
	s.version = v
	if v == binaryV1 {
		if _, err := io.ReadFull(s.br, make([]byte, 8)); err != nil {
			s.headerErr = true
			return s.fail(true, false, fmt.Errorf("%w: missing magic: %v", ErrFormat, err))
		}
		return nil
	}
	blocks, err := artifact.NewBlockReader(s.br)
	if err != nil {
		s.headerErr = true
		return s.fail(errors.Is(err, artifact.ErrTruncated), errors.Is(err, artifact.ErrCorrupt),
			fmt.Errorf("%w: %w", ErrFormat, err))
	}
	if blocks.Format() != BinaryFormatTag {
		s.headerErr = true
		return s.fail(false, true, fmt.Errorf("%w: container holds %q, want %q", ErrFormat, blocks.Format(), BinaryFormatTag))
	}
	if blocks.Version() > BinaryFormatVersion {
		s.headerErr = true
		return s.fail(false, true, fmt.Errorf("%w: trace format version %d newer than supported %d",
			ErrFormat, blocks.Version(), BinaryFormatVersion))
	}
	s.blocks = blocks
	return nil
}

// nextV1 serves records from the bare v1 stream.
func (s *BinarySource) nextV1(batch []Event) (int, error) {
	n := 0
	var rec [binaryRecordSize]byte
	for n < len(batch) {
		_, err := io.ReadFull(s.br, rec[:])
		if err == io.EOF {
			s.err = io.EOF
			break
		}
		if err != nil {
			s.fail(true, false, fmt.Errorf("%w: truncated record %d: %v", ErrFormat, s.records, err))
			break
		}
		e := decodeBinaryRecord(rec[:])
		if verr := e.Validate(); verr != nil {
			s.fail(false, true, fmt.Errorf("record %d: %w", s.records, verr))
			break
		}
		batch[n] = e
		n++
		s.records++
	}
	if n > 0 {
		return n, nil
	}
	return 0, s.err
}

// fillV2 decodes the next verified container block into pending.
func (s *BinarySource) fillV2() error {
	payload, records, err := s.blocks.Next()
	if err == io.EOF {
		return s.fail(false, false, io.EOF)
	}
	if err != nil {
		return s.fail(errors.Is(err, artifact.ErrTruncated), errors.Is(err, artifact.ErrCorrupt),
			fmt.Errorf("%w: %w", ErrFormat, err))
	}
	if len(payload)%binaryRecordSize != 0 || int(records)*binaryRecordSize != len(payload) {
		return s.fail(false, true, fmt.Errorf("%w: block %d payload %d bytes does not hold %d records",
			ErrFormat, s.blocks.Blocks()-1, len(payload), records))
	}
	if cap(s.pending) < int(records) {
		s.pending = make([]Event, records)
	}
	s.pending = s.pending[:records]
	for i := range s.pending {
		e := decodeBinaryRecord(payload[i*binaryRecordSize:])
		if verr := e.Validate(); verr != nil {
			s.pending = s.pending[:0]
			return s.fail(false, true, fmt.Errorf("block %d record %d: %w", s.blocks.Blocks()-1, i, verr))
		}
		s.pending[i] = e
	}
	s.pos = 0
	return nil
}

// Next implements Source.
func (s *BinarySource) Next(batch []Event) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if s.version == binaryUnknown {
		if err := s.start(); err != nil {
			return 0, err
		}
	}
	if s.version == binaryV1 {
		return s.nextV1(batch)
	}
	n := 0
	for n < len(batch) {
		if s.pos >= len(s.pending) {
			if err := s.fillV2(); err != nil {
				break
			}
		}
		c := copy(batch[n:], s.pending[s.pos:])
		s.pos += c
		n += c
		s.records += uint64(c)
	}
	if n > 0 {
		return n, nil
	}
	return 0, s.err
}

// salvageReport describes how far the source got and why it stopped, for
// ReadBinarySalvage.
func (s *BinarySource) salvageReport(err error) *artifact.SalvageReport {
	rep := &artifact.SalvageReport{
		Format:       BinaryFormatTag,
		RecordsKept:  s.records,
		DroppedBytes: -1,
		Truncated:    s.truncated,
		Corrupt:      s.corrupt,
	}
	if s.version == binaryV1 {
		rep.Format = BinaryFormatTag + "/v1"
		rep.BytesKept = 8 + int64(s.records)*binaryRecordSize
	} else if s.blocks != nil {
		rep.BlocksKept = s.blocks.Blocks()
		rep.BytesKept = s.blocks.BytesVerified()
	}
	if err != nil && err != io.EOF {
		rep.Reason = err.Error()
		if !rep.Truncated && !rep.Corrupt {
			rep.Corrupt = true
		}
	}
	return rep
}

// SalvageSource adapts a BinarySource into permissive mode for streaming
// consumers: a terminal corruption or truncation error after at least the
// header was valid ends the stream like clean EOF, keeping the verified
// prefix, and Report says what was lost. Bad magic and plain I/O errors
// still fail — there is nothing to salvage from those.
type SalvageSource struct {
	src *BinarySource
	rep *artifact.SalvageReport
}

// NewSalvageSource wraps src in prefix-salvaging mode.
func NewSalvageSource(src *BinarySource) *SalvageSource {
	return &SalvageSource{src: src}
}

// Report returns the salvage accounting, or nil while the stream is clean.
func (s *SalvageSource) Report() *artifact.SalvageReport { return s.rep }

// Next implements Source.
func (s *SalvageSource) Next(batch []Event) (int, error) {
	if s.rep != nil {
		return 0, io.EOF
	}
	n, err := s.src.Next(batch)
	if err != nil && err != io.EOF && !s.src.headerErr && (s.src.truncated || s.src.corrupt) {
		s.rep = s.src.salvageReport(err)
		if n > 0 {
			return n, nil
		}
		return 0, io.EOF
	}
	return n, err
}

// NVMainSink streams events to w in NVMain text format.
type NVMainSink struct {
	bw *bufio.Writer
}

// NewNVMainSink returns a Sink writing NVMain-format text to w.
func NewNVMainSink(w io.Writer) *NVMainSink {
	return &NVMainSink{bw: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (s *NVMainSink) Emit(events []Event) error {
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		if err := appendNVMainLine(s.bw, e); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any buffered output to the underlying writer.
func (s *NVMainSink) Flush() error { return s.bw.Flush() }

// Gem5Sink streams events to w in the gem5-style text format.
type Gem5Sink struct {
	bw    *bufio.Writer
	ticks uint64
}

// NewGem5Sink returns a Sink writing gem5-style text to w; ticksPerCycle
// scales cycles to simulator ticks (0 means 1).
func NewGem5Sink(w io.Writer, ticksPerCycle uint64) *Gem5Sink {
	if ticksPerCycle == 0 {
		ticksPerCycle = 1
	}
	return &Gem5Sink{bw: bufio.NewWriter(w), ticks: ticksPerCycle}
}

// Emit implements Sink.
func (s *Gem5Sink) Emit(events []Event) error {
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		req := "ReadReq"
		if e.Op == Write {
			req = "WriteReq"
		}
		if _, err := fmt.Fprintf(s.bw, "%d: system.cpu.dcache: %s addr=0x%x size=8 thread=%d\n",
			e.Cycle*s.ticks, req, e.Addr, e.Thread); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes any buffered output to the underlying writer.
func (s *Gem5Sink) Flush() error { return s.bw.Flush() }

// BinarySink streams events to w in the checksummed v2 binary trace format,
// buffering records into container blocks of binaryBlockRecords events.
// Flush seals the container (writing the trailer); a sealed sink accepts no
// further events.
type BinarySink struct {
	bw      *bufio.Writer
	blocks  *artifact.BlockWriter
	buf     []byte
	records uint32
	sealed  bool
}

// NewBinarySink returns a Sink writing the binary trace format to w. The
// container header is written lazily, before the first record (or by Flush
// for an empty trace).
func NewBinarySink(w io.Writer) *BinarySink {
	return &BinarySink{bw: bufio.NewWriter(w)}
}

func (s *BinarySink) writeHeader() error {
	if s.blocks != nil {
		return nil
	}
	blocks, err := artifact.NewBlockWriter(s.bw, BinaryFormatTag, BinaryFormatVersion)
	if err != nil {
		return err
	}
	s.blocks = blocks
	s.buf = make([]byte, 0, binaryBlockRecords*binaryRecordSize)
	return nil
}

func (s *BinarySink) flushBlock() error {
	if s.records == 0 {
		return nil
	}
	if err := s.blocks.WriteBlock(s.buf, s.records); err != nil {
		return err
	}
	s.buf = s.buf[:0]
	s.records = 0
	return nil
}

// Emit implements Sink.
func (s *BinarySink) Emit(events []Event) error {
	if s.sealed {
		return fmt.Errorf("%w: emit to sealed binary sink", ErrFormat)
	}
	if err := s.writeHeader(); err != nil {
		return err
	}
	var rec [binaryRecordSize]byte
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return err
		}
		encodeBinaryRecord(rec[:], e)
		s.buf = append(s.buf, rec[:]...)
		s.records++
		if s.records == binaryBlockRecords {
			if err := s.flushBlock(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush writes any buffered block, seals the container with its trailer,
// and flushes the underlying writer. The sink cannot be written after.
func (s *BinarySink) Flush() error {
	if s.sealed {
		return s.bw.Flush()
	}
	if err := s.writeHeader(); err != nil {
		return err
	}
	if err := s.flushBlock(); err != nil {
		return err
	}
	if err := s.blocks.Close(); err != nil {
		return err
	}
	s.sealed = true
	return s.bw.Flush()
}

// mergeSource is a heap-based k-way streaming merge: only one read-ahead
// batch per input is resident, so merging k paper-scale traces needs
// k × DefaultBatch events of memory, not the sum of their lengths.
type mergeSource struct {
	stride uint64
	srcs   []Source
	bufs   [][]Event
	pos    []int // cursor into bufs[i]
	n      []int // valid events in bufs[i]
	heap   []int // source indices, min-heap on (head cycle, index)
	init   bool
	err    error
}

// MergeSources interleaves multiple sources into one time-ordered stream
// with Merge's exact semantics: each input's addresses are offset into a
// disjoint window (addrStride per input, 0 keeps original addresses) and
// events are retagged with their input index as the thread ID. Ties on
// cycle are broken by input order. The merge is streaming — memory use is
// bounded by one read-ahead batch per input.
func MergeSources(addrStride uint64, srcs ...Source) Source {
	return &mergeSource{stride: addrStride, srcs: srcs}
}

// heap.Interface over source indices, keyed by each source's head event.
func (m *mergeSource) Len() int { return len(m.heap) }
func (m *mergeSource) Less(a, b int) bool {
	ia, ib := m.heap[a], m.heap[b]
	ca, cb := m.bufs[ia][m.pos[ia]].Cycle, m.bufs[ib][m.pos[ib]].Cycle
	if ca != cb {
		return ca < cb
	}
	return ia < ib
}
func (m *mergeSource) Swap(a, b int) { m.heap[a], m.heap[b] = m.heap[b], m.heap[a] }
func (m *mergeSource) Push(x any)    { m.heap = append(m.heap, x.(int)) }
func (m *mergeSource) Pop() any {
	x := m.heap[len(m.heap)-1]
	m.heap = m.heap[:len(m.heap)-1]
	return x
}

// fill loads the next batch of source i, returning false when exhausted.
func (m *mergeSource) fill(i int) bool {
	n, err := m.srcs[i].Next(m.bufs[i])
	m.pos[i], m.n[i] = 0, n
	if err != nil && err != io.EOF {
		m.err = err
	}
	return n > 0
}

func (m *mergeSource) start() {
	m.init = true
	m.bufs = make([][]Event, len(m.srcs))
	m.pos = make([]int, len(m.srcs))
	m.n = make([]int, len(m.srcs))
	for i := range m.srcs {
		m.bufs[i] = make([]Event, DefaultBatch)
		if m.fill(i) {
			m.heap = append(m.heap, i)
		}
		if m.err != nil {
			return
		}
	}
	heap.Init(m)
}

// Next implements Source.
func (m *mergeSource) Next(batch []Event) (int, error) {
	if !m.init {
		m.start()
	}
	if m.err != nil {
		return 0, m.err
	}
	k := 0
	for k < len(batch) && len(m.heap) > 0 {
		i := m.heap[0]
		e := m.bufs[i][m.pos[i]]
		e.Addr += uint64(i) * m.stride
		e.Thread = uint8(i)
		batch[k] = e
		k++
		m.pos[i]++
		if m.pos[i] >= m.n[i] && !m.fill(i) {
			if m.err != nil {
				break
			}
			heap.Remove(m, 0)
			continue
		}
		heap.Fix(m, 0)
	}
	if k > 0 {
		return k, nil
	}
	if m.err != nil {
		return 0, m.err
	}
	return 0, io.EOF
}
