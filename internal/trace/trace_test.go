package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomEvents(n int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, n)
	cycle := uint64(0)
	for i := range events {
		cycle += uint64(rng.Intn(50))
		op := Read
		if rng.Intn(4) == 0 {
			op = Write
		}
		events[i] = Event{
			Cycle:  cycle,
			Op:     op,
			Addr:   uint64(rng.Intn(1 << 24)),
			Thread: uint8(rng.Intn(4)),
		}
	}
	return events
}

func TestEventValidate(t *testing.T) {
	if err := (Event{Op: Read}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Event{Op: 'X'}).Validate(); err == nil {
		t.Fatal("expected error for bad op")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 10, Op: Write, Addr: 0xABC, Thread: 2}
	if got := e.String(); got != "10 W 0xABC 2" {
		t.Fatalf("String = %q", got)
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Cycle: 5, Op: Read, Addr: 100},
		{Cycle: 2, Op: Write, Addr: 300},
		{Cycle: 9, Op: Read, Addr: 50},
	}
	s := Summarize(events)
	if s.Events != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.FirstCycle != 2 || s.LastCycle != 9 || s.MinAddr != 50 || s.MaxAddr != 300 {
		t.Fatalf("ranges: %+v", s)
	}
	if z := Summarize(nil); z.Events != 0 {
		t.Fatalf("empty: %+v", z)
	}
}

func TestGem5RoundTrip(t *testing.T) {
	events := randomEvents(200, 1)
	var buf bytes.Buffer
	if err := WriteGem5(&buf, events, 500); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGem5(&buf, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("events = %d, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got[i], events[i])
		}
	}
}

func TestParseGem5LineSkipsComputeEvents(t *testing.T) {
	_, ok, err := ParseGem5Line("1000: system.cpu.fetch: inst 0x400", 1)
	if err != nil || ok {
		t.Fatalf("compute line: ok=%v err=%v", ok, err)
	}
	_, ok, err = ParseGem5Line("", 1)
	if err != nil || ok {
		t.Fatalf("blank line: ok=%v err=%v", ok, err)
	}
	_, ok, err = ParseGem5Line("# comment", 1)
	if err != nil || ok {
		t.Fatalf("comment: ok=%v err=%v", ok, err)
	}
	// Snoop or other request kinds on the dcache are also skipped.
	_, ok, err = ParseGem5Line("1000: system.cpu.dcache: SnoopReq addr=0x10 size=8", 1)
	if err != nil || ok {
		t.Fatalf("snoop: ok=%v err=%v", ok, err)
	}
}

func TestParseGem5LineErrors(t *testing.T) {
	cases := []string{
		"notanumber: system.cpu.dcache: ReadReq addr=0x10",
		"12 system.cpu.dcache ReadReq",                       // missing colon... actually has none
		"12: system.cpu.dcache: ReadReq size=8",              // no addr
		"12: system.cpu.dcache: ReadReq addr=0xZZ size=8",    // bad addr
		"12: system.cpu.dcache: ReadReq addr=0x10 thread=xx", // bad thread
	}
	for _, c := range cases {
		if _, ok, err := ParseGem5Line(c, 1); err == nil && ok {
			t.Fatalf("expected failure or skip for %q", c)
		}
	}
	// Specifically verify hard errors where they must occur.
	if _, _, err := ParseGem5Line("x: system.cpu.dcache: ReadReq addr=0x10", 1); err == nil {
		t.Fatal("expected tick error")
	}
	if _, _, err := ParseGem5Line("12: system.cpu.dcache: ReadReq addr=0xZZ", 1); err == nil {
		t.Fatal("expected addr error")
	}
}

func TestNVMainRoundTrip(t *testing.T) {
	events := randomEvents(150, 2)
	var buf bytes.Buffer
	if err := WriteNVMain(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNVMain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("events = %d", len(got))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestParseNVMainLine(t *testing.T) {
	e, ok, err := ParseNVMainLine("42 W 0x1F 3")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if e.Cycle != 42 || e.Op != Write || e.Addr != 0x1F || e.Thread != 3 {
		t.Fatalf("parsed %+v", e)
	}
	// Thread field is optional.
	e, ok, err = ParseNVMainLine("1 R 0xA")
	if err != nil || !ok || e.Thread != 0 {
		t.Fatalf("optional thread: %+v ok=%v err=%v", e, ok, err)
	}
	for _, bad := range []string{"x R 0x1", "1 Q 0x1", "1 R zz", "1 R", "1 R 0x1 xx"} {
		if _, _, err := ParseNVMainLine(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestWriteRejectsInvalidOp(t *testing.T) {
	bad := []Event{{Op: 'Q'}}
	if err := WriteNVMain(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("expected error")
	}
	if err := WriteGem5(&bytes.Buffer{}, bad, 1); err == nil {
		t.Fatal("expected error")
	}
	if err := WriteBinary(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("expected error")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	events := randomEvents(500, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("events = %d", len(got))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("BOGUSmagic")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("expected EOF error")
	}
}

func TestBinaryRejectsTruncatedRecord(t *testing.T) {
	events := randomEvents(3, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, events); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

// Property: text and binary round trips preserve any valid event exactly.
func TestPropFormatsRoundTrip(t *testing.T) {
	f := func(cycle, addr uint64, thread uint8, isWrite bool) bool {
		op := Read
		if isWrite {
			op = Write
		}
		e := Event{Cycle: cycle, Op: op, Addr: addr, Thread: thread}
		var nb, bb bytes.Buffer
		if WriteNVMain(&nb, []Event{e}) != nil || WriteBinary(&bb, []Event{e}) != nil {
			return false
		}
		n, err1 := ReadNVMain(&nb)
		b, err2 := ReadBinary(&bb)
		return err1 == nil && err2 == nil && len(n) == 1 && len(b) == 1 && n[0] == e && b[0] == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeInterleavesByCycle(t *testing.T) {
	a := []Event{{Cycle: 1, Op: Read, Addr: 0}, {Cycle: 5, Op: Read, Addr: 64}}
	b := []Event{{Cycle: 2, Op: Write, Addr: 0}, {Cycle: 3, Op: Read, Addr: 64}}
	merged := Merge(1<<20, a, b)
	if len(merged) != 4 {
		t.Fatalf("merged = %d events", len(merged))
	}
	wantCycles := []uint64{1, 2, 3, 5}
	for i, e := range merged {
		if e.Cycle != wantCycles[i] {
			t.Fatalf("cycle order wrong: %+v", merged)
		}
	}
	// Address windows are disjoint and thread-tagged per input.
	if merged[0].Addr != 0 || merged[0].Thread != 0 {
		t.Fatalf("first input altered: %+v", merged[0])
	}
	if merged[1].Addr != 1<<20 || merged[1].Thread != 1 {
		t.Fatalf("second input not offset: %+v", merged[1])
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	if got := Merge(0); len(got) != 0 {
		t.Fatalf("empty merge = %d", len(got))
	}
	a := randomEvents(50, 9)
	got := Merge(0, a)
	if len(got) != len(a) {
		t.Fatalf("single merge = %d", len(got))
	}
	for i := range got {
		if got[i].Cycle != a[i].Cycle || got[i].Addr != a[i].Addr {
			t.Fatal("single merge altered events")
		}
	}
}

func TestMergePreservesCounts(t *testing.T) {
	a := randomEvents(100, 10)
	b := randomEvents(150, 11)
	c := randomEvents(70, 12)
	merged := Merge(1<<30, a, b, c)
	if len(merged) != 320 {
		t.Fatalf("merged = %d", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Cycle < merged[i-1].Cycle {
			t.Fatalf("merge not time-ordered at %d", i)
		}
	}
}
