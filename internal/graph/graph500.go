package graph

import (
	"fmt"
	"math/rand"
	"time"
)

// This file implements the Graph500 benchmark harness around the BFS
// kernel: multi-root search, per-root validation, and the TEPS (traversed
// edges per second) metric the benchmark reports.

// Graph500Result summarizes one full benchmark run.
type Graph500Result struct {
	Scale      int
	EdgeFactor int
	NumRoots   int
	// PerRoot holds each search's TEPS value.
	PerRoot []float64
	// HarmonicMeanTEPS is the official Graph500 aggregate.
	HarmonicMeanTEPS float64
	MinTEPS, MaxTEPS float64
	TotalTime        time.Duration
}

// RunGraph500 executes the benchmark: build a Kronecker graph of the given
// scale and edge factor, run BFS from numRoots distinct random roots with
// positive degree, validate every parent tree, and report TEPS statistics.
// The clock function abstracts time for testability; pass nil for
// time.Now-based measurement.
func RunGraph500(scale, edgeFactor, numRoots int, seed int64, clock func() time.Time) (*Graph500Result, error) {
	if numRoots < 1 {
		return nil, fmt.Errorf("graph: numRoots %d < 1", numRoots)
	}
	if clock == nil {
		clock = time.Now
	}
	g, err := GenerateGraph500(scale, edgeFactor, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	roots := sampleRoots(g, numRoots, rng)
	if len(roots) == 0 {
		return nil, fmt.Errorf("graph: no vertices with positive degree")
	}

	res := &Graph500Result{Scale: scale, EdgeFactor: edgeFactor, NumRoots: len(roots)}
	start := clock()
	var harmonicDenom float64
	for i, root := range roots {
		t0 := clock()
		bfs, err := BFSDirectionOptimizing(g, root, DirectionOptConfig{})
		if err != nil {
			return nil, err
		}
		elapsed := clock().Sub(t0).Seconds()
		if elapsed <= 0 {
			elapsed = 1e-9
		}
		if err := ValidateBFS(g, root, bfs); err != nil {
			return nil, fmt.Errorf("root %d: validation failed: %w", root, err)
		}
		teps := float64(bfs.EdgesTraversed) / elapsed
		res.PerRoot = append(res.PerRoot, teps)
		harmonicDenom += 1 / teps
		if i == 0 || teps < res.MinTEPS {
			res.MinTEPS = teps
		}
		if teps > res.MaxTEPS {
			res.MaxTEPS = teps
		}
	}
	res.TotalTime = clock().Sub(start)
	res.HarmonicMeanTEPS = float64(len(res.PerRoot)) / harmonicDenom
	return res, nil
}

// sampleRoots draws up to n distinct roots with positive degree, per the
// Graph500 specification's root-sampling rule.
func sampleRoots(g *CSR, n int, rng *rand.Rand) []uint32 {
	seen := map[uint32]bool{}
	var roots []uint32
	attempts := 0
	for len(roots) < n && attempts < 100*n {
		attempts++
		v := uint32(rng.Intn(g.NumVertices()))
		if seen[v] || g.Degree(v) == 0 {
			continue
		}
		seen[v] = true
		roots = append(roots, v)
	}
	return roots
}

// String renders the result in Graph500-report style.
func (r *Graph500Result) String() string {
	return fmt.Sprintf("SCALE=%d edgefactor=%d NBFS=%d harmonic_mean_TEPS=%.3e min_TEPS=%.3e max_TEPS=%.3e",
		r.Scale, r.EdgeFactor, r.NumRoots, r.HarmonicMeanTEPS, r.MinTEPS, r.MaxTEPS)
}
