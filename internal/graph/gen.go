package graph

import (
	"fmt"
	"math/rand"
)

// RMATParams configures the recursive-matrix generator (the model behind
// GTGraph's rmat mode and the Graph500 Kronecker generator). A, B, C, D must
// be non-negative and sum to ~1.
type RMATParams struct {
	A, B, C, D float64
}

// Graph500RMAT are the Kronecker initiator parameters specified by the
// Graph500 benchmark (A=0.57, B=0.19, C=0.19, D=0.05).
var Graph500RMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// GTGraphDefault mirrors GTGraph's default R-MAT parameters
// (a=0.45, b=0.15, c=0.15, d=0.25).
var GTGraphDefault = RMATParams{A: 0.45, B: 0.15, C: 0.15, D: 0.25}

// GenerateRMAT produces numEdges directed edges over 2^scale vertices using
// the R-MAT recursive quadrant-selection process. Weights are uniform in
// (0, 1] when weighted is true. The generator is deterministic per seed.
func GenerateRMAT(scale int, numEdges int64, p RMATParams, weighted bool, seed int64) ([]Edge, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("graph: rmat scale %d out of range [1,30]", scale)
	}
	if numEdges <= 0 {
		return nil, fmt.Errorf("graph: non-positive edge count %d", numEdges)
	}
	sum := p.A + p.B + p.C + p.D
	if p.A < 0 || p.B < 0 || p.C < 0 || p.D < 0 || sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("graph: rmat probabilities %+v do not sum to 1", p)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, numEdges)
	n := uint32(1) << uint(scale)
	for int64(len(edges)) < numEdges {
		var src, dst uint32
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			// Add per-level noise as in the Graph500 reference code to avoid
			// exact self-similarity artifacts.
			switch {
			case r < p.A:
				// top-left: no bits set
			case r < p.A+p.B:
				dst |= 1 << uint(bit)
			case r < p.A+p.B+p.C:
				src |= 1 << uint(bit)
			default:
				src |= 1 << uint(bit)
				dst |= 1 << uint(bit)
			}
		}
		e := Edge{Src: src % n, Dst: dst % n}
		if weighted {
			e.Weight = 1 - rng.Float64() // uniform in (0,1]
		}
		edges = append(edges, e)
	}
	return edges, nil
}

// GenerateGTGraph reproduces the paper's workload graph: an R-MAT graph with
// the given vertex count (rounded up to a power of two for the recursion,
// then folded back) and edgeFactor edges per vertex, as generated for the
// paper with GTGraph (1,024 vertices, edge factor 16).
func GenerateGTGraph(numVertices int, edgeFactor int, seed int64) (*CSR, error) {
	if numVertices < 2 {
		return nil, fmt.Errorf("graph: need at least 2 vertices, got %d", numVertices)
	}
	if edgeFactor < 1 {
		return nil, fmt.Errorf("graph: edge factor %d < 1", edgeFactor)
	}
	scale := 0
	for 1<<uint(scale) < numVertices {
		scale++
	}
	edges, err := GenerateRMAT(scale, int64(numVertices)*int64(edgeFactor), GTGraphDefault, false, seed)
	if err != nil {
		return nil, err
	}
	for i := range edges {
		edges[i].Src %= uint32(numVertices)
		edges[i].Dst %= uint32(numVertices)
	}
	return NewCSR(numVertices, edges, true)
}

// GenerateErdosRenyi samples numEdges uniform random edges over n vertices
// (G(n, m) model), one of GTGraph's generator modes.
func GenerateErdosRenyi(n int, numEdges int64, weighted bool, seed int64) ([]Edge, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: need at least 2 vertices, got %d", n)
	}
	if numEdges <= 0 {
		return nil, fmt.Errorf("graph: non-positive edge count %d", numEdges)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, numEdges)
	for i := range edges {
		edges[i] = Edge{Src: uint32(rng.Intn(n)), Dst: uint32(rng.Intn(n))}
		if weighted {
			edges[i].Weight = 1 - rng.Float64()
		}
	}
	return edges, nil
}

// GenerateGraph500 builds an undirected Kronecker graph per the Graph500
// specification: 2^scale vertices, edgefactor*2^scale edges, initiator
// (0.57, 0.19, 0.19, 0.05).
func GenerateGraph500(scale, edgeFactor int, seed int64) (*CSR, error) {
	edges, err := GenerateRMAT(scale, int64(edgeFactor)<<uint(scale), Graph500RMAT, false, seed)
	if err != nil {
		return nil, err
	}
	return NewCSR(1<<uint(scale), edges, true)
}

// GenerateGrid2D builds an undirected sqrt(n)×sqrt(n) grid graph — a
// low-diameter, regular-degree counterpoint to R-MAT used in workload
// sensitivity studies. side must be >= 2.
func GenerateGrid2D(side int) (*CSR, error) {
	if side < 2 {
		return nil, fmt.Errorf("graph: grid side %d < 2", side)
	}
	n := side * side
	var edges []Edge
	at := func(r, c int) uint32 { return uint32(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				edges = append(edges, Edge{Src: at(r, c), Dst: at(r, c+1)})
			}
			if r+1 < side {
				edges = append(edges, Edge{Src: at(r, c), Dst: at(r+1, c)})
			}
		}
	}
	return NewCSR(n, edges, true)
}
