package graph

import "testing"

func benchGraph(b *testing.B, n, ef int) *CSR {
	b.Helper()
	g, err := GenerateGTGraph(n, ef, 42)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkGenerateRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateRMAT(12, 1<<16, Graph500RMAT, false, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewCSR(b *testing.B) {
	edges, err := GenerateRMAT(12, 1<<16, Graph500RMAT, false, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCSR(1<<12, edges, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFSTopDown(b *testing.B) {
	g := benchGraph(b, 4096, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BFSTopDown(g, uint32(i%g.NumVertices())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFSDirectionOptimizing(b *testing.B) {
	g := benchGraph(b, 4096, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BFSDirectionOptimizing(g, uint32(i%g.NumVertices()), DirectionOptConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := benchGraph(b, 4096, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := PageRank(g, PageRankConfig{MaxIter: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(b, 4096, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g)
	}
}

func BenchmarkSSSPDeltaStepping(b *testing.B) {
	g := benchGraph(b, 2048, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SSSPDeltaStepping(g, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTriangleCount(b *testing.B) {
	g := benchGraph(b, 1024, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TriangleCount(g)
	}
}

func BenchmarkBetweennessCentrality(b *testing.B) {
	g := benchGraph(b, 256, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BetweennessCentrality(g)
	}
}

func BenchmarkKCoreDecomposition(b *testing.B) {
	g := benchGraph(b, 4096, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KCoreDecomposition(g)
	}
}
