package graph

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// PageRankConfig tunes the power-iteration PageRank kernel.
type PageRankConfig struct {
	// Damping is the teleport survival probability (default 0.85).
	Damping float64
	// Tol is the L1 convergence threshold (default 1e-8).
	Tol float64
	// MaxIter caps the iteration count (default 100).
	MaxIter int
}

// PageRank computes the PageRank vector of g by power iteration. Dangling
// mass is redistributed uniformly. The returned slice sums to ~1.
func PageRank(g *CSR, cfg PageRankConfig) ([]float64, int, error) {
	if cfg.Damping <= 0 || cfg.Damping >= 1 {
		if cfg.Damping == 0 {
			cfg.Damping = 0.85
		} else {
			return nil, 0, fmt.Errorf("graph: damping %v out of (0,1)", cfg.Damping)
		}
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-8
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	n := g.NumVertices()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	var iters int
	for iters = 1; iters <= cfg.MaxIter; iters++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for u := uint32(0); int(u) < n; u++ {
			d := g.Degree(u)
			if d == 0 {
				dangling += rank[u]
				continue
			}
			share := rank[u] / float64(d)
			for _, v := range g.Neighbors(u) {
				next[v] += share
			}
		}
		base := (1-cfg.Damping)/float64(n) + cfg.Damping*dangling/float64(n)
		var delta float64
		for i := range next {
			next[i] = base + cfg.Damping*next[i]
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < cfg.Tol {
			break
		}
	}
	if iters > cfg.MaxIter {
		iters = cfg.MaxIter
	}
	return rank, iters, nil
}

// ConnectedComponents labels each vertex with its component ID using the
// Shiloach–Vishkin-style label-propagation (hook + pointer-jump) algorithm.
// Component IDs are the minimum vertex ID in each component. The graph is
// treated as undirected over its stored directed edges.
func ConnectedComponents(g *CSR) []uint32 {
	n := g.NumVertices()
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}
	for changed := true; changed; {
		changed = false
		// Hook: adopt the smaller label across every edge.
		for u := uint32(0); int(u) < n; u++ {
			for _, v := range g.Neighbors(u) {
				if comp[v] < comp[u] {
					comp[u] = comp[v]
					changed = true
				} else if comp[u] < comp[v] {
					comp[v] = comp[u]
					changed = true
				}
			}
		}
		// Pointer jumping: compress label chains.
		for v := uint32(0); int(v) < n; v++ {
			for comp[v] != comp[comp[v]] {
				comp[v] = comp[comp[v]]
			}
		}
	}
	return comp
}

// NumComponents counts distinct labels in a component assignment.
func NumComponents(comp []uint32) int {
	seen := make(map[uint32]struct{})
	for _, c := range comp {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// ErrNegativeWeight is returned by SSSP for edges with negative weights.
var ErrNegativeWeight = errors.New("graph: negative edge weight")

// InfDist marks unreachable vertices in SSSP output.
var InfDist = math.Inf(1)

// SSSPDeltaStepping computes single-source shortest paths with the
// Δ-stepping bucket algorithm (Meyer & Sanders), the standard parallel SSSP
// formulation for graph-benchmark suites. Unweighted graphs use weight 1
// per edge. delta <= 0 picks a heuristic bucket width.
func SSSPDeltaStepping(g *CSR, source uint32, delta float64) ([]float64, error) {
	n := g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("%w: %d >= %d", ErrRoot, source, n)
	}
	maxW := 1.0
	if g.Weighted() {
		maxW = 0
		for v := uint32(0); int(v) < n; v++ {
			for _, w := range g.NeighborWeights(v) {
				if w < 0 {
					return nil, fmt.Errorf("%w: at vertex %d", ErrNegativeWeight, v)
				}
				if w > maxW {
					maxW = w
				}
			}
		}
		if maxW == 0 {
			maxW = 1
		}
	}
	if delta <= 0 {
		// Heuristic: Δ = maxWeight / avgDegree keeps buckets small.
		avgDeg := float64(g.NumEdges()) / float64(n)
		if avgDeg < 1 {
			avgDeg = 1
		}
		delta = maxW / avgDeg
		if delta <= 0 {
			delta = 1
		}
	}

	dist := make([]float64, n)
	for i := range dist {
		dist[i] = InfDist
	}
	dist[source] = 0
	buckets := map[int][]uint32{0: {source}}
	maxBucket := 0

	relax := func(v uint32, d float64) {
		if d < dist[v] {
			dist[v] = d
			b := int(d / delta)
			buckets[b] = append(buckets[b], v)
			if b > maxBucket {
				maxBucket = b
			}
		}
	}

	for b := 0; b <= maxBucket; b++ {
		// Settle the bucket: light-edge relaxations may re-add vertices.
		for len(buckets[b]) > 0 {
			cur := buckets[b]
			buckets[b] = nil
			for _, u := range cur {
				if int(dist[u]/delta) != b {
					continue // moved to an earlier bucket already
				}
				wts := g.NeighborWeights(u)
				for i, v := range g.Neighbors(u) {
					w := 1.0
					if wts != nil {
						w = wts[i]
					}
					relax(v, dist[u]+w)
				}
			}
		}
		delete(buckets, b)
	}
	return dist, nil
}

// SSSPDijkstra is the reference sequential shortest-path implementation used
// to validate Δ-stepping.
func SSSPDijkstra(g *CSR, source uint32) ([]float64, error) {
	n := g.NumVertices()
	if int(source) >= n {
		return nil, fmt.Errorf("%w: %d >= %d", ErrRoot, source, n)
	}
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = InfDist
	}
	dist[source] = 0
	pq := &distHeap{{source, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		wts := g.NeighborWeights(it.v)
		for i, u := range g.Neighbors(it.v) {
			w := 1.0
			if wts != nil {
				w = wts[i]
			}
			if w < 0 {
				return nil, fmt.Errorf("%w: at vertex %d", ErrNegativeWeight, it.v)
			}
			if nd := it.d + w; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{u, nd})
			}
		}
	}
	return dist, nil
}

type distItem struct {
	v uint32
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// TriangleCount returns the number of triangles in the undirected graph,
// counting each triangle once, using the ordered-neighborhood intersection
// method. Self-loops and duplicate edges are ignored.
func TriangleCount(g *CSR) int64 {
	n := g.NumVertices()
	var count int64
	for u := uint32(0); int(u) < n; u++ {
		nu := dedupGreater(g.Neighbors(u), u)
		for _, v := range nu {
			nv := dedupGreater(g.Neighbors(v), v)
			count += intersectCount(nu, nv, v)
		}
	}
	return count
}

// dedupGreater returns the sorted unique neighbors of u strictly greater
// than u (relies on CSR adjacency being sorted).
func dedupGreater(adj []uint32, u uint32) []uint32 {
	out := make([]uint32, 0, len(adj))
	var last uint32
	first := true
	for _, v := range adj {
		if v <= u {
			continue
		}
		if first || v != last {
			out = append(out, v)
			last = v
			first = false
		}
	}
	return out
}

// intersectCount counts elements common to sorted lists a and b that are
// strictly greater than floor.
func intersectCount(a, b []uint32, floor uint32) int64 {
	var i, j int
	var c int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] > floor {
				c++
			}
			i++
			j++
		}
	}
	return c
}
