package graph

import (
	"math"
	"testing"
	"time"
)

func TestBetweennessPathGraph(t *testing.T) {
	// Path 0-1-2-3-4: interior vertices carry the shortest paths.
	g := pathGraph(t, 5)
	bc := BetweennessCentrality(g)
	// Endpoints have zero betweenness.
	if bc[0] != 0 || bc[4] != 0 {
		t.Fatalf("endpoint betweenness: %v", bc)
	}
	// The middle vertex dominates.
	if !(bc[2] > bc[1] && bc[2] > bc[3]) {
		t.Fatalf("middle vertex should dominate: %v", bc)
	}
	// Symmetric path: bc[1] == bc[3].
	if math.Abs(bc[1]-bc[3]) > 1e-9 {
		t.Fatalf("path symmetry violated: %v", bc)
	}
	// Exact values (directed-pairs convention): vertex 2 lies on the paths
	// {0,1}×{3,4} in both directions = 8, vertex 1 on 0↔{2,3,4} = 6.
	if bc[2] != 8 || bc[1] != 6 {
		t.Fatalf("exact betweenness wrong: %v", bc)
	}
}

func TestBetweennessStarGraph(t *testing.T) {
	var edges []Edge
	for i := 1; i < 6; i++ {
		edges = append(edges, Edge{Src: 0, Dst: uint32(i)})
	}
	g, err := NewCSR(6, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	bc := BetweennessCentrality(g)
	// Center carries all 5×4 = 20 directed leaf pairs; leaves carry none.
	if bc[0] != 20 {
		t.Fatalf("center betweenness = %v, want 20", bc[0])
	}
	for i := 1; i < 6; i++ {
		if bc[i] != 0 {
			t.Fatalf("leaf %d betweenness = %v", i, bc[i])
		}
	}
}

func TestBetweennessDisconnected(t *testing.T) {
	g, err := NewCSR(4, []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}, true)
	if err != nil {
		t.Fatal(err)
	}
	bc := BetweennessCentrality(g)
	for i, v := range bc {
		if v != 0 {
			t.Fatalf("bc[%d] = %v in disconnected pairs", i, v)
		}
	}
}

func TestKCorePathAndClique(t *testing.T) {
	// A path has core number 1 everywhere.
	g := pathGraph(t, 6)
	core := KCoreDecomposition(g)
	for v, c := range core {
		if c != 1 {
			t.Fatalf("path core[%d] = %d, want 1", v, c)
		}
	}
	// K4 has core number 3 everywhere.
	var edges []Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, Edge{Src: uint32(i), Dst: uint32(j)})
		}
	}
	k4, err := NewCSR(4, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	core = KCoreDecomposition(k4)
	for v, c := range core {
		if c != 3 {
			t.Fatalf("K4 core[%d] = %d, want 3", v, c)
		}
	}
	if MaxCore(core) != 3 {
		t.Fatalf("MaxCore = %d", MaxCore(core))
	}
}

func TestKCoreCliqueWithTail(t *testing.T) {
	// K4 (0-3) plus a tail 3-4-5: the tail has core 1, the clique core 3.
	var edges []Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, Edge{Src: uint32(i), Dst: uint32(j)})
		}
	}
	edges = append(edges, Edge{Src: 3, Dst: 4}, Edge{Src: 4, Dst: 5})
	g, err := NewCSR(6, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	core := KCoreDecomposition(g)
	for v := 0; v < 4; v++ {
		if core[v] != 3 {
			t.Fatalf("clique core[%d] = %d, want 3", v, core[v])
		}
	}
	if core[4] != 1 || core[5] != 1 {
		t.Fatalf("tail cores = %d, %d, want 1, 1", core[4], core[5])
	}
}

func TestDegreeStats(t *testing.T) {
	g, err := NewCSR(4, []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeDegreeStats(g)
	if st.Min != 0 || st.Max != 2 || st.Isolated != 1 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(st.Mean-1.0) > 1e-12 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.Histogram[2] != 1 || st.Histogram[1] != 2 || st.Histogram[0] != 1 {
		t.Fatalf("histogram %v", st.Histogram)
	}
	if st.String() == "" {
		t.Fatal("empty string rendering")
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	// Triangle: transitivity 1.
	tri, err := NewCSR(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if c := GlobalClusteringCoefficient(tri); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle transitivity = %v", c)
	}
	// Path: no triangles.
	if c := GlobalClusteringCoefficient(pathGraph(t, 5)); c != 0 {
		t.Fatalf("path transitivity = %v", c)
	}
	// Star: wedges but no triangles.
	var edges []Edge
	for i := 1; i < 5; i++ {
		edges = append(edges, Edge{Src: 0, Dst: uint32(i)})
	}
	star, err := NewCSR(5, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	if c := GlobalClusteringCoefficient(star); c != 0 {
		t.Fatalf("star transitivity = %v", c)
	}
}

func TestRunGraph500(t *testing.T) {
	// Deterministic clock: every call advances 1 ms.
	var tick int64
	clock := func() time.Time {
		tick++
		return time.Unix(0, tick*int64(time.Millisecond))
	}
	res, err := RunGraph500(8, 8, 4, 1, clock)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRoots != 4 || len(res.PerRoot) != 4 {
		t.Fatalf("roots = %d", res.NumRoots)
	}
	if res.HarmonicMeanTEPS <= 0 || res.MinTEPS <= 0 || res.MaxTEPS < res.MinTEPS {
		t.Fatalf("TEPS stats %+v", res)
	}
	// Harmonic mean lies between min and max.
	if res.HarmonicMeanTEPS < res.MinTEPS || res.HarmonicMeanTEPS > res.MaxTEPS {
		t.Fatalf("harmonic mean %v outside [%v, %v]", res.HarmonicMeanTEPS, res.MinTEPS, res.MaxTEPS)
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestRunGraph500Validation(t *testing.T) {
	if _, err := RunGraph500(8, 8, 0, 1, nil); err == nil {
		t.Fatal("expected error for zero roots")
	}
	if _, err := RunGraph500(0, 8, 1, 1, nil); err == nil {
		t.Fatal("expected error for bad scale")
	}
}

func TestRunGraph500RealClock(t *testing.T) {
	res, err := RunGraph500(7, 4, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.HarmonicMeanTEPS <= 0 {
		t.Fatalf("TEPS = %v", res.HarmonicMeanTEPS)
	}
}
