package graph

import (
	"testing"
	"testing/quick"
)

func TestGenerateRMATBasics(t *testing.T) {
	edges, err := GenerateRMAT(8, 1000, Graph500RMAT, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1000 {
		t.Fatalf("edges = %d", len(edges))
	}
	n := uint32(1 << 8)
	for _, e := range edges {
		if e.Src >= n || e.Dst >= n {
			t.Fatalf("edge %v out of range", e)
		}
		if e.Weight != 0 {
			t.Fatal("unweighted generator produced weights")
		}
	}
}

func TestGenerateRMATWeighted(t *testing.T) {
	edges, err := GenerateRMAT(4, 50, GTGraphDefault, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if e.Weight <= 0 || e.Weight > 1 {
			t.Fatalf("weight %v out of (0,1]", e.Weight)
		}
	}
}

func TestGenerateRMATDeterministic(t *testing.T) {
	a, _ := GenerateRMAT(6, 200, Graph500RMAT, false, 7)
	b, _ := GenerateRMAT(6, 200, Graph500RMAT, false, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce edges")
		}
	}
	c, _ := GenerateRMAT(6, 200, Graph500RMAT, false, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateRMATSkewed(t *testing.T) {
	// R-MAT with Graph500 parameters concentrates edges on low IDs: the
	// bottom quarter of the ID space should hold well over its uniform share
	// of endpoints.
	edges, err := GenerateRMAT(10, 20000, Graph500RMAT, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := uint32(1 << 10)
	var lowQuarter int
	for _, e := range edges {
		if e.Src < n/4 {
			lowQuarter++
		}
		if e.Dst < n/4 {
			lowQuarter++
		}
	}
	frac := float64(lowQuarter) / float64(2*len(edges))
	if frac < 0.4 {
		t.Fatalf("low-ID endpoint fraction = %v, expected skew > 0.4", frac)
	}
}

func TestGenerateRMATErrors(t *testing.T) {
	if _, err := GenerateRMAT(0, 10, Graph500RMAT, false, 1); err == nil {
		t.Fatal("expected scale error")
	}
	if _, err := GenerateRMAT(4, 0, Graph500RMAT, false, 1); err == nil {
		t.Fatal("expected edge-count error")
	}
	if _, err := GenerateRMAT(4, 10, RMATParams{A: 0.9, B: 0.9, C: 0, D: 0}, false, 1); err == nil {
		t.Fatal("expected probability error")
	}
}

func TestGenerateGTGraphPaperScale(t *testing.T) {
	// The paper's workload: 1,024 vertices, edge factor 16.
	g, err := GenerateGTGraph(1024, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Undirected storage doubles 1024*16 edges.
	if g.NumEdges() != 2*1024*16 {
		t.Fatalf("m = %d, want %d", g.NumEdges(), 2*1024*16)
	}
}

func TestGenerateGTGraphNonPowerOfTwo(t *testing.T) {
	g, err := GenerateGTGraph(1000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
}

func TestGenerateGTGraphErrors(t *testing.T) {
	if _, err := GenerateGTGraph(1, 16, 1); err == nil {
		t.Fatal("expected vertex-count error")
	}
	if _, err := GenerateGTGraph(16, 0, 1); err == nil {
		t.Fatal("expected edge-factor error")
	}
}

func TestGenerateErdosRenyi(t *testing.T) {
	edges, err := GenerateErdosRenyi(100, 500, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 500 {
		t.Fatalf("edges = %d", len(edges))
	}
	for _, e := range edges {
		if e.Src >= 100 || e.Dst >= 100 {
			t.Fatalf("edge %v out of range", e)
		}
	}
	if _, err := GenerateErdosRenyi(1, 5, false, 1); err == nil {
		t.Fatal("expected error for n=1")
	}
	if _, err := GenerateErdosRenyi(5, 0, false, 1); err == nil {
		t.Fatal("expected error for zero edges")
	}
}

func TestGenerateGraph500(t *testing.T) {
	g, err := GenerateGraph500(8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 256 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 2*16*256 {
		t.Fatalf("m = %d", g.NumEdges())
	}
}

func TestGenerateGrid2D(t *testing.T) {
	g, err := GenerateGrid2D(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 16 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// 2*side*(side-1) undirected edges, stored twice.
	if g.NumEdges() != 2*2*4*3 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	// Corner has degree 2, interior degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	if g.Degree(5) != 4 {
		t.Fatalf("interior degree = %d", g.Degree(5))
	}
	if _, err := GenerateGrid2D(1); err == nil {
		t.Fatal("expected error for side=1")
	}
}

// Property: GTGraph output is always a valid CSR whose edge count matches
// 2*n*edgeFactor, for any small n >= 2.
func TestPropGTGraphEdgeCount(t *testing.T) {
	f := func(seed int64) bool {
		n := 2 + int(seed%63+63)%63 // [2,127]
		g, err := GenerateGTGraph(n, 4, seed)
		if err != nil {
			return false
		}
		return g.NumVertices() == n && g.NumEdges() == int64(2*4*n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
