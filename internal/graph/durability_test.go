package graph

import (
	"bytes"
	"encoding/binary"
	"testing"

	"graphdse/internal/artifact"
)

func durabilityGraph(t *testing.T) *CSR {
	t.Helper()
	edges := []Edge{
		{Src: 0, Dst: 1, Weight: 1.5}, {Src: 1, Dst: 2, Weight: 0.25},
		{Src: 2, Dst: 3, Weight: 2}, {Src: 3, Dst: 0, Weight: 0.75},
		{Src: 0, Dst: 2, Weight: 1},
	}
	g, err := NewCSR(4, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func csrEqual(a, b *CSR) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() || a.Weighted() != b.Weighted() {
		return false
	}
	for v := uint32(0); int(v) < a.NumVertices(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
		wa, wb := a.NeighborWeights(v), b.NeighborWeights(v)
		for i := range wa {
			if wa[i] != wb[i] {
				return false
			}
		}
	}
	return true
}

func TestBinaryCSRV2RoundTripAndV1BackCompat(t *testing.T) {
	g := durabilityGraph(t)
	var v2 bytes.Buffer
	if err := WriteBinaryCSR(&v2, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v2.Bytes(), artifact.Magic[:]) {
		t.Fatal("WriteBinaryCSR did not emit the v2 container magic")
	}
	got, err := ReadBinaryCSR(bytes.NewReader(v2.Bytes()))
	if err != nil || !csrEqual(got, g) {
		t.Fatalf("v2 CSR round trip failed: %v", err)
	}

	var v1 bytes.Buffer
	if err := WriteBinaryCSRV1(&v1, g); err != nil {
		t.Fatal(err)
	}
	got, err = ReadBinaryCSR(bytes.NewReader(v1.Bytes()))
	if err != nil || !csrEqual(got, g) {
		t.Fatalf("v1 CSR back-compat read failed: %v", err)
	}
}

// TestBinaryCSRV2BitFlipMatrix flips every byte of a v2 CSR file: the
// container checksum must catch all of them.
func TestBinaryCSRV2BitFlipMatrix(t *testing.T) {
	g := durabilityGraph(t)
	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := range data {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0x01
		if _, err := ReadBinaryCSR(bytes.NewReader(corrupted)); err == nil {
			t.Fatalf("bit flip at byte %d/%d went undetected", i, len(data))
		}
	}
}

// TestBinaryCSRTruncationMatrix cuts both format generations at every byte:
// no cut may load successfully.
func TestBinaryCSRTruncationMatrix(t *testing.T) {
	g := durabilityGraph(t)
	for name, write := range map[string]func(*bytes.Buffer) error{
		"v2": func(b *bytes.Buffer) error { return WriteBinaryCSR(b, g) },
		"v1": func(b *bytes.Buffer) error { return WriteBinaryCSRV1(b, g) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		for cut := 0; cut < len(data); cut++ {
			if _, err := ReadBinaryCSR(bytes.NewReader(data[:cut])); err == nil {
				t.Fatalf("%s: truncation to %d/%d bytes went undetected", name, cut, len(data))
			}
		}
	}
}

// TestBinaryCSRAllocationBomb feeds v1 headers claiming enormous dimensions
// over a nearly-empty body: the reader must fail from the missing data
// without allocating anywhere near the claimed sizes (~64 GiB of offsets).
func TestBinaryCSRAllocationBomb(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(csrMagic[:])
	hdr := make([]byte, 17)
	binary.LittleEndian.PutUint64(hdr[0:8], 1<<32)  // n
	binary.LittleEndian.PutUint64(hdr[8:16], 1<<32) // m
	buf.Write(hdr)
	buf.Write(make([]byte, 64)) // a few offsets, then EOF
	if _, err := ReadBinaryCSR(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("allocation bomb not rejected")
	}
	// Beyond the plausibility cap must be rejected from the header alone.
	binary.LittleEndian.PutUint64(hdr[0:8], 1<<40)
	var buf2 bytes.Buffer
	buf2.Write(csrMagic[:])
	buf2.Write(hdr)
	if _, err := ReadBinaryCSR(bytes.NewReader(buf2.Bytes())); err == nil {
		t.Fatal("implausible dimensions not rejected")
	}
}

func TestBinaryCSRWrongMagicAndVersion(t *testing.T) {
	if _, err := ReadBinaryCSR(bytes.NewReader([]byte("BADMAGIC-and-then-some"))); err == nil {
		t.Fatal("wrong magic not rejected")
	}
	// A container with the wrong format tag must be rejected.
	var buf bytes.Buffer
	aw, err := artifact.NewWriter(&buf, "OTHERFMT", 1)
	if err != nil {
		t.Fatal(err)
	}
	aw.Write([]byte("payload"))
	aw.Close()
	if _, err := ReadBinaryCSR(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("wrong container format not rejected")
	}
	// A future CSR version must be rejected.
	var buf2 bytes.Buffer
	aw2, err := artifact.NewWriter(&buf2, CSRFormatTag, CSRFormatVersion+1)
	if err != nil {
		t.Fatal(err)
	}
	aw2.Write([]byte("payload"))
	aw2.Close()
	if _, err := ReadBinaryCSR(bytes.NewReader(buf2.Bytes())); err == nil {
		t.Fatal("future CSR version not rejected")
	}
}

// FuzzReadBinaryCSR drives the CSR reader over arbitrary bytes: no panics,
// no runaway allocation, and anything that loads must be structurally
// valid enough to traverse.
func FuzzReadBinaryCSR(f *testing.F) {
	g := func() *CSR {
		gg, _ := NewCSR(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
		return gg
	}()
	var v1, v2 bytes.Buffer
	WriteBinaryCSRV1(&v1, g)
	WriteBinaryCSR(&v2, g)
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v2.Bytes()[:v2.Len()-7])
	f.Add([]byte("GDSECSR1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := ReadBinaryCSR(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever loads must traverse without panicking.
		for v := uint32(0); int(v) < loaded.NumVertices(); v++ {
			for _, u := range loaded.Neighbors(v) {
				if int(u) >= loaded.NumVertices() {
					t.Fatalf("loaded CSR has out-of-range target %d", u)
				}
			}
		}
	})
}
