package graph

import (
	"testing"
)

// twoCliques builds two K5s joined by a single bridge edge.
func twoCliques(t *testing.T) *CSR {
	t.Helper()
	var edges []Edge
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, Edge{Src: uint32(i), Dst: uint32(j)})
			edges = append(edges, Edge{Src: uint32(i + 5), Dst: uint32(j + 5)})
		}
	}
	edges = append(edges, Edge{Src: 0, Dst: 5})
	g, err := NewCSR(10, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLabelPropagationFindsCliques(t *testing.T) {
	g := twoCliques(t)
	labels, iters := LabelPropagationCommunities(g, 50, 1)
	if iters < 1 {
		t.Fatalf("iters = %d", iters)
	}
	// Each clique must be internally uniform.
	for i := 1; i < 5; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("first clique split: %v", labels)
		}
		if labels[i+5] != labels[5] {
			t.Fatalf("second clique split: %v", labels)
		}
	}
}

func TestLabelPropagationIsolatedVerticesKeepLabels(t *testing.T) {
	g, err := NewCSR(3, []Edge{{Src: 0, Dst: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	labels, _ := LabelPropagationCommunities(g, 10, 1)
	if labels[2] != 2 {
		t.Fatalf("isolated vertex relabeled: %v", labels)
	}
}

func TestModularity(t *testing.T) {
	g := twoCliques(t)
	labels, _ := LabelPropagationCommunities(g, 50, 1)
	good := Modularity(g, labels)
	// The two-clique partition has high modularity; the all-one-community
	// partition has zero.
	if good < 0.3 {
		t.Fatalf("clique partition modularity = %v", good)
	}
	uniform := make([]uint32, g.NumVertices())
	if q := Modularity(g, uniform); q > 1e-9 || q < -1e-9 {
		t.Fatalf("single-community modularity = %v, want 0", q)
	}
	// Random-ish bad partition scores below the good one.
	bad := make([]uint32, g.NumVertices())
	for i := range bad {
		bad[i] = uint32(i % 2)
	}
	if Modularity(g, bad) >= good {
		t.Fatalf("scrambled partition should score below clique partition")
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	g, err := NewCSR(3, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if q := Modularity(g, []uint32{0, 1, 2}); q != 0 {
		t.Fatalf("edgeless modularity = %v", q)
	}
}

func TestCommunitySizes(t *testing.T) {
	sizes := CommunitySizes([]uint32{1, 1, 1, 2, 2, 7})
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestLabelPropagationDeterministicPerSeed(t *testing.T) {
	g, err := GenerateGTGraph(256, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := LabelPropagationCommunities(g, 30, 5)
	b, _ := LabelPropagationCommunities(g, 30, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same communities")
		}
	}
}
