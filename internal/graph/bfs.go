package graph

import (
	"errors"
	"fmt"
)

// NoParent marks unreached vertices in a BFS parent tree.
const NoParent = ^uint32(0)

// BFSResult holds the output of one BFS run: the Graph500 parent tree, the
// level (depth) of each vertex, and traversal statistics.
type BFSResult struct {
	Parent []uint32
	Level  []int32
	// Visited counts reached vertices (including the root).
	Visited int
	// EdgesTraversed counts adjacency entries examined, the numerator of the
	// Graph500 TEPS metric.
	EdgesTraversed int64
	// Iterations is the number of frontier expansions (BFS depth).
	Iterations int
}

// ErrRoot indicates an out-of-range BFS root.
var ErrRoot = errors.New("graph: BFS root out of range")

// BFSTopDown runs the classic queue-based level-synchronous BFS from root,
// as specified by the Graph500 benchmark kernel 2.
func BFSTopDown(g *CSR, root uint32) (*BFSResult, error) {
	if int(root) >= g.NumVertices() {
		return nil, fmt.Errorf("%w: %d >= %d", ErrRoot, root, g.NumVertices())
	}
	n := g.NumVertices()
	res := newBFSResult(n)
	res.Parent[root] = root
	res.Level[root] = 0
	res.Visited = 1

	frontier := []uint32{root}
	next := make([]uint32, 0, 64)
	for depth := int32(1); len(frontier) > 0; depth++ {
		res.Iterations++
		next = next[:0]
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				res.EdgesTraversed++
				if res.Parent[v] == NoParent {
					res.Parent[v] = u
					res.Level[v] = depth
					res.Visited++
					next = append(next, v)
				}
			}
		}
		frontier, next = next, frontier
	}
	return res, nil
}

// BFSBottomUp runs a bottom-up BFS: every unvisited vertex scans its own
// adjacency for a parent in the current frontier. Efficient when the
// frontier is large (Beamer et al.).
func BFSBottomUp(g *CSR, root uint32) (*BFSResult, error) {
	if int(root) >= g.NumVertices() {
		return nil, fmt.Errorf("%w: %d >= %d", ErrRoot, root, g.NumVertices())
	}
	n := g.NumVertices()
	res := newBFSResult(n)
	res.Parent[root] = root
	res.Level[root] = 0
	res.Visited = 1

	inFrontier := make([]bool, n)
	inFrontier[root] = true
	frontierSize := 1
	for depth := int32(1); frontierSize > 0; depth++ {
		res.Iterations++
		nextFrontier := make([]bool, n)
		frontierSize = 0
		for v := uint32(0); int(v) < n; v++ {
			if res.Parent[v] != NoParent {
				continue
			}
			for _, u := range g.Neighbors(v) {
				res.EdgesTraversed++
				if inFrontier[u] {
					res.Parent[v] = u
					res.Level[v] = depth
					res.Visited++
					nextFrontier[v] = true
					frontierSize++
					break
				}
			}
		}
		inFrontier = nextFrontier
	}
	return res, nil
}

// DirectionOptConfig tunes the hybrid BFS switch heuristics (Beamer's alpha
// and beta parameters).
type DirectionOptConfig struct {
	// Alpha controls the top-down → bottom-up switch: switch when
	// frontierEdges > remainingEdges/Alpha. Default 15.
	Alpha int64
	// Beta controls the switch back: bottom-up → top-down when
	// frontierVertices < n/Beta. Default 18.
	Beta int64
}

// BFSDirectionOptimizing runs Beamer-style hybrid BFS, switching between
// top-down and bottom-up per level.
func BFSDirectionOptimizing(g *CSR, root uint32, cfg DirectionOptConfig) (*BFSResult, error) {
	if int(root) >= g.NumVertices() {
		return nil, fmt.Errorf("%w: %d >= %d", ErrRoot, root, g.NumVertices())
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 15
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 18
	}
	n := g.NumVertices()
	res := newBFSResult(n)
	res.Parent[root] = root
	res.Level[root] = 0
	res.Visited = 1

	frontier := []uint32{root}
	for depth := int32(1); len(frontier) > 0; depth++ {
		res.Iterations++
		var frontierEdges int64
		for _, u := range frontier {
			frontierEdges += g.Degree(u)
		}
		remaining := g.NumEdges() - res.EdgesTraversed
		var next []uint32
		if frontierEdges > remaining/cfg.Alpha && int64(len(frontier)) > int64(n)/cfg.Beta {
			// Bottom-up step.
			inFrontier := make([]bool, n)
			for _, u := range frontier {
				inFrontier[u] = true
			}
			for v := uint32(0); int(v) < n; v++ {
				if res.Parent[v] != NoParent {
					continue
				}
				for _, u := range g.Neighbors(v) {
					res.EdgesTraversed++
					if inFrontier[u] {
						res.Parent[v] = u
						res.Level[v] = depth
						res.Visited++
						next = append(next, v)
						break
					}
				}
			}
		} else {
			// Top-down step.
			for _, u := range frontier {
				for _, v := range g.Neighbors(u) {
					res.EdgesTraversed++
					if res.Parent[v] == NoParent {
						res.Parent[v] = u
						res.Level[v] = depth
						res.Visited++
						next = append(next, v)
					}
				}
			}
		}
		frontier = next
	}
	return res, nil
}

func newBFSResult(n int) *BFSResult {
	res := &BFSResult{
		Parent: make([]uint32, n),
		Level:  make([]int32, n),
	}
	for i := range res.Parent {
		res.Parent[i] = NoParent
		res.Level[i] = -1
	}
	return res
}

// ValidateBFS checks a parent tree against the Graph500 validation rules:
// the root is its own parent; every reached vertex has a reached parent with
// a level exactly one smaller, connected by a real edge; unreached vertices
// have no level.
func ValidateBFS(g *CSR, root uint32, res *BFSResult) error {
	n := g.NumVertices()
	if len(res.Parent) != n || len(res.Level) != n {
		return fmt.Errorf("graph: validation arrays sized %d/%d, want %d", len(res.Parent), len(res.Level), n)
	}
	if res.Parent[root] != root {
		return fmt.Errorf("graph: root %d has parent %d", root, res.Parent[root])
	}
	if res.Level[root] != 0 {
		return fmt.Errorf("graph: root level = %d", res.Level[root])
	}
	for v := uint32(0); int(v) < n; v++ {
		p := res.Parent[v]
		if p == NoParent {
			if res.Level[v] != -1 {
				return fmt.Errorf("graph: unreached vertex %d has level %d", v, res.Level[v])
			}
			continue
		}
		if v == root {
			continue
		}
		if res.Parent[p] == NoParent {
			return fmt.Errorf("graph: vertex %d has unreached parent %d", v, p)
		}
		if res.Level[v] != res.Level[p]+1 {
			return fmt.Errorf("graph: vertex %d level %d, parent %d level %d", v, res.Level[v], p, res.Level[p])
		}
		if !g.HasEdge(p, v) {
			return fmt.Errorf("graph: tree edge %d->%d not in graph", p, v)
		}
	}
	return nil
}
