package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPageRankSumsToOne(t *testing.T) {
	g, err := GenerateGTGraph(256, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rank, iters, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 {
		t.Fatalf("iters = %d", iters)
	}
	var sum float64
	for _, r := range rank {
		if r < 0 {
			t.Fatalf("negative rank %v", r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("rank sum = %v", sum)
	}
}

func TestPageRankStarCenterDominates(t *testing.T) {
	// Star: center 0 connected to 1..9; center should have highest rank.
	var edges []Edge
	for i := 1; i < 10; i++ {
		edges = append(edges, Edge{Src: 0, Dst: uint32(i)})
	}
	g, err := NewCSR(10, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	rank, _, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if rank[0] <= rank[i] {
			t.Fatalf("center rank %v <= leaf rank %v", rank[0], rank[i])
		}
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// Directed edge 0->1; vertex 1 is dangling. Ranks must still sum to 1.
	g, err := NewCSR(2, []Edge{{Src: 0, Dst: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	rank, _, err := PageRank(g, PageRankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rank[0]+rank[1]-1) > 1e-9 {
		t.Fatalf("rank sum = %v", rank[0]+rank[1])
	}
	if rank[1] <= rank[0] {
		t.Fatalf("sink should accumulate rank: %v", rank)
	}
}

func TestPageRankBadDamping(t *testing.T) {
	g := pathGraph(t, 3)
	if _, _, err := PageRank(g, PageRankConfig{Damping: 1.5}); err == nil {
		t.Fatal("expected damping error")
	}
}

func TestConnectedComponentsTwoIslands(t *testing.T) {
	g, err := NewCSR(6, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}}, true)
	if err != nil {
		t.Fatal(err)
	}
	comp := ConnectedComponents(g)
	if NumComponents(comp) != 3 { // {0,1,2}, {3,4}, {5}
		t.Fatalf("components = %d, want 3", NumComponents(comp))
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("first island split: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatalf("labels wrong: %v", comp)
	}
}

func TestConnectedComponentsMatchesBFSReachability(t *testing.T) {
	g, err := GenerateGTGraph(200, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	comp := ConnectedComponents(g)
	res, err := BFSTopDown(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		sameComp := comp[v] == comp[0]
		reached := res.Parent[v] != NoParent
		if sameComp != reached {
			t.Fatalf("vertex %d: comp match %v but BFS reach %v", v, sameComp, reached)
		}
	}
}

func TestSSSPUnweightedMatchesBFSLevels(t *testing.T) {
	g, err := GenerateGTGraph(128, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SSSPDeltaStepping(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFSTopDown(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if res.Level[v] == -1 {
			if !math.IsInf(dist[v], 1) {
				t.Fatalf("vertex %d unreachable by BFS but dist %v", v, dist[v])
			}
			continue
		}
		if dist[v] != float64(res.Level[v]) {
			t.Fatalf("vertex %d: dist %v vs level %d", v, dist[v], res.Level[v])
		}
	}
}

func TestSSSPDeltaMatchesDijkstraWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var edges []Edge
	n := 80
	for i := 0; i < 400; i++ {
		edges = append(edges, Edge{
			Src:    uint32(rng.Intn(n)),
			Dst:    uint32(rng.Intn(n)),
			Weight: rng.Float64() + 0.01,
		})
	}
	g, err := NewCSR(n, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []float64{0, 0.05, 0.5, 10} {
		ds, err := SSSPDeltaStepping(g, 0, delta)
		if err != nil {
			t.Fatal(err)
		}
		dj, err := SSSPDijkstra(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		for v := range ds {
			if math.IsInf(ds[v], 1) != math.IsInf(dj[v], 1) {
				t.Fatalf("delta=%v vertex %d reachability differs", delta, v)
			}
			if !math.IsInf(ds[v], 1) && math.Abs(ds[v]-dj[v]) > 1e-9 {
				t.Fatalf("delta=%v vertex %d: %v vs %v", delta, v, ds[v], dj[v])
			}
		}
	}
}

func TestSSSPErrors(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := SSSPDeltaStepping(g, 9, 0); err == nil {
		t.Fatal("expected root error")
	}
	if _, err := SSSPDijkstra(g, 9); err == nil {
		t.Fatal("expected root error")
	}
	bad, err := NewCSR(2, []Edge{{Src: 0, Dst: 1, Weight: -1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SSSPDeltaStepping(bad, 0, 1); err == nil {
		t.Fatal("expected negative-weight error")
	}
	if _, err := SSSPDijkstra(bad, 0); err == nil {
		t.Fatal("expected negative-weight error")
	}
}

func TestTriangleCountTriangle(t *testing.T) {
	g, err := NewCSR(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := TriangleCount(g); got != 1 {
		t.Fatalf("TriangleCount = %d", got)
	}
}

func TestTriangleCountK4(t *testing.T) {
	var edges []Edge
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, Edge{Src: uint32(i), Dst: uint32(j)})
		}
	}
	g, err := NewCSR(4, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := TriangleCount(g); got != 4 {
		t.Fatalf("K4 TriangleCount = %d, want 4", got)
	}
}

func TestTriangleCountPathHasNone(t *testing.T) {
	g := pathGraph(t, 10)
	if got := TriangleCount(g); got != 0 {
		t.Fatalf("path TriangleCount = %d", got)
	}
}

func TestTriangleCountIgnoresSelfLoopsAndDuplicates(t *testing.T) {
	g, err := NewCSR(3, []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, // duplicate
		{Src: 1, Dst: 2}, {Src: 0, Dst: 2},
		{Src: 2, Dst: 2}, // self loop
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := TriangleCount(g); got != 1 {
		t.Fatalf("TriangleCount = %d, want 1", got)
	}
}

// Property: grid graphs have zero triangles and side² components... exactly 1
// component; SSSP distance from a corner equals Manhattan distance.
func TestPropGridInvariants(t *testing.T) {
	f := func(seed int64) bool {
		side := 2 + int((seed%5+5))%5 // [2,6]
		g, err := GenerateGrid2D(side)
		if err != nil {
			return false
		}
		if TriangleCount(g) != 0 {
			return false
		}
		if NumComponents(ConnectedComponents(g)) != 1 {
			return false
		}
		dist, err := SSSPDeltaStepping(g, 0, 0)
		if err != nil {
			return false
		}
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				if dist[r*side+c] != float64(r+c) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
