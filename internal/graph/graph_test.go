package graph

import (
	"testing"
)

func pathGraph(t *testing.T, n int) *CSR {
	t.Helper()
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{Src: uint32(i), Dst: uint32(i + 1)})
	}
	g, err := NewCSR(n, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewCSRBasics(t *testing.T) {
	g, err := NewCSR(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(2))
	}
	if nb := g.Neighbors(1); len(nb) != 1 || nb[0] != 2 {
		t.Fatalf("Neighbors(1) = %v", nb)
	}
}

func TestNewCSRUndirectedDoublesEdges(t *testing.T) {
	g, err := NewCSR(2, []Edge{{Src: 0, Dst: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge missing a direction")
	}
}

func TestNewCSRErrors(t *testing.T) {
	if _, err := NewCSR(0, nil, false); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := NewCSR(2, []Edge{{Src: 0, Dst: 5}}, false); err == nil {
		t.Fatal("expected range error")
	}
}

func TestNewCSRSortedAdjacency(t *testing.T) {
	g, err := NewCSR(4, []Edge{{Src: 0, Dst: 3}, {Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] > nb[i] {
			t.Fatalf("adjacency not sorted: %v", nb)
		}
	}
}

func TestNewCSRWeighted(t *testing.T) {
	g, err := NewCSR(3, []Edge{{Src: 0, Dst: 2, Weight: 2.5}, {Src: 0, Dst: 1, Weight: 1.5}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	nb, w := g.Neighbors(0), g.NeighborWeights(0)
	if nb[0] != 1 || w[0] != 1.5 || nb[1] != 2 || w[1] != 2.5 {
		t.Fatalf("weights not parallel after sort: %v %v", nb, w)
	}
}

func TestNeighborWeightsNilForUnweighted(t *testing.T) {
	g := pathGraph(t, 3)
	if g.NeighborWeights(0) != nil {
		t.Fatal("unweighted graph should return nil weights")
	}
}

func TestHasEdge(t *testing.T) {
	g := pathGraph(t, 4)
	if !g.HasEdge(1, 2) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge incorrect")
	}
}

func TestMaxDegree(t *testing.T) {
	g, err := NewCSR(4, []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}}, false)
	if err != nil {
		t.Fatal(err)
	}
	v, d := g.MaxDegree()
	if v != 0 || d != 3 {
		t.Fatalf("MaxDegree = %d,%d", v, d)
	}
}

func TestSelfLoopAndMultiEdgeKept(t *testing.T) {
	g, err := NewCSR(2, []Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3 (multigraph)", g.NumEdges())
	}
}

func TestOffsetsTargetsExposed(t *testing.T) {
	g := pathGraph(t, 3)
	off := g.Offsets()
	if len(off) != 4 || off[3] != g.NumEdges() {
		t.Fatalf("Offsets = %v", off)
	}
	if int64(len(g.Targets())) != g.NumEdges() {
		t.Fatalf("Targets length = %d", len(g.Targets()))
	}
}

func TestTranspose(t *testing.T) {
	g, err := NewCSR(3, []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 2, Dst: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", tr.NumEdges(), g.NumEdges())
	}
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 0) || !tr.HasEdge(1, 2) {
		t.Fatal("reversed edges missing")
	}
	if tr.HasEdge(0, 1) {
		t.Fatal("forward edge survived transpose")
	}
	// Double transpose restores the original adjacency.
	tt, err := tr.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), tt.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency changed", v)
			}
		}
	}
}

func TestTransposeWeighted(t *testing.T) {
	g, err := NewCSR(2, []Edge{{Src: 0, Dst: 1, Weight: 2.5}}, false)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.Transpose()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Weighted() || tr.NeighborWeights(1)[0] != 2.5 {
		t.Fatal("weights lost in transpose")
	}
}

func TestInDegrees(t *testing.T) {
	g, err := NewCSR(3, []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 1, Dst: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	in := g.InDegrees()
	if in[0] != 1 || in[1] != 2 || in[2] != 0 {
		t.Fatalf("in-degrees = %v", in)
	}
	// Undirected storage: in-degree equals out-degree.
	u := pathGraph(t, 5)
	uin := u.InDegrees()
	for v := 0; v < 5; v++ {
		if uin[v] != u.Degree(uint32(v)) {
			t.Fatalf("undirected in/out mismatch at %d", v)
		}
	}
}
