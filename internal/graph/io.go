package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Graph I/O: the edge-list text format GTGraph-style tools exchange
// ("src dst [weight]" per line, '#'/'%' comments) and a compact binary CSR
// format for fast reload of generated graphs.

// WriteEdgeList renders every stored directed edge, one per line. For
// undirected graphs both directions are written (round-tripping through
// NewCSR with undirected=false preserves the structure).
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		wts := g.NeighborWeights(v)
		for i, u := range g.Neighbors(v) {
			var err error
			if wts != nil {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", v, u, wts[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses an edge-list stream. Vertex count is inferred as
// maxID+1 unless n > 0 forces it. Lines beginning with '#' or '%' are
// comments. undirected doubles each edge as in NewCSR.
func ReadEdgeList(r io.Reader, n int, undirected bool) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var edges []Edge
	maxID := uint32(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", lineNo, err)
		}
		e := Edge{Src: uint32(src), Dst: uint32(dst)}
		if len(fields) >= 3 {
			e.Weight, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
		}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	if n <= 0 {
		n = int(maxID) + 1
	}
	return NewCSR(n, edges, undirected)
}

var csrMagic = [8]byte{'G', 'D', 'S', 'E', 'C', 'S', 'R', '1'}

// WriteBinaryCSR serializes the CSR structure (little-endian): magic, vertex
// count, edge count, weighted flag, offsets, targets, and weights if any.
func WriteBinaryCSR(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(csrMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 17)
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.NumEdges()))
	if g.Weighted() {
		hdr[16] = 1
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var b8 [8]byte
	for _, o := range g.offsets {
		binary.LittleEndian.PutUint64(b8[:], uint64(o))
		if _, err := bw.Write(b8[:]); err != nil {
			return err
		}
	}
	var b4 [4]byte
	for _, t := range g.targets {
		binary.LittleEndian.PutUint32(b4[:], t)
		if _, err := bw.Write(b4[:]); err != nil {
			return err
		}
	}
	if g.Weighted() {
		for _, wt := range g.weights {
			binary.LittleEndian.PutUint64(b8[:], uint64frombits(wt))
			if _, err := bw.Write(b8[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinaryCSR deserializes a CSR written by WriteBinaryCSR.
func ReadBinaryCSR(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: missing CSR magic: %w", err)
	}
	if magic != csrMagic {
		return nil, fmt.Errorf("graph: bad CSR magic %q", magic[:])
	}
	hdr := make([]byte, 17)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: truncated CSR header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	m := binary.LittleEndian.Uint64(hdr[8:16])
	weighted := hdr[16] == 1
	const maxReasonable = 1 << 33
	if n == 0 || n > maxReasonable || m > maxReasonable {
		return nil, fmt.Errorf("graph: implausible CSR dimensions n=%d m=%d", n, m)
	}
	g := &CSR{n: int(n), offsets: make([]int64, n+1), targets: make([]uint32, m)}
	var b8 [8]byte
	for i := range g.offsets {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, fmt.Errorf("graph: truncated offsets: %w", err)
		}
		g.offsets[i] = int64(binary.LittleEndian.Uint64(b8[:]))
	}
	if g.offsets[n] != int64(m) {
		return nil, fmt.Errorf("graph: offsets end %d != edge count %d", g.offsets[n], m)
	}
	var b4 [4]byte
	for i := range g.targets {
		if _, err := io.ReadFull(br, b4[:]); err != nil {
			return nil, fmt.Errorf("graph: truncated targets: %w", err)
		}
		g.targets[i] = binary.LittleEndian.Uint32(b4[:])
		if uint64(g.targets[i]) >= n {
			return nil, fmt.Errorf("graph: target %d out of range", g.targets[i])
		}
	}
	if weighted {
		g.weights = make([]float64, m)
		for i := range g.weights {
			if _, err := io.ReadFull(br, b8[:]); err != nil {
				return nil, fmt.Errorf("graph: truncated weights: %w", err)
			}
			g.weights[i] = float64frombits(binary.LittleEndian.Uint64(b8[:]))
		}
	}
	// Validate monotone offsets.
	for i := 1; i <= int(n); i++ {
		if g.offsets[i] < g.offsets[i-1] {
			return nil, fmt.Errorf("graph: non-monotone offsets at %d", i)
		}
	}
	return g, nil
}

func uint64frombits(f float64) uint64 {
	return math.Float64bits(f)
}

func float64frombits(b uint64) float64 {
	return math.Float64frombits(b)
}
