package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"graphdse/internal/artifact"
)

// Graph I/O: the edge-list text format GTGraph-style tools exchange
// ("src dst [weight]" per line, '#'/'%' comments) and a compact binary CSR
// format for fast reload of generated graphs.

// WriteEdgeList renders every stored directed edge, one per line. For
// undirected graphs both directions are written (round-tripping through
// NewCSR with undirected=false preserves the structure).
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		wts := g.NeighborWeights(v)
		for i, u := range g.Neighbors(v) {
			var err error
			if wts != nil {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", v, u, wts[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses an edge-list stream. Vertex count is inferred as
// maxID+1 unless n > 0 forces it. Lines beginning with '#' or '%' are
// comments. undirected doubles each edge as in NewCSR.
func ReadEdgeList(r io.Reader, n int, undirected bool) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var edges []Edge
	maxID := uint32(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", lineNo, err)
		}
		e := Edge{Src: uint32(src), Dst: uint32(dst)}
		if len(fields) >= 3 {
			e.Weight, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
		}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: empty edge list")
	}
	if n <= 0 {
		n = int(maxID) + 1
	}
	return NewCSR(n, edges, undirected)
}

var csrMagic = [8]byte{'G', 'D', 'S', 'E', 'C', 'S', 'R', '1'}

// CSRFormatTag and CSRFormatVersion identify the v2 checksummed binary CSR
// container.
const (
	CSRFormatTag     = "GRAPHCSR"
	CSRFormatVersion = 2
)

// maxReasonableDim bounds the vertex/edge counts a reader will believe.
const maxReasonableDim = 1 << 33

// allocChunk bounds how many elements a reader allocates ahead of the data
// actually present: a corrupt dimension prefix costs at most one chunk of
// memory before the truncated body is noticed.
const allocChunk = 1 << 20

// WriteBinaryCSR serializes the CSR structure into the checksummed v2
// container (little-endian body: vertex count, edge count, weighted flag,
// offsets, targets, and weights if any). v1 files are still readable;
// WriteBinaryCSRV1 still writes them.
func WriteBinaryCSR(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	aw, err := artifact.NewWriter(bw, CSRFormatTag, CSRFormatVersion)
	if err != nil {
		return err
	}
	if err := writeCSRBody(aw, g); err != nil {
		return err
	}
	if err := aw.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinaryCSRV1 serializes the CSR structure in the legacy unchecksummed
// v1 layout: magic then the same body.
func WriteBinaryCSRV1(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(csrMagic[:]); err != nil {
		return err
	}
	if err := writeCSRBody(bw, g); err != nil {
		return err
	}
	return bw.Flush()
}

func writeCSRBody(w io.Writer, g *CSR) error {
	hdr := make([]byte, 17)
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.NumEdges()))
	if g.Weighted() {
		hdr[16] = 1
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var b8 [8]byte
	for _, o := range g.offsets {
		binary.LittleEndian.PutUint64(b8[:], uint64(o))
		if _, err := w.Write(b8[:]); err != nil {
			return err
		}
	}
	var b4 [4]byte
	for _, t := range g.targets {
		binary.LittleEndian.PutUint32(b4[:], t)
		if _, err := w.Write(b4[:]); err != nil {
			return err
		}
	}
	if g.Weighted() {
		for _, wt := range g.weights {
			binary.LittleEndian.PutUint64(b8[:], uint64frombits(wt))
			if _, err := w.Write(b8[:]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBinaryCSR deserializes a CSR written by WriteBinaryCSR (checksummed v2
// container) or WriteBinaryCSRV1 (legacy v1), auto-detected from the magic.
// In the v2 path every byte is checksum-verified before it is decoded.
func ReadBinaryCSR(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("graph: missing CSR magic: %w", err)
	}
	switch {
	case [8]byte(head) == csrMagic:
		br.Discard(8)
		return readCSRBody(br)
	case [8]byte(head) == artifact.Magic:
		ar, err := artifact.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("graph: %w", err)
		}
		if ar.Format() != CSRFormatTag {
			return nil, fmt.Errorf("graph: container holds %q, want %q", ar.Format(), CSRFormatTag)
		}
		if ar.Version() > CSRFormatVersion {
			return nil, fmt.Errorf("graph: CSR format version %d newer than supported %d", ar.Version(), CSRFormatVersion)
		}
		body := bufio.NewReader(ar)
		g, err := readCSRBody(body)
		if err != nil {
			return nil, err
		}
		// The container must end exactly where the body does: trailing
		// verified bytes mean the header lied about the dimensions. Reading
		// past the end also forces the sealed trailer to verify.
		switch _, err := body.ReadByte(); err {
		case io.EOF:
		case nil:
			return nil, fmt.Errorf("graph: trailing bytes after CSR body")
		default:
			return nil, fmt.Errorf("graph: %w", err)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("graph: bad CSR magic %q", head)
	}
}

func readCSRBody(br *bufio.Reader) (*CSR, error) {
	hdr := make([]byte, 17)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: truncated CSR header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	m := binary.LittleEndian.Uint64(hdr[8:16])
	weighted := hdr[16] == 1
	if n == 0 || n > maxReasonableDim || m > maxReasonableDim {
		return nil, fmt.Errorf("graph: implausible CSR dimensions n=%d m=%d", n, m)
	}
	// Allocate in allocChunk steps rather than trusting n and m up front: a
	// file whose header claims huge dimensions over a tiny body fails on the
	// missing data, not by exhausting memory.
	g := &CSR{n: int(n)}
	var b8 [8]byte
	g.offsets = make([]int64, 0, minU64(n+1, allocChunk))
	for i := uint64(0); i <= n; i++ {
		if _, err := io.ReadFull(br, b8[:]); err != nil {
			return nil, fmt.Errorf("graph: truncated offsets: %w", err)
		}
		g.offsets = append(g.offsets, int64(binary.LittleEndian.Uint64(b8[:])))
	}
	if g.offsets[n] != int64(m) {
		return nil, fmt.Errorf("graph: offsets end %d != edge count %d", g.offsets[n], m)
	}
	var b4 [4]byte
	g.targets = make([]uint32, 0, minU64(m, allocChunk))
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, b4[:]); err != nil {
			return nil, fmt.Errorf("graph: truncated targets: %w", err)
		}
		t := binary.LittleEndian.Uint32(b4[:])
		if uint64(t) >= n {
			return nil, fmt.Errorf("graph: target %d out of range", t)
		}
		g.targets = append(g.targets, t)
	}
	if weighted {
		g.weights = make([]float64, 0, minU64(m, allocChunk))
		for i := uint64(0); i < m; i++ {
			if _, err := io.ReadFull(br, b8[:]); err != nil {
				return nil, fmt.Errorf("graph: truncated weights: %w", err)
			}
			g.weights = append(g.weights, float64frombits(binary.LittleEndian.Uint64(b8[:])))
		}
	}
	// Validate monotone offsets.
	for i := 1; i <= int(n); i++ {
		if g.offsets[i] < g.offsets[i-1] {
			return nil, fmt.Errorf("graph: non-monotone offsets at %d", i)
		}
	}
	return g, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func uint64frombits(f float64) uint64 {
	return math.Float64bits(f)
}

func float64frombits(b uint64) float64 {
	return math.Float64frombits(b)
}
