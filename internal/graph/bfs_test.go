package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type bfsVariant struct {
	name string
	run  func(g *CSR, root uint32) (*BFSResult, error)
}

func bfsVariants() []bfsVariant {
	return []bfsVariant{
		{"topdown", BFSTopDown},
		{"bottomup", BFSBottomUp},
		{"diropt", func(g *CSR, root uint32) (*BFSResult, error) {
			return BFSDirectionOptimizing(g, root, DirectionOptConfig{})
		}},
	}
}

func TestBFSPathGraphLevels(t *testing.T) {
	g := pathGraph(t, 6)
	for _, v := range bfsVariants() {
		t.Run(v.name, func(t *testing.T) {
			res, err := v.run(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Visited != 6 {
				t.Fatalf("Visited = %d", res.Visited)
			}
			for i := 0; i < 6; i++ {
				if res.Level[i] != int32(i) {
					t.Fatalf("Level[%d] = %d", i, res.Level[i])
				}
			}
			if err := ValidateBFS(g, 0, res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBFSDisconnected(t *testing.T) {
	// Two components: 0-1 and 2-3.
	g, err := NewCSR(4, []Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bfsVariants() {
		res, err := v.run(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if res.Visited != 2 {
			t.Fatalf("%s: Visited = %d, want 2", v.name, res.Visited)
		}
		if res.Parent[2] != NoParent || res.Level[3] != -1 {
			t.Fatalf("%s: unreachable vertices should stay unmarked", v.name)
		}
		if err := ValidateBFS(g, 0, res); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
	}
}

func TestBFSRootOutOfRange(t *testing.T) {
	g := pathGraph(t, 3)
	for _, v := range bfsVariants() {
		if _, err := v.run(g, 99); err == nil {
			t.Fatalf("%s: expected root error", v.name)
		}
	}
}

func TestBFSSingleVertex(t *testing.T) {
	g, err := NewCSR(1, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFSTopDown(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 1 || res.Parent[0] != 0 || res.Level[0] != 0 {
		t.Fatalf("single vertex result %+v", res)
	}
}

func TestBFSVariantsAgreeOnRMAT(t *testing.T) {
	g, err := GenerateGTGraph(256, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		root := uint32(rng.Intn(g.NumVertices()))
		base, err := BFSTopDown(g, root)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range bfsVariants()[1:] {
			res, err := v.run(g, root)
			if err != nil {
				t.Fatalf("%s: %v", v.name, err)
			}
			if res.Visited != base.Visited {
				t.Fatalf("%s: visited %d vs %d", v.name, res.Visited, base.Visited)
			}
			for i := range res.Level {
				if res.Level[i] != base.Level[i] {
					t.Fatalf("%s: level[%d] = %d vs %d", v.name, i, res.Level[i], base.Level[i])
				}
			}
			if err := ValidateBFS(g, root, res); err != nil {
				t.Fatalf("%s: %v", v.name, err)
			}
		}
	}
}

func TestBFSPaperWorkloadValidates(t *testing.T) {
	// The exact workload of the paper: 1,024 vertices, edge factor 16,
	// BFS from a random root.
	g, err := GenerateGTGraph(1024, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	root := uint32(rand.New(rand.NewSource(1)).Intn(1024))
	res, err := BFSTopDown(g, root)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBFS(g, root, res); err != nil {
		t.Fatal(err)
	}
	// An R-MAT graph with edge factor 16 has a dominant connected component.
	if res.Visited < g.NumVertices()/2 {
		t.Fatalf("Visited = %d of %d, expected dominant component", res.Visited, g.NumVertices())
	}
}

func TestValidateBFSCatchesCorruption(t *testing.T) {
	g := pathGraph(t, 5)
	res, err := BFSTopDown(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	bad := *res
	bad.Parent = append([]uint32(nil), res.Parent...)
	bad.Level = append([]int32(nil), res.Level...)
	bad.Parent[3] = 1 // 1->3 is not an edge
	if err := ValidateBFS(g, 0, &bad); err == nil {
		t.Fatal("expected tree-edge violation")
	}

	bad2 := *res
	bad2.Parent = append([]uint32(nil), res.Parent...)
	bad2.Level = append([]int32(nil), res.Level...)
	bad2.Level[2] = 5 // wrong depth
	if err := ValidateBFS(g, 0, &bad2); err == nil {
		t.Fatal("expected level violation")
	}

	bad3 := *res
	bad3.Parent = append([]uint32(nil), res.Parent...)
	bad3.Level = append([]int32(nil), res.Level...)
	bad3.Parent[0] = 1 // root must be its own parent
	if err := ValidateBFS(g, 0, &bad3); err == nil {
		t.Fatal("expected root violation")
	}

	bad4 := *res
	bad4.Parent = append([]uint32(nil), res.Parent...)
	bad4.Level = []int32{0} // wrong size
	if err := ValidateBFS(g, 0, &bad4); err == nil {
		t.Fatal("expected size violation")
	}
}

func TestBFSEdgesTraversedBounded(t *testing.T) {
	g, err := GenerateGTGraph(128, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFSTopDown(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesTraversed <= 0 || res.EdgesTraversed > g.NumEdges() {
		t.Fatalf("EdgesTraversed = %d, graph m = %d", res.EdgesTraversed, g.NumEdges())
	}
}

// Property: on random graphs, every BFS variant yields a tree that passes
// Graph500 validation and all variants agree on reachability counts.
func TestPropBFSValidOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		edges, err := GenerateErdosRenyi(n, int64(1+rng.Intn(4*n)), false, seed)
		if err != nil {
			return false
		}
		g, err := NewCSR(n, edges, true)
		if err != nil {
			return false
		}
		root := uint32(rng.Intn(n))
		var visited [3]int
		for i, v := range bfsVariants() {
			res, err := v.run(g, root)
			if err != nil {
				return false
			}
			if ValidateBFS(g, root, res) != nil {
				return false
			}
			visited[i] = res.Visited
		}
		return visited[0] == visited[1] && visited[1] == visited[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
