package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := GenerateGTGraph(128, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	// Stored edges already include both directions, so reload as directed.
	got, err := ReadEdgeList(&buf, g.NumVertices(), false)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), got.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestEdgeListWeightedRoundTrip(t *testing.T) {
	g, err := NewCSR(3, []Edge{{Src: 0, Dst: 1, Weight: 0.5}, {Src: 1, Dst: 2, Weight: 1.25}}, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Weighted() {
		t.Fatal("weights lost")
	}
	if w := got.NeighborWeights(0); w[0] != 0.5 {
		t.Fatalf("weight = %v", w[0])
	}
}

func TestReadEdgeListCommentsAndInference(t *testing.T) {
	in := "# comment\n% matrix-market style\n0 3\n1 2\n\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("inferred n = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"0\n",           // too few fields
		"x 1\n",         // bad src
		"1 y\n",         // bad dst
		"1 2 notanum\n", // bad weight
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c), 0, false); err == nil {
			t.Fatalf("expected error for %q", c)
		}
	}
}

func TestBinaryCSRRoundTrip(t *testing.T) {
	g, err := GenerateGTGraph(256, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatal("dimensions lost")
	}
	// BFS from the same root must agree exactly.
	a, err := BFSTopDown(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BFSTopDown(got, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Visited != b.Visited || a.EdgesTraversed != b.EdgesTraversed {
		t.Fatal("round-tripped graph traverses differently")
	}
}

func TestBinaryCSRWeighted(t *testing.T) {
	edges, err := GenerateErdosRenyi(64, 256, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewCSR(64, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Weighted() {
		t.Fatal("weights lost")
	}
	da, err := SSSPDijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	db, err := SSSPDijkstra(got, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("distance %d differs after round trip", i)
		}
	}
}

func TestBinaryCSRRejectsCorruption(t *testing.T) {
	if _, err := ReadBinaryCSR(strings.NewReader("")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadBinaryCSR(strings.NewReader("WRONGMAG")); err == nil {
		t.Fatal("expected bad-magic error")
	}
	g := pathGraph(t, 4)
	var buf bytes.Buffer
	if err := WriteBinaryCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncate.
	if _, err := ReadBinaryCSR(bytes.NewReader(data[:len(data)-4])); err == nil {
		t.Fatal("expected truncation error")
	}
	// Corrupt a target to point out of range.
	corrupt := append([]byte(nil), data...)
	ti := len(corrupt) - 2 // inside the last 4-byte target
	corrupt[ti] = 0xFF
	if _, err := ReadBinaryCSR(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("expected out-of-range target error")
	}
}
