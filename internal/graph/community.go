package graph

import (
	"math/rand"
	"sort"
)

// LabelPropagationCommunities detects communities with synchronous label
// propagation (Raghavan et al.): each vertex repeatedly adopts the most
// frequent label among its neighbors, ties broken by the smallest label.
// Deterministic per seed (the seed shuffles the update order). Returns the
// community label per vertex and the number of iterations performed.
func LabelPropagationCommunities(g *CSR, maxIter int, seed int64) ([]uint32, int) {
	n := g.NumVertices()
	if maxIter <= 0 {
		maxIter = 50
	}
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	order := rand.New(rand.NewSource(seed)).Perm(n)
	counts := map[uint32]int{}
	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for _, vi := range order {
			v := uint32(vi)
			adj := g.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, u := range adj {
				counts[labels[u]]++
			}
			best := labels[v]
			bestCount := -1
			for lbl, c := range counts {
				if c > bestCount || (c == bestCount && lbl < best) {
					best, bestCount = lbl, c
				}
			}
			if best != labels[v] {
				labels[v] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return labels, iters
}

// Modularity computes Newman's modularity Q of a community assignment over
// the undirected graph (stored directed edges counted once per direction,
// which cancels in the normalization).
func Modularity(g *CSR, labels []uint32) float64 {
	m2 := float64(g.NumEdges()) // 2m for undirected storage
	if m2 == 0 {
		return 0
	}
	// Sum of degrees per community and intra-community edge endpoints.
	degSum := map[uint32]float64{}
	intra := map[uint32]float64{}
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		lv := labels[v]
		degSum[lv] += float64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if labels[u] == lv {
				intra[lv]++
			}
		}
	}
	var q float64
	for lbl, ds := range degSum {
		q += intra[lbl]/m2 - (ds/m2)*(ds/m2)
	}
	return q
}

// CommunitySizes returns community sizes sorted descending.
func CommunitySizes(labels []uint32) []int {
	counts := map[uint32]int{}
	for _, l := range labels {
		counts[l]++
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
