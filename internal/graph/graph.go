// Package graph implements the graph-analytics substrate of the paper's
// workload: synthetic generators in the GTGraph family (R-MAT, Erdős–Rényi,
// Graph500 Kronecker), a compressed-sparse-row representation, the Graph500
// BFS kernel (top-down, bottom-up and direction-optimizing variants, with
// parent-tree validation), and additional analytics kernels (PageRank,
// connected components, Δ-stepping SSSP, triangle counting) used for the
// workload-sensitivity extensions.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a directed edge with an optional weight.
type Edge struct {
	Src, Dst uint32
	Weight   float64
}

// CSR is a compressed-sparse-row graph. For undirected graphs every edge is
// stored in both directions. Vertex IDs are dense in [0, NumVertices).
type CSR struct {
	offsets []int64   // len = n+1
	targets []uint32  // len = m
	weights []float64 // len = m when weighted, else nil
	n       int
}

// ErrVertexRange indicates an out-of-range vertex ID.
var ErrVertexRange = errors.New("graph: vertex out of range")

// NewCSR builds a CSR from an edge list over n vertices. When undirected is
// true each input edge is inserted in both directions. Self-loops are kept;
// duplicate edges are kept (multigraph semantics, matching GTGraph output).
func NewCSR(n int, edges []Edge, undirected bool) (*CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: non-positive vertex count %d", n)
	}
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("%w: edge %d->%d with n=%d", ErrVertexRange, e.Src, e.Dst, n)
		}
	}
	weighted := false
	for _, e := range edges {
		if e.Weight != 0 {
			weighted = true
			break
		}
	}
	deg := make([]int64, n)
	for _, e := range edges {
		deg[e.Src]++
		if undirected {
			deg[e.Dst]++
		}
	}
	g := &CSR{n: n, offsets: make([]int64, n+1)}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	m := g.offsets[n]
	g.targets = make([]uint32, m)
	if weighted {
		g.weights = make([]float64, m)
	}
	cursor := make([]int64, n)
	copy(cursor, g.offsets[:n])
	insert := func(s, d uint32, w float64) {
		i := cursor[s]
		cursor[s]++
		g.targets[i] = d
		if weighted {
			g.weights[i] = w
		}
	}
	for _, e := range edges {
		insert(e.Src, e.Dst, e.Weight)
		if undirected {
			insert(e.Dst, e.Src, e.Weight)
		}
	}
	// Sort adjacency lists for deterministic traversal order and cache-
	// friendly scans.
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		if weighted {
			sortAdjWeighted(g.targets[lo:hi], g.weights[lo:hi])
		} else {
			tg := g.targets[lo:hi]
			sort.Slice(tg, func(a, b int) bool { return tg[a] < tg[b] })
		}
	}
	return g, nil
}

func sortAdjWeighted(t []uint32, w []float64) {
	idx := make([]int, len(t))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t[idx[a]] < t[idx[b]] })
	tc := append([]uint32(nil), t...)
	wc := append([]float64(nil), w...)
	for i, j := range idx {
		t[i] = tc[j]
		w[i] = wc[j]
	}
}

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int { return g.n }

// NumEdges returns the number of stored directed edges (2× the undirected
// edge count for undirected graphs).
func (g *CSR) NumEdges() int64 { return g.offsets[g.n] }

// Degree returns the out-degree of v.
func (g *CSR) Degree(v uint32) int64 {
	return g.offsets[v+1] - g.offsets[v]
}

// Neighbors returns the adjacency slice of v (aliased, do not modify).
func (g *CSR) Neighbors(v uint32) []uint32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// NeighborWeights returns the weight slice parallel to Neighbors(v), or nil
// for unweighted graphs.
func (g *CSR) NeighborWeights(v uint32) []float64 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// Weighted reports whether edge weights are stored.
func (g *CSR) Weighted() bool { return g.weights != nil }

// Offsets exposes the CSR offset array (len n+1). The system simulator uses
// it to lay the graph out in simulated memory.
func (g *CSR) Offsets() []int64 { return g.offsets }

// Targets exposes the CSR target array. The system simulator uses it to lay
// the graph out in simulated memory.
func (g *CSR) Targets() []uint32 { return g.targets }

// MaxDegree returns the largest out-degree and one vertex attaining it.
func (g *CSR) MaxDegree() (uint32, int64) {
	var best uint32
	var bd int64 = -1
	for v := 0; v < g.n; v++ {
		if d := g.Degree(uint32(v)); d > bd {
			bd = d
			best = uint32(v)
		}
	}
	return best, bd
}

// HasEdge reports whether the directed edge u->v is stored, via binary
// search over the sorted adjacency list.
func (g *CSR) HasEdge(u, v uint32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Transpose returns the reverse graph (every stored edge u→v becomes v→u),
// used to run pull-style directed analytics. Weights are carried along.
// The error is non-nil only if the receiver's invariants are broken (a
// vertex id out of range), which a CSR built through NewCSR cannot exhibit.
func (g *CSR) Transpose() (*CSR, error) {
	edges := make([]Edge, 0, g.NumEdges())
	for v := uint32(0); int(v) < g.n; v++ {
		wts := g.NeighborWeights(v)
		for i, u := range g.Neighbors(v) {
			e := Edge{Src: u, Dst: v}
			if wts != nil {
				e.Weight = wts[i]
			}
			edges = append(edges, e)
		}
	}
	t, err := NewCSR(g.n, edges, false)
	if err != nil {
		return nil, fmt.Errorf("graph: transpose: %w", err)
	}
	return t, nil
}

// InDegrees returns the in-degree of every vertex (over stored directed
// edges).
func (g *CSR) InDegrees() []int64 {
	in := make([]int64, g.n)
	for _, t := range g.targets {
		in[t]++
	}
	return in
}
