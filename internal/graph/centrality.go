package graph

import "fmt"

// BetweennessCentrality computes exact vertex betweenness via Brandes'
// algorithm over unweighted shortest paths. For undirected CSR graphs each
// pair is implicitly counted in both directions; divide by 2 for the
// conventional undirected normalization.
func BetweennessCentrality(g *CSR) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	// Reusable per-source buffers.
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]uint32, 0, n)
	preds := make([][]uint32, n)

	for s := uint32(0); int(s) < n; s++ {
		order = order[:0]
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		queue := []uint32{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}

// KCoreDecomposition returns each vertex's core number using the
// Matula–Beck peeling algorithm (bucket queue over degrees). Multi-edges
// and self-loops contribute to degree as stored.
func KCoreDecomposition(g *CSR) []int {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = int(g.Degree(uint32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bins := make([]int, maxDeg+2)
	for _, d := range deg {
		bins[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bins[d]
		bins[d] = start
		start += c
	}
	pos := make([]int, n)
	vert := make([]int, n)
	for v := 0; v < n; v++ {
		pos[v] = bins[deg[v]]
		vert[pos[v]] = v
		bins[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bins[d] = bins[d-1]
	}
	bins[0] = 0

	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range g.Neighbors(uint32(v)) {
			if core[u] > core[v] {
				du := core[u]
				pu := pos[u]
				pw := bins[du]
				w := vert[pw]
				if u != uint32(w) {
					pos[u] = pw
					vert[pu] = w
					pos[w] = pu
					vert[pw] = int(u)
				}
				bins[du]++
				core[u]--
			}
		}
	}
	return core
}

// MaxCore returns the largest core number in a decomposition.
func MaxCore(core []int) int {
	m := 0
	for _, c := range core {
		if c > m {
			m = c
		}
	}
	return m
}

// DegreeStats summarizes a graph's degree distribution.
type DegreeStats struct {
	Min, Max  int64
	Mean      float64
	Median    float64
	Isolated  int // zero-degree vertices
	Histogram map[int64]int
}

// ComputeDegreeStats builds degree-distribution statistics.
func ComputeDegreeStats(g *CSR) DegreeStats {
	n := g.NumVertices()
	st := DegreeStats{Min: g.Degree(0), Histogram: map[int64]int{}}
	degs := make([]float64, n)
	var sum int64
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		degs[v] = float64(d)
		sum += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		if d == 0 {
			st.Isolated++
		}
		st.Histogram[d]++
	}
	st.Mean = float64(sum) / float64(n)
	st.Median = medianOf(degs)
	return st
}

func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	// insertion-free: simple quickselect would be overkill; sort copy.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// GlobalClusteringCoefficient returns 3×triangles / open+closed triplets
// (transitivity). Returns 0 for graphs without wedges.
func GlobalClusteringCoefficient(g *CSR) float64 {
	tri := TriangleCount(g)
	var wedges int64
	for v := 0; v < g.NumVertices(); v++ {
		d := int64(len(dedupNeighbors(g, uint32(v))))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(tri) / float64(wedges)
}

// dedupNeighbors returns the sorted unique neighbors of v excluding self
// loops.
func dedupNeighbors(g *CSR, v uint32) []uint32 {
	adj := g.Neighbors(v)
	out := make([]uint32, 0, len(adj))
	var last uint32
	first := true
	for _, u := range adj {
		if u == v {
			continue
		}
		if first || u != last {
			out = append(out, u)
			last = u
			first = false
		}
	}
	return out
}

// String renders the stats for reports.
func (s DegreeStats) String() string {
	return fmt.Sprintf("degree min=%d max=%d mean=%.2f median=%.1f isolated=%d",
		s.Min, s.Max, s.Mean, s.Median, s.Isolated)
}
