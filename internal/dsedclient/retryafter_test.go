package dsedclient

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{" 2 ", 2 * time.Second},
		{"-3", 0},
		{"garbage", 0},
		{"99999", maxRetryAfter}, // capped: a server cannot park us forever
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// HTTP-date form: a moment ~3s out parses to a positive bounded delay.
	date := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(date); got <= 0 || got > 3*time.Second {
		t.Errorf("parseRetryAfter(%q) = %v, want (0, 3s]", date, got)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(past); got != 0 {
		t.Errorf("parseRetryAfter(past date) = %v, want 0", got)
	}
}

// TestFollowHonorsRetryAfter: when the daemon sheds the stream with 503/507
// + Retry-After (draining, spool pressure, degraded storage), the follower
// waits at least the server-stated delay instead of its own much shorter
// jittered backoff.
func TestFollowHonorsRetryAfter(t *testing.T) {
	for _, status := range []int{http.StatusServiceUnavailable, http.StatusInsufficientStorage} {
		srv, _ := sseServer(t, []func(int64, http.ResponseWriter, *http.Request){
			func(n int64, w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "shedding", status)
			},
			func(n int64, w http.ResponseWriter, r *http.Request) {
				sendEvent(w, Event{Seq: 1, Job: "j", Type: "state", State: "done"})
			},
		})
		var observed []time.Duration
		start := time.Now()
		term, err := New(srv.URL, fastOpts()).Follow(context.Background(), "j", FollowOptions{
			OnRetry: func(failures int, err error, delay time.Duration) {
				observed = append(observed, delay)
			},
		})
		if err != nil {
			t.Fatalf("status %d: follow: %v", status, err)
		}
		if term.State != "done" {
			t.Fatalf("status %d: terminal %+v", status, term)
		}
		if len(observed) == 0 || observed[0] < time.Second {
			t.Fatalf("status %d: retry delay %v, want >= server's 1s Retry-After", status, observed)
		}
		if elapsed := time.Since(start); elapsed < time.Second {
			t.Fatalf("status %d: reconnected after %v, before the server's Retry-After", status, elapsed)
		}
	}
}

// TestFollowRetryAfterIgnoredWhenShorter: a server hint smaller than the
// local jittered backoff must not shorten the wait — the max of the two
// governs, so a flapping daemon cannot induce a tight retry loop.
func TestFollowRetryAfterIgnoredWhenShorter(t *testing.T) {
	srv, _ := sseServer(t, []func(int64, http.ResponseWriter, *http.Request){
		func(n int64, w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "shedding", http.StatusServiceUnavailable)
		},
		func(n int64, w http.ResponseWriter, r *http.Request) {
			sendEvent(w, Event{Seq: 1, Job: "j", Type: "state", State: "done"})
		},
	})
	var observed []time.Duration
	term, err := New(srv.URL, fastOpts()).Follow(context.Background(), "j", FollowOptions{
		OnRetry: func(failures int, err error, delay time.Duration) {
			observed = append(observed, delay)
		},
	})
	if err != nil || term.State != "done" {
		t.Fatalf("follow: term=%+v err=%v", term, err)
	}
	if len(observed) == 0 || observed[0] <= 0 {
		t.Fatalf("retry delay %v: a zero Retry-After must not defeat local backoff", observed)
	}
}
