// Package dsedclient is the resilient streaming client for the DSE daemon's
// job-event API. Its one job is to turn the daemon's at-least-once,
// resumable SSE stream into an exactly-once, gap-free event sequence at the
// caller — across network failures, daemon restarts, and slow-consumer
// evictions — or fail loudly when the daemon stays unreachable.
//
// The client is a small state machine:
//
//	connect → stream → (terminal event? done)
//	   ↑         |
//	   |     disconnect/evict/stall
//	   |         ↓
//	   └── backoff (jittered exponential, circuit breaker) ──→ reconnect
//	                                         with Last-Event-ID = last seq
//
// Every reconnect resumes from the last sequence number actually delivered,
// and anything the server replays at or below that position is filtered, so
// the caller's OnEvent sees each journaled event exactly once, in order.
package dsedclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"graphdse/internal/dse"
)

// Event mirrors the daemon's wire event (internal/dsed.Event) with the
// state as a plain string, so the client package depends only on the JSON
// contract, not the daemon implementation.
type Event struct {
	Seq         uint64 `json:"seq"`
	Job         string `json:"job"`
	Type        string `json:"type"`
	State       string `json:"state,omitempty"`
	Attempt     int    `json:"attempt,omitempty"`
	Done        int    `json:"done,omitempty"`
	Total       int    `json:"total,omitempty"`
	Survivors   int    `json:"survivors,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	Error       string `json:"error,omitempty"`
	Point       string `json:"point,omitempty"`
	Class       string `json:"class,omitempty"`
	Attempts    int    `json:"attempts,omitempty"`
}

// terminalStates are the job states that end a stream (mirrors
// dsed.JobState.Terminal).
var terminalStates = map[string]bool{
	"done": true, "failed": true, "cancelled": true, "quarantined": true,
}

// Terminal reports whether the event ends its job's stream.
func (e *Event) Terminal() bool { return e.Type == "state" && terminalStates[e.State] }

// Client failure sentinels.
var (
	// ErrCircuitOpen reports too many consecutive connection failures with
	// no delivered progress: the daemon is treated as down and the caller
	// decides, instead of the client retrying forever.
	ErrCircuitOpen = errors.New("dsedclient: circuit open: daemon unreachable")
	// ErrNotFound reports a job ID the daemon does not know. The spool is
	// durable across restarts, so an unknown job is a caller error, not a
	// transient condition, and is never retried.
	ErrNotFound = errors.New("dsedclient: unknown job")
)

// Options tunes the client's resilience envelope. Zero values get
// conservative defaults.
type Options struct {
	// HTTPClient performs the requests (default http.DefaultClient). The
	// client relies on per-request contexts, not client-level timeouts — a
	// blanket timeout would kill healthy long-lived streams.
	HTTPClient *http.Client
	// BackoffBase seeds the reconnect backoff (default 100ms), doubled per
	// consecutive failure with deterministic jitter — the same policy the
	// sweep engine uses for point retries (dse.BackoffJitter).
	BackoffBase time.Duration
	// BackoffMax caps one backoff delay (default 5s).
	BackoffMax time.Duration
	// MaxConsecutiveFailures opens the circuit breaker: that many
	// connect-or-stream failures in a row without a single delivered event
	// returns ErrCircuitOpen (default 8). Any delivered event resets the
	// count.
	MaxConsecutiveFailures int
	// StallTimeout bounds silence on an open stream (default 30s). The
	// daemon heartbeats every few seconds, so a stream with no bytes for
	// this long is a dead peer and the client reconnects. It must be
	// comfortably larger than the daemon's heartbeat interval.
	StallTimeout time.Duration
}

func (o *Options) fill() {
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.MaxConsecutiveFailures <= 0 {
		o.MaxConsecutiveFailures = 8
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 30 * time.Second
	}
}

// retryAfterError wraps a status-coded stream failure that carried an
// explicit Retry-After pacing hint — the daemon's 429 (saturated), 503
// (draining or storage-degraded), and 507 (spool over watermark) responses
// all send one. The reconnect loop honors the server's pacing instead of
// hammering a daemon that just said exactly when to come back.
type retryAfterError struct {
	status int
	delay  time.Duration
	msg    string
}

func (e *retryAfterError) Error() string { return e.msg }

// retryDelay extracts a server-suggested reconnect delay (0 when none).
func retryDelay(err error) time.Duration {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.delay
	}
	return 0
}

// maxRetryAfter caps how long a server can park this client: a Retry-After
// beyond this is treated as this (the daemon itself never sends >60s).
const maxRetryAfter = 5 * time.Minute

// parseRetryAfter parses a Retry-After header value — delta-seconds or an
// HTTP-date — into a bounded delay (0 when absent or unparseable).
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	var d time.Duration
	if sec, err := strconv.Atoi(v); err == nil {
		if sec < 0 {
			return 0
		}
		d = time.Duration(sec) * time.Second
	} else if t, terr := http.ParseTime(v); terr == nil {
		d = time.Until(t)
	}
	if d < 0 {
		d = 0
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// Client follows job-event streams from one daemon.
type Client struct {
	base string
	opts Options
}

// New builds a client for the daemon at baseURL (e.g. "http://127.0.0.1:8080").
func New(baseURL string, opts Options) *Client {
	opts.fill()
	return &Client{base: strings.TrimSuffix(baseURL, "/"), opts: opts}
}

// FollowOptions parameterizes one Follow call.
type FollowOptions struct {
	// After resumes delivery after this sequence number (0 = from the
	// beginning).
	After uint64
	// OnEvent receives each event exactly once, in sequence order.
	// Server-side lag notices (Type "lag", Seq 0) are also delivered so
	// callers can see evictions; they do not advance the resume position.
	OnEvent func(Event)
	// OnRetry, when set, observes each reconnect decision: the consecutive
	// failure count, the triggering error, and the backoff delay chosen.
	OnRetry func(failures int, err error, delay time.Duration)
}

// Follow streams a job's events until its terminal state event arrives and
// returns that event. It reconnects through transient failures with
// jittered exponential backoff, resuming via Last-Event-ID so the delivered
// sequence stays gap-free and duplicate-free; it returns early with
// ErrNotFound for unknown jobs, ErrCircuitOpen when the daemon stays down,
// or ctx.Err() when the caller gives up.
func (c *Client) Follow(ctx context.Context, id string, fo FollowOptions) (Event, error) {
	last := fo.After
	failures := 0
	for {
		term, delivered, err := c.streamOnce(ctx, id, &last, fo.OnEvent)
		if term != nil {
			return *term, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return Event{}, cerr
		}
		if errors.Is(err, ErrNotFound) {
			return Event{}, err
		}
		// Delivered progress proves the daemon was alive this attempt:
		// reset the breaker so a long job with occasional blips never
		// trips it.
		if delivered {
			failures = 0
		}
		failures++
		if failures >= c.opts.MaxConsecutiveFailures {
			return Event{}, fmt.Errorf("%w (%d attempts, last error: %v)", ErrCircuitOpen, failures, err)
		}
		delay := dse.BackoffJitter(c.opts.BackoffBase, failures, id, c.opts.BackoffMax)
		// A server-supplied Retry-After outranks the local schedule when it
		// asks for more patience: the daemon knows when its janitor sweeps
		// or its storage probe fires, and retrying sooner is wasted load.
		if ra := retryDelay(err); ra > delay {
			delay = ra
		}
		if fo.OnRetry != nil {
			fo.OnRetry(failures, err, delay)
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			return Event{}, ctx.Err()
		case <-timer.C:
		}
	}
}

// streamOnce opens one SSE connection and consumes it until the stream
// ends. It returns the terminal event if one arrived, whether any event was
// delivered on this connection, and the error that ended the stream.
// *last advances as events are delivered, so the next connection resumes
// precisely.
func (c *Client) streamOnce(ctx context.Context, id string, last *uint64, onEvent func(Event)) (term *Event, delivered bool, err error) {
	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	url := fmt.Sprintf("%s/v1/jobs/%s/events", c.base, id)
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *last > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*last, 10))
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, false, fmt.Errorf("%w: %s", ErrNotFound, id)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		serr := fmt.Errorf("dsedclient: events %s: status %d", id, resp.StatusCode)
		switch resp.StatusCode {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInsufficientStorage:
			if d := parseRetryAfter(resp.Header.Get("Retry-After")); d > 0 {
				return nil, false, &retryAfterError{status: resp.StatusCode, delay: d, msg: serr.Error()}
			}
		}
		return nil, false, serr
	}

	// Stall watchdog: any traffic — events or heartbeat comments — rearms
	// it; a silent peer is cut off and the reconnect loop takes over.
	stall := time.AfterFunc(c.opts.StallTimeout, cancel)
	defer stall.Stop()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	lagged := false
	for sc.Scan() {
		stall.Reset(c.opts.StallTimeout)
		line := sc.Bytes()
		switch {
		case len(bytes.TrimSpace(line)) == 0:
			// Frame boundary: dispatch.
			if len(data) == 0 {
				continue
			}
			var ev Event
			uerr := json.Unmarshal(data, &ev)
			data = nil
			if uerr != nil {
				return nil, delivered, fmt.Errorf("dsedclient: bad event payload: %w", uerr)
			}
			if ev.Type == "lag" {
				// Evicted for lagging: surface it, then reconnect and
				// resume from the journal.
				if onEvent != nil {
					onEvent(ev)
				}
				lagged = true
				cancel()
				continue
			}
			if ev.Seq <= *last {
				continue // replay overlap: already delivered
			}
			*last = ev.Seq
			delivered = true
			if onEvent != nil {
				onEvent(ev)
			}
			if ev.Terminal() {
				e := ev
				return &e, delivered, nil
			}
		case line[0] == ':':
			// Heartbeat comment: liveness only.
		case bytes.HasPrefix(line, []byte("data:")):
			payload := bytes.TrimPrefix(line, []byte("data:"))
			payload = bytes.TrimPrefix(payload, []byte(" "))
			if len(data) > 0 {
				data = append(data, '\n')
			}
			data = append(data, payload...)
		default:
			// id:/event: fields are advisory here — Seq and Type ride in
			// the JSON payload, which is the authoritative copy.
		}
	}
	if lagged {
		return nil, delivered, fmt.Errorf("dsedclient: evicted as slow consumer; resuming after seq %d", *last)
	}
	if serr := sc.Err(); serr != nil {
		return nil, delivered, fmt.Errorf("dsedclient: stream: %w", serr)
	}
	return nil, delivered, errors.New("dsedclient: stream ended without terminal event")
}
