package dsedclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// sendEvent writes one SSE frame for ev and flushes.
func sendEvent(w http.ResponseWriter, ev Event) {
	data, _ := json.Marshal(ev)
	if ev.Seq > 0 {
		fmt.Fprintf(w, "id: %d\n", ev.Seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	w.(http.Flusher).Flush()
}

// sseServer builds a test daemon whose /events handler is scripted per
// connection: script[i] serves connection i (later connections reuse the
// last script entry). It returns the server and a connection counter.
func sseServer(t *testing.T, script []func(n int64, w http.ResponseWriter, r *http.Request)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var conns atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		idx := int(n - 1)
		if idx >= len(script) {
			idx = len(script) - 1
		}
		w.Header().Set("Content-Type", "text/event-stream")
		script[idx](n, w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &conns
}

// fastOpts keeps reconnect tests quick.
func fastOpts() Options {
	return Options{
		BackoffBase:            5 * time.Millisecond,
		BackoffMax:             20 * time.Millisecond,
		MaxConsecutiveFailures: 4,
		StallTimeout:           2 * time.Second,
	}
}

func TestFollowReconnectResumesWithLastEventID(t *testing.T) {
	srv, conns := sseServer(t, []func(int64, http.ResponseWriter, *http.Request){
		func(n int64, w http.ResponseWriter, r *http.Request) {
			if r.Header.Get("Last-Event-ID") != "" {
				t.Errorf("first connection sent Last-Event-ID %q", r.Header.Get("Last-Event-ID"))
			}
			for i := uint64(1); i <= 3; i++ {
				sendEvent(w, Event{Seq: i, Job: "j", Type: "progress", Done: int(i), Total: 5})
			}
			// Drop the connection mid-stream: no terminal event.
		},
		func(n int64, w http.ResponseWriter, r *http.Request) {
			if got := r.Header.Get("Last-Event-ID"); got != "3" {
				t.Errorf("reconnect Last-Event-ID = %q, want 3", got)
			}
			sendEvent(w, Event{Seq: 4, Job: "j", Type: "seal"})
			sendEvent(w, Event{Seq: 5, Job: "j", Type: "state", State: "done", Survivors: 7})
		},
	})

	var evs []Event
	var retries int
	term, err := New(srv.URL, fastOpts()).Follow(context.Background(), "j", FollowOptions{
		OnEvent: func(ev Event) { evs = append(evs, ev) },
		OnRetry: func(failures int, err error, delay time.Duration) { retries++ },
	})
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if term.State != "done" || term.Survivors != 7 {
		t.Fatalf("terminal = %+v", term)
	}
	if conns.Load() != 2 || retries != 1 {
		t.Fatalf("connections = %d, retries = %d; want 2 and 1", conns.Load(), retries)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("evs[%d].Seq = %d: merged sequence has a gap or duplicate", i, ev.Seq)
		}
	}
	if len(evs) != 5 {
		t.Fatalf("delivered %d events, want 5", len(evs))
	}
}

func TestFollowFiltersReplayOverlap(t *testing.T) {
	srv, _ := sseServer(t, []func(int64, http.ResponseWriter, *http.Request){
		func(n int64, w http.ResponseWriter, r *http.Request) {
			// Deliberate at-least-once overlap: 1 2 3 2 3 4(terminal).
			for _, seq := range []uint64{1, 2, 3, 2, 3} {
				sendEvent(w, Event{Seq: seq, Job: "j", Type: "progress"})
			}
			sendEvent(w, Event{Seq: 4, Job: "j", Type: "state", State: "done"})
		},
	})
	var evs []Event
	if _, err := New(srv.URL, fastOpts()).Follow(context.Background(), "j", FollowOptions{
		OnEvent: func(ev Event) { evs = append(evs, ev) },
	}); err != nil {
		t.Fatalf("follow: %v", err)
	}
	if len(evs) != 4 {
		t.Fatalf("delivered %d events, want 4 (duplicates filtered)", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("evs[%d].Seq = %d", i, ev.Seq)
		}
	}
}

func TestFollowCircuitBreaker(t *testing.T) {
	var conns atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	_, err := New(srv.URL, fastOpts()).Follow(context.Background(), "j", FollowOptions{})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if got := conns.Load(); got != 4 {
		t.Fatalf("connections = %d, want MaxConsecutiveFailures (4)", got)
	}
}

func TestFollowProgressResetsBreaker(t *testing.T) {
	// Each connection delivers one fresh event then dies. With
	// MaxConsecutiveFailures = 4, more than 4 connections must still
	// succeed because every attempt delivers progress.
	srv, conns := sseServer(t, []func(int64, http.ResponseWriter, *http.Request){
		func(n int64, w http.ResponseWriter, r *http.Request) {
			if n < 7 {
				sendEvent(w, Event{Seq: uint64(n), Job: "j", Type: "progress", Done: int(n)})
				return
			}
			sendEvent(w, Event{Seq: 7, Job: "j", Type: "state", State: "done"})
		},
	})
	term, err := New(srv.URL, fastOpts()).Follow(context.Background(), "j", FollowOptions{})
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if term.State != "done" || conns.Load() != 7 {
		t.Fatalf("terminal %+v after %d connections", term, conns.Load())
	}
}

func TestFollowNotFoundIsTerminal(t *testing.T) {
	var conns atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		http.Error(w, `{"error":"unknown job"}`, http.StatusNotFound)
	}))
	t.Cleanup(srv.Close)
	_, err := New(srv.URL, fastOpts()).Follow(context.Background(), "ghost", FollowOptions{})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if conns.Load() != 1 {
		t.Fatalf("connections = %d: unknown jobs must not be retried", conns.Load())
	}
}

func TestFollowLagReconnectsAndResumes(t *testing.T) {
	srv, conns := sseServer(t, []func(int64, http.ResponseWriter, *http.Request){
		func(n int64, w http.ResponseWriter, r *http.Request) {
			sendEvent(w, Event{Seq: 1, Job: "j", Type: "progress", Done: 1})
			sendEvent(w, Event{Seq: 2, Job: "j", Type: "progress", Done: 2})
			// Evict the client: lag notice carries no seq.
			sendEvent(w, Event{Job: "j", Type: "lag", Error: "subscriber lagged"})
		},
		func(n int64, w http.ResponseWriter, r *http.Request) {
			if got := r.Header.Get("Last-Event-ID"); got != "2" {
				t.Errorf("post-lag Last-Event-ID = %q, want 2", got)
			}
			sendEvent(w, Event{Seq: 3, Job: "j", Type: "state", State: "done"})
		},
	})
	var lagSeen bool
	var evs []Event
	term, err := New(srv.URL, fastOpts()).Follow(context.Background(), "j", FollowOptions{
		OnEvent: func(ev Event) {
			if ev.Type == "lag" {
				lagSeen = true
				return
			}
			evs = append(evs, ev)
		},
	})
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if !lagSeen {
		t.Fatal("lag notice was not surfaced to OnEvent")
	}
	if term.Seq != 3 || len(evs) != 3 || conns.Load() != 2 {
		t.Fatalf("term=%+v events=%d conns=%d", term, len(evs), conns.Load())
	}
}

func TestFollowStallWatchdogReconnects(t *testing.T) {
	srv, conns := sseServer(t, []func(int64, http.ResponseWriter, *http.Request){
		func(n int64, w http.ResponseWriter, r *http.Request) {
			sendEvent(w, Event{Seq: 1, Job: "j", Type: "progress"})
			// Go silent: no heartbeats, no events. The watchdog must cut
			// this connection rather than hang forever.
			<-r.Context().Done()
		},
		func(n int64, w http.ResponseWriter, r *http.Request) {
			sendEvent(w, Event{Seq: 2, Job: "j", Type: "state", State: "done"})
		},
	})
	opts := fastOpts()
	opts.StallTimeout = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	term, err := New(srv.URL, opts).Follow(ctx, "j", FollowOptions{})
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	if term.Seq != 2 || conns.Load() != 2 {
		t.Fatalf("term=%+v conns=%d, want seq 2 on connection 2", term, conns.Load())
	}
}

func TestFollowHonorsContextDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	opts := fastOpts()
	opts.BackoffBase = 10 * time.Second // park in backoff
	opts.BackoffMax = 10 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := New(srv.URL, opts).Follow(ctx, "j", FollowOptions{})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Follow did not return after context cancellation")
	}
}

func TestEventTerminal(t *testing.T) {
	for _, tc := range []struct {
		ev   Event
		want bool
	}{
		{Event{Type: "state", State: "done"}, true},
		{Event{Type: "state", State: "failed"}, true},
		{Event{Type: "state", State: "cancelled"}, true},
		{Event{Type: "state", State: "quarantined"}, true},
		{Event{Type: "state", State: "running"}, false},
		{Event{Type: "progress", State: "done"}, false},
		{Event{Type: "seal"}, false},
	} {
		if got := tc.ev.Terminal(); got != tc.want {
			t.Errorf("Terminal(%+v) = %v, want %v", tc.ev, got, tc.want)
		}
	}
}
