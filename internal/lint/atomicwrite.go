package lint

import (
	"go/ast"
	"strings"
)

// AtomicWrite enforces the PR 3 persistence contract: all file writes go
// through internal/artifact's atomic writers (temp + fsync + rename +
// dir-fsync), so a crash can never leave a half-written artifact behind.
// Raw os.WriteFile / os.Create / os.Rename are therefore forbidden
// everywhere except inside internal/artifact itself, which implements the
// primitive.
//
// Since the artifact.FS seam landed, directory mutations and spool
// enumeration are part of the same contract: os.Remove, os.MkdirAll, and
// os.ReadDir on durable state must ride the seam too, or fault-injection
// tests cannot see them and a chaos run silently exercises the real disk.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "persistence must go through internal/artifact's FS seam, not raw os.WriteFile/os.Create/os.Rename/os.Remove/os.MkdirAll/os.ReadDir",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/artifact") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range [...]string{"WriteFile", "Create", "Rename"} {
				if isPkgFunc(pass, call, "os", name) {
					pass.Reportf(call.Pos(),
						"raw os.%s bypasses the atomic persistence layer; use internal/artifact (WriteFileAtomic/AtomicFile)", name)
				}
			}
			for _, name := range [...]string{"Remove", "MkdirAll", "ReadDir"} {
				if isPkgFunc(pass, call, "os", name) {
					pass.Reportf(call.Pos(),
						"raw os.%s bypasses the artifact.FS seam; route it through an artifact.FS so fault injection covers it", name)
				}
			}
			return true
		})
	}
}
