package lint

import (
	"go/ast"
	"strings"
)

// AtomicWrite enforces the PR 3 persistence contract: all file writes go
// through internal/artifact's atomic writers (temp + fsync + rename +
// dir-fsync), so a crash can never leave a half-written artifact behind.
// Raw os.WriteFile / os.Create / os.Rename are therefore forbidden
// everywhere except inside internal/artifact itself, which implements the
// primitive.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "persistence must go through internal/artifact's atomic writers, not raw os.WriteFile/os.Create/os.Rename",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/artifact") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range [...]string{"WriteFile", "Create", "Rename"} {
				if isPkgFunc(pass, call, "os", name) {
					pass.Reportf(call.Pos(),
						"raw os.%s bypasses the atomic persistence layer; use internal/artifact (WriteFileAtomic/AtomicFile)", name)
				}
			}
			return true
		})
	}
}
