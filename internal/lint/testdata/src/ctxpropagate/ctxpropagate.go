// Package ctxpropagate is the graphlint corpus for the ctxpropagate
// analyzer: library code threads the caller's context instead of minting
// context.Background/TODO.
package ctxpropagate

import "context"

func badDiscard(ctx context.Context) error {
	return work(context.Background()) // want `thread it instead`
}

func badTODO(ctx context.Context) error {
	return work(context.TODO()) // want `thread it instead`
}

func badNested(ctx context.Context) func() error {
	return func() error {
		return work(context.Background()) // want `thread it instead`
	}
}

func badLibraryRoot() error {
	return work(context.Background()) // want `library code must accept a context`
}

func okThread(ctx context.Context) error { return work(ctx) }

func suppressedWrapper() error {
	//lint:ignore ctxpropagate corpus: documented top-level wrapper mints the root context
	return work(context.Background())
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
