// Package fsyncorder is the graphlint corpus for the fsyncorder analyzer:
// a temp-write → rename sequence must fsync the file on every path before
// the rename and fsync the directory after it.
package fsyncorder

import (
	"os"
	"path/filepath"
)

// syncDir models the artifact layer's directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SyncDir is the seam-shaped spelling the analyzer recognizes downstream
// of a rename.
func SyncDir(dir string) error { return syncDir(dir) }

// badNoFsync publishes bytes that may still be in the page cache.
func badNoFsync(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Close()
	if err := os.Rename(f.Name(), path); err != nil { // want `no dominating fsync` `not followed by a directory fsync`
		return err
	}
	return nil
}

// badFsyncOneBranch syncs on only one path: the fast path renames
// unflushed data.
func badFsyncOneBranch(path string, data []byte, fast bool) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if !fast {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	f.Close()
	if err := os.Rename(f.Name(), path); err != nil { // want `no dominating fsync`
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// badNoDirSync flushes the file but never the directory entry.
func badNoDirSync(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	f.Close()
	return os.Rename(f.Name(), path) // want `not followed by a directory fsync`
}

// okFullSequence is the PR 3 contract: temp + fsync + rename + dir fsync.
func okFullSequence(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// okPureMove renames already-durable bytes: no temp creation, no fsync in
// the function, out of scope (set-aside of a corrupt record).
func okPureMove(path string) error {
	return os.Rename(path, path+".corrupt")
}

// suppressedRename carries a reasoned suppression (a best-effort cache
// file whose loss is harmless).
func suppressedRename(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, _ = f.Write(data)
	f.Close()
	//lint:ignore fsyncorder corpus: best-effort cache entry, a torn file is re-derived on read
	return os.Rename(f.Name(), path)
}
