// Package atomicmix is the graphlint corpus for the atomicmix analyzer: a
// variable touched via sync/atomic anywhere must never be read or written
// non-atomically elsewhere.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	hits   int64
	misses int64
	plain  int64
	typed  atomic.Int64
}

// bump is the atomic side: it marks hits and misses as atomic-only.
func (c *counters) bump(hit bool) {
	if hit {
		atomic.AddInt64(&c.hits, 1)
	} else {
		atomic.AddInt64(&c.misses, 1)
	}
}

// badPlainRead reads an atomically-updated field without the atomic API.
func (c *counters) badPlainRead() int64 {
	return c.hits // want `hits is accessed via sync/atomic elsewhere`
}

// badPlainWrite resets one with plain assignment.
func (c *counters) badPlainWrite() {
	c.misses = 0 // want `misses is accessed via sync/atomic elsewhere`
}

// okAtomicRead stays on the API.
func (c *counters) okAtomicRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

// okPlain never touches the atomic fields: plain accesses to plain fields
// are fine.
func (c *counters) okPlain() int64 {
	c.plain++
	return c.plain
}

// okTyped uses a typed atomic: immune by construction, untracked.
func (c *counters) okTyped() int64 {
	c.typed.Add(1)
	return c.typed.Load()
}

// package-level variables are tracked the same way.
var seq uint64

func next() uint64 {
	return atomic.AddUint64(&seq, 1)
}

func badPeek() uint64 {
	return seq // want `seq is accessed via sync/atomic elsewhere`
}

// suppressedInit carries a reasoned suppression for a pre-publication
// write (the one legitimate mixed access: before any goroutine exists).
type gauge struct {
	val int64
	mu  sync.Mutex
}

func newGauge(start int64) *gauge {
	g := &gauge{}
	//lint:ignore atomicmix corpus: constructor runs before the value is shared, no concurrent access exists yet
	g.val = start
	return g
}

func (g *gauge) add(d int64) { atomic.AddInt64(&g.val, d) }
