// Package lockdiscipline is the graphlint corpus for the lockdiscipline
// analyzer: `// guarded by <mu>` fields are only touched with the mutex
// held, and no mutex is held across fsync/channel-send/response writes.
package lockdiscipline

import (
	"net/http"
	"os"
	"sync"
)

type hub struct {
	mu sync.Mutex
	// count is guarded by mu.
	count int
	// subs is guarded by mu.
	subs map[string]chan int
	// free has no annotation: the analyzer leaves it alone.
	free int
}

// badUnlockedRead touches a guarded field with no lock in sight.
func (h *hub) badUnlockedRead() int {
	return h.count // want `field count is guarded by h.mu, which is not held`
}

// badUnlockedWrite writes a guarded field after releasing the lock.
func (h *hub) badUnlockedWrite() {
	h.mu.Lock()
	h.count++
	h.mu.Unlock()
	h.count++ // want `field count is guarded by h.mu, which is not held`
}

// badOneBranch holds the lock on only one path to the access: a must
// analysis rejects it.
func (h *hub) badOneBranch(lock bool) {
	if lock {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	h.count++ // want `field count is guarded by h.mu, which is not held on every path`
}

// okLocked brackets the access.
func (h *hub) okLocked() {
	h.mu.Lock()
	h.count++
	h.mu.Unlock()
}

// okDeferred holds via defer: the unlock runs at return, so the access is
// covered.
func (h *hub) okDeferred() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// okBothBranches locks on every path.
func (h *hub) okBothBranches(fast bool) {
	if fast {
		h.mu.Lock()
	} else {
		h.mu.Lock()
	}
	h.count++
	h.mu.Unlock()
}

// okFree touches the unannotated field without the lock: no finding.
func (h *hub) okFree() int {
	return h.free
}

// drainLocked carries the Locked suffix: the caller asserts it holds the
// receiver's mutexes, so the access is covered at entry.
func (h *hub) drainLocked() int {
	return h.count
}

// badSyncUnderLock fsyncs while holding the mutex.
func (h *hub) badSyncUnderLock(f *os.File) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f.Sync() // want `fsync \(Sync\) while holding h.mu`
}

// okSyncAfterUnlock releases before flushing.
func (h *hub) okSyncAfterUnlock(f *os.File) {
	h.mu.Lock()
	h.count++
	h.mu.Unlock()
	f.Sync()
}

// badBlockingSend can park forever on a slow receiver with the lock held.
func (h *hub) badBlockingSend(ch chan int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch <- h.count // want `blocking channel send while holding h.mu`
}

// okNonBlockingSend is the hub idiom: a select with a default never waits
// on a subscriber.
func (h *hub) okNonBlockingSend(ch chan int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case ch <- h.count:
	default:
	}
}

// badResponseWriteUnderLock writes an HTTP response with the lock held: a
// stalled peer pins the hub.
func (h *hub) badResponseWriteUnderLock(w http.ResponseWriter) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w.Write([]byte("x")) // want `HTTP response Write while holding h.mu`
}

// suppressedSync carries a reasoned suppression: the per-stream journal
// lock intentionally serializes append+fsync.
func (h *hub) suppressedSync(f *os.File) {
	h.mu.Lock()
	defer h.mu.Unlock()
	//lint:ignore lockdiscipline corpus: journal append+fsync is intentionally serialized per stream
	f.Sync()
}

// okSendUnlocked sends after the critical section.
func (h *hub) okSendUnlocked(ch chan int) {
	h.mu.Lock()
	v := h.count
	h.mu.Unlock()
	ch <- v
}
