// Package allocbound is the graphlint corpus for the allocbound analyzer:
// a make() sized by a decoded integer needs a plausibility-cap check
// between the decode and the allocation.
package allocbound

import (
	"bufio"
	"encoding/binary"
	"errors"
	"strconv"
)

var errTooBig = errors.New("implausible count")

const maxRecords = 1 << 20

func badUvarint(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want `no plausibility-cap check`
}

func badHeader(hdr []byte) []uint32 {
	n := binary.LittleEndian.Uint32(hdr[0:4])
	return make([]uint32, n) // want `no plausibility-cap check`
}

func badPropagate(s string) ([]int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return nil, err
	}
	m := n * 8
	return make([]int, m), nil // want `no plausibility-cap check`
}

func okChecked(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > maxRecords {
		return nil, errTooBig
	}
	return make([]byte, n), nil
}

func okClampAssign(hdr []byte) []uint32 {
	n := binary.LittleEndian.Uint64(hdr[0:8])
	capHint := n
	if capHint > maxRecords {
		capHint = maxRecords
	}
	return make([]uint32, 0, capHint)
}

func okMinClamp(br *bufio.Reader) []byte {
	n, _ := binary.ReadUvarint(br)
	return make([]byte, 0, min(n, maxRecords))
}

func okUntainted(vals []float64) []float64 {
	out := make([]float64, len(vals))
	copy(out, vals)
	return out
}

func suppressedAlloc(hdr []byte) []byte {
	n := binary.LittleEndian.Uint16(hdr)
	//lint:ignore allocbound corpus: a uint16 length is bounded by 65535 entries
	return make([]byte, n)
}
