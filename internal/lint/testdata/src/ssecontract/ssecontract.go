// Package ssecontract is the graphlint corpus for the ssecontract
// analyzer: SSE handlers flush after writes, select on r.Context().Done(),
// and send heartbeats.
package ssecontract

import (
	"fmt"
	"net/http"
	"time"
)

// badBuffered streams nothing until the connection dies, never notices a
// disconnect, and never pings an idle peer: all three legs missing.
func badBuffered(w http.ResponseWriter, r *http.Request) { // want `must flush after each write` `must select on r.Context\(\).Done\(\)` `must send periodic heartbeats`
	w.Header().Set("Content-Type", "text/event-stream")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(w, "data: %d\n\n", i)
	}
}

// badNoCancel flushes and ticks but ignores the request context: the
// handler outlives every disconnect and pins its goroutine through drain.
func badNoCancel(w http.ResponseWriter, r *http.Request) { // want `must select on r.Context\(\).Done\(\)`
	w.Header().Set("Content-Type", "text/event-stream")
	fl := w.(http.Flusher)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for range ticker.C {
		fmt.Fprint(w, ": hb\n\n")
		fl.Flush()
	}
}

// badNoHeartbeat watches the context and flushes, but an idle stream sends
// nothing — neither side can tell a quiet peer from a dead one.
func badNoHeartbeat(w http.ResponseWriter, r *http.Request, events <-chan string) { // want `must send periodic heartbeats`
	w.Header().Set("Content-Type", "text/event-stream")
	fl := w.(http.Flusher)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-events:
			fmt.Fprintf(w, "data: %s\n\n", ev)
			fl.Flush()
		}
	}
}

// okHandler satisfies all three legs; the flush living in a closure counts.
func okHandler(w http.ResponseWriter, r *http.Request, events <-chan string) {
	w.Header().Set("Content-Type", "text/event-stream")
	fl := w.(http.Flusher)
	send := func(ev string) {
		fmt.Fprintf(w, "data: %s\n\n", ev)
		fl.Flush()
	}
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-events:
			send(ev)
		case <-ticker.C:
			fmt.Fprint(w, ": hb\n\n")
			fl.Flush()
		}
	}
}

// okClientShaped sets the SSE content type on an outbound request it builds
// itself — no *http.Request parameter, so it is not a handler and the
// contract does not apply.
func okClientShaped() *http.Request {
	req, _ := http.NewRequest(http.MethodGet, "http://localhost/v1/jobs/j/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	return req
}

// okPlainHandler never mentions the SSE content type: ordinary
// request/response handlers are out of scope.
func okPlainHandler(w http.ResponseWriter, r *http.Request) {
	fmt.Fprint(w, "ok")
}

// suppressedHandler documents why it opts out (a one-shot dump endpoint
// that closes immediately, streaming in name only).
//
//lint:ignore ssecontract corpus: one-shot snapshot endpoint, closes after a single write
func suppressedHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/event-stream")
	fmt.Fprint(w, "data: snapshot\n\n")
}
