// Package suppressbad exercises malformed //lint:ignore directives: a
// missing reason or an unknown analyzer is itself a finding, and the
// broken directive suppresses nothing.
package suppressbad

import "os"

func missingReason(p string, b []byte) error {
	//lint:ignore atomicwrite
	return os.WriteFile(p, b, 0o644)
}

func unknownAnalyzer(p string, b []byte) error {
	//lint:ignore nosuchanalyzer the analyzer name is not real
	return os.WriteFile(p, b, 0o644)
}
