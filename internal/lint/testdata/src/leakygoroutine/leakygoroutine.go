// Package leakygoroutine is the graphlint corpus for the leakygoroutine
// analyzer: a go func literal must be tied to a context, a done channel,
// or a WaitGroup.
package leakygoroutine

import (
	"context"
	"sync"
	"time"
)

func badFireAndForget() {
	go func() { // want `not tied to a context`
		for {
			time.Sleep(time.Second)
		}
	}()
}

func badNoTie(msgs []string) {
	go func() { // want `not tied to a context`
		total := 0
		for _, m := range msgs {
			total += len(m)
		}
		_ = total
	}()
}

func okCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func okWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func okDoneChannel(done <-chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
}

func okWorkChannel(work chan int) {
	go func() {
		for range work {
		}
	}()
}

func okResultChannel(out chan<- int) {
	go func() {
		out <- 42
	}()
}

// Named-function goroutines are outside the literal contract.
func okNamed() {
	go tick()
}

func tick() {}

func suppressedGoroutine() {
	//lint:ignore leakygoroutine corpus: process-lifetime monitor by design
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
}
