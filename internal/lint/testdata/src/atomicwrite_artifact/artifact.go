// Package artifact is the negative corpus for atomicwrite: the test loads
// it under an import path ending in internal/artifact, where the raw
// primitives are the implementation of the atomic layer itself.
package artifact

import "os"

func writeRaw(p string, b []byte) error {
	return os.WriteFile(p, b, 0o644)
}

func renameRaw(a, b string) error {
	return os.Rename(a, b)
}
