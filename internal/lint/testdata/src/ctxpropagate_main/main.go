// Package main is the negative corpus for ctxpropagate: binaries mint the
// root context at their entry point.
package main

import "context"

func main() {
	_ = run(context.Background())
}

func run(ctx context.Context) error { return ctx.Err() }
